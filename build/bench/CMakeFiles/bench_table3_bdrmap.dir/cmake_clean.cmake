file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_bdrmap.dir/bench_table3_bdrmap.cpp.o"
  "CMakeFiles/bench_table3_bdrmap.dir/bench_table3_bdrmap.cpp.o.d"
  "CMakeFiles/bench_table3_bdrmap.dir/common.cpp.o"
  "CMakeFiles/bench_table3_bdrmap.dir/common.cpp.o.d"
  "bench_table3_bdrmap"
  "bench_table3_bdrmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_bdrmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
