// Determinism of the parallel campaign engine: the full CampaignResult —
// every test record, every traceroute hop, every skip counter — must be
// bit-identical whatever the worker count, and identical with or without
// a PathCache attached. Results are compared through the shared output
// fingerprint (measure/fingerprint.h), the same harness the diff.* property
// family drives over random worlds; these tests pin the blessed fixture.

#include <gtest/gtest.h>

#include "gen/workload.h"
#include "helpers.h"
#include "measure/fingerprint.h"
#include "measure/ndt.h"
#include "measure/platform.h"
#include "route/bgp.h"
#include "route/forwarding.h"
#include "route/path_cache.h"
#include "sim/faults.h"
#include "sim/throughput.h"

namespace netcong::measure {
namespace {

using gen::World;

struct Stack {
  explicit Stack(const World& w)
      : world(w),
        bgp(*w.topo),
        fwd(*w.topo, bgp),
        model(*w.topo, *w.traffic),
        mlab("mlab", *w.topo, w.mlab_servers) {}
  const World& world;
  route::BgpRouting bgp;
  route::Forwarder fwd;
  sim::ThroughputModel model;
  Platform mlab;
};

Stack& stack() {
  static Stack s(test::tiny_world());
  return s;
}

// A dense multi-client schedule exercising every traceroute outcome
// (run, busy-skip, cache-skip, failure).
std::vector<gen::TestRequest> dense_schedule() {
  Stack& s = stack();
  std::vector<gen::TestRequest> schedule;
  for (int round = 0; round < 4; ++round) {
    for (std::size_t i = 0; i < s.world.clients.size(); ++i) {
      schedule.push_back(
          {s.world.clients[i],
           10.0 + round * 0.05 + static_cast<double>(i) * 0.003});
    }
  }
  return schedule;
}

CampaignResult run_with(int threads, const route::PathCache* cache,
                        const std::vector<gen::TestRequest>& schedule) {
  Stack& s = stack();
  CampaignConfig cfg;
  cfg.threads = threads;
  NdtCampaign campaign(s.world, s.fwd, s.model, s.mlab, cfg);
  if (cache) campaign.set_path_cache(cache);
  util::Rng rng(20150501);
  return campaign.run(schedule, rng);
}

TEST(CampaignParallel, IdenticalAcrossThreadCounts) {
  auto schedule = dense_schedule();
  CampaignResult serial = run_with(1, nullptr, schedule);
  // The engine exercised every daemon outcome at least once.
  EXPECT_GT(serial.traceroutes.size(), 0u);
  EXPECT_GT(serial.traceroutes_skipped_busy + serial.traceroutes_skipped_cached,
            0u);
  const std::uint64_t baseline = fingerprint(serial);
  for (int threads : {2, 8}) {
    CampaignResult par = run_with(threads, nullptr, schedule);
    SCOPED_TRACE(threads);
    EXPECT_EQ(fingerprint(par), baseline);
  }
}

TEST(CampaignParallel, IdenticalWithAndWithoutPathCache) {
  auto schedule = dense_schedule();
  Stack& s = stack();
  CampaignResult uncached = run_with(4, nullptr, schedule);
  route::PathCache cache(s.fwd);
  CampaignResult cached = run_with(4, &cache, schedule);
  EXPECT_EQ(fingerprint(cached), fingerprint(uncached));
  // The dense repeat schedule must actually exercise the cache.
  EXPECT_GT(cache.stats().hits, 0u);
}

TEST(CampaignParallel, RepeatRunsWithSameSeedAgree) {
  auto schedule = dense_schedule();
  CampaignResult a = run_with(0, nullptr, schedule);
  CampaignResult b = run_with(0, nullptr, schedule);
  EXPECT_EQ(fingerprint(a), fingerprint(b));
}

TEST(CampaignParallel, FingerprintIsSensitiveToTheSeed) {
  // Guard against a degenerate fingerprint: a different campaign seed must
  // produce a different value, or every equality above is vacuous.
  auto schedule = dense_schedule();
  Stack& s = stack();
  CampaignConfig cfg;
  NdtCampaign campaign(s.world, s.fwd, s.model, s.mlab, cfg);
  util::Rng rng_a(20150501), rng_b(20150502);
  auto a = campaign.run(schedule, rng_a);
  auto b = campaign.run(schedule, rng_b);
  EXPECT_NE(fingerprint(a), fingerprint(b));
}

CampaignResult run_faulted(int threads, const route::PathCache* cache,
                           const std::vector<gen::TestRequest>& schedule,
                           const sim::FaultInjector& faults) {
  Stack& s = stack();
  CampaignConfig cfg;
  cfg.threads = threads;
  NdtCampaign campaign(s.world, s.fwd, s.model, s.mlab, cfg);
  if (cache) campaign.set_path_cache(cache);
  campaign.set_faults(&faults);
  util::Rng rng(20150501);
  return campaign.run(schedule, rng);
}

// The PR-1 determinism contract extends to faulted campaigns: every fault
// decision is a pure function of (seed, site, item), so the whole degraded
// result — statuses, truncations, quality counters — is bit-identical
// across worker counts and with or without a path cache.
TEST(CampaignParallel, FaultedIdenticalAcrossThreadsAndCache) {
  auto schedule = dense_schedule();
  Stack& s = stack();
  sim::FaultInjector faults(sim::FaultConfig::scaled(0.3), 77);
  CampaignResult serial = run_faulted(1, nullptr, schedule, faults);

  // The faults actually fired and every record is accounted for.
  EXPECT_TRUE(serial.quality.consistent());
  EXPECT_EQ(serial.quality.tests_attempted, schedule.size());
  EXPECT_GT(serial.quality.tests_aborted + serial.quality.tests_unserved +
                serial.quality.tests_truncated +
                serial.quality.webstats_dropped,
            0u);
  EXPECT_LT(serial.quality.tests_completed, serial.quality.tests_attempted);
  EXPECT_GT(serial.quality.tests_completed, 0u);

  const std::uint64_t baseline = fingerprint(serial);
  for (int threads : {2, 8}) {
    SCOPED_TRACE(threads);
    CampaignResult par = run_faulted(threads, nullptr, schedule, faults);
    EXPECT_EQ(fingerprint(par), baseline);
  }
  route::PathCache cache(s.fwd);
  CampaignResult cached = run_faulted(4, &cache, schedule, faults);
  EXPECT_EQ(fingerprint(cached), baseline);
}

// An enabled injector whose every rate is zero must reproduce the clean
// campaign exactly — enabling the layer does not perturb the draw streams.
TEST(CampaignParallel, ZeroRateInjectorMatchesCleanRun) {
  auto schedule = dense_schedule();
  sim::FaultConfig zero;
  zero.enabled = true;
  sim::FaultInjector faults(zero, 77);
  CampaignResult clean = run_with(4, nullptr, schedule);
  CampaignResult zeroed = run_faulted(4, nullptr, schedule, faults);
  EXPECT_EQ(fingerprint(zeroed), fingerprint(clean));
  EXPECT_EQ(zeroed.quality.tests_completed, schedule.size());
}

}  // namespace
}  // namespace netcong::measure
