#pragma once

// CSV emission for bench results (machine-readable companion to TextTable).

#include <string>
#include <vector>

namespace netcong::util {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> headers);

  void add_row(const std::vector<std::string>& cells);

  // RFC-4180-style escaping (quotes fields containing , " or newline).
  std::string render() const;

  // Writes render() to the given path; returns false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace netcong::util
