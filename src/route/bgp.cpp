#include "route/bgp.h"

#include <cassert>
#include <deque>
#include <mutex>
#include <queue>

namespace netcong::route {

using topo::Asn;
using topo::RelType;

const char* route_class_name(RouteClass c) {
  switch (c) {
    case RouteClass::kNone:
      return "none";
    case RouteClass::kSelf:
      return "self";
    case RouteClass::kCustomer:
      return "customer";
    case RouteClass::kPeer:
      return "peer";
    case RouteClass::kProvider:
      return "provider";
  }
  return "?";
}

BgpRouting::BgpRouting(const topo::Topology& topo) : topo_(&topo) {
  asns_ = topo.all_asns();
  index_.reserve(asns_.size());
  for (std::uint32_t i = 0; i < asns_.size(); ++i) index_[asns_[i]] = i;
  adj_.resize(asns_.size());
  for (std::uint32_t i = 0; i < asns_.size(); ++i) {
    for (const auto& [nbr, rel] : topo.relationships().neighbors(asns_[i])) {
      auto it = index_.find(nbr);
      if (it == index_.end()) continue;  // relationship to an unmodeled AS
      adj_[i].push_back(Neighbor{it->second, rel});
    }
  }
}

BgpRouting::Tree BgpRouting::compute_tree(std::uint32_t d) const {
  const std::size_t n = asns_.size();
  Tree t;
  t.next_hop.assign(n, kNoHop);
  t.cls.assign(n, RouteClass::kNone);
  t.dist.assign(n, 0xffff);
  t.cls[d] = RouteClass::kSelf;
  t.dist[d] = 0;

  // Adopts a candidate route at v via next hop u with the given class.
  // Returns true if the route was newly adopted or improved (dist), meaning
  // v should be (re-)expanded.
  auto adopt = [&](std::uint32_t v, std::uint32_t u, RouteClass cls) {
    std::uint16_t nd = static_cast<std::uint16_t>(t.dist[u] + 1);
    if (t.cls[v] != RouteClass::kNone &&
        static_cast<int>(t.cls[v]) < static_cast<int>(cls)) {
      return false;  // existing route has a strictly better class
    }
    if (t.cls[v] == cls) {
      if (nd > t.dist[v]) return false;
      if (nd == t.dist[v]) {
        // Deterministic tie-break: lowest next-hop ASN.
        if (t.next_hop[v] == kNoHop || asns_[u] < asns_[t.next_hop[v]]) {
          t.next_hop[v] = u;
        }
        return false;
      }
    }
    t.cls[v] = cls;
    t.dist[v] = nd;
    t.next_hop[v] = u;
    return true;
  };

  // Phase 1: customer routes propagate "up" from the destination along
  // customer->provider edges. BFS gives nondecreasing distance.
  std::deque<std::uint32_t> queue;
  queue.push_back(d);
  while (!queue.empty()) {
    std::uint32_t u = queue.front();
    queue.pop_front();
    for (const Neighbor& nb : adj_[u]) {
      // u exports to its provider v; v holds a customer route.
      if (nb.rel != RelType::kCustomer) continue;
      if (adopt(nb.idx, u, RouteClass::kCustomer)) queue.push_back(nb.idx);
    }
  }

  // Phase 2: ASes with self/customer routes export to peers; peer routes
  // are not re-exported to peers or providers.
  std::vector<std::uint32_t> with_customer_route;
  for (std::uint32_t u = 0; u < n; ++u) {
    if (t.cls[u] == RouteClass::kSelf || t.cls[u] == RouteClass::kCustomer) {
      with_customer_route.push_back(u);
    }
  }
  for (std::uint32_t u : with_customer_route) {
    for (const Neighbor& nb : adj_[u]) {
      if (nb.rel != RelType::kPeer) continue;
      adopt(nb.idx, u, RouteClass::kPeer);
    }
  }

  // Phase 3: everything propagates "down" provider->customer edges.
  // Distances differ at the frontier, so order expansion by distance.
  using Item = std::pair<std::uint16_t, std::uint32_t>;  // (dist, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  for (std::uint32_t u = 0; u < n; ++u) {
    if (t.cls[u] != RouteClass::kNone) pq.emplace(t.dist[u], u);
  }
  while (!pq.empty()) {
    auto [du, u] = pq.top();
    pq.pop();
    if (du != t.dist[u]) continue;  // stale entry
    for (const Neighbor& nb : adj_[u]) {
      // u exports to its customer v; v holds a provider route.
      if (nb.rel != RelType::kProvider) continue;
      if (adopt(nb.idx, u, RouteClass::kProvider)) {
        pq.emplace(t.dist[nb.idx], nb.idx);
      }
    }
  }
  return t;
}

std::shared_ptr<const BgpRouting::Tree> BgpRouting::tree_for(Asn dst) const {
  std::uint32_t d = index_.at(dst);
  {
    std::shared_lock<std::shared_mutex> lk(trees_mu_);
    auto it = trees_.find(d);
    if (it != trees_.end()) return it->second;
  }
  // Compute outside the lock; a tree is a pure function of the destination,
  // so concurrent misses build identical trees and the first insert wins.
  auto tree = std::make_shared<const Tree>(compute_tree(d));
  std::unique_lock<std::shared_mutex> lk(trees_mu_);
  if (trees_.size() >= cache_cap_) trees_.clear();
  return trees_.try_emplace(d, std::move(tree)).first->second;
}

void BgpRouting::warm(Asn dst) const { tree_for(dst); }

std::vector<Asn> BgpRouting::as_path(Asn src, Asn dst) const {
  auto sit = index_.find(src);
  auto dit = index_.find(dst);
  if (sit == index_.end() || dit == index_.end()) return {};
  std::shared_ptr<const Tree> tp = tree_for(dst);
  const Tree& t = *tp;
  std::uint32_t cur = sit->second;
  if (t.cls[cur] == RouteClass::kNone) return {};
  std::vector<Asn> path;
  path.push_back(asns_[cur]);
  while (cur != dit->second) {
    cur = t.next_hop[cur];
    assert(cur != kNoHop);
    path.push_back(asns_[cur]);
    assert(path.size() <= asns_.size());
  }
  return path;
}

bool BgpRouting::reachable(Asn src, Asn dst) const {
  return route_class(src, dst) != RouteClass::kNone;
}

RouteClass BgpRouting::route_class(Asn src, Asn dst) const {
  auto sit = index_.find(src);
  auto dit = index_.find(dst);
  if (sit == index_.end() || dit == index_.end()) return RouteClass::kNone;
  return tree_for(dst)->cls[sit->second];
}

bool is_valley_free(const topo::Topology& topo,
                    const std::vector<Asn>& path) {
  if (path.size() < 2) return true;
  // State machine: 0 = climbing (customer->provider), 1 = after peak/peer
  // (only provider->customer allowed).
  int state = 0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    RelType rel = topo.relationships().between(path[i], path[i + 1]);
    switch (rel) {
      case RelType::kCustomer:  // uphill
        if (state != 0) return false;
        break;
      case RelType::kPeer:  // at most one flat hop, then downhill only
        if (state != 0) return false;
        state = 1;
        break;
      case RelType::kProvider:  // downhill
        state = 1;
        break;
      case RelType::kNone:
        return false;  // non-adjacent hop
    }
  }
  return true;
}

}  // namespace netcong::route
