#include "sim/packet/dumbbell.h"

#include <algorithm>

#include "stats/descriptive.h"

namespace netcong::sim::packet {

Dumbbell::Dumbbell(Params params) : params_(params) {
  queue_ = std::make_unique<DropTailQueue>(
      events_, params_.bottleneck_mbps, params_.buffer_packets,
      [this](const Packet& p) {
        flows_[static_cast<std::size_t>(p.flow)]->on_packet_delivered(p);
      });
}

int Dumbbell::add_flow(const FlowSpec& spec) {
  int id = static_cast<int>(flows_.size());
  TcpFlow::Params fp;
  fp.mss_bytes = spec.mss_bytes;
  fp.base_rtt_s = spec.base_rtt_s;
  fp.cc = spec.cc;
  fp.max_cwnd = spec.max_cwnd;
  fp.max_trace_samples = spec.max_trace_samples;
  flows_.push_back(std::make_unique<TcpFlow>(
      id, events_, fp, [this](const Packet& p) { return queue_->enqueue(p); }));
  specs_.push_back(spec);
  flows_.back()->start(spec.start_time_s);
  if (spec.stop_time_s < params_.duration_s) {
    TcpFlow* flow = flows_.back().get();
    events_.schedule(spec.stop_time_s, [flow] { flow->stop(); });
  }
  return id;
}

double Dumbbell::goodput_over(const TcpStats& stats, int mss_bytes,
                              double from_s, double to_s) {
  return goodput_over_mbps(stats, mss_bytes, from_s, to_s);
}

DumbbellResult Dumbbell::run() {
  events_.run(params_.duration_s);
  DumbbellResult out;
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    FlowResult fr;
    fr.stats = flows_[i]->stats();
    const FlowSpec& spec = specs_[i];
    double start = spec.start_time_s;
    double stop = std::min(spec.stop_time_s, params_.duration_s);
    fr.goodput_mbps =
        goodput_over(fr.stats, spec.mss_bytes, start, stop);
    if (!fr.stats.rtt_samples_ms.empty()) {
      fr.mean_rtt_ms = stats::mean(fr.stats.rtt_samples_ms);
      fr.min_rtt_ms = stats::min(fr.stats.rtt_samples_ms);
      fr.max_rtt_ms = stats::max(fr.stats.rtt_samples_ms);
    }
    out.flows.push_back(std::move(fr));
  }
  out.bottleneck_drops = queue_->drops();
  out.bottleneck_delivered = queue_->delivered();
  return out;
}

}  // namespace netcong::sim::packet
