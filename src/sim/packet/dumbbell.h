#pragma once

// Dumbbell scenario: N TCP flows sharing one droptail bottleneck. This is
// the canonical setup for studying (a) what throughput drop a congested
// link actually produces for a short test flow (paper Section 6.2) and
// (b) RTT signatures that distinguish a flow that *caused* the queue from
// one that arrived at an already-congested link (paper's future work [37]).

#include <memory>
#include <vector>

#include "sim/packet/event_queue.h"
#include "sim/packet/queue.h"
#include "sim/packet/tcp.h"

namespace netcong::sim::packet {

// FlowSpec / FlowResult live in tcp.h (shared with AccessInterdomain).

struct DumbbellResult {
  std::vector<FlowResult> flows;
  std::int64_t bottleneck_drops = 0;
  std::int64_t bottleneck_delivered = 0;
};

class Dumbbell {
 public:
  struct Params {
    double bottleneck_mbps = 100.0;
    int buffer_packets = 400;
    double duration_s = 30.0;
  };

  explicit Dumbbell(Params params);

  // Adds a flow; returns its index.
  int add_flow(const FlowSpec& spec);

  DumbbellResult run();

  // Goodput over [from_s, to_s] computed from an ACK trace. Thin wrapper
  // over goodput_over_mbps (tcp.h), kept for existing callers.
  static double goodput_over(const TcpStats& stats, int mss_bytes,
                             double from_s, double to_s);

 private:
  Params params_;
  EventQueue events_;
  std::unique_ptr<DropTailQueue> queue_;
  std::vector<std::unique_ptr<TcpFlow>> flows_;
  std::vector<FlowSpec> specs_;
};

}  // namespace netcong::sim::packet
