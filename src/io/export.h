#pragma once

// Dataset export: write campaign results and topology summaries in the
// spirit of M-Lab's public releases (per-test rows, per-hop traceroute
// rows), so downstream analysis can happen outside this process (pandas,
// SQL, BigQuery-style workflows). CSV with stable column sets.

#include <string>

#include "gen/world.h"
#include "measure/matching.h"
#include "measure/ndt.h"
#include "measure/traceroute.h"
#include "util/csv.h"

namespace netcong::io {

// One row per NDT test: identifiers, timing, and the measured metrics the
// M-Lab reports analyzed (download/upload, flow RTT, retransmissions,
// congestion signals). Ground-truth columns are prefixed "truth_" and can
// be suppressed for blind analysis exercises.
util::CsvWriter export_ndt_tests(const gen::World& world,
                                 const std::vector<measure::NdtRecord>& tests,
                                 bool include_truth = true);

// One row per responding traceroute hop: (trace id, ttl, address, rtt,
// PTR name), mirroring the public Paris-traceroute tables.
util::CsvWriter export_traceroute_hops(
    const std::vector<measure::TracerouteRecord>& traceroutes);

// One row per matched test: test id and the timestamp delta to its
// traceroute (empty when unmatched) — the Section 4.1 join table.
util::CsvWriter export_matches(const std::vector<measure::MatchedTest>& matched);

// One row per interdomain link: endpoint addresses, ASNs, capacity, IXP
// flag, and (optionally) the planted load profile.
util::CsvWriter export_interdomain_links(const gen::World& world,
                                         bool include_truth = true);

// Convenience: write all four into a directory (created by the caller);
// returns false if any file fails to write.
bool export_campaign(const gen::World& world,
                     const std::vector<measure::NdtRecord>& tests,
                     const std::vector<measure::TracerouteRecord>& traceroutes,
                     const std::vector<measure::MatchedTest>& matched,
                     const std::string& directory, bool include_truth = true);

}  // namespace netcong::io
