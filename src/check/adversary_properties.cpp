#include <vector>

#include "check/fixtures.h"
#include "check/properties.h"
#include "measure/adversary.h"
#include "measure/fingerprint.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "route/path_cache.h"
#include "sim/adversary.h"
#include "util/strings.h"

// Adversarial-scenario invariants (DESIGN.md §14): every scenario is a pure
// function of (seed, config) — bit-identical campaign output across worker
// counts, path-cache settings, and instrumentation; churn leaves the
// pre-epoch prefix byte-for-byte equal to an un-churned run; and the
// Misleading-Stars construction yields two distinct ground truths under one
// observed corpus.

namespace netcong::check {
namespace {

using gen::GeneratorConfig;
using util::format;

struct AdversaryCell {
  const char* label;
  int threads;
  bool cache;
  bool instrumented;
};

constexpr AdversaryCell kAdversaryMatrix[] = {
    {"serial", 1, false, false},
    {"2 threads", 2, false, false},
    {"hardware threads", 0, false, false},
    {"serial+cache", 1, true, false},
    {"hardware+cache", 0, true, false},
    {"hardware+obs", 0, false, true},
};

std::string run_adversary_matrix(const Stack& s,
                                 const std::vector<gen::TestRequest>& schedule,
                                 std::uint64_t rng_seed,
                                 const sim::AdversaryScenario* adversary,
                                 measure::CampaignResult* serial_out = nullptr) {
  route::PathCache cache(s.fwd);
  bool have_baseline = false;
  std::uint64_t baseline = 0;
  const char* baseline_label = "";
  for (const AdversaryCell& cell : kAdversaryMatrix) {
    measure::CampaignConfig ccfg;
    ccfg.threads = cell.threads;
    measure::NdtCampaign campaign(s.world, s.fwd, s.model, s.mlab, ccfg);
    if (cell.cache) campaign.set_path_cache(&cache);
    if (adversary) campaign.set_adversary(adversary);

    bool metrics_were = obs::MetricsRegistry::global().enabled();
    bool traces_were = obs::TraceRecorder::global().enabled();
    if (cell.instrumented) {
      obs::MetricsRegistry::global().set_enabled(true);
      obs::TraceRecorder::global().set_enabled(true);
    }
    util::Rng rng(rng_seed);
    measure::CampaignResult result = campaign.run(schedule, rng);
    if (cell.instrumented) {
      obs::MetricsRegistry::global().set_enabled(metrics_were);
      obs::TraceRecorder::global().set_enabled(traces_were);
    }

    std::uint64_t fp = measure::fingerprint(result);
    if (!have_baseline) {
      have_baseline = true;
      baseline = fp;
      baseline_label = cell.label;
      if (serial_out) *serial_out = std::move(result);
    } else if (fp != baseline) {
      return format("adversarial campaign differs: '%s' vs '%s' "
                    "(fingerprints %016llx vs %016llx)",
                    cell.label, baseline_label,
                    static_cast<unsigned long long>(fp),
                    static_cast<unsigned long long>(baseline));
    }
  }
  return "";
}

sim::AdversaryConfig random_adversary(util::Rng& rng) {
  sim::AdversaryConfig cfg;
  cfg.enabled = true;
  // dense_schedule places all tests in [10.0, 10.2); an epoch inside that
  // window splits the campaign into a real pre/post pair.
  cfg.epoch_hours = rng.uniform(10.02, 10.09);
  cfg.churn_fraction = rng.uniform(0.2, 0.8);
  cfg.withdraw_links = static_cast<int>(rng.uniform_int(0, 2));
  cfg.asym_fraction = rng.uniform(0.0, 0.5);
  cfg.star_fraction = rng.uniform(0.0, 0.4);
  return cfg;
}

std::string check_scenario_determinism(const GeneratorConfig& cfg) {
  Stack s(cfg);
  util::Rng rng(cfg.seed ^ 0xadd511ull);
  sim::AdversaryConfig acfg = random_adversary(rng);
  std::uint64_t seed = cfg.seed ^ 0xad5ceull;

  sim::AdversaryScenario a(*s.world.topo, s.bgp, acfg, seed);
  sim::AdversaryScenario b(*s.world.topo, s.bgp, acfg, seed);
  if (a.withdrawn_links() != b.withdrawn_links()) {
    return "same (seed, config) picked different withdrawn links";
  }
  if (a.cloaked_router_count() != b.cloaked_router_count()) {
    return "same (seed, config) cloaked different router counts";
  }
  for (const topo::Router& r : s.world.topo->routers()) {
    if (a.router_cloaked(r.id) != b.router_cloaked(r.id)) {
      return format("cloak mask differs at router %u", r.id.value);
    }
  }

  auto schedule = dense_schedule(s.world, 2);
  return run_adversary_matrix(s, schedule, cfg.seed, &a);
}

std::string check_churn_prefix_equivalence(const GeneratorConfig& cfg) {
  Stack s(cfg);
  auto schedule = dense_schedule(s.world, 2);
  util::Rng rng(cfg.seed ^ 0xc4057ull);
  double epoch = rng.uniform(10.02, 10.09);
  sim::AdversaryConfig acfg =
      sim::AdversaryConfig::churn(epoch, rng.uniform(0.3, 1.0));
  sim::AdversaryScenario churned(*s.world.topo, s.bgp, acfg,
                                 cfg.seed ^ 0xc40511ull);
  sim::AdversaryScenario disabled(*s.world.topo, s.bgp, {},
                                  cfg.seed ^ 0xc40511ull);

  measure::CampaignResult base;
  std::string err = run_adversary_matrix(s, schedule, cfg.seed, nullptr, &base);
  if (!err.empty()) return err;
  measure::CampaignResult adv;
  err = run_adversary_matrix(s, schedule, cfg.seed, &churned, &adv);
  if (!err.empty()) return err;

  // A disabled scenario is the identity on the whole campaign.
  measure::CampaignResult inert;
  err = run_adversary_matrix(s, schedule, cfg.seed, &disabled, &inert);
  if (!err.empty()) return err;
  if (measure::fingerprint(inert) != measure::fingerprint(base)) {
    return "a disabled scenario changed the campaign output";
  }

  // Everything strictly before the epoch is byte-identical.
  std::uint64_t pre_base = measure::fingerprint_before(base, epoch);
  std::uint64_t pre_adv = measure::fingerprint_before(adv, epoch);
  if (pre_base != pre_adv) {
    return format("pre-epoch prefix differs under churn at t=%.3f "
                  "(%016llx vs %016llx)",
                  epoch, static_cast<unsigned long long>(pre_adv),
                  static_cast<unsigned long long>(pre_base));
  }
  return "";
}

std::string check_stars_indistinguishable(const GeneratorConfig& cfg) {
  Stack s(cfg);
  if (s.world.ark_vps.empty()) return "";
  util::Rng rng(cfg.seed ^ 0x57a25ull);
  sim::AdversaryConfig acfg =
      sim::AdversaryConfig::misleading_stars(rng.uniform(0.3, 1.0));
  sim::AdversaryScenario scenario(*s.world.topo, s.bgp, acfg,
                                  cfg.seed ^ 0x57a2ull);
  std::uint32_t vp = s.world.ark_vps[0];
  measure::ArkCampaignOptions options;

  util::Rng run_a(cfg.seed ^ 0xc0ull);
  util::Rng run_b(cfg.seed ^ 0xc0ull);
  measure::MisleadingStarsResult first = measure::misleading_stars_corpus(
      s.world, s.fwd, scenario, vp, options, run_a);
  measure::MisleadingStarsResult second = measure::misleading_stars_corpus(
      s.world, s.fwd, scenario, vp, options, run_b);

  if (first.observed_fp_a != second.observed_fp_a ||
      first.truth_fp_b != second.truth_fp_b) {
    return "misleading-stars corpus is not deterministic in (seed, config)";
  }
  if (!first.indistinguishable()) {
    return format("stars pair distinguishable: observed %016llx vs %016llx, "
                  "truth %016llx vs %016llx (%zu cloaked hops)",
                  static_cast<unsigned long long>(first.observed_fp_a),
                  static_cast<unsigned long long>(first.observed_fp_b),
                  static_cast<unsigned long long>(first.truth_fp_a),
                  static_cast<unsigned long long>(first.truth_fp_b),
                  first.cloaked_hops);
  }
  return "";
}

Property adversary_property(const char* name, const char* summary, int iters,
                            std::string (*fn)(const GeneratorConfig&)) {
  Property p;
  p.name = name;
  p.family = "adversary";
  p.summary = summary;
  p.default_iterations = iters;
  std::string pname = p.name;
  p.run = [pname, fn](util::pbt::Config cfg) {
    return util::pbt::check<GeneratorConfig>(pname, config_domain(), fn, cfg);
  };
  return p;
}

}  // namespace

void register_adversary_properties(std::vector<Property>& out) {
  out.push_back(adversary_property(
      "adversary.scenario_determinism",
      "adversarial campaign bit-identical across threads x cache x obs", 3,
      check_scenario_determinism));
  out.push_back(adversary_property(
      "adversary.churn_prefix_equivalence",
      "pre-churn prefix equals the un-churned run; disabled is identity", 3,
      check_churn_prefix_equivalence));
  out.push_back(adversary_property(
      "adversary.stars_indistinguishable",
      "misleading stars: one observed corpus, two distinct ground truths", 3,
      check_stars_indistinguishable));
}

}  // namespace netcong::check
