// Microbenchmarks (google-benchmark) for the core algorithms: prefix trie
// lookups, BGP routing-tree computation, router-level path construction,
// traceroute simulation, MAP-IT, bdrmap, and binary tomography.

#include <benchmark/benchmark.h>

#include "core/tomography.h"
#include "gen/world.h"
#include "infer/alias.h"
#include "infer/bdrmap.h"
#include "infer/datasets.h"
#include "infer/mapit.h"
#include "measure/ark.h"
#include "measure/traceroute.h"
#include "route/bgp.h"
#include "route/forwarding.h"
#include "util/rng.h"

namespace {

using namespace netcong;

const gen::World& world() {
  static const gen::World w = [] {
    gen::GeneratorConfig cfg = gen::GeneratorConfig::small();
    cfg.seed = 99;
    return gen::generate_world(cfg);
  }();
  return w;
}

void BM_PrefixTrieLookup(benchmark::State& state) {
  infer::Ip2As ip2as(*world().topo);
  util::Rng rng(1);
  std::vector<topo::IpAddr> addrs;
  for (int i = 0; i < 1024; ++i) {
    addrs.push_back(world().topo->host(
        world().clients[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(world().clients.size()) - 1))]).addr);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ip2as.origin(addrs[i++ & 1023]));
  }
}
BENCHMARK(BM_PrefixTrieLookup);

void BM_BgpTreeCompute(benchmark::State& state) {
  auto asns = world().topo->all_asns();
  std::size_t i = 0;
  for (auto _ : state) {
    // A fresh routing object each iteration so every tree is a cold compute.
    route::BgpRouting bgp(*world().topo);
    bgp.warm(asns[i++ % asns.size()]);
  }
}
BENCHMARK(BM_BgpTreeCompute);

void BM_ForwarderPath(benchmark::State& state) {
  static route::BgpRouting bgp(*world().topo);
  static route::Forwarder fwd(*world().topo, bgp);
  std::size_t i = 0;
  for (auto _ : state) {
    std::uint32_t s = world().mlab_servers[i % world().mlab_servers.size()];
    std::uint32_t c = world().clients[i % world().clients.size()];
    route::FlowKey k{world().topo->host(s).addr, world().topo->host(c).addr,
                     3001, static_cast<std::uint16_t>(i & 0xffff), 6};
    benchmark::DoNotOptimize(fwd.path(s, world().topo->host(c).addr, k));
    ++i;
  }
}
BENCHMARK(BM_ForwarderPath);

void BM_Traceroute(benchmark::State& state) {
  static route::BgpRouting bgp(*world().topo);
  static route::Forwarder fwd(*world().topo, bgp);
  util::Rng rng(3);
  measure::TracerouteOptions opt;
  std::size_t i = 0;
  for (auto _ : state) {
    std::uint32_t s = world().mlab_servers[i % world().mlab_servers.size()];
    std::uint32_t c = world().clients[i % world().clients.size()];
    benchmark::DoNotOptimize(measure::run_traceroute(
        *world().topo, fwd, s, world().topo->host(c).addr, 12.0, opt, rng));
    ++i;
  }
}
BENCHMARK(BM_Traceroute);

const std::vector<measure::TracerouteRecord>& corpus() {
  static const std::vector<measure::TracerouteRecord> c = [] {
    route::BgpRouting bgp(*world().topo);
    route::Forwarder fwd(*world().topo, bgp);
    util::Rng rng(4);
    measure::TracerouteOptions opt;
    std::vector<measure::TracerouteRecord> out;
    for (std::uint32_t s : world().mlab_servers) {
      for (std::size_t i = 0; i < world().clients.size(); i += 4) {
        out.push_back(measure::run_traceroute(
            *world().topo, fwd, s, world().topo->host(world().clients[i]).addr,
            12.0, opt, rng));
      }
    }
    return out;
  }();
  return c;
}

void BM_MapIt(benchmark::State& state) {
  infer::Ip2As ip2as(*world().topo);
  infer::OrgMap orgs(*world().topo);
  for (auto _ : state) {
    benchmark::DoNotOptimize(infer::run_mapit(corpus(), ip2as, orgs));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(corpus().size()));
}
BENCHMARK(BM_MapIt);

void BM_Bdrmap(benchmark::State& state) {
  static route::BgpRouting bgp(*world().topo);
  static route::Forwarder fwd(*world().topo, bgp);
  infer::Ip2As ip2as(*world().topo);
  infer::OrgMap orgs(*world().topo);
  infer::AliasResolver aliases(*world().topo, 0.9, 1);
  util::Rng rng(5);
  measure::ArkCampaignOptions opt;
  auto full = measure::ark_full_prefix_campaign(world(), fwd,
                                                world().ark_vps[0], opt, rng);
  topo::Asn vp_as = world().topo->host(world().ark_vps[0]).asn;
  for (auto _ : state) {
    benchmark::DoNotOptimize(infer::run_bdrmap(
        full, vp_as, ip2as, orgs, world().topo->relationships(), aliases));
  }
}
BENCHMARK(BM_Bdrmap);

void BM_TomographyGreedy(benchmark::State& state) {
  util::Rng rng(6);
  std::vector<core::PathObservation> obs;
  for (int p = 0; p < static_cast<int>(state.range(0)); ++p) {
    core::PathObservation o;
    for (int i = 0; i < 8; ++i) {
      o.links.push_back(
          topo::LinkId(static_cast<std::uint32_t>(rng.uniform_int(0, 499))));
    }
    o.bad = rng.chance(0.3);
    obs.push_back(std::move(o));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::greedy_binary_tomography(obs));
  }
}
BENCHMARK(BM_TomographyGreedy)->Arg(100)->Arg(1000)->Arg(5000);

}  // namespace

BENCHMARK_MAIN();
