#pragma once

// Minimal leveled logging to stderr. Benches and examples keep their tabular
// output on stdout; diagnostics go through here so they can be filtered.

#include <sstream>
#include <string>

namespace netcong::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Global threshold; messages below it are dropped. Default: kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

const char* log_level_name(LogLevel level);

// Emits one formatted line to stderr if `level` passes the threshold.
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, stream_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace netcong::util

#define NETCONG_LOG(level) ::netcong::util::detail::LogMessage(level)
#define NETCONG_DEBUG NETCONG_LOG(::netcong::util::LogLevel::kDebug)
#define NETCONG_INFO NETCONG_LOG(::netcong::util::LogLevel::kInfo)
#define NETCONG_WARN NETCONG_LOG(::netcong::util::LogLevel::kWarn)
#define NETCONG_ERROR NETCONG_LOG(::netcong::util::LogLevel::kError)
