#include "core/report.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "sim/diurnal.h"
#include "stats/descriptive.h"

namespace netcong::core {

namespace {

bool day_degraded(const ReportCell& c, std::size_t day, double fraction) {
  if (day >= c.daily_peak_median_mbps.size()) return false;
  double peak = c.daily_peak_median_mbps[day];
  double off = c.daily_offpeak_median_mbps[day];
  if (std::isnan(peak) || std::isnan(off) || off <= 0.0) return false;
  return peak < fraction * off;
}

}  // namespace

int ReportCell::degraded_days(double degraded_fraction) const {
  int n = 0;
  for (std::size_t d = 0; d < daily_peak_median_mbps.size(); ++d) {
    n += day_degraded(*this, d, degraded_fraction) ? 1 : 0;
  }
  return n;
}

int ReportCell::longest_degraded_streak(double degraded_fraction) const {
  int best = 0, cur = 0;
  for (std::size_t d = 0; d < daily_peak_median_mbps.size(); ++d) {
    if (day_degraded(*this, d, degraded_fraction)) {
      best = std::max(best, ++cur);
    } else {
      cur = 0;
    }
  }
  return best;
}

InterconnectReport build_interconnect_report(
    const std::vector<measure::NdtRecord>& tests, const gen::World& world,
    const std::map<topo::Asn, std::string>& isp_of,
    const ReportOptions& options) {
  const topo::Topology& topo = *world.topo;

  struct Key {
    std::string source, isp, metro;
    bool operator<(const Key& o) const {
      return std::tie(source, isp, metro) <
             std::tie(o.source, o.isp, o.metro);
    }
  };
  struct Accum {
    // [day][window]: window 0 = peak, 1 = offpeak
    std::vector<std::array<std::vector<double>, 2>> tput;
    std::vector<std::vector<double>> rtt;
    std::vector<std::vector<double>> retrans;
    std::vector<std::size_t> count;
    std::size_t total = 0;
  };
  std::map<Key, Accum> cells;

  auto in_window = [](double local, int from, int to) {
    int h = static_cast<int>(local);
    if (from <= to) return h >= from && h <= to;
    return h >= from || h <= to;
  };

  for (const auto& t : tests) {
    if (t.download_mbps <= 0.0) continue;
    auto isp_it = isp_of.find(t.client_asn);
    if (isp_it == isp_of.end()) continue;
    const auto& server_info = topo.as_info(t.server_asn);
    if (server_info.type != topo::AsType::kTransit) continue;
    const topo::Host& server = topo.host(t.server);
    Key key{server_info.name, isp_it->second,
            topo.city(server.city).code};

    const topo::Host& client = topo.host(t.client);
    int offset = topo.city(client.city).utc_offset_hours;
    double local =
        sim::local_hour(std::fmod(t.utc_time_hours, 24.0), offset);
    int day = static_cast<int>(t.utc_time_hours / 24.0);
    if (day < 0 || day >= options.days) continue;

    Accum& acc = cells[key];
    if (acc.tput.empty()) {
      acc.tput.resize(static_cast<std::size_t>(options.days));
      acc.rtt.resize(static_cast<std::size_t>(options.days));
      acc.retrans.resize(static_cast<std::size_t>(options.days));
      acc.count.resize(static_cast<std::size_t>(options.days), 0);
    }
    auto d = static_cast<std::size_t>(day);
    acc.total++;
    acc.count[d]++;
    acc.rtt[d].push_back(t.flow_rtt_ms);
    acc.retrans[d].push_back(t.retrans_rate);
    if (in_window(local, options.peak_from, options.peak_to)) {
      acc.tput[d][0].push_back(t.download_mbps);
    } else if (in_window(local, options.offpeak_from, options.offpeak_to)) {
      acc.tput[d][1].push_back(t.download_mbps);
    }
  }

  InterconnectReport report;
  for (auto& [key, acc] : cells) {
    if (acc.total < options.min_tests_per_cell) continue;
    ReportCell cell;
    cell.source = key.source;
    cell.isp = key.isp;
    cell.metro = key.metro;
    cell.tests = acc.total;
    for (std::size_t d = 0; d < acc.count.size(); ++d) {
      cell.daily_peak_median_mbps.push_back(stats::median(acc.tput[d][0]));
      cell.daily_offpeak_median_mbps.push_back(stats::median(acc.tput[d][1]));
      cell.daily_median_rtt_ms.push_back(stats::median(acc.rtt[d]));
      cell.daily_retrans_rate.push_back(stats::median(acc.retrans[d]));
      cell.daily_tests.push_back(acc.count[d]);
    }
    report.cells.push_back(std::move(cell));
  }

  // Flag persistent cells, most degraded first.
  std::vector<std::pair<int, std::size_t>> flagged;
  for (std::size_t i = 0; i < report.cells.size(); ++i) {
    int streak =
        report.cells[i].longest_degraded_streak(options.degraded_fraction);
    if (streak >= options.persistent_streak_days) {
      flagged.emplace_back(streak, i);
    }
  }
  std::sort(flagged.begin(), flagged.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (const auto& [streak, i] : flagged) report.persistent.push_back(i);
  return report;
}

}  // namespace netcong::core
