file(REMOVE_RECURSE
  "libnetcong_sim.a"
)
