#include <gtest/gtest.h>

#include "helpers.h"
#include "measure/traceroute.h"
#include "route/bgp.h"
#include "route/forwarding.h"
#include "route/path.h"

namespace netcong::measure {
namespace {

using test::HandTopo;
using topo::AsType;
using topo::HostKind;
using topo::RelType;

TEST(FlowHash, DeterministicAndSaltSensitive) {
  route::FlowKey k{topo::IpAddr(1, 2, 3, 4), topo::IpAddr(5, 6, 7, 8), 100,
                   200, 6};
  EXPECT_EQ(route::flow_hash(k, 1), route::flow_hash(k, 1));
  EXPECT_NE(route::flow_hash(k, 1), route::flow_hash(k, 2));
  route::FlowKey k2 = k;
  k2.dst_port = 201;
  EXPECT_NE(route::flow_hash(k, 1), route::flow_hash(k2, 1));
}

class ProbeFixture : public ::testing::Test {
 protected:
  ProbeFixture() {
    h.add_as(100, "T", AsType::kTransit, {0, 1});
    h.add_as(200, "A", AsType::kAccess, {0, 1});
    links = h.connect(200, 100, RelType::kCustomer, {0});
    server = h.add_host(100, 1, HostKind::kTestServer);
    client = h.add_host(200, 0, HostKind::kClient);
  }
  HandTopo h;
  std::vector<topo::LinkId> links;
  std::uint32_t server = 0, client = 0;
};

TEST_F(ProbeFixture, RttProbeReflectsCongestionWindow) {
  route::BgpRouting bgp(h.topo());
  route::Forwarder fwd(h.topo(), bgp);
  sim::TrafficModel traffic(h.topo());
  sim::LinkLoadProfile quiet;
  quiet.base_util = 0.1;
  quiet.peak_util = 0.2;
  quiet.noise_sigma = 0.0;
  traffic.set_default_profile(quiet);
  sim::LinkLoadProfile hot = quiet;
  hot.peak_util = 1.1;
  traffic.set_profile(links[0], hot);

  util::Rng rng(1);
  // Link city is NYC (UTC-5): local peak 21:00 ~ UTC 2:00; trough ~ UTC 9.
  double peak = rtt_probe(h.topo(), fwd, traffic, server,
                          h.topo().host(client).addr, 2.0, rng);
  double trough = rtt_probe(h.topo(), fwd, traffic, server,
                            h.topo().host(client).addr, 9.0, rng);
  ASSERT_GT(peak, 0.0);
  ASSERT_GT(trough, 0.0);
  EXPECT_GT(peak, trough + 20.0);  // the standing queue is visible
}

TEST_F(ProbeFixture, RttProbeUnreachable) {
  route::BgpRouting bgp(h.topo());
  route::Forwarder fwd(h.topo(), bgp);
  sim::TrafficModel traffic(h.topo());
  util::Rng rng(2);
  EXPECT_LT(rtt_probe(h.topo(), fwd, traffic, server,
                      topo::IpAddr(250, 0, 0, 1), 0.0, rng),
            0.0);
}

TEST_F(ProbeFixture, QueueAwareTracerouteElevatesRtts) {
  route::BgpRouting bgp(h.topo());
  route::Forwarder fwd(h.topo(), bgp);
  sim::TrafficModel traffic(h.topo());
  sim::LinkLoadProfile hot;
  hot.base_util = 0.1;
  hot.peak_util = 1.15;
  hot.noise_sigma = 0.0;
  traffic.set_profile(links[0], hot);

  util::Rng rng(3);
  TracerouteOptions plain;
  plain.star_prob = 0.0;
  plain.client_silent_prob = 0.0;
  TracerouteOptions aware = plain;
  aware.traffic = &traffic;

  // At the link's local peak (UTC 2), the queue-aware trace's final RTT
  // exceeds the propagation-only trace's.
  auto t_plain = run_traceroute(h.topo(), fwd, server,
                                h.topo().host(client).addr, 2.0, plain, rng);
  auto t_aware = run_traceroute(h.topo(), fwd, server,
                                h.topo().host(client).addr, 2.0, aware, rng);
  ASSERT_FALSE(t_plain.hops.empty());
  ASSERT_FALSE(t_aware.hops.empty());
  EXPECT_GT(t_aware.hops.back().rtt_ms, t_plain.hops.back().rtt_ms + 20.0);
  // Hops before the congested link are unaffected (first hop).
  EXPECT_NEAR(t_aware.hops.front().rtt_ms, t_plain.hops.front().rtt_ms, 2.0);
}

TEST(RouterPath, AsHopCount) {
  route::RouterPath p;
  EXPECT_EQ(p.as_hop_count(), 0u);
  p.as_path = {1};
  EXPECT_EQ(p.as_hop_count(), 0u);
  p.as_path = {1, 2, 3};
  EXPECT_EQ(p.as_hop_count(), 2u);
}

}  // namespace
}  // namespace netcong::measure
