// Columnar-corpus tests: the SoA campaign engine (run_columnar) must be
// bit-identical to the classic AoS engine across worker counts, path-cache
// attachment, and fault injection — pinned by golden fingerprints captured
// from the pre-migration seed build — plus PathPool interning semantics and
// the bounded-batch streaming helper's edge cases.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/diurnal.h"
#include "gen/workload.h"
#include "gen/world.h"
#include "measure/corpus.h"
#include "measure/fingerprint.h"
#include "measure/ndt.h"
#include "measure/platform.h"
#include "route/bgp.h"
#include "route/forwarding.h"
#include "route/path_cache.h"
#include "sim/faults.h"
#include "sim/throughput.h"
#include "util/rng.h"

namespace {

using namespace netcong;

// Golden fingerprints captured from the seed build's classic engine before
// any container/layout migration. These pin the full campaign output —
// every record field, truth path, traceroute hop, and quality row.
// Re-pinned when DataQuality grew the ingest_* rows (DESIGN.md §12): the
// fingerprint mixes every quality row by name, so extending the struct
// moves the hash even though the campaign records are bit-identical.
constexpr std::uint64_t kGoldenTiny = 0x04afeefff300ee60ull;
constexpr std::uint64_t kGoldenTinyFaulted = 0xdf69f77254802367ull;

struct CampaignRig {
  gen::World world;
  route::BgpRouting bgp;
  route::Forwarder fwd;
  sim::ThroughputModel model;
  measure::Platform mlab;

  explicit CampaignRig(std::uint64_t world_seed)
      : world([&] {
          gen::GeneratorConfig gc = gen::GeneratorConfig::tiny();
          gc.seed = world_seed;
          return gen::generate_world(gc);
        }()),
        bgp(*world.topo),
        fwd(*world.topo, bgp),
        model(*world.topo, *world.traffic),
        mlab("M-Lab", *world.topo, world.mlab_servers) {}

  std::vector<gen::TestRequest> schedule(std::uint64_t seed) const {
    gen::WorkloadConfig wl;
    wl.days = 3;
    wl.mean_tests_per_client = 4.0;
    util::Rng rng(seed);
    return gen::crowdsourced_schedule(world, world.clients, wl, rng);
  }
};

CampaignRig& rig() {
  static CampaignRig r(31337);
  return r;
}

measure::CampaignConfig config_with_threads(int threads) {
  measure::CampaignConfig cc;
  cc.threads = threads;
  return cc;
}

std::uint64_t classic_fp(int threads, bool cached, bool faulted) {
  measure::NdtCampaign campaign(rig().world, rig().fwd, rig().model,
                                rig().mlab, config_with_threads(threads));
  route::PathCache cache(rig().fwd);
  if (cached) campaign.set_path_cache(&cache);
  sim::FaultInjector faults(sim::FaultConfig::scaled(0.3), 4242);
  if (faulted) campaign.set_faults(&faults);
  util::Rng rng(99);
  auto result = campaign.run(rig().schedule(99), rng);
  return measure::fingerprint(result);
}

measure::ColumnarCampaignResult columnar_run(int threads, bool cached,
                                             bool faulted) {
  measure::NdtCampaign campaign(rig().world, rig().fwd, rig().model,
                                rig().mlab, config_with_threads(threads));
  route::PathCache cache(rig().fwd);
  if (cached) campaign.set_path_cache(&cache);
  sim::FaultInjector faults(sim::FaultConfig::scaled(0.3), 4242);
  if (faulted) campaign.set_faults(&faults);
  util::Rng rng(99);
  return campaign.run_columnar(rig().schedule(99), rng);
}

TEST(CorpusGolden, ClassicMatchesSeedBuild) {
  EXPECT_EQ(classic_fp(0, false, false), kGoldenTiny);
  EXPECT_EQ(classic_fp(0, true, false), kGoldenTiny);  // cache is transparent
  EXPECT_EQ(classic_fp(0, true, true), kGoldenTinyFaulted);
}

TEST(CorpusGolden, ColumnarMatchesClassicAcrossWorkerCounts) {
  for (int threads : {1, 2, 5}) {
    auto col = columnar_run(threads, true, false);
    EXPECT_EQ(measure::fingerprint(col), kGoldenTiny) << threads << " workers";
  }
  auto faulted = columnar_run(3, true, true);
  EXPECT_EQ(measure::fingerprint(faulted), kGoldenTinyFaulted);
}

TEST(CorpusGolden, MaterializeRoundTripsBitExactly) {
  auto col = columnar_run(2, true, false);
  measure::CampaignResult aos = col.materialize();
  EXPECT_EQ(measure::fingerprint(aos), kGoldenTiny);
  ASSERT_EQ(aos.tests.size(), col.tests.size());
  ASSERT_EQ(aos.traceroutes.size(), col.traceroutes.size());
  EXPECT_EQ(aos.quality.rows().size(), col.quality.rows().size());
}

TEST(CorpusLayout, TraceSpansAndPathPool) {
  auto col = columnar_run(2, true, false);
  ASSERT_GT(col.traceroutes.size(), 0u);
  std::size_t hops = 0;
  for (std::size_t i = 0; i < col.traceroutes.size(); ++i) {
    std::uint32_t n = col.traceroutes.hop_count[i];
    // The span pointer is null exactly when the trace recorded no hops.
    EXPECT_EQ(col.traceroutes.hops[i] == nullptr, n == 0) << "trace " << i;
    hops += n;
  }
  EXPECT_EQ(col.traceroutes.total_hops(), hops);

  // Interning: far fewer distinct paths than tests (repeat pairs share),
  // and every non-null ref resolves to a valid path.
  ASSERT_GT(col.paths.size(), 0u);
  EXPECT_LT(col.paths.size(), col.tests.size());
  for (std::size_t i = 0; i < col.tests.size(); ++i) {
    measure::PathRef ref = col.tests.truth_path[i];
    if (ref == measure::kNoPath) continue;
    ASSERT_LT(ref, col.paths.size());
    EXPECT_TRUE(col.paths.at(ref).valid);
  }
  // kNoPath materializes as the default (invalid) path.
  EXPECT_FALSE(col.paths.at(measure::kNoPath).valid);
}

TEST(CorpusLayout, DiurnalColumnarOverloadMatchesClassic) {
  auto col = columnar_run(2, true, false);
  measure::CampaignResult aos = col.materialize();

  auto source_of = [](const measure::NdtRecord& t) {
    return "as" + std::to_string(t.server_asn);
  };
  auto isp_of = [](const measure::NdtRecord& t) {
    return "isp" + std::to_string(t.client_asn);
  };
  core::DiurnalBuildStats cs, ks;
  auto classic = core::build_diurnal_groups(aos.tests, rig().world, source_of,
                                            isp_of, &cs);
  for (std::size_t batch : {std::size_t{0}, std::size_t{1}, std::size_t{777},
                            col.tests.size() + 5}) {
    auto columnar = core::build_diurnal_groups(col.tests, rig().world,
                                               source_of, isp_of, &ks, batch);
    ASSERT_EQ(columnar.size(), classic.size()) << "batch " << batch;
    EXPECT_EQ(ks.total, cs.total);
    EXPECT_EQ(ks.used, cs.used);
    auto a = classic.begin();
    for (auto b = columnar.begin(); b != columnar.end(); ++a, ++b) {
      EXPECT_EQ(a->first.source, b->first.source);
      EXPECT_EQ(a->first.isp, b->first.isp);
      EXPECT_EQ(a->second.tests, b->second.tests);
    }
  }
}

TEST(CorpusBatching, PartitionsExactly) {
  auto collect = [](std::size_t n, std::size_t batch) {
    std::vector<std::pair<std::size_t, std::size_t>> ranges;
    measure::for_each_batch(n, batch, [&](std::size_t b, std::size_t e) {
      ranges.emplace_back(b, e);
    });
    return ranges;
  };

  // Empty corpus: no batches at all.
  EXPECT_TRUE(collect(0, 16).empty());
  EXPECT_TRUE(collect(0, 0).empty());

  // Batch size 1: one range per element.
  auto ones = collect(5, 1);
  ASSERT_EQ(ones.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(ones[i], std::make_pair(i, i + 1));
  }

  // Batch larger than the corpus: a single full range.
  auto big = collect(7, 100);
  ASSERT_EQ(big.size(), 1u);
  EXPECT_EQ(big[0], std::make_pair(std::size_t{0}, std::size_t{7}));

  // Batch 0 means "one batch".
  auto zero = collect(7, 0);
  ASSERT_EQ(zero.size(), 1u);
  EXPECT_EQ(zero[0], std::make_pair(std::size_t{0}, std::size_t{7}));

  // General case: contiguous half-open ranges covering [0, n) in order.
  auto gen = collect(10, 3);
  ASSERT_EQ(gen.size(), 4u);
  std::size_t cursor = 0;
  for (auto [b, e] : gen) {
    EXPECT_EQ(b, cursor);
    EXPECT_LE(e - b, 3u);
    cursor = e;
  }
  EXPECT_EQ(cursor, 10u);
}

TEST(CorpusBatching, PathPoolInterning) {
  measure::PathPool pool;
  auto p1 = std::make_shared<const route::RouterPath>();
  auto p2 = std::make_shared<const route::RouterPath>();
  route::PathCache::Key k1{1, 2, 3};
  route::PathCache::Key k2{1, 2, 4};
  measure::PathRef r1 = pool.intern(k1, p1);
  measure::PathRef r1b = pool.intern(k1, p2);  // same key: same slot
  measure::PathRef r2 = pool.intern(k2, p2);
  EXPECT_EQ(r1, r1b);
  EXPECT_NE(r1, r2);
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(&pool.at(r1), p1.get());  // first intern wins
  EXPECT_EQ(&pool.at(r2), p2.get());
}

}  // namespace
