// infer/pathmodel classifier tests: synthetic traces with known structure
// (so each labeling rule is exercised in isolation), plus the ground-truth
// simulation suite from core/pathmodel_eval under each congestion control.

#include <gtest/gtest.h>

#include <cmath>

#include "core/pathmodel_eval.h"
#include "infer/pathmodel.h"

namespace netcong {
namespace {

using infer::BottleneckSite;
using infer::FlowLabel;
using infer::FlowTrace;
using infer::PathModelResult;

// Hand-built trace: acks at `pps` from t=0 to `dur`, RTT samples every
// 50 ms from the callback. Callers then distort pieces of it.
FlowTrace steady_trace(double pps, double dur,
                       double (*rtt_ms_at)(double t)) {
  FlowTrace trace;
  trace.start_s = 0.0;
  trace.stop_s = dur;
  std::int64_t seq = 0;
  for (double t = 0.0; t < dur; t += 1.0 / pps) {
    trace.ack_trace.emplace_back(t, seq++);
  }
  for (double t = 0.0; t < dur; t += 0.05) {
    trace.rtt_samples_ms.push_back(rtt_ms_at(t));
    trace.rtt_sample_times_s.push_back(t);
  }
  return trace;
}

TEST(PathModel, SparseTraceIsInvalid) {
  FlowTrace empty;
  EXPECT_FALSE(infer::classify_flow(empty).valid);

  FlowTrace tiny;
  tiny.stop_s = 1.0;
  tiny.ack_trace = {{0.1, 0}, {0.2, 1}};
  tiny.rtt_samples_ms = {20.0};
  tiny.rtt_sample_times_s = {0.1};
  EXPECT_FALSE(infer::classify_flow(tiny).valid);
}

TEST(PathModel, FlatRttAtFullPipeIsBandwidthLimited) {
  // 1000 pps delivered, 20 ms flat RTT -> inflight = BDP = 20 packets.
  FlowTrace trace = steady_trace(1000.0, 10.0, [](double) { return 20.0; });
  PathModelResult r = infer::classify_flow(trace);
  ASSERT_TRUE(r.valid);
  EXPECT_EQ(r.label, FlowLabel::kBandwidthLimited);
  EXPECT_EQ(r.site, BottleneckSite::kNone);
  EXPECT_NEAR(r.btlbw_pps, 1000.0, 50.0);
  EXPECT_NEAR(r.rtprop_ms, 20.0, 1e-9);
  EXPECT_NEAR(r.avg_inflight_packets, 20.0, 2.0);
}

TEST(PathModel, BurstyUnderfilledTraceIsSenderLimited) {
  // Bursts reveal a 1000 pps line rate, but the flow averages ~300 pps:
  // 10 acks 1 ms apart, then a 26 ms pause. RTT stays at the floor.
  FlowTrace trace;
  trace.start_s = 0.0;
  trace.stop_s = 10.0;
  std::int64_t seq = 0;
  for (double burst = 0.0; burst < 10.0; burst += 0.035) {
    for (int i = 0; i < 10; ++i) {
      trace.ack_trace.emplace_back(burst + 0.001 * i, seq++);
    }
  }
  for (double t = 0.0; t < 10.0; t += 0.05) {
    trace.rtt_samples_ms.push_back(20.0);
    trace.rtt_sample_times_s.push_back(t);
  }
  PathModelResult r = infer::classify_flow(trace);
  ASSERT_TRUE(r.valid);
  EXPECT_EQ(r.label, FlowLabel::kSenderLimited);
  EXPECT_NEAR(r.btlbw_pps, 1000.0, 150.0);  // burst rate, not average rate
  EXPECT_LT(r.avg_inflight_packets, 0.85 * r.bdp_packets);
}

TEST(PathModel, PreExistingInflationLocalizesInterdomain) {
  // RTT inflated from the very first sample (the queue predates the flow),
  // while the flow itself ramps up slowly — it cannot have delivered a BDP
  // by the time inflation started, so the congestion is ambient.
  FlowTrace trace;
  trace.start_s = 0.0;
  trace.stop_s = 10.0;
  std::int64_t seq = 0;
  // Slow-start-like ramp: 50 pps for the first 2 s, then 500 pps. The
  // 8-ack BtlBw windows over the fast portion still reveal the line rate.
  for (double t = 0.0; t < 2.0; t += 0.02) trace.ack_trace.emplace_back(t, seq++);
  for (double t = 2.0; t < 10.0; t += 0.002) {
    trace.ack_trace.emplace_back(t, seq++);
  }
  // One early floor sample so rtprop is observable (e.g. the SYN), then
  // persistently inflated RTTs from the start.
  trace.rtt_samples_ms.push_back(20.0);
  trace.rtt_sample_times_s.push_back(0.0);
  for (double t = 0.01; t < 10.0; t += 0.05) {
    trace.rtt_samples_ms.push_back(45.0);
    trace.rtt_sample_times_s.push_back(t);
  }
  PathModelResult r = infer::classify_flow(trace);
  ASSERT_TRUE(r.valid);
  EXPECT_EQ(r.label, FlowLabel::kCongestionLimited);
  EXPECT_EQ(r.site, BottleneckSite::kInterdomain);
  EXPECT_GE(r.inflation_onset_s, 0.0);
  EXPECT_LT(r.inflation_onset_s, r.own_fill_s);
}

TEST(PathModel, InflationAfterOwnFillLocalizesAccess) {
  // RTT at the floor until t=3 (long after the flow delivered a BDP),
  // inflated afterwards: congestion the flow's side induced.
  FlowTrace trace = steady_trace(
      500.0, 10.0, [](double t) { return t < 3.0 ? 20.0 : 45.0; });
  PathModelResult r = infer::classify_flow(trace);
  ASSERT_TRUE(r.valid);
  EXPECT_EQ(r.label, FlowLabel::kCongestionLimited);
  EXPECT_EQ(r.site, BottleneckSite::kAccess);
  EXPECT_GT(r.inflation_onset_s, r.own_fill_s);
}

TEST(PathModel, LabelNamesRoundTrip) {
  for (FlowLabel label :
       {FlowLabel::kBandwidthLimited, FlowLabel::kCongestionLimited,
        FlowLabel::kSenderLimited}) {
    FlowLabel parsed;
    ASSERT_TRUE(infer::parse_flow_label(infer::flow_label_name(label),
                                        &parsed));
    EXPECT_EQ(parsed, label);
  }
  FlowLabel parsed;
  EXPECT_FALSE(infer::parse_flow_label("nope", &parsed));
}

// --- ground-truth suite ----------------------------------------------------

TEST(PathModelSuite, ScenarioNamesRoundTrip) {
  for (core::PathModelScenario s :
       {core::PathModelScenario::kBandwidth, core::PathModelScenario::kSender,
        core::PathModelScenario::kInterdomain,
        core::PathModelScenario::kAccess, core::PathModelScenario::kAll}) {
    core::PathModelScenario parsed;
    ASSERT_TRUE(core::parse_pathmodel_scenario(
        core::pathmodel_scenario_name(s), &parsed));
    EXPECT_EQ(parsed, s);
  }
  core::PathModelScenario parsed;
  EXPECT_FALSE(core::parse_pathmodel_scenario("moon", &parsed));
}

TEST(PathModelSuite, SenderScenarioIsLabeledSenderLimited) {
  for (sim::packet::CcAlgo cc :
       {sim::packet::CcAlgo::kNewReno, sim::packet::CcAlgo::kCubic,
        sim::packet::CcAlgo::kBbr}) {
    auto cases = core::run_pathmodel_suite(
        cc, core::PathModelScenario::kSender, 1);
    ASSERT_EQ(cases.size(), 1u);
    EXPECT_EQ(cases[0].truth_label, FlowLabel::kSenderLimited);
    EXPECT_TRUE(cases[0].result.valid);
    EXPECT_EQ(cases[0].result.label, FlowLabel::kSenderLimited)
        << sim::packet::cc_algo_name(cc);
  }
}

TEST(PathModelSuite, BeatsThresholdBaselineOnTinySuite) {
  // One instance per class under Cubic: the classifier must match every
  // truth label and beat the oracle-picked threshold baseline — the same
  // acceptance gate bench_pathmodel enforces at full size. (Cubic, not
  // NewReno: reno's one known borderline miss in the full suite is exactly
  // the smallest interdomain instance this tiny suite would run; see
  // EXPERIMENTS.md §6.3.)
  auto cases = core::run_pathmodel_suite(
      sim::packet::CcAlgo::kCubic, core::PathModelScenario::kAll, 1);
  ASSERT_EQ(cases.size(), 4u);
  core::PathModelScore score = core::score_pathmodel(cases);
  EXPECT_GT(score.congested.f1, score.baseline_best_f1);
  EXPECT_EQ(score.localization_total, 2);
  EXPECT_EQ(score.localization_correct, 2);
  EXPECT_DOUBLE_EQ(score.label_accuracy, 1.0);
}

}  // namespace
}  // namespace netcong
