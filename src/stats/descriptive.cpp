#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace netcong::stats {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
}

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return kNaN;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.empty()) return kNaN;
  double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

double median(std::vector<double> xs) { return percentile(std::move(xs), 50.0); }

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return kNaN;
  std::sort(xs.begin(), xs.end());
  p = std::clamp(p, 0.0, 100.0);
  double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  std::size_t lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double min(const std::vector<double>& xs) {
  if (xs.empty()) return kNaN;
  return *std::min_element(xs.begin(), xs.end());
}

double max(const std::vector<double>& xs) {
  if (xs.empty()) return kNaN;
  return *std::max_element(xs.begin(), xs.end());
}

double sum(const std::vector<double>& xs) {
  return std::accumulate(xs.begin(), xs.end(), 0.0);
}

double coeff_variation(const std::vector<double>& xs) {
  double m = mean(xs);
  if (!(m != 0.0)) return kNaN;  // also catches NaN
  return stddev(xs) / m;
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  double delta = other.mean_ - mean_;
  std::size_t total = n_ + other.n_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) /
                         static_cast<double>(total);
  mean_ += delta * static_cast<double>(other.n_) / static_cast<double>(total);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ = total;
}

double RunningStats::mean() const { return n_ ? mean_ : kNaN; }

double RunningStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : kNaN;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return n_ ? min_ : kNaN; }

double RunningStats::max() const { return n_ ? max_ : kNaN; }

}  // namespace netcong::stats
