#pragma once

// Published numbers from the paper, kept in one place and used for two
// purposes only:
//  (1) calibrating the synthetic topology generator so the substrate has the
//      statistical character of the 2015-2017 US interconnection ecosystem;
//  (2) printing paper-vs-measured comparisons in the bench binaries.
// Inference code never reads this file.

#include <cstdint>
#include <string_view>
#include <vector>

namespace netcong::gen::paper {

// ---- Table 1: US broadband providers with >1M subscribers (Q3 2015) ----
struct ProviderRow {
  std::string_view name;
  std::int64_t subscribers;
};
const std::vector<ProviderRow>& table1_providers();

// ---- Figure 1 / Section 4.2: fraction of matched traceroutes with the
// server AS directly connected to the client AS (one AS hop), May 2015 ----
struct AdjacencyRow {
  std::string_view isp;
  double one_hop_fraction;   // e.g. 0.96 for Comcast
  int matched_traceroutes;   // the count above each bar (thousands -> units)
};
const std::vector<AdjacencyRow>& fig1_adjacency();

// ---- Section 4.1: NDT <-> Paris traceroute matching fractions ----
struct MatchingStats {
  double may2015_after_window = 0.71;   // 10-min window after the test
  double may2015_either_side = 0.87;    // window before or after
  double mar2017_after_window = 0.76;
  std::int64_t may2015_total_tests = 743780;
  std::int64_t may2015_matched = 527480;
};
MatchingStats sec41_matching();

// ---- Table 3: bdrmap border counts per Ark VP (Jan-Feb 2017) ----
struct BdrmapRow {
  std::string_view network;  // "Comcast"
  std::string_view vp;       // "bed-us"
  int all_as, all_router;
  int cust_as, cust_router;
  int prov_as, prov_router;
  int peer_as, peer_router;
};
const std::vector<BdrmapRow>& table3_bdrmap();

// ---- Section 5.2: coverage of AS-level interconnections (Feb 2017) ----
struct CoverageRow {
  std::string_view isp;
  double mlab_all_as_pct;       // e.g. 0.9 for Comcast (percent)
  double speedtest_all_as_pct;  // e.g. 5.6
};
const std::vector<CoverageRow>& sec52_coverage();

// Peer-only coverage bounds quoted in the abstract/Section 5.2.
struct PeerCoverageBounds {
  double mlab_min_pct = 2.8;   // RCN
  double mlab_max_pct = 30.0;  // Sonic
  double speedtest_min_pct = 14.0;
  double speedtest_max_pct = 86.0;
  int comcast_peers_total = 41;
  int comcast_peers_mlab = 12;
  int comcast_peers_speedtest = 32;
};
PeerCoverageBounds sec52_peer_bounds();

// ---- Section 5.3: Alexa overlap ----
struct AlexaOverlap {
  // Share of AS-level interconnections on paths to Alexa targets that were
  // NOT covered by M-Lab servers.
  double alexa_not_mlab_min_pct = 79.0;
  double alexa_not_mlab_max_pct = 90.0;
  // Comcast bed-us example.
  int comcast_alexa_links = 71;
  int comcast_alexa_not_mlab = 62;
  int comcast_alexa_not_speedtest = 34;
};
AlexaOverlap sec53_alexa();

// ---- Section 5.4: server-fleet snapshots ----
struct Snapshots {
  int mlab_servers_2015 = 261;
  int mlab_servers_2017 = 261;
  int speedtest_servers_2015 = 3591;
  int speedtest_servers_2017 = 5209;
};
Snapshots sec54_snapshots();

// ---- Figure 5 / Section 6.2: diurnal case study, GTT (Atlanta) ----
struct DiurnalCase {
  // AT&T: off-peak highs above 10 Mbps collapse below 1 Mbps at peak.
  double att_offpeak_mbps_min = 10.0;
  double att_peak_mbps_max = 1.0;
  // Comcast: peak-to-trough drop ~30% (20% excluding sparse hours), but the
  // link was classified uncongested.
  double comcast_drop_fraction = 0.30;
  double comcast_drop_fraction_dense_hours = 0.20;
};
DiurnalCase fig5_case();

// ---- Table 2: interdomain links seen from the Atlanta Level3 server ----
struct Table2Row {
  std::string_view client;  // "Comcast (AS7922)"
  int links;
  std::string_view tests_per_link;  // formatted as in the paper
};
const std::vector<Table2Row>& table2_links();

}  // namespace netcong::gen::paper
