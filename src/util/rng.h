#pragma once

// Deterministic random number generation for reproducible simulations.
//
// Every stochastic component in netcong draws from an Rng that is seeded
// explicitly, typically by forking a parent Rng with a string label. Forking
// (rather than sharing one generator) keeps modules reproducible even when
// the order of draws between modules changes.

#include <cstdint>
#include <random>
#include <string_view>
#include <vector>

namespace netcong::util {

// Drop-in mt19937_64 with lazy state construction. Produces the exact
// output sequence of std::mt19937_64(seed) — same seed-init recurrence,
// same twist, same tempering — but computes state words on demand instead
// of eagerly: std::mt19937_64 pays a 312-word seed init at construction
// and a full 312-word block refill on the first draw, which dominates the
// campaign engine's cost when millions of short-lived forked streams each
// draw only a handful of values. Here construction stores one word, and a
// stream that draws D values runs min(D+156, 312) init steps and D twist
// steps. Long-lived heavy users pay a small per-draw branch instead of
// amortized block refills; the campaign's fork-per-request pattern is the
// hot path this trades for.
class LazyMt64 {
 public:
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  explicit LazyMt64(std::uint64_t seed) { x_[0] = seed; }

  result_type operator()() {
    const std::uint64_t k = k_++;
    if (k < kN) {
      // Dependencies that are still seed-init words: x_k, x_{k+1}, and
      // x_{k+m} while it falls below n. Draws are sequential, so extending
      // the init frontier here never touches an already-recycled slot.
      const std::size_t needed = (k + kM < kN) ? k + kM : k + 1;
      if (needed < kN) ensure_init(needed);
    }
    // x_{n+k} = x_{m+k} ^ twist(x_k, x_{k+1}); slot j%n holds x_j for the
    // last n positions, exactly the in-place ring of _M_gen_rand.
    const std::uint64_t y = (x_[k % kN] & 0xFFFFFFFF80000000ull) |
                            (x_[(k + 1) % kN] & 0x7FFFFFFFull);
    std::uint64_t z = x_[(k + kM) % kN] ^ (y >> 1) ^
                      ((y & 1) ? 0xB5026F5AA96619E9ull : 0);
    x_[k % kN] = z;
    z ^= (z >> 29) & 0x5555555555555555ull;
    z ^= (z << 17) & 0x71D67FFFEDA60000ull;
    z ^= (z << 37) & 0xFFF7EEE000000000ull;
    z ^= z >> 43;
    return z;
  }

 private:
  static constexpr std::size_t kN = 312;
  static constexpr std::size_t kM = 156;

  void ensure_init(std::size_t p) {
    while (init_filled_ <= p) {
      const std::uint64_t prev = x_[init_filled_ - 1];
      x_[init_filled_] =
          6364136223846793005ull * (prev ^ (prev >> 62)) + init_filled_;
      ++init_filled_;
    }
  }

  std::uint64_t x_[kN];
  std::size_t init_filled_ = 1;
  std::uint64_t k_ = 0;
};

// A labeled, forkable wrapper around a 64-bit Mersenne Twister.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  // Derives an independent generator whose seed depends on this generator's
  // seed and the label, but not on how many draws have been made.
  [[nodiscard]] Rng fork(std::string_view label) const;

  // Numbered-stream fork for hot paths (e.g. one stream per test id in a
  // campaign): same independence guarantees as the string overload without
  // formatting a label. Streams with distinct ids are independent of each
  // other and of any string-labeled fork.
  [[nodiscard]] Rng fork(std::uint64_t stream) const;

  std::uint64_t seed() const { return seed_; }

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  // Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);

  // Bernoulli draw with probability p of true. p is clamped to [0,1].
  bool chance(double p);

  // Normal draw (mean, stddev).
  double normal(double mean, double stddev);

  // Log-normal draw parameterized by the mean/stddev of the underlying normal.
  double lognormal(double mu, double sigma);

  // Exponential draw with the given rate (mean 1/rate). Requires rate > 0.
  double exponential(double rate);

  // Pareto draw with scale xm > 0 and shape alpha > 0 (heavy tails).
  double pareto(double xm, double alpha);

  // Poisson draw with the given mean >= 0.
  int poisson(double mean);

  // Picks an index in [0, weights.size()) proportionally to weights.
  // Zero-weight entries are never chosen. Requires at least one weight > 0.
  std::size_t weighted_index(const std::vector<double>& weights);

  // Picks an element of the non-empty container uniformly at random.
  template <typename Container>
  const typename Container::value_type& pick(const Container& c) {
    return c[static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(c.size()) - 1))];
  }

  // Fisher-Yates shuffle.
  template <typename Container>
  void shuffle(Container& c) {
    for (std::size_t i = c.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

  LazyMt64& engine() { return engine_; }

 private:
  LazyMt64 engine_;
  std::uint64_t seed_;
};

// Stable 64-bit FNV-1a hash of a string, used for seed derivation.
std::uint64_t fnv1a(std::string_view s);

}  // namespace netcong::util
