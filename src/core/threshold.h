#pragma once

// Threshold selection for congestion detection (paper Section 6.2): "how
// large a throughput drop can one safely interpret as evidence of
// congestion?" Given a set of diurnal congestion calls labeled with ground
// truth, sweep the drop threshold and report the ROC curve, plus the
// distribution of peak drops for truly congested vs busy-but-uncongested
// groups (the AT&T-vs-Comcast contrast of Figure 5).

#include <vector>

#include "core/diurnal.h"

namespace netcong::core {

struct LabeledDrop {
  double relative_drop = 0.0;  // (offpeak - peak) / offpeak
  bool truth_congested = false;
  std::size_t samples = 0;
};

struct RocPoint {
  double threshold = 0.0;
  double tpr = 0.0;  // sensitivity
  double fpr = 0.0;
  std::size_t predicted_positive = 0;
};

// Sweeps thresholds over [0, 1] in `steps` increments.
std::vector<RocPoint> roc_sweep(const std::vector<LabeledDrop>& drops,
                                int steps = 20);

// Threshold maximizing Youden's J (tpr - fpr); ties go to the larger
// threshold (fewer false alarms).
RocPoint best_threshold(const std::vector<RocPoint>& roc);

// Summary of the two drop distributions.
struct DropDistributions {
  std::vector<double> congested;
  std::vector<double> uncongested;
  double congested_median = 0.0;
  double uncongested_median = 0.0;
  // Smallest gap: min(congested) - max(uncongested); negative when the
  // distributions overlap, i.e. no threshold separates them cleanly — the
  // paper's central point.
  double separation = 0.0;
};
DropDistributions drop_distributions(const std::vector<LabeledDrop>& drops);

}  // namespace netcong::core
