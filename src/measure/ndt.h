#pragma once

// NDT-style throughput tests and the measurement campaign that pairs them
// with server-side Paris traceroutes, reproducing the M-Lab pipeline of
// paper Section 2.1/4.1 — including the single-threaded traceroute daemon
// that silently skips traceroutes when busy, which is why only ~71-76% of
// NDT tests could be matched to a traceroute.
//
// The campaign engine runs in three phases:
//   1. a sequential planning pass expanding requests into a flat test plan
//      (server selection per request);
//   2. a parallel test-simulation phase sharded across worker threads, each
//      test seeded by Rng::fork on its test id — output is bit-identical
//      for any thread count, including a fully serial run;
//   3. the traceroute-daemon pass, split in two: a sequential scheduling
//      sweep (whether a traceroute runs depends on when the previous one on
//      the same server finished — inherently time-ordered per server),
//      then a parallel pass simulating the selected traceroutes, whose
//      probe artifacts draw from their own per-test fork stream.

#include <memory>
#include <vector>

#include "gen/workload.h"
#include "gen/world.h"
#include "measure/platform.h"
#include "measure/traceroute.h"
#include "route/forwarding.h"
#include "route/path_cache.h"
#include "sim/faults.h"
#include "sim/throughput.h"

namespace netcong::measure {

struct ColumnarCampaignResult;  // measure/corpus.h

// Terminal state of an attempted NDT test. Every planned test produces a
// record in exactly one state — degraded corpora carry their own exclusion
// evidence instead of silently losing rows.
enum class NdtStatus : std::uint8_t {
  kCompleted = 0,  // produced a measurement (possibly truncated/degraded)
  kAborted,        // failed mid-test (abort fault or server flap)
  kUnserved,       // every candidate server down after bounded retries
  kFailed,         // internal error, classified instead of thrown
};

const char* ndt_status_name(NdtStatus status);

struct NdtRecord {
  std::uint64_t test_id = 0;
  std::uint32_t client = 0;
  std::uint32_t server = 0;
  double utc_time_hours = 0.0;
  double download_mbps = 0.0;
  double upload_mbps = 0.0;
  double flow_rtt_ms = 0.0;
  double retrans_rate = 0.0;
  int congestion_signals = 0;
  topo::Asn client_asn = 0;
  topo::Asn server_asn = 0;
  NdtStatus status = NdtStatus::kCompleted;
  // Measurement taken on a partial transfer (mid-test truncation fault);
  // the value is kept but biased.
  bool truncated = false;
  // False when the WebStats fields (flow_rtt_ms, retrans_rate) were dropped
  // from the record; the fields read 0 and must not enter statistics.
  bool has_webstats = true;
  // Ground truth (not visible to inference): the downstream router path and
  // the binding bottleneck.
  route::RouterPath truth_path;
  topo::LinkId truth_bottleneck;
  bool truth_access_limited = false;

  bool completed() const { return status == NdtStatus::kCompleted; }
};

struct CampaignConfig {
  // NDT runs ~10s in each direction plus setup.
  double ndt_duration_s = 25.0;
  // Server-side traceroute duration (single-threaded daemon is busy for
  // this long; concurrent tests get no traceroute — Section 4.1).
  double traceroute_min_s = 20.0;
  double traceroute_max_s = 120.0;
  // Battle-for-the-Net mode: each request triggers back-to-back tests
  // against this many regional servers (1 = plain NDT).
  int servers_per_request = 1;
  // The server-side tracer caches results per client: it will not re-trace
  // a client it traced within this window (documented M-Lab behaviour; the
  // reason repeat tests only have a traceroute *before* them).
  double traceroute_cache_minutes = 10.0;
  // Daemon brownouts/overload: a due traceroute is silently dropped with
  // this probability (the platform's collection had documented gaps).
  double traceroute_failure_prob = 0.05;
  // Distinct ephemeral "ECMP bucket" ports a test's flow key draws from.
  // The router path depends on the port only through the flow hash, so a
  // few representative ports preserve the per-pair ECMP path diversity of
  // Section 4.3 while letting a PathCache hit on repeat pairs.
  int ecmp_buckets = 8;
  // Worker threads for the parallel test-simulation phase: 0 = default
  // (NETCONG_THREADS environment variable, else hardware concurrency),
  // 1 = fully serial. The output does not depend on this value.
  int threads = 0;
  TracerouteOptions traceroute;
};

struct CampaignResult {
  std::vector<NdtRecord> tests;
  std::vector<TracerouteRecord> traceroutes;
  std::size_t traceroutes_skipped_busy = 0;
  std::size_t traceroutes_skipped_cached = 0;
  std::size_t traceroutes_failed = 0;
  // Per-campaign accounting: every attempted test and due traceroute ends
  // in exactly one bucket (quality.consistent() holds by construction).
  sim::DataQuality quality;
};

class NdtCampaign {
 public:
  NdtCampaign(const gen::World& world, const route::Forwarder& fwd,
              const sim::ThroughputModel& model, const Platform& platform,
              CampaignConfig config);

  // Attaches a shared path memo (must outlive the campaign). Cached and
  // uncached runs produce identical results; the cache only removes
  // repeated path construction (see route::PathCache).
  void set_path_cache(const route::PathCache* cache) { cache_ = cache; }

  // Attaches a fault injector (must outlive the campaign). Null or a
  // disabled injector leaves the campaign untouched; an enabled one injects
  // server outages (with client retry/backoff to the next-nearest server),
  // test aborts/truncation, WebStats drops, daemon crashes with restart
  // delay, and per-probe loss — all drawn from (seed, site, item id)
  // streams, so faulted output stays bit-identical across thread counts.
  void set_faults(const sim::FaultInjector* faults) { faults_ = faults; }

  // Attaches an adversarial scenario (must outlive the campaign). Null or a
  // disabled scenario leaves the campaign byte-identical to the honest run;
  // an enabled one rewrites flow keys at its churn epoch (hot-potato
  // shifts), resolves post-epoch lookups through its withdrawn-link route
  // view, diverges probe paths from data paths (asymmetry), and cloaks
  // routers from traceroutes — all pure functions of (scenario seed, pair,
  // time), so adversarial output stays bit-identical across thread counts
  // and cache settings. Composes freely with set_faults.
  void set_adversary(const sim::AdversaryScenario* adversary) {
    adversary_ = adversary;
  }

  // Executes the schedule (must be time-sorted). Results are deterministic
  // given the schedule and rng seed, independent of config.threads.
  CampaignResult run(const std::vector<gen::TestRequest>& schedule,
                     util::Rng& rng) const;

  // Columnar twin of run(): same phases, same per-item fork streams, same
  // draw sequences — the output is field-for-field identical to run()'s
  // (ColumnarCampaignResult::materialize() reconstructs it bit-exactly) but
  // lands in SoA columns with interned paths and arena-backed hop spans,
  // cutting allocation and memory by an order of magnitude at 1M+ tests.
  ColumnarCampaignResult run_columnar(
      const std::vector<gen::TestRequest>& schedule, util::Rng& rng) const;

  // Runs a single test at the given time against a chosen server.
  NdtRecord run_single(std::uint32_t client, std::uint32_t server,
                       double utc_time_hours, std::uint64_t test_id,
                       util::Rng& rng) const;

  // Copy-free core of run_single: the scalar measurement plus shared
  // ownership of the (possibly invalid) downstream path and the path's
  // cache identity, so columnar builders intern the path instead of copying
  // its three vectors into every record. Draw sequence is identical to
  // run_single's (bucket, then the throughput model when the path is valid).
  struct SingleOutcome {
    double download_mbps = 0.0;
    double upload_mbps = 0.0;
    double flow_rtt_ms = 0.0;
    double retrans_rate = 0.0;
    int congestion_signals = 0;
    topo::LinkId truth_bottleneck;
    bool truth_access_limited = false;
    std::shared_ptr<const route::RouterPath> path;  // never null
    route::PathCache::Key path_key;
  };
  SingleOutcome simulate_single(std::uint32_t client, std::uint32_t server,
                                double utc_time_hours, util::Rng& rng) const;

 private:
  const gen::World* world_;
  const route::Forwarder* fwd_;
  const sim::ThroughputModel* model_;
  const Platform* platform_;
  const route::PathCache* cache_ = nullptr;
  const sim::FaultInjector* faults_ = nullptr;
  const sim::AdversaryScenario* adversary_ = nullptr;
  CampaignConfig config_;
};

}  // namespace netcong::measure
