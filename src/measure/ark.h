#pragma once

// Ark-style vantage-point campaigns (paper Section 5.1): from a VP inside an
// access network, traceroute toward (a) every routed BGP prefix — the
// collection phase of bdrmap — and (b) arbitrary target lists such as
// M-Lab servers, Speedtest servers, and Alexa-style content targets.

#include <vector>

#include "gen/world.h"
#include "measure/traceroute.h"
#include "route/forwarding.h"

namespace netcong::measure {

struct ArkCampaignOptions {
  TracerouteOptions traceroute;
  // Probe the .1 of each announced prefix (bdrmap probes every /24; one
  // representative per prefix preserves the border-discovery behaviour at a
  // fraction of the cost).
  double utc_time_hours = 12.0;
};

// Collection phase of bdrmap: traceroutes from the VP toward every routed
// prefix in the BGP view.
std::vector<TracerouteRecord> ark_full_prefix_campaign(
    const gen::World& world, const route::Forwarder& fwd, std::uint32_t vp,
    const ArkCampaignOptions& options, util::Rng& rng);

// Traceroutes from the VP toward each host in `targets`.
std::vector<TracerouteRecord> ark_targeted_campaign(
    const gen::World& world, const route::Forwarder& fwd, std::uint32_t vp,
    const std::vector<std::uint32_t>& targets,
    const ArkCampaignOptions& options, util::Rng& rng);

}  // namespace netcong::measure
