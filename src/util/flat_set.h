#pragma once

// FlatSet: the set counterpart of util::FlatMap — same open-addressing
// robin-hood table, canonical layout, and splitmix64-mixed hashing, exposed
// with set semantics (iteration yields `const K&`). Used by the core/
// aggregation passes that previously held `std::set`/`std::unordered_set`
// per-key state on the campaign hot path.

#include <cstddef>
#include <functional>
#include <utility>

#include "util/flat_map.h"

namespace netcong::util {

namespace detail {
struct Unit {};
}  // namespace detail

template <typename K, typename Hash = FlatHash<K>, typename Less = std::less<K>>
class FlatSet {
  using Map = FlatMap<K, detail::Unit, Hash, Less>;

 public:
  class const_iterator {
   public:
    const_iterator() = default;
    explicit const_iterator(typename Map::const_iterator it) : it_(it) {}
    const K& operator*() const { return it_->first; }
    const K* operator->() const { return &it_->first; }
    const_iterator& operator++() {
      ++it_;
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator tmp = *this;
      ++it_;
      return tmp;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.it_ == b.it_;
    }

   private:
    typename Map::const_iterator it_;
  };
  using iterator = const_iterator;
  using key_type = K;

  std::size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  void clear() { map_.clear(); }
  void reserve(std::size_t n) { map_.reserve(n); }

  const_iterator begin() const { return const_iterator(map_.begin()); }
  const_iterator end() const { return const_iterator(map_.end()); }

  bool contains(const K& key) const { return map_.contains(key); }
  std::size_t count(const K& key) const { return map_.count(key); }
  const_iterator find(const K& key) const {
    return const_iterator(map_.find(key));
  }

  // Returns true when the key was newly inserted.
  std::pair<const_iterator, bool> insert(const K& key) {
    auto [it, fresh] = map_.try_emplace(key);
    return {const_iterator(typename Map::const_iterator(it)), fresh};
  }

  std::size_t erase(const K& key) { return map_.erase(key); }

 private:
  Map map_;
};

}  // namespace netcong::util
