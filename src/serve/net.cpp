#include "serve/net.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>

#include "obs/metrics.h"

namespace netcong::serve {

namespace {

void set_recv_timeout(int fd, double seconds) {
  if (seconds <= 0.0) return;
  struct timeval tv;
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      (seconds - std::floor(seconds)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

bool send_all(int fd, const std::uint8_t* data, std::size_t n) {
  while (n > 0) {
    ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

struct NetMetrics {
  obs::Counter connections;
  obs::Counter frames_ok;
  obs::Counter frames_rejected;
  obs::Counter events_dropped;
  NetMetrics() {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    connections = reg.counter("serve.net.connections");
    frames_ok = reg.counter("serve.net.frames_ok");
    frames_rejected = reg.counter("serve.net.frames_rejected");
    events_dropped = reg.counter("serve.net.events_dropped");
  }
};

NetMetrics& net_metrics() {
  static NetMetrics m;
  return m;
}

}  // namespace

void NetCounters::fold_into(sim::DataQuality& quality) const {
  quality.ingest_frames_ok += frames_ok;
  quality.ingest_frames_rejected += frames_rejected();
  quality.ingest_events_submitted += events_submitted;
  quality.ingest_events_dropped += events_dropped;
}

struct FrameListener::AtomicCounters {
  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> connections_rejected_cap{0};
  std::atomic<std::uint64_t> connections_timed_out{0};
  std::atomic<std::uint64_t> frames_ok{0};
  std::atomic<std::uint64_t> rejected_bad_version{0};
  std::atomic<std::uint64_t> rejected_bad_kind{0};
  std::atomic<std::uint64_t> rejected_oversize{0};
  std::atomic<std::uint64_t> rejected_bad_checksum{0};
  std::atomic<std::uint64_t> rejected_bad_payload{0};
  std::atomic<std::uint64_t> rejected_truncated{0};
  std::atomic<std::uint64_t> events_submitted{0};
  std::atomic<std::uint64_t> events_dropped{0};

  void count_reject(FrameError err) {
    switch (err) {
      case FrameError::kBadVersion: rejected_bad_version++; break;
      case FrameError::kBadKind: rejected_bad_kind++; break;
      case FrameError::kOversize: rejected_oversize++; break;
      case FrameError::kBadChecksum: rejected_bad_checksum++; break;
      case FrameError::kBadPayload: rejected_bad_payload++; break;
      case FrameError::kTruncated: rejected_truncated++; break;
      case FrameError::kNone: break;
    }
    net_metrics().frames_rejected.inc();
  }
};

FrameListener::FrameListener(IngestService& service, NetConfig config)
    : service_(service),
      config_(config),
      ctr_(std::make_unique<AtomicCounters>()) {}

FrameListener::~FrameListener() { stop(); }

util::Status FrameListener::start(std::uint16_t port) {
  if (running_.load()) return util::error_status("listener already running");
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return util::error_status("socket: " + std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    std::string err = std::strerror(errno);
    ::close(fd);
    return util::error_status("bind 127.0.0.1:" + std::to_string(port) +
                              ": " + err);
  }
  if (::listen(fd, 64) != 0) {
    std::string err = std::strerror(errno);
    ::close(fd);
    return util::error_status("listen: " + err);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return util::ok_status();
}

void FrameListener::stop() {
  bool was_running = running_.exchange(false);
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (was_running) {
    // Kick live connections out of recv(); their threads then observe
    // running_ == false and exit.
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

void FrameListener::track(int fd, bool add) {
  std::lock_guard<std::mutex> lock(conn_mu_);
  if (add) {
    live_fds_.push_back(fd);
  } else {
    for (std::size_t i = 0; i < live_fds_.size(); ++i) {
      if (live_fds_[i] == fd) {
        live_fds_[i] = live_fds_.back();
        live_fds_.pop_back();
        break;
      }
    }
  }
}

void FrameListener::accept_loop() {
  while (running_.load()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by stop()
    }
    if (!running_.load()) {
      ::close(fd);
      break;
    }
    if (active_.load() >= config_.max_connections) {
      ctr_->connections_rejected_cap++;
      ::close(fd);
      continue;
    }
    active_++;
    ctr_->connections_accepted++;
    net_metrics().connections.inc();
    std::uint64_t conn_id = next_conn_id_++;
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_threads_.emplace_back(
        [this, fd, conn_id] { handle_connection(fd, conn_id); });
  }
}

void FrameListener::handle_connection(int fd, std::uint64_t conn_id) {
  set_recv_timeout(fd, config_.read_timeout_s);
  track(fd, true);

  // Short-read fault: this connection's reads arrive 1-3 bytes at a time,
  // forcing the reassembly path through every split point.
  std::size_t chunk = 64 * 1024;
  const sim::FaultInjector* f = config_.faults;
  if (f && f->fires(sim::FaultSite::kNetShortRead, conn_id,
                    f->config().net_short_read_prob)) {
    util::Rng rng = f->stream(sim::FaultSite::kNetShortRead, conn_id);
    (void)rng.chance(f->config().net_short_read_prob);
    chunk = static_cast<std::size_t>(rng.uniform_int(1, 3));
  }

  std::vector<std::uint8_t> read_buf(chunk);
  std::vector<std::uint8_t> pending;
  bool close_conn = false;
  while (!close_conn && running_.load()) {
    ssize_t r = ::recv(fd, read_buf.data(), read_buf.size(), 0);
    if (r == 0) {
      // Orderly EOF. Leftover bytes are a frame the producer never
      // finished — the mid-frame-disconnect case, counted as truncated.
      if (!pending.empty()) ctr_->count_reject(FrameError::kTruncated);
      break;
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        ctr_->connections_timed_out++;
      }
      if (!pending.empty()) ctr_->count_reject(FrameError::kTruncated);
      break;
    }
    pending.insert(pending.end(), read_buf.data(), read_buf.data() + r);

    std::size_t off = 0;
    while (off < pending.size()) {
      FrameView frame;
      std::size_t consumed = 0;
      FrameError err = parse_frame(pending.data() + off, pending.size() - off,
                                   &frame, &consumed);
      if (err == FrameError::kTruncated) break;  // need more bytes
      if (err != FrameError::kNone) {
        // A byte stream cannot resync after a bad frame: count the typed
        // rejection and drop the connection.
        ctr_->count_reject(err);
        close_conn = true;
        break;
      }
      util::Result<IngestEvent> event = decode_event(frame);
      if (!event.ok()) {
        ctr_->count_reject(FrameError::kBadPayload);
        close_conn = true;
        break;
      }
      ctr_->frames_ok++;
      net_metrics().frames_ok.inc();
      // Under kBlock a full queue blocks right here, which stalls this
      // read loop and lets TCP flow control push back on the producer.
      if (service_.submit(std::move(event.value()))) {
        ctr_->events_submitted++;
      } else {
        ctr_->events_dropped++;
        net_metrics().events_dropped.inc();
      }
      off += consumed;
    }
    if (off > 0) {
      pending.erase(pending.begin(),
                    pending.begin() + static_cast<std::ptrdiff_t>(off));
    }
  }
  track(fd, false);
  ::close(fd);
  active_--;
}

NetCounters FrameListener::counters() const {
  NetCounters c;
  c.connections_accepted = ctr_->connections_accepted.load();
  c.connections_rejected_cap = ctr_->connections_rejected_cap.load();
  c.connections_timed_out = ctr_->connections_timed_out.load();
  c.frames_ok = ctr_->frames_ok.load();
  c.rejected_bad_version = ctr_->rejected_bad_version.load();
  c.rejected_bad_kind = ctr_->rejected_bad_kind.load();
  c.rejected_oversize = ctr_->rejected_oversize.load();
  c.rejected_bad_checksum = ctr_->rejected_bad_checksum.load();
  c.rejected_bad_payload = ctr_->rejected_bad_payload.load();
  c.rejected_truncated = ctr_->rejected_truncated.load();
  c.events_submitted = ctr_->events_submitted.load();
  c.events_dropped = ctr_->events_dropped.load();
  return c;
}

FrameClient::FrameClient(const sim::FaultInjector* faults) : faults_(faults) {}

FrameClient::~FrameClient() { close(); }

util::Status FrameClient::connect(const std::string& host,
                                  std::uint16_t port) {
  if (fd_ >= 0) return util::error_status("client already connected");
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  std::string h = (host.empty() || host == "localhost") ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, h.c_str(), &addr.sin_addr) != 1) {
    return util::error_status("bad host '" + host + "'");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return util::error_status("socket: " + std::string(std::strerror(errno)));
  }
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    std::string err = std::strerror(errno);
    ::close(fd);
    return util::error_status("connect " + h + ":" + std::to_string(port) +
                              ": " + err);
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  return util::ok_status();
}

util::Status FrameClient::send(const IngestEvent& event) {
  if (fd_ < 0) return util::error_status("client not connected");
  std::vector<std::uint8_t> frame;
  append_frame(event, frame);

  double prob = faults_ ? faults_->config().net_disconnect_prob : 0.0;
  std::uint64_t item = attempts_++;
  if (faults_ && frame.size() > 1 &&
      faults_->fires(sim::FaultSite::kNetDisconnect, item, prob)) {
    // Producer crash mid-frame: a strict prefix goes out, then the socket
    // closes. The server must classify the stub as one truncated frame.
    util::Rng rng = faults_->stream(sim::FaultSite::kNetDisconnect, item);
    (void)rng.chance(prob);
    std::size_t partial = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(frame.size()) - 1));
    send_all(fd_, frame.data(), partial);
    close();
    return util::error_status("disconnected mid-frame (injected)");
  }

  if (!send_all(fd_, frame.data(), frame.size())) {
    std::string err = std::strerror(errno);
    close();
    return util::error_status("send: " + err);
  }
  ++sent_;
  return util::ok_status();
}

util::Status FrameClient::send_raw(const std::uint8_t* data, std::size_t n) {
  if (fd_ < 0) return util::error_status("client not connected");
  if (!send_all(fd_, data, n)) {
    std::string err = std::strerror(errno);
    close();
    return util::error_status("send: " + err);
  }
  return util::ok_status();
}

void FrameClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace netcong::serve
