
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/helpers.cpp" "tests/CMakeFiles/measure_test.dir/helpers.cpp.o" "gcc" "tests/CMakeFiles/measure_test.dir/helpers.cpp.o.d"
  "/root/repo/tests/measure_test.cpp" "tests/CMakeFiles/measure_test.dir/measure_test.cpp.o" "gcc" "tests/CMakeFiles/measure_test.dir/measure_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/netcong_core.dir/DependInfo.cmake"
  "/root/repo/build/src/infer/CMakeFiles/netcong_infer.dir/DependInfo.cmake"
  "/root/repo/build/src/measure/CMakeFiles/netcong_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/netcong_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/netcong_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/netcong_io.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/netcong_route.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/netcong_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/netcong_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/netcong_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
