#pragma once

// Dataset export: write campaign results and topology summaries in the
// spirit of M-Lab's public releases (per-test rows, per-hop traceroute
// rows), so downstream analysis can happen outside this process (pandas,
// SQL, BigQuery-style workflows). CSV with stable column sets.

#include <string>

#include "gen/world.h"
#include "measure/matching.h"
#include "measure/ndt.h"
#include "measure/traceroute.h"
#include "obs/metrics.h"
#include "sim/faults.h"
#include "util/csv.h"
#include "util/result.h"

namespace netcong::io {

// One row per NDT test: identifiers, timing, and the measured metrics the
// M-Lab reports analyzed (download/upload, flow RTT, retransmissions,
// congestion signals). Ground-truth columns are prefixed "truth_" and can
// be suppressed for blind analysis exercises.
util::CsvWriter export_ndt_tests(const gen::World& world,
                                 const std::vector<measure::NdtRecord>& tests,
                                 bool include_truth = true);

// One row per responding traceroute hop: (trace id, ttl, address, rtt,
// PTR name), mirroring the public Paris-traceroute tables.
util::CsvWriter export_traceroute_hops(
    const std::vector<measure::TracerouteRecord>& traceroutes);

// One row per matched test: test id and the timestamp delta to its
// traceroute (empty when unmatched) — the Section 4.1 join table.
util::CsvWriter export_matches(const std::vector<measure::MatchedTest>& matched);

// One row per interdomain link: endpoint addresses, ASNs, capacity, IXP
// flag, and (optionally) the planted load profile.
util::CsvWriter export_interdomain_links(const gen::World& world,
                                         bool include_truth = true);

// One (metric, value) row per DataQuality counter — the campaign's
// data-quality report, shipped beside the datasets so downstream analysis
// knows how lossy its input was.
util::CsvWriter export_data_quality(const sim::DataQuality& quality);

// Convenience: write everything into a directory (created by the caller):
// the four datasets, plus data_quality.csv when `quality` is given. On
// failure the status lists every path that could not be written.
util::Status export_campaign(
    const gen::World& world, const std::vector<measure::NdtRecord>& tests,
    const std::vector<measure::TracerouteRecord>& traceroutes,
    const std::vector<measure::MatchedTest>& matched,
    const std::string& directory, bool include_truth = true,
    const sim::DataQuality* quality = nullptr);

// Observability export: `metrics.json` (the snapshot's to_json payload) and
// `trace.json` (Chrome trace-event JSON — load via chrome://tracing or
// Perfetto). Pass an empty trace_json to skip trace.json. Creates the
// directory like export_campaign does.
util::Status export_observability(const obs::MetricsSnapshot& snapshot,
                                  const std::string& trace_json,
                                  const std::string& directory);

}  // namespace netcong::io
