#pragma once

// eva-style path-model bottleneck classification for throughput tests
// (paper §6; guangqianpeng/eva in SNIPPETS.md; ROADMAP item 3).
//
// The paper's central §6 complaint is that no fixed throughput threshold
// separates "congested" from "fine": the drop a congested link produces
// depends on the congestion control, the RTT, and where the bottleneck
// sits. Instead of a threshold, this module fits an explicit path model to
// each test's own ack/RTT trace:
//
//   BtlBw   — bottleneck bandwidth: the windowed-max delivery rate over
//             short (~8-ack) spans of the ack trace. Short windows catch
//             line-rate ack bursts, so the estimate reveals the link rate
//             even for flows that never fill the pipe themselves.
//   RTprop  — propagation RTT: the minimum RTT sample over the test.
//   BDP     — BtlBw × RTprop, in packets.
//
// and then labels the test by which constraint bound it:
//
//   congestion_limited — a standing queue the flow shares with competitors:
//             even the *low* percentiles of steady-state RTT sit above
//             RTprop. (A solo loss-based flow's sawtooth drains its own
//             queue every cycle, so its p10 RTT touches the floor; a queue
//             fed by competing flows never drains.)
//   sender_limited — the flow never offered enough data: average in-flight
//             (Little's law: steady goodput × steady mean RTT) sits well
//             below the path's BDP.
//   bandwidth_limited — the healthy case: the flow fills the pipe it is
//             entitled to and the queue it builds is its own.
//
// Congestion-limited tests are additionally localized access-vs-interdomain
// from *when* RTT inflation started relative to the flow's own queue
// build-up: inflation that precedes the flow's first delivered BDP means
// the queue predates the flow (ambient interdomain congestion, the
// Genin & Splett confound); inflation that appears only after the flow
// could have filled the pipe itself points at the access leg, where
// congestion is typically induced by the subscriber's own concurrent
// traffic starting alongside the test.
//
// Inputs are plain traces (no dependency on the simulator): ack-time series
// and RTT samples, both available from real NDT/web100-style measurement as
// well as from sim/packet flows.

#include <cstdint>
#include <utility>
#include <vector>

namespace netcong::infer {

// Per-test observables. rtt_samples_ms and rtt_sample_times_s are parallel
// vectors; ack_trace is (time_s, cumulative packets acked), nondecreasing.
struct FlowTrace {
  double start_s = 0.0;
  double stop_s = 0.0;
  int mss_bytes = 1500;
  std::vector<double> rtt_samples_ms;
  std::vector<double> rtt_sample_times_s;
  std::vector<std::pair<double, std::int64_t>> ack_trace;
};

enum class FlowLabel {
  kBandwidthLimited,
  kCongestionLimited,
  kSenderLimited,
};

enum class BottleneckSite {
  kNone,  // not congestion-limited (or no localization evidence)
  kAccess,
  kInterdomain,
};

const char* flow_label_name(FlowLabel label);
const char* bottleneck_site_name(BottleneckSite site);
bool parse_flow_label(const char* name, FlowLabel* out);

struct PathModelConfig {
  // Ack-trace span per delivery-rate window. Small windows catch line-rate
  // bursts; large ones average toward the flow's share.
  int rate_window_acks = 8;
  // Steady-state starts after max(skip_min_s, skip_fraction × duration) —
  // slow start and model convergence are excluded from labeling.
  double steady_skip_fraction = 0.25;
  double steady_skip_min_s = 2.0;
  // RTT counts as inflated above rtprop × (1 + alpha) + floor.
  double rtt_inflation_alpha = 0.15;
  double rtt_inflation_floor_ms = 2.0;
  // Sender-limited when avg in-flight < this fraction of BDP — unless the
  // *median* steady RTT is inflated too: a flow kept small by competitors
  // also rides below BDP, but a genuinely sender-limited flow sees a flat
  // RTT at the propagation floor.
  double sender_limited_bdp_fraction = 0.85;
  // Inflation onset must persist (median of the following window inflated)
  // to ignore one-off spikes.
  double onset_persistence_s = 1.0;
  // Localization slack: slow-start overshoot builds the flow's own queue
  // ~1-2 RTTs before its delivered counter reaches one BDP, so inflation
  // only counts as pre-existing when it precedes the fill point by more
  // than this many RTprops.
  double onset_fill_slack_rtprops = 2.0;
};

struct PathModelResult {
  bool valid = false;  // false: trace too sparse to fit the model
  FlowLabel label = FlowLabel::kBandwidthLimited;
  BottleneckSite site = BottleneckSite::kNone;

  // Fitted path model.
  double btlbw_pps = 0.0;
  double btlbw_mbps = 0.0;
  double rtprop_ms = 0.0;
  double bdp_packets = 0.0;

  // Steady-state evidence behind the label.
  double goodput_mbps = 0.0;
  double avg_inflight_packets = 0.0;
  double steady_p10_rtt_ms = 0.0;
  double steady_p50_rtt_ms = 0.0;

  // Localization evidence (congestion-limited only; -1 when absent).
  double inflation_onset_s = -1.0;  // first persistent inflated RTT sample
  double own_fill_s = -1.0;         // flow has delivered ~1 BDP by here
};

PathModelResult classify_flow(const FlowTrace& trace,
                              const PathModelConfig& config = {});

}  // namespace netcong::infer
