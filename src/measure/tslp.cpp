#include "measure/tslp.h"

namespace netcong::measure {

TslpSeries run_tslp(const gen::World& world, const route::Forwarder& fwd,
                    std::uint32_t vp, topo::IpAddr near_addr,
                    topo::IpAddr far_addr, const TslpOptions& options,
                    util::Rng& rng) {
  TslpSeries series;
  series.near_addr = near_addr;
  series.far_addr = far_addr;
  const double step_h = options.interval_minutes / 60.0;
  const double horizon = options.days * 24.0;
  for (double t = 0.0; t < horizon; t += step_h) {
    TslpSample s;
    s.utc_time_hours = t;
    if (!rng.chance(options.probe_loss)) {
      s.near_rtt_ms = rtt_probe(*world.topo, fwd, *world.traffic, vp,
                                near_addr, t, rng);
    }
    if (!rng.chance(options.probe_loss)) {
      s.far_rtt_ms = rtt_probe(*world.topo, fwd, *world.traffic, vp,
                               far_addr, t, rng);
    }
    series.samples.push_back(s);
  }
  return series;
}

}  // namespace netcong::measure
