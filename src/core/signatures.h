#pragma once

// TCP congestion signatures (the paper's future work, reference [37]:
// Sundaresan et al., "TCP Congestion Signatures", IMC 2017): distinguish,
// from a speed test's own RTT samples, whether the flow was limited by an
// *already congested* link (standing queue: elevated RTT from the first
// packets, small dynamic range above the baseline) or whether the flow
// itself *drove* the buffer (self-induced: RTT starts at the propagation
// floor and climbs as the flow fills the bottleneck queue).
//
// Features follow the published approach: the normalized difference between
// early-flow RTT and minimum RTT, and the ratio of RTT dynamic range to
// minimum. A small decision rule (threshold pair fit on labeled simulations)
// classifies the two regimes.

#include <vector>

namespace netcong::core {

enum class CongestionType {
  kSelfInduced,   // flow filled an otherwise idle bottleneck (access link)
  kPreExisting,   // flow arrived at an already-congested link
  kIndeterminate,
};

const char* congestion_type_name(CongestionType t);

struct SignatureFeatures {
  double min_rtt_ms = 0.0;
  double early_rtt_ms = 0.0;    // median RTT over the first samples
  double p90_rtt_ms = 0.0;
  // (early - min) / min: ~0 when the flow starts on an empty queue.
  double early_elevation = 0.0;
  // (p90 - min) / min: the range the flow itself can create.
  double range_ratio = 0.0;
};

// Extracts features from a flow's time-ordered RTT samples (ms). Requires
// at least `early_window` samples; returns nullopt-like zero features when
// too short.
SignatureFeatures extract_features(const std::vector<double>& rtt_samples_ms,
                                   std::size_t early_window = 50);

struct SignatureClassifier {
  // A flow whose early RTT sits this far above its own minimum (fraction)
  // was queued behind pre-existing traffic from the start.
  double early_elevation_threshold = 0.35;
  // ...unless the flow itself shows even larger self-built range.
  double self_range_margin = 1.5;

  CongestionType classify(const SignatureFeatures& f) const;
};

}  // namespace netcong::core
