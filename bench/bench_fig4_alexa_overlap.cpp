// Figure 4 / Section 5.3: overlap between the interconnections covered by
// test-server traceroutes and those on paths toward popular web content
// (Alexa-style targets). Paper: 79-90% of AS-level interconnections on
// paths to popular content were NOT testable via M-Lab.

#include <cstdio>

#include "common.h"
#include "gen/paper_data.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace netcong;
  bench::print_header("Figure 4",
                      "Overlap of platform-covered interconnections with "
                      "those on paths to popular content");

  bench::Context ctx(bench::bench_config());
  auto coverage = bench::run_coverage(ctx, /*snapshot_2017=*/true, 6);

  util::TextTable table({"VP", "Network", "Alexa AS", "Mlab-Alexa",
                         "Alexa-Mlab", "ST-Alexa", "Alexa-ST",
                         "Alexa not via M-Lab"});
  double min_missing = 1e9, max_missing = -1;
  for (const auto& c : coverage) {
    auto ml = core::overlap(c.mlab, c.alexa);
    auto st = core::overlap(c.speedtest, c.alexa);
    double missing = ml.alexa_total_as == 0
                         ? 0.0
                         : 100.0 * static_cast<double>(ml.alexa_not_platform_as) /
                               static_cast<double>(ml.alexa_total_as);
    if (ml.alexa_total_as > 0) {
      min_missing = std::min(min_missing, missing);
      max_missing = std::max(max_missing, missing);
    }
    table.add_row({c.vp_label, c.network,
                   std::to_string(c.alexa.as_level.size()),
                   std::to_string(ml.platform_not_alexa_as),
                   std::to_string(ml.alexa_not_platform_as),
                   std::to_string(st.platform_not_alexa_as),
                   std::to_string(st.alexa_not_platform_as),
                   bench::pct(missing)});
  }
  std::printf("%s", table.render().c_str());

  auto paper = gen::paper::sec53_alexa();
  std::printf(
      "\nours:  %.0f%%-%.0f%% of AS interconnections toward popular content "
      "not covered by M-Lab\n",
      min_missing, max_missing);
  std::printf(
      "paper: %.0f%%-%.0f%% (Comcast bed-us: %d of %d Alexa-path links not "
      "via M-Lab, %d not via Speedtest)\n",
      paper.alexa_not_mlab_min_pct, paper.alexa_not_mlab_max_pct,
      paper.comcast_alexa_not_mlab, paper.comcast_alexa_links,
      paper.comcast_alexa_not_speedtest);
  bench::print_footnote(
      "column key: 'Mlab-Alexa' = interconnections on paths to M-Lab "
      "servers but not to any Alexa target; 'Alexa-Mlab' = the reverse");
  return 0;
}
