# Empty dependencies file for bench_ext_asymmetry.
# This may be replaced when dependencies are built.
