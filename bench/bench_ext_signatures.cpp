// Extension (the paper's future work, reference [37] "TCP Congestion
// Signatures"): classify from a speed test's own RTT samples whether the
// flow was limited by an already-congested link or drove the bottleneck
// buffer itself. Sweeps both regimes in the packet-level simulator and
// reports classifier accuracy.

#include <cstdio>

#include "common.h"
#include "core/signatures.h"
#include "sim/packet/dumbbell.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using namespace netcong;

core::SignatureFeatures run_case(int n_bg, double bottleneck_mbps,
                                 int buffer_packets, double base_rtt_s,
                                 double test_start_s) {
  sim::packet::Dumbbell::Params params;
  params.bottleneck_mbps = bottleneck_mbps;
  params.buffer_packets = buffer_packets;
  params.duration_s = test_start_s + 12.0;
  sim::packet::Dumbbell d(params);
  for (int i = 0; i < n_bg; ++i) {
    sim::packet::FlowSpec bg;
    bg.base_rtt_s = base_rtt_s;
    d.add_flow(bg);
  }
  sim::packet::FlowSpec test_flow;
  test_flow.base_rtt_s = base_rtt_s;
  test_flow.start_time_s = test_start_s;
  int id = d.add_flow(test_flow);
  auto result = d.run();
  return core::extract_features(
      result.flows[static_cast<std::size_t>(id)].stats.rtt_samples_ms);
}

}  // namespace

int main() {
  bench::print_header("Extension [37]",
                      "TCP congestion signatures: self-induced vs "
                      "pre-existing congestion from RTT dynamics");

  core::SignatureClassifier clf;
  util::TextTable table({"scenario", "bg flows", "rate Mbps", "buffer pkts",
                         "early elev", "range ratio", "classified",
                         "truth"});
  int correct = 0, total = 0;

  struct Case {
    const char* label;
    int n_bg;
    double mbps;
    int buffer;
    double rtt;
    bool pre_existing;
  };
  std::vector<Case> cases;
  // Self-induced: idle bottlenecks of various speeds and buffer depths
  // (the access-link regime of a typical speed test).
  for (double mbps : {10.0, 20.0, 50.0, 100.0}) {
    for (int buffer : {100, 250, 400}) {
      cases.push_back({"self-induced", 0, mbps, buffer, 0.02, false});
      cases.push_back({"self-induced", 0, mbps, buffer, 0.06, false});
    }
  }
  // Pre-existing: the flow joins an already loaded bottleneck.
  for (int n_bg : {3, 5, 8, 12}) {
    for (int buffer : {150, 250, 400}) {
      cases.push_back({"pre-existing", n_bg, 20.0, buffer, 0.02, true});
      cases.push_back({"pre-existing", n_bg, 50.0, buffer, 0.04, true});
    }
  }

  for (const auto& c : cases) {
    auto features =
        run_case(c.n_bg, c.mbps, c.buffer, c.rtt, c.n_bg ? 12.0 : 0.0);
    auto predicted = clf.classify(features);
    bool truth_pre = c.pre_existing;
    bool ok = (predicted == core::CongestionType::kPreExisting) == truth_pre &&
              predicted != core::CongestionType::kIndeterminate;
    correct += ok ? 1 : 0;
    ++total;
    table.add_row({c.label, std::to_string(c.n_bg),
                   util::format("%.0f", c.mbps), std::to_string(c.buffer),
                   util::format("%.2f", features.early_elevation),
                   util::format("%.2f", features.range_ratio),
                   core::congestion_type_name(predicted),
                   c.pre_existing ? "pre-existing" : "self-induced"});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nclassifier accuracy: %d/%d (%.0f%%)\n", correct, total,
              100.0 * correct / total);
  bench::print_footnote(
      "the published TCP Congestion Signatures paper reports ~90% accuracy "
      "with a decision-tree on the same feature family");
  return 0;
}
