#pragma once

// RAII trace spans with per-thread ring buffers, exportable as Chrome
// trace-event JSON ("complete" events, ph:"X") loadable in chrome://tracing
// or https://ui.perfetto.dev.
//
// Same discipline as obs/metrics.h: recording never touches an Rng and
// never branches instrumented logic, so tracing cannot perturb the
// campaign's bit-identical-output contract; the disabled path is one
// relaxed atomic load; the hot path takes only the calling thread's own
// ring mutex (uncontended except during export, so in practice a couple of
// uncontended atomic ops — "lock-free" in spirit, race-free under tsan by
// construction).
//
// Span names must be string literals (or otherwise outlive the recorder):
// events store the pointer, not a copy.
//
// Rings are bounded (kTraceRingCapacity events per thread); overflow
// overwrites the oldest events and counts the loss in dropped(), so a
// 10M-test campaign can stay instrumented without unbounded memory.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace netcong::obs {

inline constexpr std::size_t kTraceRingCapacity = 16384;

struct TraceEvent {
  const char* name = "";
  double ts_us = 0.0;   // start, microseconds since the recorder epoch
  double dur_us = 0.0;  // duration, microseconds
  std::uint32_t tid = 0;
};

class TraceRecorder {
 public:
  TraceRecorder();
  ~TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // Process-wide recorder used by obs::Span. Never destroyed.
  static TraceRecorder& global();

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Microseconds since the recorder's construction (steady clock).
  double now_us() const;

  // Appends one complete event to the calling thread's ring.
  void record(const char* name, double ts_us, double dur_us);

  // All retained events, merged across threads and sorted by (ts, tid).
  std::vector<TraceEvent> collect() const;

  // Chrome trace-event JSON: {"traceEvents": [...], ...}.
  std::string to_chrome_json() const;

  // Events lost to ring overflow since the last clear().
  std::uint64_t dropped() const;

  // Drops every retained event and zeroes the drop counter.
  void clear();

 private:
  struct Ring;
  struct ThreadRings;
  Ring* thread_ring();
  void retire_ring(Ring& ring);

  std::atomic<bool> enabled_{false};
  const std::uint64_t recorder_id_;
  std::int64_t epoch_ns_ = 0;

  // Guarded by the module-wide trace mutex (trace.cpp):
  std::vector<Ring*> live_rings_;
  std::vector<TraceEvent> retired_events_;
  std::uint64_t retired_dropped_ = 0;
  std::uint32_t next_tid_ = 1;
};

// Times the enclosing scope into TraceRecorder::global(). Near-free when
// tracing is disabled. `name` must be a string literal.
class Span {
 public:
  explicit Span(const char* name) : name_(name) {
    TraceRecorder& rec = TraceRecorder::global();
    active_ = rec.enabled();
    if (active_) start_us_ = rec.now_us();
  }
  ~Span() {
    if (active_) {
      TraceRecorder& rec = TraceRecorder::global();
      rec.record(name_, start_us_, rec.now_us() - start_us_);
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  double start_us_ = 0.0;
  bool active_ = false;
};

}  // namespace netcong::obs
