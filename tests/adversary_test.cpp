// The adversarial scenario library (sim/adversary): disabled scenarios are
// the identity, churn respects its epoch (including the epoch-0 and
// past-the-end edges), withdrawal reroutes around the withdrawn border
// link, full star placement blanks every router hop, asymmetry perturbs
// only traceroutes, and everything is a pure function of (seed, config).

#include <gtest/gtest.h>

#include <algorithm>

#include "gen/workload.h"
#include "helpers.h"
#include "measure/adversary.h"
#include "measure/ark.h"
#include "measure/fingerprint.h"
#include "measure/ndt.h"
#include "measure/platform.h"
#include "route/bgp.h"
#include "route/forwarding.h"
#include "sim/adversary.h"
#include "sim/throughput.h"

namespace netcong::sim {
namespace {

using gen::World;

struct Stack {
  explicit Stack(const World& w)
      : world(w),
        bgp(*w.topo),
        fwd(*w.topo, bgp),
        model(*w.topo, *w.traffic),
        mlab("mlab", *w.topo, w.mlab_servers) {}
  const World& world;
  route::BgpRouting bgp;
  route::Forwarder fwd;
  sim::ThroughputModel model;
  measure::Platform mlab;
};

Stack& stack() {
  static Stack s(test::tiny_world());
  return s;
}

std::vector<gen::TestRequest> dense_schedule() {
  Stack& s = stack();
  std::vector<gen::TestRequest> schedule;
  for (int round = 0; round < 4; ++round) {
    for (std::size_t i = 0; i < s.world.clients.size(); ++i) {
      schedule.push_back(
          {s.world.clients[i],
           10.0 + round * 0.05 + static_cast<double>(i) * 0.003});
    }
  }
  return schedule;
}

// All schedule times live in [10.0, 10.2); this epoch splits them.
constexpr double kMidEpoch = 10.1;

measure::CampaignResult run_with(const AdversaryScenario* adversary) {
  Stack& s = stack();
  measure::NdtCampaign campaign(s.world, s.fwd, s.model, s.mlab, {});
  if (adversary) campaign.set_adversary(adversary);
  util::Rng rng(20150501);
  return campaign.run(dense_schedule(), rng);
}

TEST(AdversaryScenario, DisabledScenarioIsIdentity) {
  Stack& s = stack();
  AdversaryScenario off(*s.world.topo, s.bgp, {}, 42);
  EXPECT_FALSE(off.enabled());
  EXPECT_EQ(measure::fingerprint(run_with(&off)),
            measure::fingerprint(run_with(nullptr)));
}

TEST(AdversaryScenario, ChurnAtEpochZeroAffectsWholeCampaign) {
  Stack& s = stack();
  AdversaryScenario churn(*s.world.topo, s.bgp,
                          AdversaryConfig::churn(0.0, 1.0), 42);
  measure::CampaignResult base = run_with(nullptr);
  measure::CampaignResult adv = run_with(&churn);
  // Same schedule, same accounting — only paths (and what depends on them)
  // move.
  ASSERT_EQ(base.tests.size(), adv.tests.size());
  EXPECT_NE(measure::fingerprint(base), measure::fingerprint(adv));
  // The prefix before t=0 is trivially empty and equal.
  EXPECT_EQ(measure::fingerprint_before(base, 0.0),
            measure::fingerprint_before(adv, 0.0));
}

TEST(AdversaryScenario, ChurnAfterLastTestIsIdentity) {
  Stack& s = stack();
  AdversaryScenario churn(*s.world.topo, s.bgp,
                          AdversaryConfig::churn(1000.0, 1.0), 42);
  EXPECT_EQ(measure::fingerprint(run_with(&churn)),
            measure::fingerprint(run_with(nullptr)));
}

TEST(AdversaryScenario, ChurnPrefixMatchesUnchurnedRun) {
  Stack& s = stack();
  AdversaryScenario churn(*s.world.topo, s.bgp,
                          AdversaryConfig::churn(kMidEpoch, 1.0), 42);
  measure::CampaignResult base = run_with(nullptr);
  measure::CampaignResult adv = run_with(&churn);
  EXPECT_EQ(measure::fingerprint_before(base, kMidEpoch),
            measure::fingerprint_before(adv, kMidEpoch));
  EXPECT_NE(measure::fingerprint(base), measure::fingerprint(adv));
}

TEST(AdversaryScenario, WithdrawalReroutesAroundWithdrawnLink) {
  Stack& s = stack();
  AdversaryScenario withdraw(*s.world.topo, s.bgp,
                             AdversaryConfig::withdrawal(kMidEpoch, 1), 42);
  ASSERT_EQ(withdraw.withdrawn_links().size(), 1u);
  topo::LinkId gone = withdraw.withdrawn_links()[0];
  EXPECT_EQ(s.world.topo->link(gone).kind, topo::LinkKind::kInterdomain);

  measure::CampaignResult base = run_with(nullptr);
  measure::CampaignResult adv = run_with(&withdraw);
  EXPECT_EQ(measure::fingerprint_before(base, kMidEpoch),
            measure::fingerprint_before(adv, kMidEpoch));

  auto uses_link = [gone](const route::RouterPath& p) {
    return std::find(p.links.begin(), p.links.end(), gone) != p.links.end();
  };
  for (const measure::NdtRecord& t : adv.tests) {
    if (t.utc_time_hours >= kMidEpoch) {
      EXPECT_FALSE(uses_link(t.truth_path)) << "test " << t.test_id;
    }
  }
  for (const measure::TracerouteRecord& tr : adv.traceroutes) {
    if (tr.utc_time_hours >= kMidEpoch) {
      EXPECT_FALSE(uses_link(tr.truth));
    }
  }
}

TEST(AdversaryScenario, AsymmetryPerturbsOnlyTraceroutes) {
  Stack& s = stack();
  AdversaryScenario asym(*s.world.topo, s.bgp,
                         AdversaryConfig::asymmetric(1.0), 42);
  measure::CampaignResult base = run_with(nullptr);
  measure::CampaignResult adv = run_with(&asym);

  measure::Fingerprint tests_base, tests_adv;
  for (const measure::NdtRecord& t : base.tests) mix_record(tests_base, t);
  for (const measure::NdtRecord& t : adv.tests) mix_record(tests_adv, t);
  EXPECT_EQ(tests_base.value(), tests_adv.value());
  EXPECT_NE(measure::truth_fingerprint(base.traceroutes),
            measure::truth_fingerprint(adv.traceroutes));
}

TEST(AdversaryScenario, FullStarPlacementBlanksEveryRouterHop) {
  Stack& s = stack();
  AdversaryScenario stars(*s.world.topo, s.bgp,
                          AdversaryConfig::misleading_stars(1.0), 42);
  EXPECT_EQ(stars.cloaked_router_count(), s.world.topo->routers().size());

  ASSERT_FALSE(s.world.ark_vps.empty());
  measure::ArkCampaignOptions opts;
  opts.traceroute.adversary = &stars;
  util::Rng rng(7);
  auto corpus = measure::ark_full_prefix_campaign(
      s.world, s.fwd, s.world.ark_vps[0], opts, rng);
  ASSERT_FALSE(corpus.empty());
  for (const measure::TracerouteRecord& tr : corpus) {
    for (const measure::TraceHop& h : tr.hops) {
      // The only address that may respond is the destination host itself.
      if (h.responded) {
        EXPECT_EQ(h.addr.value, tr.dst.value);
      }
    }
  }
}

TEST(AdversaryScenario, MisleadingStarsPairIsIndistinguishable) {
  Stack& s = stack();
  AdversaryScenario stars(*s.world.topo, s.bgp,
                          AdversaryConfig::misleading_stars(0.5), 42);
  ASSERT_FALSE(s.world.ark_vps.empty());
  util::Rng rng(7);
  measure::MisleadingStarsResult pair = measure::misleading_stars_corpus(
      s.world, s.fwd, stars, s.world.ark_vps[0], {}, rng);
  ASSERT_GT(pair.cloaked_hops, 0u);
  EXPECT_EQ(pair.observed_fp_a, pair.observed_fp_b);
  EXPECT_NE(pair.truth_fp_a, pair.truth_fp_b);
  EXPECT_TRUE(pair.indistinguishable());
  // Phantom routers never collide with real ones.
  for (const measure::TracerouteRecord& tr : pair.alternate) {
    for (const route::RouterHop& hop : tr.truth.hops) {
      if (hop.router.value >= measure::kPhantomRouterBase) continue;
      EXPECT_LT(hop.router.value, s.world.topo->routers().size());
    }
  }
}

TEST(AdversaryScenario, PureFunctionOfSeedAndConfig) {
  Stack& s = stack();
  AdversaryConfig cfg;
  cfg.enabled = true;
  cfg.epoch_hours = kMidEpoch;
  cfg.churn_fraction = 0.5;
  cfg.withdraw_links = 2;
  cfg.star_fraction = 0.3;
  AdversaryScenario a(*s.world.topo, s.bgp, cfg, 42);
  AdversaryScenario b(*s.world.topo, s.bgp, cfg, 42);
  EXPECT_EQ(a.withdrawn_links(), b.withdrawn_links());
  EXPECT_EQ(a.cloaked_router_count(), b.cloaked_router_count());
  for (const topo::Router& r : s.world.topo->routers()) {
    EXPECT_EQ(a.router_cloaked(r.id), b.router_cloaked(r.id));
  }
  EXPECT_EQ(measure::fingerprint(run_with(&a)),
            measure::fingerprint(run_with(&b)));

  // A different seed relocates the scenario.
  AdversaryScenario other(*s.world.topo, s.bgp, cfg, 43);
  EXPECT_TRUE(other.withdrawn_links() != a.withdrawn_links() ||
              [&] {
                for (const topo::Router& r : s.world.topo->routers()) {
                  if (a.router_cloaked(r.id) != other.router_cloaked(r.id)) {
                    return true;
                  }
                }
                return false;
              }());
}

TEST(AdversaryAnnotate, AccountsEveryTestAndPair) {
  Stack& s = stack();
  AdversaryScenario churn(*s.world.topo, s.bgp,
                          AdversaryConfig::churn(kMidEpoch, 0.5), 42);
  measure::CampaignResult adv = run_with(&churn);
  measure::AdversaryCampaignTruth truth =
      measure::annotate_campaign(churn, *s.world.topo, adv);
  EXPECT_TRUE(truth.accounted(adv.tests.size()));
  EXPECT_GT(truth.tests_pre_epoch, 0u);
  EXPECT_GT(truth.tests_post_epoch, 0u);
  EXPECT_GT(truth.pairs_total, 0u);
  EXPECT_GT(truth.pairs_churned, 0u);
  EXPECT_LT(truth.pairs_churned, truth.pairs_total);  // fraction 0.5
  EXPECT_TRUE(truth.withdrawn_addrs.empty());
}

TEST(AdversaryAnnotate, DetectableWithdrawnIsSubsetOfTruth) {
  Stack& s = stack();
  AdversaryScenario withdraw(*s.world.topo, s.bgp,
                             AdversaryConfig::withdrawal(kMidEpoch, 2), 42);
  measure::CampaignResult adv = run_with(&withdraw);
  measure::AdversaryCampaignTruth truth =
      measure::annotate_campaign(withdraw, *s.world.topo, adv);
  EXPECT_EQ(truth.withdrawn_addrs.size(), truth.withdrawn_links.size());
  auto detectable = measure::detectable_withdrawn(adv, truth);
  EXPECT_LE(detectable.size(), truth.withdrawn_addrs.size());
  for (const auto& [a, b] : detectable) {
    bool in_truth = false;
    for (const auto& [ta, tb] : truth.withdrawn_addrs) {
      in_truth = in_truth || (a.value == ta.value && b.value == tb.value);
    }
    EXPECT_TRUE(in_truth);
  }
}

}  // namespace
}  // namespace netcong::sim
