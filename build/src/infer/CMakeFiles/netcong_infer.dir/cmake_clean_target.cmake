file(REMOVE_RECURSE
  "libnetcong_infer.a"
)
