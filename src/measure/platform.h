#pragma once

// Measurement platforms: a named fleet of test servers plus the
// proximity-based server selection policy described in paper Section 2
// ("the M-Lab backend uses IP geolocation to select a server close to the
// client").

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "topo/topology.h"
#include "util/flat_map.h"
#include "util/rng.h"

namespace netcong::measure {

class Platform {
 public:
  Platform(std::string name, const topo::Topology& topo,
           std::vector<std::uint32_t> servers);

  const std::string& name() const { return name_; }
  const std::vector<std::uint32_t>& servers() const { return servers_; }

  // Proximity-based selection: a random server among those at (or near) the
  // minimum geographic distance from the client. Geo-IP imprecision and
  // co-located machines make this a set, not a single server.
  std::uint32_t select_server(std::uint32_t client, util::Rng& rng) const;

  // The paper's "Battle for the Net" client tested against up to five
  // servers in the region rather than just the closest.
  std::vector<std::uint32_t> select_servers_region(std::uint32_t client,
                                                   int count,
                                                   util::Rng& rng) const;

  // The `count` servers nearest to the client, by distance — deterministic
  // (no rng). Used as the retry ladder when the chosen server is down.
  std::vector<std::uint32_t> nearest_servers(std::uint32_t client,
                                             int count) const;

 private:
  // Distance ranking of the fleet as seen from one city. The ranking is a
  // pure function of (city, fleet), and a campaign asks for it once per
  // request — memoizing per city turns ~1M haversine+sort passes into one
  // per distinct client city. Entries are immutable once built; the shared
  // cache survives Platform copies (the fleet and topology do too).
  using Ranking = std::vector<std::pair<double, std::uint32_t>>;
  struct RankCache {
    std::mutex mu;
    util::FlatMap<std::uint32_t, std::shared_ptr<const Ranking>> by_city;
  };

  std::shared_ptr<const Ranking> ranked_from(std::uint32_t client) const;

  std::string name_;
  const topo::Topology* topo_;
  std::vector<std::uint32_t> servers_;
  std::shared_ptr<RankCache> rank_cache_;
};

}  // namespace netcong::measure
