#pragma once

// Wire/disk codec for IngestEvent (DESIGN.md §12). One frame format is
// shared by the write-ahead log and the socket front-end:
//
//   offset  size  field
//   0       4     payload length (u32, little-endian)
//   4       4     CRC32C of bytes [8, 12 + len) — version, kind, reserved
//                 and payload, so a single bit flip anywhere outside the
//                 length/CRC words themselves is always caught (a kind flip
//                 must not let a record decode as the wrong type)
//   8       1     format version (kFrameVersion)
//   9       1     event kind (0 = NDT record, 1 = traceroute record —
//                 the IngestEvent variant index)
//   10      2     reserved, must be zero
//   12      len   payload (the serialized record, little-endian throughout;
//                 doubles by IEEE-754 bit pattern)
//
// The decoder is the trust boundary: it must classify every malformed
// input — torn tail on disk, garbage from a socket — with a typed error
// and never crash or over-allocate. parse_frame() validates the header
// *before* trusting the length (so a torn 4-byte prefix can't demand a
// 4 GiB read), and decode_event() bounds-checks every count against the
// bytes actually present.
//
// Round-trip contract: decode(encode(ev)) is bit-identical to ev — the
// serve.wal_* and codec tests enforce it via serve::fingerprint, which is
// what makes WAL replay equivalent to in-process submission.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "serve/event.h"
#include "util/result.h"

namespace netcong::serve {

inline constexpr std::uint8_t kFrameVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 12;
// Generous bound for one serialized record (long traceroutes run ~hundreds
// of bytes); anything larger is corruption, not data.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 20;

// Software CRC32C (Castagnoli, reflected 0x82F63B78) — the checksum iSCSI
// and leveldb-style logs use; good burst detection for both media.
std::uint32_t crc32c(const std::uint8_t* data, std::size_t n);

// Typed frame-validation outcome. kTruncated is the only retryable one: on
// a socket it means "need more bytes", in a WAL segment it marks the torn
// tail where recovery truncates.
enum class FrameError : std::uint8_t {
  kNone = 0,
  kTruncated,    // fewer bytes than one complete frame
  kBadVersion,   // version byte or reserved field unrecognized
  kBadKind,      // kind byte is not a known event kind
  kOversize,     // declared payload length exceeds kMaxFramePayload
  kBadChecksum,  // payload CRC mismatch
  kBadPayload,   // frame intact but the payload fails to decode
};

const char* frame_error_name(FrameError err);

// A validated frame pointing into the caller's buffer (no copy).
struct FrameView {
  std::uint8_t kind = 0;
  const std::uint8_t* payload = nullptr;
  std::uint32_t payload_len = 0;
};

// Validates the frame at the start of [buf, buf+n). On kNone, fills *out
// and sets *consumed to the full frame size (header + payload). On any
// error *consumed is 0. Header fields are checked before the payload
// length is trusted, so corrupt lengths surface as kBadVersion/kOversize
// rather than an unbounded kTruncated wait.
FrameError parse_frame(const std::uint8_t* buf, std::size_t n,
                       FrameView* out, std::size_t* consumed);

// Serializes one event as a complete frame appended to `out`.
void append_frame(const IngestEvent& event, std::vector<std::uint8_t>& out);

// Decodes a parse_frame-validated frame's payload back into an event.
// Fails (never throws, never over-allocates) on any malformed payload.
util::Result<IngestEvent> decode_event(const FrameView& frame);

}  // namespace netcong::serve
