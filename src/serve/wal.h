#pragma once

// Write-ahead event log for the ingest service (DESIGN.md §12). Every
// submitted IngestEvent is appended — as one codec frame — to a segment
// file before it enters the queues, so a crashed daemon restarts by
// replaying the log and arrives at the exact state a never-crashed run
// over the same events would reach (snapshot equality is the monoid
// argument of §11: evidence stores are order-insensitive merges, so the
// replayed set, not the interleaving, determines the snapshot).
//
// Disk layout: `<dir>/wal-<index>.seg`, each segment starting with an
// 8-byte magic and followed by frames back to back. Segments rotate at a
// configurable byte threshold; a segment always holds at least one record
// so an oversized record cannot wedge rotation.
//
// Recovery contract: recover_wal() replays the longest valid prefix of
// the log — every frame up to the first torn/corrupt byte — and, with
// repair on, truncates the bad tail in place and deletes any later
// segments so a reopened writer continues from a clean boundary. The
// ingest.wal_recovery_equals_batch / wal_torn_tail properties drive this
// with random truncations and bit-flips.
//
// Fault sites (sim/faults): kWalTornWrite models process death mid-append
// — a partial frame lands on disk and the writer refuses further work,
// like the dead process it simulates; kWalFsyncFail models an fsync error
// with the append surviving only in page cache.

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "serve/codec.h"
#include "serve/event.h"
#include "sim/faults.h"
#include "util/result.h"

namespace netcong::serve {

inline constexpr char kWalMagic[8] = {'N', 'C', 'W', 'A', 'L', '0', '0', '1'};
inline constexpr std::size_t kWalMagicBytes = 8;

struct WalOptions {
  // Rotation threshold; a segment may exceed it by one record.
  std::size_t segment_bytes = 4u << 20;
  // fsync after every append (durable but slow) vs. on sync()/close only.
  bool fsync_each_append = false;
  // Optional deterministic fault injector (sites kWalTornWrite /
  // kWalFsyncFail). Must outlive the writer.
  const sim::FaultInjector* faults = nullptr;
};

struct WalStats {
  std::uint64_t appended = 0;        // records fully written
  std::uint64_t segments_created = 0;
  std::uint64_t bytes_written = 0;   // magic + frames, incl. torn bytes
  std::uint64_t syncs = 0;
  std::uint64_t fsync_failures = 0;  // injected or real, append kept
  std::uint64_t torn_writes = 0;     // injected partial appends (fatal)
};

// Appends events to rotating segment files. Thread-safe: concurrent
// producers serialize on an internal mutex, so the on-disk order is the
// canonical event order. After a torn write the writer is failed() and
// every further append errors — the process it models is dead.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  // Opens `dir` (created if missing) and starts a fresh segment numbered
  // after the highest existing one — recovered segments are never
  // reopened for append, so recovery and append cannot race over a tail.
  util::Status open(const std::string& dir, WalOptions options);

  util::Status append(const IngestEvent& event);

  // Flushes the current segment to disk (fsync).
  util::Status sync();

  void close();

  bool is_open() const;
  bool failed() const;
  WalStats stats() const;
  const std::string& dir() const { return dir_; }

 private:
  util::Status rotate_locked();
  util::Status sync_locked();

  mutable std::mutex mu_;
  std::string dir_;
  WalOptions options_;
  WalStats stats_;
  int fd_ = -1;
  std::uint64_t segment_index_ = 0;  // index of the open segment
  std::size_t segment_size_ = 0;     // bytes in the open segment
  std::size_t segment_records_ = 0;
  bool failed_ = false;
};

struct WalRecovery {
  std::vector<IngestEvent> events;   // the valid prefix, in append order
  std::uint64_t segments_scanned = 0;
  std::uint64_t bytes_scanned = 0;
  std::uint64_t torn_bytes = 0;      // bytes cut from the first bad segment
  std::uint64_t segments_dropped = 0;  // later segments removed by repair
  bool truncated_tail = false;       // a torn/corrupt tail was found
  // Why the scan stopped early (empty when the whole log was valid).
  std::string tail_error;
};

// Scans `dir`'s segments in index order and decodes every frame up to the
// first invalid byte. With `repair`, the bad segment is truncated at that
// byte and all later segments are deleted, leaving a log that a fresh
// scan reads back clean. Never throws; unreadable directories fail.
util::Result<WalRecovery> recover_wal(const std::string& dir,
                                      bool repair = true);

// Sorted segment paths currently in `dir` (exposed for tests/benches that
// corrupt specific offsets).
std::vector<std::string> wal_segments(const std::string& dir);

}  // namespace netcong::serve
