#include "gen/world.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <optional>
#include <set>
#include <unordered_set>

#include "gen/address_alloc.h"
#include "gen/cities.h"
#include "gen/profiles.h"
#include "topo/dns.h"
#include "topo/geo.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/strings.h"

namespace netcong::gen {

using topo::Asn;
using topo::AsType;
using topo::CityId;
using topo::HostKind;
using topo::IpAddr;
using topo::LinkId;
using topo::LinkKind;
using topo::Prefix;
using topo::RelType;
using topo::RouterId;
using topo::RouterRole;

GeneratorConfig GeneratorConfig::full() { return GeneratorConfig{}; }

GeneratorConfig GeneratorConfig::small() {
  GeneratorConfig c;
  c.customer_scale = 0.06;
  c.mlab_servers = 60;
  c.speedtest_servers_2015 = 400;
  c.speedtest_servers_2017 = 580;
  c.clients_per_access_isp = 150;
  c.alexa_targets = 120;
  return c;
}

GeneratorConfig GeneratorConfig::tiny() {
  GeneratorConfig c;
  c.customer_scale = 0.01;
  c.mlab_servers = 16;
  c.speedtest_servers_2015 = 60;
  c.speedtest_servers_2017 = 90;
  c.clients_per_access_isp = 30;
  c.alexa_targets = 30;
  return c;
}

Asn World::primary_asn(const std::string& isp_name) const {
  auto it = isp_asns.find(isp_name);
  if (it == isp_asns.end() || it->second.empty()) return topo::kInvalidAsn;
  return it->second.front();
}

std::vector<std::uint32_t> World::clients_of(const std::string& isp_name) const {
  std::vector<std::uint32_t> out;
  auto it = isp_asns.find(isp_name);
  if (it == isp_asns.end()) return out;
  std::unordered_set<Asn> asns(it->second.begin(), it->second.end());
  for (std::uint32_t id : clients) {
    if (asns.count(topo->host(id).asn)) out.push_back(id);
  }
  return out;
}

namespace {

// Per-AS generation state.
struct AsState {
  Asn asn = 0;
  AsType type = AsType::kEnterprise;
  std::string name;
  std::string org_name;
  std::string domain;  // "level3.net"
  std::vector<CityId> cities;
  std::unordered_set<std::uint32_t> city_set;
  std::optional<P2pCarver> infra;
  std::optional<HostCarver> host_pool;
  std::optional<HostCarver> client_pool;
  const AccessIspProfile* access = nullptr;  // set for access ISP siblings
  bool is_mlab_host = false;
  bool is_tier1 = false;
  double parallel_propensity = 0.1;
  double dns_coverage = 0.85;
  // Border-router pool per city, so interconnects share routers realistically.
  std::unordered_map<std::uint32_t, std::vector<RouterId>> border_pool;
  std::unordered_map<std::uint32_t, int> edge_counter;
  int peer_count = 0;

  bool in_city(CityId c) const { return city_set.count(c.value) > 0; }
};

std::string domain_from_name(const std::string& name) {
  std::string d = util::to_lower(name);
  std::string out;
  for (char c : d) {
    if (std::isalnum(static_cast<unsigned char>(c))) out.push_back(c);
  }
  return out + ".net";
}

class WorldBuilder {
 public:
  explicit WorldBuilder(const GeneratorConfig& cfg)
      : cfg_(cfg), rng_(cfg.seed) {}

  World build();

 private:
  void add_cities();
  void add_ixps();
  void add_core_ases();
  void add_stubs();
  void add_peerings();
  void build_routers();
  void build_interdomain_links();
  void assign_traffic_profiles();
  void place_clients();
  void place_servers();
  void place_vps();
  void place_content();

  // -- helpers --
  AsState& state(Asn asn) { return as_states_.at(asn); }
  std::vector<CityId> pick_cities(int n, util::Rng& rng,
                                  const std::vector<CityId>& must = {});
  AsState& create_as(Asn asn, const std::string& name,
                     const std::string& org_name, AsType type,
                     std::vector<CityId> cities, std::uint8_t pool_len);
  bool share_city(Asn a, Asn b) const;
  bool relate_customer(Asn customer, Asn provider);
  bool relate_peer(Asn a, Asn b);
  RouterId border_router(AsState& as, CityId city, util::Rng& rng);
  void make_interconnects(AsState& a, AsState& b, RelType rel_a_to_b,
                          util::Rng& rng);
  void add_one_link(AsState& a, AsState& b, CityId city, RouterId ra,
                    RouterId rb, bool customer_link, bool via_ixp,
                    util::Rng& rng);
  std::uint32_t place_host(AsState& as, CityId city, HostKind kind,
                           RouterRole attach_role, const std::string& label,
                           util::Rng& rng);
  RouterId attachment_router(AsState& as, CityId city, RouterRole role);

  GeneratorConfig cfg_;  // by value: the builder may fill in defaults
  util::Rng rng_;
  World world_;
  topo::Topology* topo_ = nullptr;  // owned by world_
  AddressAllocator alloc_;
  std::unordered_map<Asn, AsState> as_states_;
  std::vector<Asn> transit_asns_;       // all transits
  std::vector<Asn> mlab_host_asns_;
  std::vector<Asn> tier1_asns_;
  std::vector<Asn> access_primary_asns_;
  std::vector<Asn> all_access_asns_;    // incl. siblings
  std::vector<Asn> content_asns_;
  std::vector<Asn> stub_asns_;
  // City -> IXP prefix carver for IXP-fabric link addressing.
  std::unordered_map<std::uint32_t, P2pCarver> ixp_carvers_;
  std::unordered_map<std::string, topo::OrgId> org_ids_;
  Asn next_stub_asn_ = 100000;
};

std::vector<CityId> WorldBuilder::pick_cities(int n, util::Rng& rng,
                                              const std::vector<CityId>& must) {
  const auto& metros = topo_->cities();
  std::vector<CityId> out = must;
  std::unordered_set<std::uint32_t> seen;
  for (CityId c : must) seen.insert(c.value);
  std::vector<double> weights;
  weights.reserve(metros.size());
  for (const auto& m : metros) weights.push_back(m.population_weight);
  int guard = 0;
  while (static_cast<int>(out.size()) < n && ++guard < 1000) {
    std::size_t i = rng.weighted_index(weights);
    if (seen.insert(static_cast<std::uint32_t>(i)).second) {
      out.push_back(CityId(static_cast<std::uint32_t>(i)));
    }
  }
  return out;
}

AsState& WorldBuilder::create_as(Asn asn, const std::string& name,
                                 const std::string& org_name, AsType type,
                                 std::vector<CityId> cities,
                                 std::uint8_t pool_len) {
  // One org per unique org name.
  topo::OrgId org;
  auto it_org = org_ids_.find(org_name);
  if (it_org != org_ids_.end()) {
    org = it_org->second;
  } else {
    org = topo_->add_org(org_name);
    org_ids_.emplace(org_name, org);
  }

  topo::AsInfo info;
  info.asn = asn;
  info.name = name;
  info.org = org;
  info.type = type;
  info.cities = cities;
  topo_->add_as(info);

  AsState st;
  st.asn = asn;
  st.type = type;
  st.name = name;
  st.org_name = org_name;
  st.domain = domain_from_name(name);
  st.cities = std::move(cities);
  for (CityId c : st.cities) st.city_set.insert(c.value);

  // Address plan: one big block split into client/host/infra pools.
  Prefix block = alloc_.alloc_block(pool_len);
  std::uint8_t sub = static_cast<std::uint8_t>(pool_len + 2);
  Prefix client_pool(block.nth(0), sub);
  Prefix host_pool(block.nth(block.size() / 4), sub);
  Prefix infra_pool(block.nth(block.size() / 2), sub);
  st.client_pool.emplace(client_pool);
  st.host_pool.emplace(host_pool);
  st.infra.emplace(infra_pool);
  topo_->own_prefix(block, asn);

  // BGP view: announce the block; with small probability announce it from a
  // sibling (stale origin) to stress prefix-to-AS inference.
  Asn origin = asn;
  if (rng_.chance(cfg_.announce_staleness)) {
    auto sibs = topo_->siblings_of(asn);
    if (sibs.size() > 1) {
      origin = sibs[static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(sibs.size()) - 1))];
    }
  }
  topo_->announce_prefix(block, origin);
  // Real ASes announce several prefixes; bdrmap-style campaigns probe each,
  // which is how multiple links to the same neighbor become visible.
  if (rng_.chance(0.75)) {
    topo_->announce_prefix(Prefix(block.nth(0), static_cast<std::uint8_t>(
                                                    pool_len + 1)),
                           origin);
    topo_->announce_prefix(
        Prefix(block.nth(block.size() / 2),
               static_cast<std::uint8_t>(pool_len + 1)),
        origin);
  }

  auto [it, ok] = as_states_.emplace(asn, std::move(st));
  assert(ok);
  return it->second;
}

bool WorldBuilder::share_city(Asn a, Asn b) const {
  const AsState& sa = as_states_.at(a);
  const AsState& sb = as_states_.at(b);
  return std::any_of(sa.cities.begin(), sa.cities.end(),
                     [&](CityId c) { return sb.in_city(c); });
}

// Both relationship helpers refuse pairs with no common footprint: every
// declared relationship must be physically realizable as at least one
// interdomain link (tests assert this invariant).
bool WorldBuilder::relate_customer(Asn customer, Asn provider) {
  if (!share_city(customer, provider)) return false;
  topo_->relationships().add_customer(customer, provider);
  return true;
}

bool WorldBuilder::relate_peer(Asn a, Asn b) {
  if (!share_city(a, b)) return false;
  topo_->relationships().add_peer(a, b);
  state(a).peer_count++;
  state(b).peer_count++;
  return true;
}

}  // namespace

// Defined below in this file; split for readability.
World generate_world(const GeneratorConfig& config) {
  WorldBuilder builder(config);
  return builder.build();
}

namespace {

void WorldBuilder::add_cities() {
  for (const auto& metro : us_metros()) {
    topo::City c = metro;
    topo_->add_city(c);
  }
}

void WorldBuilder::add_ixps() {
  // One IXP fabric prefix per large metro; peer links established "at the
  // IXP" number both interfaces from this block.
  const auto& metros = topo_->cities();
  for (std::size_t i = 0; i < metros.size(); ++i) {
    if (metros[i].population_weight < 3.0) continue;
    Prefix p = alloc_.alloc_block(22);
    topo_->add_ixp_prefix(p);
    ixp_carvers_.emplace(static_cast<std::uint32_t>(i), P2pCarver(p));
  }
}

void WorldBuilder::add_core_ases() {
  util::Rng rng = rng_.fork("core-ases");

  // Transit carriers. Tier-1s get a full national footprint so that every
  // network shares at least one city with each tier-1 (reachability).
  const std::set<std::string> tier1_names = {"Level3", "Cogent", "NTT",
                                             "Telia"};
  std::unordered_set<Asn> tier1_set;
  for (const auto& t : default_transit_profiles()) {
    std::vector<CityId> cities;
    if (tier1_names.count(t.name)) {
      for (std::uint32_t i = 0; i < topo_->cities().size(); ++i) {
        cities.push_back(CityId(i));
      }
    } else {
      cities = pick_cities(t.n_cities, rng);
    }
    auto& st = create_as(t.asn, t.name, t.org_name, AsType::kTransit,
                         std::move(cities), 12);
    st.is_mlab_host = t.hosts_mlab;
    st.dns_coverage = 0.95;
    transit_asns_.push_back(t.asn);
    if (t.hosts_mlab) {
      mlab_host_asns_.push_back(t.asn);
      world_.transit_asns[t.name] = t.asn;
    }
  }
  // The four largest transits form the tier-1 clique.
  for (const char* name : {"Level3", "Cogent", "NTT", "Telia"}) {
    for (const auto& t : default_transit_profiles()) {
      if (t.name == name) {
        tier1_asns_.push_back(t.asn);
        tier1_set.insert(t.asn);
        state(t.asn).is_tier1 = true;
      }
    }
  }
  for (std::size_t i = 0; i < tier1_asns_.size(); ++i) {
    for (std::size_t j = i + 1; j < tier1_asns_.size(); ++j) {
      relate_peer(tier1_asns_[i], tier1_asns_[j]);
    }
  }
  // Lower transits buy from 2-3 tier-1s; partially peer among themselves.
  std::vector<Asn> lower;
  for (Asn t : transit_asns_) {
    if (!tier1_set.count(t)) lower.push_back(t);
  }
  for (Asn t : lower) {
    std::vector<Asn> t1 = tier1_asns_;
    rng.shuffle(t1);
    int n = static_cast<int>(rng.uniform_int(2, 3));
    for (int i = 0; i < n; ++i) relate_customer(t, t1[static_cast<std::size_t>(i)]);
  }
  for (std::size_t i = 0; i < lower.size(); ++i) {
    for (std::size_t j = i + 1; j < lower.size(); ++j) {
      if (rng.chance(0.5)) relate_peer(lower[i], lower[j]);
    }
  }

  // Access ISPs: primary AS plus regional siblings.
  for (const auto& a : default_access_profiles()) {
    // The primary AS must cover every Ark VP site.
    std::vector<CityId> must;
    for (const auto& site : a.vp_sites) {
      must.push_back(CityId(
          static_cast<std::uint32_t>(metro_index_for_site(site))));
    }
    std::sort(must.begin(), must.end());
    must.erase(std::unique(must.begin(), must.end()), must.end());
    auto cities = pick_cities(a.n_cities, rng, must);

    for (std::size_t s = 0; s < a.asns.size(); ++s) {
      Asn asn = a.asns[s];
      std::string as_name =
          s == 0 ? a.name : a.name + "-Region" + std::to_string(s);
      std::vector<CityId> as_cities;
      if (s == 0) {
        as_cities = cities;
      } else {
        // Regional sibling: a slice of the footprint.
        std::vector<CityId> shuffled = cities;
        rng.shuffle(shuffled);
        std::size_t k = std::max<std::size_t>(
            1, cities.size() / (a.asns.size()));
        as_cities.assign(shuffled.begin(),
                         shuffled.begin() + static_cast<std::ptrdiff_t>(
                                                std::min(k, shuffled.size())));
      }
      auto& st = create_as(asn, as_name, a.org_name, AsType::kAccess,
                           std::move(as_cities), 12);
      st.access = &a;
      st.parallel_propensity = a.parallel_link_propensity;
      st.dns_coverage = 0.6;
      all_access_asns_.push_back(asn);
      world_.isp_asns[a.name].push_back(asn);
      if (s == 0) {
        access_primary_asns_.push_back(asn);
      } else {
        // Regional siblings draw their national connectivity from the
        // primary AS.
        relate_customer(asn, a.asns[0]);
      }
    }
  }

  // Content networks.
  for (const auto& c : default_content_profiles()) {
    auto& st = create_as(c.asn, c.name, c.name + " Inc", AsType::kContent,
                         pick_cities(c.n_cities, rng), 14);
    st.dns_coverage = 0.7;
    content_asns_.push_back(c.asn);
  }
}

void WorldBuilder::add_stubs() {
  util::Rng rng = rng_.fork("stubs");

  // Customer-slot targets per provider, scaled from the Table 3 profiles.
  std::vector<Asn> providers;
  std::vector<int> slots;
  auto add_slots = [&](Asn asn, int n) {
    n = std::max(1, static_cast<int>(n * cfg_.customer_scale));
    providers.push_back(asn);
    slots.push_back(n);
  };
  for (const auto& t : default_transit_profiles()) add_slots(t.asn, t.n_customers);
  for (const auto& a : default_access_profiles()) {
    add_slots(a.asns[0], a.n_customers);
  }

  int total_slots = 0;
  for (int s : slots) total_slots += s;

  while (total_slots > 0) {
    // Each stub takes 1-3 slots from distinct providers sharing a city.
    std::vector<double> w(slots.begin(), slots.end());
    std::size_t first = rng.weighted_index(w);
    AsState& prov0 = state(providers[first]);
    CityId city = prov0.cities[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(prov0.cities.size()) - 1))];

    Asn asn = next_stub_asn_++;
    auto& st = create_as(asn, "Stub" + std::to_string(asn),
                         "Stub Networks " + std::to_string(asn),
                         AsType::kEnterprise, {city}, 18);
    st.dns_coverage = 0.3;
    stub_asns_.push_back(asn);

    relate_customer(asn, providers[first]);
    slots[first]--;
    total_slots--;

    int extra = static_cast<int>(rng.uniform_int(0, 2));
    for (int e = 0; e < extra && total_slots > 0; ++e) {
      // A second/third provider must have presence in the stub's city.
      std::vector<std::size_t> cands;
      for (std::size_t i = 0; i < providers.size(); ++i) {
        if (i == first || slots[i] <= 0) continue;
        if (!state(providers[i]).in_city(city)) continue;
        if (topo_->relationships().adjacent(asn, providers[i])) continue;
        cands.push_back(i);
      }
      if (cands.empty()) break;
      std::size_t pick = cands[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(cands.size()) - 1))];
      relate_customer(asn, providers[pick]);
      slots[pick]--;
      total_slots--;
    }
  }
}

void WorldBuilder::add_peerings() {
  util::Rng rng = rng_.fork("peerings");

  // Count M-Lab host transits that are tier-1 (always reachable/direct for
  // transit-free ISPs).
  int n_hosts = static_cast<int>(mlab_host_asns_.size());
  int n_t1_hosts = 0;
  for (Asn h : mlab_host_asns_) {
    if (state(h).is_tier1) ++n_t1_hosts;
  }

  for (const auto& a : default_access_profiles()) {
    Asn primary = a.asns[0];
    double target = a.direct_host_peering;

    // Deterministic quota: the ISP peers directly with round(target * n)
    // of the M-Lab host transits. A Bernoulli draw per host would make the
    // realized Figure 1 fraction far too coarse with only ~6 host networks.
    int quota = static_cast<int>(std::lround(target * n_hosts));
    std::vector<Asn> hosts = mlab_host_asns_;
    // Transit-free carriers always peer with the tier-1 clique, so tier-1
    // hosts consume quota first for them.
    std::stable_sort(hosts.begin(), hosts.end(), [&](Asn x, Asn y) {
      return state(x).is_tier1 > state(y).is_tier1;
    });
    if (!a.transit_free) rng.shuffle(hosts);

    if (a.transit_free) {
      for (Asn t : tier1_asns_) relate_peer(primary, t);
      int direct = n_t1_hosts;  // tier-1 hosts are already direct
      for (Asn t : hosts) {
        if (state(t).is_tier1) continue;
        if (direct < quota && relate_peer(primary, t)) ++direct;
      }
      // Non-host transits peer freely with large carriers.
      for (Asn t : transit_asns_) {
        if (state(t).is_mlab_host ||
            topo_->relationships().adjacent(primary, t))
          continue;
        if (rng.chance(0.7)) relate_peer(primary, t);
      }
    } else {
      int direct = 0;
      for (Asn t : hosts) {
        if (direct < quota && relate_peer(primary, t)) ++direct;
      }
      // Buy transit from non-host *tier-1* carriers. This matters for the
      // Figure 1 calibration: if the provider were itself a customer of a
      // host network, that host would prefer the revenue-bearing customer
      // route over its direct peering with the ISP (Gao-Rexford customer >
      // peer), and every test would take two AS hops despite the peering.
      std::vector<Asn> provider_cands;
      for (Asn t : tier1_asns_) {
        if (!state(t).is_mlab_host &&
            !topo_->relationships().adjacent(primary, t)) {
          provider_cands.push_back(t);
        }
      }
      rng.shuffle(provider_cands);
      int n = std::min<int>(a.n_providers,
                            static_cast<int>(provider_cands.size()));
      for (int i = 0; i < n; ++i) {
        relate_customer(primary, provider_cands[static_cast<std::size_t>(i)]);
      }
    }

    // Regional siblings of large cable orgs also peer directly with some
    // M-Lab hosts (this is what creates multiple AS-level links between one
    // transit org and one access org, as in Table 2).
    for (std::size_t s = 1; s < a.asns.size(); ++s) {
      for (Asn t : mlab_host_asns_) {
        if (!topo_->relationships().adjacent(a.asns[0], t)) continue;
        if (rng.chance(0.6 * target)) {
          // Only if the sibling shares a city with the transit.
          AsState& sib = state(a.asns[s]);
          AsState& tr = state(t);
          bool common = std::any_of(
              sib.cities.begin(), sib.cities.end(),
              [&](CityId c) { return tr.in_city(c); });
          if (common && !topo_->relationships().adjacent(a.asns[s], t)) {
            relate_peer(a.asns[s], t);
          }
        }
      }
    }
  }

  // Content networks: peer openly with large access ISPs, and buy transit
  // (from carriers sharing at least one of the content network's cities, so
  // the relationship is always physically realizable).
  for (Asn c : content_asns_) {
    AsState& cs = state(c);
    std::vector<Asn> t;
    for (Asn asn : transit_asns_) {
      AsState& ts = state(asn);
      if (std::any_of(cs.cities.begin(), cs.cities.end(),
                      [&](CityId x) { return ts.in_city(x); })) {
        t.push_back(asn);
      }
    }
    rng.shuffle(t);
    int n_prov = std::min<int>(static_cast<int>(rng.uniform_int(1, 2)),
                               static_cast<int>(t.size()));
    for (int i = 0; i < n_prov; ++i) {
      relate_customer(c, t[static_cast<std::size_t>(i)]);
    }
    for (const auto& a : default_access_profiles()) {
      AsState& as = state(a.asns[0]);
      bool common = std::any_of(cs.cities.begin(), cs.cities.end(),
                                [&](CityId x) { return as.in_city(x); });
      if (!common) continue;
      double p = a.subscribers > 5000000 ? 0.7 : 0.35;
      if (rng.chance(p)) relate_peer(c, a.asns[0]);
    }
  }

  // Some access ISPs peer with each other regionally.
  for (std::size_t i = 0; i < access_primary_asns_.size(); ++i) {
    for (std::size_t j = i + 1; j < access_primary_asns_.size(); ++j) {
      if (rng.chance(0.25)) {
        AsState& x = state(access_primary_asns_[i]);
        AsState& y = state(access_primary_asns_[j]);
        bool common = std::any_of(x.cities.begin(), x.cities.end(),
                                  [&](CityId c) { return y.in_city(c); });
        if (common) relate_peer(x.asn, y.asn);
      }
    }
  }

  // Fill remaining peer quota (Table 3 PEER column) with regional peer
  // networks reached at IXPs: small ASes that peer but do not buy.
  for (const auto& a : default_access_profiles()) {
    AsState& st = state(a.asns[0]);
    int target = std::max(1, static_cast<int>(a.n_peers *
                                              std::max(0.25, cfg_.customer_scale)));
    int guard = 0;
    while (st.peer_count < target && ++guard < 500) {
      Asn asn = next_stub_asn_++;
      CityId city = st.cities[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(st.cities.size()) - 1))];
      auto& ps = create_as(asn, "RegionalPeer" + std::to_string(asn),
                           "Regional Peer " + std::to_string(asn),
                           AsType::kEnterprise, {city}, 18);
      ps.dns_coverage = 0.4;
      stub_asns_.push_back(asn);
      relate_peer(st.asn, asn);
      // Peer networks still need transit for the rest of the Internet.
      std::vector<Asn> cands;
      for (Asn t : transit_asns_) {
        if (state(t).in_city(city)) cands.push_back(t);
      }
      if (!cands.empty()) {
        relate_customer(asn, cands[static_cast<std::size_t>(rng.uniform_int(
                                  0, static_cast<std::int64_t>(cands.size()) -
                                         1))]);
      }
    }
  }
}

void WorldBuilder::build_routers() {
  util::Rng rng = rng_.fork("routers");
  for (auto& [asn, st] : as_states_) {
    // One backbone router per city; full mesh between them.
    std::vector<RouterId> backbones;
    for (CityId c : st.cities) {
      RouterId bb = topo_->add_router(asn, c, RouterRole::kBackbone,
                                      "bb1." + topo_->city(c).code);
      IpAddr mgmt;
      if (st.infra) {
        P2pCarver::Subnet s;
        if (st.infra->next(true, s)) mgmt = s.a;
      }
      topo_->set_router_mgmt_addr(bb, mgmt);
      backbones.push_back(bb);
    }
    for (std::size_t i = 0; i < backbones.size(); ++i) {
      for (std::size_t j = i + 1; j < backbones.size(); ++j) {
        P2pCarver::Subnet s;
        if (!st.infra->next(false, s)) continue;
        topo::Topology::LinkSpec spec;
        spec.router_a = backbones[i];
        spec.router_b = backbones[j];
        spec.kind = LinkKind::kInternal;
        spec.capacity_mbps = 100000.0;
        const topo::City& ca = topo_->city(topo_->router(backbones[i]).city);
        const topo::City& cb = topo_->city(topo_->router(backbones[j]).city);
        spec.prop_delay_ms =
            topo::propagation_delay_ms(topo::city_distance_km(ca, cb));
        spec.addr_a = s.a;
        spec.addr_b = s.b;
        topo_->add_link(spec);
      }
    }
    // Access ISPs get client-aggregation routers; every non-stub AS gets a
    // hosting router per city.
    auto attach_local = [&](RouterRole role, const std::string& prefix) {
      for (std::size_t i = 0; i < st.cities.size(); ++i) {
        CityId c = st.cities[i];
        RouterId r = topo_->add_router(asn, c, role,
                                       prefix + "1." + topo_->city(c).code);
        P2pCarver::Subnet s;
        if (st.infra->next(false, s)) {
          topo::Topology::LinkSpec spec;
          spec.router_a = r;
          spec.router_b = backbones[i];
          spec.kind = LinkKind::kInternal;
          spec.capacity_mbps = 40000.0;
          spec.prop_delay_ms = 0.3;
          spec.addr_a = s.a;
          spec.addr_b = s.b;
          topo_->add_link(spec);
          topo_->set_router_mgmt_addr(r, s.a);
        }
      }
    };
    if (st.type == AsType::kAccess) attach_local(RouterRole::kAccess, "agg");
    if (st.type != AsType::kEnterprise) {
      attach_local(RouterRole::kHosting, "host");
    }
  }
  (void)rng;
}

RouterId WorldBuilder::border_router(AsState& as, CityId city,
                                     util::Rng& rng) {
  auto& pool = as.border_pool[city.value];
  // Reuse an existing border router at this site 60% of the time; real
  // border routers terminate many neighbors.
  if (!pool.empty() && rng.chance(0.6)) {
    return pool[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
  }
  int n = ++as.edge_counter[city.value];
  RouterId r = topo_->add_router(as.asn, city, RouterRole::kBorder,
                                 "edge" + std::to_string(n));
  // Connect the border router to the local backbone.
  RouterId bb;
  for (RouterId cand : topo_->routers_of(as.asn, city)) {
    if (topo_->router(cand).role == RouterRole::kBackbone) bb = cand;
  }
  P2pCarver::Subnet s;
  if (bb.valid() && as.infra->next(false, s)) {
    topo::Topology::LinkSpec spec;
    spec.router_a = r;
    spec.router_b = bb;
    spec.kind = LinkKind::kInternal;
    spec.capacity_mbps = 100000.0;
    spec.prop_delay_ms = 0.2;
    spec.addr_a = s.a;
    spec.addr_b = s.b;
    topo_->add_link(spec);
    topo_->set_router_mgmt_addr(r, s.a);
  }
  pool.push_back(r);
  return r;
}

void WorldBuilder::add_one_link(AsState& a, AsState& b, CityId city,
                                RouterId ra, RouterId rb, bool customer_link,
                                bool via_ixp, util::Rng& rng) {
  topo::Topology::LinkSpec spec;
  spec.router_a = ra;
  spec.router_b = rb;
  spec.kind = LinkKind::kInterdomain;
  spec.capacity_mbps = customer_link ? 10000.0 : 100000.0;
  spec.prop_delay_ms = 0.3;
  spec.via_ixp = via_ixp;

  if (via_ixp) {
    auto it = ixp_carvers_.find(city.value);
    P2pCarver::Subnet s;
    if (it != ixp_carvers_.end() && it->second.next(false, s)) {
      // Both interfaces numbered from the IXP fabric prefix; inference
      // recognizes them through the IXP prefix list, not prefix-to-AS.
      spec.addr_a = s.a;
      spec.addr_b = s.b;
    } else {
      via_ixp = false;
      spec.via_ixp = false;
    }
  }
  if (!spec.via_ixp) {
    // Point-to-point subnet numbered from one side's space: customers are
    // usually numbered from the provider (side b by convention here);
    // peers from either side.
    bool from_a = customer_link ? rng.chance(0.2) : rng.chance(0.5);
    AsState& owner = from_a ? a : b;
    bool slash31 = rng.chance(0.15);
    P2pCarver::Subnet s;
    if (!owner.infra->next(slash31, s)) {
      AsState& alt = from_a ? b : a;
      if (!alt.infra->next(slash31, s)) return;  // both pools exhausted
      from_a = !from_a;
    }
    spec.addr_a = s.a;
    spec.addr_b = s.b;
    Asn space_owner = from_a ? a.asn : b.asn;
    spec.addr_owner_a = space_owner;
    spec.addr_owner_b = space_owner;
  }

  // PTR records: each side's interface names the remote org. Per-AS
  // coverage is scaled by the config knob relative to its 0.85 default, so
  // dns_ptr_coverage=0 strips every PTR and raising it names more
  // interfaces while preserving the per-AS-type spread.
  const double dns_scale = cfg_.dns_ptr_coverage / 0.85;
  const topo::City& c = topo_->city(city);
  int pop_index = 1 + static_cast<int>(rng.uniform_int(0, 4));
  if (rng.chance(a.dns_coverage * dns_scale)) {
    spec.dns_a = topo::make_interdomain_dns_name(
        b.org_name, topo_->router(ra).name, c.name, pop_index, a.domain);
  }
  if (rng.chance(b.dns_coverage * dns_scale)) {
    spec.dns_b = topo::make_interdomain_dns_name(
        a.org_name, topo_->router(rb).name, c.name, pop_index, b.domain);
  }
  topo_->add_link(spec);
}

void WorldBuilder::make_interconnects(AsState& a, AsState& b,
                                      RelType rel_a_to_b, util::Rng& rng) {
  // Common footprint.
  std::vector<CityId> common;
  for (CityId c : a.cities) {
    if (b.in_city(c)) common.push_back(c);
  }
  if (common.empty()) return;

  bool customer_link = rel_a_to_b != RelType::kPeer;
  bool a_is_stub = a.type == AsType::kEnterprise;
  bool b_is_stub = b.type == AsType::kEnterprise;

  int n_sites;
  if (a_is_stub || b_is_stub) {
    n_sites = 1;
  } else if (customer_link) {
    n_sites = static_cast<int>(rng.uniform_int(1, 3));
  } else {
    // Large-large peering interconnects in many cities.
    double size = std::min(a.cities.size(), b.cities.size());
    n_sites = static_cast<int>(rng.uniform_int(
        2, std::max<std::int64_t>(2, static_cast<std::int64_t>(size))));
  }
  n_sites = std::min<int>(n_sites, static_cast<int>(common.size()));
  rng.shuffle(common);

  double parallel_p =
      std::max(a.parallel_propensity, b.parallel_propensity);

  for (int s = 0; s < n_sites; ++s) {
    CityId city = common[static_cast<std::size_t>(s)];
    RouterId ra = border_router(a, city, rng);
    RouterId rb = border_router(b, city, rng);
    bool via_ixp = !customer_link && rng.chance(cfg_.ixp_peer_fraction) &&
                   ixp_carvers_.count(city.value) > 0;
    add_one_link(a, b, city, ra, rb, customer_link, via_ixp, rng);
    // Parallel links between the same router pair (the Cox case).
    if (!customer_link && rng.chance(parallel_p)) {
      int extra = static_cast<int>(rng.uniform_int(1, 8));
      for (int e = 0; e < extra; ++e) {
        add_one_link(a, b, city, ra, rb, customer_link, via_ixp, rng);
      }
    }
    // Large peers often interconnect on more than one router pair in the
    // same metro (distinct PoPs); these become distinct IP-level links in
    // the same region — part of the Table 2 diversity.
    if (!customer_link && !a_is_stub && !b_is_stub) {
      int extra_pairs = rng.chance(0.4) ? (rng.chance(0.35) ? 2 : 1) : 0;
      for (int e = 0; e < extra_pairs; ++e) {
        RouterId ra2 = border_router(a, city, rng);
        RouterId rb2 = border_router(b, city, rng);
        if (ra2 == ra && rb2 == rb) continue;
        add_one_link(a, b, city, ra2, rb2, customer_link, false, rng);
      }
    }
    if (customer_link && rng.chance(0.45)) {
      // Second customer link, usually terminating on a fresh router pair
      // (multihoming within the site) — this is what pushes router-level
      // border counts past AS-level counts in Table 3.
      RouterId ra2 = rng.chance(0.3) ? ra : border_router(a, city, rng);
      RouterId rb2 = rng.chance(0.3) ? rb : border_router(b, city, rng);
      add_one_link(a, b, city, ra2, rb2, customer_link, false, rng);
    }
  }
}

void WorldBuilder::build_interdomain_links() {
  util::Rng rng = rng_.fork("interdomain");
  // Iterate every relationship once (a < b ordering).
  std::vector<Asn> all = topo_->all_asns();
  for (Asn a : all) {
    for (const auto& [b, rel] : topo_->relationships().neighbors(a)) {
      if (a >= b) continue;
      make_interconnects(state(a), state(b), rel, rng);
    }
  }
}

void WorldBuilder::assign_traffic_profiles() {
  util::Rng rng = rng_.fork("traffic");
  auto& traffic = *world_.traffic;

  auto org_of = [&](Asn asn) { return state(asn).org_name; };

  for (const auto& link : topo_->links()) {
    sim::LinkLoadProfile p;
    if (link.kind == LinkKind::kInternal) {
      p.base_util = cfg_.internal_base_util;
      p.peak_util = cfg_.internal_peak_util * rng.uniform(0.8, 1.2);
    } else {
      RelType rel = topo_->relationships().between(link.as_a, link.as_b);
      bool customer = rel != RelType::kPeer;
      if (customer) {
        p.base_util = cfg_.customer_base_util;
        p.peak_util = cfg_.customer_peak_util * rng.uniform(0.7, 1.2);
      } else {
        p.base_util = cfg_.peer_base_util;
        p.peak_util = cfg_.peer_peak_util * rng.uniform(0.75, 1.15);
      }
      // Scenario overrides.
      for (const auto& entry : cfg_.congested) {
        bool match = (org_of(link.as_a) == entry.org_a &&
                      org_of(link.as_b) == entry.org_b) ||
                     (org_of(link.as_a) == entry.org_b &&
                      org_of(link.as_b) == entry.org_a);
        if (match) {
          p.peak_util = entry.peak_util * rng.uniform(0.97, 1.03);
          p.base_util = std::min(0.45, p.base_util + 0.1);
        }
      }
      p.peak_util = std::min(p.peak_util, 1.35);
    }
    // Stagger peak hours slightly per link.
    p.shape.peak_hour = 21.0 + rng.uniform(-1.0, 1.0);
    p.shape.trough_hour = 4.0 + rng.uniform(-1.0, 1.0);
    p.noise_sigma = 0.04;
    traffic.set_profile(link.id, p);
    if (p.peak_util >= 1.0) world_.congested_links.push_back(link.id);
  }

  if (cfg_.congest_internal_links) {
    // Assumption-1 ablation: saturate a few internal backbone links of the
    // largest access ISPs at peak.
    int done = 0;
    for (const auto& link : topo_->links()) {
      if (done >= 6) break;
      if (link.kind != LinkKind::kInternal) continue;
      if (state(link.as_a).type != AsType::kAccess) continue;
      if (!rng.chance(0.02)) continue;
      sim::LinkLoadProfile p = traffic.profile(link.id);
      p.peak_util = 1.1;
      traffic.set_profile(link.id, p);
      world_.congested_links.push_back(link.id);
      ++done;
    }
  }
}

RouterId WorldBuilder::attachment_router(AsState& as, CityId city,
                                         RouterRole role) {
  RouterId fallback;
  for (RouterId r : topo_->routers_of(as.asn, city)) {
    RouterRole rr = topo_->router(r).role;
    if (rr == role) return r;
    if (rr == RouterRole::kBackbone) fallback = r;
  }
  return fallback;
}

std::uint32_t WorldBuilder::place_host(AsState& as, CityId city,
                                       HostKind kind, RouterRole attach_role,
                                       const std::string& label,
                                       util::Rng& rng) {
  topo::Host h;
  h.kind = kind;
  h.asn = as.asn;
  h.city = city;
  h.attachment = attachment_router(as, city, attach_role);
  h.label = label;
  IpAddr addr;
  HostCarver& pool = kind == HostKind::kClient ? *as.client_pool : *as.host_pool;
  if (!pool.next(addr)) {
    // Pool exhausted (possible only at extreme scales): reuse infra space.
    P2pCarver::Subnet s;
    as.infra->next(true, s);
    addr = s.a;
  }
  h.addr = addr;
  if (kind != HostKind::kClient) {
    h.tier = topo::ServiceTier{10000.0, 10000.0};
    h.home_quality = 1.0;
    h.access_delay_ms = 0.3;
  }
  (void)rng;
  return topo_->add_host(h);
}

void WorldBuilder::place_clients() {
  util::Rng rng = rng_.fork("clients");
  for (const auto& a : default_access_profiles()) {
    const auto& tiers = tier_mix(a.tech);
    std::vector<double> tier_w;
    for (const auto& t : tiers) tier_w.push_back(t.weight);

    // Client volume loosely follows subscriber share, floored so small ISPs
    // still produce usable samples.
    int n = std::max(40, static_cast<int>(cfg_.clients_per_access_isp *
                                          std::sqrt(a.subscribers / 6.0e6)));
    for (int i = 0; i < n; ++i) {
      // Pick the sibling AS: primary carries most subscribers.
      std::size_t sib = 0;
      if (a.asns.size() > 1 && rng.chance(0.4)) {
        sib = static_cast<std::size_t>(
            rng.uniform_int(1, static_cast<std::int64_t>(a.asns.size()) - 1));
      }
      AsState& st = state(a.asns[sib]);
      // City weighted by population.
      std::vector<double> cw;
      for (CityId c : st.cities) {
        cw.push_back(topo_->city(c).population_weight);
      }
      CityId city = st.cities[rng.weighted_index(cw)];
      std::uint32_t id = place_host(st, city, HostKind::kClient,
                                    RouterRole::kAccess,
                                    a.name + "-client", rng);
      topo::Host& h = topo_->mutable_host(id);
      const TierOption& tier = tiers[rng.weighted_index(tier_w)];
      h.tier = topo::ServiceTier{tier.down_mbps, tier.up_mbps};
      // Home network: ~45% wired (full quality), the rest Wi-Fi with a wide
      // quality spread (paper Section 6.1).
      h.home_quality = rng.chance(0.45) ? 1.0 : rng.uniform(0.35, 1.0);
      h.access_delay_ms = access_delay_ms(a.tech) * rng.uniform(0.7, 1.6);
      world_.clients.push_back(id);
    }
  }
}

void WorldBuilder::place_servers() {
  util::Rng rng = rng_.fork("servers");

  // M-Lab: servers live in the hosting transits' major cities; several
  // machines per site, like the real deployment.
  {
    std::vector<std::pair<Asn, CityId>> sites;
    for (Asn t : mlab_host_asns_) {
      for (CityId c : state(t).cities) sites.emplace_back(t, c);
    }
    rng.shuffle(sites);
    std::unordered_map<std::uint64_t, int> site_counter;
    for (int i = 0; i < cfg_.mlab_servers; ++i) {
      auto [asn, city] = sites[static_cast<std::size_t>(i) % sites.size()];
      int n = ++site_counter[(static_cast<std::uint64_t>(asn) << 32) |
                             city.value];
      std::string label = util::format(
          "mlab.%s%02d.%s", topo_->city(city).code.c_str(), n,
          state(asn).name.c_str());
      world_.mlab_servers.push_back(place_host(
          state(asn), city, HostKind::kTestServer, RouterRole::kHosting,
          label, rng));
    }
  }

  // Speedtest: a much larger fleet hosted broadly — inside access ISPs
  // themselves, in transits, content networks, and regional stubs. This
  // breadth is why its interconnection coverage beats M-Lab's (Section 5.2).
  {
    struct HostClass {
      std::vector<Asn>* pool;
      double weight;
    };
    std::vector<Asn> access_pool = all_access_asns_;
    std::vector<HostClass> classes = {
        {&access_pool, 0.50},
        {&transit_asns_, 0.22},
        {&content_asns_, 0.12},
        {&stub_asns_, 0.16},
    };
    std::vector<double> cw;
    for (const auto& c : classes) cw.push_back(c.weight);
    int counter = 0;
    for (int i = 0; i < cfg_.speedtest_servers_2017; ++i) {
      auto& cls = classes[rng.weighted_index(cw)];
      Asn asn = (*cls.pool)[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(cls.pool->size()) - 1))];
      AsState& st = state(asn);
      CityId city = st.cities[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(st.cities.size()) - 1))];
      std::string label = util::format("speedtest.%s%04d",
                                       topo_->city(city).code.c_str(),
                                       ++counter);
      std::uint32_t id =
          place_host(st, city, HostKind::kTestServer, RouterRole::kHosting,
                     label, rng);
      world_.speedtest_servers_2017.push_back(id);
    }
    // The 2015 snapshot is the prefix of today's fleet (Speedtest only grew).
    world_.speedtest_servers_2015.assign(
        world_.speedtest_servers_2017.begin(),
        world_.speedtest_servers_2017.begin() +
            std::min<std::size_t>(world_.speedtest_servers_2017.size(),
                                  static_cast<std::size_t>(
                                      cfg_.speedtest_servers_2015)));
  }
}

void WorldBuilder::place_vps() {
  util::Rng rng = rng_.fork("vps");
  for (const auto& a : default_access_profiles()) {
    for (const auto& site : a.vp_sites) {
      CityId city(static_cast<std::uint32_t>(metro_index_for_site(site)));
      AsState& st = state(a.asns[0]);
      std::uint32_t id = place_host(st, city, HostKind::kVantage,
                                    RouterRole::kAccess, site, rng);
      // VPs sit on residential-style connections but we give them generous
      // tiers; topology probing is not throughput-bound.
      world_.ark_vps.push_back(id);
    }
  }
}

void WorldBuilder::place_content() {
  util::Rng rng = rng_.fork("content");
  // One content endpoint per (content AS, city) — CDN front-ends.
  for (Asn c : content_asns_) {
    AsState& st = state(c);
    for (CityId city : st.cities) {
      std::string label =
          util::format("%s.%s", st.name.c_str(), topo_->city(city).code.c_str());
      world_.content_hosts.push_back(place_host(
          st, city, HostKind::kContent, RouterRole::kHosting, label, rng));
    }
  }
  // Alexa-style domain list: domains assigned to content ASes by weight.
  std::vector<double> w;
  for (const auto& c : default_content_profiles()) w.push_back(c.alexa_weight);
  const auto& profiles = default_content_profiles();
  for (int d = 0; d < cfg_.alexa_targets; ++d) {
    const auto& c = profiles[rng.weighted_index(w)];
    world_.alexa_domains.emplace_back(
        util::format("site%03d.%s.example", d, util::to_lower(c.name).c_str()),
        c.asn);
  }
}

World WorldBuilder::build() {
  world_.topo = std::make_unique<topo::Topology>();
  topo_ = world_.topo.get();

  add_cities();
  add_ixps();
  add_core_ases();
  add_stubs();
  add_peerings();
  build_routers();
  build_interdomain_links();

  world_.traffic = std::make_unique<sim::TrafficModel>(*topo_);
  // Default congestion scenario mirrors the paper's Figure 5 case study
  // (GTT-AT&T congested, GTT-Comcast busy but not), plus a spectrum of
  // milder cases so the Section 6.2 threshold study has a realistic gray
  // zone on both sides of saturation.
  if (cfg_.congested.empty()) {
    cfg_.congested.push_back({"GTT Communications", "AT&T Services", 1.12});
    cfg_.congested.push_back(
        {"GTT Communications", "Comcast Cable Communications", 0.93});
    cfg_.congested.push_back(
        {"Cogent Communications", "Verizon Business", 1.08});
    cfg_.congested.push_back(
        {"Tata Communications America", "Time Warner Cable", 1.05});
    cfg_.congested.push_back(
        {"Zayo Bandwidth", "Charter Communications", 1.03});
    cfg_.congested.push_back({"XO Communications", "Cox Communications", 1.01});
    cfg_.congested.push_back(
        {"Level 3 Communications", "Time Warner Cable", 0.97});
    cfg_.congested.push_back(
        {"Cogent Communications", "CenturyLink Communications", 0.99});
  }
  assign_traffic_profiles();

  place_clients();
  place_servers();
  place_vps();
  place_content();

  NETCONG_INFO << "generated world: " << topo_->as_count() << " ASes, "
               << topo_->routers().size() << " routers, "
               << topo_->links().size() << " links ("
               << topo_->interdomain_link_count() << " interdomain), "
               << topo_->hosts().size() << " hosts, "
               << world_.congested_links.size() << " congested links";
  return std::move(world_);
}

}  // namespace
}  // namespace netcong::gen
