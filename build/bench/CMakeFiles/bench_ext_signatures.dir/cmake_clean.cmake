file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_signatures.dir/bench_ext_signatures.cpp.o"
  "CMakeFiles/bench_ext_signatures.dir/bench_ext_signatures.cpp.o.d"
  "CMakeFiles/bench_ext_signatures.dir/common.cpp.o"
  "CMakeFiles/bench_ext_signatures.dir/common.cpp.o.d"
  "bench_ext_signatures"
  "bench_ext_signatures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_signatures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
