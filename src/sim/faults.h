#pragma once

// Deterministic fault injection for the measurement pipeline.
//
// The paper's central caveat is that real crowdsourced pipelines are lossy:
// only 71-87% of NDT tests could be matched to a traceroute because a
// single-threaded daemon silently drops work (Section 4.1), and sample
// sparsity corrupts the statistics (Section 6). The seed pipeline modeled
// only the daemon failure; this subsystem injects every other failure mode
// the platforms documented, at named sites, so each inference stage can be
// tested against the degraded corpora it would see in production.
//
// Determinism contract (extends the PR-1 campaign contract): every fault
// decision is a pure function of (master seed, injection site, item id) —
// a fresh Rng forked on the site then the item, never a shared sequential
// stream — so a faulted campaign is bit-identical across thread counts,
// scheduling orders, and path-cache on/off.
//
// The disabled injector is near-zero-cost: every site check short-circuits
// on `enabled()` before touching an Rng (bench_campaign's `faulted` variant
// holds this below 2% overhead).

#include <cstdint>
#include <string>
#include <vector>

#include "topo/ip.h"
#include "topo/ids.h"
#include "util/result.h"
#include "util/rng.h"

namespace netcong::sim {

// Named injection sites. Values are the fork-stream family of the site and
// must stay stable: changing one reshuffles every faulted campaign.
enum class FaultSite : std::uint64_t {
  kServerOutage = 1,    // scheduled M-Lab/Speedtest server outage windows
  kServerFlap = 2,      // short repeated down-windows (flapping server)
  kNdtAbort = 3,        // NDT test aborts before producing a measurement
  kNdtTruncate = 4,     // mid-test truncation: throughput from partial data
  kTracerouteCrash = 5, // traceroute daemon crash + restart delay
  kProbeLoss = 6,       // per-probe loss beyond the base star model
  kWebStatsDrop = 7,    // WebStats fields dropped from the test record
  kPrefix2AsStale = 8,  // stale prefix2AS entries (wrong origin ASN)
  kRetryBackoff = 9,    // client-side retry backoff draws
  // Ingest durability sites (DESIGN.md §12): the serve subsystem's WAL and
  // socket front-end compose with the same deterministic injector.
  kWalTornWrite = 10,   // process dies mid-append: partial frame on disk
  kWalFsyncFail = 11,   // fsync returns an error; append stays page-cached
  kNetShortRead = 12,   // socket delivers frames in tiny chunks
  kNetDisconnect = 13,  // producer disconnects mid-frame
};

const char* fault_site_name(FaultSite site);
const char* fault_site_description(FaultSite site);
const std::vector<FaultSite>& all_fault_sites();

struct FaultConfig {
  // Master switch; when false the injector is inert and near-free.
  bool enabled = false;

  // -- server outages (site kServerOutage / kServerFlap) --
  // Fraction of servers with one scheduled outage window inside the
  // horizon, and its length.
  double server_outage_fraction = 0.0;
  double outage_duration_hours = 12.0;
  double outage_horizon_hours = 14.0 * 24.0;
  // Fraction of servers that flap: down for flap_down_hours out of every
  // flap_period_hours, at a per-server phase.
  double server_flap_fraction = 0.0;
  double flap_period_hours = 8.0;
  double flap_down_hours = 0.5;

  // -- client-side retry on outage (site kRetryBackoff) --
  // A client whose chosen server is down retries against the next-nearest
  // server after a deterministic backoff, up to max_retries extra attempts.
  int max_retries = 2;
  double backoff_base_s = 30.0;

  // -- per-test faults (sites kNdtAbort / kNdtTruncate / kWebStatsDrop) --
  double ndt_abort_prob = 0.0;
  double ndt_truncate_prob = 0.0;
  double webstats_drop_prob = 0.0;

  // -- traceroute daemon (site kTracerouteCrash) --
  // A crash loses the due traceroute and keeps the daemon down for
  // daemon_restart_s (subsequent traceroutes in the window are busy-lost).
  double daemon_crash_prob = 0.0;
  double daemon_restart_s = 300.0;

  // -- probe loss (site kProbeLoss) --
  // Fraction of traceroutes crossing a lossy path; those run with the base
  // star probability raised by probe_loss_extra_star.
  double probe_loss_prob = 0.0;
  double probe_loss_extra_star = 0.25;

  // -- datasets (site kPrefix2AsStale) --
  // Fraction of announced prefixes whose origin ASN is stale (re-originated
  // by a deterministic wrong AS drawn from the announced set).
  double prefix2as_stale_fraction = 0.0;

  // -- ingest durability (sites kWalTornWrite / kWalFsyncFail) --
  // Per-append probability the process "dies" mid-write, leaving a torn
  // frame at the segment tail (the writer then refuses further appends,
  // like the dead process it models), and per-sync probability that fsync
  // fails (the append survives only in the page cache).
  double wal_torn_write_prob = 0.0;
  double wal_fsync_fail_prob = 0.0;

  // -- socket front-end (sites kNetShortRead / kNetDisconnect) --
  // Per-connection probability the server's reads arrive in 1-3 byte
  // chunks (framing reassembly stress), and per-event probability a client
  // disconnects after sending only part of a frame.
  double net_short_read_prob = 0.0;
  double net_disconnect_prob = 0.0;

  // A one-knob severity preset: s in [0,1] scales every site's rate.
  static FaultConfig scaled(double severity);
};

// Parses a CLI-style severity ("0.2") into a scaled FaultConfig.
util::Result<FaultConfig> parse_fault_severity(const std::string& text);

// Per-campaign data-quality report. Every attempted unit of work ends up in
// exactly one terminal bucket — "attempted = completed + classified
// excluded" is the invariant consistent() checks and tests enforce: the
// pipeline may degrade, but it may never silently drop a record.
struct DataQuality {
  // NDT tests: attempted = completed + aborted + unserved + failed.
  std::size_t tests_attempted = 0;
  std::size_t tests_completed = 0;
  std::size_t tests_aborted = 0;   // abort fault or server flap mid-test
  std::size_t tests_unserved = 0;  // every candidate server down
  std::size_t tests_failed = 0;    // internal error, classified not thrown
  std::size_t tests_truncated = 0; // subset of completed (flagged records)
  std::size_t tests_retried = 0;   // tests that needed >= 1 retry to run
  std::size_t retry_attempts = 0;  // total extra attempts drawn
  std::size_t webstats_dropped = 0;  // completed tests missing WebStats
  std::size_t fields_dropped = 0;    // individual WebStats fields dropped

  // Traceroutes: scheduled = completed + lost_*. Cache suppression is the
  // platform working as designed, so it is counted beside, not inside.
  std::size_t traceroutes_scheduled = 0;
  std::size_t traceroutes_completed = 0;
  std::size_t traceroutes_lost_busy = 0;
  std::size_t traceroutes_lost_failed = 0;  // collection brownout
  std::size_t traceroutes_lost_crash = 0;   // daemon crash fault
  std::size_t traceroutes_suppressed_cached = 0;
  std::size_t traceroutes_degraded = 0;  // ran with injected probe loss

  // Socket ingest (serve/net): received = ok + rejected, and every ok
  // frame's event is either submitted or classified dropped — the
  // socket-layer share of the conserved drop-policy accounting.
  std::size_t ingest_frames_ok = 0;
  std::size_t ingest_frames_rejected = 0;
  std::size_t ingest_events_submitted = 0;
  std::size_t ingest_events_dropped = 0;

  bool consistent() const {
    return tests_attempted == tests_completed + tests_aborted +
                                  tests_unserved + tests_failed &&
           traceroutes_scheduled == traceroutes_completed +
                                        traceroutes_lost_busy +
                                        traceroutes_lost_failed +
                                        traceroutes_lost_crash &&
           tests_truncated <= tests_completed &&
           webstats_dropped <= tests_completed &&
           ingest_frames_ok == ingest_events_submitted + ingest_events_dropped;
  }

  bool operator==(const DataQuality& o) const = default;

  // (metric, value) rows for tables/CSV, in a stable order.
  std::vector<std::pair<std::string, std::size_t>> rows() const;
};

class FaultInjector {
 public:
  FaultInjector(FaultConfig config, std::uint64_t seed);

  const FaultConfig& config() const { return config_; }
  bool enabled() const { return config_.enabled; }

  // The decision streams. Each call builds a fresh generator from
  // (seed, site, item); callers that need several draws for one decision
  // take the stream once and draw from it.
  [[nodiscard]] util::Rng stream(FaultSite site, std::uint64_t item) const;
  bool fires(FaultSite site, std::uint64_t item, double prob) const;

  // Scheduled-outage model: is this server down at this time? Pure function
  // of (seed, server, time); callable concurrently.
  bool server_down(std::uint32_t server, double utc_time_hours) const;

  // Announced-prefix degradation: the input list with a deterministic
  // prefix2as_stale_fraction of entries re-originated to another announced
  // origin. Feed the result to infer::Ip2As to build a stale BGP view.
  std::vector<std::pair<topo::Prefix, topo::Asn>> degrade_prefix2as(
      const std::vector<std::pair<topo::Prefix, topo::Asn>>& announced) const;

 private:
  FaultConfig config_;
  util::Rng root_;
};

}  // namespace netcong::sim
