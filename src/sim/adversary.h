#pragma once

// Deterministic adversarial routing scenarios for the measurement pipeline.
//
// Every scenario the honest generator produces keeps the control plane
// frozen for the whole campaign, but the paper's core claim is that
// throughput-based congestion inference breaks under exactly the dynamics
// real campaigns face: BGP path churn mid-campaign, peering
// de-provisioning, asymmetric forward/reverse routing, and adversarially
// placed non-responding routers ("Misleading Stars", Pignolet et al.) that
// make distinct topologies produce identical traceroute corpora.
//
// This library injects those dynamics the way sim/faults injects data
// loss: every decision is a pure function of (master seed, scenario site,
// item id) — a fresh Rng forked on the site then the item, never a shared
// sequential stream — so an adversarial campaign is bit-identical across
// thread counts, scheduling orders, and path-cache on/off, and composes
// with the threads x cache x obs x faults differential matrix for free.
//
// Mechanically the scenarios act through the flow key and the route view:
//  * churn: after the epoch, a seeded fraction of (src, dst) pairs get a
//    per-pair salt XORed into the flow key's ephemeral-port bits, so the
//    forwarder's ECMP/hot-potato hashes land elsewhere — the path moves
//    while the honest topology stays fixed (a hot-potato shift);
//  * withdrawal: at the epoch a seeded set of interdomain links disappears
//    from a second, scenario-owned route view (Forwarder with a withdrawn
//    mask + its own PathCache); post-epoch lookups resolve through it;
//  * asymmetry: traceroute probes toward a seeded fraction of pairs carry
//    a different key salt than the data flow, so the observed reverse-path
//    topology diverges from the path the throughput test actually took;
//  * misleading stars: a seeded fraction of routers never answers probes,
//    which makes the observed corpus consistent with many distinct ground
//    truths (measure/adversary.h materializes the indistinguishable pair).
//
// Because a rewritten key must keep (key -> path) a pure function for the
// whole campaign (route::PathCache and measure::PathPool memoize on it),
// every lookup that resolves through the post-epoch view also carries a
// reserved view bit in the key, so pre- and post-epoch paths never collide
// under one key.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "route/bgp.h"
#include "route/forwarding.h"
#include "route/path_cache.h"
#include "topo/topology.h"
#include "util/result.h"
#include "util/rng.h"

namespace netcong::sim {

// Named decision sites. Values are the fork-stream family of the site and
// must stay stable: changing one reshuffles every adversarial campaign.
enum class AdversarySite : std::uint64_t {
  kChurnPair = 1,     // is this (src, dst) pair re-routed after the epoch?
  kChurnSalt = 2,     // the churned pair's key salt
  kAsymPair = 3,      // does this pair's probe path diverge from its flow?
  kAsymSalt = 4,      // the divergent probe key salt
  kWithdrawPick = 5,  // which interdomain links get withdrawn
  kStarCloak = 6,     // which routers never answer probes
};

const char* adversary_site_name(AdversarySite site);

struct AdversaryConfig {
  // Master switch; when false the scenario is inert and near-free.
  bool enabled = false;

  // Campaign hour at which churn and withdrawal take effect. 0 means the
  // adversary is active from the first test.
  double epoch_hours = 0.0;

  // -- BGP path churn / hot-potato shift (sites kChurnPair/kChurnSalt) --
  // Fraction of (src, dst) pairs whose route changes at the epoch.
  double churn_fraction = 0.0;

  // -- IXP outage / peering de-provisioning (site kWithdrawPick) --
  // Number of interdomain links withdrawn at the epoch. Links are drawn
  // from AS pairs with parallel connectivity first, so traffic re-routes
  // instead of blackholing (a blackholed pair still degrades gracefully:
  // invalid path, zero-throughput completed record).
  int withdraw_links = 0;

  // -- asymmetric forward/reverse routing (sites kAsymPair/kAsymSalt) --
  // Fraction of pairs whose traceroute observes a different router path
  // than the data flow took (static, not epoched: real asymmetry is a
  // standing property of the routing system).
  double asym_fraction = 0.0;

  // -- misleading stars (site kStarCloak) --
  // Fraction of routers that never answer probes.
  double star_fraction = 0.0;

  // Scenario presets used by the CLI, bench, and tests.
  static AdversaryConfig churn(double epoch_hours, double fraction);
  static AdversaryConfig withdrawal(double epoch_hours, int links);
  static AdversaryConfig asymmetric(double fraction);
  static AdversaryConfig misleading_stars(double fraction);
};

// One scenario instance bound to a topology + BGP view. Construction is a
// pure function of (topo, bgp, config, seed): the withdrawn-link set, the
// cloaked-router set, and the post-epoch route view are all decided here,
// deterministically. The referenced topology and bgp must outlive it.
class AdversaryScenario {
 public:
  AdversaryScenario(const topo::Topology& topo, const route::BgpRouting& bgp,
                    AdversaryConfig config, std::uint64_t seed);

  const AdversaryConfig& config() const { return config_; }
  bool enabled() const { return config_.enabled; }
  double epoch_hours() const { return config_.epoch_hours; }

  // The decision streams, (seed, site, item) pure like FaultInjector's.
  [[nodiscard]] util::Rng stream(AdversarySite site, std::uint64_t item) const;

  // Is the (src_host, dst) pair re-routed after the epoch / observed
  // asymmetrically? Pure functions; callable concurrently.
  bool pair_churned(std::uint32_t src_host, topo::IpAddr dst) const;
  bool pair_asymmetric(std::uint32_t src_host, topo::IpAddr dst) const;

  // Does this router answer probes? (Misleading-Stars cloak; precomputed,
  // O(1) per hop.)
  bool router_cloaked(topo::RouterId router) const;
  std::size_t cloaked_router_count() const { return cloaked_count_; }

  // Interdomain links withdrawn at the epoch (empty unless configured).
  const std::vector<topo::LinkId>& withdrawn_links() const {
    return withdrawn_;
  }

  // True when lookups at time t must resolve through the post-epoch route
  // view (some link has been withdrawn and t >= epoch).
  bool post_view_active(double utc_time_hours) const {
    return !withdrawn_.empty() && utc_time_hours >= config_.epoch_hours;
  }

  // The post-epoch route view. Valid only when withdrawn_links() is
  // non-empty; the cache memoizes the withdrawn-mask forwarder, so the
  // view stays a pure function of the key like the base view.
  const route::PathCache& post_cache() const { return *post_cache_; }

  // Applies the scenario's key perturbations for a data flow / traceroute
  // from src_host toward dst at time t. Returns true when the lookup must
  // resolve through post_cache() instead of the campaign's base view. The
  // rewritten key never collides with a base-view key: churn/asym salts
  // stay below the view bit, and every post-view key carries the view bit.
  bool rewrite_test_key(std::uint32_t src_host, topo::IpAddr dst,
                        double utc_time_hours, route::FlowKey& key) const;
  bool rewrite_trace_key(std::uint32_t src_host, topo::IpAddr dst,
                         double utc_time_hours, route::FlowKey& key) const;

 private:
  bool rewrite_key(std::uint32_t src_host, topo::IpAddr dst,
                   double utc_time_hours, bool is_trace,
                   route::FlowKey& key) const;

  AdversaryConfig config_;
  util::Rng root_;
  std::vector<topo::LinkId> withdrawn_;
  // Cloak mask indexed by router id; empty when star_fraction == 0.
  std::vector<std::uint8_t> cloaked_;
  std::size_t cloaked_count_ = 0;
  // Post-epoch route view, built only when links are withdrawn.
  std::unique_ptr<route::Forwarder> post_fwd_;
  std::unique_ptr<route::PathCache> post_cache_;
};

}  // namespace netcong::sim
