file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_alexa_overlap.dir/bench_fig4_alexa_overlap.cpp.o"
  "CMakeFiles/bench_fig4_alexa_overlap.dir/bench_fig4_alexa_overlap.cpp.o.d"
  "CMakeFiles/bench_fig4_alexa_overlap.dir/common.cpp.o"
  "CMakeFiles/bench_fig4_alexa_overlap.dir/common.cpp.o.d"
  "bench_fig4_alexa_overlap"
  "bench_fig4_alexa_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_alexa_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
