file(REMOVE_RECURSE
  "libnetcong_util.a"
)
