
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/diurnal.cpp" "src/sim/CMakeFiles/netcong_sim.dir/diurnal.cpp.o" "gcc" "src/sim/CMakeFiles/netcong_sim.dir/diurnal.cpp.o.d"
  "/root/repo/src/sim/packet/dumbbell.cpp" "src/sim/CMakeFiles/netcong_sim.dir/packet/dumbbell.cpp.o" "gcc" "src/sim/CMakeFiles/netcong_sim.dir/packet/dumbbell.cpp.o.d"
  "/root/repo/src/sim/packet/event_queue.cpp" "src/sim/CMakeFiles/netcong_sim.dir/packet/event_queue.cpp.o" "gcc" "src/sim/CMakeFiles/netcong_sim.dir/packet/event_queue.cpp.o.d"
  "/root/repo/src/sim/packet/queue.cpp" "src/sim/CMakeFiles/netcong_sim.dir/packet/queue.cpp.o" "gcc" "src/sim/CMakeFiles/netcong_sim.dir/packet/queue.cpp.o.d"
  "/root/repo/src/sim/packet/tcp.cpp" "src/sim/CMakeFiles/netcong_sim.dir/packet/tcp.cpp.o" "gcc" "src/sim/CMakeFiles/netcong_sim.dir/packet/tcp.cpp.o.d"
  "/root/repo/src/sim/throughput.cpp" "src/sim/CMakeFiles/netcong_sim.dir/throughput.cpp.o" "gcc" "src/sim/CMakeFiles/netcong_sim.dir/throughput.cpp.o.d"
  "/root/repo/src/sim/traffic.cpp" "src/sim/CMakeFiles/netcong_sim.dir/traffic.cpp.o" "gcc" "src/sim/CMakeFiles/netcong_sim.dir/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topo/CMakeFiles/netcong_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/netcong_route.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/netcong_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/netcong_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
