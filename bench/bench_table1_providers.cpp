// Table 1: US broadband access providers with more than one million
// subscribers (Q3 2015), and how the generator's client population tracks
// their subscriber shares.

#include <cstdio>

#include "common.h"
#include "gen/paper_data.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace netcong;
  bench::print_header("Table 1", "Broadband access providers (Q3 2015)");

  bench::Context ctx(bench::bench_config());

  util::TextTable table(
      {"ISP", "Subscribers (paper)", "Sibling ASNs (model)",
       "Clients (model)", "Client share", "Subscriber share"});

  std::int64_t total_subs = 0;
  for (const auto& row : gen::paper::table1_providers()) {
    total_subs += row.subscribers;
  }
  std::size_t total_clients = ctx.world.clients.size();

  for (const auto& row : gen::paper::table1_providers()) {
    std::string name(row.name);
    std::string model_name = name == "Time Warner Cable" ? "TWC" : name;
    auto it = ctx.world.isp_asns.find(model_name);
    std::size_t asns = it == ctx.world.isp_asns.end() ? 0 : it->second.size();
    std::size_t clients = ctx.world.clients_of(model_name).size();
    table.add_row(
        {name, util::with_thousands(row.subscribers), std::to_string(asns),
         std::to_string(clients),
         bench::pct(100.0 * static_cast<double>(clients) / total_clients),
         bench::pct(100.0 * static_cast<double>(row.subscribers) /
                    static_cast<double>(total_subs))});
  }
  std::printf("%s", table.render().c_str());
  bench::print_footnote(
      "client volume follows sqrt(subscribers) so small ISPs still yield "
      "statistically usable samples, as in crowdsourced reality");
  return 0;
}
