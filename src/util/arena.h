#pragma once

// Bump-pointer arena for campaign-lifetime allocations. The traceroute
// corpus previously paid one heap allocation per trace for its hop vector
// (plus one per DNS name); at paper scale that is tens of millions of small
// node allocations whose only purpose is to be freed together when the
// campaign result is dropped. The arena replaces them with appends into
// large contiguous slabs: traces hold (offset, count) spans into the slab,
// allocation is a pointer bump, and teardown is freeing a handful of chunks.
//
// Restrictions, by design:
//  * only trivially-destructible element types (nothing is ever destroyed
//    individually — reset()/~Arena just drop the chunks);
//  * not thread-safe — parallel fills use one arena per block shard and
//    merge serially (see measure::TraceCorpus).

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace netcong::util {

class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 1u << 16;  // 64 KiB
  static constexpr std::size_t kMaxChunkBytes = 4u << 20;      // 4 MiB cap
  static constexpr std::size_t kMaxAlign = 64;                 // cache line

  explicit Arena(std::size_t min_chunk_bytes = kDefaultChunkBytes)
      : min_chunk_bytes_(min_chunk_bytes < 64 ? 64 : min_chunk_bytes) {}

  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Raw aligned allocation. `align` must be a power of two ≤ kMaxAlign.
  void* allocate(std::size_t bytes, std::size_t align) {
    if (bytes == 0) bytes = 1;
    if (chunks_.empty()) new_chunk(bytes + align);
    std::size_t aligned = aligned_offset(align);
    if (aligned + bytes > chunks_.back().size) {
      new_chunk(bytes + align);
      aligned = aligned_offset(align);
    }
    used_ += (aligned - offset_) + bytes;
    offset_ = aligned + bytes;
    return chunks_.back().data.get() + aligned;
  }

  // Uninitialized array of n Ts. T must be trivially destructible (the
  // arena never runs destructors) and trivially copyable (elements are
  // moved around with memcpy by the columnar builders).
  template <typename T>
  T* alloc_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena elements are never individually destroyed");
    static_assert(std::is_trivially_copyable_v<T>,
                  "Arena elements are relocated bytewise");
    static_assert(alignof(T) <= kMaxAlign);
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  // Copies [src, src + n) into the arena and returns the stable pointer.
  template <typename T>
  T* append(const T* src, std::size_t n) {
    T* dst = alloc_array<T>(n);
    if (n != 0) std::memcpy(dst, src, n * sizeof(T));
    return dst;
  }

  // Drops every chunk but retains the first (largest-lived) one so a
  // recycled arena reuses warm memory instead of re-growing from scratch.
  void reset() {
    if (chunks_.size() > 1) chunks_.erase(chunks_.begin() + 1, chunks_.end());
    offset_ = 0;
    used_ = 0;
  }

  std::size_t bytes_used() const { return used_; }
  std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  // Alignment relative to the chunk's *absolute* base address — operator
  // new[] only guarantees max_align_t, so offsets alone can't express a
  // 64-byte-aligned slot.
  std::size_t aligned_offset(std::size_t align) const {
    auto base = reinterpret_cast<std::uintptr_t>(chunks_.back().data.get());
    std::uintptr_t p =
        (base + offset_ + (align - 1)) & ~static_cast<std::uintptr_t>(align - 1);
    return static_cast<std::size_t>(p - base);
  }

  void new_chunk(std::size_t at_least) {
    // Geometric growth bounded by kMaxChunkBytes keeps chunk count low
    // without ballooning the tail chunk on huge corpora.
    std::size_t want = min_chunk_bytes_;
    if (!chunks_.empty()) {
      want = chunks_.back().size * 2;
      if (want > kMaxChunkBytes) want = kMaxChunkBytes;
      if (want < min_chunk_bytes_) want = min_chunk_bytes_;
    }
    if (want < at_least) want = at_least;
    Chunk c;
    c.data = std::make_unique<std::byte[]>(want);
    c.size = want;
    chunks_.push_back(std::move(c));
    offset_ = 0;
  }

  std::size_t min_chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t offset_ = 0;  // bump offset within chunks_.back()
  std::size_t used_ = 0;    // total bytes handed out (incl. alignment pad)
};

}  // namespace netcong::util
