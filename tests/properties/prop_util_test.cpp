// Gtest wrapper for the "util" property family (container/differential
// properties over the dependency-free utility layer, e.g. FlatMap vs
// std::unordered_map on random op sequences). Each registered property
// becomes one parameterized test case, so a failure surfaces with the
// shrunk counterexample and its NETCONG_PBT_SEED repro line in the gtest
// output.

#include <gtest/gtest.h>

#include "check/properties.h"

namespace netcong::check {
namespace {

std::vector<const Property*> family_properties(const char* family) {
  std::vector<const Property*> out;
  for (const Property& p : all_properties()) {
    if (p.family == family) out.push_back(&p);
  }
  return out;
}

class UtilProperty : public ::testing::TestWithParam<const Property*> {};

TEST_P(UtilProperty, Holds) {
  util::pbt::Config cfg;
  cfg.iterations = 0;  // the property's bounded default budget
  util::pbt::CheckResult result = run_property(*GetParam(), cfg);
  EXPECT_TRUE(result.ok) << result.report;
}

std::string test_name(const ::testing::TestParamInfo<const Property*>& info) {
  std::string name = info.param->name;
  for (char& c : name) {
    if (c == '.') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Registry, UtilProperty,
                         ::testing::ValuesIn(family_properties("util")),
                         test_name);

TEST(UtilFamily, FlatMapDifferentialIsRegistered) {
  bool found = false;
  for (const Property* p : family_properties("util")) {
    if (std::string(p->name) == "util.flat_map_vs_std") found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace netcong::check
