#pragma once

// Reverse-DNS name synthesis and parsing for interdomain interfaces,
// modeled on Level3-style PTR records like
// "COX-COMMUNI.edge5.Dallas3.Level3.net". The paper (Section 4.3) uses these
// names to group 39 inferred Cox interdomain links into a handful of routers
// carrying parallel links; core/link_diversity reimplements that analysis.

#include <optional>
#include <string>

namespace netcong::topo {

struct DnsNameParts {
  std::string peer_tag;     // "COX-COMMUNI"
  std::string router_name;  // "edge5"
  std::string city_tag;     // "Dallas3"
  std::string domain;       // "Level3.net"
};

// Builds "PEER-TAG.router.CityN.Owner.net" from components.
std::string make_interdomain_dns_name(const std::string& peer_org_name,
                                      const std::string& router_name,
                                      const std::string& city_name,
                                      int pop_index,
                                      const std::string& owner_domain);

// Derives the conventional peer tag from an organization name: uppercase,
// non-alphanumerics mapped to '-', truncated to 10 chars ("Cox Communications"
// -> "COX-COMMUNI" uses 11; we keep the historical 11-char style).
std::string peer_tag_from_org(const std::string& org_name);

// Parses a name produced by make_interdomain_dns_name. Returns nullopt for
// names that do not follow the convention (including empty names).
std::optional<DnsNameParts> parse_interdomain_dns_name(const std::string& name);

}  // namespace netcong::topo
