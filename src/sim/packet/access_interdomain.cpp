#include "sim/packet/access_interdomain.h"

#include <algorithm>

#include "stats/descriptive.h"

namespace netcong::sim::packet {

AccessInterdomain::AccessInterdomain(Params params) : params_(params) {
  // Delivery off the access queue always terminates at the client.
  access_ = std::make_unique<DropTailQueue>(
      events_, params_.access_mbps, params_.access_buffer_packets,
      [this](const Packet& p) {
        flows_[static_cast<std::size_t>(p.flow)]->on_packet_delivered(p);
      });
  // Delivery off the interdomain queue either chains into the access queue
  // (server-to-client flows) or exits toward some other access network
  // (cross flows). A full access queue drops the packet silently, exactly
  // like a single-hop droptail.
  interdomain_ = std::make_unique<DropTailQueue>(
      events_, params_.interdomain_mbps, params_.interdomain_buffer_packets,
      [this](const Packet& p) {
        auto idx = static_cast<std::size_t>(p.flow);
        if (paths_[idx] == FlowPath::kServerToClient) {
          access_->enqueue(p);
        } else {
          flows_[idx]->on_packet_delivered(p);
        }
      });
}

int AccessInterdomain::add_flow(const FlowSpec& spec, FlowPath path) {
  int id = static_cast<int>(flows_.size());
  TcpFlow::Params fp;
  fp.mss_bytes = spec.mss_bytes;
  fp.base_rtt_s = spec.base_rtt_s;
  fp.cc = spec.cc;
  fp.max_cwnd = spec.max_cwnd;
  fp.max_trace_samples = spec.max_trace_samples;
  DropTailQueue* entry =
      path == FlowPath::kLocalAccess ? access_.get() : interdomain_.get();
  flows_.push_back(std::make_unique<TcpFlow>(
      id, events_, fp, [entry](const Packet& p) { return entry->enqueue(p); }));
  specs_.push_back(spec);
  paths_.push_back(path);
  flows_.back()->start(spec.start_time_s);
  if (spec.stop_time_s < params_.duration_s) {
    TcpFlow* flow = flows_.back().get();
    events_.schedule(spec.stop_time_s, [flow] { flow->stop(); });
  }
  return id;
}

AiResult AccessInterdomain::run() {
  events_.run(params_.duration_s);
  AiResult out;
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    FlowResult fr;
    fr.stats = flows_[i]->stats();
    const FlowSpec& spec = specs_[i];
    double start = spec.start_time_s;
    double stop = std::min(spec.stop_time_s, params_.duration_s);
    fr.goodput_mbps = goodput_over_mbps(fr.stats, spec.mss_bytes, start, stop);
    if (!fr.stats.rtt_samples_ms.empty()) {
      fr.mean_rtt_ms = stats::mean(fr.stats.rtt_samples_ms);
      fr.min_rtt_ms = stats::min(fr.stats.rtt_samples_ms);
      fr.max_rtt_ms = stats::max(fr.stats.rtt_samples_ms);
    }
    out.flows.push_back(std::move(fr));
  }
  out.interdomain_drops = interdomain_->drops();
  out.interdomain_delivered = interdomain_->delivered();
  out.access_drops = access_->drops();
  out.access_delivered = access_->delivered();
  return out;
}

}  // namespace netcong::sim::packet
