#include "measure/traceroute.h"

#include "obs/metrics.h"

namespace netcong::measure {

namespace {
// Incremented from whatever worker thread simulates the trace — the
// registry's per-thread slabs make this lock-free and race-free; the bulk
// inc() calls below cost a handful of relaxed atomic ops per traceroute.
struct TracerouteMetrics {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  obs::Counter runs = reg.counter("traceroute.runs");
  obs::Counter unreachable = reg.counter("traceroute.unreachable");
  obs::Counter hops = reg.counter("traceroute.hops");
  obs::Counter stars = reg.counter("traceroute.stars");
  obs::Counter reached_dst = reg.counter("traceroute.reached_dst");
};
const TracerouteMetrics& traceroute_metrics() {
  static const TracerouteMetrics m;
  return m;
}
}  // namespace

TracerouteRecord run_traceroute(const topo::Topology& topo,
                                const route::Forwarder& fwd,
                                std::uint32_t src_host, topo::IpAddr dst,
                                double utc_time_hours,
                                const TracerouteOptions& options,
                                util::Rng& rng,
                                const route::PathCache* cache) {
  TracerouteRecord rec;
  rec.src_host = src_host;
  rec.dst = dst;
  rec.utc_time_hours = utc_time_hours;

  route::FlowKey key;
  key.src = topo.host(src_host).addr;
  key.dst = dst;
  key.proto = 17;  // UDP probes
  if (options.paris) {
    // Paris traceroute fixes the header fields that feed ECMP hashes.
    key.src_port = 33434;
    key.dst_port = 33435;
  } else {
    // Classic traceroute varies the destination port per probe; we model
    // this as a per-traceroute random key, i.e. consecutive traceroutes may
    // take different ECMP branches than the measured flow.
    key.src_port = static_cast<std::uint16_t>(rng.uniform_int(33434, 33534));
    key.dst_port = static_cast<std::uint16_t>(rng.uniform_int(33434, 33534));
  }

  route::RouterPath path = cache ? cache->path(src_host, dst, key)
                                 : fwd.path(src_host, dst, key);
  rec.truth = path;
  const TracerouteMetrics& metrics = traceroute_metrics();
  metrics.runs.inc();
  if (!path.valid) {
    metrics.unreachable.inc();
    return rec;
  }

  double cum_delay = topo.host(src_host).access_delay_ms;
  double cum_queue = 0.0;
  int ttl = 0;
  for (std::size_t i = 0; i < path.hops.size(); ++i) {
    const route::RouterHop& hop = path.hops[i];
    if (i > 0) {
      cum_delay += topo.link(hop.in_link).prop_delay_ms;
      if (options.traffic) {
        double q = options.traffic
                       ->condition(hop.in_link, utc_time_hours, rng)
                       .queue_delay_ms;
        cum_delay += q;
        cum_queue += q;
      }
    }
    TraceHop th;
    th.ttl = ++ttl;
    if (!rng.chance(options.star_prob)) {
      th.responded = true;
      // Routers reply from the inbound interface; the first hop (no inbound
      // link) replies from its management address.
      if (hop.in_iface.valid()) {
        const topo::Interface& inif = topo.iface(hop.in_iface);
        th.addr = inif.addr;
        th.dns_name = inif.dns_name;
      } else {
        th.addr = topo.router(hop.router).mgmt_addr;
      }
      th.rtt_ms = 2.0 * cum_delay * rng.uniform(1.0, 1.08);
    }
    rec.hops.push_back(th);
  }

  // The destination itself (client hosts often sit behind NAT/firewalls).
  bool dst_is_host = topo.host_by_addr(dst).has_value();
  bool silent = dst_is_host && rng.chance(options.client_silent_prob);
  if (!silent) {
    TraceHop th;
    th.ttl = ++ttl;
    th.responded = true;
    th.addr = dst;
    th.rtt_ms =
        (2.0 * path.one_way_delay_ms + cum_queue) * rng.uniform(1.0, 1.08);
    rec.hops.push_back(th);
    rec.reached_dst = true;
  }
  if (metrics.reg.enabled()) {
    std::uint64_t star_hops = 0;
    for (const TraceHop& th : rec.hops) {
      if (!th.responded) ++star_hops;
    }
    metrics.hops.inc(rec.hops.size());
    metrics.stars.inc(star_hops);
    if (rec.reached_dst) metrics.reached_dst.inc();
  }
  return rec;
}

double rtt_probe(const topo::Topology& topo, const route::Forwarder& fwd,
                 const sim::TrafficModel& traffic, std::uint32_t src_host,
                 topo::IpAddr target, double utc_time_hours, util::Rng& rng) {
  route::FlowKey key;
  key.src = topo.host(src_host).addr;
  key.dst = target;
  key.proto = 1;  // ICMP-style
  key.src_port = 0;
  key.dst_port = 0;
  route::RouterPath path = fwd.path(src_host, target, key);
  if (!path.valid) return -1.0;
  double one_way = path.one_way_delay_ms;
  double queue = 0.0;
  for (topo::LinkId l : path.links) {
    queue += traffic.condition(l, utc_time_hours, rng).queue_delay_ms;
  }
  // Propagation is symmetric; the standing queue is crossed in at least one
  // direction (droptail queues are directional, but the reply of a probe to
  // the far side of a congested link crosses it in the loaded direction).
  return 2.0 * one_way + queue * rng.uniform(1.0, 1.3);
}

}  // namespace netcong::measure
