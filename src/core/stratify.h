#pragma once

// Per-IP-link stratification of throughput tests — the paper's central
// recommendation (Section 7): "analysis of throughput measurements should
// not aggregate across router-level links". Given matched tests, split the
// AS-level aggregate by the IP-level interdomain link each test actually
// crossed, analyze each stratum's diurnal behaviour separately, and report
// whether the strata behave alike (Assumption 3 check, Section 4.3).

#include <map>
#include <vector>

#include "core/diurnal.h"
#include "core/link_diversity.h"
#include "infer/mapit.h"
#include "measure/matching.h"

namespace netcong::core {

struct LinkStratum {
  topo::IpAddr near_addr;
  topo::IpAddr far_addr;
  stats::HourlySeries throughput;
  std::size_t tests = 0;
  stats::DiurnalComparison comparison;
};

struct StratifiedAnalysis {
  topo::Asn server_asn = 0;
  topo::Asn client_asn = 0;
  std::vector<LinkStratum> strata;  // one per IP-level link, by tests desc
  // Aggregate (what naive AS-level analysis sees).
  stats::HourlySeries aggregate;
  stats::DiurnalComparison aggregate_comparison;

  // Do the strata agree? The spread between the largest and smallest
  // per-stratum relative drop (only strata with >= min_samples in both
  // windows participate).
  double drop_spread(std::size_t min_samples = 10) const;
};

// Stratifies matched tests between one server org and one client AS by the
// crossing link. Uses the client's local hour.
StratifiedAnalysis stratify_by_link(
    const std::vector<measure::MatchedTest>& matched, topo::Asn server_asn,
    topo::Asn client_asn, const gen::World& world,
    const infer::MapItResult& mapit, const infer::Ip2As& ip2as,
    const infer::OrgMap& orgs);

}  // namespace netcong::core
