#include "core/pathmodel_eval.h"

#include <algorithm>
#include <cmath>

#include "core/threshold.h"

namespace netcong::core {

namespace sp = sim::packet;

const char* pathmodel_scenario_name(PathModelScenario s) {
  switch (s) {
    case PathModelScenario::kBandwidth:
      return "bandwidth";
    case PathModelScenario::kSender:
      return "sender";
    case PathModelScenario::kInterdomain:
      return "interdomain";
    case PathModelScenario::kAccess:
      return "access";
    case PathModelScenario::kAll:
      return "all";
  }
  return "?";
}

bool parse_pathmodel_scenario(const std::string& name,
                              PathModelScenario* out) {
  for (PathModelScenario s :
       {PathModelScenario::kBandwidth, PathModelScenario::kSender,
        PathModelScenario::kInterdomain, PathModelScenario::kAccess,
        PathModelScenario::kAll}) {
    if (name == pathmodel_scenario_name(s)) {
      *out = s;
      return true;
    }
  }
  return false;
}

namespace {

constexpr double kTestStartS = 5.0;
constexpr double kTestStopS = 20.0;
constexpr double kDurationS = 25.0;

double bdp_packets_of(double mbps, double rtt_s, int mss) {
  return mbps * 1e6 / 8.0 / mss * rtt_s;
}

PathModelCase run_one(sp::CcAlgo cc, PathModelScenario scenario, int i,
                      const infer::PathModelConfig& config) {
  PathModelCase c;
  c.scenario = scenario;
  c.cc = cc;
  // Per-instance jitter, fully determined by the index.
  c.access_mbps = 20.0 + 10.0 * (i % 4);
  c.rtt_ms = 20.0 + 10.0 * (i % 5);
  double rtt_s = c.rtt_ms / 1000.0;
  double bdp = bdp_packets_of(c.access_mbps, rtt_s, 1500);

  sp::AccessInterdomain::Params p;
  p.duration_s = kDurationS;
  p.access_mbps = c.access_mbps;
  p.interdomain_mbps = 10.0 * c.access_mbps;  // uncontended by default
  p.interdomain_buffer_packets = 4000;
  // Shallow enough that a solo loss-based sawtooth drains its own queue.
  p.access_buffer_packets =
      std::max(30, static_cast<int>(0.8 * bdp));

  sp::FlowSpec test;
  test.base_rtt_s = rtt_s;
  test.cc = cc;
  test.start_time_s = kTestStartS;
  test.stop_time_s = kTestStopS;

  sp::FlowPath test_path = sp::FlowPath::kServerToClient;
  int competing = 0;

  switch (scenario) {
    case PathModelScenario::kBandwidth:
      c.truth_label = infer::FlowLabel::kBandwidthLimited;
      break;
    case PathModelScenario::kSender:
      c.truth_label = infer::FlowLabel::kSenderLimited;
      test.max_cwnd = std::max(4.0, (0.25 + 0.05 * (i % 3)) * bdp);
      break;
    case PathModelScenario::kInterdomain: {
      c.truth_label = infer::FlowLabel::kCongestionLimited;
      c.truth_site = infer::BottleneckSite::kInterdomain;
      // The constrained hop is interdomain; the access leg is provisioned
      // comfortably above it.
      double inter = 1.5 * c.access_mbps;
      p.interdomain_mbps = inter;
      p.interdomain_buffer_packets = std::max(
          60, static_cast<int>(1.6 * bdp_packets_of(inter, rtt_s, 1500)));
      p.access_mbps = 2.5 * c.access_mbps;
      p.access_buffer_packets = 800;
      competing = 3 + (i % 3);
      break;
    }
    case PathModelScenario::kAccess:
      c.truth_label = infer::FlowLabel::kCongestionLimited;
      c.truth_site = infer::BottleneckSite::kAccess;
      // Deep home-router buffer: the contended queue stands.
      p.access_buffer_packets = std::max(60, static_cast<int>(2.2 * bdp));
      competing = 2 + (i % 2);
      break;
    case PathModelScenario::kAll:
      break;  // unreachable; kAll expands in run_pathmodel_suite
  }
  c.competing_flows = competing;

  sp::AccessInterdomain sim(p);
  if (scenario == PathModelScenario::kInterdomain) {
    for (int k = 0; k < competing; ++k) {
      sp::FlowSpec bg;
      bg.base_rtt_s = 0.04 + 0.01 * (k % 3);
      bg.cc = sp::CcAlgo::kNewReno;
      sim.add_flow(bg, sp::FlowPath::kCrossInterdomain);
    }
  } else if (scenario == PathModelScenario::kAccess) {
    for (int k = 0; k < competing; ++k) {
      sp::FlowSpec bg;
      bg.base_rtt_s = 0.02 + 0.01 * (k % 2);
      bg.cc = sp::CcAlgo::kNewReno;
      // Subscriber-induced: starts alongside the test, not before it.
      bg.start_time_s = kTestStartS + 0.2 + 0.1 * k;
      sim.add_flow(bg, sp::FlowPath::kLocalAccess);
    }
  }
  int id = sim.add_flow(test, test_path);
  sp::AiResult res = sim.run();

  const sp::FlowResult& fr = res.flows[static_cast<std::size_t>(id)];
  c.goodput_mbps = fr.goodput_mbps;
  c.baseline_drop = std::max(0.0, 1.0 - fr.goodput_mbps / c.access_mbps);

  infer::FlowTrace trace;
  trace.start_s = kTestStartS;
  trace.stop_s = kTestStopS;
  trace.mss_bytes = 1500;
  trace.rtt_samples_ms = fr.stats.rtt_samples_ms;
  trace.rtt_sample_times_s = fr.stats.rtt_sample_times_s;
  trace.ack_trace = fr.stats.ack_trace;
  c.result = infer::classify_flow(trace, config);
  return c;
}

}  // namespace

std::vector<PathModelCase> run_pathmodel_suite(
    sp::CcAlgo cc, PathModelScenario which, int per_class,
    const infer::PathModelConfig& config) {
  std::vector<PathModelScenario> classes;
  if (which == PathModelScenario::kAll) {
    classes = {PathModelScenario::kBandwidth, PathModelScenario::kSender,
               PathModelScenario::kInterdomain, PathModelScenario::kAccess};
  } else {
    classes = {which};
  }
  std::vector<PathModelCase> cases;
  for (PathModelScenario s : classes) {
    for (int i = 0; i < per_class; ++i) {
      cases.push_back(run_one(cc, s, i, config));
    }
  }
  return cases;
}

PathModelScore score_pathmodel(const std::vector<PathModelCase>& cases) {
  PathModelScore score;
  int correct_labels = 0;
  for (const PathModelCase& c : cases) {
    bool truth = c.truth_label == infer::FlowLabel::kCongestionLimited;
    bool pred = c.result.valid &&
                c.result.label == infer::FlowLabel::kCongestionLimited;
    if (truth && pred) ++score.congested.tp;
    if (!truth && pred) ++score.congested.fp;
    if (truth && !pred) ++score.congested.fn;
    if (!truth && !pred) ++score.congested.tn;
    if (c.result.valid && c.result.label == c.truth_label) ++correct_labels;
    if (truth) {
      ++score.localization_total;
      if (pred && c.result.site == c.truth_site) {
        ++score.localization_correct;
      }
    }
  }
  BinaryScore& b = score.congested;
  b.precision = b.tp + b.fp == 0
                    ? 0.0
                    : static_cast<double>(b.tp) / (b.tp + b.fp);
  b.recall =
      b.tp + b.fn == 0 ? 0.0 : static_cast<double>(b.tp) / (b.tp + b.fn);
  b.f1 = b.precision + b.recall == 0.0
             ? 0.0
             : 2.0 * b.precision * b.recall / (b.precision + b.recall);
  if (!cases.empty()) {
    score.label_accuracy =
        static_cast<double>(correct_labels) / static_cast<double>(cases.size());
  }
  if (score.localization_total > 0) {
    score.localization_accuracy =
        static_cast<double>(score.localization_correct) /
        score.localization_total;
  }

  // §6.2-style baseline: "congested iff relative drop > threshold", with
  // the threshold chosen *after the fact* to maximize F1 — the strongest
  // version of the argument the paper warns against.
  std::vector<LabeledDrop> drops;
  int positives = 0;
  for (const PathModelCase& c : cases) {
    LabeledDrop d;
    d.relative_drop = c.baseline_drop;
    d.truth_congested = c.truth_label == infer::FlowLabel::kCongestionLimited;
    d.samples = 1;
    if (d.truth_congested) ++positives;
    drops.push_back(d);
  }
  int negatives = static_cast<int>(drops.size()) - positives;
  for (const RocPoint& pt : roc_sweep(drops, 100)) {
    double tp = pt.tpr * positives;
    double fp = pt.fpr * negatives;
    double fn = positives - tp;
    double prec = tp + fp == 0.0 ? 0.0 : tp / (tp + fp);
    double rec = positives == 0 ? 0.0 : tp / (tp + fn);
    double f1 =
        prec + rec == 0.0 ? 0.0 : 2.0 * prec * rec / (prec + rec);
    if (f1 > score.baseline_best_f1) {
      score.baseline_best_f1 = f1;
      score.baseline_best_threshold = pt.threshold;
    }
  }
  return score;
}

}  // namespace netcong::core
