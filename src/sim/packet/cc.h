#pragma once

// Congestion-control strategies for the packet-level TCP sender. The
// TcpFlow owns reliability (sequencing, dupack/RTO loss detection, go-back-N
// recovery, RTT sampling) and delegates *how fast to send* to a
// CongestionControl: window growth on acks, multiplicative decrease on loss
// signals, and — for model-based senders — a pacing rate the flow obeys
// between window checks.
//
// Three deterministic implementations:
//
//   NewReno — slow start + AIMD congestion avoidance, extracted bit-for-bit
//             from the historical inline TcpFlow logic (the cc_test
//             fingerprint pin proves goodput/ack traces unchanged);
//   Cubic   — cubic window growth around the last loss point W_max with
//             fast convergence, beta = 0.7, C = 0.4;
//   BBR     — a model-based sender: STARTUP/DRAIN/PROBE_BW phases driven by
//             a windowed-max delivery-rate estimate (BtlBw) and windowed-min
//             RTT (RTprop), pacing-gain cycling in PROBE_BW. Loss is
//             (mostly) not a control signal, matching BBRv1.
//
// Everything is a pure function of the event sequence — no wall clocks, no
// RNG — so simulations stay bit-reproducible across runs and platforms.

#include <cstdint>
#include <deque>
#include <memory>
#include <string_view>

namespace netcong::sim::packet {

enum class CcAlgo { kNewReno, kCubic, kBbr };

const char* cc_algo_name(CcAlgo algo);
// Accepts "reno"/"newreno", "cubic", "bbr" (case-sensitive); returns false
// on anything else.
bool parse_cc_algo(std::string_view name, CcAlgo* out);

// Per-ack context handed to the strategy. Rate-sample fields implement the
// BBR delivery-rate estimator: the delivered counter snapshot taken when
// the newly acked packet was sent.
struct CcAck {
  double now_s = 0.0;
  double rtt_s = -1.0;  // < 0: no valid RTT sample on this ack (Karn)
  std::int64_t delivered = 0;  // cumulative in-order packets acked
  double in_flight = 0.0;      // packets outstanding after this ack
  // Delivery-rate sample: valid iff delivered_at_send >= 0.
  std::int64_t delivered_at_send = -1;
  double sent_time_s = 0.0;
};

class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  virtual CcAlgo algo() const = 0;
  // Congestion window in packets; the sender keeps in-flight below this.
  virtual double cwnd() const = 0;
  // Packets/second the sender should pace at; <= 0 means unpaced (pure
  // window-limited bursts, the classic loss-based behavior).
  virtual double pacing_rate_pps() const { return 0.0; }
  // Current phase, for diagnostics ("-" for loss-based algorithms).
  virtual const char* phase() const { return "-"; }

  virtual void on_ack(const CcAck& ack) = 0;
  // Triple-duplicate-ack loss signal (fast retransmit entry).
  virtual void on_dupack_loss(double now_s) = 0;
  // Retransmission timeout.
  virtual void on_timeout(double now_s) = 0;
};

// `max_cwnd` caps the window (the sender/application limit used by the
// sender-limited pathmodel scenarios).
std::unique_ptr<CongestionControl> make_congestion_control(
    CcAlgo algo, double initial_cwnd, double max_cwnd);

// --- implementations (exposed for tests) ----------------------------------

class NewRenoCc final : public CongestionControl {
 public:
  NewRenoCc(double initial_cwnd, double max_cwnd)
      : cwnd_(initial_cwnd), max_cwnd_(max_cwnd) {}

  CcAlgo algo() const override { return CcAlgo::kNewReno; }
  double cwnd() const override { return cwnd_; }
  void on_ack(const CcAck& ack) override;
  void on_dupack_loss(double now_s) override;
  void on_timeout(double now_s) override;

 private:
  double cwnd_;
  double ssthresh_ = 1e9;
  double max_cwnd_;
};

class CubicCc final : public CongestionControl {
 public:
  CubicCc(double initial_cwnd, double max_cwnd)
      : cwnd_(initial_cwnd), max_cwnd_(max_cwnd) {}

  CcAlgo algo() const override { return CcAlgo::kCubic; }
  double cwnd() const override { return cwnd_; }
  void on_ack(const CcAck& ack) override;
  void on_dupack_loss(double now_s) override;
  void on_timeout(double now_s) override;

  double w_max() const { return w_max_; }

 private:
  // Shared multiplicative-decrease path: updates W_max (with fast
  // convergence), cuts ssthresh, sets the window to `new_cwnd`, and resets
  // the cubic epoch.
  void on_loss(double new_cwnd);

  double cwnd_;
  double ssthresh_ = 1e9;
  double max_cwnd_;
  double w_max_ = 0.0;        // window at the last loss event
  double epoch_start_s_ = -1.0;  // < 0: cubic epoch not yet started
  double k_ = 0.0;            // time to reach w_max_ from the epoch origin
  double origin_ = 0.0;
};

class BbrCc final : public CongestionControl {
 public:
  BbrCc(double initial_cwnd, double max_cwnd)
      : initial_cwnd_(initial_cwnd), max_cwnd_(max_cwnd) {}

  CcAlgo algo() const override { return CcAlgo::kBbr; }
  double cwnd() const override;
  double pacing_rate_pps() const override;
  const char* phase() const override;
  void on_ack(const CcAck& ack) override;
  // BBRv1 mostly ignores loss, but loss during STARTUP is taken as the
  // pipe-full signal (a common BBRv1 deployment variant). Without it the
  // 2.885× STARTUP overshoot on shallow buffers causes burst losses that a
  // SACK-less go-back-N sender cannot recover from.
  void on_dupack_loss(double now_s) override;
  // RTOs keep the bandwidth/RTT model (as Linux BBR does): the go-back-N
  // resend paces off the existing BtlBw estimate instead of re-running the
  // STARTUP overshoot.
  void on_timeout(double now_s) override;

  double btlbw_pps() const;   // 0 until the first delivery-rate sample
  double rtprop_s() const;    // 0 until the first RTT sample
  double bdp_packets() const { return btlbw_pps() * rtprop_s(); }

 private:
  enum class Phase { kStartup, kDrain, kProbeBw };

  void advance_round(const CcAck& ack);
  void check_full_pipe();

  double initial_cwnd_;
  double max_cwnd_;
  Phase phase_ = Phase::kStartup;

  // Windowed-max BtlBw filter over delivery-rate samples, keyed by round.
  std::deque<std::pair<std::int64_t, double>> btlbw_window_;
  // Windowed-min RTprop filter over (time, rtt) samples.
  std::deque<std::pair<double, double>> rtprop_window_;

  std::int64_t round_count_ = 0;
  std::int64_t round_end_delivered_ = 0;

  double full_bw_ = 0.0;  // STARTUP plateau detector
  int full_bw_rounds_ = 0;
  std::int64_t last_full_pipe_round_ = -1;

  std::size_t cycle_index_ = 0;  // PROBE_BW gain-cycle position
  double cycle_start_s_ = 0.0;
};

}  // namespace netcong::sim::packet
