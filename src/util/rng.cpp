#include "util/rng.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace netcong::util {

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 14695981039346656037ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

Rng Rng::fork(std::uint64_t stream) const {
  // Weyl step on the stream id, then a splitmix finalizer; the added
  // constant keeps stream 0 distinct from the parent seed itself.
  std::uint64_t z =
      seed_ ^ (0x6a09e667f3bcc909ull + stream * 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return Rng(z ^ (z >> 31));
}

Rng Rng::fork(std::string_view label) const {
  // splitmix-style finalizer over (seed, label hash) gives well-spread seeds.
  std::uint64_t z = seed_ + 0x9e3779b97f4a7c15ull + fnv1a(label);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z = z ^ (z >> 31);
  return Rng(z);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  std::uniform_int_distribution<std::int64_t> d(lo, hi);
  return d(engine_);
}

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> d(lo, hi);
  return d(engine_);
}

bool Rng::chance(double p) {
  p = std::clamp(p, 0.0, 1.0);
  return uniform(0.0, 1.0) < p;
}

double Rng::normal(double mean, double stddev) {
  std::normal_distribution<double> d(mean, stddev);
  return d(engine_);
}

double Rng::lognormal(double mu, double sigma) {
  std::lognormal_distribution<double> d(mu, sigma);
  return d(engine_);
}

double Rng::exponential(double rate) {
  assert(rate > 0.0);
  std::exponential_distribution<double> d(rate);
  return d(engine_);
}

double Rng::pareto(double xm, double alpha) {
  assert(xm > 0.0 && alpha > 0.0);
  // Inverse-CDF sampling; guard against u == 0.
  double u = 1.0 - uniform(0.0, 1.0);
  if (u <= 0.0) u = 1e-12;
  return xm / std::pow(u, 1.0 / alpha);
}

int Rng::poisson(double mean) {
  assert(mean >= 0.0);
  if (mean == 0.0) return 0;
  std::poisson_distribution<int> d(mean);
  return d(engine_);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  assert(total > 0.0);
  double x = uniform(0.0, total);
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (x < acc && weights[i] > 0.0) return i;
  }
  // Floating-point edge: return the last positive-weight entry.
  for (std::size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return i - 1;
  }
  return 0;
}

}  // namespace netcong::util
