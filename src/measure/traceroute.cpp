#include "measure/traceroute.h"

#include "obs/metrics.h"

namespace netcong::measure {

namespace {
// Incremented from whatever worker thread simulates the trace — the
// registry's per-thread slabs make this lock-free and race-free; the bulk
// inc() calls below cost a handful of relaxed atomic ops per traceroute.
struct TracerouteMetrics {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  obs::Counter runs = reg.counter("traceroute.runs");
  obs::Counter unreachable = reg.counter("traceroute.unreachable");
  obs::Counter hops = reg.counter("traceroute.hops");
  obs::Counter stars = reg.counter("traceroute.stars");
  obs::Counter reached_dst = reg.counter("traceroute.reached_dst");
};
const TracerouteMetrics& traceroute_metrics() {
  static const TracerouteMetrics m;
  return m;
}

// Sink producing the classic AoS record (vector of TraceHop with the PTR
// string resolved eagerly).
struct RecordSink {
  const topo::Topology& topo;
  TracerouteRecord& rec;
  void hop(int ttl, bool responded, topo::IpAddr addr, double rtt_ms,
           topo::InterfaceId iface) {
    TraceHop th;
    th.ttl = ttl;
    th.responded = responded;
    if (responded) {
      th.addr = addr;
      th.rtt_ms = rtt_ms;
      if (iface.valid()) th.dns_name = topo.iface(iface).dns_name;
    }
    rec.hops.push_back(std::move(th));
  }
};
}  // namespace

void note_traceroute_metrics(std::size_t hops, std::size_t stars,
                             bool reached_dst, bool unreachable) {
  const TracerouteMetrics& metrics = traceroute_metrics();
  metrics.runs.inc();
  if (unreachable) {
    metrics.unreachable.inc();
    return;
  }
  if (metrics.reg.enabled()) {
    metrics.hops.inc(hops);
    metrics.stars.inc(stars);
    if (reached_dst) metrics.reached_dst.inc();
  }
}

route::FlowKey trace_flow_key(const topo::Topology& topo,
                              std::uint32_t src_host, topo::IpAddr dst,
                              const TracerouteOptions& options,
                              util::Rng& rng) {
  route::FlowKey key;
  key.src = topo.host(src_host).addr;
  key.dst = dst;
  key.proto = 17;  // UDP probes
  if (options.paris) {
    // Paris traceroute fixes the header fields that feed ECMP hashes.
    key.src_port = 33434;
    key.dst_port = 33435;
  } else {
    // Classic traceroute varies the destination port per probe; we model
    // this as a per-traceroute random key, i.e. consecutive traceroutes may
    // take different ECMP branches than the measured flow.
    key.src_port = static_cast<std::uint16_t>(rng.uniform_int(33434, 33534));
    key.dst_port = static_cast<std::uint16_t>(rng.uniform_int(33434, 33534));
  }
  return key;
}

TracerouteRecord run_traceroute(const topo::Topology& topo,
                                const route::Forwarder& fwd,
                                std::uint32_t src_host, topo::IpAddr dst,
                                double utc_time_hours,
                                const TracerouteOptions& options,
                                util::Rng& rng,
                                const route::PathCache* cache) {
  TracerouteRecord rec;
  rec.src_host = src_host;
  rec.dst = dst;
  rec.utc_time_hours = utc_time_hours;

  route::FlowKey key = trace_flow_key(topo, src_host, dst, options, rng);
  const sim::AdversaryScenario* adv =
      options.adversary != nullptr && options.adversary->enabled()
          ? options.adversary
          : nullptr;
  bool post_view =
      adv != nullptr && adv->rewrite_trace_key(src_host, dst,
                                               utc_time_hours, key);
  if (post_view) {
    rec.truth = *adv->post_cache().path_shared(src_host, dst, key);
  } else if (cache) {
    rec.truth = *cache->path_shared(src_host, dst, key);
  } else {
    rec.truth = fwd.path(src_host, dst, key);
  }
  if (!rec.truth.valid) {
    note_traceroute_metrics(0, 0, false, true);
    return rec;
  }

  RecordSink sink{topo, rec};
  rec.reached_dst = simulate_trace(topo, rec.truth, src_host, dst,
                                   utc_time_hours, options, rng, sink);
  std::size_t star_hops = 0;
  for (const TraceHop& th : rec.hops) {
    if (!th.responded) ++star_hops;
  }
  note_traceroute_metrics(rec.hops.size(), star_hops, rec.reached_dst, false);
  return rec;
}

double rtt_probe(const topo::Topology& topo, const route::Forwarder& fwd,
                 const sim::TrafficModel& traffic, std::uint32_t src_host,
                 topo::IpAddr target, double utc_time_hours, util::Rng& rng) {
  route::FlowKey key;
  key.src = topo.host(src_host).addr;
  key.dst = target;
  key.proto = 1;  // ICMP-style
  key.src_port = 0;
  key.dst_port = 0;
  route::RouterPath path = fwd.path(src_host, target, key);
  if (!path.valid) return -1.0;
  double one_way = path.one_way_delay_ms;
  double queue = 0.0;
  for (topo::LinkId l : path.links) {
    queue += traffic.condition(l, utc_time_hours, rng).queue_delay_ms;
  }
  // Propagation is symmetric; the standing queue is crossed in at least one
  // direction (droptail queues are directional, but the reply of a probe to
  // the far side of a congested link crosses it in the loaded direction).
  return 2.0 * one_way + queue * rng.uniform(1.0, 1.3);
}

}  // namespace netcong::measure
