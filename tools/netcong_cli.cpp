// netcong command-line tool: generate worlds, run measurement campaigns,
// export M-Lab-style datasets, and run per-VP coverage analyses without
// writing any C++.
//
// Run `netcong_cli` with no arguments for the subcommand list — the usage
// text and the dispatch both come from the kSubcommands registry below, so
// a new subcommand is one table entry plus its cmd_* function.

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/anomaly_eval.h"
#include "core/coverage.h"
#include "core/diurnal.h"
#include "core/pathmodel_eval.h"
#include "measure/corpus.h"
#include "gen/workload.h"
#include "gen/world.h"
#include "infer/alias.h"
#include "infer/bdrmap.h"
#include "io/export.h"
#include "measure/adversary.h"
#include "measure/alexa.h"
#include "measure/ark.h"
#include "measure/fingerprint.h"
#include "measure/matching.h"
#include "measure/ndt.h"
#include "measure/platform.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "route/bgp.h"
#include "route/forwarding.h"
#include "route/path_cache.h"
#include "serve/event.h"
#include "serve/net.h"
#include "serve/service.h"
#include "serve/wal.h"
#include "sim/faults.h"
#include "sim/throughput.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using namespace netcong;

struct Args {
  std::string command;
  std::map<std::string, std::string> options;
  std::vector<std::string> stray;  // positionals that are not option values

  std::string get(const std::string& key, const std::string& def) const {
    auto it = options.find(key);
    return it == options.end() ? def : it->second;
  }
  int get_int(const std::string& key, int def) const {
    auto it = options.find(key);
    return it == options.end() ? def : std::atoi(it->second.c_str());
  }
  double get_double(const std::string& key, double def) const {
    auto it = options.find(key);
    return it == options.end() ? def : std::atof(it->second.c_str());
  }
  bool has(const std::string& key) const { return options.count(key) > 0; }
};

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) != 0) {
      args.stray.push_back(a);
      continue;
    }
    std::string key = a.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args.options[key] = argv[++i];
    } else {
      args.options[key] = "1";
    }
  }
  return args;
}

gen::GeneratorConfig config_from(const Args& args) {
  std::string scale = args.get("scale", "small");
  gen::GeneratorConfig cfg;
  if (scale == "full") {
    cfg = gen::GeneratorConfig::full();
  } else if (scale == "tiny") {
    cfg = gen::GeneratorConfig::tiny();
  } else {
    cfg = gen::GeneratorConfig::small();
  }
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  return cfg;
}

int cmd_topology(const Args& args) {
  gen::World world = gen::generate_world(config_from(args));
  const topo::Topology& t = *world.topo;
  std::printf("ASes: %zu  routers: %zu  interfaces: %zu\n", t.as_count(),
              t.routers().size(), t.interfaces().size());
  std::printf("links: %zu (%zu interdomain)  hosts: %zu\n", t.links().size(),
              t.interdomain_link_count(), t.hosts().size());
  std::printf("congested links (ground truth): %zu\n",
              world.congested_links.size());
  util::TextTable table({"ISP", "ASNs", "clients", "peers of primary"});
  for (const auto& [name, asns] : world.isp_asns) {
    int peers = 0;
    for (const auto& [nbr, rel] : t.relationships().neighbors(asns[0])) {
      if (rel == topo::RelType::kPeer) ++peers;
    }
    table.add_row({name, std::to_string(asns.size()),
                   std::to_string(world.clients_of(name).size()),
                   std::to_string(peers)});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

int cmd_campaign(const Args& args) {
  gen::World world = gen::generate_world(config_from(args));
  route::BgpRouting bgp(*world.topo);
  route::Forwarder fwd(*world.topo, bgp);
  sim::ThroughputModel model(*world.topo, *world.traffic);
  measure::Platform mlab("M-Lab", *world.topo, world.mlab_servers);

  util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 42)) + 1);
  gen::WorkloadConfig wl;
  wl.days = args.get_int("days", 14);
  wl.mean_tests_per_client = args.get_double("tests-per-client", 8.0);
  auto schedule = gen::crowdsourced_schedule(world, world.clients, wl, rng);
  route::PathCache path_cache(fwd);
  measure::NdtCampaign campaign(world, fwd, model, mlab,
                                measure::CampaignConfig{});
  campaign.set_path_cache(&path_cache);
  auto result = campaign.run(schedule, rng);
  measure::MatchStats stats;
  auto matched = measure::match_tests(result.tests, result.traceroutes,
                                      *world.topo, {}, &stats);
  std::printf("tests: %zu  traceroutes: %zu  matched: %.1f%%\n",
              result.tests.size(), result.traceroutes.size(),
              100.0 * stats.fraction());

  if (args.has("out")) {
    std::string dir = args.get("out", ".");
    util::Status st =
        io::export_campaign(world, result.tests, result.traceroutes, matched,
                            dir, !args.has("no-truth"), &result.quality);
    if (!st.ok()) {
      std::fprintf(stderr, "export: %s\n", st.error().c_str());
      return 1;
    }
    std::printf("wrote datasets to %s/{ndt_tests,traceroute_hops,matches,"
                "interdomain_links,data_quality}.csv\n",
                dir.c_str());
  }
  return 0;
}

int cmd_faults(const Args& args) {
  if (args.has("list")) {
    util::TextTable table({"site", "what it breaks"});
    for (sim::FaultSite site : sim::all_fault_sites()) {
      table.add_row({sim::fault_site_name(site),
                     sim::fault_site_description(site)});
    }
    std::printf("%s", table.render().c_str());
    return 0;
  }

  std::string severity_text = args.get("severity", "0.2");
  auto config = sim::parse_fault_severity(severity_text);
  if (!config) {
    std::fprintf(stderr, "--severity: %s\n", config.error().c_str());
    return 1;
  }
  std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  gen::World world = gen::generate_world(config_from(args));
  route::BgpRouting bgp(*world.topo);
  route::Forwarder fwd(*world.topo, bgp);
  sim::ThroughputModel model(*world.topo, *world.traffic);
  measure::Platform mlab("M-Lab", *world.topo, world.mlab_servers);

  gen::WorkloadConfig wl;
  wl.days = args.get_int("days", 14);
  wl.mean_tests_per_client = args.get_double("tests-per-client", 8.0);
  util::Rng sched_rng(seed + 1);
  auto schedule = gen::crowdsourced_schedule(world, world.clients, wl,
                                             sched_rng);
  route::PathCache path_cache(fwd);

  auto run_once = [&](const sim::FaultInjector* faults) {
    measure::NdtCampaign campaign(world, fwd, model, mlab,
                                  measure::CampaignConfig{});
    campaign.set_path_cache(&path_cache);
    campaign.set_faults(faults);
    util::Rng rng(seed + 2);
    return campaign.run(schedule, rng);
  };

  auto clean = run_once(nullptr);
  sim::FaultInjector injector(*config, seed);
  auto faulted = run_once(&injector);

  measure::MatchStats clean_stats, faulted_stats;
  auto clean_matched = measure::match_tests(
      clean.tests, clean.traceroutes, *world.topo, {}, &clean_stats);
  auto faulted_matched = measure::match_tests(
      faulted.tests, faulted.traceroutes, *world.topo, {}, &faulted_stats);

  std::printf("fault severity %s (seed %llu)\n", severity_text.c_str(),
              static_cast<unsigned long long>(seed));
  util::TextTable quality({"metric", "value"});
  for (const auto& [metric, value] : faulted.quality.rows()) {
    quality.add_row({metric, std::to_string(value)});
  }
  quality.add_row({"consistent", faulted.quality.consistent() ? "yes" : "NO"});
  std::printf("%s", quality.render().c_str());

  util::TextTable cmp({"campaign", "tests", "traceroutes", "matched/eligible",
                       "matched/all"});
  auto row = [&](const char* name, const measure::CampaignResult& r,
                 const measure::MatchStats& s) {
    cmp.add_row({name, std::to_string(r.tests.size()),
                 std::to_string(r.traceroutes.size()),
                 util::format("%.1f%%", 100.0 * s.fraction()),
                 util::format("%.1f%%", 100.0 * s.coverage())});
  };
  row("clean", clean, clean_stats);
  row("faulted", faulted, faulted_stats);
  std::printf("%s", cmp.render().c_str());
  if (!faulted.quality.consistent()) {
    std::fprintf(stderr, "data-quality report is NOT consistent\n");
    return 1;
  }

  if (args.has("out")) {
    std::string dir = args.get("out", ".");
    util::Status st =
        io::export_campaign(world, faulted.tests, faulted.traceroutes,
                            faulted_matched, dir, !args.has("no-truth"),
                            &faulted.quality);
    if (!st.ok()) {
      std::fprintf(stderr, "export: %s\n", st.error().c_str());
      return 1;
    }
    std::printf("wrote faulted datasets to %s (see data_quality.csv)\n",
                dir.c_str());
  }
  return 0;
}

int cmd_coverage(const Args& args) {
  gen::World world = gen::generate_world(config_from(args));
  route::BgpRouting bgp(*world.topo);
  route::Forwarder fwd(*world.topo, bgp);
  infer::Ip2As ip2as(*world.topo);
  infer::OrgMap orgs(*world.topo);
  infer::AliasResolver aliases(*world.topo, 0.88, 42);
  util::Rng rng(9);

  std::string want = args.get("vp", "");
  util::TextTable table({"VP", "bdrmap AS", "M-Lab AS", "Speedtest AS",
                         "Alexa-path AS not via M-Lab"});
  for (std::uint32_t vp : world.ark_vps) {
    const topo::Host& host = world.topo->host(vp);
    if (!want.empty() && host.label != want) continue;
    measure::ArkCampaignOptions opt;
    auto full = measure::ark_full_prefix_campaign(world, fwd, vp, opt, rng);
    auto bdr = infer::run_bdrmap(full, host.asn, ip2as, orgs,
                                 world.topo->relationships(), aliases);
    auto to_mlab = measure::ark_targeted_campaign(world, fwd, vp,
                                                  world.mlab_servers, opt, rng);
    auto to_st = measure::ark_targeted_campaign(
        world, fwd, vp, world.speedtest_servers_2017, opt, rng);
    auto alexa = measure::resolve_alexa_targets(world, vp);
    auto to_alexa =
        measure::ark_targeted_campaign(world, fwd, vp, alexa, opt, rng);
    auto cov = core::analyze_coverage(host.label, "", bdr, to_mlab, to_st,
                                      to_alexa, ip2as, orgs, aliases);
    auto ov = core::overlap(cov.mlab, cov.alexa);
    table.add_row({host.label,
                   std::to_string(cov.discovered.as_level.size()),
                   std::to_string(cov.mlab.as_level.size()),
                   std::to_string(cov.speedtest.as_level.size()),
                   std::to_string(ov.alexa_not_platform_as)});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

int cmd_diurnal(const Args& args) {
  gen::World world = gen::generate_world(config_from(args));
  route::BgpRouting bgp(*world.topo);
  route::Forwarder fwd(*world.topo, bgp);
  sim::ThroughputModel model(*world.topo, *world.traffic);
  measure::Platform mlab("M-Lab", *world.topo, world.mlab_servers);
  util::Rng rng(7);

  std::string source = args.get("source", "GTT");
  std::string isp = args.get("isp", "AT&T");
  auto clients = world.clients_of(isp);
  if (clients.empty()) {
    std::fprintf(stderr, "unknown ISP %s\n", isp.c_str());
    return 1;
  }
  gen::WorkloadConfig wl;
  wl.days = args.get_int("days", 14);
  wl.mean_tests_per_client = 10.0;
  auto schedule = gen::crowdsourced_schedule(world, clients, wl, rng);
  route::PathCache path_cache(fwd);
  measure::NdtCampaign campaign(world, fwd, model, mlab,
                                measure::CampaignConfig{});
  campaign.set_path_cache(&path_cache);
  auto result = campaign.run(schedule, rng);

  auto source_of = [&](const measure::NdtRecord& t) {
    return world.topo->as_info(t.server_asn).name == source ? source
                                                            : std::string();
  };
  auto isp_of = [&](const measure::NdtRecord&) { return isp; };
  auto groups = core::build_diurnal_groups(result.tests, world, source_of,
                                           isp_of);
  auto it = groups.find(core::GroupKey{source, isp});
  if (it == groups.end()) {
    std::fprintf(stderr, "no %s -> %s tests observed\n", source.c_str(),
                 isp.c_str());
    return 1;
  }
  auto summary = it->second.throughput.summarize();
  util::TextTable table({"local hour", "samples", "median Mbps"});
  for (int h = 0; h < 24; ++h) {
    auto idx = static_cast<std::size_t>(h);
    table.add_row({std::to_string(h), std::to_string(summary.count[idx]),
                   summary.count[idx] ? util::format("%.1f", summary.median[idx])
                                      : "-"});
  }
  std::printf("%s -> %s (%zu tests)\n%s", source.c_str(), isp.c_str(),
              it->second.tests, table.render().c_str());
  auto cmp = stats::compare_peak_offpeak(it->second.throughput);
  std::printf("relative peak drop: %.0f%%\n", 100.0 * cmp.relative_drop);
  return 0;
}

int cmd_stats(const Args& args) {
  // Flip the whole observability stack on, then run an instrumented
  // campaign. The campaign output is bit-identical to an uninstrumented
  // run (the obs determinism contract); this command exists to surface the
  // side-channel numbers.
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  obs::TraceRecorder& recorder = obs::TraceRecorder::global();
  obs::hook_logging();
  reg.set_enabled(true);
  recorder.set_enabled(true);

  gen::World world = gen::generate_world(config_from(args));
  route::BgpRouting bgp(*world.topo);
  route::Forwarder fwd(*world.topo, bgp);
  sim::ThroughputModel model(*world.topo, *world.traffic);
  measure::Platform mlab("M-Lab", *world.topo, world.mlab_servers);

  util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 42)) + 1);
  gen::WorkloadConfig wl;
  wl.days = args.get_int("days", 14);
  wl.mean_tests_per_client = args.get_double("tests-per-client", 8.0);
  auto schedule = gen::crowdsourced_schedule(world, world.clients, wl, rng);
  route::PathCache path_cache(fwd);
  measure::NdtCampaign campaign(world, fwd, model, mlab,
                                measure::CampaignConfig{});
  campaign.set_path_cache(&path_cache);
  auto result = campaign.run(schedule, rng);
  std::printf("tests: %zu  traceroutes: %zu\n", result.tests.size(),
              result.traceroutes.size());

  obs::MetricsSnapshot snap = reg.snapshot();
  util::TextTable counters({"counter", "value"});
  for (const auto& [name, value] : snap.counters) {
    counters.add_row({name, std::to_string(value)});
  }
  std::printf("%s", counters.render().c_str());
  if (!snap.gauges.empty()) {
    util::TextTable gauges({"gauge", "value"});
    for (const auto& [name, value] : snap.gauges) {
      gauges.add_row({name, util::format("%.3f", value)});
    }
    std::printf("%s", gauges.render().c_str());
  }
  if (!snap.histograms.empty()) {
    util::TextTable hists({"histogram", "count", "mean"});
    for (const auto& [name, h] : snap.histograms) {
      hists.add_row({name, std::to_string(h.count),
                     h.count ? util::format("%.3f", h.sum / h.count) : "-"});
    }
    std::printf("%s", hists.render().c_str());
  }

  if (args.has("out")) {
    std::string dir = args.get("out", ".");
    util::Status st =
        io::export_observability(snap, recorder.to_chrome_json(), dir);
    if (!st.ok()) {
      std::fprintf(stderr, "export: %s\n", st.error().c_str());
      return 1;
    }
    std::printf("wrote %s/metrics.json and %s/trace.json "
                "(load trace.json in chrome://tracing)\n",
                dir.c_str(), dir.c_str());
  }
  return 0;
}

int cmd_scale(const Args& args) {
  gen::World world = gen::generate_world(config_from(args));
  route::BgpRouting bgp(*world.topo);
  route::Forwarder fwd(*world.topo, bgp);
  sim::ThroughputModel model(*world.topo, *world.traffic);
  measure::Platform mlab("M-Lab", *world.topo, world.mlab_servers);

  // Fixed-size synthetic schedule (round-robin clients, constant arrival
  // rate) so tests/sec is comparable across runs and machines.
  std::size_t n = static_cast<std::size_t>(args.get_int("tests", 20000));
  std::vector<gen::TestRequest> schedule;
  schedule.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    gen::TestRequest req;
    req.client = world.clients[i % world.clients.size()];
    req.utc_time_hours = static_cast<double>(i) / 5000.0;
    schedule.push_back(req);
  }

  measure::CampaignConfig cc;
  cc.threads = args.get_int("threads", 0);
  route::PathCache path_cache(fwd);
  measure::NdtCampaign campaign(world, fwd, model, mlab, cc);
  campaign.set_path_cache(&path_cache);
  util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 42)) + 1);

  auto peak_rss_mb = [] {
    struct rusage ru {};
    getrusage(RUSAGE_SELF, &ru);
    return static_cast<double>(ru.ru_maxrss) / 1024.0;  // KiB -> MiB
  };

  auto start = std::chrono::steady_clock::now();
  std::size_t tests = 0, traceroutes = 0, paths = 0;
  if (args.has("classic")) {
    measure::CampaignResult result = campaign.run(schedule, rng);
    tests = result.tests.size();
    traceroutes = result.traceroutes.size();
  } else {
    measure::ColumnarCampaignResult result =
        campaign.run_columnar(schedule, rng);
    tests = result.tests.size();
    traceroutes = result.traceroutes.size();
    paths = result.paths.size();
  }
  double wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();

  std::printf("engine: %s\n", args.has("classic") ? "classic" : "columnar");
  std::printf("tests: %zu  traceroutes: %zu", tests, traceroutes);
  if (paths != 0) std::printf("  paths interned: %zu", paths);
  std::printf("\n");
  std::printf("wall: %.2f s  tests/sec: %.0f  peak rss: %.1f MiB\n", wall_s,
              static_cast<double>(tests) / wall_s, peak_rss_mb());
  return 0;
}

// Strict unsigned parse for flag values: the whole string must be digits
// and fit under `max`. atoi-style silent truncation must not turn a typo
// into a surprising port or retention window.
bool parse_flag_uint(const std::string& text, unsigned long long max,
                     unsigned long long* out) {
  if (text.empty() || text.size() > 18) return false;
  unsigned long long v = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<unsigned long long>(c - '0');
  }
  if (v > max) return false;
  *out = v;
  return true;
}

int cmd_serve(const Args& args) {
  // Validate flags with values from a closed set before any heavy work;
  // a bad value is a usage error (exit 2), not a runtime failure.
  std::string policy = args.get("policy", "block");
  if (policy != "block" && policy != "drop") {
    std::fprintf(stderr, "unknown --policy '%s' (block|drop)\n",
                 policy.c_str());
    return 2;
  }
  unsigned long long listen_port = 0;
  bool listen = args.has("listen");
  if (listen &&
      !parse_flag_uint(args.get("listen", ""), 65535, &listen_port)) {
    std::fprintf(stderr, "bad --listen '%s' (port 0-65535, 0 = ephemeral)\n",
                 args.get("listen", "").c_str());
    return 2;
  }
  std::string connect_host;
  unsigned long long connect_port = 0;
  bool connect = args.has("connect");
  if (connect) {
    std::string hp = args.get("connect", "");
    std::size_t colon = hp.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        !parse_flag_uint(hp.substr(colon + 1), 65535, &connect_port) ||
        connect_port == 0) {
      std::fprintf(stderr, "bad --connect '%s' (expected HOST:PORT)\n",
                   hp.c_str());
      return 2;
    }
    connect_host = hp.substr(0, colon);
  }
  if (listen && connect) {
    std::fprintf(stderr, "--listen and --connect are mutually exclusive\n");
    return 2;
  }
  unsigned long long epoch_events = 8192;
  if (args.has("epoch") &&
      !parse_flag_uint(args.get("epoch", ""), 1ull << 40, &epoch_events)) {
    std::fprintf(stderr, "bad --epoch '%s' (events per epoch, >= 0)\n",
                 args.get("epoch", "").c_str());
    return 2;
  }
  unsigned long long retain_epochs = 0;
  if (args.has("retain") &&
      !parse_flag_uint(args.get("retain", ""), 1ull << 40, &retain_epochs)) {
    std::fprintf(stderr, "bad --retain '%s' (epochs to retain, 0 = keep all)\n",
                 args.get("retain", "").c_str());
    return 2;
  }

  // Durability: recover whatever a previous (possibly crashed) run left in
  // the WAL directory, then open a writer for this run's events. An
  // unusable directory is a usage error, caught before the world builds.
  std::string wal_dir = args.get("wal-dir", "");
  serve::WalRecovery recovered;
  serve::WalWriter wal;
  if (!wal_dir.empty()) {
    std::error_code ec;
    if (std::filesystem::exists(wal_dir, ec)) {
      util::Result<serve::WalRecovery> rec = serve::recover_wal(wal_dir);
      if (!rec.ok()) {
        std::fprintf(stderr, "bad --wal-dir: %s\n", rec.error().c_str());
        return 2;
      }
      recovered = std::move(rec.value());
    }
    util::Status st = wal.open(wal_dir, serve::WalOptions{});
    if (!st.ok()) {
      std::fprintf(stderr, "bad --wal-dir: %s\n", st.error().c_str());
      return 2;
    }
  }

  gen::World world = gen::generate_world(config_from(args));
  route::BgpRouting bgp(*world.topo);
  route::Forwarder fwd(*world.topo, bgp);
  sim::ThroughputModel model(*world.topo, *world.traffic);
  measure::Platform mlab("M-Lab", *world.topo, world.mlab_servers);

  // Synthetic schedule as in `scale`, then flattened into the arrival-
  // ordered event log the service would see in production.
  std::size_t n = static_cast<std::size_t>(args.get_int("tests", 20000));
  std::vector<gen::TestRequest> schedule;
  schedule.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    gen::TestRequest req;
    req.client = world.clients[i % world.clients.size()];
    req.utc_time_hours = static_cast<double>(i) / 5000.0;
    schedule.push_back(req);
  }
  measure::NdtCampaign campaign(world, fwd, model, mlab,
                                measure::CampaignConfig{});
  util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 42)) + 1);
  std::vector<serve::IngestEvent> log =
      serve::event_log_from(campaign.run(schedule, rng));

  double rate = args.get_double("rate", 0.0);
  auto pace = [&](std::size_t i,
                  std::chrono::steady_clock::time_point start) {
    if (rate > 0.0 && (i & 0xff) == 0xff) {
      double due_s = static_cast<double>(i + 1) / rate;
      double wall_s = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
      if (wall_s < due_s) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(due_s - wall_s));
      }
    }
  };

  // Pure producer mode: stream the generated log to a daemon elsewhere
  // and exit — no local service at all.
  if (connect) {
    serve::FrameClient client;
    util::Status st = client.connect(
        connect_host, static_cast<std::uint16_t>(connect_port));
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.error().c_str());
      return 1;
    }
    auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < log.size(); ++i) {
      util::Status sent = client.send(log[i]);
      if (!sent.ok()) {
        std::fprintf(stderr, "%s\n", sent.error().c_str());
        return 1;
      }
      pace(i, start);
    }
    double wall_s = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    std::printf("sent %llu events to %s:%llu in %.2f s (%.0f events/sec)\n",
                static_cast<unsigned long long>(client.events_sent()),
                connect_host.c_str(), connect_port, wall_s,
                static_cast<double>(client.events_sent()) / wall_s);
    return 0;
  }

  infer::Ip2As ip2as(*world.topo);
  infer::OrgMap orgs(*world.topo);
  infer::AliasResolver aliases(*world.topo, 0.9,
                               static_cast<std::uint64_t>(args.get_int("seed", 42)));

  serve::ServeConfig scfg;
  scfg.shards = static_cast<std::size_t>(args.get_int("shards", 0));
  scfg.queue_capacity = static_cast<std::size_t>(args.get_int("queue", 1024));
  if (policy == "drop") scfg.policy = serve::OverflowPolicy::kDrop;
  scfg.epoch_events = epoch_events;
  scfg.retain_epochs = retain_epochs;
  if (!world.ark_vps.empty()) {
    scfg.vp_as = world.topo->host(world.ark_vps[0]).asn;
  }
  serve::IngestService svc(ip2as, orgs, scfg);
  svc.set_relationships(&world.topo->relationships(), &aliases);
  if (wal.is_open()) svc.attach_wal(&wal);
  svc.start();

  // Crash recovery: replay the surviving WAL prefix before any new event,
  // so the service resumes exactly where the dead process stopped. The
  // replayed events re-enter the (truncated, reopened) WAL through the
  // normal submit path, keeping the log self-contained.
  for (const serve::IngestEvent& ev : recovered.events) svc.submit(ev);
  if (!recovered.events.empty() || recovered.truncated_tail) {
    std::printf("wal: recovered %zu events from %s (%llu segments, "
                "%llu bytes%s%s)\n",
                recovered.events.size(), wal_dir.c_str(),
                static_cast<unsigned long long>(recovered.segments_scanned),
                static_cast<unsigned long long>(recovered.bytes_scanned),
                recovered.truncated_tail ? ", torn tail repaired: " : "",
                recovered.truncated_tail ? recovered.tail_error.c_str() : "");
  }

  // Optional socket front-end: the fresh log is fed through a loopback
  // client to our own listener, exercising the full framed path instead
  // of in-process submits.
  serve::FrameListener listener(svc, serve::NetConfig{});
  serve::FrameClient self_feed;
  if (listen) {
    util::Status st =
        listener.start(static_cast<std::uint16_t>(listen_port));
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.error().c_str());
      return 1;
    }
    util::Status conn = self_feed.connect("127.0.0.1", listener.port());
    if (!conn.ok()) {
      std::fprintf(stderr, "%s\n", conn.error().c_str());
      return 1;
    }
    std::printf("listening on 127.0.0.1:%u\n", listener.port());
  }

  // Replay at --rate events/sec (0 = unpaced), snapshotting --snapshots
  // times at even intervals through the log.
  std::size_t snapshots =
      static_cast<std::size_t>(args.get_int("snapshots", 4));
  if (snapshots == 0) snapshots = 1;
  std::size_t stride = log.size() / snapshots + 1;
  std::vector<double> snapshot_ms;
  serve::ServiceSnapshot last;
  auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < log.size(); ++i) {
    if (listen) {
      util::Status sent = self_feed.send(log[i]);
      if (!sent.ok()) {
        std::fprintf(stderr, "%s\n", sent.error().c_str());
        return 1;
      }
    } else {
      svc.submit(log[i]);
    }
    pace(i, start);
    if ((i + 1) % stride == 0) {
      last = svc.snapshot();
      snapshot_ms.push_back(last.snapshot_ms);
    }
  }
  if (listen) {
    // All frames are in flight; wait until the listener has classified
    // every one before the final drain.
    self_feed.close();
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(60);
    while (std::chrono::steady_clock::now() < deadline) {
      serve::NetCounters net = listener.counters();
      if (net.events_submitted + net.events_dropped +
              net.frames_rejected() >= log.size()) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  // Graceful shutdown: drain everything in flight, final snapshot, stop,
  // sync the WAL.
  last = svc.drain_and_stop();
  snapshot_ms.push_back(last.snapshot_ms);
  double wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  serve::ServiceCounters counters = svc.counters();
  if (listen) listener.stop();

  std::sort(snapshot_ms.begin(), snapshot_ms.end());
  auto pct = [&](double p) {
    std::size_t idx = static_cast<std::size_t>(
        p * static_cast<double>(snapshot_ms.size() - 1));
    return snapshot_ms[idx];
  };

  std::printf("shards: %zu  queue: %zu  policy: %s\n", svc.shards(),
              scfg.queue_capacity, serve::overflow_policy_name(scfg.policy));
  std::printf("events: %llu submitted, %llu consumed, %llu dropped\n",
              static_cast<unsigned long long>(counters.submitted),
              static_cast<unsigned long long>(counters.consumed),
              static_cast<unsigned long long>(counters.dropped));
  if (retain_epochs > 0) {
    std::printf("retention: %llu-event epochs, keep %llu — evicted %llu "
                "events, watermark %llu\n",
                epoch_events, retain_epochs,
                static_cast<unsigned long long>(counters.evicted),
                static_cast<unsigned long long>(last.eviction_watermark));
  }
  if (wal.is_open()) {
    serve::WalStats ws = wal.stats();
    std::printf("wal: %llu records in %llu segments (%llu bytes, %llu "
                "syncs) at %s\n",
                static_cast<unsigned long long>(ws.appended),
                static_cast<unsigned long long>(ws.segments_created),
                static_cast<unsigned long long>(ws.bytes_written),
                static_cast<unsigned long long>(ws.syncs), wal_dir.c_str());
  }
  if (listen) {
    serve::NetCounters net = listener.counters();
    std::printf("socket: %llu frames ok, %llu rejected, %llu events "
                "submitted, %llu dropped%s\n",
                static_cast<unsigned long long>(net.frames_ok),
                static_cast<unsigned long long>(net.frames_rejected()),
                static_cast<unsigned long long>(net.events_submitted),
                static_cast<unsigned long long>(net.events_dropped),
                net.consistent() ? "" : "  [INCONSISTENT]");
  }
  std::printf("wall: %.2f s  events/sec: %.0f\n", wall_s,
              static_cast<double>(counters.consumed) / wall_s);
  std::printf("snapshots: %zu  staleness p50: %.2f ms  p99: %.2f ms\n",
              snapshot_ms.size(), pct(0.50), pct(0.99));
  std::printf("final snapshot: %llu events (%llu tests, %llu traces), "
              "%zu interfaces assigned, %zu crossings, %zu borders, "
              "fingerprint %016llx\n",
              static_cast<unsigned long long>(last.events_consumed),
              static_cast<unsigned long long>(last.ndt_tests),
              static_cast<unsigned long long>(last.traces),
              last.mapit.operating_as.size(), last.mapit.crossings.size(),
              last.borders ? last.borders->borders.size() : 0,
              static_cast<unsigned long long>(last.fingerprint));
  return 0;
}

int cmd_pathmodel(const Args& args) {
  // Closed-set flag validation first (exit 2), before any simulation runs.
  namespace sp = sim::packet;
  std::string cc_text = args.get("cc", "all");
  std::vector<sp::CcAlgo> ccs;
  if (cc_text == "all") {
    ccs = {sp::CcAlgo::kNewReno, sp::CcAlgo::kCubic, sp::CcAlgo::kBbr};
  } else {
    sp::CcAlgo cc;
    if (!sp::parse_cc_algo(cc_text, &cc)) {
      std::fprintf(stderr, "unknown --cc '%s' (reno|cubic|bbr|all)\n",
                   cc_text.c_str());
      return 2;
    }
    ccs = {cc};
  }
  std::string scen_text = args.get("scenario", "all");
  core::PathModelScenario which;
  if (!core::parse_pathmodel_scenario(scen_text, &which)) {
    std::fprintf(stderr,
                 "unknown --scenario '%s' "
                 "(bandwidth|sender|interdomain|access|all)\n",
                 scen_text.c_str());
    return 2;
  }
  unsigned long long per_class = 3;
  if (args.has("tests") &&
      (!parse_flag_uint(args.get("tests", ""), 1000, &per_class) ||
       per_class == 0)) {
    std::fprintf(stderr, "bad --tests '%s' (instances per class, 1-1000)\n",
                 args.get("tests", "").c_str());
    return 2;
  }
  std::FILE* out = nullptr;
  if (args.has("out")) {
    out = std::fopen(args.get("out", "").c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "bad --out '%s': cannot open for writing\n",
                   args.get("out", "").c_str());
      return 2;
    }
    std::fprintf(out,
                 "cc,scenario,access_mbps,rtt_ms,competing_flows,"
                 "goodput_mbps,baseline_drop,truth_label,predicted_label,"
                 "truth_site,predicted_site,btlbw_mbps,rtprop_ms,"
                 "bdp_packets,avg_inflight,steady_p10_rtt_ms\n");
  }

  for (sp::CcAlgo cc : ccs) {
    std::vector<core::PathModelCase> cases =
        core::run_pathmodel_suite(cc, which, static_cast<int>(per_class));
    util::TextTable table({"scenario", "access", "rtt", "goodput", "truth",
                           "predicted", "site"});
    for (const core::PathModelCase& c : cases) {
      bool label_ok = c.result.label == c.truth_label;
      bool site_ok = c.result.site == c.truth_site;
      table.add_row(
          {core::pathmodel_scenario_name(c.scenario),
           util::format("%.0f Mbps", c.access_mbps),
           util::format("%.0f ms", c.rtt_ms),
           util::format("%.1f Mbps", c.goodput_mbps),
           infer::flow_label_name(c.truth_label),
           util::format("%s%s", infer::flow_label_name(c.result.label),
                        label_ok ? "" : " *"),
           util::format("%s%s", infer::bottleneck_site_name(c.result.site),
                        site_ok ? "" : " *")});
      if (out != nullptr) {
        std::fprintf(
            out, "%s,%s,%.3f,%.3f,%d,%.4f,%.4f,%s,%s,%s,%s,%.3f,%.3f,%.2f,"
            "%.2f,%.3f\n",
            sp::cc_algo_name(cc), core::pathmodel_scenario_name(c.scenario),
            c.access_mbps, c.rtt_ms, c.competing_flows, c.goodput_mbps,
            c.baseline_drop, infer::flow_label_name(c.truth_label),
            infer::flow_label_name(c.result.label),
            infer::bottleneck_site_name(c.truth_site),
            infer::bottleneck_site_name(c.result.site), c.result.btlbw_mbps,
            c.result.rtprop_ms, c.result.bdp_packets,
            c.result.avg_inflight_packets, c.result.steady_p10_rtt_ms);
      }
    }
    std::printf("cc: %s (%zu cases; * marks a miss)\n%s", sp::cc_algo_name(cc),
                cases.size(), table.render().c_str());
    if (which == core::PathModelScenario::kAll) {
      core::PathModelScore score = core::score_pathmodel(cases);
      std::printf(
          "  congested-vs-not: precision %.3f  recall %.3f  F1 %.3f "
          "(threshold baseline F1 %.3f at drop > %.2f)\n"
          "  label accuracy: %.3f  localization: %d/%d\n\n",
          score.congested.precision, score.congested.recall,
          score.congested.f1, score.baseline_best_f1,
          score.baseline_best_threshold, score.label_accuracy,
          score.localization_correct, score.localization_total);
    } else {
      std::printf("\n");
    }
  }
  if (out != nullptr) {
    std::fclose(out);
    std::printf("wrote per-case rows to %s\n", args.get("out", "").c_str());
  }
  return 0;
}

int cmd_adversary(const Args& args) {
  // Closed-set flag validation first (exit 2), before any world generates.
  std::string scen = args.get("scenario", "churn");
  bool churn = scen == "churn";
  bool withdraw = scen == "withdraw";
  bool asym = scen == "asym";
  bool stars = scen == "stars";
  if (!churn && !withdraw && !asym && !stars) {
    std::fprintf(stderr, "unknown --scenario '%s' (churn|withdraw|asym|stars)\n",
                 scen.c_str());
    return 2;
  }
  double fraction = args.get_double("fraction", 0.3);
  if (fraction < 0.0 || fraction > 1.0) {
    std::fprintf(stderr, "bad --fraction '%s' (0..1)\n",
                 args.get("fraction", "").c_str());
    return 2;
  }
  unsigned long long links = 1;
  if (args.has("links") &&
      (!parse_flag_uint(args.get("links", ""), 1000, &links) || links == 0)) {
    std::fprintf(stderr, "bad --links '%s' (withdrawn border links, 1-1000)\n",
                 args.get("links", "").c_str());
    return 2;
  }
  unsigned long long days = 4;
  if (args.has("days") &&
      (!parse_flag_uint(args.get("days", ""), 365, &days) || days == 0)) {
    std::fprintf(stderr, "bad --days '%s' (1-365)\n",
                 args.get("days", "").c_str());
    return 2;
  }
  double epoch = args.get_double("epoch", static_cast<double>(days) * 12.0);
  if (epoch < 0.0 || epoch > static_cast<double>(days) * 24.0) {
    std::fprintf(stderr, "bad --epoch '%s' (hours, 0..days*24)\n",
                 args.get("epoch", "").c_str());
    return 2;
  }

  std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  gen::World world = gen::generate_world(config_from(args));
  route::BgpRouting bgp(*world.topo);
  route::Forwarder fwd(*world.topo, bgp);

  sim::AdversaryConfig acfg;
  if (churn) {
    acfg = sim::AdversaryConfig::churn(epoch, fraction);
  } else if (withdraw) {
    acfg = sim::AdversaryConfig::withdrawal(epoch, static_cast<int>(links));
  } else if (asym) {
    acfg = sim::AdversaryConfig::asymmetric(fraction);
  } else {
    acfg = sim::AdversaryConfig::misleading_stars(fraction);
  }
  sim::AdversaryScenario scenario(*world.topo, bgp, acfg, seed ^ 0xad5ull);

  if (stars) {
    if (world.ark_vps.empty()) {
      std::fprintf(stderr, "world has no Ark VPs\n");
      return 1;
    }
    util::Rng rng(seed + 3);
    measure::MisleadingStarsResult pair = measure::misleading_stars_corpus(
        world, fwd, scenario, world.ark_vps[0], {}, rng);
    std::printf("misleading stars: %zu/%zu routers cloaked, %zu truth hops "
                "relabeled across %zu traces\n",
                pair.cloaked_routers, world.topo->routers().size(),
                pair.cloaked_hops, pair.observed.size());
    std::printf("observed fingerprints: %016llx vs %016llx (%s)\n",
                static_cast<unsigned long long>(pair.observed_fp_a),
                static_cast<unsigned long long>(pair.observed_fp_b),
                pair.observed_fp_a == pair.observed_fp_b ? "equal" : "DIFFER");
    std::printf("truth fingerprints:    %016llx vs %016llx (%s)\n",
                static_cast<unsigned long long>(pair.truth_fp_a),
                static_cast<unsigned long long>(pair.truth_fp_b),
                pair.truth_fp_a != pair.truth_fp_b ? "distinct" : "equal");
    std::printf("indistinguishable ground-truth pair: %s\n",
                pair.indistinguishable() ? "yes" : "NO");
    return pair.indistinguishable() ? 0 : 1;
  }

  sim::ThroughputModel model(*world.topo, *world.traffic);
  measure::Platform mlab("M-Lab", *world.topo, world.mlab_servers);
  gen::WorkloadConfig wl;
  wl.days = static_cast<int>(days);
  wl.mean_tests_per_client = args.get_double("tests-per-client", 8.0);
  util::Rng sched_rng(seed + 1);
  auto schedule = gen::crowdsourced_schedule(world, world.clients, wl,
                                             sched_rng);
  route::PathCache path_cache(fwd);
  auto run_once = [&](const sim::AdversaryScenario* adv) {
    measure::NdtCampaign campaign(world, fwd, model, mlab,
                                  measure::CampaignConfig{});
    campaign.set_path_cache(&path_cache);
    if (adv != nullptr) campaign.set_adversary(adv);
    util::Rng rng(seed + 2);
    return campaign.run(schedule, rng);
  };
  measure::CampaignResult baseline = run_once(nullptr);
  measure::CampaignResult perturbed = run_once(&scenario);

  measure::AdversaryCampaignTruth truth =
      measure::annotate_campaign(scenario, *world.topo, perturbed);
  util::TextTable scenario_table({"scenario knob", "value"});
  scenario_table.add_row({"scenario", scen});
  scenario_table.add_row({"epoch (hours)", util::format("%.1f", epoch)});
  scenario_table.add_row(
      {"pairs churned", util::format("%zu/%zu", truth.pairs_churned,
                                     truth.pairs_total)});
  scenario_table.add_row(
      {"withdrawn links", std::to_string(truth.withdrawn_links.size())});
  scenario_table.add_row(
      {"tests pre/post epoch",
       util::format("%zu/%zu", truth.tests_pre_epoch,
                    truth.tests_post_epoch)});
  std::printf("%s", scenario_table.render().c_str());

  bool prefix_equal =
      measure::fingerprint_before(baseline, scenario.epoch_hours()) ==
      measure::fingerprint_before(perturbed, scenario.epoch_hours());
  std::printf("pre-epoch prefix vs clean run: %s\n",
              prefix_equal ? "bit-identical" : "DIFFERS");

  infer::Ip2As ip2as(*world.topo);
  infer::AnomalyReport report = infer::detect_anomalies(perturbed, ip2as);
  core::AnomalyGroundTruth gt = core::ground_truth_of(truth);
  core::AnomalyScore score = core::score_anomalies(report, gt);

  util::TextTable det({"detector output", "value"});
  det.add_row({"bins", std::to_string(report.bins)});
  det.add_row({"alarms", std::to_string(report.alarms.size())});
  det.add_row({"withdrawn crossings flagged",
               std::to_string(report.withdrawn.size())});
  std::string epochs_text;
  for (double e : report.epochs) {
    epochs_text += util::format(epochs_text.empty() ? "%.0fh" : ", %.0fh", e);
  }
  det.add_row({"epoch candidates",
               epochs_text.empty() ? "(none)" : epochs_text});
  det.add_row({"epoch precision/recall",
               util::format("%.2f / %.2f", score.epoch_precision,
                            score.epoch_recall)});
  det.add_row({"withdrawn precision/recall",
               util::format("%.2f / %.2f", score.withdrawn_precision,
                            score.withdrawn_recall)});
  std::printf("%s", det.render().c_str());
  if (!truth.accounted(perturbed.tests.size())) {
    std::fprintf(stderr, "adversary ground-truth accounting inconsistent\n");
    return 1;
  }
  if (!prefix_equal && scenario.epoch_hours() > 0.0 && !asym) {
    return 1;
  }
  return 0;
}

// The subcommand registry: the one place a subcommand is declared. Both
// the usage text and main()'s dispatch are generated from this table.
struct Subcommand {
  const char* name;
  const char* summary;
  const char* options;  // subcommand-specific flags, for the usage text
  int (*fn)(const Args&);
};

constexpr Subcommand kSubcommands[] = {
    {"topology", "generate a world and summarize its topology", "", &cmd_topology},
    {"adversary", "run an adversarial campaign and score the anomaly detector",
     "--scenario churn|withdraw|asym|stars --fraction X --links N --epoch H "
     "--days N --tests-per-client X",
     &cmd_adversary},
    {"campaign", "run an NDT measurement campaign, optionally exporting datasets",
     "--days N --tests-per-client X --out DIR --no-truth", &cmd_campaign},
    {"coverage", "per-VP interdomain coverage analysis (bdrmap vs platforms)",
     "--vp SITE", &cmd_coverage},
    {"diurnal", "diurnal throughput profile for one transit/ISP pair",
     "--source NAME --isp NAME --days N", &cmd_diurnal},
    {"faults", "run clean vs faulted campaigns and report data quality",
     "--list | --severity X --days N --out DIR --no-truth", &cmd_faults},
    {"pathmodel", "CC-aware bottleneck classification on ground-truth sims",
     "--cc reno|cubic|bbr|all --scenario bandwidth|sender|interdomain|"
     "access|all --tests N --out FILE",
     &cmd_pathmodel},
    {"scale", "columnar-engine scaling probe: tests/sec and peak RSS",
     "--tests N --threads N --classic", &cmd_scale},
    {"serve", "replay a campaign through the always-on ingest service",
     "--tests N --shards N --queue N --policy block|drop --rate X "
     "--snapshots N --listen PORT --connect HOST:PORT --wal-dir DIR "
     "--epoch N --retain N",
     &cmd_serve},
    {"stats", "run an instrumented campaign; print/export metrics and traces",
     "--days N --tests-per-client X --out DIR", &cmd_stats},
};

// Flags a subcommand accepts, derived from the same registry strings the
// usage text prints (every "--token" in sub.options) plus the options all
// subcommands share — so the usage text and the validator cannot drift.
std::set<std::string> allowed_flags(const Subcommand& sub) {
  std::set<std::string> flags = {"scale", "seed", "help"};
  for (const char* p = sub.options; *p != '\0'; ++p) {
    if (p[0] == '-' && p[1] == '-') {
      const char* start = p + 2;
      const char* end = start;
      while (*end != '\0' && *end != ' ') ++end;
      flags.emplace(start, end);
      p = end - 1;
    }
  }
  return flags;
}

int usage(std::FILE* to) {
  std::fprintf(to, "usage: netcong_cli <subcommand> [options]\n\n");
  std::fprintf(to, "subcommands:\n");
  for (const Subcommand& sub : kSubcommands) {
    std::fprintf(to, "  %-9s %s\n", sub.name, sub.summary);
  }
  std::fprintf(to, "\ncommon options: --scale full|small|tiny  --seed N\n");
  for (const Subcommand& sub : kSubcommands) {
    if (sub.options[0] == '\0') continue;
    std::fprintf(to, "  %-9s %s\n", sub.name, sub.options);
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = parse_args(argc, argv);
  if (args.command == "help" || args.command == "--help") {
    usage(stdout);
    return 0;
  }
  if (args.command.empty()) return usage(stderr);
  for (const Subcommand& sub : kSubcommands) {
    if (args.command != sub.name) continue;
    if (!args.stray.empty()) {
      std::fprintf(stderr, "unexpected argument '%s'\n\n",
                   args.stray.front().c_str());
      usage(stderr);
      return 2;
    }
    const std::set<std::string> allowed = allowed_flags(sub);
    for (const auto& [key, value] : args.options) {
      if (allowed.count(key) == 0) {
        std::fprintf(stderr, "unknown option '--%s' for subcommand '%s'\n\n",
                     key.c_str(), sub.name);
        usage(stderr);
        return 2;
      }
    }
    if (args.has("help")) {
      usage(stdout);
      return 0;
    }
    return sub.fn(args);
  }
  std::fprintf(stderr, "unknown subcommand '%s'\n\n", args.command.c_str());
  usage(stderr);
  return 2;
}
