#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "check/fixtures.h"
#include "check/properties.h"
#include "infer/alias.h"
#include "infer/bdrmap.h"
#include "infer/datasets.h"
#include "infer/mapit.h"
#include "measure/ndt.h"
#include "serve/event.h"
#include "serve/ndt_stats.h"
#include "serve/service.h"
#include "util/strings.h"

// The ingest family (DESIGN.md §11): the always-on service's snapshots must
// be bit-identical to a batch run over the same event-log prefix — for any
// producer interleaving and any shard count — and its queue accounting must
// conserve events under both overflow policies.

namespace netcong::check {
namespace {

using gen::GeneratorConfig;
using util::format;

// The batch reference: feed the first `prefix` events of the log through
// run_mapit / borders_from_mapit / NdtStreamStats directly, with no queues
// or threads involved, and digest the result exactly as snapshot() does.
serve::ServiceSnapshot batch_snapshot(
    const std::vector<serve::IngestEvent>& log, std::size_t prefix,
    const infer::Ip2As& ip2as, const infer::OrgMap& orgs, topo::Asn vp_as,
    const topo::RelationshipTable* rels, const infer::AliasResolver* aliases,
    const infer::MapItConfig& mapit_cfg) {
  std::vector<measure::TracerouteRecord> traces;
  serve::ServiceSnapshot snap;
  for (std::size_t i = 0; i < prefix && i < log.size(); ++i) {
    if (const auto* t = std::get_if<measure::NdtRecord>(&log[i])) {
      snap.ndt.add(*t);
    } else {
      traces.push_back(std::get<measure::TracerouteRecord>(log[i]));
    }
  }
  snap.events_consumed = std::min(prefix, log.size());
  snap.ndt_tests = snap.ndt.tests();
  snap.mapit = infer::run_mapit(traces, ip2as, orgs, mapit_cfg);
  snap.traces = snap.mapit.coverage.traces_total;
  if (rels != nullptr && aliases != nullptr) {
    snap.borders =
        infer::borders_from_mapit(snap.mapit, vp_as, orgs, *rels, *aliases);
  }
  snap.fingerprint = serve::snapshot_fingerprint(snap);
  return snap;
}

std::string check_snapshot_equals_batch(const GeneratorConfig& cfg) {
  Stack s(cfg);
  const topo::Topology& t = *s.world.topo;
  infer::Ip2As ip2as(t);
  infer::OrgMap orgs(t);
  infer::AliasResolver aliases(t, 0.9, cfg.seed);

  auto schedule = dense_schedule(s.world, 2);
  measure::NdtCampaign campaign(s.world, s.fwd, s.model, s.mlab,
                                measure::CampaignConfig{});
  util::Rng rng(cfg.seed ^ 0x16e57ull);
  auto log = serve::event_log_from(campaign.run(schedule, rng));

  // The columnar engine must derive the identical event log (same events,
  // same order, same bytes) — replay sources are interchangeable.
  util::Rng rng2(cfg.seed ^ 0x16e57ull);
  auto log_col = serve::event_log_from(campaign.run_columnar(schedule, rng2));
  if (serve::fingerprint(log, log.size()) !=
      serve::fingerprint(log_col, log_col.size())) {
    return "classic and columnar campaigns derived different event logs";
  }

  topo::Asn vp_as =
      s.world.ark_vps.empty() ? 0 : t.host(s.world.ark_vps[0]).asn;
  bool with_borders = !s.world.ark_vps.empty();

  util::Rng pick(cfg.seed ^ 0x9e1ec7ull);
  std::size_t prefix = static_cast<std::size_t>(
      pick.uniform_int(0, static_cast<std::int64_t>(log.size())));

  serve::ServiceSnapshot batch = batch_snapshot(
      log, prefix, ip2as, orgs, vp_as,
      with_borders ? &t.relationships() : nullptr,
      with_borders ? &aliases : nullptr, infer::MapItConfig{});

  const std::size_t shard_counts[] = {1, 2, 0};  // 0 = hardware threads
  for (std::size_t shards : shard_counts) {
    serve::ServeConfig scfg;
    scfg.shards = shards;
    scfg.queue_capacity = 64;  // small enough that kBlock engages
    scfg.policy = serve::OverflowPolicy::kBlock;
    scfg.vp_as = vp_as;
    serve::IngestService svc(ip2as, orgs, scfg);
    if (with_borders) svc.set_relationships(&t.relationships(), &aliases);
    svc.start();

    // A fresh random submission interleaving per shard count: the snapshot
    // must not depend on producer order, only on the event set.
    std::vector<std::size_t> order(prefix);
    for (std::size_t i = 0; i < prefix; ++i) order[i] = i;
    util::Rng shuffle = pick.fork(shards + 1);
    for (std::size_t i = order.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(
          shuffle.uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(order[i - 1], order[j]);
    }
    for (std::size_t idx : order) {
      if (!svc.submit(log[idx])) {
        return format("shards=%zu: kBlock submit rejected event %zu", shards,
                      idx);
      }
    }

    serve::ServiceSnapshot snap = svc.snapshot();
    if (snap.fingerprint != batch.fingerprint) {
      return format("shards=%zu prefix=%zu/%zu: snapshot fingerprint "
                    "%016llx != batch %016llx",
                    shards, prefix, log.size(),
                    static_cast<unsigned long long>(snap.fingerprint),
                    static_cast<unsigned long long>(batch.fingerprint));
    }
    // A second snapshot with no new events is the same snapshot.
    serve::ServiceSnapshot again = svc.snapshot();
    if (again.fingerprint != snap.fingerprint) {
      return format("shards=%zu: back-to-back snapshots differ", shards);
    }
    svc.stop();
  }
  return "";
}

std::string check_drop_policy_accounting(const GeneratorConfig& cfg) {
  Stack s(cfg);
  infer::Ip2As ip2as(*s.world.topo);
  infer::OrgMap orgs(*s.world.topo);

  auto schedule = dense_schedule(s.world, 2);
  measure::NdtCampaign campaign(s.world, s.fwd, s.model, s.mlab,
                                measure::CampaignConfig{});
  util::Rng rng(cfg.seed ^ 0xacc7ull);
  auto log = serve::event_log_from(campaign.run(schedule, rng));
  if (log.empty()) return "";

  const serve::OverflowPolicy policies[] = {serve::OverflowPolicy::kBlock,
                                            serve::OverflowPolicy::kDrop};
  for (serve::OverflowPolicy policy : policies) {
    serve::ServeConfig scfg;
    scfg.shards = 2;
    // A tiny queue plus a slowed consumer makes overflow certain under
    // kDrop and backpressure certain under kBlock.
    scfg.queue_capacity = 2;
    scfg.consume_delay_us = 20;
    scfg.policy = policy;
    serve::IngestService svc(ip2as, orgs, scfg);
    svc.start();

    std::uint64_t accepted = 0;
    for (const auto& ev : log) {
      if (svc.submit(ev)) ++accepted;
    }
    svc.flush();

    serve::ServiceCounters c = svc.counters();
    const char* pname = serve::overflow_policy_name(policy);
    if (c.submitted != log.size()) {
      return format("%s: submitted %llu != %zu events", pname,
                    static_cast<unsigned long long>(c.submitted), log.size());
    }
    if (c.enqueued != accepted) {
      return format("%s: enqueued %llu != %llu accepted submits", pname,
                    static_cast<unsigned long long>(c.enqueued),
                    static_cast<unsigned long long>(accepted));
    }
    if (c.submitted != c.enqueued + c.dropped) {
      return format("%s: submitted %llu != enqueued %llu + dropped %llu",
                    pname, static_cast<unsigned long long>(c.submitted),
                    static_cast<unsigned long long>(c.enqueued),
                    static_cast<unsigned long long>(c.dropped));
    }
    if (c.consumed != c.enqueued) {
      return format("%s: after flush, consumed %llu != enqueued %llu", pname,
                    static_cast<unsigned long long>(c.consumed),
                    static_cast<unsigned long long>(c.enqueued));
    }
    if (policy == serve::OverflowPolicy::kBlock && c.dropped != 0) {
      return format("kBlock dropped %llu events",
                    static_cast<unsigned long long>(c.dropped));
    }
    // The consumed prefix is what snapshots see: the snapshot's event count
    // must equal the conserved enqueued count, not the submitted count.
    serve::ServiceSnapshot snap = svc.snapshot();
    if (snap.events_consumed != c.enqueued) {
      return format("%s: snapshot covers %llu events, %llu were enqueued",
                    pname,
                    static_cast<unsigned long long>(snap.events_consumed),
                    static_cast<unsigned long long>(c.enqueued));
    }
    svc.stop();
  }
  return "";
}

Property world_property(const char* name, const char* summary, int iters,
                        std::string (*fn)(const GeneratorConfig&)) {
  Property p;
  p.name = name;
  p.family = "ingest";
  p.summary = summary;
  p.default_iterations = iters;
  std::string pname = p.name;
  p.run = [pname, fn](util::pbt::Config cfg) {
    return util::pbt::check<GeneratorConfig>(pname, config_domain(), fn, cfg);
  };
  return p;
}

}  // namespace

void register_ingest_properties(std::vector<Property>& out) {
  out.push_back(world_property(
      "ingest.snapshot_equals_batch",
      "service snapshot bit-identical to a batch run over the same event "
      "prefix, for any interleaving and shard count",
      3, check_snapshot_equals_batch));
  out.push_back(world_property(
      "ingest.drop_policy_accounting",
      "submitted = enqueued + dropped under both overflow policies; flush "
      "conserves the enqueued stream",
      3, check_drop_policy_accounting));
}

}  // namespace netcong::check
