file(REMOVE_RECURSE
  "libnetcong_measure.a"
)
