file(REMOVE_RECURSE
  "CMakeFiles/netcong_core.dir/adjacency.cpp.o"
  "CMakeFiles/netcong_core.dir/adjacency.cpp.o.d"
  "CMakeFiles/netcong_core.dir/as_tomography.cpp.o"
  "CMakeFiles/netcong_core.dir/as_tomography.cpp.o.d"
  "CMakeFiles/netcong_core.dir/coverage.cpp.o"
  "CMakeFiles/netcong_core.dir/coverage.cpp.o.d"
  "CMakeFiles/netcong_core.dir/diurnal.cpp.o"
  "CMakeFiles/netcong_core.dir/diurnal.cpp.o.d"
  "CMakeFiles/netcong_core.dir/link_diversity.cpp.o"
  "CMakeFiles/netcong_core.dir/link_diversity.cpp.o.d"
  "CMakeFiles/netcong_core.dir/report.cpp.o"
  "CMakeFiles/netcong_core.dir/report.cpp.o.d"
  "CMakeFiles/netcong_core.dir/signatures.cpp.o"
  "CMakeFiles/netcong_core.dir/signatures.cpp.o.d"
  "CMakeFiles/netcong_core.dir/stratify.cpp.o"
  "CMakeFiles/netcong_core.dir/stratify.cpp.o.d"
  "CMakeFiles/netcong_core.dir/threshold.cpp.o"
  "CMakeFiles/netcong_core.dir/threshold.cpp.o.d"
  "CMakeFiles/netcong_core.dir/tomography.cpp.o"
  "CMakeFiles/netcong_core.dir/tomography.cpp.o.d"
  "CMakeFiles/netcong_core.dir/tslp_analysis.cpp.o"
  "CMakeFiles/netcong_core.dir/tslp_analysis.cpp.o.d"
  "libnetcong_core.a"
  "libnetcong_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netcong_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
