#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "check/fixtures.h"
#include "check/properties.h"
#include "gen/workload.h"
#include "gen/world.h"
#include "topo/relationships.h"
#include "topo/topology.h"
#include "util/strings.h"

// Generator well-formedness: every configuration in the bounded domain must
// yield a structurally sound world. These are the invariants the inference
// layers silently rely on — duplicate addresses would alias unrelated
// routers in MAP-IT, a partitioned intra-AS graph would make BGP paths
// unroutable, and out-of-bounds profile fractions would mean the ablation
// knobs do not measure what they claim.

namespace netcong::check {
namespace {

using gen::GeneratorConfig;
using util::format;

std::string check_addresses_unique(const GeneratorConfig& cfg) {
  gen::World w = gen::generate_world(cfg);
  const topo::Topology& t = *w.topo;

  std::unordered_set<std::uint32_t> iface_addrs;
  for (const auto& i : t.interfaces()) {
    if (!iface_addrs.insert(i.addr.value).second) {
      return format("duplicate interface address %s",
                    i.addr.to_string().c_str());
    }
    if (!t.interface_by_addr(i.addr).has_value()) {
      return format("interface_by_addr(%s) misses an existing interface",
                    i.addr.to_string().c_str());
    }
  }
  std::unordered_set<std::uint32_t> host_addrs;
  for (std::uint32_t id = 0; id < t.hosts().size(); ++id) {
    const auto& h = t.host(id);
    if (!host_addrs.insert(h.addr.value).second) {
      return format("duplicate host address %s", h.addr.to_string().c_str());
    }
    if (iface_addrs.count(h.addr.value) > 0) {
      return format("host address %s collides with an interface address",
                    h.addr.to_string().c_str());
    }
    auto found = t.host_by_addr(h.addr);
    if (!found || *found != id) {
      return format("host_by_addr(%s) != host id %u",
                    h.addr.to_string().c_str(), id);
    }
  }
  return "";
}

// Union-find over router indices.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

std::string check_intra_as_connected(const GeneratorConfig& cfg) {
  gen::World w = gen::generate_world(cfg);
  const topo::Topology& t = *w.topo;

  UnionFind uf(t.routers().size());
  for (const auto& l : t.links()) {
    if (l.kind != topo::LinkKind::kInternal) continue;
    uf.unite(t.iface(l.side_a).router.index(), t.iface(l.side_b).router.index());
  }
  for (topo::Asn asn : t.all_asns()) {
    const auto& routers = t.routers_of(asn);
    if (routers.size() < 2) continue;
    std::size_t root = uf.find(routers.front().index());
    for (topo::RouterId r : routers) {
      if (uf.find(r.index()) != root) {
        return format("AS%u intra-AS graph is disconnected (router '%s' "
                      "unreachable from '%s' over internal links)",
                      asn, t.router(r).name.c_str(),
                      t.router(routers.front()).name.c_str());
      }
    }
  }
  return "";
}

std::string check_link_endpoints(const GeneratorConfig& cfg) {
  gen::World w = gen::generate_world(cfg);
  const topo::Topology& t = *w.topo;

  for (const auto& l : t.links()) {
    const auto& ia = t.iface(l.side_a);
    const auto& ib = t.iface(l.side_b);
    if (!(ia.link == l.id) || !(ib.link == l.id)) {
      return format("link %u: side interface does not point back at it",
                    l.id.value);
    }
    if (t.router(ia.router).owner != l.as_a ||
        t.router(ib.router).owner != l.as_b) {
      return format("link %u: endpoint router owners (%u, %u) disagree with "
                    "link ASes (%u, %u)",
                    l.id.value, t.router(ia.router).owner,
                    t.router(ib.router).owner, l.as_a, l.as_b);
    }
    if (l.kind == topo::LinkKind::kInternal && l.as_a != l.as_b) {
      return format("internal link %u spans AS%u and AS%u", l.id.value,
                    l.as_a, l.as_b);
    }
    if (l.kind == topo::LinkKind::kInterdomain && l.as_a == l.as_b) {
      return format("interdomain link %u has both sides in AS%u", l.id.value,
                    l.as_a);
    }
    if (l.via_ixp) {
      if (l.kind != topo::LinkKind::kInterdomain) {
        return format("internal link %u claims via_ixp", l.id.value);
      }
      if (!t.is_ixp_addr(ia.addr) || !t.is_ixp_addr(ib.addr)) {
        return format("IXP link %u numbered outside the IXP prefixes",
                      l.id.value);
      }
    } else {
      for (const auto* i : {&ia, &ib}) {
        if (i->addr_owner != l.as_a && i->addr_owner != l.as_b) {
          return format("link %u: interface %s numbered from AS%u, which is "
                        "on neither side",
                        l.id.value, i->addr.to_string().c_str(),
                        i->addr_owner);
        }
      }
    }
    if (!(l.capacity_mbps > 0.0) || l.prop_delay_ms < 0.0) {
      return format("link %u: non-positive capacity or negative delay",
                    l.id.value);
    }
  }
  return "";
}

// Named-border-interface count of a world generated from cfg.
std::size_t named_border_ifaces(const GeneratorConfig& cfg) {
  gen::World w = gen::generate_world(cfg);
  const topo::Topology& t = *w.topo;
  std::size_t named = 0;
  for (const auto& l : t.links()) {
    if (l.kind != topo::LinkKind::kInterdomain) continue;
    for (topo::InterfaceId side : {l.side_a, l.side_b}) {
      if (!t.iface(side).dns_name.empty()) ++named;
    }
  }
  return named;
}

std::string check_profile_fractions(const GeneratorConfig& cfg) {
  gen::World w = gen::generate_world(cfg);
  const topo::Topology& t = *w.topo;
  const topo::RelationshipTable& rels = t.relationships();

  // The IXP knob is an upper bound on the realized fraction: a peer link
  // only lands on a fabric when its city hosts one and the fabric still has
  // addresses, and parallel links share one decision (clusters of up to 9).
  std::size_t peer_links = 0, ixp_links = 0;
  for (const auto& l : t.links()) {
    if (l.kind != topo::LinkKind::kInterdomain) continue;
    if (rels.between(l.as_a, l.as_b) == topo::RelType::kPeer) {
      ++peer_links;
      if (l.via_ixp) ++ixp_links;
    }
  }
  if (peer_links >= 30) {
    double p = cfg.ixp_peer_fraction;
    double observed =
        static_cast<double>(ixp_links) / static_cast<double>(peer_links);
    double sigma =
        std::sqrt(p * (1.0 - p) * 9.0 / static_cast<double>(peer_links));
    if (observed > p + 4.0 * sigma + 10.0 / static_cast<double>(peer_links)) {
      return format("ixp_peer_fraction: observed %.4f exceeds the %.4f "
                    "upper bound",
                    observed, p);
    }
  }
  GeneratorConfig no_ixp = cfg;
  no_ixp.ixp_peer_fraction = 0.0;
  {
    gen::World w0 = gen::generate_world(no_ixp);
    for (const auto& l : w0.topo->links()) {
      if (l.via_ixp) return "ixp_peer_fraction=0 still produced IXP links";
    }
  }

  // Staleness fires only for ASes that already have siblings, so the knob
  // bounds the realized rate from above; every stale origin must still be
  // a sibling of the true owner.
  std::size_t announced = 0, stale = 0;
  for (const auto& [prefix, origin] : t.announced_prefixes()) {
    ++announced;
    auto owner = t.true_owner(prefix.network);
    if (owner && *owner != origin) {
      ++stale;
      if (!(t.as_info(*owner).org == t.as_info(origin).org)) {
        return format("prefix %s announced by AS%u, which is not a sibling "
                      "of owner AS%u",
                      prefix.to_string().c_str(), origin, *owner);
      }
    }
  }
  if (announced >= 30) {
    double p = cfg.announce_staleness;
    double observed =
        static_cast<double>(stale) / static_cast<double>(announced);
    double sigma = std::sqrt(p * (1.0 - p) / static_cast<double>(announced));
    if (observed > p + 4.0 * sigma + 6.0 / static_cast<double>(announced)) {
      return format("announce_staleness: observed %.4f exceeds the %.4f "
                    "upper bound",
                    observed, p);
    }
  }
  GeneratorConfig fresh = cfg;
  fresh.announce_staleness = 0.0;
  {
    gen::World w0 = gen::generate_world(fresh);
    for (const auto& [prefix, origin] : w0.topo->announced_prefixes()) {
      auto owner = w0.topo->true_owner(prefix.network);
      if (owner && *owner != origin) {
        return "announce_staleness=0 still produced stale origins";
      }
    }
  }

  // PTR coverage is heterogeneous per AS type, so the knob is checked
  // metamorphically: zero strips every record, and raising it (same seed,
  // same draw stream) can only add names.
  GeneratorConfig none = cfg;
  none.dns_ptr_coverage = 0.0;
  if (named_border_ifaces(none) != 0) {
    return "dns_ptr_coverage=0 still produced PTR records";
  }
  GeneratorConfig all = cfg;
  all.dns_ptr_coverage = 1.0;
  std::size_t base = named_border_ifaces(cfg);
  std::size_t raised = named_border_ifaces(all);
  if (raised < base) {
    return format("raising dns_ptr_coverage %.3f -> 1.0 lost PTR records "
                  "(%zu -> %zu)",
                  cfg.dns_ptr_coverage, base, raised);
  }
  // At full coverage the per-AS probability saturates for transit ASes, and
  // every world has transit-adjacent interdomain links — so a knob that is
  // wired up at all must name a strictly positive number of interfaces.
  if (raised == 0) {
    return "dns_ptr_coverage=1.0 named zero border interfaces (knob not "
           "wired to the generator?)";
  }
  return "";
}

std::string check_relationships_symmetric(const GeneratorConfig& cfg) {
  gen::World w = gen::generate_world(cfg);
  const topo::Topology& t = *w.topo;
  const topo::RelationshipTable& rels = t.relationships();

  for (topo::Asn a : t.all_asns()) {
    for (const auto& [b, rel] : rels.neighbors(a)) {
      if (rels.between(a, b) != rel) {
        return format("neighbors(%u) lists AS%u with a different relationship "
                      "than between()",
                      a, b);
      }
      if (rels.between(b, a) != topo::invert(rel)) {
        return format("relationship AS%u->AS%u is not the inverse of "
                      "AS%u->AS%u",
                      b, a, a, b);
      }
    }
  }
  for (const auto& l : t.links()) {
    if (l.kind != topo::LinkKind::kInterdomain) continue;
    if (!rels.adjacent(l.as_a, l.as_b)) {
      return format("interdomain link %u between AS%u and AS%u has no "
                    "declared relationship",
                    l.id.value, l.as_a, l.as_b);
    }
  }
  for (const auto& [name, asns] : w.isp_asns) {
    if (asns.empty()) return format("ISP '%s' has no ASNs", name.c_str());
    topo::OrgId org = t.as_info(asns.front()).org;
    for (topo::Asn sibling : asns) {
      if (!(t.as_info(sibling).org == org)) {
        return format("ISP '%s' siblings span multiple orgs", name.c_str());
      }
    }
  }
  return "";
}

std::string check_schedule_sorted(const GeneratorConfig& cfg) {
  gen::World w = gen::generate_world(cfg);
  util::Rng rng(cfg.seed ^ 0x5c4ed01eull);
  gen::WorkloadConfig wl;
  wl.days = static_cast<int>(rng.uniform_int(1, 7));
  wl.mean_tests_per_client = rng.uniform(0.5, 6.0);
  wl.diurnal_bias = rng.chance(0.7);
  wl.repeat_session_prob = rng.uniform(0.0, 0.5);
  auto schedule = gen::crowdsourced_schedule(w, w.clients, wl, rng);

  std::unordered_set<std::uint32_t> known(w.clients.begin(), w.clients.end());
  double horizon = wl.days * 24.0;
  double prev = 0.0;
  for (const auto& req : schedule) {
    if (req.utc_time_hours < prev) {
      return format("schedule not time-sorted at t=%.4f (previous %.4f)",
                    req.utc_time_hours, prev);
    }
    prev = req.utc_time_hours;
    if (req.utc_time_hours < 0.0 || req.utc_time_hours > horizon) {
      return format("test time %.4f outside the %d-day window",
                    req.utc_time_hours, wl.days);
    }
    if (known.count(req.client) == 0) {
      return format("schedule references client %u outside the input set",
                    req.client);
    }
  }
  return "";
}

Property world_property(const char* name, const char* summary, int iters,
                        std::string (*fn)(const GeneratorConfig&)) {
  Property p;
  p.name = name;
  p.family = "gen";
  p.summary = summary;
  p.default_iterations = iters;
  std::string pname = p.name;
  p.run = [pname, fn](util::pbt::Config cfg) {
    return util::pbt::check<GeneratorConfig>(pname, config_domain(), fn, cfg);
  };
  return p;
}

}  // namespace

void register_gen_properties(std::vector<Property>& out) {
  out.push_back(world_property(
      "gen.addresses_unique",
      "no duplicate interface/host addresses; by-address lookups roundtrip",
      10, check_addresses_unique));
  out.push_back(world_property(
      "gen.intra_as_connected",
      "every AS's routers form one component over internal links", 10,
      check_intra_as_connected));
  out.push_back(world_property(
      "gen.link_endpoints_consistent",
      "link/interface backrefs, AS sides, IXP numbering, capacities", 10,
      check_link_endpoints));
  out.push_back(world_property(
      "gen.profile_fractions_in_bounds",
      "ixp/dns/staleness knobs land within statistical bounds", 10,
      check_profile_fractions));
  out.push_back(world_property(
      "gen.relationships_symmetric",
      "AS relationships invert pairwise; ISP siblings share an org", 10,
      check_relationships_symmetric));
  out.push_back(world_property(
      "gen.schedule_sorted_and_bounded",
      "crowdsourced schedules are sorted, in-window, and client-closed", 10,
      check_schedule_sorted));
}

}  // namespace netcong::check
