#pragma once

// AS business relationships (CAIDA AS-rank style): customer-to-provider and
// settlement-free peering, plus sibling detection via shared organization.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "topo/ids.h"

namespace netcong::topo {

enum class RelType {
  kNone,        // not adjacent
  kCustomer,    // a is a customer of b
  kProvider,    // a is a provider of b
  kPeer,        // settlement-free or paid peering
};

const char* rel_type_name(RelType r);

// Inverts the relationship direction (customer <-> provider).
RelType invert(RelType r);

class RelationshipTable {
 public:
  // Declares `customer` a customer of `provider`. Overwrites any previous
  // relationship between the pair.
  void add_customer(Asn customer, Asn provider);
  void add_peer(Asn a, Asn b);

  // Relationship of a toward b.
  RelType between(Asn a, Asn b) const;
  bool adjacent(Asn a, Asn b) const { return between(a, b) != RelType::kNone; }

  // All neighbors of `a` with the relationship of `a` toward each.
  const std::vector<std::pair<Asn, RelType>>& neighbors(Asn a) const;

  std::size_t edge_count() const { return edges_.size(); }

 private:
  static std::uint64_t key(Asn a, Asn b) {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }
  void set(Asn a, Asn b, RelType rel);

  // Directed: edges_[key(a,b)] = relationship of a toward b.
  std::unordered_map<std::uint64_t, RelType> edges_;
  std::unordered_map<Asn, std::vector<std::pair<Asn, RelType>>> adj_;
  std::vector<std::pair<Asn, RelType>> empty_;
};

}  // namespace netcong::topo
