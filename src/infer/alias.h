#pragma once

// Alias resolution: grouping interface addresses into routers. Real tools
// (Mercator/Ally/MIDAR-style probing, which bdrmap runs from the VP) are
// substituted by a simulated resolver that consults topology ground truth
// but succeeds only with a configurable probability per interface —
// unresolved interfaces appear as singleton routers, exactly the failure
// mode that inflates router-level counts in practice. The success decision
// is a deterministic hash of (seed, address), so results are reproducible
// and consistent across calls.

#include <cstdint>

#include "topo/topology.h"

namespace netcong::infer {

class AliasResolver {
 public:
  AliasResolver(const topo::Topology& topo, double success_prob,
                std::uint64_t seed);

  // Opaque router-group token for the interface address. Addresses that
  // resolve to the same router share a token; unresolved or unknown
  // addresses get a unique per-address token.
  std::uint64_t group(topo::IpAddr addr) const;

  double success_prob() const { return success_prob_; }

 private:
  const topo::Topology* topo_;
  double success_prob_;
  std::uint64_t seed_;
};

}  // namespace netcong::infer
