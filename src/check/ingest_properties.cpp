#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <vector>

#include "check/fixtures.h"
#include "check/properties.h"
#include "infer/alias.h"
#include "infer/bdrmap.h"
#include "infer/datasets.h"
#include "infer/mapit.h"
#include "measure/ndt.h"
#include "serve/event.h"
#include "serve/ndt_stats.h"
#include "serve/service.h"
#include "serve/wal.h"
#include "util/strings.h"

// The ingest family (DESIGN.md §11/§12): the always-on service's snapshots
// must be bit-identical to a batch run over the same event-log prefix — for
// any producer interleaving and any shard count — its queue accounting must
// conserve events under both overflow policies, crash recovery from the WAL
// must replay exactly the surviving log prefix, and evidence eviction must
// be a deterministic function of the stream position.

namespace netcong::check {
namespace {

using gen::GeneratorConfig;
using util::format;

// The batch reference: feed the first `prefix` events of the log through
// run_mapit / borders_from_mapit / NdtStreamStats directly, with no queues
// or threads involved, and digest the result exactly as snapshot() does.
serve::ServiceSnapshot batch_snapshot(
    const std::vector<serve::IngestEvent>& log, std::size_t prefix,
    const infer::Ip2As& ip2as, const infer::OrgMap& orgs, topo::Asn vp_as,
    const topo::RelationshipTable* rels, const infer::AliasResolver* aliases,
    const infer::MapItConfig& mapit_cfg) {
  std::vector<measure::TracerouteRecord> traces;
  serve::ServiceSnapshot snap;
  for (std::size_t i = 0; i < prefix && i < log.size(); ++i) {
    if (const auto* t = std::get_if<measure::NdtRecord>(&log[i])) {
      snap.ndt.add(*t);
    } else {
      traces.push_back(std::get<measure::TracerouteRecord>(log[i]));
    }
  }
  snap.events_consumed = std::min(prefix, log.size());
  snap.ndt_tests = snap.ndt.tests();
  snap.mapit = infer::run_mapit(traces, ip2as, orgs, mapit_cfg);
  snap.traces = snap.mapit.coverage.traces_total;
  if (rels != nullptr && aliases != nullptr) {
    snap.borders =
        infer::borders_from_mapit(snap.mapit, vp_as, orgs, *rels, *aliases);
  }
  snap.fingerprint = serve::snapshot_fingerprint(snap);
  return snap;
}

std::string check_snapshot_equals_batch(const GeneratorConfig& cfg) {
  Stack s(cfg);
  const topo::Topology& t = *s.world.topo;
  infer::Ip2As ip2as(t);
  infer::OrgMap orgs(t);
  infer::AliasResolver aliases(t, 0.9, cfg.seed);

  auto schedule = dense_schedule(s.world, 2);
  measure::NdtCampaign campaign(s.world, s.fwd, s.model, s.mlab,
                                measure::CampaignConfig{});
  util::Rng rng(cfg.seed ^ 0x16e57ull);
  auto log = serve::event_log_from(campaign.run(schedule, rng));

  // The columnar engine must derive the identical event log (same events,
  // same order, same bytes) — replay sources are interchangeable.
  util::Rng rng2(cfg.seed ^ 0x16e57ull);
  auto log_col = serve::event_log_from(campaign.run_columnar(schedule, rng2));
  if (serve::fingerprint(log, log.size()) !=
      serve::fingerprint(log_col, log_col.size())) {
    return "classic and columnar campaigns derived different event logs";
  }

  topo::Asn vp_as =
      s.world.ark_vps.empty() ? 0 : t.host(s.world.ark_vps[0]).asn;
  bool with_borders = !s.world.ark_vps.empty();

  util::Rng pick(cfg.seed ^ 0x9e1ec7ull);
  std::size_t prefix = static_cast<std::size_t>(
      pick.uniform_int(0, static_cast<std::int64_t>(log.size())));

  serve::ServiceSnapshot batch = batch_snapshot(
      log, prefix, ip2as, orgs, vp_as,
      with_borders ? &t.relationships() : nullptr,
      with_borders ? &aliases : nullptr, infer::MapItConfig{});

  const std::size_t shard_counts[] = {1, 2, 0};  // 0 = hardware threads
  for (std::size_t shards : shard_counts) {
    serve::ServeConfig scfg;
    scfg.shards = shards;
    scfg.queue_capacity = 64;  // small enough that kBlock engages
    scfg.policy = serve::OverflowPolicy::kBlock;
    scfg.vp_as = vp_as;
    serve::IngestService svc(ip2as, orgs, scfg);
    if (with_borders) svc.set_relationships(&t.relationships(), &aliases);
    svc.start();

    // A fresh random submission interleaving per shard count: the snapshot
    // must not depend on producer order, only on the event set.
    std::vector<std::size_t> order(prefix);
    for (std::size_t i = 0; i < prefix; ++i) order[i] = i;
    util::Rng shuffle = pick.fork(shards + 1);
    for (std::size_t i = order.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(
          shuffle.uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(order[i - 1], order[j]);
    }
    for (std::size_t idx : order) {
      if (!svc.submit(log[idx])) {
        return format("shards=%zu: kBlock submit rejected event %zu", shards,
                      idx);
      }
    }

    serve::ServiceSnapshot snap = svc.snapshot();
    if (snap.fingerprint != batch.fingerprint) {
      return format("shards=%zu prefix=%zu/%zu: snapshot fingerprint "
                    "%016llx != batch %016llx",
                    shards, prefix, log.size(),
                    static_cast<unsigned long long>(snap.fingerprint),
                    static_cast<unsigned long long>(batch.fingerprint));
    }
    // A second snapshot with no new events is the same snapshot.
    serve::ServiceSnapshot again = svc.snapshot();
    if (again.fingerprint != snap.fingerprint) {
      return format("shards=%zu: back-to-back snapshots differ", shards);
    }
    svc.stop();
  }
  return "";
}

std::string check_drop_policy_accounting(const GeneratorConfig& cfg) {
  Stack s(cfg);
  infer::Ip2As ip2as(*s.world.topo);
  infer::OrgMap orgs(*s.world.topo);

  auto schedule = dense_schedule(s.world, 2);
  measure::NdtCampaign campaign(s.world, s.fwd, s.model, s.mlab,
                                measure::CampaignConfig{});
  util::Rng rng(cfg.seed ^ 0xacc7ull);
  auto log = serve::event_log_from(campaign.run(schedule, rng));
  if (log.empty()) return "";

  const serve::OverflowPolicy policies[] = {serve::OverflowPolicy::kBlock,
                                            serve::OverflowPolicy::kDrop};
  for (serve::OverflowPolicy policy : policies) {
    serve::ServeConfig scfg;
    scfg.shards = 2;
    // A tiny queue plus a slowed consumer makes overflow certain under
    // kDrop and backpressure certain under kBlock.
    scfg.queue_capacity = 2;
    scfg.consume_delay_us = 20;
    scfg.policy = policy;
    serve::IngestService svc(ip2as, orgs, scfg);
    svc.start();

    std::uint64_t accepted = 0;
    for (const auto& ev : log) {
      if (svc.submit(ev)) ++accepted;
    }
    svc.flush();

    serve::ServiceCounters c = svc.counters();
    const char* pname = serve::overflow_policy_name(policy);
    if (c.submitted != log.size()) {
      return format("%s: submitted %llu != %zu events", pname,
                    static_cast<unsigned long long>(c.submitted), log.size());
    }
    if (c.enqueued != accepted) {
      return format("%s: enqueued %llu != %llu accepted submits", pname,
                    static_cast<unsigned long long>(c.enqueued),
                    static_cast<unsigned long long>(accepted));
    }
    if (c.submitted != c.enqueued + c.dropped) {
      return format("%s: submitted %llu != enqueued %llu + dropped %llu",
                    pname, static_cast<unsigned long long>(c.submitted),
                    static_cast<unsigned long long>(c.enqueued),
                    static_cast<unsigned long long>(c.dropped));
    }
    if (c.consumed != c.enqueued) {
      return format("%s: after flush, consumed %llu != enqueued %llu", pname,
                    static_cast<unsigned long long>(c.consumed),
                    static_cast<unsigned long long>(c.enqueued));
    }
    if (policy == serve::OverflowPolicy::kBlock && c.dropped != 0) {
      return format("kBlock dropped %llu events",
                    static_cast<unsigned long long>(c.dropped));
    }
    // The consumed prefix is what snapshots see: the snapshot's event count
    // must equal the conserved enqueued count, not the submitted count.
    serve::ServiceSnapshot snap = svc.snapshot();
    if (snap.events_consumed != c.enqueued) {
      return format("%s: snapshot covers %llu events, %llu were enqueued",
                    pname,
                    static_cast<unsigned long long>(snap.events_consumed),
                    static_cast<unsigned long long>(c.enqueued));
    }
    svc.stop();
  }
  return "";
}

// Scratch directory for WAL properties; removed on scope exit. The name
// never influences results, so uniqueness (pid + counter) is all it needs.
struct TempDir {
  std::string path;
  explicit TempDir(std::uint64_t seed) {
    static std::atomic<std::uint64_t> counter{0};
    path = (std::filesystem::temp_directory_path() /
            format("netcong-wal-%d-%llu-%llu", static_cast<int>(::getpid()),
                   static_cast<unsigned long long>(seed),
                   static_cast<unsigned long long>(counter.fetch_add(1))))
               .string();
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

// Shared fixture for the WAL properties: world + event log + the tables the
// batch reference needs.
struct WalStack {
  Stack s;
  infer::Ip2As ip2as;
  infer::OrgMap orgs;
  infer::AliasResolver aliases;
  std::vector<serve::IngestEvent> log;
  topo::Asn vp_as = 0;
  bool with_borders = false;

  explicit WalStack(const GeneratorConfig& cfg)
      : s(cfg),
        ip2as(*s.world.topo),
        orgs(*s.world.topo),
        aliases(*s.world.topo, 0.9, cfg.seed) {
    auto schedule = dense_schedule(s.world, 2);
    measure::NdtCampaign campaign(s.world, s.fwd, s.model, s.mlab,
                                  measure::CampaignConfig{});
    util::Rng rng(cfg.seed ^ 0x3a1ull);
    log = serve::event_log_from(campaign.run(schedule, rng));
    vp_as = s.world.ark_vps.empty()
                ? 0
                : s.world.topo->host(s.world.ark_vps[0]).asn;
    with_borders = !s.world.ark_vps.empty();
  }

  serve::ServiceSnapshot batch(const std::vector<serve::IngestEvent>& events,
                               std::size_t prefix) const {
    return batch_snapshot(events, prefix, ip2as, orgs, vp_as,
                          with_borders ? &s.world.topo->relationships()
                                       : nullptr,
                          with_borders ? &aliases : nullptr,
                          infer::MapItConfig{});
  }

  // Replays `events` through a fresh service and returns the snapshot.
  serve::ServiceSnapshot replay(const std::vector<serve::IngestEvent>& events,
                                std::size_t shards, std::string* error) const {
    serve::ServeConfig scfg;
    scfg.shards = shards;
    scfg.queue_capacity = 64;
    scfg.policy = serve::OverflowPolicy::kBlock;
    scfg.vp_as = vp_as;
    serve::IngestService svc(ip2as, orgs, scfg);
    if (with_borders) {
      svc.set_relationships(&s.world.topo->relationships(), &aliases);
    }
    svc.start();
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (!svc.submit(events[i])) {
        *error = format("replay shards=%zu: submit rejected event %zu",
                        shards, i);
        return {};
      }
    }
    return svc.drain_and_stop();
  }
};

// Frames that end at or before `limit` bytes into the segment file — the
// records recovery is guaranteed to keep when corruption lands at `limit`
// or later.
std::size_t frames_before(const std::string& path, std::uint64_t limit) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return 0;
  std::vector<std::uint8_t> data((std::istreambuf_iterator<char>(in)),
                                 std::istreambuf_iterator<char>());
  if (data.size() < serve::kWalMagicBytes || limit < serve::kWalMagicBytes) {
    return 0;
  }
  std::size_t off = serve::kWalMagicBytes;
  std::size_t n = 0;
  while (off < data.size()) {
    serve::FrameView frame;
    std::size_t consumed = 0;
    if (serve::parse_frame(data.data() + off, data.size() - off, &frame,
                           &consumed) != serve::FrameError::kNone) {
      break;
    }
    if (off + consumed > limit) break;
    off += consumed;
    ++n;
  }
  return n;
}

// A crashed daemon restarts from its WAL: recovery must yield an exact
// prefix of the event log, and replaying it — for any shard count — must be
// bit-identical to a batch run over that prefix. The crash is simulated by
// truncating the newest segment at a random byte offset, which covers both
// a clean shutdown (cut at EOF) and a mid-frame torn write.
std::string check_wal_recovery_equals_batch(const GeneratorConfig& cfg) {
  WalStack w(cfg);
  if (w.log.empty()) return "";
  util::Rng pick(cfg.seed ^ 0x7a15ull);
  std::size_t prefix = static_cast<std::size_t>(
      pick.uniform_int(1, static_cast<std::int64_t>(w.log.size())));

  TempDir dir(cfg.seed);
  {
    // Feed the live path: a service with an attached writer, one producer,
    // so the on-disk order is the log order.
    serve::WalWriter writer;
    serve::WalOptions wopt;
    wopt.segment_bytes = 4096;  // small: several segments, rotation covered
    util::Status st = writer.open(dir.path, wopt);
    if (!st.ok()) return "wal open: " + st.error();
    serve::ServeConfig scfg;
    scfg.shards = 2;
    scfg.queue_capacity = 64;
    scfg.vp_as = w.vp_as;
    serve::IngestService svc(w.ip2as, w.orgs, scfg);
    svc.attach_wal(&writer);
    svc.start();
    for (std::size_t i = 0; i < prefix; ++i) {
      if (!svc.submit(w.log[i])) {
        return format("durable submit rejected event %zu", i);
      }
    }
    (void)svc.drain_and_stop();
    serve::ServiceCounters c = svc.counters();
    if (c.wal_rejected != 0) {
      return format("wal rejected %llu events with no faults",
                    static_cast<unsigned long long>(c.wal_rejected));
    }
  }

  // The crash: the tail of the newest segment never made it to disk.
  std::vector<std::string> segments = serve::wal_segments(dir.path);
  if (segments.empty()) return "no wal segments written";
  std::error_code ec;
  std::uint64_t size = std::filesystem::file_size(segments.back(), ec);
  std::uint64_t cut = static_cast<std::uint64_t>(
      pick.uniform_int(0, static_cast<std::int64_t>(size)));
  std::filesystem::resize_file(segments.back(), cut, ec);
  if (ec) return "resize_file: " + ec.message();
  std::size_t survivors = 0;
  for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
    survivors += frames_before(segments[i],
                               std::numeric_limits<std::uint64_t>::max());
  }
  survivors += frames_before(segments.back(), cut);

  util::Result<serve::WalRecovery> rec = serve::recover_wal(dir.path, true);
  if (!rec.ok()) return "recover_wal: " + rec.error();
  std::size_t n = rec->events.size();
  if (n > prefix) return format("recovered %zu > %zu written", n, prefix);
  if (n != survivors) {
    return format("recovered %zu events, %zu frames survive the cut", n,
                  survivors);
  }
  if (cut >= size && n != prefix) {
    return format("uncut log recovered %zu of %zu events", n, prefix);
  }
  if (serve::fingerprint(rec->events, n) != serve::fingerprint(w.log, n)) {
    return format("recovered events are not the log prefix (n=%zu)", n);
  }
  // Repair left a log a fresh scan reads back clean.
  util::Result<serve::WalRecovery> rescan = serve::recover_wal(dir.path,
                                                               false);
  if (!rescan.ok()) return "rescan: " + rescan.error();
  if (rescan->truncated_tail || rescan->events.size() != n) {
    return format("post-repair rescan dirty (tail=%d, %zu != %zu)",
                  rescan->truncated_tail ? 1 : 0, rescan->events.size(), n);
  }

  // Replay across shard counts: each must equal the batch reference over
  // the surviving prefix, bit for bit.
  serve::ServiceSnapshot batch = w.batch(w.log, n);
  const std::size_t shard_counts[] = {1, 2, 0};
  for (std::size_t shards : shard_counts) {
    std::string error;
    serve::ServiceSnapshot snap = w.replay(rec->events, shards, &error);
    if (!error.empty()) return error;
    if (snap.fingerprint != batch.fingerprint) {
      return format("shards=%zu: recovered snapshot %016llx != batch %016llx "
                    "over %zu surviving events",
                    shards, static_cast<unsigned long long>(snap.fingerprint),
                    static_cast<unsigned long long>(batch.fingerprint), n);
    }
  }

  // The repaired log accepts appends: a reopened writer lands in a fresh
  // segment and the next recovery sees old + new.
  if (n < w.log.size()) {
    serve::WalWriter writer;
    util::Status st = writer.open(dir.path, serve::WalOptions{});
    if (!st.ok()) return "reopen: " + st.error();
    st = writer.append(w.log[n]);
    if (!st.ok()) return "append after repair: " + st.error();
    writer.close();
    util::Result<serve::WalRecovery> rec2 = serve::recover_wal(dir.path,
                                                               true);
    if (!rec2.ok()) return "recover after append: " + rec2.error();
    if (rec2->events.size() != n + 1 ||
        serve::fingerprint(rec2->events, n + 1) !=
            serve::fingerprint(w.log, n + 1)) {
      return format("append after repair lost events (%zu != %zu)",
                    rec2->events.size(), n + 1);
    }
  }
  return "";
}

// Arbitrary single-bit corruption anywhere in the log — headers, payloads,
// even the segment magic — must never crash recovery, and must yield an
// exact log prefix that keeps at least every frame ending before the
// flipped byte's frame.
std::string check_wal_torn_tail(const GeneratorConfig& cfg) {
  WalStack w(cfg);
  if (w.log.empty()) return "";
  TempDir dir(cfg.seed);
  {
    serve::WalWriter writer;
    serve::WalOptions wopt;
    wopt.segment_bytes = 2048;
    util::Status st = writer.open(dir.path, wopt);
    if (!st.ok()) return "wal open: " + st.error();
    for (const serve::IngestEvent& ev : w.log) {
      st = writer.append(ev);
      if (!st.ok()) return "append: " + st.error();
    }
    writer.close();
  }

  // Uncorrupted, the disk round-trip is bit-exact: codec encode/decode is
  // the identity on the event stream.
  util::Result<serve::WalRecovery> clean = serve::recover_wal(dir.path,
                                                              false);
  if (!clean.ok()) return "clean recover: " + clean.error();
  if (clean->truncated_tail || clean->events.size() != w.log.size() ||
      serve::fingerprint(clean->events, clean->events.size()) !=
          serve::fingerprint(w.log, w.log.size())) {
    return format("clean round-trip mismatch: %zu events vs %zu written",
                  clean->events.size(), w.log.size());
  }

  // Flip one random bit in one random segment.
  std::vector<std::string> segments = serve::wal_segments(dir.path);
  if (segments.empty()) return "no wal segments";
  util::Rng pick(cfg.seed ^ 0xf11bull);
  std::size_t si = static_cast<std::size_t>(
      pick.uniform_int(0, static_cast<std::int64_t>(segments.size()) - 1));
  std::error_code ec;
  std::uint64_t size = std::filesystem::file_size(segments[si], ec);
  if (size == 0) return "empty segment";
  std::uint64_t at = static_cast<std::uint64_t>(
      pick.uniform_int(0, static_cast<std::int64_t>(size) - 1));
  int bit = static_cast<int>(pick.uniform_int(0, 7));
  {
    std::fstream f(segments[si],
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(static_cast<std::streamoff>(at));
    char byte = 0;
    f.get(byte);
    byte = static_cast<char>(byte ^ (1 << bit));
    f.seekp(static_cast<std::streamoff>(at));
    f.put(byte);
  }

  // Every frame that ends strictly before the flipped byte must survive;
  // a flip inside the magic voids the whole segment.
  std::size_t guaranteed = 0;
  for (std::size_t i = 0; i < si; ++i) {
    guaranteed += frames_before(segments[i],
                                std::numeric_limits<std::uint64_t>::max());
  }
  if (at >= serve::kWalMagicBytes) guaranteed += frames_before(segments[si], at);

  util::Result<serve::WalRecovery> rec = serve::recover_wal(dir.path, true);
  if (!rec.ok()) return "recover after flip: " + rec.error();
  std::size_t n = rec->events.size();
  if (n > w.log.size()) return format("recovered %zu > written", n);
  if (n < guaranteed) {
    return format("flip at seg %zu offset %llu lost pre-flip frames: "
                  "recovered %zu < guaranteed %zu",
                  si, static_cast<unsigned long long>(at), n, guaranteed);
  }
  if (serve::fingerprint(rec->events, n) != serve::fingerprint(w.log, n)) {
    return format("post-flip recovery is not a log prefix (n=%zu)", n);
  }
  if (!rec->truncated_tail) {
    // A flip the scan never tripped over can only mean the CRC of some
    // frame still matched — with full-frame coverage that is a broken
    // checksum, not luck.
    return format("bit flip at seg %zu offset %llu went undetected", si,
                  static_cast<unsigned long long>(at));
  }
  // The repaired log is clean and still appendable.
  util::Result<serve::WalRecovery> rescan = serve::recover_wal(dir.path,
                                                               false);
  if (!rescan.ok()) return "rescan: " + rescan.error();
  if (rescan->truncated_tail || rescan->events.size() != n) {
    return "post-repair rescan dirty";
  }
  serve::WalWriter writer;
  util::Status st = writer.open(dir.path, serve::WalOptions{});
  if (!st.ok()) return "reopen after repair: " + st.error();
  st = writer.append(w.log[0]);
  if (!st.ok()) return "append after repair: " + st.error();
  writer.close();
  util::Result<serve::WalRecovery> rec2 = serve::recover_wal(dir.path, true);
  if (!rec2.ok()) return "final recover: " + rec2.error();
  if (rec2->events.size() != n + 1) {
    return format("append after flip repair: %zu != %zu", rec2->events.size(),
                  n + 1);
  }
  return "";
}

// Eviction is deterministic: the watermark is a pure function of the
// stream position and the retention config — never wall clock — so a
// snapshot under retention equals a batch run over the retained suffix,
// for any shard count, and taking extra snapshots mid-stream changes
// nothing about the final state.
std::string check_eviction_watermark(const GeneratorConfig& cfg) {
  WalStack w(cfg);
  std::size_t n = w.log.size();
  if (n < 8) return "";
  util::Rng pick(cfg.seed ^ 0xe51cull);
  std::uint64_t epoch_events =
      static_cast<std::uint64_t>(pick.uniform_int(4, 64));
  std::uint64_t retain = static_cast<std::uint64_t>(pick.uniform_int(1, 4));
  std::uint64_t last_epoch = (n - 1) / epoch_events;
  std::uint64_t wm_epoch =
      last_epoch + 1 > retain ? last_epoch + 1 - retain : 0;
  std::uint64_t watermark = wm_epoch * epoch_events;

  std::vector<serve::IngestEvent> suffix(
      w.log.begin() + static_cast<std::ptrdiff_t>(watermark), w.log.end());
  serve::ServiceSnapshot batch = w.batch(suffix, suffix.size());

  const std::size_t shard_counts[] = {1, 2, 0};
  for (std::size_t shards : shard_counts) {
    serve::ServeConfig scfg;
    scfg.shards = shards;
    scfg.queue_capacity = 64;
    scfg.vp_as = w.vp_as;
    scfg.epoch_events = epoch_events;
    scfg.retain_epochs = retain;
    serve::IngestService svc(w.ip2as, w.orgs, scfg);
    if (w.with_borders) {
      svc.set_relationships(&w.s.world.topo->relationships(), &w.aliases);
    }
    svc.start();
    // In-order submission: seq == log index, so the watermark is a log
    // offset. A mid-stream snapshot on one shard count proves history
    // independence: early eviction must not change the final state.
    for (std::size_t i = 0; i < n; ++i) {
      if (!svc.submit(w.log[i])) {
        return format("shards=%zu: submit rejected event %zu", shards, i);
      }
      if (shards == 2 && i == n / 2) (void)svc.snapshot();
    }
    serve::ServiceSnapshot snap = svc.drain_and_stop();
    if (snap.events_total != n) {
      return format("shards=%zu: events_total %llu != %zu", shards,
                    static_cast<unsigned long long>(snap.events_total), n);
    }
    if (snap.eviction_watermark != watermark) {
      return format("shards=%zu: watermark %llu != expected %llu (E=%llu "
                    "R=%llu N=%zu)",
                    shards,
                    static_cast<unsigned long long>(snap.eviction_watermark),
                    static_cast<unsigned long long>(watermark),
                    static_cast<unsigned long long>(epoch_events),
                    static_cast<unsigned long long>(retain), n);
    }
    if (snap.events_evicted != watermark) {
      return format("shards=%zu: evicted %llu != watermark %llu", shards,
                    static_cast<unsigned long long>(snap.events_evicted),
                    static_cast<unsigned long long>(watermark));
    }
    if (snap.events_consumed != n - watermark) {
      return format("shards=%zu: retained %llu != %zu", shards,
                    static_cast<unsigned long long>(snap.events_consumed),
                    n - static_cast<std::size_t>(watermark));
    }
    if (snap.fingerprint != batch.fingerprint) {
      return format("shards=%zu: evicted snapshot %016llx != batch over "
                    "suffix %016llx",
                    shards, static_cast<unsigned long long>(snap.fingerprint),
                    static_cast<unsigned long long>(batch.fingerprint));
    }
  }
  return "";
}

Property world_property(const char* name, const char* summary, int iters,
                        std::string (*fn)(const GeneratorConfig&)) {
  Property p;
  p.name = name;
  p.family = "ingest";
  p.summary = summary;
  p.default_iterations = iters;
  std::string pname = p.name;
  p.run = [pname, fn](util::pbt::Config cfg) {
    return util::pbt::check<GeneratorConfig>(pname, config_domain(), fn, cfg);
  };
  return p;
}

}  // namespace

void register_ingest_properties(std::vector<Property>& out) {
  out.push_back(world_property(
      "ingest.snapshot_equals_batch",
      "service snapshot bit-identical to a batch run over the same event "
      "prefix, for any interleaving and shard count",
      3, check_snapshot_equals_batch));
  out.push_back(world_property(
      "ingest.drop_policy_accounting",
      "submitted = enqueued + dropped under both overflow policies; flush "
      "conserves the enqueued stream",
      3, check_drop_policy_accounting));
  out.push_back(world_property(
      "ingest.wal_recovery_equals_batch",
      "after a crash (random tail truncation), WAL recovery + replay is "
      "bit-identical to a batch run over the surviving log prefix, for "
      "shard counts {1, 2, hw}",
      3, check_wal_recovery_equals_batch));
  out.push_back(world_property(
      "ingest.wal_torn_tail",
      "a random bit flip anywhere in the log never crashes recovery, "
      "yields an exact log prefix keeping every pre-flip frame, and the "
      "repaired log is clean and appendable",
      3, check_wal_torn_tail));
  out.push_back(world_property(
      "ingest.eviction_watermark_deterministic",
      "the eviction watermark is a pure function of stream position and "
      "retention config; snapshots under retention equal a batch run over "
      "the retained suffix for any shard count",
      3, check_eviction_watermark));
}

}  // namespace netcong::check
