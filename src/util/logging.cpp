#include "util/logging.h"

#include <atomic>
#include <cstdio>

namespace netcong::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::fprintf(stderr, "[%s] %s\n", log_level_name(level), message.c_str());
}

}  // namespace netcong::util
