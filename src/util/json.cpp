#include "util/json.h"

#include "util/strings.h"

namespace netcong::util {

namespace {

// Decodes one UTF-8 sequence starting at s[i]. Returns the codepoint and
// advances i past the sequence; returns nullopt (advancing i by one byte)
// on any invalid sequence: bad lead byte, truncation, bad continuation,
// overlong encoding, surrogate, or > U+10FFFF.
std::optional<std::uint32_t> decode_utf8(std::string_view s, std::size_t& i) {
  unsigned char lead = static_cast<unsigned char>(s[i]);
  int len;
  std::uint32_t cp;
  if (lead < 0x80) {
    ++i;
    return lead;
  } else if ((lead & 0xe0) == 0xc0) {
    len = 2;
    cp = lead & 0x1fu;
  } else if ((lead & 0xf0) == 0xe0) {
    len = 3;
    cp = lead & 0x0fu;
  } else if ((lead & 0xf8) == 0xf0) {
    len = 4;
    cp = lead & 0x07u;
  } else {
    ++i;
    return std::nullopt;
  }
  if (i + static_cast<std::size_t>(len) > s.size()) {
    ++i;
    return std::nullopt;
  }
  for (int k = 1; k < len; ++k) {
    unsigned char c = static_cast<unsigned char>(s[i + static_cast<std::size_t>(k)]);
    if ((c & 0xc0) != 0x80) {
      ++i;
      return std::nullopt;
    }
    cp = (cp << 6) | (c & 0x3fu);
  }
  // Overlong encodings, UTF-16 surrogates, and out-of-range values are
  // invalid even when the byte pattern parses.
  static constexpr std::uint32_t kMin[5] = {0, 0, 0x80, 0x800, 0x10000};
  if (cp < kMin[len] || (cp >= 0xd800 && cp <= 0xdfff) || cp > 0x10ffff) {
    ++i;
    return std::nullopt;
  }
  i += static_cast<std::size_t>(len);
  return cp;
}

void append_u16_escape(std::string& out, std::uint32_t unit) {
  out += format("\\u%04x", unit);
}

void append_codepoint_escape(std::string& out, std::uint32_t cp) {
  if (cp <= 0xffff) {
    append_u16_escape(out, cp);
  } else {
    cp -= 0x10000;
    append_u16_escape(out, 0xd800 + (cp >> 10));
    append_u16_escape(out, 0xdc00 + (cp & 0x3ffu));
  }
}

void append_utf8(std::string& out, std::uint32_t cp) {
  if (cp < 0x80) {
    out.push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
  } else if (cp < 0x10000) {
    out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
  } else {
    out.push_back(static_cast<char>(0xf0 | (cp >> 18)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
  }
}

constexpr std::uint32_t kReplacement = 0xfffd;

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  std::size_t i = 0;
  while (i < s.size()) {
    char c = s[i];
    switch (c) {
      case '"': out += "\\\""; ++i; continue;
      case '\\': out += "\\\\"; ++i; continue;
      case '\b': out += "\\b"; ++i; continue;
      case '\f': out += "\\f"; ++i; continue;
      case '\n': out += "\\n"; ++i; continue;
      case '\r': out += "\\r"; ++i; continue;
      case '\t': out += "\\t"; ++i; continue;
      default: break;
    }
    unsigned char u = static_cast<unsigned char>(c);
    if (u < 0x20) {
      append_u16_escape(out, u);
      ++i;
    } else if (u < 0x80) {
      out.push_back(c);
      ++i;
    } else {
      auto cp = decode_utf8(s, i);
      append_codepoint_escape(out, cp.value_or(kReplacement));
    }
  }
  return out;
}

std::string json_quote(std::string_view s) {
  return "\"" + json_escape(s) + "\"";
}

std::string json_number(double v) {
  if (!(v == v) || v > 1.7976931348623157e308 || v < -1.7976931348623157e308) {
    return "0";
  }
  return format("%.17g", v);
}

std::optional<std::string> json_unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  std::size_t i = 0;
  auto hex4 = [&](std::size_t at) -> std::optional<std::uint32_t> {
    if (at + 4 > s.size()) return std::nullopt;
    std::uint32_t v = 0;
    for (std::size_t k = at; k < at + 4; ++k) {
      char c = s[k];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<std::uint32_t>(c - 'A' + 10);
      else return std::nullopt;
    }
    return v;
  };
  while (i < s.size()) {
    char c = s[i];
    if (static_cast<unsigned char>(c) < 0x20) return std::nullopt;
    if (c != '\\') {
      out.push_back(c);
      ++i;
      continue;
    }
    if (i + 1 >= s.size()) return std::nullopt;
    char e = s[i + 1];
    i += 2;
    switch (e) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case '/': out.push_back('/'); break;
      case 'b': out.push_back('\b'); break;
      case 'f': out.push_back('\f'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      case 't': out.push_back('\t'); break;
      case 'u': {
        auto hi = hex4(i);
        if (!hi) return std::nullopt;
        i += 4;
        std::uint32_t cp = *hi;
        if (cp >= 0xd800 && cp <= 0xdbff) {
          // High surrogate: a \uDC00-\uDFFF low surrogate must follow.
          if (i + 2 > s.size() || s[i] != '\\' || s[i + 1] != 'u') {
            return std::nullopt;
          }
          auto lo = hex4(i + 2);
          if (!lo || *lo < 0xdc00 || *lo > 0xdfff) return std::nullopt;
          i += 6;
          cp = 0x10000 + ((cp - 0xd800) << 10) + (*lo - 0xdc00);
        } else if (cp >= 0xdc00 && cp <= 0xdfff) {
          return std::nullopt;  // unpaired low surrogate
        }
        append_utf8(out, cp);
        break;
      }
      default:
        return std::nullopt;
    }
  }
  return out;
}

}  // namespace netcong::util
