// Ingest-service throughput bench (ROADMAP item 2, always-on service): a
// synthetic campaign is flattened into an arrival-ordered event log, then
// replayed through serve::IngestService as fast as the queues accept it,
// with periodic snapshots taken mid-stream. Reports sustained events/sec,
// snapshot staleness percentiles (p50/p99 of the quiesce+drain+merge+infer
// wall time — the age of the freshest data a snapshot can contain), and
// peak RSS before/after the replay into BENCH_ingest.json.
//
// The RSS delta matters as much as the rate: the service owns bounded
// queues plus evidence stores that grow with *distinct* interfaces and hop
// pairs, not with event count, so replaying a larger log must not grow the
// footprint proportionally.
//
// Scale selection:
//   NETCONG_BENCH_SCALE=tiny   -> 1k-AS world, 10k tests (CI smoke)
//   NETCONG_BENCH_SCALE=small  -> 10k-AS world, 100k tests
//   default                    -> 10k-AS world, 1M tests
// NETCONG_INGEST_EVENTS=<n> overrides the scheduled test count.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common.h"
#include "gen/workload.h"
#include "measure/corpus.h"
#include "serve/event.h"
#include "serve/service.h"

namespace {

// Fixed-rate synthetic schedule as in bench_scale: exactly `n` requests,
// round-robin over the client population.
std::vector<netcong::gen::TestRequest> synthetic_schedule(
    const std::vector<std::uint32_t>& clients, std::size_t n) {
  constexpr double kTestsPerHour = 5000.0;
  std::vector<netcong::gen::TestRequest> schedule;
  schedule.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    netcong::gen::TestRequest req;
    req.client = clients[i % clients.size()];
    req.utc_time_hours = static_cast<double>(i) / kTestsPerHour;
    schedule.push_back(req);
  }
  return schedule;
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

}  // namespace

int main() {
  using namespace netcong;

  bench::print_header("BENCH ingest",
                      "always-on ingest service: events/sec and snapshot "
                      "staleness");

  double customer_scale = 1.76;  // ~10k ASes, as in bench_scale's 10k point
  std::size_t tests = 1'000'000;
  const char* preset = std::getenv("NETCONG_BENCH_SCALE");
  if (preset && std::strcmp(preset, "tiny") == 0) {
    customer_scale = 0.17;  // ~1k ASes
    tests = 10'000;
  } else if (preset && std::strcmp(preset, "small") == 0) {
    tests = 100'000;
  }
  if (const char* n = std::getenv("NETCONG_INGEST_EVENTS")) {
    unsigned long long parsed = std::strtoull(n, nullptr, 10);
    if (parsed > 0) tests = static_cast<std::size_t>(parsed);
  }

  gen::GeneratorConfig cfg = gen::GeneratorConfig::full();
  cfg.seed = 20150501;
  cfg.customer_scale = customer_scale;
  cfg.clients_per_access_isp = 400;

  bench::BenchRecorder rec("ingest");

  bench::Stopwatch sw_world;
  bench::Context ctx(cfg);
  rec.record("world_build", sw_world.elapsed_ms());
  rec.stat("world_build", "ases",
           static_cast<double>(ctx.world.topo->as_count()));

  // The campaign is bench setup, not the measured system: generate with the
  // columnar engine (cheapest at 1M tests) and flatten to the event log.
  measure::Platform mlab = ctx.mlab_platform();
  auto schedule = synthetic_schedule(ctx.world.clients, tests);
  measure::NdtCampaign campaign(ctx.world, ctx.fwd, ctx.model, mlab,
                                measure::CampaignConfig{});
  campaign.set_path_cache(&ctx.path_cache);
  util::Rng rng(7);
  bench::Stopwatch sw_log;
  std::vector<serve::IngestEvent> log =
      serve::event_log_from(campaign.run_columnar(schedule, rng));
  rec.record("event_log_build", sw_log.elapsed_ms());
  rec.stat("event_log_build", "events", static_cast<double>(log.size()));
  const double rss_before_mb = bench::peak_rss_mb();

  infer::AliasResolver aliases(*ctx.world.topo, 0.9, cfg.seed);
  serve::ServeConfig scfg;
  scfg.shards = 0;  // one worker per hardware thread
  scfg.queue_capacity = 4096;
  scfg.policy = serve::OverflowPolicy::kBlock;
  if (!ctx.world.ark_vps.empty()) {
    scfg.vp_as = ctx.world.topo->host(ctx.world.ark_vps[0]).asn;
  }
  serve::IngestService svc(ctx.ip2as, ctx.orgs, scfg);
  svc.set_relationships(&ctx.world.topo->relationships(), &aliases);
  svc.start();

  // Replay unpaced with 8 snapshots spread through the stream. The wall
  // clock covers the whole replay including snapshots — this is the
  // sustained rate a live deployment would see, not a queues-only figure.
  constexpr std::size_t kSnapshots = 8;
  const std::size_t stride = log.size() / kSnapshots + 1;
  std::vector<double> staleness_ms;
  serve::ServiceSnapshot last;
  bench::Stopwatch sw_replay;
  for (std::size_t i = 0; i < log.size(); ++i) {
    svc.submit(log[i]);
    if ((i + 1) % stride == 0) {
      last = svc.snapshot();
      staleness_ms.push_back(last.snapshot_ms);
    }
  }
  last = svc.snapshot();
  staleness_ms.push_back(last.snapshot_ms);
  const double replay_ms = sw_replay.elapsed_ms();
  serve::ServiceCounters counters = svc.counters();
  svc.stop();

  std::sort(staleness_ms.begin(), staleness_ms.end());
  const double events_per_sec =
      1000.0 * static_cast<double>(counters.consumed) / replay_ms;
  const double p50 = percentile(staleness_ms, 0.50);
  const double p99 = percentile(staleness_ms, 0.99);
  const double rss_after_mb = bench::peak_rss_mb();

  rec.record("replay", replay_ms);
  rec.stat("replay", "events", static_cast<double>(counters.consumed));
  rec.stat("replay", "dropped", static_cast<double>(counters.dropped));
  rec.stat("replay", "shards", static_cast<double>(svc.shards()));
  rec.stat("replay", "snapshots", static_cast<double>(staleness_ms.size()));
  rec.stat("replay", "events_per_sec", events_per_sec);
  rec.stat("replay", "staleness_p50_ms", p50);
  rec.stat("replay", "staleness_p99_ms", p99);
  rec.stat("replay", "rss_before_mb", rss_before_mb);
  rec.stat("replay", "ingest_rss_delta_mb", rss_after_mb - rss_before_mb);
  rec.stat("replay", "peak_rss_mb", rss_after_mb);
  rec.stat("replay", "interfaces_assigned",
           static_cast<double>(last.mapit.operating_as.size()));
  rec.stat("replay", "crossings",
           static_cast<double>(last.mapit.crossings.size()));
  rec.stat("replay", "borders",
           last.borders ? static_cast<double>(last.borders->borders.size())
                        : 0.0);

  std::printf("events: %llu (%llu dropped)  shards: %zu\n",
              static_cast<unsigned long long>(counters.consumed),
              static_cast<unsigned long long>(counters.dropped),
              svc.shards());
  std::printf("replay: %.1f ms  events/sec: %.0f\n", replay_ms,
              events_per_sec);
  std::printf("staleness: p50 %.2f ms  p99 %.2f ms  (%zu snapshots)\n", p50,
              p99, staleness_ms.size());
  std::printf("rss: %.1f MiB before ingest, %.1f MiB peak (+%.1f)\n",
              rss_before_mb, rss_after_mb, rss_after_mb - rss_before_mb);
  std::printf("final snapshot: %zu interfaces, %zu crossings, %zu borders, "
              "fingerprint %016llx\n",
              last.mapit.operating_as.size(), last.mapit.crossings.size(),
              last.borders ? last.borders->borders.size() : 0,
              static_cast<unsigned long long>(last.fingerprint));
  bench::print_footnote(
      "staleness = wall time of snapshot() (quiesce + drain + merge + "
      "infer): the age of the freshest event a snapshot can reflect.");

  rec.write();
  return 0;
}
