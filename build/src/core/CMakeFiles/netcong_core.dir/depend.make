# Empty dependencies file for netcong_core.
# This may be replaced when dependencies are built.
