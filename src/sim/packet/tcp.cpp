#include "sim/packet/tcp.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace netcong::sim::packet {

namespace {

// Drop every other retained element (keep even indices). Combined with a
// doubled recording stride this keeps the retained set exactly "original
// index divisible by stride" — deterministic and insertion-order free.
template <typename T>
void halve_keep_even(std::vector<T>& v) {
  std::size_t out = 0;
  for (std::size_t i = 0; i < v.size(); i += 2) v[out++] = v[i];
  v.resize(out);
}

class Fnv1a {
 public:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ = (h_ ^ ((v >> (8 * i)) & 0xffu)) * 1099511628211ull;
    }
  }
  void mix(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    mix(bits);
  }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 14695981039346656037ull;
};

}  // namespace

double goodput_over_mbps(const TcpStats& stats, int mss_bytes, double from_s,
                         double to_s) {
  if (to_s <= from_s) return 0.0;
  // ack_trace is (time, cumulative acked seq), nondecreasing in both.
  auto acked_at = [&](double t) -> std::int64_t {
    std::int64_t best = -1;
    for (const auto& [time, seq] : stats.ack_trace) {
      if (time > t) break;
      best = seq;
    }
    return best;
  };
  std::int64_t d = acked_at(to_s) - acked_at(from_s);
  if (d <= 0) return 0.0;
  return static_cast<double>(d) * mss_bytes * 8.0 / (to_s - from_s) / 1e6;
}

std::uint64_t stats_fingerprint(const TcpStats& stats) {
  Fnv1a fp;
  fp.mix(static_cast<std::uint64_t>(stats.packets_sent));
  fp.mix(static_cast<std::uint64_t>(stats.packets_acked));
  fp.mix(static_cast<std::uint64_t>(stats.retransmits));
  fp.mix(static_cast<std::uint64_t>(stats.congestion_signals));
  fp.mix(static_cast<std::uint64_t>(stats.timeouts));
  fp.mix(static_cast<std::uint64_t>(stats.rtt_samples_ms.size()));
  for (double v : stats.rtt_samples_ms) fp.mix(v);
  fp.mix(static_cast<std::uint64_t>(stats.ack_trace.size()));
  for (const auto& [t, seq] : stats.ack_trace) {
    fp.mix(t);
    fp.mix(static_cast<std::uint64_t>(seq));
  }
  return fp.value();
}

TcpFlow::TcpFlow(int id, EventQueue& events, Params params,
                 std::function<bool(const Packet&)> transmit)
    : id_(id),
      events_(&events),
      params_(params),
      transmit_(std::move(transmit)),
      cc_(make_congestion_control(params.cc, params.initial_cwnd,
                                  params.max_cwnd)) {}

void TcpFlow::start(double at_time) {
  events_->schedule(at_time, [this] {
    running_ = true;
    try_send();
    schedule_rto();
  });
}

void TcpFlow::try_send() {
  if (!running_) return;
  auto in_flight = [&] { return next_seq_ - (cum_acked_ + 1); };
  double rate = cc_->pacing_rate_pps();
  if (rate <= 0.0) {
    // Unpaced: classic window-limited burst (byte-identical to the
    // historical sender when the CC is NewReno).
    while (static_cast<double>(in_flight()) < cc_->cwnd()) {
      send_packet(next_seq_, /*retransmit=*/false);
      ++next_seq_;
    }
    return;
  }
  // Paced: release at most one packet per 1/rate seconds, waking ourselves
  // up when the window is open but the pacing clock is not.
  double now = events_->now();
  while (static_cast<double>(in_flight()) < cc_->cwnd()) {
    if (next_send_time_s_ > now) {
      if (!send_timer_pending_) {
        send_timer_pending_ = true;
        events_->schedule(next_send_time_s_, [this] {
          send_timer_pending_ = false;
          try_send();
        });
      }
      return;
    }
    send_packet(next_seq_, /*retransmit=*/false);
    ++next_seq_;
    next_send_time_s_ = std::max(now, next_send_time_s_) + 1.0 / rate;
  }
}

void TcpFlow::send_packet(std::int64_t seq, bool retransmit) {
  Packet p;
  p.flow = id_;
  p.seq = seq;
  p.size_bytes = params_.mss_bytes;
  p.sent_time = events_->now();
  p.retransmit = retransmit;
  ++stats_.packets_sent;
  if (retransmit) {
    ++stats_.retransmits;
    sent_at_.erase(seq);  // Karn: never sample RTT off a retransmit
  } else {
    sent_at_[seq] = SentRecord{p.sent_time, cum_acked_ + 1};
  }
  // A drop at the bottleneck is silent; loss is discovered via dupacks/RTO.
  transmit_(p);
}

void TcpFlow::on_packet_delivered(const Packet& p) {
  // Downstream propagation + ACK return takes the remaining base RTT
  // (the sender-to-bottleneck leg is treated as instantaneous; base_rtt_s
  // covers the full loop minus bottleneck queueing).
  double deliver_at = events_->now() + params_.base_rtt_s;
  std::int64_t seq = p.seq;
  double sent_time = p.sent_time;
  bool was_retx = p.retransmit;
  events_->schedule(deliver_at, [this, seq, sent_time, was_retx] {
    on_ack(seq, sent_time, was_retx);
  });
}

void TcpFlow::update_rtt(double sample_s) {
  if (srtt_s_ == 0.0) {
    srtt_s_ = sample_s;
    rttvar_s_ = sample_s / 2.0;
  } else {
    rttvar_s_ = 0.75 * rttvar_s_ + 0.25 * std::fabs(srtt_s_ - sample_s);
    srtt_s_ = 0.875 * srtt_s_ + 0.125 * sample_s;
  }
  rto_s_ = std::clamp(srtt_s_ + 4.0 * rttvar_s_, 0.2, 60.0);
}

void TcpFlow::record_rtt_sample(double now_s, double sample_s) {
  if (rtt_seen_ % rtt_stride_ == 0) {
    stats_.rtt_samples_ms.push_back(sample_s * 1000.0);
    stats_.rtt_sample_times_s.push_back(now_s);
    if (params_.max_trace_samples > 0 &&
        stats_.rtt_samples_ms.size() >= params_.max_trace_samples) {
      halve_keep_even(stats_.rtt_samples_ms);
      halve_keep_even(stats_.rtt_sample_times_s);
      rtt_stride_ *= 2;
    }
  }
  ++rtt_seen_;
}

void TcpFlow::record_ack_point(double now_s, std::int64_t cum_seq) {
  if (ack_seen_ % ack_stride_ == 0) {
    stats_.ack_trace.emplace_back(now_s, cum_seq);
    if (params_.max_trace_samples > 0 &&
        stats_.ack_trace.size() >= params_.max_trace_samples) {
      halve_keep_even(stats_.ack_trace);
      ack_stride_ *= 2;
    }
  }
  ++ack_seen_;
}

void TcpFlow::on_ack(std::int64_t seq, double sent_time, bool was_retransmit) {
  if (!running_) return;

  // RTT + delivery-rate sample (Karn's rule: only off original transmits
  // whose send record is intact).
  double rtt_sample_s = -1.0;
  std::int64_t delivered_at_send = -1;
  double record_sent_time = 0.0;
  if (!was_retransmit) {
    auto it = sent_at_.find(seq);
    if (it != sent_at_.end() && it->second.sent_time == sent_time) {
      double sample = events_->now() - sent_time;
      update_rtt(sample);
      if (params_.record_rtt) {
        record_rtt_sample(events_->now(), sample);
      }
      rtt_sample_s = sample;
      delivered_at_send = it->second.delivered_at_send;
      record_sent_time = it->second.sent_time;
      sent_at_.erase(it);
    }
  }

  if (seq == cum_acked_ + 1) {
    // In-order arrival advances the cumulative ack.
    cum_acked_ = seq;
    ++stats_.packets_acked;
    record_ack_point(events_->now(), cum_acked_);
    dupacks_ = 0;
    if (in_recovery_ && cum_acked_ >= recovery_end_) in_recovery_ = false;

    CcAck ack;
    ack.now_s = events_->now();
    ack.rtt_s = rtt_sample_s;
    ack.delivered = cum_acked_ + 1;
    ack.in_flight = static_cast<double>(next_seq_ - (cum_acked_ + 1));
    ack.delivered_at_send = delivered_at_send;
    ack.sent_time_s = record_sent_time;
    cc_->on_ack(ack);

    rto_epoch_++;  // fresh data acked: restart the timer
    schedule_rto();
    try_send();
  } else if (seq > cum_acked_ + 1) {
    // A gap: the receiver would emit a duplicate ACK for cum_acked_.
    ++dupacks_;
    if (dupacks_ == 3 && !in_recovery_) {
      // Fast retransmit + (simplified) fast recovery.
      in_recovery_ = true;
      recovery_end_ = next_seq_ - 1;
      cc_->on_dupack_loss(events_->now());
      ++stats_.congestion_signals;
      send_packet(cum_acked_ + 1, /*retransmit=*/true);
      rto_epoch_++;
      schedule_rto();
    }
  }
  // seq <= cum_acked_: stale (already covered by a retransmit); ignore.
}

void TcpFlow::schedule_rto() {
  std::uint64_t epoch = rto_epoch_;
  events_->schedule(events_->now() + rto_s_,
                    [this, epoch] { on_rto(epoch); });
}

void TcpFlow::on_rto(std::uint64_t epoch) {
  if (!running_ || epoch != rto_epoch_) return;  // stale timer
  if (cum_acked_ + 1 >= next_seq_) {
    // Nothing outstanding; keep an idle timer alive.
    rto_epoch_++;
    schedule_rto();
    return;
  }
  ++stats_.timeouts;
  ++stats_.congestion_signals;
  cc_->on_timeout(events_->now());
  dupacks_ = 0;
  in_recovery_ = false;
  // Go-back-N from the hole.
  next_seq_ = cum_acked_ + 1;
  send_packet(next_seq_, /*retransmit=*/true);
  ++next_seq_;
  rto_s_ = std::min(60.0, rto_s_ * 2.0);  // backoff
  rto_epoch_++;
  schedule_rto();
}

}  // namespace netcong::sim::packet
