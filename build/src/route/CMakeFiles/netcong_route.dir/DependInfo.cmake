
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/route/bgp.cpp" "src/route/CMakeFiles/netcong_route.dir/bgp.cpp.o" "gcc" "src/route/CMakeFiles/netcong_route.dir/bgp.cpp.o.d"
  "/root/repo/src/route/forwarding.cpp" "src/route/CMakeFiles/netcong_route.dir/forwarding.cpp.o" "gcc" "src/route/CMakeFiles/netcong_route.dir/forwarding.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topo/CMakeFiles/netcong_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/netcong_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
