#include "infer/mapit.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/flat_map.h"

namespace netcong::infer {

namespace {

struct MapItMetrics {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  obs::Counter runs = reg.counter("mapit.runs");
  obs::Counter passes = reg.counter("mapit.passes");
  obs::Counter reassignments = reg.counter("mapit.reassignments");
  obs::Counter crossings = reg.counter("mapit.crossings");
};
const MapItMetrics& mapit_metrics() {
  static const MapItMetrics m;
  return m;
}

// Potential point-to-point mates of an address: the /31 mate and the /30
// mate (for the .1/.2 convention).
std::vector<std::uint32_t> mate_candidates(std::uint32_t v) {
  std::vector<std::uint32_t> out;
  out.push_back(v ^ 1u);  // /31 mate
  std::uint32_t in30 = v & 3u;
  if (in30 == 1) out.push_back(v + 1);  // .1 <-> .2
  if (in30 == 2) out.push_back(v - 1);
  return out;
}

// Per-interface adjacency votes, keyed by ASN. Derived from the evidence
// tables at inference time: votes depend only on static BGP origins and
// hop-pair counts, so they need not be maintained incrementally.
struct Votes {
  util::FlatMap<topo::Asn, int> succ;
  util::FlatMap<topo::Asn, int> pred;
};

topo::Asn majority_as(const util::FlatMap<topo::Asn, int>& votes,
                      double threshold) {
  int total = 0;
  for (const auto& [asn, n] : votes) total += n;
  if (total == 0) return 0;
  for (const auto& [asn, n] : votes) {
    if (asn != 0 && static_cast<double>(n) / total >= threshold) return asn;
  }
  return 0;
}

}  // namespace

void MapItEvidence::add(const measure::TracerouteRecord& trace,
                        const Ip2As& ip2as) {
  ++coverage_.traces_total;
  topo::IpAddr prev;
  bool have_prev = false;
  bool used = false;
  for (const auto& hop : trace.hops) {
    ++coverage_.hops_total;
    if (!hop.responded) {
      have_prev = false;  // a star breaks adjacency evidence
      continue;
    }
    ++coverage_.hops_responsive;
    auto [it, fresh] = ifaces_.try_emplace(hop.addr.value);
    if (fresh) {
      auto r = ip2as.lookup(hop.addr);
      it->second.origin = r.kind == Ip2As::Kind::kAs ? r.asn : 0;
      it->second.ixp = r.kind == Ip2As::Kind::kIxp;
    }
    it->second.observations++;
    if (have_prev && prev != hop.addr) {
      std::uint64_t key =
          (static_cast<std::uint64_t>(prev.value) << 32) | hop.addr.value;
      hop_pairs_[key]++;
      used = true;
    }
    prev = hop.addr;
    have_prev = true;
  }
  if (used) {
    ++coverage_.traces_used;
  } else {
    ++coverage_.traces_unusable;
  }
}

void MapItEvidence::merge(const MapItEvidence& other) {
  for (const auto& [addr, info] : other.ifaces_) {
    auto [it, fresh] = ifaces_.try_emplace(addr, info);
    if (!fresh) it->second.observations += info.observations;
  }
  for (const auto& [key, count] : other.hop_pairs_) {
    hop_pairs_[key] += count;
  }
  coverage_.traces_total += other.coverage_.traces_total;
  coverage_.traces_used += other.coverage_.traces_used;
  coverage_.traces_unusable += other.coverage_.traces_unusable;
  coverage_.hops_total += other.coverage_.hops_total;
  coverage_.hops_responsive += other.coverage_.hops_responsive;
}

MapItResult MapItEvidence::infer(const Ip2As& ip2as, const OrgMap& orgs,
                                 const MapItConfig& config) const {
  obs::Span span("mapit.run");
  MapItResult result;
  result.coverage = coverage_;

  // ---- initial operating-AS assignment ----
  util::FlatMap<std::uint32_t, topo::Asn> op;
  op.reserve(ifaces_.size());
  for (const auto& [addr, info] : ifaces_) {
    op[addr] = info.ixp ? 0 : info.origin;
  }

  // ---- collate static origin evidence ----
  // Reassignment is judged on the BGP *origins* of neighboring interfaces,
  // never on their (mutable) operating-AS assignments. This is what stops
  // the decision from cascading backwards: when the entry interface of AS B
  // is numbered from A's space, only that interface sees majority-B origins
  // downstream; the exit interface one hop earlier still sees the A-origin
  // entry interface as its successor and stays put.
  util::FlatMap<std::uint32_t, Votes> votes;
  for (const auto& [key, count] : hop_pairs_) {
    std::uint32_t a = static_cast<std::uint32_t>(key >> 32);
    std::uint32_t b = static_cast<std::uint32_t>(key & 0xffffffffu);
    votes[a].succ[ifaces_.at(b).origin] += count;
    votes[b].pred[ifaces_.at(a).origin] += count;
  }
  static const util::FlatMap<topo::Asn, int> kNoVotes;
  auto votes_of = [&](std::uint32_t addr) -> const Votes* {
    auto it = votes.find(addr);
    return it == votes.end() ? nullptr : &it->second;
  };

  int pass = 0;
  for (; pass < config.max_passes; ++pass) {
    int changes = 0;
    for (const auto& [addr, info] : ifaces_) {
      if (info.observations < config.min_observations) continue;
      const Votes* v = votes_of(addr);
      topo::Asn succ = majority_as(v ? v->succ : kNoVotes, config.majority);
      topo::Asn cur = op[addr];

      if (info.ixp || cur == 0) {
        // IXP / unmapped addresses adopt the downstream AS: the in-interface
        // of the far router answers with fabric space.
        if (succ != 0 && succ != cur) {
          op[addr] = succ;
          ++changes;
        }
        continue;
      }

      if (succ == 0 || orgs.same_org(succ, cur)) continue;

      // Candidate reassignment: origin says `cur`, downstream origins say
      // `succ`. Require corroboration: predecessors consistent with the
      // origin AS (we are at the first hop inside `succ`), or the
      // point-to-point mate mapping back to the origin AS.
      topo::Asn pred = majority_as(v ? v->pred : kNoVotes, config.majority);
      bool pred_supports = pred != 0 && orgs.same_org(pred, cur);
      bool mate_supports = false;
      for (std::uint32_t mate : mate_candidates(addr)) {
        auto it = ifaces_.find(mate);
        topo::Asn mate_as = it != ifaces_.end()
                                ? it->second.origin
                                : ip2as.origin(topo::IpAddr(mate));
        if (mate_as != 0 && orgs.same_org(mate_as, cur)) {
          mate_supports = true;
          break;
        }
      }
      if (pred_supports || mate_supports) {
        op[addr] = succ;
        ++changes;
      }
    }
    if (changes == 0) break;
  }
  result.passes_run = pass + 1;

  for (const auto& [addr, info] : ifaces_) {
    if (!info.ixp && info.origin != 0 && op[addr] != info.origin) {
      ++result.reassignments;
    }
  }

  // ---- extract crossings ----
  util::FlatMap<std::uint64_t, std::size_t> crossing_index;
  for (const auto& [key, count] : hop_pairs_) {
    std::uint32_t a = static_cast<std::uint32_t>(key >> 32);
    std::uint32_t b = static_cast<std::uint32_t>(key & 0xffffffffu);
    topo::Asn oa = op[a];
    topo::Asn ob = op[b];
    if (oa == 0 || ob == 0 || orgs.same_org(oa, ob)) continue;
    auto [it, fresh] = crossing_index.try_emplace(key, result.crossings.size());
    if (fresh) {
      BorderCrossing c;
      c.near_addr = topo::IpAddr(a);
      c.far_addr = topo::IpAddr(b);
      c.near_as = oa;
      c.far_as = ob;
      result.crossings.push_back(c);
    }
    result.crossings[it->second].observations += count;
  }
  // Canonical external order, independent of the collation container.
  std::sort(result.crossings.begin(), result.crossings.end(),
            [](const BorderCrossing& x, const BorderCrossing& y) {
              if (x.near_addr != y.near_addr) return x.near_addr < y.near_addr;
              return x.far_addr < y.far_addr;
            });

  result.operating_as = std::move(op);
  const MapItMetrics& metrics = mapit_metrics();
  metrics.runs.inc();
  metrics.passes.inc(static_cast<std::uint64_t>(result.passes_run));
  metrics.reassignments.inc(static_cast<std::uint64_t>(result.reassignments));
  metrics.crossings.inc(result.crossings.size());
  return result;
}

MapItResult run_mapit(const std::vector<measure::TracerouteRecord>& corpus,
                      const Ip2As& ip2as, const OrgMap& orgs,
                      const MapItConfig& config) {
  MapItEvidence evidence;
  for (const auto& tr : corpus) evidence.add(tr, ip2as);
  return evidence.infer(ip2as, orgs, config);
}

MapItAccuracy evaluate_mapit(const MapItResult& result,
                             const topo::Topology& topo,
                             const OrgMap& orgs) {
  MapItAccuracy acc;
  for (const auto& c : result.crossings) {
    auto near_if = topo.interface_by_addr(c.near_addr);
    auto far_if = topo.interface_by_addr(c.far_addr);
    if (!near_if || !far_if) continue;
    topo::RouterId far_router = topo.iface(*far_if).router;
    topo::Asn true_near = topo.router(topo.iface(*near_if).router).owner;
    topo::Asn true_far = topo.router(far_router).owner;
    ++acc.crossings_checked;
    if (orgs.same_org(true_near, c.near_as) &&
        orgs.same_org(true_far, c.far_as) &&
        !orgs.same_org(true_near, true_far)) {
      ++acc.exact;
      ++acc.correct;
      continue;
    }
    // Adjacent: the far interface still belongs to the near org's border
    // router, but that router really interconnects with the claimed far AS.
    if (orgs.same_org(true_near, c.near_as) &&
        orgs.same_org(true_far, c.near_as)) {
      bool has_link = false;
      for (topo::InterfaceId ifid : topo.router(far_router).interfaces) {
        const topo::Link& l = topo.link(topo.iface(ifid).link);
        if (l.kind != topo::LinkKind::kInterdomain) continue;
        topo::Asn other = l.as_a == true_far ? l.as_b : l.as_a;
        if (orgs.same_org(other, c.far_as)) {
          has_link = true;
          break;
        }
      }
      if (has_link) {
        ++acc.adjacent;
        ++acc.correct;
      }
    }
  }
  return acc;
}

}  // namespace netcong::infer
