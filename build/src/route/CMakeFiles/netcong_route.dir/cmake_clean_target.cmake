file(REMOVE_RECURSE
  "libnetcong_route.a"
)
