#include "core/as_tomography.h"

#include <cmath>

namespace netcong::core {

std::vector<AsTomographyCall> as_level_tomography(
    const std::map<GroupKey, DiurnalGroup>& groups, double drop_threshold,
    std::size_t min_samples) {
  // Pass 1: per-group degradation.
  struct Row {
    GroupKey key;
    stats::DiurnalComparison cmp;
    bool degraded = false;
    bool usable = false;
    std::size_t tests = 0;
  };
  std::vector<Row> rows;
  for (const auto& [key, g] : groups) {
    Row r;
    r.key = key;
    r.tests = g.tests;
    r.cmp = stats::compare_peak_offpeak(g.throughput);
    r.usable = r.cmp.peak_count >= min_samples &&
               r.cmp.offpeak_count >= min_samples &&
               !std::isnan(r.cmp.relative_drop);
    r.degraded = r.usable && r.cmp.relative_drop >= drop_threshold;
    rows.push_back(std::move(r));
  }

  // Pass 2: client-side factors are ruled out for ISP A when at least one
  // other source shows a clean (usable, non-degraded) signal to A.
  std::map<std::string, std::size_t> clean_sources;
  for (const auto& r : rows) {
    if (r.usable && !r.degraded) clean_sources[r.key.isp]++;
  }

  std::vector<AsTomographyCall> out;
  for (const auto& r : rows) {
    AsTomographyCall call;
    call.source = r.key.source;
    call.isp = r.key.isp;
    call.relative_drop = r.cmp.relative_drop;
    call.usable = r.usable;
    call.degraded = r.degraded;
    call.tests = r.tests;
    call.peak_samples = r.cmp.peak_count;
    call.offpeak_samples = r.cmp.offpeak_count;
    call.client_side_ruled_out = clean_sources[r.key.isp] > 0;
    call.congestion_inferred = r.degraded && call.client_side_ruled_out;
    out.push_back(std::move(call));
  }
  return out;
}

}  // namespace netcong::core
