#pragma once

// Dependency-free property-based testing for netcong.
//
// A Domain<T> bundles a seeded generator for random values of T, a shrinker
// proposing strictly "smaller" variants of a failing value, and a printer.
// check() drives a property (a function of T returning an empty string on
// success, a failure description otherwise) over many independent cases;
// the first failure is greedily shrunk to a minimal counterexample and the
// report carries a one-line repro:
//
//     NETCONG_PBT_SEED=0x1f2e3d4c...
//
// Setting that environment variable makes every subsequent check() run
// exactly that one case — generation is a pure function of the case seed,
// so the failure (and its shrunk counterexample) reproduces bit-identically
// in any pbt test binary or in netcong_check.
//
// NETCONG_PBT_ITERS overrides the iteration budget globally, letting the
// sanitizer scripts run the whole suite at a reduced budget and deep soak
// runs raise it without recompiling.

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.h"
#include "util/strings.h"

namespace netcong::util::pbt {

struct Config {
  // Number of independent random cases; <= 0 means "the caller's default".
  int iterations = 100;
  // Base seed; case i draws from a splitmix-derived per-case seed.
  std::uint64_t seed = 42;
  // Upper bound on property evaluations spent shrinking one failure.
  int max_shrink_steps = 2000;
  // When set, run exactly one case with this seed (repro mode).
  std::optional<std::uint64_t> repro_seed;
  // When true (the default), NETCONG_PBT_SEED fills repro_seed and
  // NETCONG_PBT_ITERS overrides iterations.
  bool env_override = true;
};

struct CheckResult {
  bool ok = true;
  std::string name;
  int iterations_run = 0;
  int shrink_steps = 0;            // property evaluations spent shrinking
  std::uint64_t failing_seed = 0;  // case seed that reproduces the failure
  std::string counterexample;      // describe() of the minimal failing value
  std::string failure;             // property message at the minimal value
  std::string report;              // full human-readable failure report
};

// Value domain: generator + shrinker + printer. The shrinker returns
// candidate replacements strictly simpler than its argument (an empty
// vector stops shrinking); it must terminate, i.e. the "simpler than"
// relation must be well-founded.
template <typename T>
struct Domain {
  std::function<T(Rng&)> generate;
  std::function<std::vector<T>(const T&)> shrink =
      [](const T&) { return std::vector<T>{}; };
  std::function<std::string(const T&)> describe =
      [](const T&) { return std::string("<value>"); };
};

// Environment plumbing (implemented in pbt.cpp).
std::optional<std::uint64_t> env_repro_seed();  // NETCONG_PBT_SEED
std::optional<int> env_iterations();            // NETCONG_PBT_ITERS

// Per-case seed derivation: splitmix over (base, iteration), matching the
// independence guarantees of Rng::fork.
std::uint64_t case_seed(std::uint64_t base, int iteration);

// Assembles the failure report (shared between check() instantiations).
std::string failure_report(std::string_view name, int iterations_run,
                           std::uint64_t failing_seed, int shrink_steps,
                           std::string_view counterexample,
                           std::string_view failure);

// Runs `property` over random cases from `domain`. Exceptions thrown by the
// property are treated as failures (and shrunk like any other).
template <typename T>
CheckResult check(std::string_view name, const Domain<T>& domain,
                  const std::function<std::string(const T&)>& property,
                  Config cfg = Config{}, T* minimal_out = nullptr) {
  CheckResult result;
  result.name = std::string(name);
  if (cfg.env_override) {
    if (auto s = env_repro_seed()) cfg.repro_seed = *s;
    if (auto n = env_iterations()) cfg.iterations = *n;
  }
  if (cfg.iterations <= 0) cfg.iterations = 100;

  auto evaluate = [&](const T& value) -> std::string {
    try {
      return property(value);
    } catch (const std::exception& e) {
      return std::string("unhandled exception: ") + e.what();
    } catch (...) {
      return "unhandled non-standard exception";
    }
  };

  const int iterations = cfg.repro_seed ? 1 : cfg.iterations;
  for (int i = 0; i < iterations; ++i) {
    std::uint64_t cs = cfg.repro_seed ? *cfg.repro_seed : case_seed(cfg.seed, i);
    Rng rng(cs);
    T value = domain.generate(rng);
    std::string msg = evaluate(value);
    ++result.iterations_run;
    if (msg.empty()) continue;

    // Greedy shrink: repeatedly move to the first still-failing candidate.
    T minimal = std::move(value);
    std::string minimal_msg = std::move(msg);
    bool progressed = true;
    while (progressed && result.shrink_steps < cfg.max_shrink_steps) {
      progressed = false;
      for (const T& candidate : domain.shrink(minimal)) {
        if (result.shrink_steps >= cfg.max_shrink_steps) break;
        ++result.shrink_steps;
        std::string m = evaluate(candidate);
        if (!m.empty()) {
          minimal = candidate;
          minimal_msg = std::move(m);
          progressed = true;
          break;
        }
      }
    }

    result.ok = false;
    result.failing_seed = cs;
    result.counterexample = domain.describe(minimal);
    result.failure = std::move(minimal_msg);
    result.report =
        failure_report(name, result.iterations_run, cs, result.shrink_steps,
                       result.counterexample, result.failure);
    if (minimal_out) *minimal_out = std::move(minimal);
    return result;
  }
  return result;
}

// ---- stock domains ----

Domain<std::int64_t> int_range(std::int64_t lo, std::int64_t hi);
Domain<double> double_range(double lo, double hi);
Domain<bool> boolean();

template <typename T>
Domain<T> element_of(std::vector<T> values) {
  Domain<T> d;
  auto shared = std::make_shared<std::vector<T>>(std::move(values));
  d.generate = [shared](Rng& rng) { return rng.pick(*shared); };
  // Shrink toward the first element (the caller puts the simplest first).
  d.shrink = [shared](const T& v) {
    std::vector<T> out;
    if (!shared->empty() && !(shared->front() == v)) {
      out.push_back(shared->front());
    }
    return out;
  };
  return d;
}

// Fixed-size-free vector domain: random length in [min_len, max_len],
// elements from `elem`. Shrinks by halving length, dropping single
// elements, and shrinking individual elements.
template <typename T>
Domain<std::vector<T>> vector_of(Domain<T> elem, std::size_t min_len,
                                 std::size_t max_len) {
  Domain<std::vector<T>> d;
  auto shared = std::make_shared<Domain<T>>(std::move(elem));
  d.generate = [shared, min_len, max_len](Rng& rng) {
    std::size_t n = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(min_len),
                        static_cast<std::int64_t>(max_len)));
    std::vector<T> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(shared->generate(rng));
    return out;
  };
  d.shrink = [shared, min_len](const std::vector<T>& v) {
    std::vector<std::vector<T>> out;
    if (v.size() > min_len) {
      // Halve first (fast progress), then drop one element at a time.
      std::size_t half = v.size() / 2;
      if (half >= min_len && half < v.size()) {
        out.emplace_back(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(half));
      }
      for (std::size_t i = 0; i < v.size(); ++i) {
        std::vector<T> smaller;
        smaller.reserve(v.size() - 1);
        for (std::size_t j = 0; j < v.size(); ++j) {
          if (j != i) smaller.push_back(v[j]);
        }
        out.push_back(std::move(smaller));
      }
    }
    for (std::size_t i = 0; i < v.size(); ++i) {
      for (T& cand : shared->shrink(v[i])) {
        std::vector<T> copy = v;
        copy[i] = std::move(cand);
        out.push_back(std::move(copy));
      }
    }
    return out;
  };
  d.describe = [shared](const std::vector<T>& v) {
    std::string out = "[";
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i) out += ", ";
      out += shared->describe(v[i]);
    }
    return out + "]";
  };
  return d;
}

}  // namespace netcong::util::pbt
