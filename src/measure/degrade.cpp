#include "measure/degrade.h"

namespace netcong::measure {

std::vector<TracerouteRecord> degrade_corpus(
    const std::vector<TracerouteRecord>& corpus,
    const sim::FaultInjector& faults, const DegradeOptions& options,
    DegradeStats* stats) {
  DegradeStats local;
  local.traces_in = corpus.size();
  std::vector<TracerouteRecord> out;
  if (!faults.enabled()) {
    out = corpus;
    local.traces_out = corpus.size();
    if (stats) *stats = local;
    return out;
  }
  out.reserve(corpus.size());
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    if (faults.fires(sim::FaultSite::kTracerouteCrash, i,
                     options.trace_loss)) {
      ++local.traces_dropped;
      continue;
    }
    TracerouteRecord tr = corpus[i];
    if (options.hop_loss > 0.0) {
      util::Rng rng = faults.stream(sim::FaultSite::kProbeLoss, i);
      for (auto& hop : tr.hops) {
        ++local.hops_in;
        if (hop.responded && rng.chance(options.hop_loss)) {
          hop = TraceHop{hop.ttl, false, topo::IpAddr{}, 0.0, std::string()};
          ++local.hops_blanked;
        }
      }
      // If the destination hop was blanked, the trace no longer shows it.
      tr.reached_dst =
          !tr.hops.empty() && tr.hops.back().responded &&
          tr.hops.back().addr == tr.dst;
    }
    out.push_back(std::move(tr));
    ++local.traces_out;
  }
  if (stats) *stats = local;
  return out;
}

}  // namespace netcong::measure
