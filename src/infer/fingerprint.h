#pragma once

// Order-insensitive-input, canonical-output 64-bit fingerprints of inference
// results, extending measure/fingerprint to the MAP-IT / bdrmap layer. One
// number stands in for "these two inferences are bit-identical", which is
// how the serve subsystem's snapshot-equals-batch obligation (DESIGN.md §11)
// and the ingest.* properties compare an incremental snapshot against a
// batch run over the same event prefix.
//
// The operating-AS table is mixed in ascending address order (an explicit
// sort, not container iteration order), so the fingerprint is well-defined
// independent of how the table was populated.

#include <cstdint>

#include "infer/bdrmap.h"
#include "infer/mapit.h"

namespace netcong::infer {

std::uint64_t fingerprint(const MapItResult& result);
std::uint64_t fingerprint(const BdrmapResult& result);

}  // namespace netcong::infer
