file(REMOVE_RECURSE
  "libnetcong_topo.a"
)
