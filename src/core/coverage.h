#pragma once

// Interconnection-coverage analysis (paper Section 5, Figures 2-4): which
// of an access network's interdomain interconnections — as discovered by
// bdrmap from a vantage point inside it — appear on traceroute paths toward
// a measurement platform's servers, and how does that compare with the
// interconnections used to reach popular web content?

#include <set>
#include <string>
#include <vector>

#include "infer/bdrmap.h"
#include "measure/traceroute.h"

namespace netcong::core {

// One interconnection of the VP network, identified at the AS level by the
// neighbor ASN and at the router level by the far-side alias group.
struct InterconnectKey {
  topo::Asn neighbor = 0;
  std::uint64_t far_router = 0;

  bool operator<(const InterconnectKey& o) const {
    if (neighbor != o.neighbor) return neighbor < o.neighbor;
    return far_router < o.far_router;
  }
  bool operator==(const InterconnectKey& o) const {
    return neighbor == o.neighbor && far_router == o.far_router;
  }
};

// Extracts the set of interconnections of `vp_as` traversed by the corpus:
// the first crossing out of the VP's org on each traceroute.
std::vector<InterconnectKey> interconnects_used(
    const std::vector<measure::TracerouteRecord>& corpus, topo::Asn vp_as,
    const infer::MapItResult& mapit, const infer::Ip2As& ip2as,
    const infer::OrgMap& orgs, const infer::AliasResolver& aliases);

struct CoverageSet {
  std::set<topo::Asn> as_level;
  std::set<InterconnectKey> router_level;

  void add(const InterconnectKey& k) {
    as_level.insert(k.neighbor);
    router_level.insert(k);
  }
};

struct VpCoverage {
  std::string vp_label;
  std::string network;

  // Discovered by bdrmap (the denominator).
  CoverageSet discovered;
  CoverageSet discovered_peers;  // restricted to peer relationships

  // Covered via traceroutes to each platform's servers / content targets.
  CoverageSet mlab, mlab_peers;
  CoverageSet speedtest, speedtest_peers;
  CoverageSet alexa;

  static double pct(std::size_t covered, std::size_t total) {
    return total == 0 ? 0.0 : 100.0 * static_cast<double>(covered) / total;
  }
};

// Builds the per-VP coverage record from a bdrmap result and the three
// targeted corpora. Relationship annotations come from the bdrmap borders.
VpCoverage analyze_coverage(
    const std::string& vp_label, const std::string& network,
    const infer::BdrmapResult& bdrmap,
    const std::vector<measure::TracerouteRecord>& to_mlab,
    const std::vector<measure::TracerouteRecord>& to_speedtest,
    const std::vector<measure::TracerouteRecord>& to_alexa,
    const infer::Ip2As& ip2as, const infer::OrgMap& orgs,
    const infer::AliasResolver& aliases);

// Set-difference sizes for the Figure 4 overlap analysis.
struct OverlapStats {
  std::size_t platform_not_alexa_as = 0;
  std::size_t alexa_not_platform_as = 0;
  std::size_t platform_not_alexa_router = 0;
  std::size_t alexa_not_platform_router = 0;
  std::size_t alexa_total_as = 0;
};
OverlapStats overlap(const CoverageSet& platform, const CoverageSet& alexa);

}  // namespace netcong::core
