#pragma once

// Discrete-event scheduler for the packet-level simulator. Events fire in
// (time, insertion-order) order, making simulations fully deterministic.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace netcong::sim::packet {

class EventQueue {
 public:
  using Handler = std::function<void()>;

  void schedule(double time, Handler handler);

  // Runs events until the queue drains or `until` is passed (events at
  // exactly `until` still run).
  void run(double until);

  double now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  std::size_t executed() const { return executed_; }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Handler handler;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t executed_ = 0;
};

}  // namespace netcong::sim::packet
