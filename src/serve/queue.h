#pragma once

// Bounded multi-producer single-consumer queue for the ingest service, with
// explicit overflow policy — the backpressure primitive of DESIGN.md §11.
//
//  * kBlock: push() waits for space. Producers slow to the consumer's rate;
//    nothing is lost. This is the replay/equivalence-testing mode: the
//    consumed stream is exactly the submitted stream.
//  * kDrop: push() on a full queue discards the item and counts it.
//    Producers never stall (the M-Lab collection posture: a browser test
//    must not hang on a busy pipeline); the loss is first-class data,
//    mirroring the PR 2 DataQuality stance that degraded streams carry
//    their own exclusion evidence. Accounting invariant, checked by the
//    ingest.drop_policy_accounting property:
//        pushed = popped + dropped + depth().
//
// Mutex + condvar, deliberately: the consumer does real inference work per
// item, so queue transfer is nowhere near the bottleneck (bench_ingest
// sustains well past the 50k events/sec target), and a lock keeps the
// close/drain semantics easy to prove. Counters are plain fields guarded by
// the same mutex.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace netcong::serve {

enum class OverflowPolicy : std::uint8_t {
  kBlock,  // push waits for space
  kDrop,   // push on a full queue discards the item and counts the drop
};

const char* overflow_policy_name(OverflowPolicy policy);

struct QueueCounters {
  std::uint64_t pushed = 0;   // accepted into the queue
  std::uint64_t dropped = 0;  // rejected by kDrop on overflow
  std::uint64_t popped = 0;   // handed to the consumer
};

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity, OverflowPolicy policy)
      : capacity_(capacity == 0 ? 1 : capacity), policy_(policy) {}

  // Returns true when the item was accepted. Under kBlock this only returns
  // false after close(); under kDrop it returns false (and counts a drop)
  // whenever the queue is full.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    if (policy_ == OverflowPolicy::kBlock) {
      space_cv_.wait(lock,
                     [this] { return closed_ || items_.size() < capacity_; });
      if (closed_) return false;
    } else if (items_.size() >= capacity_) {
      ++counters_.dropped;
      return false;
    }
    items_.push_back(std::move(item));
    ++counters_.pushed;
    item_cv_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed and drained;
  // nullopt means no item will ever arrive again.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    item_cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    ++counters_.popped;
    space_cv_.notify_one();
    return item;
  }

  // After close(), pushes are rejected and pop() drains the remaining items
  // then returns nullopt. Idempotent.
  void close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    item_cv_.notify_all();
    space_cv_.notify_all();
  }

  std::size_t depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  std::size_t capacity() const { return capacity_; }
  OverflowPolicy policy() const { return policy_; }
  QueueCounters counters() const {
    std::lock_guard<std::mutex> lock(mu_);
    return counters_;
  }

 private:
  const std::size_t capacity_;
  const OverflowPolicy policy_;
  mutable std::mutex mu_;
  std::condition_variable item_cv_;   // consumer waits for items
  std::condition_variable space_cv_;  // kBlock producers wait for space
  std::deque<T> items_;
  QueueCounters counters_;
  bool closed_ = false;
};

}  // namespace netcong::serve
