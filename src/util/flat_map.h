#pragma once

// Open-addressing hash map for the hot paths, replacing node-based
// std::unordered_map where the paper-scale workloads (10M+ NDT tests over a
// 30k-AS topology) spend their time. Design:
//
//  * power-of-two capacity, linear probing, one contiguous slot array —
//    a lookup is one mixed hash, one mask, and a short forward scan over
//    cache-resident entries (no per-node allocation, no pointer chasing);
//  * robin-hood insertion with backward-shift deletion — no tombstones, so
//    probe lengths stay short under churn and erase() never degrades the
//    table;
//  * canonical layout: ties between entries at equal probe distance are
//    broken by key order, which makes the physical slot arrangement (and
//    therefore iteration order) a pure function of the *set* of resident
//    keys — independent of insertion order. Concurrent campaigns that fill
//    a shard under a lock in nondeterministic order still end up with a
//    deterministic table, which is what makes capacity-evictions (see
//    route::PathCache) reproducible;
//  * templated hash finished with a splitmix64 mixer, so weak std::hash
//    identity-hashing of integers still spreads across the power-of-two
//    slot space.
//
// Requirements on K: equality-comparable, strict-weak-ordered by Less
// (used only for the canonical tie-break), and — like V — default
// constructible and movable (slots are stored in plain vectors).
//
// Not thread-safe; callers shard + lock (route::PathCache) or confine a map
// to one phase of a campaign.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace netcong::util {

// SplitMix64 finalizer: full-avalanche mixing of a 64-bit value. Also the
// mixer strengthening hand-rolled key hashes elsewhere (route::PathCache).
inline std::uint64_t splitmix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// Default hash for FlatMap/FlatSet: integral and enum keys are mixed
// directly; everything else goes through std::hash and is then finished
// with the mixer (std::hash on libstdc++ is the identity for integers,
// which would cluster badly in a power-of-two table).
template <typename K>
struct FlatHash {
  std::uint64_t operator()(const K& k) const {
    if constexpr (std::is_integral_v<K>) {
      return splitmix64(static_cast<std::uint64_t>(k));
    } else if constexpr (std::is_enum_v<K>) {
      return splitmix64(
          static_cast<std::uint64_t>(static_cast<std::underlying_type_t<K>>(k)));
    } else {
      return splitmix64(static_cast<std::uint64_t>(std::hash<K>{}(k)));
    }
  }
};

template <>
struct FlatHash<std::string> {
  std::uint64_t operator()(std::string_view s) const {
    // FNV-1a then mixed; matches util::fnv1a's constants.
    std::uint64_t h = 14695981039346656037ull;
    for (unsigned char c : s) h = (h ^ c) * 1099511628211ull;
    return splitmix64(h);
  }
};

template <typename K, typename V, typename Hash = FlatHash<K>,
          typename Less = std::less<K>>
class FlatMap {
 public:
  struct Entry {
    K first{};
    V second{};
  };

  template <bool Const>
  class Iter {
   public:
    using MapT = std::conditional_t<Const, const FlatMap, FlatMap>;
    using reference = std::conditional_t<Const, const Entry&, Entry&>;
    using pointer = std::conditional_t<Const, const Entry*, Entry*>;

    Iter() = default;
    Iter(MapT* m, std::size_t i) : m_(m), i_(i) { skip(); }

    reference operator*() const { return m_->slots_[i_]; }
    pointer operator->() const { return &m_->slots_[i_]; }
    Iter& operator++() {
      ++i_;
      skip();
      return *this;
    }
    Iter operator++(int) {
      Iter tmp = *this;
      ++*this;
      return tmp;
    }
    friend bool operator==(const Iter& a, const Iter& b) {
      return a.i_ == b.i_;
    }
    // Conversion from mutable to const iterator.
    operator Iter<true>() const { return Iter<true>(m_, i_, 0); }

    std::size_t slot() const { return i_; }

   private:
    friend class FlatMap;
    Iter(MapT* m, std::size_t i, int) : m_(m), i_(i) {}  // no skip
    void skip() {
      while (m_ && i_ < m_->dist_.size() && m_->dist_[i_] == kEmpty) ++i_;
    }
    MapT* m_ = nullptr;
    std::size_t i_ = 0;
  };

  using iterator = Iter<false>;
  using const_iterator = Iter<true>;
  using key_type = K;
  using mapped_type = V;

  FlatMap() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return slots_.size(); }

  iterator begin() { return iterator(this, 0); }
  iterator end() { return iterator(this, slots_.size(), 0); }
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const {
    return const_iterator(this, slots_.size(), 0);
  }

  void clear() {
    slots_.clear();
    dist_.clear();
    size_ = 0;
  }

  // Ensures capacity for n entries without rehashing mid-fill.
  void reserve(std::size_t n) {
    std::size_t want = required_capacity(n);
    if (want > slots_.size()) rehash(want);
  }

  const_iterator find(const K& key) const {
    return const_iterator(this, find_slot(key), 0);
  }
  iterator find(const K& key) {
    return iterator(this, find_slot(key), 0);
  }
  bool contains(const K& key) const { return find_slot(key) < slots_.size(); }
  std::size_t count(const K& key) const { return contains(key) ? 1 : 0; }

  V& operator[](const K& key) { return try_emplace(key).first->second; }

  V& at(const K& key) {
    std::size_t i = find_slot(key);
    if (i >= slots_.size()) throw std::out_of_range("FlatMap::at");
    return slots_[i].second;
  }
  const V& at(const K& key) const {
    return const_cast<FlatMap*>(this)->at(key);
  }

  template <typename... Args>
  std::pair<iterator, bool> try_emplace(const K& key, Args&&... args) {
    // Find before growing: access to a resident key never rehashes, so
    // references stay valid across operator[] hits (callers rely on this
    // when holding a mapped reference while touching other keys).
    if (!slots_.empty()) {
      std::size_t i = find_slot(key);
      if (i < slots_.size()) return {iterator(this, i, 0), false};
    }
    grow_if_needed();
    std::size_t at = insert_new(key, V(std::forward<Args>(args)...));
    return {iterator(this, at, 0), true};
  }

  std::pair<iterator, bool> insert(std::pair<K, V> kv) {
    return try_emplace(std::move(kv.first), std::move(kv.second));
  }

  // insert-or-assign semantics.
  std::pair<iterator, bool> assign(const K& key, V value) {
    auto [it, fresh] = try_emplace(key);
    it->second = std::move(value);
    return {it, fresh};
  }

  std::size_t erase(const K& key) {
    std::size_t i = find_slot(key);
    if (i >= slots_.size()) return 0;
    erase_slot(i);
    return 1;
  }

  // Erases the entry at `it`; returns an iterator to the next occupied
  // slot. Backward-shift may pull a later entry into the erased slot, so
  // the returned iterator re-examines the same index.
  iterator erase(iterator it) {
    erase_slot(it.slot());
    return iterator(this, it.slot());
  }

  // Content equality, independent of capacity and layout (mirrors the
  // std::unordered_map contract).
  friend bool operator==(const FlatMap& a, const FlatMap& b) {
    if (a.size_ != b.size_) return false;
    for (const Entry& e : a) {
      auto it = b.find(e.first);
      if (it == b.end() || !(it->second == e.second)) return false;
    }
    return true;
  }
  friend bool operator!=(const FlatMap& a, const FlatMap& b) {
    return !(a == b);
  }

 private:
  static constexpr std::uint16_t kEmpty = 0xffff;
  static constexpr std::uint16_t kMaxDist = 0xfffe;

  static std::size_t required_capacity(std::size_t n) {
    // Max load factor 0.75.
    std::size_t cap = 16;
    while (cap * 3 < n * 4) cap <<= 1;
    return cap;
  }

  std::size_t home(const K& key) const {
    return static_cast<std::size_t>(Hash{}(key)) & (slots_.size() - 1);
  }
  std::size_t next(std::size_t i) const {
    return (i + 1) & (slots_.size() - 1);
  }

  // Index of the slot holding `key`, or slots_.size() when absent.
  std::size_t find_slot(const K& key) const {
    if (slots_.empty()) return 0;  // == slots_.size()
    std::size_t i = home(key);
    std::uint16_t d = 0;
    while (true) {
      std::uint16_t rd = dist_[i];
      if (rd == kEmpty || rd < d) return slots_.size();
      if (rd == d && slots_[i].first == key) return i;
      i = next(i);
      ++d;
      if (d > kMaxDist) return slots_.size();
    }
  }

  void grow_if_needed() {
    if (slots_.empty()) {
      rehash(16);
    } else if ((size_ + 1) * 4 > slots_.size() * 3) {
      rehash(slots_.size() * 2);
    }
  }

  void rehash(std::size_t new_cap) {
    std::vector<Entry> old_slots = std::move(slots_);
    std::vector<std::uint16_t> old_dist = std::move(dist_);
    slots_.assign(new_cap, Entry{});
    dist_.assign(new_cap, kEmpty);
    size_ = 0;
    for (std::size_t i = 0; i < old_slots.size(); ++i) {
      if (old_dist[i] == kEmpty) continue;
      insert_new(std::move(old_slots[i].first),
                 std::move(old_slots[i].second));
    }
  }

  // Robin-hood insertion of a key known to be absent. Returns the slot the
  // key ended up in. Ties at equal probe distance are broken by Less on the
  // keys, which makes the final layout independent of insertion order.
  std::size_t insert_new(K key, V value) {
    std::size_t i = home(key);
    std::uint16_t d = 0;
    std::size_t placed_at = slots_.size();  // slot of the *original* key
    bool original_in_hand = true;
    while (true) {
      if (dist_[i] == kEmpty) {
        slots_[i].first = std::move(key);
        slots_[i].second = std::move(value);
        dist_[i] = d;
        if (original_in_hand) placed_at = i;
        ++size_;
        return placed_at;
      }
      if (dist_[i] < d ||
          (dist_[i] == d && Less{}(key, slots_[i].first))) {
        // Rob: displace the resident entry and keep inserting it.
        std::swap(key, slots_[i].first);
        std::swap(value, slots_[i].second);
        std::swap(d, dist_[i]);
        if (original_in_hand) {
          placed_at = i;
          original_in_hand = false;
        }
      }
      i = next(i);
      ++d;
      if (d > kMaxDist) {
        // Pathological clustering; grow and restart with the entry in hand.
        K k2 = std::move(key);
        V v2 = std::move(value);
        rehash(slots_.size() * 2);
        std::size_t at = insert_new(std::move(k2), std::move(v2));
        // The original key's slot moved in the rehash; refind it.
        return original_in_hand ? at : find_slot_after_rehash(placed_at, at);
      }
    }
  }

  std::size_t find_slot_after_rehash(std::size_t, std::size_t fallback) {
    // Only reachable through the pathological-growth path above after the
    // original entry was already placed; its slot is stale, so refinding by
    // key would need the key — callers never use the return value in this
    // situation (try_emplace re-finds via the iterator it constructs).
    return fallback;
  }

  // Backward-shift deletion: close the gap by pulling every displaced
  // successor one slot back, preserving the canonical layout tombstone-free.
  void erase_slot(std::size_t i) {
    std::size_t j = next(i);
    while (dist_[j] != kEmpty && dist_[j] > 0) {
      slots_[i].first = std::move(slots_[j].first);
      slots_[i].second = std::move(slots_[j].second);
      dist_[i] = static_cast<std::uint16_t>(dist_[j] - 1);
      i = j;
      j = next(j);
    }
    slots_[i] = Entry{};
    dist_[i] = kEmpty;
    --size_;
  }

  std::vector<Entry> slots_;
  std::vector<std::uint16_t> dist_;  // probe distance per slot; kEmpty = free
  std::size_t size_ = 0;
};

}  // namespace netcong::util
