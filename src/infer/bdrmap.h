#pragma once

// bdrmap-style border mapping (Luckie et al., IMC 2016 — reference [26] in
// the paper): from a vantage point inside network V, infer all of V's
// interdomain interconnections visible from that VP, at both the AS and
// router level, annotated with the business relationship.
//
// Pipeline: (1) MAP-IT-style operating-AS assignment over the VP's
// full-prefix traceroute corpus; (2) extract crossings out of V's org;
// (3) alias-resolve far-side interfaces into routers; (4) annotate each
// neighbor with the AS-rank relationship.

#include <unordered_map>
#include <vector>

#include "infer/alias.h"
#include "infer/datasets.h"
#include "infer/mapit.h"
#include "measure/traceroute.h"
#include "topo/relationships.h"

namespace netcong::infer {

struct BdrmapBorder {
  topo::Asn neighbor = 0;
  topo::RelType rel = topo::RelType::kNone;  // V's relationship to neighbor
  // Distinct far-side interface addresses observed crossing to this
  // neighbor.
  std::vector<topo::IpAddr> far_ifaces;
  // Distinct far-side routers (alias groups).
  std::vector<std::uint64_t> far_routers;
};

struct BdrmapCounts {
  int as_total = 0, router_total = 0;
  int as_cust = 0, router_cust = 0;
  int as_prov = 0, router_prov = 0;
  int as_peer = 0, router_peer = 0;
  int as_unknown = 0, router_unknown = 0;
};

struct BdrmapResult {
  topo::Asn vp_as = 0;
  std::vector<BdrmapBorder> borders;  // one entry per neighbor ASN
  MapItResult mapit;                  // underlying interface assignment

  BdrmapCounts counts() const;
  // Effective sample coverage of the corpus this map was inferred from.
  const CorpusCoverage& coverage() const { return mapit.coverage; }
};

// Fraction of the reference map's neighbor ASes that `inferred` also found
// — how much border visibility survives a degraded corpus (reference is
// typically the clean-corpus run).
double bdrmap_neighbor_recall(const BdrmapResult& inferred,
                              const BdrmapResult& reference);

struct BdrmapConfig {
  MapItConfig mapit;
};

// Border-extraction stage alone: crossings out of the VP's org in an
// already-computed MAP-IT result are grouped by neighbor ASN, alias-resolved
// and relationship-annotated. Takes the MapItResult by value (it becomes
// the result's `mapit` member). Shared between the batch `run_bdrmap` and
// the serve subsystem's incremental snapshots, so the two are equivalent by
// construction.
BdrmapResult borders_from_mapit(MapItResult mapit, topo::Asn vp_as,
                                const OrgMap& orgs,
                                const topo::RelationshipTable& rels,
                                const AliasResolver& aliases);

BdrmapResult run_bdrmap(const std::vector<measure::TracerouteRecord>& corpus,
                        topo::Asn vp_as, const Ip2As& ip2as,
                        const OrgMap& orgs,
                        const topo::RelationshipTable& rels,
                        const AliasResolver& aliases,
                        const BdrmapConfig& config = BdrmapConfig{});

}  // namespace netcong::infer
