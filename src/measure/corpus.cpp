#include "measure/corpus.h"

#include "topo/topology.h"

namespace netcong::measure {

PathRef PathPool::intern(const route::PathCache::Key& key,
                         std::shared_ptr<const route::RouterPath> path) {
  auto [it, fresh] =
      index_.try_emplace(key, static_cast<PathRef>(paths_.size()));
  if (fresh) paths_.push_back(std::move(path));
  return it->second;
}

const route::RouterPath& PathPool::at(PathRef ref) const {
  static const route::RouterPath kEmpty;
  if (ref == kNoPath) return kEmpty;
  return *paths_[ref];
}

void NdtCorpus::resize(std::size_t n) {
  test_id.resize(n);
  client.resize(n);
  server.resize(n);
  utc_time_hours.resize(n);
  download_mbps.resize(n);
  upload_mbps.resize(n);
  flow_rtt_ms.resize(n);
  retrans_rate.resize(n);
  congestion_signals.resize(n);
  client_asn.resize(n);
  server_asn.resize(n);
  status.resize(n);
  truncated.resize(n);
  has_webstats.resize(n, 1);
  truth_path.resize(n, kNoPath);
  truth_bottleneck.resize(n);
  truth_access_limited.resize(n);
}

NdtRecord NdtCorpus::materialize_scalar(std::size_t i) const {
  NdtRecord r;
  r.test_id = test_id[i];
  r.client = client[i];
  r.server = server[i];
  r.utc_time_hours = utc_time_hours[i];
  r.download_mbps = download_mbps[i];
  r.upload_mbps = upload_mbps[i];
  r.flow_rtt_ms = flow_rtt_ms[i];
  r.retrans_rate = retrans_rate[i];
  r.congestion_signals = congestion_signals[i];
  r.client_asn = client_asn[i];
  r.server_asn = server_asn[i];
  r.status = status[i];
  r.truncated = truncated[i] != 0;
  r.has_webstats = has_webstats[i] != 0;
  r.truth_bottleneck = truth_bottleneck[i];
  r.truth_access_limited = truth_access_limited[i] != 0;
  return r;
}

NdtRecord NdtCorpus::materialize(std::size_t i, const PathPool& pool) const {
  NdtRecord r = materialize_scalar(i);
  r.truth_path = pool.at(truth_path[i]);
  return r;
}

std::size_t TraceCorpus::total_hops() const {
  std::size_t n = 0;
  for (std::uint32_t c : hop_count) n += c;
  return n;
}

TracerouteRecord TraceCorpus::materialize(std::size_t i,
                                          const topo::Topology& topo,
                                          const PathPool& pool) const {
  TracerouteRecord r;
  r.src_host = src_host[i];
  r.dst = dst[i];
  r.utc_time_hours = utc_time_hours[i];
  r.reached_dst = reached_dst[i] != 0;
  r.truth = pool.at(truth[i]);
  const PackedTraceHop* span = hops[i];
  r.hops.reserve(hop_count[i]);
  for (std::uint32_t h = 0; h < hop_count[i]; ++h) {
    const PackedTraceHop& ph = span[h];
    TraceHop th;
    th.ttl = ph.ttl;
    th.responded = ph.responded != 0;
    if (th.responded) {
      th.addr = ph.addr;
      th.rtt_ms = ph.rtt_ms;
      if (ph.iface.valid()) th.dns_name = topo.iface(ph.iface).dns_name;
    }
    r.hops.push_back(std::move(th));
  }
  return r;
}

CampaignResult ColumnarCampaignResult::materialize() const {
  CampaignResult out;
  out.tests.reserve(tests.size());
  for (std::size_t i = 0; i < tests.size(); ++i) {
    out.tests.push_back(tests.materialize(i, paths));
  }
  out.traceroutes.reserve(traceroutes.size());
  for (std::size_t i = 0; i < traceroutes.size(); ++i) {
    out.traceroutes.push_back(traceroutes.materialize(i, *topo, paths));
  }
  out.traceroutes_skipped_busy = traceroutes_skipped_busy;
  out.traceroutes_skipped_cached = traceroutes_skipped_cached;
  out.traceroutes_failed = traceroutes_failed;
  out.quality = quality;
  return out;
}

}  // namespace netcong::measure
