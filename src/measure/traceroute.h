#pragma once

// Paris traceroute simulation. A traceroute walks the same router-level
// path a flow with the given key would take (Paris keeps the flow key
// constant, so ECMP decisions are stable across TTLs) and records, per hop,
// the address of the interface the probe *arrived* on — which on an
// interdomain link may be numbered from either AS's space, the central
// difficulty in traceroute-based border inference.
//
// Artifacts modeled: unresponsive hops (stars), probes suppressed near the
// client (home-gateway firewalls), and missing PTR records.

#include <optional>
#include <string>
#include <vector>

#include "route/forwarding.h"
#include "route/path_cache.h"
#include "sim/traffic.h"
#include "topo/topology.h"
#include "util/rng.h"

namespace netcong::measure {

struct TraceHop {
  int ttl = 0;
  bool responded = false;
  topo::IpAddr addr;       // valid only if responded
  double rtt_ms = 0.0;
  std::string dns_name;    // PTR record if any
};

struct TracerouteRecord {
  std::uint32_t src_host = 0;
  topo::IpAddr dst;
  double utc_time_hours = 0.0;
  std::vector<TraceHop> hops;
  bool reached_dst = false;
  // Ground truth for validation (not visible to inference code).
  route::RouterPath truth;
};

struct TracerouteOptions {
  double star_prob = 0.03;        // per-hop unresponsiveness
  double client_silent_prob = 0.35;  // destination host does not reply
  bool paris = true;              // keep flow key fixed across TTLs
  // When set, hop RTTs include the time-dependent queueing delay of the
  // links traversed (needed for latency-based congestion probing, e.g.
  // TSLP); when null, RTTs reflect propagation only.
  const sim::TrafficModel* traffic = nullptr;
};

// Runs one traceroute along the forwarder's path. When a PathCache is
// given, path construction is memoized through it (results are identical;
// Paris traceroutes use a fixed flow key per (src, dst) pair, so repeat
// traces hit the cache).
TracerouteRecord run_traceroute(const topo::Topology& topo,
                                const route::Forwarder& fwd,
                                std::uint32_t src_host, topo::IpAddr dst,
                                double utc_time_hours,
                                const TracerouteOptions& options,
                                util::Rng& rng,
                                const route::PathCache* cache = nullptr);

// One latency probe (ping-style) to an arbitrary address: round-trip time
// including the queueing delay of every link crossed (both directions are
// assumed to traverse the same links). Returns a negative value when the
// target is unreachable.
double rtt_probe(const topo::Topology& topo, const route::Forwarder& fwd,
                 const sim::TrafficModel& traffic, std::uint32_t src_host,
                 topo::IpAddr target, double utc_time_hours, util::Rng& rng);

}  // namespace netcong::measure
