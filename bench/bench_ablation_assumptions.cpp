// Ablations of the assumptions behind simplified AS-level tomography:
//
//  (1) Assumption 1 — "no congestion internal to ASes". The paper could not
//      test this ("the data at our disposal does not allow us to
//      investigate"); the simulator can: saturate a few internal backbone
//      links of large access ISPs and watch AS-level tomography blame the
//      innocent interdomain neighbors.
//
//  (2) Paris traceroute vs classic traceroute. Paris keeps the flow key
//      fixed so ECMP decisions match the measured flow; classic traceroute
//      varies header fields and can take a different ECMP branch,
//      mis-attributing which IP-level interdomain link the test crossed.

#include <cmath>
#include <cstdio>
#include <set>

#include "common.h"
#include "core/diurnal.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using namespace netcong;

// Interdomain links on a path, as an ordered list.
std::vector<topo::LinkId> interdomain_links_of_path(
    const topo::Topology& topo, const route::RouterPath& path) {
  std::vector<topo::LinkId> out;
  for (topo::LinkId l : path.links) {
    if (topo.link(l).kind == topo::LinkKind::kInterdomain) out.push_back(l);
  }
  return out;
}

void ablation_assumption1() {
  std::printf("\n--- Ablation 1: congestion internal to an AS ---\n");
  gen::GeneratorConfig cfg = bench::bench_config();
  cfg.congested.push_back({"none", "none", 0.0});  // disable default pairs
  cfg.congest_internal_links = true;
  bench::Context ctx(cfg);

  std::size_t internal_congested = 0;
  for (topo::LinkId l : ctx.world.congested_links) {
    if (ctx.world.topo->link(l).kind == topo::LinkKind::kInternal) {
      ++internal_congested;
    }
  }
  std::printf("world: %zu congested links, %zu of them internal backbone "
              "links (no interdomain link is congested)\n",
              ctx.world.congested_links.size(), internal_congested);

  bench::CampaignData data = bench::run_standard_campaign(ctx, 28, 8.0, 21);
  auto source_of = [&](const measure::NdtRecord& t) {
    const auto& info = ctx.world.topo->as_info(t.server_asn);
    return info.type == topo::AsType::kTransit ? info.name : std::string();
  };
  auto isp_of_fn = [&](const measure::NdtRecord& t) {
    auto it = ctx.isp_of.find(t.client_asn);
    return it == ctx.isp_of.end() ? std::string() : it->second;
  };
  auto groups = core::build_diurnal_groups(data.result.tests, ctx.world,
                                           source_of, isp_of_fn);
  auto calls = core::infer_congestion(groups, 0.35, 20);
  std::size_t accused_pairs = 0;
  for (const auto& c : calls) {
    if (!c.congested) continue;
    ++accused_pairs;
    if (accused_pairs <= 8) {
      std::printf("  inferred congested interconnection: %s <-> %s "
                  "(drop %.0f%%, %zu tests) — WRONG, congestion is inside "
                  "the ISP\n",
                  c.key.source.c_str(), c.key.isp.c_str(),
                  100 * c.comparison.relative_drop, c.tests);
    }
  }
  std::printf("AS-level tomography accused %zu interdomain pairs; ground "
              "truth has zero congested interdomain links. Assumption 1 is "
              "load-bearing.\n",
              accused_pairs);
}

void ablation_paris() {
  std::printf("\n--- Ablation 2: Paris vs classic traceroute ---\n");
  bench::Context ctx(bench::bench_config());
  util::Rng rng(33);

  // For client/server pairs: does the traceroute cross the same IP-level
  // interdomain links as the NDT flow it is paired with?
  measure::TracerouteOptions paris;
  paris.paris = true;
  paris.star_prob = 0.0;
  measure::TracerouteOptions classic;
  classic.paris = false;
  classic.star_prob = 0.0;

  measure::Platform mlab = ctx.mlab_platform();
  int total = 0, paris_match = 0, classic_match = 0;
  int paris_stable = 0, classic_stable = 0;
  for (std::size_t i = 0; i < ctx.world.clients.size(); i += 3) {
    std::uint32_t client = ctx.world.clients[i];
    std::uint32_t server = mlab.select_server(client, rng);
    // The NDT flow's path.
    route::FlowKey flow;
    flow.src = ctx.world.topo->host(server).addr;
    flow.dst = ctx.world.topo->host(client).addr;
    flow.src_port = 3001;
    flow.dst_port = static_cast<std::uint16_t>(rng.uniform_int(32768, 60999));
    auto ndt_path = ctx.fwd.path(server, flow.dst, flow);
    if (!ndt_path.valid) continue;
    auto ndt_links = interdomain_links_of_path(*ctx.world.topo, ndt_path);

    auto links_of = [&](const measure::TracerouteOptions& opt) {
      auto tr = measure::run_traceroute(*ctx.world.topo, ctx.fwd, server,
                                        flow.dst, 12.0, opt, rng);
      return interdomain_links_of_path(*ctx.world.topo, tr.truth);
    };
    ++total;
    // (a) agreement with the measured flow's links.
    auto paris_links = links_of(paris);
    auto classic_links = links_of(classic);
    paris_match += paris_links == ndt_links ? 1 : 0;
    classic_match += classic_links == ndt_links ? 1 : 0;
    // (b) self-consistency across repeated traceroutes.
    paris_stable += links_of(paris) == paris_links ? 1 : 0;
    classic_stable += links_of(classic) == classic_links ? 1 : 0;
  }
  std::printf("self-consistency (two traceroutes, same path?):\n");
  std::printf("  Paris traceroute:   %d/%d (%.1f%%)\n", paris_stable, total,
              100.0 * paris_stable / total);
  std::printf("  classic traceroute: %d/%d (%.1f%%)\n", classic_stable,
              total, 100.0 * classic_stable / total);
  std::printf("agreement with the paired NDT flow's IP-level links:\n");
  std::printf("  Paris traceroute:   %d/%d (%.1f%%)\n", paris_match, total,
              100.0 * paris_match / total);
  std::printf("  classic traceroute: %d/%d (%.1f%%)\n", classic_match, total,
              100.0 * classic_match / total);
  std::printf(
      "Paris pins one path per (src,dst) pair — repeatable, so per-link\n"
      "stratification is well defined. Classic traceroute re-rolls the ECMP\n"
      "dice every run. Note that even Paris does not guarantee the *NDT\n"
      "flow's* branch (the test uses its own ports) — a residual ambiguity\n"
      "the paper's recommendation of server-side bdrmap addresses.\n");
}

}  // namespace

int main() {
  bench::print_header("Ablations",
                      "Assumption 1 (internal congestion) and Paris vs "
                      "classic traceroute");
  ablation_assumption1();
  ablation_paris();
  return 0;
}
