#include "util/csv.h"

#include <fstream>

namespace netcong::util {

namespace {
std::string escape(const std::string& field) {
  bool needs_quotes = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += '"';
  return out;
}
}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  rows_.push_back(cells);
  rows_.back().resize(headers_.size());
}

std::string CsvWriter::render() const {
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += escape(row[i]);
    }
    out.push_back('\n');
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out;
}

bool CsvWriter::write_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << render();
  return static_cast<bool>(f);
}

}  // namespace netcong::util
