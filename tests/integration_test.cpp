#include <gtest/gtest.h>

#include <cmath>

#include "core/adjacency.h"
#include "core/coverage.h"
#include "core/diurnal.h"
#include "core/link_diversity.h"
#include "core/stratify.h"
#include "core/threshold.h"
#include "gen/workload.h"
#include "helpers.h"
#include "infer/bdrmap.h"
#include "measure/alexa.h"
#include "measure/ark.h"
#include "measure/matching.h"
#include "measure/ndt.h"
#include "measure/platform.h"
#include "route/bgp.h"
#include "route/forwarding.h"

namespace netcong {
namespace {

using gen::World;

// One end-to-end pipeline over the small world: a two-week crowdsourced
// NDT campaign with server-side traceroutes, matched and pushed through
// MAP-IT, then analyzed.
struct Pipeline {
  explicit Pipeline(const World& w)
      : world(w),
        bgp(*w.topo),
        fwd(*w.topo, bgp),
        model(*w.topo, *w.traffic),
        mlab("mlab", *w.topo, w.mlab_servers),
        ip2as(*w.topo),
        orgs(*w.topo) {
    util::Rng rng(1234);
    gen::WorkloadConfig wl;
    wl.days = 14;
    wl.mean_tests_per_client = 8.0;
    auto schedule = gen::crowdsourced_schedule(world, world.clients, wl, rng);

    measure::CampaignConfig cc;
    measure::NdtCampaign campaign(world, fwd, model, mlab, cc);
    result = campaign.run(schedule, rng);

    measure::MatchOptions mo;
    matched = measure::match_tests(result.tests, result.traceroutes,
                                   *world.topo, mo, &match_stats);
    mapit = infer::run_mapit(result.traceroutes, ip2as, orgs);

    for (const auto& [name, asns] : world.isp_asns) {
      for (topo::Asn a : asns) isp_of[a] = name;
    }
  }

  const World& world;
  route::BgpRouting bgp;
  route::Forwarder fwd;
  sim::ThroughputModel model;
  measure::Platform mlab;
  infer::Ip2As ip2as;
  infer::OrgMap orgs;
  measure::CampaignResult result;
  std::vector<measure::MatchedTest> matched;
  measure::MatchStats match_stats;
  infer::MapItResult mapit;
  std::map<topo::Asn, std::string> isp_of;
};

Pipeline& pipeline() {
  static Pipeline p(test::small_world());
  return p;
}

TEST(Integration, CampaignProducesData) {
  Pipeline& p = pipeline();
  EXPECT_GT(p.result.tests.size(), 3000u);
  EXPECT_GT(p.result.traceroutes.size(), 1000u);
  // Every test has a valid ground-truth path (the world is connected).
  std::size_t valid = 0;
  for (const auto& t : p.result.tests) valid += t.truth_path.valid;
  EXPECT_EQ(valid, p.result.tests.size());
}

TEST(Integration, MatchingFractionRealistic) {
  Pipeline& p = pipeline();
  // Section 4.1 reports 71-87% matching; the busy-tracer model should land
  // in a broadly similar range, and strictly below 100%.
  EXPECT_GT(p.match_stats.fraction(), 0.5);
  EXPECT_LE(p.match_stats.fraction(), 1.0);
}

TEST(Integration, AdjacencyReproducesFig1Ordering) {
  Pipeline& p = pipeline();
  auto stats =
      core::analyze_adjacency(p.matched, p.mapit, p.ip2as, p.orgs, p.isp_of);
  ASSERT_GE(stats.size(), 5u);

  std::map<std::string, double> one_hop;
  for (const auto& s : stats) {
    if (s.one_hop + s.two_hops + s.more_hops < 30) continue;
    one_hop[s.isp] = s.one_hop_fraction();
  }
  // Shape targets from Figure 1: the top-5 ISPs are mostly one hop away;
  // Charter/Cox/Frontier are mostly NOT; Windstream almost never is.
  ASSERT_TRUE(one_hop.count("Comcast"));
  ASSERT_TRUE(one_hop.count("Cox"));
  EXPECT_GT(one_hop["Comcast"], 0.75);
  if (one_hop.count("AT&T")) {
    EXPECT_GT(one_hop["AT&T"], 0.7);
  }
  EXPECT_LT(one_hop["Cox"], 0.65);
  if (one_hop.count("Windstream")) {
    EXPECT_LT(one_hop["Windstream"], 0.3);
  }
  // Ordering: Comcast's one-hop fraction exceeds Cox's.
  EXPECT_GT(one_hop["Comcast"], one_hop["Cox"]);
}

TEST(Integration, LinkDiversityShowsMultipleIpLinks) {
  Pipeline& p = pipeline();
  // Pick the server AS with the most matched tests (a Level3-like host).
  std::map<topo::Asn, std::size_t> per_server_as;
  for (const auto& m : p.matched) {
    if (m.traceroute) per_server_as[m.test->server_asn]++;
  }
  ASSERT_FALSE(per_server_as.empty());
  topo::Asn top_server =
      std::max_element(per_server_as.begin(), per_server_as.end(),
                       [](auto& a, auto& b) { return a.second < b.second; })
          ->first;

  std::map<std::uint32_t, std::string> dns_of;
  for (const auto& i : p.world.topo->interfaces()) {
    if (!i.dns_name.empty()) dns_of[i.addr.value] = i.dns_name;
  }
  auto diversity = core::analyze_link_diversity(
      p.matched, top_server, p.mapit, p.ip2as, p.orgs, p.isp_of, dns_of);
  ASSERT_FALSE(diversity.empty());
  // Table 2 shape: at least one client AS is reached over multiple IP-level
  // links with a non-uniform test distribution.
  bool multi_link = false;
  for (const auto& d : diversity) {
    if (d.links.size() >= 2 && d.links[0].tests > 2 * d.links[1].tests) {
      multi_link = true;
    }
  }
  EXPECT_TRUE(multi_link);
}

TEST(Integration, DiurnalInferenceFindsPlantedCongestion) {
  Pipeline& p = pipeline();
  auto source_of = [&](const measure::NdtRecord& t) {
    return p.world.topo->as_info(t.server_asn).name;
  };
  auto isp_of_fn = [&](const measure::NdtRecord& t) {
    auto it = p.isp_of.find(t.client_asn);
    return it == p.isp_of.end() ? std::string() : it->second;
  };
  auto groups = core::build_diurnal_groups(p.result.tests, p.world,
                                           source_of, isp_of_fn);
  auto calls = core::infer_congestion(groups, 0.35, 15);

  // The planted scenario: GTT->AT&T congested; GTT->Comcast busy but not.
  bool att_called = false, comcast_called = false;
  bool att_seen = false, comcast_seen = false;
  for (const auto& c : calls) {
    if (c.key.source == "GTT" && c.key.isp == "AT&T" && c.tests > 100) {
      att_seen = true;
      att_called = c.congested;
    }
    if (c.key.source == "GTT" && c.key.isp == "Comcast" && c.tests > 100) {
      comcast_seen = true;
      comcast_called = c.congested;
    }
  }
  ASSERT_TRUE(att_seen);
  ASSERT_TRUE(comcast_seen);
  EXPECT_TRUE(att_called);
  EXPECT_FALSE(comcast_called);
  // Ground truth agrees.
  EXPECT_TRUE(core::truth_pair_congested(
      p.world, p.world.transit_asns.at("GTT"), "AT&T"));
  EXPECT_FALSE(core::truth_pair_congested(
      p.world, p.world.transit_asns.at("GTT"), "Comcast"));
}

TEST(Integration, TimeOfDayBiasVisibleInSampleCounts) {
  Pipeline& p = pipeline();
  auto source_of = [&](const measure::NdtRecord&) { return std::string("all"); };
  auto isp_of_fn = [&](const measure::NdtRecord& t) {
    auto it = p.isp_of.find(t.client_asn);
    return it == p.isp_of.end() ? std::string() : it->second;
  };
  auto groups = core::build_diurnal_groups(p.result.tests, p.world,
                                           source_of, isp_of_fn);
  std::size_t evening = 0, night = 0;
  for (const auto& [key, g] : groups) {
    evening += g.throughput.count_over_hours(19, 23);
    night += g.throughput.count_over_hours(2, 6);
  }
  // Paper Section 6.1: far fewer samples off-peak.
  EXPECT_GT(evening, 2 * night);
}

TEST(Integration, StratificationSeparatesMixedLinks) {
  Pipeline& p = pipeline();
  // Find a (server AS, client AS) pair with several strata.
  std::map<std::pair<topo::Asn, topo::Asn>, std::size_t> pairs;
  for (const auto& m : p.matched) {
    if (m.traceroute) {
      pairs[{m.test->server_asn, m.test->client_asn}]++;
    }
  }
  bool found_multi = false;
  for (const auto& [key, n] : pairs) {
    if (n < 200) continue;
    auto strat = core::stratify_by_link(p.matched, key.first, key.second,
                                        p.world, p.mapit, p.ip2as, p.orgs);
    if (strat.strata.size() >= 2) {
      found_multi = true;
      EXPECT_EQ(std::max<std::size_t>(1, strat.aggregate.total_count()),
                strat.aggregate.total_count());
      break;
    }
  }
  EXPECT_TRUE(found_multi);
}

TEST(Integration, BdrmapCoveragePipeline) {
  Pipeline& p = pipeline();
  std::uint32_t vp = p.world.ark_vps[0];
  topo::Asn vp_as = p.world.topo->host(vp).asn;
  util::Rng rng(77);

  measure::ArkCampaignOptions opt;
  auto full = measure::ark_full_prefix_campaign(p.world, p.fwd, vp, opt, rng);
  infer::AliasResolver aliases(*p.world.topo, 0.9, 7);
  auto bdr = infer::run_bdrmap(full, vp_as, p.ip2as, p.orgs,
                               p.world.topo->relationships(), aliases);

  auto to_mlab = measure::ark_targeted_campaign(p.world, p.fwd, vp,
                                                p.world.mlab_servers, opt, rng);
  auto to_st = measure::ark_targeted_campaign(
      p.world, p.fwd, vp, p.world.speedtest_servers_2017, opt, rng);
  auto alexa_targets = measure::resolve_alexa_targets(p.world, vp);
  auto to_alexa = measure::ark_targeted_campaign(p.world, p.fwd, vp,
                                                 alexa_targets, opt, rng);

  auto cov = core::analyze_coverage("vp", "net", bdr, to_mlab, to_st,
                                    to_alexa, p.ip2as, p.orgs, aliases);
  // Coverage shape (paper Section 5.2): M-Lab covers a small fraction of
  // all AS-level interconnections; Speedtest covers more.
  ASSERT_GT(cov.discovered.as_level.size(), 10u);
  double mlab_pct = core::VpCoverage::pct(cov.mlab.as_level.size(),
                                          cov.discovered.as_level.size());
  double st_pct = core::VpCoverage::pct(cov.speedtest.as_level.size(),
                                        cov.discovered.as_level.size());
  EXPECT_LT(mlab_pct, 35.0);
  EXPECT_GT(st_pct, mlab_pct);
  // Section 5.3: most interconnections toward popular content are not
  // covered by M-Lab.
  auto ov = core::overlap(cov.mlab, cov.alexa);
  EXPECT_GT(ov.alexa_not_platform_as, 0u);
}

}  // namespace
}  // namespace netcong
