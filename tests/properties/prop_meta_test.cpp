// Gtest wrapper for the "meta" property family (metamorphic inference
// invariants): corpus shuffles, IP relabelings, evidence duplication,
// vantage-point monotonicity, and no-op toggles must not change what the
// inference layers conclude.

#include <gtest/gtest.h>

#include "check/properties.h"

namespace netcong::check {
namespace {

std::vector<const Property*> family_properties(const char* family) {
  std::vector<const Property*> out;
  for (const Property& p : all_properties()) {
    if (p.family == family) out.push_back(&p);
  }
  return out;
}

class MetaProperty : public ::testing::TestWithParam<const Property*> {};

TEST_P(MetaProperty, Holds) {
  util::pbt::Config cfg;
  cfg.iterations = 0;  // the property's bounded default budget
  util::pbt::CheckResult result = run_property(*GetParam(), cfg);
  EXPECT_TRUE(result.ok) << result.report;
}

std::string test_name(const ::testing::TestParamInfo<const Property*>& info) {
  std::string name = info.param->name;
  for (char& c : name) {
    if (c == '.') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Registry, MetaProperty,
                         ::testing::ValuesIn(family_properties("meta")),
                         test_name);

TEST(MetaFamily, RegistryHasEnoughProperties) {
  EXPECT_GE(family_properties("meta").size(), 6u);
}

}  // namespace
}  // namespace netcong::check
