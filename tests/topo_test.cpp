#include <gtest/gtest.h>

#include "helpers.h"
#include "topo/dns.h"
#include "topo/geo.h"
#include "topo/relationships.h"
#include "topo/topology.h"

namespace netcong::topo {
namespace {

using test::HandTopo;

TEST(Relationships, CustomerProviderSymmetry) {
  RelationshipTable t;
  t.add_customer(100, 200);
  EXPECT_EQ(t.between(100, 200), RelType::kCustomer);
  EXPECT_EQ(t.between(200, 100), RelType::kProvider);
  EXPECT_EQ(t.between(100, 300), RelType::kNone);
}

TEST(Relationships, PeerSymmetry) {
  RelationshipTable t;
  t.add_peer(1, 2);
  EXPECT_EQ(t.between(1, 2), RelType::kPeer);
  EXPECT_EQ(t.between(2, 1), RelType::kPeer);
}

TEST(Relationships, OverwriteChangesBothDirections) {
  RelationshipTable t;
  t.add_customer(1, 2);
  t.add_peer(1, 2);
  EXPECT_EQ(t.between(1, 2), RelType::kPeer);
  EXPECT_EQ(t.between(2, 1), RelType::kPeer);
  // Adjacency lists stay deduplicated.
  EXPECT_EQ(t.neighbors(1).size(), 1u);
}

TEST(Relationships, Invert) {
  EXPECT_EQ(invert(RelType::kCustomer), RelType::kProvider);
  EXPECT_EQ(invert(RelType::kProvider), RelType::kCustomer);
  EXPECT_EQ(invert(RelType::kPeer), RelType::kPeer);
}

TEST(Geo, HaversineKnownDistance) {
  // NYC to LA is roughly 3940 km.
  double d = haversine_km(40.71, -74.01, 34.05, -118.24);
  EXPECT_NEAR(d, 3940, 60);
}

TEST(Geo, ZeroDistance) {
  EXPECT_NEAR(haversine_km(40, -74, 40, -74), 0.0, 1e-9);
}

TEST(Geo, PropagationDelayScales) {
  EXPECT_LT(propagation_delay_ms(0), propagation_delay_ms(1000));
  // ~1000 km should be in the 5-10 ms one-way range.
  EXPECT_GT(propagation_delay_ms(1000), 4.0);
  EXPECT_LT(propagation_delay_ms(1000), 12.0);
}

TEST(Dns, MakeAndParseRoundTrip) {
  std::string name = make_interdomain_dns_name("Cox Communications", "edge5",
                                               "Dallas", 3, "Level3.net");
  EXPECT_EQ(name, "COX-COMMUNI.edge5.Dallas3.Level3.net");
  auto parts = parse_interdomain_dns_name(name);
  ASSERT_TRUE(parts);
  EXPECT_EQ(parts->peer_tag, "COX-COMMUNI");
  EXPECT_EQ(parts->router_name, "edge5");
  EXPECT_EQ(parts->city_tag, "Dallas3");
  EXPECT_EQ(parts->domain, "Level3.net");
}

TEST(Dns, MultiWordCityCompacted) {
  std::string name = make_interdomain_dns_name("Cox Communications", "ear1",
                                               "San Jose", 3, "Level3.net");
  EXPECT_EQ(name, "COX-COMMUNI.ear1.SanJose3.Level3.net");
}

TEST(Dns, ParseRejectsNonConforming) {
  EXPECT_FALSE(parse_interdomain_dns_name(""));
  EXPECT_FALSE(parse_interdomain_dns_name("host.example.com"));
  // City tag must end with a digit.
  EXPECT_FALSE(parse_interdomain_dns_name("A.b.City.x.net"));
}

TEST(Dns, PeerTagTruncation) {
  EXPECT_EQ(peer_tag_from_org("Comcast Cable Communications"),
            "COMCAST-CAB");
  EXPECT_LE(peer_tag_from_org("A Very Long Organization Name LLC").size(),
            11u);
}

TEST(Topology, BasicLookups) {
  HandTopo h;
  h.add_as(100, "TransitOne", AsType::kTransit, {0, 1});
  h.add_as(200, "AccessOne", AsType::kAccess, {0, 1});
  auto links = h.connect(200, 100, RelType::kCustomer, {0});
  ASSERT_EQ(links.size(), 1u);

  const Topology& t = h.topo();
  EXPECT_TRUE(t.has_as(100));
  EXPECT_TRUE(t.has_as(200));
  EXPECT_FALSE(t.has_as(300));
  EXPECT_EQ(t.as_info(100).name, "TransitOne");
  EXPECT_THROW(t.as_info(300), std::out_of_range);

  EXPECT_EQ(t.interdomain_links(100, 200).size(), 1u);
  EXPECT_EQ(t.interdomain_links(200, 100).size(), 1u);  // symmetric
  EXPECT_EQ(t.interdomain_links_of(100).size(), 1u);
  EXPECT_EQ(t.interdomain_link_count(), 1u);
}

TEST(Topology, DuplicateAsnThrows) {
  HandTopo h;
  h.add_as(100, "A", AsType::kTransit, {0});
  EXPECT_THROW(h.add_as(100, "B", AsType::kTransit, {0}), std::invalid_argument);
}

TEST(Topology, InterfaceAddressLookup) {
  HandTopo h;
  h.add_as(100, "A", AsType::kTransit, {0});
  h.add_as(200, "B", AsType::kAccess, {0});
  auto links = h.connect(200, 100, RelType::kCustomer, {0});
  const Topology& t = h.topo();
  const Link& l = t.link(links[0]);
  auto found = t.interface_by_addr(t.iface(l.side_a).addr);
  ASSERT_TRUE(found);
  EXPECT_EQ(*found, l.side_a);
  EXPECT_EQ(t.other_side(l.id, l.side_a), l.side_b);
  RouterId ra = t.iface(l.side_a).router;
  EXPECT_EQ(t.remote_router(l.id, ra), t.iface(l.side_b).router);
}

TEST(Topology, LinksBetweenFindsParallel) {
  HandTopo h;
  h.add_as(100, "A", AsType::kTransit, {0});
  h.add_as(200, "B", AsType::kAccess, {0});
  auto l1 = h.connect(200, 100, RelType::kCustomer, {0});
  const Link& link = h.topo().link(l1[0]);
  RouterId ra = h.topo().iface(link.side_a).router;
  RouterId rb = h.topo().iface(link.side_b).router;
  EXPECT_EQ(h.topo().links_between(ra, rb).size(), 1u);
  EXPECT_EQ(h.topo().links_between(rb, ra).size(), 1u);
}

TEST(Topology, AnnouncedAndTrueOwner) {
  HandTopo h;
  h.add_as(100, "A", AsType::kTransit, {0});
  const Topology& t = h.topo();
  // HandTopo announces the block (16.0.0.0/16 for the first AS) with its
  // true owner.
  IpAddr inside(16, 0, 2, 3);
  EXPECT_EQ(t.announced_origin(inside).value(), 100u);
  EXPECT_EQ(t.true_owner(inside).value(), 100u);
  EXPECT_FALSE(t.announced_origin(IpAddr(200, 0, 0, 1)));
}

TEST(Topology, SiblingsViaOrg) {
  HandTopo h;
  h.add_as(100, "A1", AsType::kAccess, {0}, "SameOrg");
  h.add_as(101, "A2", AsType::kAccess, {0}, "SameOrg");
  h.add_as(200, "B", AsType::kTransit, {0});
  EXPECT_TRUE(h.topo().same_org(100, 101));
  EXPECT_FALSE(h.topo().same_org(100, 200));
  auto sibs = h.topo().siblings_of(100);
  EXPECT_EQ(sibs.size(), 2u);
}

TEST(Topology, HostsByKindAndAs) {
  HandTopo h;
  h.add_as(100, "A", AsType::kTransit, {0});
  h.add_as(200, "B", AsType::kAccess, {0});
  auto s = h.add_host(100, 0, HostKind::kTestServer);
  auto c1 = h.add_host(200, 0, HostKind::kClient);
  auto c2 = h.add_host(200, 0, HostKind::kClient);
  EXPECT_EQ(h.topo().hosts_of_kind(HostKind::kClient).size(), 2u);
  EXPECT_EQ(h.topo().hosts_of(200).size(), 2u);
  EXPECT_EQ(h.topo().host_by_addr(h.topo().host(s).addr).value(), s);
  EXPECT_NE(h.topo().host(c1).addr, h.topo().host(c2).addr);
}

TEST(Topology, IxpPrefixes) {
  HandTopo h;
  h.topo().add_ixp_prefix(Prefix(IpAddr(195, 0, 0, 0), 22));
  EXPECT_TRUE(h.topo().is_ixp_addr(IpAddr(195, 0, 1, 1)));
  EXPECT_FALSE(h.topo().is_ixp_addr(IpAddr(195, 0, 4, 1)));
}

}  // namespace
}  // namespace netcong::topo
