// Gtest wrapper for the "adversary" property family: every adversarial
// scenario (sim/adversary) is a pure function of (seed, config) — campaign
// output bit-identical across the threads x cache x obs matrix, churn
// leaves the pre-epoch prefix byte-for-byte equal to an un-churned run, and
// the Misleading-Stars construction yields two distinct ground-truth
// topologies under one observed traceroute corpus.

#include <gtest/gtest.h>

#include "check/properties.h"

namespace netcong::check {
namespace {

std::vector<const Property*> family_properties(const char* family) {
  std::vector<const Property*> out;
  for (const Property& p : all_properties()) {
    if (p.family == family) out.push_back(&p);
  }
  return out;
}

class AdversaryProperty : public ::testing::TestWithParam<const Property*> {};

TEST_P(AdversaryProperty, Holds) {
  util::pbt::Config cfg;
  cfg.iterations = 0;  // the property's bounded default budget
  util::pbt::CheckResult result = run_property(*GetParam(), cfg);
  EXPECT_TRUE(result.ok) << result.report;
}

std::string test_name(const ::testing::TestParamInfo<const Property*>& info) {
  std::string name = info.param->name;
  for (char& c : name) {
    if (c == '.') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Registry, AdversaryProperty,
                         ::testing::ValuesIn(family_properties("adversary")),
                         test_name);

TEST(AdversaryFamily, RegistryHasEnoughProperties) {
  EXPECT_GE(family_properties("adversary").size(), 3u);
}

}  // namespace
}  // namespace netcong::check
