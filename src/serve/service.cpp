#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <utility>

#include "infer/fingerprint.h"
#include "measure/fingerprint.h"
#include "serve/wal.h"

namespace netcong::serve {

namespace {

std::size_t resolve_shards(std::size_t requested) {
  if (requested > 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

// flush() wakeup channel. A plain global (not per-service) keeps Shard a
// movable-free aggregate; spurious wakeups from another service instance
// just re-check that instance's predicate.
std::mutex g_flush_mu;
std::condition_variable g_flush_cv;

// Sorted unique neighbor ASNs of a snapshot's border map (empty when the
// bdrmap stage is off).
std::vector<topo::Asn> border_keys(const ServiceSnapshot& snap) {
  std::vector<topo::Asn> keys;
  if (snap.borders) {
    keys.reserve(snap.borders->borders.size());
    for (const infer::BdrmapBorder& b : snap.borders->borders) {
      keys.push_back(b.neighbor);
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  }
  return keys;
}

SnapshotDiff diff_from_keys(const std::vector<topo::Asn>& prev_keys,
                            std::uint64_t prev_events,
                            const std::vector<topo::Asn>& cur_keys,
                            std::uint64_t cur_events) {
  SnapshotDiff diff;
  std::set_difference(cur_keys.begin(), cur_keys.end(), prev_keys.begin(),
                      prev_keys.end(), std::back_inserter(diff.borders_added));
  std::set_difference(prev_keys.begin(), prev_keys.end(), cur_keys.begin(),
                      cur_keys.end(),
                      std::back_inserter(diff.borders_removed));
  diff.events_delta = static_cast<std::int64_t>(cur_events) -
                      static_cast<std::int64_t>(prev_events);
  return diff;
}

}  // namespace

const char* overflow_policy_name(OverflowPolicy policy) {
  switch (policy) {
    case OverflowPolicy::kBlock:
      return "block";
    case OverflowPolicy::kDrop:
      return "drop";
  }
  return "unknown";
}

SnapshotDiff diff_snapshots(const ServiceSnapshot& prev,
                            const ServiceSnapshot& cur) {
  return diff_from_keys(border_keys(prev), prev.events_consumed,
                        border_keys(cur), cur.events_consumed);
}

IngestService::IngestService(const infer::Ip2As& ip2as,
                             const infer::OrgMap& orgs, ServeConfig config)
    : ip2as_(ip2as), orgs_(orgs), config_(std::move(config)) {
  if (config_.epoch_events == 0) config_.epoch_events = 1;
  auto& reg = obs::MetricsRegistry::global();
  enqueued_ctr_ = reg.counter("serve.enqueued");
  consumed_ctr_ = reg.counter("serve.consumed");
  dropped_ctr_ = reg.counter("serve.dropped");
  snapshots_ctr_ = reg.counter("serve.snapshots");
  evicted_events_ctr_ = reg.counter("serve.evicted.events");
  evicted_tests_ctr_ = reg.counter("serve.evicted.tests");
  evicted_traces_ctr_ = reg.counter("serve.evicted.traces");
  evicted_epochs_ctr_ = reg.counter("serve.evicted.epochs");
  snapshot_ms_hist_ =
      reg.histogram("serve.snapshot_ms", obs::exp_bounds(0.1, 10000.0, 16));

  std::size_t n = resolve_shards(config_.shards);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(
        std::make_unique<Shard>(config_.queue_capacity, config_.policy));
    shards_.back()->depth_gauge =
        reg.gauge("serve.queue_depth." + std::to_string(i));
  }
}

IngestService::~IngestService() { stop(); }

void IngestService::set_relationships(const topo::RelationshipTable* rels,
                                      const infer::AliasResolver* aliases) {
  rels_ = rels;
  aliases_ = aliases;
}

void IngestService::attach_wal(WalWriter* wal) { wal_ = wal; }

void IngestService::start() {
  std::unique_lock<std::shared_mutex> gate(gate_);
  if (running_) return;
  running_ = true;
  for (auto& shard : shards_) {
    shard->worker = std::thread([this, s = shard.get()] { worker_loop(*s); });
  }
}

bool IngestService::submit(IngestEvent event) {
  std::shared_lock<std::shared_mutex> gate(gate_);
  if (!running_) return false;
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (wal_ != nullptr) {
    // Durability before volatility: an event the log cannot hold is
    // rejected here, before it can reach a queue and be double-counted.
    util::Status st = wal_->append(event);
    if (!st.ok()) {
      wal_rejected_.fetch_add(1, std::memory_order_relaxed);
      dropped_ctr_.inc();
      return false;
    }
  }
  std::uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = *shards_[seq % shards_.size()];
  if (shard.queue.push(SeqEvent{seq, std::move(event)})) {
    enqueued_ctr_.inc();
    return true;
  }
  dropped_ctr_.inc();
  return false;
}

void IngestService::flush() {
  // Every event enqueued before this call must be consumed before we
  // return. Later enqueues may or may not be covered — callers needing a
  // stable cut take the snapshot() gate.
  std::uint64_t target = 0;
  for (const auto& shard : shards_) target += shard->queue.counters().pushed;
  std::unique_lock<std::mutex> lock(g_flush_mu);
  g_flush_cv.wait(lock, [this, target] {
    return consumed_.load(std::memory_order_acquire) >= target;
  });
}

std::uint64_t IngestService::epoch_of(std::uint64_t seq) const {
  // With retention off everything lives in one bucket, so the merge cost
  // per snapshot is exactly the pre-§12 cost.
  if (config_.retain_epochs == 0) return 0;
  return seq / config_.epoch_events;
}

std::uint64_t IngestService::watermark_epoch_locked() const {
  if (config_.retain_epochs == 0) return 0;
  std::uint64_t total = next_seq_.load(std::memory_order_relaxed);
  if (total == 0) return 0;
  std::uint64_t last_epoch = (total - 1) / config_.epoch_events;
  if (last_epoch + 1 <= config_.retain_epochs) return 0;
  return last_epoch + 1 - config_.retain_epochs;
}

void IngestService::evict_locked() {
  std::uint64_t wm = watermark_epoch_locked();
  if (wm == 0) return;
  std::uint64_t events = 0, tests = 0, traces = 0, epochs = 0;
  for (auto& shard : shards_) {
    auto it = shard->epochs.begin();
    while (it != shard->epochs.end() && it->first < wm) {
      events += it->second.events;
      tests += it->second.ndt_tests;
      traces += it->second.mapit.traces();
      ++epochs;
      it = shard->epochs.erase(it);
    }
  }
  if (events > 0) evicted_events_ctr_.inc(events);
  if (tests > 0) evicted_tests_ctr_.inc(tests);
  if (traces > 0) evicted_traces_ctr_.inc(traces);
  if (epochs > 0) evicted_epochs_ctr_.inc(epochs);
  evicted_events_.fetch_add(events, std::memory_order_relaxed);
  eviction_watermark_.store(wm * config_.epoch_events,
                            std::memory_order_relaxed);
}

ServiceSnapshot IngestService::snapshot() {
  auto t0 = std::chrono::steady_clock::now();
  // Exclusive gate: no producer can enqueue mid-snapshot, so the drained
  // evidence corresponds to an exact prefix of the submitted stream.
  std::unique_lock<std::shared_mutex> gate(gate_);
  flush();
  evict_locked();

  ServiceSnapshot snap;
  infer::MapItEvidence merged;
  // Merge in shard/epoch order for a fixed traversal; the result is order-
  // independent anyway (commutative sums into canonical-layout tables).
  for (const auto& shard : shards_) {
    for (const auto& [epoch, store] : shard->epochs) {
      merged.merge(store.mapit);
      snap.ndt.merge(store.ndt);
    }
  }
  snap.events_total = next_seq_.load(std::memory_order_relaxed);
  snap.events_evicted = evicted_events_.load(std::memory_order_relaxed);
  snap.eviction_watermark =
      eviction_watermark_.load(std::memory_order_relaxed);
  snap.events_consumed =
      consumed_.load(std::memory_order_acquire) - snap.events_evicted;
  snap.traces = merged.traces();
  snap.ndt_tests = snap.ndt.tests();
  snap.mapit = merged.infer(ip2as_, orgs_, config_.mapit);
  if (rels_ != nullptr && aliases_ != nullptr) {
    snap.borders = infer::borders_from_mapit(snap.mapit, config_.vp_as, orgs_,
                                             *rels_, *aliases_);
  }
  snap.fingerprint = snapshot_fingerprint(snap);

  // The diff stream: churn against this service's previous snapshot.
  std::vector<topo::Asn> keys = border_keys(snap);
  if (have_prev_snapshot_) {
    snap.diff = diff_from_keys(prev_borders_, prev_events_, keys,
                               snap.events_consumed);
  }
  prev_borders_ = std::move(keys);
  prev_events_ = snap.events_consumed;
  have_prev_snapshot_ = true;

  auto t1 = std::chrono::steady_clock::now();
  snap.snapshot_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  snapshots_ctr_.inc();
  snapshot_ms_hist_.observe(snap.snapshot_ms);
  return snap;
}

ServiceSnapshot IngestService::drain_and_stop() {
  ServiceSnapshot snap = snapshot();
  stop();
  return snap;
}

void IngestService::stop() {
  {
    std::unique_lock<std::shared_mutex> gate(gate_);
    if (!running_) return;
    running_ = false;
  }
  for (auto& shard : shards_) shard->queue.close();
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
    shard->depth_gauge.set(0.0);
  }
  // The log's tail must be durable before the process that owns it exits.
  if (wal_ != nullptr && wal_->is_open() && !wal_->failed()) {
    (void)wal_->sync();
  }
}

ServiceCounters IngestService::counters() const {
  ServiceCounters c;
  c.submitted = submitted_.load(std::memory_order_relaxed);
  c.consumed = consumed_.load(std::memory_order_relaxed);
  c.wal_rejected = wal_rejected_.load(std::memory_order_relaxed);
  c.evicted = evicted_events_.load(std::memory_order_relaxed);
  // WAL-rejected events never reached a queue; folding them into dropped
  // keeps submitted = enqueued + dropped conserved with durability on.
  c.dropped = c.wal_rejected;
  for (const auto& shard : shards_) {
    QueueCounters q = shard->queue.counters();
    c.enqueued += q.pushed;
    c.dropped += q.dropped;
  }
  return c;
}

void IngestService::worker_loop(Shard& shard) {
  std::uint64_t local = 0;
  while (auto ev = shard.queue.pop()) {
    if (config_.consume_delay_us > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(config_.consume_delay_us));
    }
    EpochStore& store = shard.epochs[epoch_of(ev->seq)];
    ++store.events;
    if (const auto* test = std::get_if<measure::NdtRecord>(&ev->event)) {
      store.ndt.add(*test);
      ++store.ndt_tests;
    } else {
      store.mapit.add(std::get<measure::TracerouteRecord>(ev->event), ip2as_);
    }
    consumed_ctr_.inc();
    // Release pairs with flush()'s acquire: once a flusher observes the
    // count, the shard-local store writes above are visible to it.
    consumed_.fetch_add(1, std::memory_order_release);
    // The empty critical section orders this increment against a flusher's
    // predicate check, closing the lost-wakeup window (the flusher may be
    // between "predicate false" and "blocked" — notify must not race past).
    { std::lock_guard<std::mutex> lk(g_flush_mu); }
    g_flush_cv.notify_all();
    if ((++local & 63) == 0) {
      shard.depth_gauge.set(static_cast<double>(shard.queue.depth()));
    }
  }
  shard.depth_gauge.set(static_cast<double>(shard.queue.depth()));
}

std::uint64_t snapshot_fingerprint(const ServiceSnapshot& snap) {
  measure::Fingerprint fp;
  fp.mix(snap.events_consumed);
  fp.mix(snap.traces);
  fp.mix(snap.ndt_tests);
  snap.ndt.mix_into(fp);
  fp.mix(infer::fingerprint(snap.mapit));
  fp.mix(static_cast<std::uint64_t>(snap.borders.has_value()));
  if (snap.borders) fp.mix(infer::fingerprint(*snap.borders));
  return fp.value();
}

}  // namespace netcong::serve
