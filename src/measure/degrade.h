#pragma once

// Deterministic degradation of an existing traceroute corpus — the bridge
// between the fault layer and inference-robustness studies. Where the
// campaign engine injects faults while measuring, this applies loss to a
// corpus that was already collected (drop whole traces, knock out per-hop
// responses), so MAP-IT/bdrmap can be evaluated at exact loss levels
// against the clean baseline. Decisions draw from the injector's
// (site, item) streams keyed on the trace index, so a degraded corpus is a
// pure function of (corpus, seed, loss).

#include <vector>

#include "measure/traceroute.h"
#include "sim/faults.h"

namespace netcong::measure {

struct DegradeOptions {
  // Probability a whole trace is lost from the corpus (collection failure).
  double trace_loss = 0.0;
  // Probability each responding hop is knocked out (turned into a star).
  double hop_loss = 0.0;
};

struct DegradeStats {
  std::size_t traces_in = 0;
  std::size_t traces_out = 0;
  std::size_t traces_dropped = 0;
  std::size_t hops_in = 0;
  std::size_t hops_blanked = 0;

  bool accounted() const {
    return traces_in == traces_out + traces_dropped;
  }
};

// Returns the corpus with the configured loss applied. The injector's
// enabled flag is respected (a disabled injector returns the corpus
// unchanged); item ids are the trace's index in `corpus`.
std::vector<TracerouteRecord> degrade_corpus(
    const std::vector<TracerouteRecord>& corpus,
    const sim::FaultInjector& faults, const DegradeOptions& options,
    DegradeStats* stats = nullptr);

}  // namespace netcong::measure
