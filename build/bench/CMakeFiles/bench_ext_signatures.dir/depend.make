# Empty dependencies file for bench_ext_signatures.
# This may be replaced when dependencies are built.
