#pragma once

// Deterministic random number generation for reproducible simulations.
//
// Every stochastic component in netcong draws from an Rng that is seeded
// explicitly, typically by forking a parent Rng with a string label. Forking
// (rather than sharing one generator) keeps modules reproducible even when
// the order of draws between modules changes.

#include <cstdint>
#include <random>
#include <string_view>
#include <vector>

namespace netcong::util {

// A labeled, forkable wrapper around a 64-bit Mersenne Twister.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  // Derives an independent generator whose seed depends on this generator's
  // seed and the label, but not on how many draws have been made.
  [[nodiscard]] Rng fork(std::string_view label) const;

  // Numbered-stream fork for hot paths (e.g. one stream per test id in a
  // campaign): same independence guarantees as the string overload without
  // formatting a label. Streams with distinct ids are independent of each
  // other and of any string-labeled fork.
  [[nodiscard]] Rng fork(std::uint64_t stream) const;

  std::uint64_t seed() const { return seed_; }

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  // Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);

  // Bernoulli draw with probability p of true. p is clamped to [0,1].
  bool chance(double p);

  // Normal draw (mean, stddev).
  double normal(double mean, double stddev);

  // Log-normal draw parameterized by the mean/stddev of the underlying normal.
  double lognormal(double mu, double sigma);

  // Exponential draw with the given rate (mean 1/rate). Requires rate > 0.
  double exponential(double rate);

  // Pareto draw with scale xm > 0 and shape alpha > 0 (heavy tails).
  double pareto(double xm, double alpha);

  // Poisson draw with the given mean >= 0.
  int poisson(double mean);

  // Picks an index in [0, weights.size()) proportionally to weights.
  // Zero-weight entries are never chosen. Requires at least one weight > 0.
  std::size_t weighted_index(const std::vector<double>& weights);

  // Picks an element of the non-empty container uniformly at random.
  template <typename Container>
  const typename Container::value_type& pick(const Container& c) {
    return c[static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(c.size()) - 1))];
  }

  // Fisher-Yates shuffle.
  template <typename Container>
  void shuffle(Container& c) {
    for (std::size_t i = c.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

// Stable 64-bit FNV-1a hash of a string, used for seed derivation.
std::uint64_t fnv1a(std::string_view s);

}  // namespace netcong::util
