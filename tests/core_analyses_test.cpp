#include <gtest/gtest.h>

#include <cmath>

#include "core/as_tomography.h"
#include "core/coverage.h"
#include "core/diurnal.h"
#include "core/link_diversity.h"
#include "core/stratify.h"
#include "core/tslp_analysis.h"
#include "helpers.h"
#include "measure/tslp.h"
#include "route/bgp.h"
#include "route/forwarding.h"
#include "sim/throughput.h"

namespace netcong::core {
namespace {

using gen::World;

// ---- diurnal groups & congestion inference on synthetic records ----

measure::NdtRecord make_test(std::uint32_t client, topo::Asn client_asn,
                             topo::Asn server_asn, double utc, double mbps) {
  measure::NdtRecord r;
  r.client = client;
  r.client_asn = client_asn;
  r.server_asn = server_asn;
  r.utc_time_hours = utc;
  r.download_mbps = mbps;
  return r;
}

TEST(DiurnalGroups, GroupsByLocalHourOfClient) {
  const World& w = test::tiny_world();
  std::uint32_t client = w.clients[0];
  const topo::Host& h = w.topo->host(client);
  int offset = w.topo->city(h.city).utc_offset_hours;

  std::vector<measure::NdtRecord> tests;
  // A test at client-local hour 21.
  double utc = 21.0 - offset;
  while (utc >= 24) utc -= 24;
  tests.push_back(make_test(client, h.asn, 3356, utc, 50.0));

  auto groups = build_diurnal_groups(
      tests, w, [](const measure::NdtRecord&) { return "S"; },
      [](const measure::NdtRecord&) { return "I"; });
  ASSERT_EQ(groups.size(), 1u);
  const DiurnalGroup& g = groups.begin()->second;
  EXPECT_EQ(g.throughput.bin(21).size(), 1u);
  EXPECT_EQ(g.tests, 1u);
}

TEST(DiurnalGroups, SkipsUnlabeledTests) {
  const World& w = test::tiny_world();
  std::uint32_t client = w.clients[0];
  std::vector<measure::NdtRecord> tests = {
      make_test(client, 1, 2, 5.0, 10.0)};
  auto groups = build_diurnal_groups(
      tests, w, [](const measure::NdtRecord&) { return ""; },
      [](const measure::NdtRecord&) { return "I"; });
  EXPECT_TRUE(groups.empty());
}

TEST(InferCongestion, RequiresMinSamplesBothWindows) {
  const World& w = test::tiny_world();
  std::uint32_t client = w.clients[0];
  const topo::Host& h = w.topo->host(client);
  int offset = w.topo->city(h.city).utc_offset_hours;
  auto at_local = [&](double local) {
    double utc = local - offset;
    while (utc < 0) utc += 24;
    while (utc >= 24) utc -= 24;
    return utc;
  };

  std::vector<measure::NdtRecord> tests;
  // 30 peak samples at 5 Mbps but only 5 off-peak samples at 50 Mbps.
  for (int i = 0; i < 30; ++i) {
    tests.push_back(make_test(client, h.asn, 1, at_local(21.0), 5.0));
  }
  for (int i = 0; i < 5; ++i) {
    tests.push_back(make_test(client, h.asn, 1, at_local(3.0), 50.0));
  }
  auto groups = build_diurnal_groups(
      tests, w, [](const measure::NdtRecord&) { return "S"; },
      [](const measure::NdtRecord&) { return "I"; });
  auto sparse = infer_congestion(groups, 0.3, 20);
  ASSERT_EQ(sparse.size(), 1u);
  EXPECT_FALSE(sparse[0].congested);  // off-peak window too thin

  // With enough off-peak samples the call flips.
  for (int i = 0; i < 20; ++i) {
    tests.push_back(make_test(client, h.asn, 1, at_local(3.0), 50.0));
  }
  groups = build_diurnal_groups(
      tests, w, [](const measure::NdtRecord&) { return "S"; },
      [](const measure::NdtRecord&) { return "I"; });
  auto dense = infer_congestion(groups, 0.3, 20);
  ASSERT_EQ(dense.size(), 1u);
  EXPECT_TRUE(dense[0].congested);
  EXPECT_NEAR(dense[0].comparison.relative_drop, 0.9, 1e-9);
}

TEST(AsTomography, RulesOutClientSideOnlyWithCleanSource) {
  const World& w = test::tiny_world();
  std::uint32_t client = w.clients[0];
  const topo::Host& h = w.topo->host(client);
  int offset = w.topo->city(h.city).utc_offset_hours;
  auto at_local = [&](double local) {
    double utc = local - offset;
    while (utc < 0) utc += 24;
    while (utc >= 24) utc -= 24;
    return utc;
  };

  auto fill = [&](std::vector<measure::NdtRecord>& tests, topo::Asn server,
                  double peak_mbps, double off_mbps) {
    for (int i = 0; i < 25; ++i) {
      tests.push_back(make_test(client, h.asn, server, at_local(21), peak_mbps));
      tests.push_back(make_test(client, h.asn, server, at_local(3), off_mbps));
    }
  };

  // Case A: only one source, degraded — cannot rule out the client side.
  std::vector<measure::NdtRecord> tests;
  fill(tests, 100, 5.0, 50.0);
  auto source_by_asn = [](const measure::NdtRecord& t) {
    return "S" + std::to_string(t.server_asn);
  };
  auto isp_fn = [](const measure::NdtRecord&) { return "I"; };
  auto groups = build_diurnal_groups(tests, w, source_by_asn, isp_fn);
  auto calls = as_level_tomography(groups, 0.3, 20);
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_TRUE(calls[0].degraded);
  EXPECT_FALSE(calls[0].client_side_ruled_out);
  EXPECT_FALSE(calls[0].congestion_inferred);

  // Case B: a second, clean source exonerates the client side.
  fill(tests, 200, 50.0, 50.0);
  groups = build_diurnal_groups(tests, w, source_by_asn, isp_fn);
  calls = as_level_tomography(groups, 0.3, 20);
  ASSERT_EQ(calls.size(), 2u);
  int inferred = 0;
  for (const auto& c : calls) {
    if (c.congestion_inferred) {
      ++inferred;
      EXPECT_EQ(c.source, "S100");
      EXPECT_TRUE(c.client_side_ruled_out);
    }
  }
  EXPECT_EQ(inferred, 1);
}

// ---- coverage primitives ----

TEST(Coverage, OverlapSetArithmetic) {
  CoverageSet platform, alexa;
  platform.add(InterconnectKey{10, 1});
  platform.add(InterconnectKey{20, 2});
  alexa.add(InterconnectKey{20, 2});
  alexa.add(InterconnectKey{30, 3});
  alexa.add(InterconnectKey{40, 4});
  auto ov = overlap(platform, alexa);
  EXPECT_EQ(ov.platform_not_alexa_as, 1u);  // AS 10
  EXPECT_EQ(ov.alexa_not_platform_as, 2u);  // AS 30, 40
  EXPECT_EQ(ov.alexa_total_as, 3u);
  EXPECT_EQ(ov.platform_not_alexa_router, 1u);
  EXPECT_EQ(ov.alexa_not_platform_router, 2u);
}

TEST(Coverage, PctHelper) {
  EXPECT_DOUBLE_EQ(VpCoverage::pct(1, 4), 25.0);
  EXPECT_DOUBLE_EQ(VpCoverage::pct(0, 0), 0.0);
}

// ---- TSLP on the generated world ----

TEST(Tslp, LocalizesPlantedCongestion) {
  const World& w = test::small_world();
  route::BgpRouting bgp(*w.topo);
  route::Forwarder fwd(*w.topo, bgp);
  util::Rng rng(5);

  // AT&T VP and one GTT link (congested) plus one Level3 link (clear).
  std::uint32_t vp = 0;
  for (std::uint32_t v : w.ark_vps) {
    if (w.topo->host(v).asn == w.primary_asn("AT&T")) vp = v;
  }
  ASSERT_NE(vp, 0u);
  const topo::Host& vph = w.topo->host(vp);
  int offset = w.topo->city(vph.city).utc_offset_hours;

  auto check_link = [&](topo::Asn neighbor, bool expect_congested) {
    auto links = w.topo->interdomain_links(vph.asn, neighbor);
    ASSERT_FALSE(links.empty());
    const topo::Link& link = w.topo->link(links[0]);
    bool a_is_vp = link.as_a == vph.asn;
    topo::IpAddr near =
        w.topo->iface(a_is_vp ? link.side_a : link.side_b).addr;
    topo::IpAddr far = w.topo->iface(a_is_vp ? link.side_b : link.side_a).addr;
    measure::TslpOptions opt;
    opt.days = 4;
    auto series = measure::run_tslp(w, fwd, vp, near, far, opt, rng);
    TslpAnalysisOptions aopt;
    aopt.vp_utc_offset_hours = offset;
    auto verdict = analyze_tslp(series, aopt);
    EXPECT_EQ(verdict.congested, expect_congested)
        << "neighbor " << neighbor << " differential "
        << verdict.differential_ms;
    if (expect_congested) {
      EXPECT_GT(verdict.far_elevation_ms, 20.0);
      EXPECT_LT(verdict.near_elevation_ms, 5.0);
    }
  };
  check_link(w.transit_asns.at("GTT"), true);
  check_link(3356, false);
}

TEST(Tslp, HandlesUnreachableTargets) {
  const World& w = test::tiny_world();
  route::BgpRouting bgp(*w.topo);
  route::Forwarder fwd(*w.topo, bgp);
  util::Rng rng(6);
  measure::TslpOptions opt;
  opt.days = 1;
  auto series = measure::run_tslp(w, fwd, w.ark_vps[0],
                                  topo::IpAddr(250, 0, 0, 1),
                                  topo::IpAddr(250, 0, 0, 2), opt, rng);
  TslpAnalysisOptions aopt;
  auto verdict = analyze_tslp(series, aopt);
  EXPECT_FALSE(verdict.congested);
  EXPECT_EQ(verdict.near_samples, 0u);
}

// ---- stratification drop-spread helper ----

TEST(Stratify, DropSpreadIgnoresThinStrata) {
  StratifiedAnalysis a;
  LinkStratum s1, s2, s3;
  for (int i = 0; i < 20; ++i) {
    s1.throughput.add(21, 10.0);
    s1.throughput.add(3, 50.0);
    s2.throughput.add(21, 45.0);
    s2.throughput.add(3, 50.0);
    // s3 is too thin to participate.
  }
  s3.throughput.add(21, 1.0);
  s3.throughput.add(3, 100.0);
  for (auto* s : {&s1, &s2, &s3}) {
    s->comparison = stats::compare_peak_offpeak(s->throughput);
  }
  a.strata = {s1, s2, s3};
  // Spread between 80% and 10% drops; the thin stratum's 99% is excluded.
  EXPECT_NEAR(a.drop_spread(10), 0.8 - 0.1, 1e-9);
}

}  // namespace
}  // namespace netcong::core
