#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "helpers.h"
#include "io/export.h"
#include "measure/ndt.h"
#include "measure/platform.h"
#include "route/bgp.h"
#include "route/forwarding.h"
#include "sim/throughput.h"
#include "util/strings.h"

namespace netcong::io {
namespace {

using gen::World;

struct Fixture {
  Fixture()
      : world(test::tiny_world()),
        bgp(*world.topo),
        fwd(*world.topo, bgp),
        model(*world.topo, *world.traffic),
        mlab("mlab", *world.topo, world.mlab_servers) {
    measure::NdtCampaign campaign(world, fwd, model, mlab,
                                  measure::CampaignConfig{});
    util::Rng rng(1);
    std::vector<gen::TestRequest> schedule;
    for (int i = 0; i < 20; ++i) {
      schedule.push_back({world.clients[static_cast<std::size_t>(i) %
                                        world.clients.size()],
                          1.0 + i * 0.5});
    }
    result = campaign.run(schedule, rng);
    matched = measure::match_tests(result.tests, result.traceroutes,
                                   *world.topo, {});
  }
  const World& world;
  route::BgpRouting bgp;
  route::Forwarder fwd;
  sim::ThroughputModel model;
  measure::Platform mlab;
  measure::CampaignResult result;
  std::vector<measure::MatchedTest> matched;
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

std::size_t line_count(const std::string& s) {
  std::size_t n = 0;
  for (char c : s) n += c == '\n' ? 1 : 0;
  return n;
}

TEST(Export, NdtTestsRowPerTest) {
  Fixture& f = fixture();
  auto csv = export_ndt_tests(f.world, f.result.tests);
  std::string out = csv.render();
  EXPECT_EQ(line_count(out), f.result.tests.size() + 1);  // + header
  EXPECT_NE(out.find("download_mbps"), std::string::npos);
  EXPECT_NE(out.find("truth_as_hops"), std::string::npos);
}

TEST(Export, TruthColumnsSuppressible) {
  Fixture& f = fixture();
  std::string out = export_ndt_tests(f.world, f.result.tests, false).render();
  EXPECT_EQ(out.find("truth_"), std::string::npos);
}

TEST(Export, TracerouteHopsIncludeStarsAndNames) {
  Fixture& f = fixture();
  std::string out = export_traceroute_hops(f.result.traceroutes).render();
  std::size_t hops = 0;
  for (const auto& tr : f.result.traceroutes) hops += tr.hops.size();
  EXPECT_EQ(line_count(out), hops + 1);
}

TEST(Export, MatchesTableDeltas) {
  Fixture& f = fixture();
  std::string out = export_matches(f.matched).render();
  EXPECT_EQ(line_count(out), f.matched.size() + 1);
  // Matched rows carry a non-negative minute delta in column 3.
  bool saw_matched = false;
  for (const auto& line : util::split(out, '\n')) {
    auto cols = util::split(line, ',');
    if (cols.size() == 3 && cols[1] == "1") {
      saw_matched = true;
      EXPECT_GE(std::atof(cols[2].c_str()), 0.0);
    }
  }
  EXPECT_TRUE(saw_matched);
}

TEST(Export, InterdomainLinksMatchTopology) {
  Fixture& f = fixture();
  std::string out = export_interdomain_links(f.world).render();
  EXPECT_EQ(line_count(out), f.world.topo->interdomain_link_count() + 1);
  EXPECT_NE(out.find("truth_congested"), std::string::npos);
}

TEST(Export, CampaignWritesAllFiles) {
  Fixture& f = fixture();
  auto dir = std::filesystem::temp_directory_path() / "netcong_io_test";
  std::filesystem::create_directories(dir);
  util::Status status =
      export_campaign(f.world, f.result.tests, f.result.traceroutes,
                      f.matched, dir.string(), true, &f.result.quality);
  ASSERT_TRUE(status.ok()) << status.error();
  for (const char* name :
       {"ndt_tests.csv", "traceroute_hops.csv", "matches.csv",
        "interdomain_links.csv", "data_quality.csv"}) {
    EXPECT_TRUE(std::filesystem::exists(dir / name)) << name;
    EXPECT_GT(std::filesystem::file_size(dir / name), 10u) << name;
  }
  std::filesystem::remove_all(dir);
}

TEST(Export, DataQualityReportIsConsistent) {
  Fixture& f = fixture();
  EXPECT_TRUE(f.result.quality.consistent());
  std::string out = export_data_quality(f.result.quality).render();
  EXPECT_NE(out.find("tests_attempted"), std::string::npos);
  EXPECT_NE(out.find("traceroutes_scheduled"), std::string::npos);
  EXPECT_NE(out.find("consistent,1"), std::string::npos);
}

TEST(Export, NdtStatusColumnsPresent) {
  Fixture& f = fixture();
  std::string out = export_ndt_tests(f.world, f.result.tests).render();
  EXPECT_NE(out.find("status"), std::string::npos);
  EXPECT_NE(out.find("has_webstats"), std::string::npos);
  EXPECT_NE(out.find("completed"), std::string::npos);
}

}  // namespace
}  // namespace netcong::io
