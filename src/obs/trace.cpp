#include "obs/trace.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <memory>
#include <mutex>

#include "util/json.h"
#include "util/strings.h"

namespace netcong::obs {

namespace {
std::mutex& trace_mutex() {
  static std::mutex mu;
  return mu;
}

std::atomic<std::uint64_t> g_next_recorder_id{1};

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

// Per-thread bounded event ring. Only the owning thread writes; collect()
// reads under the ring's own mutex, which record() also takes — contention
// exists only while an export is in flight.
struct TraceRecorder::Ring {
  TraceRecorder* owner = nullptr;
  std::uint64_t recorder_id = 0;
  std::uint32_t tid = 0;
  mutable std::mutex mu;
  std::array<TraceEvent, kTraceRingCapacity> events;
  std::size_t size = 0;   // events retained (<= capacity)
  std::size_t head = 0;   // next write slot once wrapped
  std::uint64_t dropped = 0;
};

struct TraceRecorder::ThreadRings {
  std::vector<std::unique_ptr<Ring>> rings;
  ~ThreadRings() {
    std::lock_guard<std::mutex> lk(trace_mutex());
    for (auto& ring : rings) {
      if (ring->owner != nullptr) ring->owner->retire_ring(*ring);
    }
  }
};

TraceRecorder::TraceRecorder()
    : recorder_id_(g_next_recorder_id.fetch_add(1)), epoch_ns_(steady_ns()) {}

TraceRecorder::~TraceRecorder() {
  std::lock_guard<std::mutex> lk(trace_mutex());
  for (Ring* ring : live_rings_) ring->owner = nullptr;
  live_rings_.clear();
}

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder* rec = new TraceRecorder();
  return *rec;
}

double TraceRecorder::now_us() const {
  return static_cast<double>(steady_ns() - epoch_ns_) / 1000.0;
}

TraceRecorder::Ring* TraceRecorder::thread_ring() {
  thread_local ThreadRings t_rings;
  for (auto& ring : t_rings.rings) {
    if (ring->recorder_id == recorder_id_) return ring.get();
  }
  auto ring = std::make_unique<Ring>();
  ring->owner = this;
  ring->recorder_id = recorder_id_;
  Ring* raw = ring.get();
  {
    std::lock_guard<std::mutex> lk(trace_mutex());
    ring->tid = next_tid_++;
    live_rings_.push_back(raw);
  }
  t_rings.rings.push_back(std::move(ring));
  return raw;
}

void TraceRecorder::retire_ring(Ring& ring) {
  // Caller holds trace_mutex().
  std::lock_guard<std::mutex> lk(ring.mu);
  for (std::size_t i = 0; i < ring.size; ++i) {
    retired_events_.push_back(ring.events[i]);
  }
  retired_dropped_ += ring.dropped;
  live_rings_.erase(
      std::remove(live_rings_.begin(), live_rings_.end(), &ring),
      live_rings_.end());
  ring.owner = nullptr;
}

void TraceRecorder::record(const char* name, double ts_us, double dur_us) {
  Ring* ring = thread_ring();
  std::lock_guard<std::mutex> lk(ring->mu);
  TraceEvent ev{name, ts_us, dur_us, ring->tid};
  if (ring->size < kTraceRingCapacity) {
    ring->events[ring->size++] = ev;
  } else {
    ring->events[ring->head] = ev;  // overwrite oldest
    ring->head = (ring->head + 1) % kTraceRingCapacity;
    ++ring->dropped;
  }
}

std::vector<TraceEvent> TraceRecorder::collect() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lk(trace_mutex());
    out = retired_events_;
    for (const Ring* ring : live_rings_) {
      std::lock_guard<std::mutex> rlk(ring->mu);
      for (std::size_t i = 0; i < ring->size; ++i) {
        out.push_back(ring->events[i]);
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const TraceEvent& a,
                                       const TraceEvent& b) {
    if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
    return a.tid < b.tid;
  });
  return out;
}

std::uint64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lk(trace_mutex());
  std::uint64_t total = retired_dropped_;
  for (const Ring* ring : live_rings_) {
    std::lock_guard<std::mutex> rlk(ring->mu);
    total += ring->dropped;
  }
  return total;
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lk(trace_mutex());
  retired_events_.clear();
  retired_dropped_ = 0;
  for (Ring* ring : live_rings_) {
    std::lock_guard<std::mutex> rlk(ring->mu);
    ring->size = 0;
    ring->head = 0;
    ring->dropped = 0;
  }
}

std::string TraceRecorder::to_chrome_json() const {
  std::vector<TraceEvent> events = collect();
  std::string out = "{\"traceEvents\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    out += util::format(
        "%s\n  {\"name\": %s, \"cat\": \"netcong\", \"ph\": \"X\", "
        "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %u}",
        i ? "," : "", util::json_quote(e.name).c_str(), e.ts_us, e.dur_us,
        e.tid);
  }
  out += util::format(
      "%s], \"displayTimeUnit\": \"ms\", \"otherData\": "
      "{\"dropped_events\": %llu}}\n",
      events.empty() ? "" : "\n", static_cast<unsigned long long>(dropped()));
  return out;
}

}  // namespace netcong::obs
