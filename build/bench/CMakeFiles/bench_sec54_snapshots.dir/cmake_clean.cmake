file(REMOVE_RECURSE
  "CMakeFiles/bench_sec54_snapshots.dir/bench_sec54_snapshots.cpp.o"
  "CMakeFiles/bench_sec54_snapshots.dir/bench_sec54_snapshots.cpp.o.d"
  "CMakeFiles/bench_sec54_snapshots.dir/common.cpp.o"
  "CMakeFiles/bench_sec54_snapshots.dir/common.cpp.o.d"
  "bench_sec54_snapshots"
  "bench_sec54_snapshots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec54_snapshots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
