#!/usr/bin/env bash
# Race-checks the concurrent code (thread pool, path cache, parallel
# campaign engine) under ThreadSanitizer in one command:
#
#   tools/run_tsan.sh [extra cmake args...]
#
# Configures a dedicated build-tsan tree with -fsanitize=thread and runs
# every test carrying the `tsan` CTest label.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=build-tsan
cmake -B "$BUILD" -S . -DNETCONG_SANITIZE=thread "$@"
cmake --build "$BUILD" -j "$(nproc)"
# tsan-labeled tests plus the obs suite (its lock-free slabs/rings are
# exactly the code a race checker should see), the property families, whose
# differential-determinism harness runs the campaign across thread counts,
# the serve suite (MPSC queues feeding sharded workers — the densest
# cross-thread traffic in the codebase; wal_test/net_test ride the same
# label, racing the socket listener/accept threads against producers),
# the bench_scale smoke (the block-sharded columnar trace builder
# under race checking), the pathmodel suite (multi-CC packet sims +
# classifier; single-threaded, but cheap insurance against UB the
# instrumented build would also flag), and the adversary suite (scenario
# key rewrites feeding the parallel campaign engine across worker counts)
# — at reduced budgets so the instrumented run stays fast.
NETCONG_PBT_ITERS="${NETCONG_PBT_ITERS:-3}" \
NETCONG_SCALE_TESTS="${NETCONG_SCALE_TESTS:-500}" \
NETCONG_INGEST_EVENTS="${NETCONG_INGEST_EVENTS:-500}" \
NETCONG_PATHMODEL_TESTS="${NETCONG_PATHMODEL_TESTS:-1}" \
NETCONG_ADVERSARY_DAYS="${NETCONG_ADVERSARY_DAYS:-2}" \
  ctest --test-dir "$BUILD" -L 'tsan|obs|pbt|bench|serve|pathmodel|adversary' \
  --output-on-failure
