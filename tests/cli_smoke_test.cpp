// End-to-end smoke tests for the netcong_cli binary: argument validation
// (unknown subcommands, unknown flags, stray positionals all exit 2 with
// usage on stderr) and one fast invocation of every registered subcommand.
// The subcommand list is discovered from the binary's own help output, so
// registering a new subcommand without adding a smoke invocation here
// fails the suite.

#include <sys/wait.h>

#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  // whatever the shell redirections leave on stdout
};

// Runs the CLI through /bin/sh so tests can use redirections to separate
// the streams: "2>&1 1>/dev/null" captures stderr only, "2>/dev/null"
// captures stdout only.
RunResult run_cli(const std::string& args) {
  std::string cmd = std::string(NETCONG_CLI_PATH) + " " + args;
  RunResult result;
  FILE* pipe = ::popen(cmd.c_str(), "r");
  if (pipe == nullptr) return result;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), pipe)) > 0) {
    result.output.append(buf, n);
  }
  int status = ::pclose(pipe);
  if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
  return result;
}

TEST(CliErrors, NoArgumentsPrintsUsageToStderr) {
  RunResult err = run_cli("2>&1 1>/dev/null");
  EXPECT_NE(err.exit_code, 0);
  EXPECT_NE(err.output.find("usage:"), std::string::npos) << err.output;

  RunResult out = run_cli("2>/dev/null");
  EXPECT_EQ(out.output.find("usage:"), std::string::npos)
      << "usage text leaked to stdout";
}

TEST(CliErrors, UnknownSubcommandExits2WithUsageOnStderr) {
  RunResult err = run_cli("frobnicate 2>&1 1>/dev/null");
  EXPECT_EQ(err.exit_code, 2);
  EXPECT_NE(err.output.find("unknown subcommand 'frobnicate'"),
            std::string::npos)
      << err.output;
  EXPECT_NE(err.output.find("usage:"), std::string::npos);
}

TEST(CliErrors, UnknownFlagExits2WithUsageOnStderr) {
  RunResult err = run_cli("topology --frob 3 2>&1 1>/dev/null");
  EXPECT_EQ(err.exit_code, 2);
  EXPECT_NE(err.output.find("unknown option '--frob'"), std::string::npos)
      << err.output;
  EXPECT_NE(err.output.find("usage:"), std::string::npos);
}

TEST(CliErrors, FlagValidForOneSubcommandIsRejectedForAnother) {
  // --days belongs to campaign (and friends), not to topology.
  RunResult err = run_cli("topology --days 1 2>&1 1>/dev/null");
  EXPECT_EQ(err.exit_code, 2);
  EXPECT_NE(err.output.find("unknown option '--days'"), std::string::npos)
      << err.output;
}

TEST(CliErrors, StrayPositionalExits2WithUsageOnStderr) {
  RunResult err = run_cli("topology extra-arg 2>&1 1>/dev/null");
  EXPECT_EQ(err.exit_code, 2);
  EXPECT_NE(err.output.find("unexpected argument 'extra-arg'"),
            std::string::npos)
      << err.output;
  EXPECT_NE(err.output.find("usage:"), std::string::npos);
}

TEST(CliAdversary, UnknownScenarioExits2) {
  RunResult err = run_cli("adversary --scenario ddos 2>&1 1>/dev/null");
  EXPECT_EQ(err.exit_code, 2);
  EXPECT_NE(err.output.find("--scenario"), std::string::npos) << err.output;
}

TEST(CliAdversary, OutOfRangeFractionExits2) {
  RunResult err = run_cli("adversary --fraction 1.5 2>&1 1>/dev/null");
  EXPECT_EQ(err.exit_code, 2);
  EXPECT_NE(err.output.find("--fraction"), std::string::npos) << err.output;
}

TEST(CliAdversary, BadLinksAndEpochExit2) {
  RunResult links = run_cli(
      "adversary --scenario withdraw --links 0 2>&1 1>/dev/null");
  EXPECT_EQ(links.exit_code, 2);
  EXPECT_NE(links.output.find("--links"), std::string::npos) << links.output;

  RunResult epoch = run_cli(
      "adversary --days 2 --epoch 500 2>&1 1>/dev/null");
  EXPECT_EQ(epoch.exit_code, 2);
  EXPECT_NE(epoch.output.find("--epoch"), std::string::npos) << epoch.output;
}

TEST(CliAdversary, StarsScenarioReportsIndistinguishablePair) {
  RunResult out = run_cli(
      "adversary --scale tiny --seed 3 --scenario stars --fraction 0.5 2>&1");
  EXPECT_EQ(out.exit_code, 0) << out.output;
  EXPECT_NE(out.output.find("indistinguishable ground-truth pair: yes"),
            std::string::npos)
      << out.output;
}

TEST(CliHelp, HelpExitsZeroOnStdout) {
  RunResult out = run_cli("--help 2>/dev/null");
  EXPECT_EQ(out.exit_code, 0);
  EXPECT_NE(out.output.find("usage:"), std::string::npos);
  EXPECT_NE(out.output.find("topology"), std::string::npos);
}

TEST(CliHelp, SubcommandHelpExitsZero) {
  RunResult out = run_cli("campaign --help 2>/dev/null");
  EXPECT_EQ(out.exit_code, 0);
  EXPECT_NE(out.output.find("usage:"), std::string::npos);
}

TEST(CliServe, UnknownFlagExits2WithUsage) {
  RunResult err = run_cli("serve --workers 3 2>&1 1>/dev/null");
  EXPECT_EQ(err.exit_code, 2);
  EXPECT_NE(err.output.find("unknown option '--workers'"), std::string::npos)
      << err.output;
  EXPECT_NE(err.output.find("usage:"), std::string::npos);
}

TEST(CliServe, HelpExitsZeroWithoutRunning) {
  RunResult out = run_cli("serve --help 2>/dev/null");
  EXPECT_EQ(out.exit_code, 0);
  EXPECT_NE(out.output.find("usage:"), std::string::npos);
}

TEST(CliServe, InvalidPolicyExits2) {
  RunResult err = run_cli(
      "serve --scale tiny --seed 3 --tests 100 --policy never "
      "2>&1 1>/dev/null");
  EXPECT_EQ(err.exit_code, 2);
  EXPECT_NE(err.output.find("--policy"), std::string::npos) << err.output;
}

// Every malformed value of the §12 flags is a usage error caught before
// the (expensive) world generation: exit 2 with the flag named on stderr.
TEST(CliServe, InvalidListenPortExits2) {
  for (const char* bad : {"--listen nope", "--listen 70000", "--listen 12x"}) {
    RunResult err = run_cli(std::string("serve --scale tiny ") + bad +
                            " 2>&1 1>/dev/null");
    EXPECT_EQ(err.exit_code, 2) << bad;
    EXPECT_NE(err.output.find("--listen"), std::string::npos)
        << bad << ": " << err.output;
  }
}

TEST(CliServe, InvalidConnectExits2) {
  for (const char* bad :
       {"--connect nohost", "--connect :99", "--connect h:0",
        "--connect h:huge"}) {
    RunResult err = run_cli(std::string("serve --scale tiny ") + bad +
                            " 2>&1 1>/dev/null");
    EXPECT_EQ(err.exit_code, 2) << bad;
    EXPECT_NE(err.output.find("--connect"), std::string::npos)
        << bad << ": " << err.output;
  }
}

TEST(CliServe, ListenAndConnectAreMutuallyExclusive) {
  RunResult err = run_cli(
      "serve --scale tiny --listen 0 --connect h:9 2>&1 1>/dev/null");
  EXPECT_EQ(err.exit_code, 2);
  EXPECT_NE(err.output.find("mutually exclusive"), std::string::npos)
      << err.output;
}

TEST(CliServe, InvalidRetentionExits2) {
  for (const char* bad : {"--epoch -3", "--epoch x", "--retain -1",
                          "--retain 1.5"}) {
    RunResult err = run_cli(std::string("serve --scale tiny ") + bad +
                            " 2>&1 1>/dev/null");
    EXPECT_EQ(err.exit_code, 2) << bad;
  }
}

TEST(CliServe, UncreatableWalDirExits2) {
  RunResult err = run_cli(
      "serve --scale tiny --wal-dir /proc/nope/wal 2>&1 1>/dev/null");
  EXPECT_EQ(err.exit_code, 2);
  EXPECT_NE(err.output.find("--wal-dir"), std::string::npos) << err.output;
}

// pathmodel validates every flag against its closed set before any
// simulation runs: a bad value is a usage error (exit 2, flag named).
TEST(CliPathmodel, InvalidCcExits2) {
  RunResult err = run_cli("pathmodel --cc vegas 2>&1 1>/dev/null");
  EXPECT_EQ(err.exit_code, 2);
  EXPECT_NE(err.output.find("--cc"), std::string::npos) << err.output;
}

TEST(CliPathmodel, InvalidScenarioExits2) {
  RunResult err = run_cli("pathmodel --scenario moon 2>&1 1>/dev/null");
  EXPECT_EQ(err.exit_code, 2);
  EXPECT_NE(err.output.find("--scenario"), std::string::npos) << err.output;
}

TEST(CliPathmodel, InvalidTestsExits2) {
  for (const char* bad : {"--tests 0", "--tests -2", "--tests x",
                          "--tests 1001"}) {
    RunResult err = run_cli(std::string("pathmodel ") + bad +
                            " 2>&1 1>/dev/null");
    EXPECT_EQ(err.exit_code, 2) << bad;
    EXPECT_NE(err.output.find("--tests"), std::string::npos)
        << bad << ": " << err.output;
  }
}

TEST(CliPathmodel, UnwritableOutExits2) {
  RunResult err =
      run_cli("pathmodel --out /proc/nope/cases.csv 2>&1 1>/dev/null");
  EXPECT_EQ(err.exit_code, 2);
  EXPECT_NE(err.output.find("--out"), std::string::npos) << err.output;
}

TEST(CliPathmodel, CsvExportRunsEndToEnd) {
  std::string csv = ::testing::TempDir() + "netcong-cli-pathmodel.csv";
  RunResult run = run_cli("pathmodel --cc cubic --scenario sender "
                          "--tests 1 --out " + csv + " 2>&1");
  ASSERT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("sender_limited"), std::string::npos)
      << run.output;
  std::FILE* f = std::fopen(csv.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char header[256] = {0};
  ASSERT_NE(std::fgets(header, sizeof(header), f), nullptr);
  std::fclose(f);
  EXPECT_NE(std::string(header).find("predicted_label"), std::string::npos);
  std::remove(csv.c_str());
}

TEST(CliServe, ConnectToDeadPortIsRuntimeErrorNotUsage) {
  // A well-formed --connect that finds nobody listening exits 1, not 2 —
  // the flag was fine, the world was not.
  RunResult err = run_cli(
      "serve --scale tiny --seed 3 --tests 50 --connect 127.0.0.1:1 "
      "2>&1 1>/dev/null");
  EXPECT_EQ(err.exit_code, 1);
}

TEST(CliServe, ListenSelfFeedAndWalRunEndToEnd) {
  // The full §12 surface in one invocation: ephemeral listener with the
  // log fed through the socket, WAL persistence, and retention. A second
  // run over the same --wal-dir then replays the recovered log.
  std::string wal = ::testing::TempDir() + "netcong-cli-wal";
  // Start from an empty WAL dir: the second run below replays the first
  // run's log, so a dir surviving *across* test invocations would recover
  // and re-append its whole history — the log roughly doubles per run and
  // a few dozen CI runs turn recovery into a multi-GB replay.
  std::system(("rm -rf " + wal).c_str());
  std::string flags =
      "serve --scale tiny --seed 3 --tests 300 --snapshots 2 --listen 0 "
      "--epoch 64 --retain 2 --wal-dir " + wal;
  RunResult first = run_cli(flags + " 2>&1");
  ASSERT_EQ(first.exit_code, 0) << first.output;
  EXPECT_NE(first.output.find("listening on 127.0.0.1:"), std::string::npos)
      << first.output;
  EXPECT_NE(first.output.find("socket:"), std::string::npos);
  EXPECT_NE(first.output.find("wal:"), std::string::npos);
  EXPECT_NE(first.output.find("retention:"), std::string::npos);
  EXPECT_EQ(first.output.find("[INCONSISTENT]"), std::string::npos)
      << first.output;

  RunResult second = run_cli(flags + " 2>&1");
  EXPECT_EQ(second.exit_code, 0) << second.output;
  EXPECT_NE(second.output.find("recovered"), std::string::npos)
      << second.output;
}

// Parses subcommand names out of the help text: the indented block between
// "subcommands:" and the following blank line, first token of each line.
std::vector<std::string> registered_subcommands() {
  RunResult help = run_cli("--help 2>/dev/null");
  std::vector<std::string> names;
  std::istringstream in(help.output);
  std::string line;
  bool in_block = false;
  while (std::getline(in, line)) {
    if (line == "subcommands:") {
      in_block = true;
      continue;
    }
    if (!in_block) continue;
    if (line.empty()) break;
    std::istringstream fields(line);
    std::string name;
    fields >> name;
    if (!name.empty()) names.push_back(name);
  }
  return names;
}

TEST(CliSmoke, EveryRegisteredSubcommandRuns) {
  // Fast flags for each subcommand: tiny world, short workloads. A
  // subcommand in the registry but missing here fails the ASSERT below —
  // add a smoke invocation when you add a subcommand.
  const std::map<std::string, std::string> smoke_args = {
      {"topology", "--scale tiny --seed 3"},
      {"adversary",
       "--scale tiny --seed 3 --scenario churn --fraction 0.5 --days 2 "
       "--tests-per-client 2"},
      {"campaign", "--scale tiny --seed 3 --days 1 --tests-per-client 1"},
      {"coverage", "--scale tiny --seed 3"},
      {"diurnal", "--scale tiny --seed 3 --days 2"},
      {"faults", "--list"},
      {"pathmodel", "--cc reno --scenario sender --tests 1"},
      {"scale", "--scale tiny --seed 3 --tests 500 --threads 2"},
      {"serve", "--scale tiny --seed 3 --tests 500 --shards 2 --snapshots 2"},
      {"stats", "--scale tiny --seed 3 --days 1 --tests-per-client 1"},
  };

  std::vector<std::string> names = registered_subcommands();
  ASSERT_GE(names.size(), 6u) << "failed to parse subcommands from help";
  for (const std::string& name : names) {
    auto it = smoke_args.find(name);
    ASSERT_NE(it, smoke_args.end())
        << "subcommand '" << name << "' has no smoke invocation";
    RunResult run = run_cli(it->first + " " + it->second + " 2>&1");
    EXPECT_EQ(run.exit_code, 0)
        << "subcommand '" << name << "' failed:\n"
        << run.output;
    EXPECT_FALSE(run.output.empty())
        << "subcommand '" << name << "' produced no output";
  }
}

}  // namespace
