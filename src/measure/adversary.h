#pragma once

// Measurement-side materialization of sim/adversary scenarios: the
// Misleading-Stars indistinguishable corpus pair, and per-campaign
// ground-truth annotations that score the anomaly-detection pass.
//
// Lives in measure/ (not sim/) because it drives real campaigns: the
// Pignolet et al. construction needs an actual traceroute corpus to show
// that two distinct ground-truth topologies produce it identically.

#include <utility>
#include <vector>

#include "gen/world.h"
#include "measure/ark.h"
#include "measure/ndt.h"
#include "measure/traceroute.h"
#include "sim/adversary.h"

namespace netcong::measure {

// The Misleading-Stars pair: one observed corpus, two ground truths.
//
// `observed` is a real vantage-point campaign run under the scenario's
// router cloak — every cloaked router shows as a star. `alternate` carries
// byte-identical observed hops but a different ground truth: each cloaked
// router occurrence is relabeled to a fresh phantom router, the "maximally
// split" reading of the stars (what looked like one shared router is many
// distinct ones). Since a star carries no address, no probing strategy can
// tell the two internets apart: observed fingerprints are equal while the
// truth fingerprints differ whenever any cloaked router was traversed.
struct MisleadingStarsResult {
  std::vector<TracerouteRecord> observed;   // truth = the real topology
  std::vector<TracerouteRecord> alternate;  // truth = the split topology
  std::size_t cloaked_routers = 0;  // routers cloaked by the scenario
  std::size_t cloaked_hops = 0;     // truth hops relabeled in `alternate`
  std::uint64_t observed_fp_a = 0;
  std::uint64_t observed_fp_b = 0;
  std::uint64_t truth_fp_a = 0;
  std::uint64_t truth_fp_b = 0;

  bool indistinguishable() const {
    return observed_fp_a == observed_fp_b &&
           (cloaked_hops == 0 || truth_fp_a != truth_fp_b);
  }
};

// First router id used for phantom relabels; far above any generated world.
inline constexpr std::uint32_t kPhantomRouterBase = 0x40000000u;

// Runs a full-prefix Ark campaign from the VP under the scenario's cloak
// and builds the indistinguishable pair.
MisleadingStarsResult misleading_stars_corpus(
    const gen::World& world, const route::Forwarder& fwd,
    const sim::AdversaryScenario& scenario, std::uint32_t vp,
    const ArkCampaignOptions& options, util::Rng& rng);

// Ground-truth annotations of an adversarial campaign, for scoring the
// anomaly detector (core/anomaly_eval.h). Everything here is derived from
// the scenario + topology + result — inference code never sees it.
struct AdversaryCampaignTruth {
  double epoch_hours = 0.0;
  double churn_fraction = 0.0;
  double asym_fraction = 0.0;
  std::vector<topo::LinkId> withdrawn_links;
  // Interface addresses of each withdrawn link (side_a, side_b) — the
  // observable identities a detector can name.
  std::vector<std::pair<topo::IpAddr, topo::IpAddr>> withdrawn_addrs;
  // Distinct (server, client-addr) pairs in the campaign, and how many of
  // them the scenario re-routes at the epoch.
  std::size_t pairs_total = 0;
  std::size_t pairs_churned = 0;
  std::size_t tests_pre_epoch = 0;
  std::size_t tests_post_epoch = 0;

  // Accounting invariant: every test lands on one side of the epoch.
  bool accounted(std::size_t tests_total) const {
    return tests_pre_epoch + tests_post_epoch == tests_total &&
           pairs_churned <= pairs_total;
  }
};

AdversaryCampaignTruth annotate_campaign(
    const sim::AdversaryScenario& scenario, const topo::Topology& topo,
    const CampaignResult& result);

// The subset of withdrawn links a detector could possibly find: those whose
// interface addresses were observed by at least one pre-epoch traceroute.
// A link no probe ever crossed before the epoch leaves no absence to
// detect; scoring recall against it would measure visibility, not the
// detector.
std::vector<std::pair<topo::IpAddr, topo::IpAddr>> detectable_withdrawn(
    const CampaignResult& result, const AdversaryCampaignTruth& truth);

}  // namespace netcong::measure
