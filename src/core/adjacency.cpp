#include "core/adjacency.h"

#include <algorithm>

#include "util/flat_map.h"

namespace netcong::core {

int as_hops_on_traceroute(const measure::TracerouteRecord& trace,
                          topo::Asn server_asn, topo::Asn client_asn,
                          const infer::MapItResult& mapit,
                          const infer::Ip2As& ip2as,
                          const infer::OrgMap& orgs) {
  // Operating-AS run-length sequence along the trace, collapsed by org,
  // ignoring unresolved hops (stars or unmapped addresses).
  struct Run {
    std::uint32_t org;
    int hops;
  };
  std::vector<Run> runs;
  auto push_asn = [&](topo::Asn asn, int weight) {
    if (asn == 0) return;
    std::uint32_t org = orgs.org_of(asn);
    if (org == 0) return;
    if (!runs.empty() && runs.back().org == org) {
      runs.back().hops += weight;
    } else {
      runs.push_back(Run{org, weight});
    }
  };

  // Endpoints are known from test metadata and anchor the sequence firmly.
  push_asn(server_asn, 2);
  for (const auto& hop : trace.hops) {
    if (!hop.responded) continue;
    topo::Asn op = mapit.op(hop.addr);
    if (op == 0) op = ip2as.origin(hop.addr);
    push_asn(op, 1);
  }
  push_asn(client_asn, 2);

  // Standard traceroute-interpretation hygiene (cf. Luckie et al. [25]):
  // an org supported by a single interface wedged between two other orgs is
  // most likely a third-party address or a misassigned border interface —
  // drop such interior runs, then re-merge.
  std::vector<std::uint32_t> org_seq;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (runs[i].hops == 1 && i > 0 && i + 1 < runs.size()) continue;
    if (org_seq.empty() || org_seq.back() != runs[i].org) {
      org_seq.push_back(runs[i].org);
    }
  }

  if (org_seq.size() < 2) return -1;
  if (org_seq.front() != orgs.org_of(server_asn)) return -1;
  if (org_seq.back() != orgs.org_of(client_asn)) return -1;
  return static_cast<int>(org_seq.size()) - 1;
}

std::vector<AdjacencyStats> analyze_adjacency(
    const std::vector<measure::MatchedTest>& matched,
    const infer::MapItResult& mapit, const infer::Ip2As& ip2as,
    const infer::OrgMap& orgs,
    const std::map<topo::Asn, std::string>& isp_of) {
  util::FlatMap<std::string, AdjacencyStats> by_isp;
  for (const auto& m : matched) {
    if (!m.traceroute) continue;
    auto it = isp_of.find(m.test->client_asn);
    if (it == isp_of.end()) continue;
    AdjacencyStats& s = by_isp[it->second];
    s.isp = it->second;
    s.matched_tests++;
    int hops = as_hops_on_traceroute(*m.traceroute, m.test->server_asn,
                                     m.test->client_asn, mapit, ip2as, orgs);
    if (hops < 0) {
      s.unresolved++;
    } else if (hops <= 1) {
      s.one_hop++;
    } else if (hops == 2) {
      s.two_hops++;
    } else {
      s.more_hops++;
    }
  }
  std::vector<AdjacencyStats> out;
  out.reserve(by_isp.size());
  for (auto& [name, s] : by_isp) out.push_back(std::move(s));
  // Keep the historical name-ordered output now that the accumulator no
  // longer iterates in key order.
  std::sort(out.begin(), out.end(),
            [](const AdjacencyStats& a, const AdjacencyStats& b) {
              return a.isp < b.isp;
            });
  return out;
}

}  // namespace netcong::core
