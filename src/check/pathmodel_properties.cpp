// Properties of the CC-aware packet simulator and the infer/pathmodel
// classifier (DESIGN.md §13):
//
//   pathmodel.cc_determinism — a scenario is a pure function of its flow
//     specs: re-running the same two-hop AccessInterdomain setup reproduces
//     every flow's stats fingerprint and both queues' counters bit-for-bit,
//     and rotating the insertion order of the background flows leaves the
//     test flow's fingerprint (and the multiset of background fingerprints)
//     unchanged. Background RTTs and start times are drawn from the
//     continuum, so no two events ever tie on a double timestamp and the
//     event order is determined by time alone — any divergence means hidden
//     global state, uninitialized reads, or id-dependent behavior in a CC.
//
//   pathmodel.label_scale_invariance — the classifier's label depends on
//     the *shape* of the path, not its absolute rate: scaling the
//     bottleneck bandwidth, the buffer, and the flow demand (window caps,
//     competing flows' entitlement) by the same factor k preserves BDP
//     ratios and queueing-delay magnitudes, so the label must not change.
//     This is the §6 argument in metamorphic form — a fixed throughput
//     threshold fails exactly this transformation.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "check/properties.h"
#include "infer/pathmodel.h"
#include "sim/packet/access_interdomain.h"
#include "sim/packet/dumbbell.h"
#include "util/strings.h"

namespace netcong::check {
namespace {

namespace sp = netcong::sim::packet;

using util::format;

// ---- pathmodel.cc_determinism -------------------------------------------

struct BgFlow {
  double rtt_s = 0.04;
  double start_s = 1.0;
  bool on_access = false;  // kLocalAccess vs kCrossInterdomain
};

struct DetScenario {
  sp::CcAlgo cc = sp::CcAlgo::kNewReno;
  double access_mbps = 30.0;
  int access_buffer = 200;
  double test_rtt_s = 0.04;
  std::vector<BgFlow> background;
  int rotation = 0;  // background insertion-order rotation for the re-run
};

constexpr double kDetDurationS = 10.0;

util::pbt::Domain<DetScenario> det_scenario_domain() {
  util::pbt::Domain<DetScenario> d;
  d.generate = [](util::Rng& rng) {
    DetScenario s;
    s.cc = rng.pick(std::vector<sp::CcAlgo>{
        sp::CcAlgo::kNewReno, sp::CcAlgo::kCubic, sp::CcAlgo::kBbr});
    // Continuum draws: 53-bit random doubles make exact event-time ties
    // between distinct flows (the one thing insertion order may reorder)
    // a measure-zero coincidence.
    s.access_mbps = rng.uniform(15.0, 50.0);
    s.access_buffer = static_cast<int>(rng.uniform_int(100, 400));
    s.test_rtt_s = rng.uniform(0.02, 0.06);
    int n = static_cast<int>(rng.uniform_int(0, 3));
    for (int i = 0; i < n; ++i) {
      BgFlow bg;
      bg.rtt_s = rng.uniform(0.02, 0.06);
      bg.start_s = rng.uniform(0.5, 3.0);
      bg.on_access = rng.chance(0.5);
      s.background.push_back(bg);
    }
    s.rotation = n > 1 ? static_cast<int>(rng.uniform_int(1, n - 1)) : 0;
    return s;
  };
  d.shrink = [](const DetScenario& s) {
    std::vector<DetScenario> out;
    for (std::size_t i = 0; i < s.background.size(); ++i) {
      DetScenario smaller = s;
      smaller.background.erase(smaller.background.begin() +
                               static_cast<std::ptrdiff_t>(i));
      smaller.rotation = smaller.background.size() > 1
                             ? std::min<int>(smaller.rotation,
                                             static_cast<int>(
                                                 smaller.background.size()) -
                                                 1)
                             : 0;
      out.push_back(std::move(smaller));
    }
    if (s.cc != sp::CcAlgo::kNewReno) {
      DetScenario simpler = s;
      simpler.cc = sp::CcAlgo::kNewReno;
      out.push_back(std::move(simpler));
    }
    return out;
  };
  d.describe = [](const DetScenario& s) {
    std::string out = format(
        "{cc=%s access=%.3fMbps buf=%d rtt=%.4fs rot=%d bg=[",
        sp::cc_algo_name(s.cc), s.access_mbps, s.access_buffer, s.test_rtt_s,
        s.rotation);
    for (std::size_t i = 0; i < s.background.size(); ++i) {
      if (i) out += ", ";
      out += format("{rtt=%.4f start=%.3f %s}", s.background[i].rtt_s,
                    s.background[i].start_s,
                    s.background[i].on_access ? "access" : "interdomain");
    }
    return out + "]}";
  };
  return d;
}

struct DetOutcome {
  std::uint64_t test_fp = 0;
  std::vector<std::uint64_t> background_fps;  // insertion order
  std::int64_t interdomain_drops = 0;
  std::int64_t access_drops = 0;
  std::int64_t interdomain_delivered = 0;
  std::int64_t access_delivered = 0;
};

// Runs the scenario with the background flows rotated by `rotation` before
// the test flow is added last. Full (unbounded) traces so the fingerprints
// cover every recorded sample.
DetOutcome run_det_scenario(const DetScenario& s, int rotation) {
  sp::AccessInterdomain::Params params;
  params.access_mbps = s.access_mbps;
  params.access_buffer_packets = s.access_buffer;
  params.interdomain_mbps = 2.5 * s.access_mbps;
  params.interdomain_buffer_packets = 800;
  params.duration_s = kDetDurationS;
  sp::AccessInterdomain net(params);

  int n = static_cast<int>(s.background.size());
  for (int i = 0; i < n; ++i) {
    const BgFlow& bg = s.background[static_cast<std::size_t>(
        (i + rotation) % n)];
    sp::FlowSpec spec;
    spec.start_time_s = bg.start_s;
    spec.base_rtt_s = bg.rtt_s;
    spec.cc = sp::CcAlgo::kNewReno;
    spec.max_trace_samples = 0;
    net.add_flow(spec, bg.on_access ? sp::FlowPath::kLocalAccess
                                    : sp::FlowPath::kCrossInterdomain);
  }
  sp::FlowSpec test;
  test.start_time_s = 0.1;
  test.base_rtt_s = s.test_rtt_s;
  test.cc = s.cc;
  test.max_trace_samples = 0;
  int test_idx = net.add_flow(test, sp::FlowPath::kServerToClient);

  sp::AiResult result = net.run();
  DetOutcome out;
  for (int i = 0; i < static_cast<int>(result.flows.size()); ++i) {
    std::uint64_t fp = sp::stats_fingerprint(result.flows[
        static_cast<std::size_t>(i)].stats);
    if (i == test_idx) {
      out.test_fp = fp;
    } else {
      out.background_fps.push_back(fp);
    }
  }
  out.interdomain_drops = result.interdomain_drops;
  out.access_drops = result.access_drops;
  out.interdomain_delivered = result.interdomain_delivered;
  out.access_delivered = result.access_delivered;
  return out;
}

std::string check_cc_determinism(const DetScenario& s) {
  DetOutcome a = run_det_scenario(s, 0);
  DetOutcome b = run_det_scenario(s, 0);

  // Same insertion order → bit-identical everything.
  if (a.test_fp != b.test_fp || a.background_fps != b.background_fps) {
    return format("re-run diverged: test %016llx vs %016llx",
                  static_cast<unsigned long long>(a.test_fp),
                  static_cast<unsigned long long>(b.test_fp));
  }
  if (a.interdomain_drops != b.interdomain_drops ||
      a.access_drops != b.access_drops ||
      a.interdomain_delivered != b.interdomain_delivered ||
      a.access_delivered != b.access_delivered) {
    return "re-run diverged: queue counters differ";
  }

  // Rotated background insertion → the same set of flows, so the same
  // trajectory: the test flow is bit-identical and the background
  // fingerprints are the same multiset.
  DetOutcome c = run_det_scenario(s, s.rotation);
  if (a.test_fp != c.test_fp) {
    return format(
        "insertion order changed the test flow: %016llx vs %016llx (rot=%d)",
        static_cast<unsigned long long>(a.test_fp),
        static_cast<unsigned long long>(c.test_fp), s.rotation);
  }
  std::vector<std::uint64_t> lhs = a.background_fps;
  std::vector<std::uint64_t> rhs = c.background_fps;
  std::sort(lhs.begin(), lhs.end());
  std::sort(rhs.begin(), rhs.end());
  if (lhs != rhs) {
    return format("insertion order changed a background flow (rot=%d)",
                  s.rotation);
  }
  return "";
}

// ---- pathmodel.label_scale_invariance -----------------------------------

enum class Regime { kSender, kBandwidth, kCongested };

const char* regime_name(Regime r) {
  switch (r) {
    case Regime::kSender:
      return "sender";
    case Regime::kBandwidth:
      return "bandwidth";
    case Regime::kCongested:
      return "congested";
  }
  return "?";
}

struct ScaleScenario {
  sp::CcAlgo cc = sp::CcAlgo::kNewReno;
  Regime regime = Regime::kBandwidth;
  double access_mbps = 30.0;
  double rtt_s = 0.03;
  double cwnd_frac = 0.3;  // sender regime: window cap as a BDP fraction
  int competitors = 2;     // congested regime
  int scale = 2;
};

constexpr double kScaleDurationS = 15.0;

util::pbt::Domain<ScaleScenario> scale_scenario_domain() {
  util::pbt::Domain<ScaleScenario> d;
  d.generate = [](util::Rng& rng) {
    ScaleScenario s;
    s.cc = rng.pick(std::vector<sp::CcAlgo>{
        sp::CcAlgo::kNewReno, sp::CcAlgo::kCubic, sp::CcAlgo::kBbr});
    s.regime = rng.pick(std::vector<Regime>{
        Regime::kSender, Regime::kBandwidth, Regime::kCongested});
    s.access_mbps = rng.uniform(20.0, 40.0);
    s.rtt_s = rng.uniform(0.02, 0.05);
    // Keep the window cap well clear of the sender_limited_bdp_fraction
    // decision boundary — the property asserts invariance of clear-cut
    // cases, not of coin flips at the threshold.
    s.cwnd_frac = rng.uniform(0.25, 0.45);
    s.competitors = static_cast<int>(rng.uniform_int(2, 3));
    s.scale = static_cast<int>(rng.uniform_int(2, 3));
    return s;
  };
  d.shrink = [](const ScaleScenario& s) {
    std::vector<ScaleScenario> out;
    if (s.scale > 2) {
      ScaleScenario smaller = s;
      smaller.scale = 2;
      out.push_back(smaller);
    }
    if (s.regime == Regime::kCongested && s.competitors > 2) {
      ScaleScenario smaller = s;
      smaller.competitors = 2;
      out.push_back(smaller);
    }
    if (s.cc != sp::CcAlgo::kNewReno) {
      ScaleScenario simpler = s;
      simpler.cc = sp::CcAlgo::kNewReno;
      out.push_back(simpler);
    }
    return out;
  };
  d.describe = [](const ScaleScenario& s) {
    return format(
        "{cc=%s regime=%s access=%.3fMbps rtt=%.4fs cwnd_frac=%.3f "
        "competitors=%d k=%d}",
        sp::cc_algo_name(s.cc), regime_name(s.regime), s.access_mbps,
        s.rtt_s, s.cwnd_frac, s.competitors, s.scale);
  };
  return d;
}

infer::FlowTrace trace_from(const sp::FlowResult& fr, double stop_s) {
  infer::FlowTrace trace;
  trace.start_s = 0.0;
  trace.stop_s = stop_s;
  trace.mss_bytes = 1500;
  trace.rtt_samples_ms = fr.stats.rtt_samples_ms;
  trace.rtt_sample_times_s = fr.stats.rtt_sample_times_s;
  trace.ack_trace = fr.stats.ack_trace;
  return trace;
}

// Runs the scenario with every rate-like quantity multiplied by k: the
// bottleneck, its buffer, and the window caps. BDP scales by k, BDP
// *ratios* and queueing-delay magnitudes do not.
infer::PathModelResult run_scale_case(const ScaleScenario& s, int k) {
  double mbps = s.access_mbps * k;
  double bdp = mbps * 1e6 / 8.0 / 1500.0 * s.rtt_s;
  sp::Dumbbell::Params params;
  params.bottleneck_mbps = mbps;
  params.duration_s = kScaleDurationS;
  // Congested runs get a deep buffer (standing queue clearly above the
  // inflation threshold); solo runs a sub-BDP one (a loss-based sawtooth
  // drains it, keeping the healthy case's p10 RTT at the floor).
  params.buffer_packets = static_cast<int>(
      s.regime == Regime::kCongested ? 2.0 * bdp : 0.8 * bdp);
  sp::Dumbbell net(params);

  sp::FlowSpec test;
  test.base_rtt_s = s.rtt_s;
  test.cc = s.cc;
  if (s.regime == Regime::kSender) test.max_cwnd = s.cwnd_frac * bdp;
  int test_idx = net.add_flow(test);

  if (s.regime == Regime::kCongested) {
    for (int i = 0; i < s.competitors; ++i) {
      sp::FlowSpec bg;
      bg.base_rtt_s = s.rtt_s * (0.8 + 0.1 * i);
      bg.cc = sp::CcAlgo::kNewReno;
      net.add_flow(bg);
    }
  }

  sp::DumbbellResult result = net.run();
  return infer::classify_flow(
      trace_from(result.flows[static_cast<std::size_t>(test_idx)],
                 kScaleDurationS));
}

// The classifier's evidence (inflight/BDP ratio, steady RTT percentiles)
// is scale-free only up to packet discreteness and CC convergence effects,
// so a base case sitting right on a decision boundary may legitimately land
// on the other side after scaling. The property asserts invariance for
// clear-cut cases only: evidence within a guard band of any boundary makes
// the iteration vacuous.
bool near_decision_boundary(const infer::PathModelResult& r) {
  infer::PathModelConfig cfg;
  double inflated_ms =
      r.rtprop_ms * (1.0 + cfg.rtt_inflation_alpha) + cfg.rtt_inflation_floor_ms;
  auto rtt_clear = [&](double ms) {
    return ms > 1.15 * inflated_ms || ms < 0.9 * inflated_ms;
  };
  double ratio = r.bdp_packets > 0.0 ? r.avg_inflight_packets / r.bdp_packets
                                     : 0.0;
  bool ratio_clear = ratio < cfg.sender_limited_bdp_fraction - 0.15 ||
                     ratio > cfg.sender_limited_bdp_fraction + 0.15;
  return !(rtt_clear(r.steady_p10_rtt_ms) && rtt_clear(r.steady_p50_rtt_ms) &&
           ratio_clear);
}

std::string check_label_scale_invariance(const ScaleScenario& s) {
  infer::PathModelResult base = run_scale_case(s, 1);
  infer::PathModelResult scaled = run_scale_case(s, s.scale);
  if (!base.valid || !scaled.valid) {
    return format("classifier returned invalid (base=%d scaled=%d)",
                  base.valid ? 1 : 0, scaled.valid ? 1 : 0);
  }
  if (near_decision_boundary(base)) return "";  // vacuous: boundary case
  if (base.label != scaled.label) {
    return format(
        "label flipped under x%d scaling: %s (p10=%.2fms infl=%.1f/bdp "
        "%.1f) vs %s (p10=%.2fms infl=%.1f/bdp %.1f)",
        s.scale, infer::flow_label_name(base.label), base.steady_p10_rtt_ms,
        base.avg_inflight_packets, base.bdp_packets,
        infer::flow_label_name(scaled.label), scaled.steady_p10_rtt_ms,
        scaled.avg_inflight_packets, scaled.bdp_packets);
  }
  return "";
}

}  // namespace

void register_pathmodel_properties(std::vector<Property>& out) {
  out.push_back(Property{
      "pathmodel.cc_determinism", "pathmodel",
      "same flow specs reproduce bit-identical stats fingerprints across "
      "re-runs and background-flow insertion orders, for every CC",
      10,
      [](util::pbt::Config cfg) {
        return util::pbt::check<DetScenario>(
            "pathmodel.cc_determinism", det_scenario_domain(),
            check_cc_determinism, cfg);
      }});
  out.push_back(Property{
      "pathmodel.label_scale_invariance", "pathmodel",
      "scaling bottleneck bandwidth, buffer, and flow demand together "
      "leaves the path-model label unchanged",
      8,
      [](util::pbt::Config cfg) {
        return util::pbt::check<ScaleScenario>(
            "pathmodel.label_scale_invariance", scale_scenario_domain(),
            check_label_scale_invariance, cfg);
      }});
}

}  // namespace netcong::check
