// Figure 2 / Section 5.2: per Ark VP, the number of AS-level and
// router-level interdomain interconnections discovered by bdrmap, and how
// many of them appear on traceroute paths toward M-Lab and Speedtest
// servers. The paper's headline: M-Lab covers 0.4-9% of AS-level
// interconnections; Speedtest several-fold more.

#include <cstdio>
#include <map>

#include "common.h"
#include "gen/paper_data.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace netcong;
  bench::print_header("Figure 2",
                      "Coverage of AS-level and router-level interdomain "
                      "interconnections (Feb-2017-style snapshot)");

  bench::Context ctx(bench::bench_config());
  auto coverage = bench::run_coverage(ctx, /*snapshot_2017=*/true, 4);

  std::map<std::string, const gen::paper::CoverageRow*> paper;
  for (const auto& row : gen::paper::sec52_coverage()) {
    paper[std::string(row.isp)] = &row;
  }

  util::TextTable table({"VP", "Network", "bdrmap AS", "M-Lab AS", "ST AS",
                         "M-Lab AS %", "ST AS %", "paper M-Lab %",
                         "bdrmap Rtr", "M-Lab Rtr", "ST Rtr"});
  for (const auto& c : coverage) {
    const auto* p = paper.count(c.network) ? paper.at(c.network) : nullptr;
    table.add_row(
        {c.vp_label, c.network, std::to_string(c.discovered.as_level.size()),
         std::to_string(c.mlab.as_level.size()),
         std::to_string(c.speedtest.as_level.size()),
         bench::pct(core::VpCoverage::pct(c.mlab.as_level.size(),
                                          c.discovered.as_level.size())),
         bench::pct(core::VpCoverage::pct(c.speedtest.as_level.size(),
                                          c.discovered.as_level.size())),
         p ? bench::pct(p->mlab_all_as_pct) : "-",
         std::to_string(c.discovered.router_level.size()),
         std::to_string(c.mlab.router_level.size()),
         std::to_string(c.speedtest.router_level.size())});
  }
  std::printf("%s", table.render().c_str());
  bench::print_footnote(
      "shape target: M-Lab covers a small single-digit percentage of all "
      "AS-level interconnections; Speedtest covers several times more "
      "(paper: 0.4-9% vs 2.3-28%)");
  return 0;
}
