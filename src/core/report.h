#pragma once

// M-Lab-style interconnection report (paper Section 2.2): the 2014/2015
// reports grouped NDT tests "by source AS, destination AS, and server
// location" and tracked daily medians of download throughput, flow RTT and
// retransmission rate, inferring *persistent* interdomain congestion from
// sustained peak-hour degradation. This module reproduces that report
// structure — including per-day tracking, so dispute-resolution events
// (capacity upgrades mid-window) show up as recoveries, the way the real
// reports narrated the Cogent/Comcast settlements.

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "gen/world.h"
#include "measure/ndt.h"

namespace netcong::core {

struct ReportCell {
  std::string source;      // transit network name
  std::string isp;         // access ISP
  std::string metro;       // server metro code
  std::size_t tests = 0;

  // Per-day series (index = day since campaign start).
  std::vector<double> daily_peak_median_mbps;
  std::vector<double> daily_offpeak_median_mbps;
  std::vector<double> daily_median_rtt_ms;
  std::vector<double> daily_retrans_rate;
  std::vector<std::size_t> daily_tests;

  // Days whose peak median sits below `degraded_fraction` of the same day's
  // off-peak median (NaN-days skipped).
  int degraded_days(double degraded_fraction = 0.6) const;
  // Longest run of consecutive degraded days.
  int longest_degraded_streak(double degraded_fraction = 0.6) const;
};

struct ReportOptions {
  int days = 28;
  int peak_from = 19, peak_to = 23;     // client-local hours
  int offpeak_from = 9, offpeak_to = 17;  // daytime baseline, as the reports
  std::size_t min_tests_per_cell = 100;
  double degraded_fraction = 0.6;
  // A cell is flagged "persistently congested" when at least this many
  // consecutive days are degraded.
  int persistent_streak_days = 7;
};

struct InterconnectReport {
  std::vector<ReportCell> cells;  // only cells above min_tests_per_cell
  // Cells flagged persistent, most-degraded first.
  std::vector<std::size_t> persistent;  // indices into cells
};

InterconnectReport build_interconnect_report(
    const std::vector<measure::NdtRecord>& tests, const gen::World& world,
    const std::map<topo::Asn, std::string>& isp_of,
    const ReportOptions& options);

}  // namespace netcong::core
