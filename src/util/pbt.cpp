#include "util/pbt.h"

#include <algorithm>
#include <cstdlib>

namespace netcong::util::pbt {

std::optional<std::uint64_t> env_repro_seed() {
  const char* v = std::getenv("NETCONG_PBT_SEED");
  if (v == nullptr || *v == '\0') return std::nullopt;
  char* end = nullptr;
  // Accepts decimal or 0x-prefixed hex (the format the report prints).
  unsigned long long parsed = std::strtoull(v, &end, 0);
  if (end == v || *end != '\0') return std::nullopt;
  return static_cast<std::uint64_t>(parsed);
}

std::optional<int> env_iterations() {
  const char* v = std::getenv("NETCONG_PBT_ITERS");
  if (v == nullptr || *v == '\0') return std::nullopt;
  char* end = nullptr;
  long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || parsed <= 0 || parsed > 1000000) {
    return std::nullopt;
  }
  return static_cast<int>(parsed);
}

std::uint64_t case_seed(std::uint64_t base, int iteration) {
  // Same Weyl-step + splitmix finalizer as Rng::fork(stream): case seeds
  // are independent of each other and of the raw base seed.
  std::uint64_t z = base ^ (0x9e3779b97f4a7c15ull +
                            static_cast<std::uint64_t>(iteration) *
                                0xd1342543de82ef95ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::string failure_report(std::string_view name, int iterations_run,
                           std::uint64_t failing_seed, int shrink_steps,
                           std::string_view counterexample,
                           std::string_view failure) {
  std::string out;
  out += format("property '%.*s' FAILED on case %d\n",
                static_cast<int>(name.size()), name.data(), iterations_run);
  out += format("  NETCONG_PBT_SEED=0x%016llx\n",
                static_cast<unsigned long long>(failing_seed));
  out += format("  (set that variable to re-run exactly this case in any "
                "pbt test binary or netcong_check)\n");
  out += format("  counterexample (after %d shrink evaluations): %.*s\n",
                shrink_steps, static_cast<int>(counterexample.size()),
                counterexample.data());
  out += format("  failure: %.*s", static_cast<int>(failure.size()),
                failure.data());
  return out;
}

Domain<std::int64_t> int_range(std::int64_t lo, std::int64_t hi) {
  Domain<std::int64_t> d;
  d.generate = [lo, hi](Rng& rng) { return rng.uniform_int(lo, hi); };
  d.shrink = [lo](const std::int64_t& v) {
    std::vector<std::int64_t> out;
    if (v == lo) return out;
    out.push_back(lo);                 // jump straight to the minimum
    std::int64_t mid = lo + (v - lo) / 2;
    if (mid != lo && mid != v) out.push_back(mid);  // binary descent
    if (v - 1 != lo && v - 1 != mid) out.push_back(v - 1);
    return out;
  };
  d.describe = [](const std::int64_t& v) { return format("%lld", static_cast<long long>(v)); };
  return d;
}

Domain<double> double_range(double lo, double hi) {
  Domain<double> d;
  d.generate = [lo, hi](Rng& rng) { return rng.uniform(lo, hi); };
  d.shrink = [lo](const double& v) {
    std::vector<double> out;
    if (!(v > lo)) return out;
    out.push_back(lo);
    double mid = lo + (v - lo) / 2.0;
    if (mid > lo && mid < v) out.push_back(mid);
    return out;
  };
  d.describe = [](const double& v) { return format("%.6g", v); };
  return d;
}

Domain<bool> boolean() {
  Domain<bool> d;
  d.generate = [](Rng& rng) { return rng.chance(0.5); };
  d.shrink = [](const bool& v) {
    return v ? std::vector<bool>{false} : std::vector<bool>{};
  };
  d.describe = [](const bool& v) { return std::string(v ? "true" : "false"); };
  return d;
}

}  // namespace netcong::util::pbt
