#pragma once

// Crowdsourced measurement schedules. Reproduces the sampling
// characteristics the paper worries about (Section 6.1): users run tests
// manually so volume follows local time of day, a few enthusiasts run many
// tests while most homes contribute one or two, and sample counts collapse
// in the small hours.

#include <vector>

#include "gen/world.h"
#include "util/rng.h"

namespace netcong::gen {

struct TestRequest {
  std::uint32_t client = 0;
  // Time of the test in hours since the start of the measurement window
  // (UTC). Hour-of-day = fmod(time, 24).
  double utc_time_hours = 0.0;
};

struct WorkloadConfig {
  int days = 28;
  // Mean tests per client over the whole window.
  double mean_tests_per_client = 6.0;
  // Heavy-tail exponent for per-client activity (smaller = heavier tail of
  // enthusiast testers).
  double activity_pareto_alpha = 1.6;
  // If false, tests are uniform over the day (an idealized platform that
  // schedules its own tests, like Ark/BISmark).
  bool diurnal_bias = true;
  // Users often re-run a speed test a few times in one sitting; each test
  // spawns a short repeat session with this probability. Repeats are what
  // make the relaxed (before-or-after) traceroute matching window recover
  // substantially more tests than the strict after-window (Section 4.1).
  double repeat_session_prob = 0.30;
  int repeat_max = 3;
  double repeat_window_minutes = 15.0;
};

// Generates a schedule over the given clients, sorted by time.
std::vector<TestRequest> crowdsourced_schedule(
    const World& world, const std::vector<std::uint32_t>& clients,
    const WorkloadConfig& config, util::Rng& rng);

}  // namespace netcong::gen
