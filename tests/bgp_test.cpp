#include <gtest/gtest.h>

#include <set>

#include "helpers.h"
#include "route/bgp.h"

namespace netcong::route {
namespace {

using test::HandTopo;
using topo::AsType;
using topo::RelType;

// Star topology: transit 100 on top; 200, 300 customers of 100.
class BgpStar : public ::testing::Test {
 protected:
  BgpStar() {
    h.add_as(100, "T", AsType::kTransit, {0, 1, 2});
    h.add_as(200, "A", AsType::kAccess, {0});
    h.add_as(300, "B", AsType::kAccess, {1});
    h.connect(200, 100, RelType::kCustomer, {0});
    h.connect(300, 100, RelType::kCustomer, {1});
  }
  HandTopo h;
};

TEST_F(BgpStar, CustomerToProviderPath) {
  BgpRouting bgp(h.topo());
  auto p = bgp.as_path(200, 100);
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0], 200u);
  EXPECT_EQ(p[1], 100u);
  EXPECT_EQ(bgp.route_class(200, 100), RouteClass::kProvider);
  EXPECT_EQ(bgp.route_class(100, 200), RouteClass::kCustomer);
}

TEST_F(BgpStar, SiblingsReachViaProvider) {
  BgpRouting bgp(h.topo());
  auto p = bgp.as_path(200, 300);
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p[1], 100u);
  EXPECT_TRUE(is_valley_free(h.topo(), p));
}

TEST_F(BgpStar, SelfPath) {
  BgpRouting bgp(h.topo());
  auto p = bgp.as_path(200, 200);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(bgp.route_class(200, 200), RouteClass::kSelf);
}

TEST_F(BgpStar, UnknownAsnUnreachable) {
  BgpRouting bgp(h.topo());
  EXPECT_TRUE(bgp.as_path(200, 999).empty());
  EXPECT_FALSE(bgp.reachable(200, 999));
}

TEST(Bgp, PeersDoNotTransit) {
  // 200 -peer- 300; 400 is a customer of 300; 500 is a peer of 300.
  // 300 exports its customer routes to peers, so 200 reaches 400 via 300 —
  // but peer routes are not re-exported, so 200 must NOT reach 500 via 300.
  HandTopo h;
  h.add_as(200, "A", AsType::kAccess, {0});
  h.add_as(300, "B", AsType::kAccess, {0});
  h.add_as(400, "C", AsType::kEnterprise, {0});
  h.add_as(500, "D", AsType::kAccess, {0});
  h.connect(200, 300, RelType::kPeer, {0});
  h.connect(400, 300, RelType::kCustomer, {0});
  h.connect(300, 500, RelType::kPeer, {0});
  BgpRouting bgp(h.topo());
  // Customer routes are exported to peers:
  auto p = bgp.as_path(200, 400);
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(bgp.route_class(200, 400), RouteClass::kPeer);
  // Peer routes are NOT re-exported to other peers (no valley):
  EXPECT_TRUE(bgp.as_path(200, 500).empty());
}

TEST(Bgp, PrefersCustomerOverPeerOverProvider) {
  // Destination 900 reachable from 100 three ways:
  //   via customer 10 (customer route),
  //   via peer 20 (peer route),
  //   via provider 30 (provider route).
  HandTopo h;
  h.add_as(100, "X", AsType::kTransit, {0});
  h.add_as(10, "Cust", AsType::kTransit, {0});
  h.add_as(20, "Peer", AsType::kTransit, {0});
  h.add_as(30, "Prov", AsType::kTransit, {0});
  h.add_as(900, "Dst", AsType::kEnterprise, {0});
  h.connect(10, 100, RelType::kCustomer, {0});
  h.connect(100, 20, RelType::kPeer, {0});
  h.connect(100, 30, RelType::kCustomer, {0});
  h.connect(900, 10, RelType::kCustomer, {0});
  h.connect(900, 20, RelType::kCustomer, {0});
  h.connect(900, 30, RelType::kCustomer, {0});
  BgpRouting bgp(h.topo());
  auto p = bgp.as_path(100, 900);
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p[1], 10u);  // the customer, despite all being 2 hops
  EXPECT_EQ(bgp.route_class(100, 900), RouteClass::kCustomer);
}

TEST(Bgp, PrefersShorterWithinClass) {
  // Two customer routes to 900: direct (via 900 being customer) vs longer.
  HandTopo h;
  h.add_as(100, "X", AsType::kTransit, {0});
  h.add_as(10, "C1", AsType::kTransit, {0});
  h.add_as(900, "Dst", AsType::kEnterprise, {0});
  h.connect(10, 100, RelType::kCustomer, {0});
  h.connect(900, 100, RelType::kCustomer, {0});
  h.connect(900, 10, RelType::kCustomer, {0});
  BgpRouting bgp(h.topo());
  auto p = bgp.as_path(100, 900);
  ASSERT_EQ(p.size(), 2u);  // direct customer beats 2-hop customer
}

TEST(Bgp, DeterministicTieBreakLowestAsn) {
  // Both 10 and 20 are customers of 100 and providers of 900.
  HandTopo h;
  h.add_as(100, "X", AsType::kTransit, {0});
  h.add_as(20, "C2", AsType::kTransit, {0});
  h.add_as(10, "C1", AsType::kTransit, {0});
  h.add_as(900, "Dst", AsType::kEnterprise, {0});
  h.connect(10, 100, RelType::kCustomer, {0});
  h.connect(20, 100, RelType::kCustomer, {0});
  h.connect(900, 10, RelType::kCustomer, {0});
  h.connect(900, 20, RelType::kCustomer, {0});
  BgpRouting bgp(h.topo());
  auto p = bgp.as_path(100, 900);
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p[1], 10u);
}

TEST(Bgp, ValleyFreeChecker) {
  HandTopo h;
  h.add_as(1, "A", AsType::kAccess, {0});
  h.add_as(2, "B", AsType::kTransit, {0});
  h.add_as(3, "C", AsType::kAccess, {0});
  h.connect(1, 2, RelType::kCustomer, {0});
  h.connect(3, 2, RelType::kCustomer, {0});
  // up then down: fine
  EXPECT_TRUE(is_valley_free(h.topo(), {1, 2, 3}));
  // down then up: valley
  EXPECT_FALSE(is_valley_free(h.topo(), {2, 1, 2}));
  // non-adjacent hop
  EXPECT_FALSE(is_valley_free(h.topo(), {1, 3}));
}

// Property test over generated worlds: all produced paths are valley-free
// and loop-free.
class BgpWorldProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BgpWorldProperty, PathsAreValleyFreeAndLoopFree) {
  gen::GeneratorConfig cfg = gen::GeneratorConfig::tiny();
  cfg.seed = GetParam();
  gen::World world = gen::generate_world(cfg);
  BgpRouting bgp(*world.topo);
  auto asns = world.topo->all_asns();
  util::Rng rng(GetParam() * 11 + 1);
  int checked = 0;
  for (int i = 0; i < 400; ++i) {
    topo::Asn s = asns[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(asns.size()) - 1))];
    topo::Asn d = asns[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(asns.size()) - 1))];
    auto p = bgp.as_path(s, d);
    if (p.empty()) continue;
    ++checked;
    EXPECT_TRUE(is_valley_free(*world.topo, p))
        << "path from " << s << " to " << d;
    std::set<topo::Asn> seen(p.begin(), p.end());
    EXPECT_EQ(seen.size(), p.size()) << "loop in path";
    EXPECT_EQ(p.front(), s);
    EXPECT_EQ(p.back(), d);
  }
  EXPECT_GT(checked, 100);  // most pairs should be reachable
}

INSTANTIATE_TEST_SUITE_P(Seeds, BgpWorldProperty,
                         ::testing::Values(1u, 2u, 3u));

TEST(Bgp, TransitCustomersReachableFromEverywhere) {
  const gen::World& world = test::tiny_world();
  BgpRouting bgp(*world.topo);
  // Every client's AS must be reachable from every M-Lab server's AS.
  for (std::uint32_t s : world.mlab_servers) {
    for (int i = 0; i < 10; ++i) {
      std::uint32_t c = world.clients[static_cast<std::size_t>(i) %
                                      world.clients.size()];
      EXPECT_TRUE(bgp.reachable(world.topo->host(s).asn,
                                world.topo->host(c).asn));
    }
  }
}

}  // namespace
}  // namespace netcong::route
