#pragma once

// Shared scaffolding for the experiment benches: a generated world with the
// full measurement/inference stack on top, output helpers that print each
// artifact with its paper-reported counterpart, and a timing harness that
// wraps artifacts in wall-clock + cache-stat instrumentation and emits a
// machine-readable BENCH_<label>.json so successive PRs have a perf
// trajectory.

#include <chrono>
#include <map>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/coverage.h"
#include "gen/workload.h"
#include "gen/world.h"
#include "infer/alias.h"
#include "infer/bdrmap.h"
#include "infer/datasets.h"
#include "infer/mapit.h"
#include "measure/matching.h"
#include "measure/ndt.h"
#include "measure/platform.h"
#include "route/bgp.h"
#include "route/forwarding.h"
#include "route/path_cache.h"
#include "sim/throughput.h"

namespace netcong::bench {

// Experiment scale: benches default to a paper-scale world; set
// NETCONG_BENCH_SCALE=small in the environment for a quick run.
gen::GeneratorConfig bench_config();

struct Context {
  explicit Context(const gen::GeneratorConfig& cfg);

  gen::World world;
  route::BgpRouting bgp;
  route::Forwarder fwd;
  // Shared router-path memo: campaigns attached to it skip rebuilding
  // hot-potato/ECMP paths for repeated (server, client) pairs.
  route::PathCache path_cache;
  sim::ThroughputModel model;
  infer::Ip2As ip2as;
  infer::OrgMap orgs;
  std::map<topo::Asn, std::string> isp_of;  // client ASN -> ISP name

  measure::Platform mlab_platform() const;
  measure::Platform speedtest_platform(bool snapshot_2017 = true) const;
};

// A standard month-long crowdsourced NDT campaign with matching and MAP-IT,
// used by Fig 1 / Table 2 / Fig 5 / Section 6 benches.
struct CampaignData {
  measure::CampaignResult result;
  std::vector<measure::MatchedTest> matched;
  measure::MatchStats match_stats;
  infer::MapItResult mapit;
};
CampaignData run_standard_campaign(Context& ctx, int days,
                                   double tests_per_client,
                                   std::uint64_t seed);

// Per-VP coverage analysis (Figures 2-4 and Section 5.4): bdrmap discovery
// plus targeted campaigns toward M-Lab servers, Speedtest servers (chosen
// snapshot) and Alexa-style content targets.
std::vector<core::VpCoverage> run_coverage(Context& ctx, bool snapshot_2017,
                                           std::uint64_t seed);

// Output helpers.
void print_header(const std::string& artifact, const std::string& title);
void print_footnote(const std::string& text);
std::string pct(double value, int decimals = 1);

// Peak resident set size of this process so far, in MiB (getrusage
// ru_maxrss). Monotone over the process lifetime — sample it right after
// the phase whose footprint you want to attribute.
double peak_rss_mb();

// --- Timing harness -------------------------------------------------------

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  void reset() { start_ = std::chrono::steady_clock::now(); }
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Collects named wall-clock measurements plus free-form numeric stats
// (cache hit rates, thread counts, sizes) and writes them as
// BENCH_<label>.json in the working directory.
class BenchRecorder {
 public:
  explicit BenchRecorder(std::string label) : label_(std::move(label)) {}

  // Times fn() and records the duration under `name`; returns fn's result.
  template <typename Fn>
  auto time(const std::string& name, Fn&& fn) {
    if constexpr (std::is_void_v<std::invoke_result_t<Fn&>>) {
      Stopwatch sw;
      fn();
      record(name, sw.elapsed_ms());
    } else {
      Stopwatch sw;
      auto result = fn();
      record(name, sw.elapsed_ms());
      return result;
    }
  }

  void record(const std::string& name, double wall_ms);
  void stat(const std::string& name, const std::string& key, double value);

  // Writes BENCH_<label>.json and prints its path.
  void write() const;

 private:
  struct Entry {
    std::string name;
    double wall_ms = 0.0;
    std::vector<std::pair<std::string, double>> stats;
  };
  Entry& entry(const std::string& name);

  std::string label_;
  std::vector<Entry> entries_;
};

}  // namespace netcong::bench
