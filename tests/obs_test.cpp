// The observability subsystem: metric semantics, lock-free multi-threaded
// exactness, thread-exit retention, snapshot/JSON shape, trace rings, and
// the load-bearing contract — an instrumented campaign is bit-identical to
// an uninstrumented one.

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "gen/workload.h"
#include "helpers.h"
#include "measure/ndt.h"
#include "measure/platform.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "route/bgp.h"
#include "route/forwarding.h"
#include "route/path_cache.h"
#include "sim/throughput.h"
#include "util/logging.h"

namespace netcong::obs {
namespace {

TEST(MetricsTest, CounterGaugeHistogramSemantics) {
  MetricsRegistry reg;
  reg.set_enabled(true);
  Counter c = reg.counter("requests");
  Gauge g = reg.gauge("rate");
  Histogram h = reg.histogram("latency", {1.0, 10.0, 100.0});

  c.inc();
  c.inc(41);
  g.set(2.5);
  g.set(7.25);  // last write wins
  h.observe(0.5);    // bin 0 (<= 1)
  h.observe(10.0);   // bin 1 (<= 10, inclusive upper bound)
  h.observe(99.0);   // bin 2
  h.observe(1e6);    // overflow bin

  MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("requests"), 42u);
  EXPECT_DOUBLE_EQ(snap.gauge("rate"), 7.25);
  const HistogramValue* hv = snap.histogram("latency");
  ASSERT_NE(hv, nullptr);
  ASSERT_EQ(hv->bounds.size(), 3u);
  ASSERT_EQ(hv->counts.size(), 4u);
  EXPECT_EQ(hv->counts[0], 1u);
  EXPECT_EQ(hv->counts[1], 1u);
  EXPECT_EQ(hv->counts[2], 1u);
  EXPECT_EQ(hv->counts[3], 1u);
  EXPECT_EQ(hv->count, 4u);
  EXPECT_DOUBLE_EQ(hv->sum, 0.5 + 10.0 + 99.0 + 1e6);

  // Absent names fall back to zero values.
  EXPECT_EQ(snap.counter("no-such"), 0u);
  EXPECT_DOUBLE_EQ(snap.gauge("no-such"), 0.0);
  EXPECT_EQ(snap.histogram("no-such"), nullptr);
}

TEST(MetricsTest, DisabledRegistryIsInertAndFlippingKeepsCounts) {
  MetricsRegistry reg;  // disabled by default
  Counter c = reg.counter("n");
  c.inc(5);
  EXPECT_EQ(reg.snapshot().counter("n"), 0u);

  reg.set_enabled(true);
  c.inc(3);
  reg.set_enabled(false);
  c.inc(100);  // dropped again
  reg.set_enabled(true);
  c.inc(4);
  EXPECT_EQ(reg.snapshot().counter("n"), 7u);
}

TEST(MetricsTest, RegistrationIsIdempotent) {
  MetricsRegistry reg;
  reg.set_enabled(true);
  Counter a = reg.counter("same");
  Counter b = reg.counter("same");
  a.inc(2);
  b.inc(3);
  MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counter("same"), 5u);

  // Re-registering a histogram with different bounds keeps the original.
  Histogram h1 = reg.histogram("h", {1.0, 2.0});
  Histogram h2 = reg.histogram("h", {5.0, 50.0, 500.0});
  h1.observe(1.5);
  h2.observe(1.5);
  MetricsSnapshot snap2 = reg.snapshot();
  const HistogramValue* hv = snap2.histogram("h");
  ASSERT_NE(hv, nullptr);
  EXPECT_EQ(hv->bounds, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(hv->count, 2u);
}

TEST(MetricsTest, MultiThreadedCountsAreExact) {
  MetricsRegistry reg;
  reg.set_enabled(true);
  Counter c = reg.counter("hits");
  Histogram h = reg.histogram("v", {10.0, 20.0});
  constexpr int kThreads = 8;
  constexpr int kIncs = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kIncs; ++i) {
        c.inc();
        h.observe(static_cast<double>(t));
      }
    });
  }
  for (auto& w : workers) w.join();

  // Every increment from every (now exited) thread must be retained: the
  // per-thread slabs fold into the registry on thread exit.
  MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("hits"),
            static_cast<std::uint64_t>(kThreads) * kIncs);
  const HistogramValue* hv = snap.histogram("v");
  ASSERT_NE(hv, nullptr);
  EXPECT_EQ(hv->count, static_cast<std::uint64_t>(kThreads) * kIncs);
}

TEST(MetricsTest, SnapshotIsNameSortedAndJsonShaped) {
  MetricsRegistry reg;
  reg.set_enabled(true);
  reg.counter("zeta").inc();
  reg.counter("alpha").inc(2);
  reg.gauge("mid").set(1.5);
  reg.histogram("hist", {1.0}).observe(0.5);

  MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "alpha");
  EXPECT_EQ(snap.counters[1].first, "zeta");

  std::string json = snap.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"alpha\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"bounds\""), std::string::npos);
  // "alpha" sorts before "zeta" in the serialized document too.
  EXPECT_LT(json.find("\"alpha\""), json.find("\"zeta\""));
}

TEST(MetricsTest, ResetZeroesButKeepsRegistrations) {
  MetricsRegistry reg;
  reg.set_enabled(true);
  Counter c = reg.counter("n");
  Gauge g = reg.gauge("g");
  Histogram h = reg.histogram("h", {1.0});
  c.inc(9);
  g.set(3.0);
  h.observe(0.5);
  reg.reset();

  MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("n"), 0u);
  EXPECT_DOUBLE_EQ(snap.gauge("g"), 0.0);
  ASSERT_NE(snap.histogram("h"), nullptr);
  EXPECT_EQ(snap.histogram("h")->count, 0u);

  // Handles issued before the reset still work.
  c.inc(2);
  EXPECT_EQ(reg.snapshot().counter("n"), 2u);
}

TEST(MetricsTest, RegistrationPastCapacityReturnsInertHandles) {
  MetricsRegistry reg;
  reg.set_enabled(true);
  std::vector<Counter> handles;
  for (std::size_t i = 0; i < kMaxCounters + 5; ++i) {
    handles.push_back(reg.counter("c" + std::to_string(i)));
  }
  for (Counter& c : handles) c.inc();  // the overflow handles must not crash
  MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.size(), kMaxCounters);
  EXPECT_EQ(snap.counter("c0"), 1u);
}

TEST(MetricsTest, ExpBounds) {
  std::vector<double> b = exp_bounds(1.0, 1000.0, 3);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_DOUBLE_EQ(b.front(), 1.0);
  EXPECT_DOUBLE_EQ(b.back(), 1000.0);
  EXPECT_TRUE(std::is_sorted(b.begin(), b.end()));
}

TEST(TraceTest, SpanRecordsCompleteEvent) {
  TraceRecorder& rec = TraceRecorder::global();
  rec.clear();
  rec.set_enabled(true);
  {
    Span span("obs_test.span");
    Span inner("obs_test.inner");
  }
  rec.set_enabled(false);

  std::vector<TraceEvent> events = rec.collect();
  auto named = [&](const char* name) {
    return std::count_if(events.begin(), events.end(), [&](const TraceEvent& e) {
      return std::string(e.name) == name;
    });
  };
  EXPECT_EQ(named("obs_test.span"), 1);
  EXPECT_EQ(named("obs_test.inner"), 1);
  for (const TraceEvent& e : events) {
    EXPECT_GE(e.ts_us, 0.0);
    EXPECT_GE(e.dur_us, 0.0);
    EXPECT_GT(e.tid, 0u);
  }
  rec.clear();
}

TEST(TraceTest, DisabledSpanRecordsNothing) {
  TraceRecorder& rec = TraceRecorder::global();
  rec.clear();
  ASSERT_FALSE(rec.enabled());
  { Span span("obs_test.disabled"); }
  EXPECT_TRUE(rec.collect().empty());
}

TEST(TraceTest, RingOverflowDropsOldestAndCounts) {
  TraceRecorder rec;
  rec.set_enabled(true);
  const std::size_t total = kTraceRingCapacity + 100;
  for (std::size_t i = 0; i < total; ++i) {
    rec.record("e", static_cast<double>(i), 1.0);
  }
  std::vector<TraceEvent> events = rec.collect();
  EXPECT_EQ(events.size(), kTraceRingCapacity);
  EXPECT_EQ(rec.dropped(), 100u);
  // The survivors are the most recent events, still sorted by timestamp.
  EXPECT_DOUBLE_EQ(events.front().ts_us, 100.0);
  EXPECT_DOUBLE_EQ(events.back().ts_us, static_cast<double>(total - 1));

  rec.clear();
  EXPECT_TRUE(rec.collect().empty());
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(TraceTest, ChromeJsonShape) {
  TraceRecorder rec;
  rec.set_enabled(true);
  rec.record("phase_a", 10.0, 5.0);
  std::string json = rec.to_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"phase_a\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\""), std::string::npos);
}

TEST(ObsTest, HookLoggingCountsEmittedLines) {
  hook_logging();
  MetricsRegistry& reg = MetricsRegistry::global();
  bool was_enabled = reg.enabled();
  reg.set_enabled(true);
  std::uint64_t before = reg.snapshot().counter("log.lines.warn");
  NETCONG_WARN << "obs_test: counted warning (expected in test output)";
  std::uint64_t after = reg.snapshot().counter("log.lines.warn");
  reg.set_enabled(was_enabled);
  EXPECT_EQ(after, before + 1);
}

// --- the load-bearing contract -------------------------------------------

struct Stack {
  explicit Stack(const gen::World& w)
      : world(w),
        bgp(*w.topo),
        fwd(*w.topo, bgp),
        model(*w.topo, *w.traffic),
        mlab("mlab", *w.topo, w.mlab_servers) {}
  const gen::World& world;
  route::BgpRouting bgp;
  route::Forwarder fwd;
  sim::ThroughputModel model;
  measure::Platform mlab;
};

measure::CampaignResult run_campaign(bool instrumented) {
  static Stack s(test::tiny_world());
  std::vector<gen::TestRequest> schedule;
  for (int round = 0; round < 3; ++round) {
    for (std::size_t i = 0; i < s.world.clients.size(); ++i) {
      schedule.push_back(
          {s.world.clients[i],
           12.0 + round * 0.08 + static_cast<double>(i) * 0.004});
    }
  }
  MetricsRegistry::global().set_enabled(instrumented);
  TraceRecorder::global().set_enabled(instrumented);
  measure::NdtCampaign campaign(s.world, s.fwd, s.model, s.mlab,
                                measure::CampaignConfig{});
  route::PathCache cache(s.fwd, 16, 64);  // tiny capacity: force evictions
  campaign.set_path_cache(&cache);
  util::Rng rng(2017);
  auto result = campaign.run(schedule, rng);
  MetricsRegistry::global().set_enabled(false);
  TraceRecorder::global().set_enabled(false);
  return result;
}

TEST(ObsTest, InstrumentedCampaignIsBitIdentical) {
  TraceRecorder::global().clear();
  measure::CampaignResult plain = run_campaign(false);
  measure::CampaignResult instrumented = run_campaign(true);

  ASSERT_EQ(plain.tests.size(), instrumented.tests.size());
  for (std::size_t i = 0; i < plain.tests.size(); ++i) {
    const measure::NdtRecord& x = plain.tests[i];
    const measure::NdtRecord& y = instrumented.tests[i];
    EXPECT_EQ(x.test_id, y.test_id);
    EXPECT_EQ(x.client, y.client);
    EXPECT_EQ(x.server, y.server);
    EXPECT_DOUBLE_EQ(x.utc_time_hours, y.utc_time_hours);
    EXPECT_DOUBLE_EQ(x.download_mbps, y.download_mbps);
    EXPECT_DOUBLE_EQ(x.upload_mbps, y.upload_mbps);
    EXPECT_DOUBLE_EQ(x.flow_rtt_ms, y.flow_rtt_ms);
    EXPECT_EQ(x.status, y.status);
  }
  ASSERT_EQ(plain.traceroutes.size(), instrumented.traceroutes.size());
  for (std::size_t i = 0; i < plain.traceroutes.size(); ++i) {
    const measure::TracerouteRecord& x = plain.traceroutes[i];
    const measure::TracerouteRecord& y = instrumented.traceroutes[i];
    EXPECT_EQ(x.src_host, y.src_host);
    EXPECT_EQ(x.dst, y.dst);
    ASSERT_EQ(x.hops.size(), y.hops.size());
    for (std::size_t h = 0; h < x.hops.size(); ++h) {
      EXPECT_EQ(x.hops[h].responded, y.hops[h].responded);
      EXPECT_EQ(x.hops[h].addr, y.hops[h].addr);
      EXPECT_DOUBLE_EQ(x.hops[h].rtt_ms, y.hops[h].rtt_ms);
    }
  }
  EXPECT_EQ(plain.quality, instrumented.quality);

  // The instrumented run actually measured things.
  MetricsSnapshot snap = MetricsRegistry::global().snapshot();
  EXPECT_GE(snap.counter("campaign.runs"), 1u);
  EXPECT_GT(snap.counter("campaign.tests_attempted"), 0u);
  EXPECT_GT(snap.counter("traceroute.runs"), 0u);
  EXPECT_GT(snap.counter("path_cache.misses"), 0u);
  const HistogramValue* dl = snap.histogram("campaign.download_mbps");
  ASSERT_NE(dl, nullptr);
  EXPECT_GT(dl->count, 0u);

  // And the campaign phases produced spans.
  std::vector<TraceEvent> events = TraceRecorder::global().collect();
  auto has = [&](const char* name) {
    return std::any_of(events.begin(), events.end(), [&](const TraceEvent& e) {
      return std::string(e.name) == name;
    });
  };
  EXPECT_TRUE(has("campaign.run"));
  EXPECT_TRUE(has("campaign.plan"));
  EXPECT_TRUE(has("campaign.simulate"));
  TraceRecorder::global().clear();
}

}  // namespace
}  // namespace netcong::obs
