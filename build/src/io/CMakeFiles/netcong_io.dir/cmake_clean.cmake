file(REMOVE_RECURSE
  "CMakeFiles/netcong_io.dir/export.cpp.o"
  "CMakeFiles/netcong_io.dir/export.cpp.o.d"
  "libnetcong_io.a"
  "libnetcong_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netcong_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
