#include "serve/ndt_stats.h"

#include "measure/fingerprint.h"

namespace netcong::serve {

const std::vector<double>& NdtStreamStats::download_bounds() {
  // Service-tier edges from the paper's era: dial-up-ish, DSL, cable tiers,
  // fiber. Bin membership is an exact double comparison, so classification
  // is deterministic regardless of which shard sees the record.
  static const std::vector<double> kBounds = {1.0,  5.0,   10.0,  25.0,
                                              50.0, 100.0, 250.0, 500.0};
  return kBounds;
}

NdtStreamStats::NdtStreamStats()
    : download_bins_(download_bounds().size() + 1, 0) {}

void NdtStreamStats::add(const measure::NdtRecord& test) {
  ++tests_;
  ++by_status_[static_cast<std::size_t>(test.status)];
  if (test.truncated) ++truncated_;
  if (!test.has_webstats) ++missing_webstats_;
  if (test.completed()) {
    const auto& bounds = download_bounds();
    std::size_t bin = bounds.size();  // +inf bin unless a bound catches it
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      if (test.download_mbps <= bounds[i]) {
        bin = i;
        break;
      }
    }
    ++download_bins_[bin];
  }
}

void NdtStreamStats::merge(const NdtStreamStats& other) {
  tests_ += other.tests_;
  for (std::size_t i = 0; i < by_status_.size(); ++i) {
    by_status_[i] += other.by_status_[i];
  }
  truncated_ += other.truncated_;
  missing_webstats_ += other.missing_webstats_;
  for (std::size_t i = 0; i < download_bins_.size(); ++i) {
    download_bins_[i] += other.download_bins_[i];
  }
}

void NdtStreamStats::mix_into(measure::Fingerprint& fp) const {
  fp.mix(tests_);
  for (std::uint64_t n : by_status_) fp.mix(n);
  fp.mix(truncated_);
  fp.mix(missing_webstats_);
  for (std::uint64_t n : download_bins_) fp.mix(n);
}

}  // namespace netcong::serve
