#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <random>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/csv.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"

namespace netcong::util {
namespace {

TEST(LazyMt64, MatchesStdMt19937_64) {
  // The whole point of LazyMt64 is bit-exact std::mt19937_64 output with
  // lazy state construction. Sweep seeds and draw counts that cross every
  // boundary of the lazy machinery: within the seed-init block, the block
  // edge at 312, the second twist generation, and deep streams.
  const std::uint64_t seeds[] = {0, 1, 42, 5489, 0x9e3779b97f4a7c15ull,
                                 ~std::uint64_t{0}};
  const std::size_t draws[] = {1, 2, 155, 156, 157, 311, 312, 313, 1000};
  for (std::uint64_t seed : seeds) {
    for (std::size_t n : draws) {
      LazyMt64 lazy(seed);
      std::mt19937_64 ref(seed);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(lazy(), ref()) << "seed=" << seed << " draw " << i;
      }
    }
  }
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000000), b.uniform_int(0, 1000000));
  }
}

TEST(Rng, ForkIsIndependentOfDrawCount) {
  Rng a(42);
  Rng b(42);
  // Draw from one generator before forking: forks must still agree because
  // fork depends on seed + label only.
  for (int i = 0; i < 17; ++i) a.uniform(0, 1);
  Rng fa = a.fork("x");
  Rng fb = b.fork("x");
  EXPECT_EQ(fa.uniform_int(0, 1 << 30), fb.uniform_int(0, 1 << 30));
}

TEST(Rng, ForkLabelsDiffer) {
  Rng a(42);
  EXPECT_NE(a.fork("x").seed(), a.fork("y").seed());
}

TEST(Rng, UniformIntBounds) {
  Rng r(1);
  for (int i = 0; i < 1000; ++i) {
    auto v = r.uniform_int(-3, 7);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 7);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng r(1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, WeightedIndexRespectsZeros) {
  Rng r(1);
  std::vector<double> w = {0.0, 1.0, 0.0};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(r.weighted_index(w), 1u);
  }
}

TEST(Rng, WeightedIndexProportions) {
  Rng r(5);
  std::vector<double> w = {1.0, 3.0};
  int counts[2] = {0, 0};
  for (int i = 0; i < 10000; ++i) counts[r.weighted_index(w)]++;
  double frac = static_cast<double>(counts[1]) / 10000.0;
  EXPECT_NEAR(frac, 0.75, 0.03);
}

TEST(Rng, ParetoHeavyTail) {
  Rng r(3);
  double max_seen = 0;
  for (int i = 0; i < 20000; ++i) max_seen = std::max(max_seen, r.pareto(1.0, 1.5));
  EXPECT_GT(max_seen, 20.0);  // heavy tail produces large outliers
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(9);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  r.shuffle(v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(Fnv1a, StableKnownValue) {
  // FNV-1a of empty string is the offset basis.
  EXPECT_EQ(fnv1a(""), 14695981039346656037ull);
  EXPECT_NE(fnv1a("a"), fnv1a("b"));
}

TEST(Strings, SplitBasic) {
  auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Strings, SplitEmpty) {
  auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Strings, JoinRoundTrip) {
  std::vector<std::string> v = {"x", "y", "z"};
  EXPECT_EQ(join(v, "."), "x.y.z");
  EXPECT_EQ(join({}, "."), "");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("level3.net", "level3"));
  EXPECT_FALSE(starts_with("x", "xy"));
  EXPECT_TRUE(ends_with("level3.net", ".net"));
  EXPECT_FALSE(ends_with("net", "xnet"));
}

TEST(Strings, Format) {
  EXPECT_EQ(format("%d-%s", 7, "x"), "7-x");
}

TEST(Strings, FormatCompact) {
  EXPECT_EQ(format_compact(1.50), "1.5");
  EXPECT_EQ(format_compact(2.00), "2");
  EXPECT_EQ(format_compact(0.25, 2), "0.25");
}

TEST(Strings, WithThousands) {
  EXPECT_EQ(with_thousands(0), "0");
  EXPECT_EQ(with_thousands(1234567), "1,234,567");
  EXPECT_EQ(with_thousands(-9876), "-9,876");
}

TEST(Table, RendersAligned) {
  TextTable t({"name", "count"});
  t.add_row({"a", "1"});
  t.add_row({"bbbb", "22"});
  std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("bbbb"), std::string::npos);
  // Header rule line exists.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, PadsShortRows) {
  TextTable t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_NO_THROW(t.render());
}

TEST(Csv, EscapesSpecials) {
  CsvWriter w({"a", "b"});
  w.add_row({"x,y", "he said \"hi\""});
  std::string out = w.render();
  EXPECT_NE(out.find("\"x,y\""), std::string::npos);
  EXPECT_NE(out.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(Csv, HeaderFirst) {
  CsvWriter w({"h1", "h2"});
  w.add_row({"1", "2"});
  EXPECT_EQ(w.render().substr(0, 5), "h1,h2");
}

TEST(Rng, NumberedForkMatchesAcrossDrawCounts) {
  Rng a(42), b(42);
  for (int i = 0; i < 9; ++i) a.uniform(0, 1);
  Rng fa = a.fork(std::uint64_t{17});
  Rng fb = b.fork(std::uint64_t{17});
  EXPECT_EQ(fa.seed(), fb.seed());
  EXPECT_EQ(fa.uniform_int(0, 1 << 30), fb.uniform_int(0, 1 << 30));
}

TEST(Rng, NumberedForkStreamsAreDistinct) {
  Rng a(42);
  std::set<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 100; ++s) seeds.insert(a.fork(s).seed());
  EXPECT_EQ(seeds.size(), 100u);
  // Distinct from the parent and from string-labeled forks.
  EXPECT_NE(a.fork(std::uint64_t{0}).seed(), a.seed());
  EXPECT_NE(a.fork(std::uint64_t{0}).seed(), a.fork("0").seed());
}

TEST(Parallel, DefaultThreadCountPositive) {
  EXPECT_GE(default_thread_count(), 1);
}

TEST(Parallel, ForCoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    std::vector<std::atomic<int>> counts(1000);
    for (auto& c : counts) c.store(0);
    parallel_for(counts.size(), threads,
                 [&](std::size_t i) { counts[i].fetch_add(1); });
    for (std::size_t i = 0; i < counts.size(); ++i) {
      ASSERT_EQ(counts[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(Parallel, ForHandlesEmptyAndTinyRanges) {
  int calls = 0;
  parallel_for(0, 4, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(1, 4, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(Parallel, ForPropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(64, 4,
                   [](std::size_t i) {
                     if (i == 13) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(Parallel, ForAggregatesAllWorkerExceptions) {
  // Failures on multiple shards must all be reported, not just the first
  // one a worker happened to capture. Indices 3 and 997 land on different
  // shards for any small thread count.
  for (int threads : {2, 8}) {
    SCOPED_TRACE(threads);
    std::atomic<int> ran{0};
    try {
      parallel_for(1000, threads, [&](std::size_t i) {
        if (i == 3) throw std::runtime_error("shard-low");
        if (i == 997) throw std::invalid_argument("shard-high");
        ran.fetch_add(1);
      });
      FAIL() << "expected ParallelError";
    } catch (const ParallelError& e) {
      ASSERT_EQ(e.messages().size(), 2u);
      std::string all = e.messages()[0] + "|" + e.messages()[1];
      EXPECT_NE(all.find("shard-low"), std::string::npos);
      EXPECT_NE(all.find("shard-high"), std::string::npos);
    }
    // A throwing iteration never cancels the rest of the range.
    EXPECT_EQ(ran.load(), 998);
  }
}

TEST(Parallel, InlinePathAggregatesAllExceptions) {
  int ran = 0;
  try {
    parallel_for(10, 1, [&](std::size_t i) {
      if (i == 2 || i == 7) throw std::runtime_error("inline-boom");
      ++ran;
    });
    FAIL() << "expected ParallelError";
  } catch (const ParallelError& e) {
    EXPECT_EQ(e.messages().size(), 2u);
  }
  EXPECT_EQ(ran, 8);
}

TEST(Parallel, SingleExceptionRethrownUnchanged) {
  EXPECT_THROW(parallel_for(64, 1,
                            [](std::size_t i) {
                              if (i == 13) throw std::invalid_argument("only");
                            }),
               std::invalid_argument);
}

TEST(Parallel, NestedForRunsInline) {
  std::atomic<int> total{0};
  parallel_for(4, 4, [&](std::size_t) {
    // A nested call from a pool worker must not deadlock the shared pool.
    parallel_for(8, 4, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(Parallel, ThreadPoolRunsSubmittedTasks) {
  ThreadPool pool(3);
  EXPECT_GE(pool.size(), 3);
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i) pool.submit([&] { done.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(done.load(), 20);
}

TEST(Result, SuccessCarriesValue) {
  Result<int> r = Result<int>::success(7);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.error().empty());
}

TEST(Result, FailureCarriesError) {
  Result<std::string> r = Result<std::string>::failure("bad input");
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(static_cast<bool>(r));
  EXPECT_EQ(r.error(), "bad input");
}

TEST(Result, ArrowOperatorReachesMembers) {
  Result<std::string> r = Result<std::string>::success("abc");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 3u);
}

TEST(Result, StatusHelpers) {
  Status good = ok_status();
  EXPECT_TRUE(good.ok());
  Status bad = error_status("disk full");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), "disk full");
}

TEST(Csv, ParseRoundTripsQuotingCommasAndNewlines) {
  CsvWriter w({"name", "note"});
  w.add_row({"plain", "x"});
  w.add_row({"comma,field", "quote \"inside\""});
  w.add_row({"multi\nline", "crlf\r\nline"});
  w.add_row({"", "trailing empty then this"});

  auto rows = parse_csv(w.render());
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"name", "note"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"plain", "x"}));
  EXPECT_EQ(rows[2], (std::vector<std::string>{"comma,field", "quote \"inside\""}));
  EXPECT_EQ(rows[3], (std::vector<std::string>{"multi\nline", "crlf\r\nline"}));
  EXPECT_EQ(rows[4], (std::vector<std::string>{"", "trailing empty then this"}));
}

TEST(Csv, ParseHandlesCrlfRowsAndTrailingNewline) {
  auto rows = parse_csv("a,b\r\n1,\"2,2\"\r\n");
  ASSERT_EQ(rows.size(), 2u);  // the trailing newline adds no empty row
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2,2"}));

  // Doubled quotes collapse; a lone final field without newline still lands.
  auto rows2 = parse_csv("\"he said \"\"hi\"\"\",tail");
  ASSERT_EQ(rows2.size(), 1u);
  EXPECT_EQ(rows2[0], (std::vector<std::string>{"he said \"hi\"", "tail"}));

  EXPECT_TRUE(parse_csv("").empty());
}

TEST(Logging, SinkReceivesFormattedFilteredLines) {
  std::vector<std::pair<LogLevel, std::string>> seen;
  set_log_sink([&](LogLevel level, const std::string& line) {
    seen.emplace_back(level, line);
  });
  LogLevel prev = log_level();
  set_log_level(LogLevel::kInfo);
  NETCONG_DEBUG << "dropped below threshold";
  NETCONG_WARN << "captured message";
  set_log_level(prev);
  set_log_sink({});  // restore the default stderr sink

  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].first, LogLevel::kWarn);
  const std::string& line = seen[0].second;
  // "[<ISO-8601 UTC>] [WARN] captured message"
  ASSERT_GE(line.size(), 2u);
  EXPECT_EQ(line.front(), '[');
  EXPECT_NE(line.find("Z] [WARN] captured message"), std::string::npos);
  EXPECT_EQ(line.find('\n'), std::string::npos);
}

TEST(Logging, EnvOverrideReload) {
  LogLevel prev = log_level();
  ASSERT_EQ(setenv("NETCONG_LOG_LEVEL", "error", 1), 0);
  reload_log_level_from_env();
  EXPECT_EQ(log_level(), LogLevel::kError);
  ASSERT_EQ(setenv("NETCONG_LOG_LEVEL", "debug", 1), 0);
  reload_log_level_from_env();
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  unsetenv("NETCONG_LOG_LEVEL");
  reload_log_level_from_env();  // no-op when unset
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(prev);
}

TEST(Logging, ConcurrentLoggersNeverInterleaveLines) {
  // Redirect stderr to a temp file and hammer the *default* sink from many
  // threads: every captured line must be one complete log line.
  std::FILE* capture = std::tmpfile();
  ASSERT_NE(capture, nullptr);
  std::fflush(stderr);
  int saved_fd = dup(fileno(stderr));
  ASSERT_GE(saved_fd, 0);
  ASSERT_GE(dup2(fileno(capture), fileno(stderr)), 0);

  LogLevel prev = log_level();
  set_log_level(LogLevel::kInfo);
  constexpr int kThreads = 8;
  constexpr int kLines = 200;
  const std::string payload(40, 'x');
  {
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        for (int i = 0; i < kLines; ++i) {
          NETCONG_WARN << "t" << t << "-i" << i << " " << payload;
        }
      });
    }
    for (auto& w : workers) w.join();
  }
  set_log_level(prev);

  std::fflush(stderr);
  dup2(saved_fd, fileno(stderr));
  close(saved_fd);

  std::fseek(capture, 0, SEEK_SET);
  std::string contents;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, capture)) > 0) {
    contents.append(buf, n);
  }
  std::fclose(capture);

  std::size_t lines = 0;
  std::size_t start = 0;
  while (start < contents.size()) {
    std::size_t end = contents.find('\n', start);
    ASSERT_NE(end, std::string::npos) << "truncated final line";
    std::string line = contents.substr(start, end - start);
    start = end + 1;
    ++lines;
    // A complete line: one timestamp prefix, one level tag, one payload.
    EXPECT_EQ(line.front(), '[') << line;
    EXPECT_NE(line.find("] [WARN] t"), std::string::npos) << line;
    EXPECT_TRUE(line.size() >= payload.size() &&
                line.compare(line.size() - payload.size(), payload.size(),
                             payload) == 0)
        << line;
    EXPECT_EQ(line.find("] [WARN] t", line.find("] [WARN] t") + 1),
              std::string::npos)
        << "two messages fused into one line: " << line;
  }
  EXPECT_EQ(lines, static_cast<std::size_t>(kThreads) * kLines);
}

TEST(Json, EscapesRfc8259MandatoryCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(json_escape(std::string("a\x01z", 3)), "a\\u0001z");
  EXPECT_EQ(json_escape(std::string("nul\0!", 5)), "nul\\u0000!");
  EXPECT_EQ(json_quote("x"), "\"x\"");
}

TEST(Json, NonAsciiBecomesPureAsciiEscapes) {
  // U+00E9 (é), U+4E2D (中), and an astral codepoint (U+1F600) as a
  // surrogate pair — output must be 7-bit clean.
  EXPECT_EQ(json_escape("caf\xc3\xa9"), "caf\\u00e9");
  EXPECT_EQ(json_escape("\xe4\xb8\xad"), "\\u4e2d");
  EXPECT_EQ(json_escape("\xf0\x9f\x98\x80"), "\\ud83d\\ude00");
  for (char c : json_escape("caf\xc3\xa9 \xf0\x9f\x98\x80")) {
    EXPECT_LT(static_cast<unsigned char>(c), 0x80);
  }
}

TEST(Json, InvalidUtf8BecomesReplacementCharacter) {
  // Lone continuation byte and truncated sequence both map to U+FFFD
  // instead of producing an unparseable document.
  EXPECT_EQ(json_escape(std::string("a\x80z", 3)), "a\\ufffdz");
  EXPECT_EQ(json_escape(std::string("a\xc3", 2)), "a\\ufffd");
}

TEST(Json, RoundTripsArbitraryStrings) {
  std::vector<std::string> cases = {
      "",
      "plain ascii",
      "quotes \" and \\ backslashes",
      "ctrl \x01\x02\x1f and \n\r\t",
      "caf\xc3\xa9 \xe4\xb8\xad \xf0\x9f\x98\x80",
      std::string("embedded\0nul", 12),
  };
  for (const std::string& s : cases) {
    auto back = json_unescape(json_escape(s));
    ASSERT_TRUE(back.has_value()) << json_escape(s);
    EXPECT_EQ(*back, s);
  }
  // Fuzz-ish: random byte strings (including invalid UTF-8) must escape to
  // something unescapable; valid-UTF-8 inputs must round-trip exactly.
  Rng rng(77);
  for (int i = 0; i < 200; ++i) {
    std::string s;
    int n = static_cast<int>(rng.uniform_int(0, 32));
    for (int j = 0; j < n; ++j) {
      s.push_back(static_cast<char>(rng.uniform_int(0, 255)));
    }
    std::string escaped = json_escape(s);
    auto back = json_unescape(escaped);
    ASSERT_TRUE(back.has_value()) << escaped;
    // Escaping is idempotent through the replacement character: escaping
    // the round-tripped string yields the same escaped form.
    EXPECT_EQ(json_escape(*back), escaped);
  }
}

TEST(Json, UnescapeRejectsMalformedInput) {
  EXPECT_FALSE(json_unescape("trailing\\").has_value());
  EXPECT_FALSE(json_unescape("\\q").has_value());
  EXPECT_FALSE(json_unescape("\\u12").has_value());
  EXPECT_FALSE(json_unescape("\\uzzzz").has_value());
  EXPECT_FALSE(json_unescape(std::string("raw\nctrl", 8)).has_value());
}

TEST(Json, NumbersAreFiniteAndRoundTrip) {
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "0");
  EXPECT_EQ(json_number(-std::numeric_limits<double>::infinity()), "0");
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "0");
  // %.17g preserves doubles exactly.
  for (double v : {0.1, 1e-300, 123456.789, -2.5e17}) {
    EXPECT_EQ(std::stod(json_number(v)), v);
  }
}

}  // namespace
}  // namespace netcong::util
