#include "infer/alias.h"

#include "util/rng.h"
#include "util/strings.h"

namespace netcong::infer {

AliasResolver::AliasResolver(const topo::Topology& topo, double success_prob,
                             std::uint64_t seed)
    : topo_(&topo), success_prob_(success_prob), seed_(seed) {}

std::uint64_t AliasResolver::group(topo::IpAddr addr) const {
  // Deterministic per-address success draw.
  std::uint64_t h = util::fnv1a(util::format("alias-%llu-%u",
                                             static_cast<unsigned long long>(seed_),
                                             addr.value));
  double draw = static_cast<double>(h % 1000000ull) / 1e6;
  auto iface = topo_->interface_by_addr(addr);
  if (iface && draw < success_prob_) {
    // Resolved: group by true router, in a distinct token space.
    return 0x8000000000000000ull | topo_->iface(*iface).router.value;
  }
  // Unresolved: singleton group keyed by the address itself.
  return addr.value;
}

}  // namespace netcong::infer
