#include "sim/diurnal.h"

#include <cmath>

namespace netcong::sim {

namespace {
constexpr double kPi = 3.14159265358979323846;

// Wraps an hour value into [0, 24).
double wrap24(double h) {
  h = std::fmod(h, 24.0);
  if (h < 0) h += 24.0;
  return h;
}
}  // namespace

double DiurnalShape::value(double local) const {
  local = wrap24(local);
  // Hours from trough to peak moving forward in time.
  double rise_span = wrap24(peak_hour - trough_hour);
  double fall_span = 24.0 - rise_span;
  double since_trough = wrap24(local - trough_hour);
  if (since_trough <= rise_span) {
    // Rising half-cosine from 0 to 1.
    double x = since_trough / rise_span;
    return 0.5 * (1.0 - std::cos(kPi * x));
  }
  // Falling half-cosine from 1 back to 0.
  double x = (since_trough - rise_span) / fall_span;
  return 0.5 * (1.0 + std::cos(kPi * x));
}

double local_hour(double utc_hour, int utc_offset_hours) {
  return wrap24(utc_hour + utc_offset_hours);
}

double test_volume_multiplier(double local) {
  // Evening-heavy double bump: main evening peak plus a smaller midday one,
  // with very few tests overnight. Calibrated so the 24h mean is ~1.
  local = wrap24(local);
  DiurnalShape evening{.trough_hour = 4.5, .peak_hour = 20.5};
  DiurnalShape midday{.trough_hour = 3.0, .peak_hour = 13.0};
  double v = 0.15 + 1.9 * evening.value(local) + 0.5 * midday.value(local);
  return v / 1.5;
}

}  // namespace netcong::sim
