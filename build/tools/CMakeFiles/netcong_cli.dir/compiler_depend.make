# Empty compiler generated dependencies file for netcong_cli.
# This may be replaced when dependencies are built.
