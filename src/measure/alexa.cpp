#include "measure/alexa.h"

#include <algorithm>
#include <unordered_map>

#include "topo/geo.h"

namespace netcong::measure {

std::vector<std::uint32_t> resolve_alexa_targets(const gen::World& world,
                                                 std::uint32_t vp) {
  const topo::Topology& topo = *world.topo;
  const topo::City& here = topo.city(topo.host(vp).city);

  // Nearest content endpoint per content AS, from this VP.
  std::unordered_map<topo::Asn, std::uint32_t> nearest;
  std::unordered_map<topo::Asn, double> nearest_dist;
  for (std::uint32_t h : world.content_hosts) {
    const topo::Host& host = topo.host(h);
    double d = topo::city_distance_km(here, topo.city(host.city));
    auto it = nearest_dist.find(host.asn);
    if (it == nearest_dist.end() || d < it->second) {
      nearest_dist[host.asn] = d;
      nearest[host.asn] = h;
    }
  }

  std::vector<std::uint32_t> out;
  for (const auto& [domain, asn] : world.alexa_domains) {
    auto it = nearest.find(asn);
    if (it != nearest.end()) out.push_back(it->second);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace netcong::measure
