// Container-level differential properties: util::FlatMap must agree with
// std::unordered_map on arbitrary operation sequences — same lookup
// results, same sizes, same surviving contents — and its iteration order
// must be a pure function of the resident key set (the canonical-layout
// guarantee the deterministic PathCache eviction rests on), regardless of
// the insert/erase history that produced it.

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "check/properties.h"
#include "util/flat_map.h"
#include "util/flat_set.h"
#include "util/pbt.h"
#include "util/strings.h"

namespace netcong::check {
namespace {

using util::format;

struct MapOp {
  enum Kind : int { kInsert = 0, kErase = 1, kFind = 2 };
  int kind = kInsert;
  std::uint64_t key = 0;
  std::uint64_t value = 0;
};

// Keys from a small range so erases hit and probe chains collide; the
// interesting behaviour (robbing, backward shift) needs collisions.
util::pbt::Domain<std::vector<MapOp>> op_sequence_domain() {
  util::pbt::Domain<MapOp> op;
  op.generate = [](util::Rng& rng) {
    MapOp o;
    o.kind = static_cast<int>(rng.uniform_int(0, 2));
    o.key = static_cast<std::uint64_t>(rng.uniform_int(0, 96));
    o.value = static_cast<std::uint64_t>(rng.uniform_int(0, 1'000'000));
    return o;
  };
  op.describe = [](const MapOp& o) {
    const char* names[] = {"insert", "erase", "find"};
    return format("%s(%llu,%llu)", names[o.kind],
                  static_cast<unsigned long long>(o.key),
                  static_cast<unsigned long long>(o.value));
  };
  auto d = util::pbt::vector_of(std::move(op), 0, 400);
  auto inner_describe = d.describe;
  d.describe = [](const std::vector<MapOp>& ops) {
    std::string out = format("[%zu ops:", ops.size());
    const char* names[] = {"ins", "del", "get"};
    for (const MapOp& o : ops) {
      out += format(" %s(%llu)", names[o.kind],
                    static_cast<unsigned long long>(o.key));
    }
    return out + "]";
  };
  return d;
}

std::string check_flat_map_vs_std(const std::vector<MapOp>& ops) {
  util::FlatMap<std::uint64_t, std::uint64_t> flat;
  std::unordered_map<std::uint64_t, std::uint64_t> ref;

  for (std::size_t i = 0; i < ops.size(); ++i) {
    const MapOp& o = ops[i];
    switch (o.kind) {
      case MapOp::kInsert: {
        auto [fit, fresh] = flat.try_emplace(o.key, o.value);
        auto [rit, ref_fresh] = ref.try_emplace(o.key, o.value);
        if (fresh != ref_fresh) {
          return format("op %zu: insert(%llu) fresh=%d, std says %d", i,
                        static_cast<unsigned long long>(o.key), int(fresh),
                        int(ref_fresh));
        }
        if (fit->second != rit->second) {
          return format("op %zu: insert(%llu) maps to %llu, std has %llu", i,
                        static_cast<unsigned long long>(o.key),
                        static_cast<unsigned long long>(fit->second),
                        static_cast<unsigned long long>(rit->second));
        }
        break;
      }
      case MapOp::kErase: {
        std::size_t fn = flat.erase(o.key);
        std::size_t rn = ref.erase(o.key);
        if (fn != rn) {
          return format("op %zu: erase(%llu) removed %zu, std removed %zu", i,
                        static_cast<unsigned long long>(o.key), fn, rn);
        }
        break;
      }
      case MapOp::kFind: {
        auto fit = flat.find(o.key);
        auto rit = ref.find(o.key);
        bool fhit = fit != flat.end();
        bool rhit = rit != ref.end();
        if (fhit != rhit) {
          return format("op %zu: find(%llu) hit=%d, std says %d", i,
                        static_cast<unsigned long long>(o.key), int(fhit),
                        int(rhit));
        }
        if (fhit && fit->second != rit->second) {
          return format("op %zu: find(%llu) = %llu, std has %llu", i,
                        static_cast<unsigned long long>(o.key),
                        static_cast<unsigned long long>(fit->second),
                        static_cast<unsigned long long>(rit->second));
        }
        break;
      }
    }
    if (flat.size() != ref.size()) {
      return format("op %zu: size %zu != std size %zu", i, flat.size(),
                    ref.size());
    }
  }

  // Survivors agree in both directions.
  for (const auto& e : flat) {
    auto rit = ref.find(e.first);
    if (rit == ref.end() || rit->second != e.second) {
      return format("final: flat holds stale (%llu,%llu)",
                    static_cast<unsigned long long>(e.first),
                    static_cast<unsigned long long>(e.second));
    }
  }
  for (const auto& [k, v] : ref) {
    if (!flat.contains(k)) {
      return format("final: flat lost key %llu",
                    static_cast<unsigned long long>(k));
    }
  }

  // Canonical layout: a fresh map holding the same final key set (inserted
  // in sorted order, i.e. a maximally different history) must iterate in
  // exactly the same sequence.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> survivors(ref.begin(),
                                                                 ref.end());
  std::sort(survivors.begin(), survivors.end());
  util::FlatMap<std::uint64_t, std::uint64_t> rebuilt;
  for (const auto& [k, v] : survivors) rebuilt.try_emplace(k, v);
  // Match the churned map's capacity: layout is canonical per (key set,
  // capacity), and the churned table may have grown past its size's needs.
  while (rebuilt.capacity() < flat.capacity()) rebuilt.reserve(rebuilt.capacity() * 2);
  auto a = flat.begin();
  auto b = rebuilt.begin();
  for (; a != flat.end() && b != rebuilt.end(); ++a, ++b) {
    if (a->first != b->first) {
      return format("layout not canonical: slot order diverges at %llu vs %llu",
                    static_cast<unsigned long long>(a->first),
                    static_cast<unsigned long long>(b->first));
    }
  }
  if ((a != flat.end()) != (b != rebuilt.end())) {
    return "layout not canonical: iteration lengths diverge";
  }
  return "";
}

}  // namespace

void register_util_properties(std::vector<Property>& out) {
  out.push_back(Property{
      "util.flat_map_vs_std", "util",
      "FlatMap agrees with std::unordered_map on random op sequences and "
      "its layout is insertion-order independent",
      40,
      [](util::pbt::Config cfg) {
        return util::pbt::check<std::vector<MapOp>>(
            "util.flat_map_vs_std", op_sequence_domain(),
            check_flat_map_vs_std, cfg);
      }});
}

}  // namespace netcong::check
