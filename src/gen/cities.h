#pragma once

// The fixed set of US metro areas the generator places infrastructure in,
// and the mapping from Ark-style site codes (Table 3 of the paper) to them.

#include <string>
#include <vector>

#include "topo/entities.h"

namespace netcong::gen {

// Returns the metro list (name, code, lat, lon, UTC offset, population
// weight). Ordered by population weight, descending.
const std::vector<topo::City>& us_metros();

// Maps an Ark site code ("bed-us") to the index of its metro in us_metros().
// Returns 0 (the largest metro) for unknown codes.
std::size_t metro_index_for_site(const std::string& site_code);

}  // namespace netcong::gen
