#pragma once

// AS-level policy routing following the Gao-Rexford model:
//  * route preference: customer routes > peer routes > provider routes,
//    then shortest AS path, then lowest next-hop ASN (deterministic);
//  * export policy: customer routes are exported to everyone; peer and
//    provider routes are exported only to customers.
//
// Routes are computed per destination AS as a "routing tree" giving, for
// every source AS, the next hop toward the destination. Trees are computed
// lazily and cached, so a workload touching k destinations costs
// O(k * (V + E)). The tree cache is guarded by a reader-writer lock and
// hands out shared ownership, so concurrent queries (e.g. from the
// parallel campaign engine) are safe even across a cap eviction; a tree is
// a pure function of the destination, so concurrent double-computation is
// harmless.
//
// All resulting paths are valley-free by construction; this invariant is
// checked by property tests.

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "topo/topology.h"
#include "util/flat_map.h"

namespace netcong::route {

// Class of the best route an AS holds toward a destination.
enum class RouteClass : std::uint8_t {
  kNone = 0,      // unreachable
  kSelf = 1,      // the destination itself
  kCustomer = 2,  // learned from a customer
  kPeer = 3,      // learned from a peer
  kProvider = 4,  // learned from a provider
};

const char* route_class_name(RouteClass c);

class BgpRouting {
 public:
  explicit BgpRouting(const topo::Topology& topo);

  // AS path from src to dst, inclusive of both. Empty if unreachable.
  // Paths never contain loops and are valley-free.
  std::vector<topo::Asn> as_path(topo::Asn src, topo::Asn dst) const;

  bool reachable(topo::Asn src, topo::Asn dst) const;

  // Class of the best route held by src toward dst.
  RouteClass route_class(topo::Asn src, topo::Asn dst) const;

  // Forces computation of the routing tree for dst (useful for benches).
  void warm(topo::Asn dst) const;

  std::size_t cached_tree_count() const {
    std::shared_lock<std::shared_mutex> lk(trees_mu_);
    return trees_.size();
  }

  // Bounds the routing-tree cache; when exceeded the cache is cleared
  // (recomputing a tree is O(V + E), far cheaper than holding thousands).
  void set_cache_cap(std::size_t cap) { cache_cap_ = cap; }

 private:
  struct Tree {
    // Indexed by AS index; next hop toward the destination.
    std::vector<std::uint32_t> next_hop;  // AS index; kNoHop if none
    std::vector<RouteClass> cls;
    std::vector<std::uint16_t> dist;  // AS-path length of the best route
  };
  static constexpr std::uint32_t kNoHop = 0xffffffffu;

  std::shared_ptr<const Tree> tree_for(topo::Asn dst) const;
  Tree compute_tree(std::uint32_t dst_index) const;

  const topo::Topology* topo_;
  std::vector<topo::Asn> asns_;                         // index -> ASN
  util::FlatMap<topo::Asn, std::uint32_t> index_;       // ASN -> index
  // Adjacency by index with the relationship of node toward neighbor.
  struct Neighbor {
    std::uint32_t idx;
    topo::RelType rel;  // relationship of this node toward the neighbor
  };
  std::vector<std::vector<Neighbor>> adj_;

  mutable std::shared_mutex trees_mu_;
  mutable util::FlatMap<std::uint32_t, std::shared_ptr<const Tree>> trees_;
  std::size_t cache_cap_ = 3000;
};

// Returns true if the AS-level relationship sequence along `path` is
// valley-free: zero or more customer->provider hops, at most one peer hop,
// then zero or more provider->customer hops.
bool is_valley_free(const topo::Topology& topo,
                    const std::vector<topo::Asn>& path);

}  // namespace netcong::route
