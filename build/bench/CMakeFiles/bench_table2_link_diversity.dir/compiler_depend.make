# Empty compiler generated dependencies file for bench_table2_link_diversity.
# This may be replaced when dependencies are built.
