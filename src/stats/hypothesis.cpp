#include "stats/hypothesis.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "stats/descriptive.h"

namespace netcong::stats {

double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

TestResult mann_whitney_u(const std::vector<double>& a,
                          const std::vector<double>& b) {
  assert(!a.empty() && !b.empty());
  const std::size_t n1 = a.size();
  const std::size_t n2 = b.size();

  // Rank the pooled sample with midranks for ties.
  struct Tagged {
    double v;
    int group;  // 0 = a, 1 = b
  };
  std::vector<Tagged> pooled;
  pooled.reserve(n1 + n2);
  for (double v : a) pooled.push_back({v, 0});
  for (double v : b) pooled.push_back({v, 1});
  std::sort(pooled.begin(), pooled.end(),
            [](const Tagged& x, const Tagged& y) { return x.v < y.v; });

  std::vector<double> ranks(pooled.size());
  double tie_correction = 0.0;
  std::size_t i = 0;
  while (i < pooled.size()) {
    std::size_t j = i;
    while (j + 1 < pooled.size() && pooled[j + 1].v == pooled[i].v) ++j;
    double midrank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[k] = midrank;
    double t = static_cast<double>(j - i + 1);
    tie_correction += t * t * t - t;
    i = j + 1;
  }

  double rank_sum_a = 0.0;
  for (std::size_t k = 0; k < pooled.size(); ++k) {
    if (pooled[k].group == 0) rank_sum_a += ranks[k];
  }
  double u1 = rank_sum_a - static_cast<double>(n1) *
                               (static_cast<double>(n1) + 1.0) / 2.0;
  double u = std::min(u1, static_cast<double>(n1) * static_cast<double>(n2) - u1);

  double n = static_cast<double>(n1 + n2);
  double mu = static_cast<double>(n1) * static_cast<double>(n2) / 2.0;
  double sigma2 = static_cast<double>(n1) * static_cast<double>(n2) / 12.0 *
                  ((n + 1.0) - tie_correction / (n * (n - 1.0)));
  TestResult r;
  r.statistic = u;
  if (sigma2 <= 0.0) {
    // All values tied: no evidence of difference.
    r.z = 0.0;
    r.p_value = 1.0;
    return r;
  }
  // Continuity correction.
  r.z = (u - mu + 0.5) / std::sqrt(sigma2);
  r.p_value = 2.0 * normal_cdf(-std::fabs(r.z));
  r.p_value = std::min(1.0, r.p_value);
  return r;
}

TestResult welch_t(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() >= 2 && b.size() >= 2);
  double ma = mean(a);
  double mb = mean(b);
  double na = static_cast<double>(a.size());
  double nb = static_cast<double>(b.size());
  // Sample (n-1) variances.
  double va = 0.0;
  for (double x : a) va += (x - ma) * (x - ma);
  va /= (na - 1.0);
  double vb = 0.0;
  for (double x : b) vb += (x - mb) * (x - mb);
  vb /= (nb - 1.0);

  double se2 = va / na + vb / nb;
  TestResult r;
  if (se2 <= 0.0) {
    r.statistic = 0.0;
    r.z = 0.0;
    r.p_value = ma == mb ? 1.0 : 0.0;
    return r;
  }
  r.statistic = (ma - mb) / std::sqrt(se2);
  // Degrees of freedom are large in our use; use normal approximation.
  r.z = r.statistic;
  r.p_value = 2.0 * normal_cdf(-std::fabs(r.z));
  return r;
}

double cliffs_delta(const std::vector<double>& a,
                    const std::vector<double>& b) {
  if (a.empty() || b.empty()) return 0.0;
  // O(n log n) via sorted b and binary searches.
  std::vector<double> sb = b;
  std::sort(sb.begin(), sb.end());
  long long greater = 0;
  long long less = 0;
  for (double x : a) {
    auto lo = std::lower_bound(sb.begin(), sb.end(), x);
    auto hi = std::upper_bound(sb.begin(), sb.end(), x);
    less += sb.end() - hi;      // b values strictly greater than x
    greater += lo - sb.begin();  // b values strictly less than x
  }
  double n = static_cast<double>(a.size()) * static_cast<double>(b.size());
  return (static_cast<double>(greater) - static_cast<double>(less)) / n;
}

}  // namespace netcong::stats
