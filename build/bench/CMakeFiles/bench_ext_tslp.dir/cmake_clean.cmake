file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_tslp.dir/bench_ext_tslp.cpp.o"
  "CMakeFiles/bench_ext_tslp.dir/bench_ext_tslp.cpp.o.d"
  "CMakeFiles/bench_ext_tslp.dir/common.cpp.o"
  "CMakeFiles/bench_ext_tslp.dir/common.cpp.o.d"
  "bench_ext_tslp"
  "bench_ext_tslp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_tslp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
