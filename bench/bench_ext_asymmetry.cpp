// Extension: path asymmetry. The paper's Section 5.1 leans on prior
// findings that "path asymmetry at the AS-level is significantly less
// pronounced than at the router-level" to justify outbound-only
// traceroutes for AS-level coverage. The simulator can measure both
// directions directly: compare forward and reverse paths between vantage
// points and servers at the AS level (org-collapsed) and at the IP-link
// level.

#include <algorithm>
#include <cstdio>

#include "common.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace netcong;
  bench::print_header("Extension asymmetry",
                      "Forward vs reverse path symmetry at AS and router "
                      "level");

  bench::Context ctx(bench::bench_config());
  util::Rng rng(66);

  int total = 0;
  int as_symmetric = 0;
  int link_symmetric = 0;
  for (std::uint32_t vp : ctx.world.ark_vps) {
    for (std::size_t i = 0; i < ctx.world.mlab_servers.size(); i += 3) {
      std::uint32_t server = ctx.world.mlab_servers[i];
      const topo::Host& a = ctx.world.topo->host(vp);
      const topo::Host& b = ctx.world.topo->host(server);
      route::FlowKey fwd_key{a.addr, b.addr, 40000, 3001, 6};
      route::FlowKey rev_key{b.addr, a.addr, 3001, 40000, 6};
      auto fwd_path = ctx.fwd.path(vp, b.addr, fwd_key);
      auto rev_path = ctx.fwd.path(server, a.addr, rev_key);
      if (!fwd_path.valid || !rev_path.valid) continue;
      ++total;

      // AS-level comparison, org-collapsed, reverse reversed.
      auto orgs_of = [&](const std::vector<topo::Asn>& path) {
        std::vector<std::uint32_t> out;
        for (topo::Asn asn : path) {
          std::uint32_t org = ctx.orgs.org_of(asn);
          if (out.empty() || out.back() != org) out.push_back(org);
        }
        return out;
      };
      auto f_orgs = orgs_of(fwd_path.as_path);
      auto r_orgs = orgs_of(rev_path.as_path);
      std::reverse(r_orgs.begin(), r_orgs.end());
      if (f_orgs == r_orgs) ++as_symmetric;

      // IP-link-level comparison: the sets of interdomain links crossed.
      auto links_of = [&](const route::RouterPath& p) {
        std::vector<std::uint32_t> out;
        for (topo::LinkId l : p.links) {
          if (ctx.world.topo->link(l).kind == topo::LinkKind::kInterdomain) {
            out.push_back(l.value);
          }
        }
        std::sort(out.begin(), out.end());
        return out;
      };
      if (links_of(fwd_path) == links_of(rev_path)) ++link_symmetric;
    }
  }

  util::TextTable table({"granularity", "symmetric", "of", "fraction"});
  table.add_row({"AS-level (org-collapsed)", std::to_string(as_symmetric),
                 std::to_string(total),
                 util::format("%.1f%%", 100.0 * as_symmetric / total)});
  table.add_row({"IP-link level", std::to_string(link_symmetric),
                 std::to_string(total),
                 util::format("%.1f%%", 100.0 * link_symmetric / total)});
  std::printf("%s", table.render().c_str());
  bench::print_footnote(
      "shape target (Sanchez et al., cited as [36]): AS-level paths are "
      "mostly symmetric while router/IP-level paths frequently differ — "
      "which is why outbound traceroutes suffice for AS-level coverage "
      "but not for per-link attribution");
  return 0;
}
