#include "sim/faults.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdlib>

#include "obs/metrics.h"

namespace netcong::sim {

namespace {

// Fork-stream family base for fault sites: far above the campaign's own
// phase families (which stay below 8 << 40 in measure/ndt.cpp).
constexpr std::uint64_t kSiteFamily = 1ull << 48;

struct SiteInfo {
  FaultSite site;
  const char* name;
  const char* description;
};

constexpr SiteInfo kSites[] = {
    {FaultSite::kServerOutage, "server-outage",
     "scheduled test-server outage windows (M-Lab/Speedtest node down)"},
    {FaultSite::kServerFlap, "server-flap",
     "short repeated server down-windows (flapping node)"},
    {FaultSite::kNdtAbort, "ndt-abort",
     "NDT test aborts before producing a measurement"},
    {FaultSite::kNdtTruncate, "ndt-truncate",
     "mid-test truncation: throughput measured on partial transfer"},
    {FaultSite::kTracerouteCrash, "traceroute-crash",
     "traceroute daemon crash; due trace lost, restart delay follows"},
    {FaultSite::kProbeLoss, "probe-loss",
     "per-probe packet loss beyond the base star model"},
    {FaultSite::kWebStatsDrop, "webstats-drop",
     "WebStats fields dropped from the test record"},
    {FaultSite::kPrefix2AsStale, "prefix2as-stale",
     "stale prefix2AS entries (wrong origin ASN in the BGP view)"},
    {FaultSite::kRetryBackoff, "retry-backoff",
     "client-side retry backoff draws after a server outage"},
    {FaultSite::kWalTornWrite, "wal-torn-write",
     "process death mid-append leaves a torn frame at the WAL tail"},
    {FaultSite::kWalFsyncFail, "wal-fsync-fail",
     "fsync on a WAL segment fails; append survives only in page cache"},
    {FaultSite::kNetShortRead, "net-short-read",
     "socket front-end receives frames in 1-3 byte chunks"},
    {FaultSite::kNetDisconnect, "net-disconnect",
     "producer disconnects after sending only part of a frame"},
};

const SiteInfo& info(FaultSite site) {
  for (const SiteInfo& s : kSites) {
    if (s.site == site) return s;
  }
  return kSites[0];
}

// Per-site fire counters, indexed by the site's (stable) enum value. The
// inc() on a fired site is a single relaxed per-thread atomic op, so the
// decision streams stay pure functions of (seed, site, item) — metrics
// observe the draws, they never consume randomness.
struct FireMetrics {
  std::array<obs::Counter, 14> fired{};
  FireMetrics() {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    for (const SiteInfo& s : kSites) {
      fired[static_cast<std::size_t>(s.site)] =
          reg.counter(std::string("faults.fired.") + s.name);
    }
  }
};

void count_fire(FaultSite site) {
  static const FireMetrics m;
  m.fired[static_cast<std::size_t>(site)].inc();
}

}  // namespace

const char* fault_site_name(FaultSite site) { return info(site).name; }

const char* fault_site_description(FaultSite site) {
  return info(site).description;
}

const std::vector<FaultSite>& all_fault_sites() {
  static const std::vector<FaultSite> sites = [] {
    std::vector<FaultSite> out;
    for (const SiteInfo& s : kSites) out.push_back(s.site);
    return out;
  }();
  return sites;
}

FaultConfig FaultConfig::scaled(double severity) {
  double s = std::clamp(severity, 0.0, 1.0);
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.server_outage_fraction = s;
  cfg.server_flap_fraction = 0.5 * s;
  cfg.ndt_abort_prob = 0.5 * s;
  cfg.ndt_truncate_prob = 0.5 * s;
  cfg.webstats_drop_prob = s;
  cfg.daemon_crash_prob = 0.5 * s;
  cfg.probe_loss_prob = s;
  cfg.prefix2as_stale_fraction = 0.25 * s;
  cfg.wal_torn_write_prob = 0.25 * s;
  cfg.wal_fsync_fail_prob = 0.25 * s;
  cfg.net_short_read_prob = s;
  cfg.net_disconnect_prob = 0.25 * s;
  return cfg;
}

util::Result<FaultConfig> parse_fault_severity(const std::string& text) {
  char* end = nullptr;
  double s = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    return util::Result<FaultConfig>::failure("not a number: '" + text + "'");
  }
  if (s < 0.0 || s > 1.0) {
    return util::Result<FaultConfig>::failure(
        "severity must be in [0, 1], got " + text);
  }
  return util::Result<FaultConfig>::success(FaultConfig::scaled(s));
}

std::vector<std::pair<std::string, std::size_t>> DataQuality::rows() const {
  return {
      {"tests_attempted", tests_attempted},
      {"tests_completed", tests_completed},
      {"tests_aborted", tests_aborted},
      {"tests_unserved", tests_unserved},
      {"tests_failed", tests_failed},
      {"tests_truncated", tests_truncated},
      {"tests_retried", tests_retried},
      {"retry_attempts", retry_attempts},
      {"webstats_dropped", webstats_dropped},
      {"fields_dropped", fields_dropped},
      {"traceroutes_scheduled", traceroutes_scheduled},
      {"traceroutes_completed", traceroutes_completed},
      {"traceroutes_lost_busy", traceroutes_lost_busy},
      {"traceroutes_lost_failed", traceroutes_lost_failed},
      {"traceroutes_lost_crash", traceroutes_lost_crash},
      {"traceroutes_suppressed_cached", traceroutes_suppressed_cached},
      {"traceroutes_degraded", traceroutes_degraded},
      {"ingest_frames_ok", ingest_frames_ok},
      {"ingest_frames_rejected", ingest_frames_rejected},
      {"ingest_events_submitted", ingest_events_submitted},
      {"ingest_events_dropped", ingest_events_dropped},
  };
}

FaultInjector::FaultInjector(FaultConfig config, std::uint64_t seed)
    : config_(config), root_(seed) {}

util::Rng FaultInjector::stream(FaultSite site, std::uint64_t item) const {
  return root_.fork(kSiteFamily + static_cast<std::uint64_t>(site))
      .fork(item);
}

bool FaultInjector::fires(FaultSite site, std::uint64_t item,
                          double prob) const {
  if (!config_.enabled || prob <= 0.0) return false;
  bool fired = stream(site, item).chance(prob);
  if (fired) count_fire(site);
  return fired;
}

bool FaultInjector::server_down(std::uint32_t server,
                                double utc_time_hours) const {
  if (!config_.enabled) return false;
  if (config_.server_outage_fraction > 0.0) {
    util::Rng rng = stream(FaultSite::kServerOutage, server);
    if (rng.chance(config_.server_outage_fraction)) {
      double start = rng.uniform(0.0, config_.outage_horizon_hours);
      if (utc_time_hours >= start &&
          utc_time_hours < start + config_.outage_duration_hours) {
        count_fire(FaultSite::kServerOutage);
        return true;
      }
    }
  }
  if (config_.server_flap_fraction > 0.0) {
    util::Rng rng = stream(FaultSite::kServerFlap, server);
    if (rng.chance(config_.server_flap_fraction)) {
      double phase = rng.uniform(0.0, config_.flap_period_hours);
      double pos = std::fmod(utc_time_hours + phase, config_.flap_period_hours);
      if (pos >= 0.0 && pos < config_.flap_down_hours) {
        count_fire(FaultSite::kServerFlap);
        return true;
      }
    }
  }
  return false;
}

std::vector<std::pair<topo::Prefix, topo::Asn>>
FaultInjector::degrade_prefix2as(
    const std::vector<std::pair<topo::Prefix, topo::Asn>>& announced) const {
  std::vector<std::pair<topo::Prefix, topo::Asn>> out = announced;
  if (!config_.enabled || config_.prefix2as_stale_fraction <= 0.0 ||
      announced.size() < 2) {
    return out;
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    util::Rng rng = stream(FaultSite::kPrefix2AsStale, i);
    if (!rng.chance(config_.prefix2as_stale_fraction)) continue;
    count_fire(FaultSite::kPrefix2AsStale);
    // Re-originate to another announced origin — the shape of real
    // staleness, where a delisted block still maps to a previous holder.
    std::size_t j = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(announced.size()) - 2));
    if (j >= i) ++j;
    out[i].second = announced[j].second;
  }
  return out;
}

}  // namespace netcong::sim
