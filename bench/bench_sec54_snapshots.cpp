// Section 5.4: change of coverage across the two server-fleet snapshots.
// Between Oct 2015 and Feb 2017 M-Lab stayed at 261 servers while
// Speedtest grew 3591 -> 5209, yet coverage of most ISPs' interconnections
// changed little — placement, not count, is what matters.

#include <cstdio>
#include <map>

#include "common.h"
#include "gen/paper_data.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace netcong;
  bench::print_header("Section 5.4",
                      "Coverage change across the 2015 and 2017 snapshots");

  bench::Context ctx(bench::bench_config());
  auto snap2015 = bench::run_coverage(ctx, /*snapshot_2017=*/false, 9);
  auto snap2017 = bench::run_coverage(ctx, /*snapshot_2017=*/true, 9);

  auto fleets = gen::paper::sec54_snapshots();
  std::printf("fleets: M-Lab %zu servers (both snapshots; paper %d/%d), "
              "Speedtest %zu -> %zu (paper %d -> %d)\n\n",
              ctx.world.mlab_servers.size(), fleets.mlab_servers_2015,
              fleets.mlab_servers_2017, ctx.world.speedtest_servers_2015.size(),
              ctx.world.speedtest_servers_2017.size(),
              fleets.speedtest_servers_2015, fleets.speedtest_servers_2017);

  util::TextTable table({"VP", "Network", "ST peer % '15", "ST peer % '17",
                         "delta", "M-Lab peer % (both)"});
  for (std::size_t i = 0; i < snap2015.size(); ++i) {
    const auto& a = snap2015[i];
    const auto& b = snap2017[i];
    double st15 = core::VpCoverage::pct(a.speedtest_peers.as_level.size(),
                                        a.discovered_peers.as_level.size());
    double st17 = core::VpCoverage::pct(b.speedtest_peers.as_level.size(),
                                        b.discovered_peers.as_level.size());
    double ml = core::VpCoverage::pct(b.mlab_peers.as_level.size(),
                                      b.discovered_peers.as_level.size());
    table.add_row({a.vp_label, a.network, bench::pct(st15), bench::pct(st17),
                   util::format("%+.1f", st17 - st15), bench::pct(ml)});
  }
  std::printf("%s", table.render().c_str());
  bench::print_footnote(
      "paper: Speedtest peer coverage moved only a few points per ISP "
      "despite 45% fleet growth (e.g. Comcast 69%->78%, Verizon 81%->76%); "
      "strategic placement, not server count, drives testability");
  return 0;
}
