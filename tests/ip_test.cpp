#include <gtest/gtest.h>

#include <limits>

#include "topo/ip.h"
#include "util/rng.h"

namespace netcong::topo {
namespace {

TEST(IpAddr, FormatParseRoundTrip) {
  IpAddr a(192, 168, 1, 42);
  EXPECT_EQ(a.to_string(), "192.168.1.42");
  auto parsed = IpAddr::parse("192.168.1.42");
  ASSERT_TRUE(parsed);
  EXPECT_EQ(*parsed, a);
}

TEST(IpAddr, ParseRejectsGarbage) {
  EXPECT_FALSE(IpAddr::parse(""));
  EXPECT_FALSE(IpAddr::parse("1.2.3"));
  EXPECT_FALSE(IpAddr::parse("1.2.3.4.5"));
  EXPECT_FALSE(IpAddr::parse("256.1.1.1"));
  EXPECT_FALSE(IpAddr::parse("a.b.c.d"));
  EXPECT_FALSE(IpAddr::parse("1..2.3"));
}

TEST(Prefix, NormalizesHostBits) {
  Prefix p(IpAddr(10, 1, 2, 3), 16);
  EXPECT_EQ(p.to_string(), "10.1.0.0/16");
  EXPECT_TRUE(p.contains(IpAddr(10, 1, 255, 255)));
  EXPECT_FALSE(p.contains(IpAddr(10, 2, 0, 0)));
}

TEST(Prefix, ContainsPrefix) {
  Prefix big(IpAddr(10, 0, 0, 0), 8);
  Prefix small(IpAddr(10, 3, 0, 0), 16);
  EXPECT_TRUE(big.contains(small));
  EXPECT_FALSE(small.contains(big));
  EXPECT_TRUE(big.contains(big));
}

TEST(Prefix, SizeAndNth) {
  Prefix p(IpAddr(10, 0, 0, 0), 30);
  EXPECT_EQ(p.size(), 4u);
  EXPECT_EQ(p.nth(1).to_string(), "10.0.0.1");
}

TEST(Prefix, ParseRoundTrip) {
  auto p = Prefix::parse("172.16.0.0/12");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->to_string(), "172.16.0.0/12");
  EXPECT_FALSE(Prefix::parse("1.2.3.4/33"));
  EXPECT_FALSE(Prefix::parse("1.2.3.4"));
}

TEST(Prefix, Slash32) {
  Prefix p(IpAddr(1, 2, 3, 4), 32);
  EXPECT_TRUE(p.contains(IpAddr(1, 2, 3, 4)));
  EXPECT_FALSE(p.contains(IpAddr(1, 2, 3, 5)));
  EXPECT_EQ(p.size(), 1u);
}

TEST(PrefixTrie, LongestPrefixWins) {
  PrefixTrie<int> t;
  t.insert(Prefix(IpAddr(10, 0, 0, 0), 8), 1);
  t.insert(Prefix(IpAddr(10, 1, 0, 0), 16), 2);
  t.insert(Prefix(IpAddr(10, 1, 2, 0), 24), 3);
  EXPECT_EQ(t.lookup(IpAddr(10, 1, 2, 3)).value(), 3);
  EXPECT_EQ(t.lookup(IpAddr(10, 1, 9, 9)).value(), 2);
  EXPECT_EQ(t.lookup(IpAddr(10, 9, 9, 9)).value(), 1);
  EXPECT_FALSE(t.lookup(IpAddr(11, 0, 0, 0)));
}

TEST(PrefixTrie, ExactLookup) {
  PrefixTrie<int> t;
  t.insert(Prefix(IpAddr(10, 0, 0, 0), 8), 1);
  EXPECT_EQ(t.lookup_exact(Prefix(IpAddr(10, 0, 0, 0), 8)).value(), 1);
  EXPECT_FALSE(t.lookup_exact(Prefix(IpAddr(10, 0, 0, 0), 16)));
}

TEST(PrefixTrie, OverwriteSameKey) {
  PrefixTrie<int> t;
  Prefix p(IpAddr(1, 0, 0, 0), 8);
  t.insert(p, 1);
  t.insert(p, 2);
  EXPECT_EQ(t.lookup_exact(p).value(), 2);
}

TEST(PrefixTrie, DefaultRoute) {
  PrefixTrie<int> t;
  t.insert(Prefix(IpAddr(0, 0, 0, 0), 0), 99);
  EXPECT_EQ(t.lookup(IpAddr(200, 1, 1, 1)).value(), 99);
}

// Property: the trie agrees with a brute-force scan over a random ruleset.
class TrieProperty : public ::testing::TestWithParam<int> {};

TEST_P(TrieProperty, MatchesBruteForce) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  PrefixTrie<int> trie;
  std::vector<std::pair<Prefix, int>> rules;
  for (int i = 0; i < 300; ++i) {
    std::uint8_t len = static_cast<std::uint8_t>(rng.uniform_int(4, 30));
    IpAddr a(static_cast<std::uint32_t>(
        rng.uniform_int(0, std::numeric_limits<std::int32_t>::max())));
    Prefix p(a, len);
    // Avoid duplicate exact prefixes; trie keeps the last, brute force must
    // match that behaviour, so just record in order and scan backwards.
    trie.insert(p, i);
    rules.emplace_back(p, i);
  }
  for (int q = 0; q < 500; ++q) {
    IpAddr addr(static_cast<std::uint32_t>(
        rng.uniform_int(0, std::numeric_limits<std::int32_t>::max())));
    // Brute force: longest prefix; among equal definitions, latest insert.
    int best_len = -1;
    int best_val = -1;
    for (const auto& [p, v] : rules) {
      if (!p.contains(addr)) continue;
      if (static_cast<int>(p.len) > best_len ||
          (static_cast<int>(p.len) == best_len)) {
        best_len = p.len;
        best_val = v;
      }
    }
    auto got = trie.lookup(addr);
    if (best_len < 0) {
      EXPECT_FALSE(got.has_value());
    } else {
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(*got, best_val);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrieProperty, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace netcong::topo
