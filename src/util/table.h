#pragma once

// Plain-text table rendering for bench/example output. Produces aligned
// columns with a header rule, similar to the tables in the paper.

#include <string>
#include <vector>

namespace netcong::util {

class TextTable {
 public:
  enum class Align { kLeft, kRight };

  explicit TextTable(std::vector<std::string> headers);

  // Per-column alignment; defaults to left for col 0, right elsewhere.
  void set_align(std::size_t col, Align align);

  void add_row(std::vector<std::string> cells);

  // Convenience: formats doubles compactly.
  void add_row_mixed(const std::vector<std::string>& text_cells,
                     const std::vector<double>& numeric_cells);

  std::size_t row_count() const { return rows_.size(); }

  // Renders the full table, each line terminated with '\n'.
  std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace netcong::util
