file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_link_diversity.dir/bench_table2_link_diversity.cpp.o"
  "CMakeFiles/bench_table2_link_diversity.dir/bench_table2_link_diversity.cpp.o.d"
  "CMakeFiles/bench_table2_link_diversity.dir/common.cpp.o"
  "CMakeFiles/bench_table2_link_diversity.dir/common.cpp.o.d"
  "bench_table2_link_diversity"
  "bench_table2_link_diversity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_link_diversity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
