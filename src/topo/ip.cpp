#include "topo/ip.h"

#include <cassert>

#include "util/strings.h"

namespace netcong::topo {

std::string IpAddr::to_string() const {
  return util::format("%u.%u.%u.%u", (value >> 24) & 0xff, (value >> 16) & 0xff,
                      (value >> 8) & 0xff, value & 0xff);
}

std::optional<IpAddr> IpAddr::parse(const std::string& s) {
  auto parts = util::split(s, '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t v = 0;
  for (const auto& part : parts) {
    if (part.empty() || part.size() > 3) return std::nullopt;
    int octet = 0;
    for (char c : part) {
      if (c < '0' || c > '9') return std::nullopt;
      octet = octet * 10 + (c - '0');
    }
    if (octet > 255) return std::nullopt;
    v = (v << 8) | static_cast<std::uint32_t>(octet);
  }
  return IpAddr(v);
}

namespace {
std::uint32_t mask_for(std::uint8_t len) {
  return len == 0 ? 0u : (~0u << (32 - len));
}
}  // namespace

Prefix::Prefix(IpAddr addr, std::uint8_t l) : len(l) {
  assert(l <= 32);
  network = IpAddr(addr.value & mask_for(l));
}

bool Prefix::contains(IpAddr a) const {
  return (a.value & mask_for(len)) == network.value;
}

bool Prefix::contains(const Prefix& other) const {
  return other.len >= len && contains(other.network);
}

std::uint32_t Prefix::size() const {
  if (len == 0) return 0;  // avoid overflow of 2^32; /0 treated specially
  return 1u << (32 - len);
}

IpAddr Prefix::nth(std::uint32_t offset) const {
  assert(len == 0 || offset < size());
  return IpAddr(network.value + offset);
}

std::string Prefix::to_string() const {
  return network.to_string() + "/" + std::to_string(len);
}

std::optional<Prefix> Prefix::parse(const std::string& s) {
  auto parts = util::split(s, '/');
  if (parts.size() != 2) return std::nullopt;
  auto addr = IpAddr::parse(parts[0]);
  if (!addr) return std::nullopt;
  int len = 0;
  if (parts[1].empty() || parts[1].size() > 2) return std::nullopt;
  for (char c : parts[1]) {
    if (c < '0' || c > '9') return std::nullopt;
    len = len * 10 + (c - '0');
  }
  if (len > 32) return std::nullopt;
  return Prefix(*addr, static_cast<std::uint8_t>(len));
}

}  // namespace netcong::topo
