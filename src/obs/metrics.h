#pragma once

// Runtime metrics for the measurement/inference pipeline: counters, gauges,
// and fixed-bin histograms behind a single process-wide registry.
//
// Design constraints, in order:
//  1. The bit-identical-output contract from the campaign engine must
//     survive instrumentation. Metrics never touch an Rng, never branch the
//     instrumented code's logic, and are merged at snapshot time in a fixed
//     order (retired totals first, then live thread slabs in registration
//     order), so an instrumented run produces the same campaign output as an
//     uninstrumented one — only the side-channel numbers differ.
//  2. The hot path is lock-free. Each thread writes to its own slab of
//     relaxed atomics (single-writer; the atomics exist so a concurrent
//     snapshot is race-free, not for cross-thread ordering). No mutex is
//     ever taken on increment.
//  3. Disabled means near-free. Every increment short-circuits on one
//     relaxed atomic load when the registry is off (the default), so the
//     instrumentation can stay compiled into production binaries.
//
// Handles (Counter/Gauge/Histogram) are cheap POD-ish values obtained from
// the registry once — typically in a function-local static — and used
// forever after. Handles must not outlive their registry; the global()
// registry lives for the whole process.
//
// Thread slabs retire on thread exit: their totals fold into the registry
// so counts from short-lived threads are never lost.

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace netcong::obs {

class MetricsRegistry;

// Capacity limits. Registration past a limit returns an inert handle (and
// warns once) rather than failing; limits are generous for this codebase.
inline constexpr std::size_t kMaxCounters = 256;
inline constexpr std::size_t kMaxGauges = 64;
inline constexpr std::size_t kMaxHistograms = 64;
inline constexpr std::size_t kMaxHistogramBins = 1024;  // pooled, all hists

// Monotonic event count. inc() is safe from any thread.
class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t n = 1) const;

 private:
  friend class MetricsRegistry;
  Counter(MetricsRegistry* reg, std::uint32_t id) : reg_(reg), id_(id) {}
  MetricsRegistry* reg_ = nullptr;
  std::uint32_t id_ = 0;
};

// Last-written value (not per-thread; intended for end-of-phase summary
// values like tests/sec, written from one thread at a time).
class Gauge {
 public:
  Gauge() = default;
  void set(double value) const;

 private:
  friend class MetricsRegistry;
  Gauge(MetricsRegistry* reg, std::uint32_t id) : reg_(reg), id_(id) {}
  MetricsRegistry* reg_ = nullptr;
  std::uint32_t id_ = 0;
};

// Fixed-bin histogram: `bounds` are ascending upper bounds, with an
// implicit final +inf bin; observe(v) lands in the first bin whose bound
// is >= v. Bin layout is fixed at registration, so merging per-thread
// copies is a plain elementwise sum.
class Histogram {
 public:
  Histogram() = default;
  void observe(double value) const;

 private:
  friend class MetricsRegistry;
  Histogram(MetricsRegistry* reg, std::uint32_t id) : reg_(reg), id_(id) {}
  MetricsRegistry* reg_ = nullptr;
  std::uint32_t id_ = 0;
};

// Exponential-ish bucket bounds helper: `steps` multiplicative steps from
// `lo` to `hi` inclusive (e.g. exp_bounds(1, 1000, 10) for decades-ish).
std::vector<double> exp_bounds(double lo, double hi, int steps);

struct HistogramValue {
  std::vector<double> bounds;         // upper bounds (without the +inf bin)
  std::vector<std::uint64_t> counts;  // bounds.size() + 1 entries
  std::uint64_t count = 0;            // total observations
  double sum = 0.0;                   // sum of observed values
};

// A merged, name-sorted view of every metric. Plain data: safe to keep
// after the registry changes.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramValue>> histograms;

  // Value lookup helpers (0 / empty when the metric is absent).
  std::uint64_t counter(const std::string& name) const;
  double gauge(const std::string& name) const;
  const HistogramValue* histogram(const std::string& name) const;

  // {"counters": {...}, "gauges": {...}, "histograms": {...}} with keys in
  // sorted order — the payload of metrics.json.
  std::string to_json() const;
};

class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The process-wide registry every instrumented library writes to.
  // Never destroyed (intentional leak: instrumented code may log from
  // static destructors).
  static MetricsRegistry& global();

  // Master switch; off by default. Flipping it on/off never loses counts.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Registration: returns the existing metric when the name is already
  // registered (histogram bounds must then match; mismatch warns and keeps
  // the original). Cold path, mutex-protected.
  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  Histogram histogram(const std::string& name, std::vector<double> bounds);

  // Merged view of all values: retired totals plus every live thread slab,
  // in slab-registration order. Cold path.
  MetricsSnapshot snapshot() const;

  // Zeroes every value (keeps registrations, so existing handles stay
  // valid). Used by tests and by the CLI between runs.
  void reset();

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;
  struct Slab;
  struct ThreadSlabs;
  struct HistogramInfo {
    std::string name;
    std::vector<double> bounds;
    std::uint32_t bin_offset = 0;  // into the slab bin pool
    std::uint32_t bin_count = 0;   // bounds.size() + 1
  };

  void add_counter(std::uint32_t id, std::uint64_t n);
  void observe_histogram(std::uint32_t id, double value);
  Slab* thread_slab();
  void retire_slab(Slab& slab);  // fold a dying thread's totals in

  std::atomic<bool> enabled_{false};
  const std::uint64_t registry_id_;

  // Cold state, all guarded by the module-wide obs mutex (see metrics.cpp):
  // registration tables, the live-slab list, and retired totals. Histogram
  // infos live in a fixed array and are written exactly once (registration),
  // so the hot path may index them without the mutex.
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::array<HistogramInfo, kMaxHistograms> histograms_{};
  std::uint32_t hist_count_ = 0;
  std::uint32_t bins_used_ = 0;
  std::vector<Slab*> live_slabs_;  // in registration order
  std::uint64_t next_slab_seq_ = 0;
  std::array<std::uint64_t, kMaxCounters> retired_counters_{};
  std::array<std::uint64_t, kMaxHistogramBins> retired_bins_{};
  std::array<double, kMaxHistograms> retired_hist_sums_{};
  std::array<std::atomic<double>, kMaxGauges> gauges_{};
};

// Installs a util::set_log_sink hook that counts emitted log lines per
// level ("log.lines.debug" ... "log.lines.error") in the global registry
// and forwards each line to the default stderr writer. Idempotent.
void hook_logging();

}  // namespace netcong::obs
