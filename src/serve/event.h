#pragma once

// The ingest event model for the always-on service (DESIGN.md §11): the
// production M-Lab platform is a stream of NDT results and server-side
// traceroutes arriving continuously, not a corpus handed over whole. An
// IngestEvent is one element of that stream; an event log is the stream
// materialized in arrival order, which is what "a batch run over the same
// prefix of the event log" quantifies over in the snapshot-equivalence
// obligation.
//
// Event logs can be derived from either campaign engine — the classic AoS
// CampaignResult or the columnar ColumnarCampaignResult — and the two
// derivations are bit-identical (the columnar materialization contract),
// so replay-based tests can drive the service from whichever engine
// produced the data.

#include <cstdint>
#include <variant>
#include <vector>

#include "measure/corpus.h"
#include "measure/ndt.h"
#include "measure/traceroute.h"

namespace netcong::serve {

// One element of the ingest stream. The variant order defines the kind
// index used in fingerprints and shard routing.
using IngestEvent =
    std::variant<measure::NdtRecord, measure::TracerouteRecord>;

inline bool is_ndt(const IngestEvent& ev) {
  return std::holds_alternative<measure::NdtRecord>(ev);
}
inline bool is_trace(const IngestEvent& ev) {
  return std::holds_alternative<measure::TracerouteRecord>(ev);
}

// Merges a campaign's tests and traceroutes into one arrival-ordered event
// log: ascending utc_time_hours, NDT results before traceroutes at equal
// times, original order preserved within each stream (both are already
// time-sorted by the campaign engine; a stable sort restores global order
// otherwise).
std::vector<IngestEvent> event_log_from(const measure::CampaignResult& result);

// Columnar twin: materializes each record and produces the identical log
// (same events, same order, same bytes) as the classic overload would for
// the equivalent CampaignResult.
std::vector<IngestEvent> event_log_from(
    const measure::ColumnarCampaignResult& result);

// Order-sensitive fingerprint of an event log (or a prefix of one), built
// from the same per-record byte sequences as measure/fingerprint. Two logs
// with equal fingerprints replay identically.
std::uint64_t fingerprint(const std::vector<IngestEvent>& log,
                          std::size_t prefix);

}  // namespace netcong::serve
