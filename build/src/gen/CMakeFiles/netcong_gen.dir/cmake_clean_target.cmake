file(REMOVE_RECURSE
  "libnetcong_gen.a"
)
