#include "measure/ark.h"

namespace netcong::measure {

std::vector<TracerouteRecord> ark_full_prefix_campaign(
    const gen::World& world, const route::Forwarder& fwd, std::uint32_t vp,
    const ArkCampaignOptions& options, util::Rng& rng) {
  std::vector<TracerouteRecord> out;
  const auto& prefixes = world.topo->announced_prefixes();
  out.reserve(prefixes.size());
  for (const auto& [prefix, origin] : prefixes) {
    topo::IpAddr target = prefix.nth(1);
    out.push_back(run_traceroute(*world.topo, fwd, vp, target,
                                 options.utc_time_hours, options.traceroute,
                                 rng));
  }
  return out;
}

std::vector<TracerouteRecord> ark_targeted_campaign(
    const gen::World& world, const route::Forwarder& fwd, std::uint32_t vp,
    const std::vector<std::uint32_t>& targets,
    const ArkCampaignOptions& options, util::Rng& rng) {
  std::vector<TracerouteRecord> out;
  out.reserve(targets.size());
  for (std::uint32_t t : targets) {
    out.push_back(run_traceroute(*world.topo, fwd, vp,
                                 world.topo->host(t).addr,
                                 options.utc_time_hours, options.traceroute,
                                 rng));
  }
  return out;
}

}  // namespace netcong::measure
