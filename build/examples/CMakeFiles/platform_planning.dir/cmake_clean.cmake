file(REMOVE_RECURSE
  "CMakeFiles/platform_planning.dir/platform_planning.cpp.o"
  "CMakeFiles/platform_planning.dir/platform_planning.cpp.o.d"
  "platform_planning"
  "platform_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
