// The WAL and its codec (DESIGN.md §12): frame round-trips are bit-exact,
// every malformed input gets a typed classification (never a crash or an
// over-read), segments rotate and recover, and the deterministic fault
// sites — torn write, fsync failure — behave like the crashes they model.
// The ingest.wal_* properties drive the same contracts on random worlds;
// these tests pin them on the cached tiny world with hand-placed damage so
// a failure localizes to one code path.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "gen/workload.h"
#include "helpers.h"
#include "infer/datasets.h"
#include "measure/ndt.h"
#include "measure/platform.h"
#include "route/bgp.h"
#include "route/forwarding.h"
#include "serve/codec.h"
#include "serve/event.h"
#include "serve/wal.h"
#include "sim/faults.h"
#include "sim/throughput.h"

namespace netcong::serve {
namespace {

namespace fs = std::filesystem;

struct Stack {
  explicit Stack(const gen::World& w)
      : world(w),
        bgp(*w.topo),
        fwd(*w.topo, bgp),
        model(*w.topo, *w.traffic),
        mlab("mlab", *w.topo, w.mlab_servers) {}
  const gen::World& world;
  route::BgpRouting bgp;
  route::Forwarder fwd;
  sim::ThroughputModel model;
  measure::Platform mlab;
};

Stack& stack() {
  static Stack s(test::tiny_world());
  return s;
}

const std::vector<IngestEvent>& event_log() {
  static const std::vector<IngestEvent> log = [] {
    Stack& s = stack();
    std::vector<gen::TestRequest> schedule;
    for (int round = 0; round < 2; ++round) {
      for (std::size_t i = 0; i < s.world.clients.size(); ++i) {
        schedule.push_back(
            {s.world.clients[i],
             10.0 + round * 0.05 + static_cast<double>(i) * 0.003});
      }
    }
    measure::NdtCampaign campaign(s.world, s.fwd, s.model, s.mlab,
                                  measure::CampaignConfig{});
    util::Rng rng(20170401);
    return event_log_from(campaign.run(schedule, rng));
  }();
  return log;
}

// A scratch directory removed on scope exit.
struct TempDir {
  TempDir() {
    static int counter = 0;
    path = (fs::temp_directory_path() /
            ("netcong-waltest-" + std::to_string(::getpid()) + "-" +
             std::to_string(counter++)))
               .string();
    fs::remove_all(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

std::uint64_t file_size(const std::string& path) {
  return static_cast<std::uint64_t>(fs::file_size(path));
}

TEST(CodecTest, RoundTripIsBitExact) {
  const auto& log = event_log();
  ASSERT_FALSE(log.empty());
  std::vector<IngestEvent> decoded;
  for (const IngestEvent& ev : log) {
    std::vector<std::uint8_t> buf;
    append_frame(ev, buf);
    ASSERT_GE(buf.size(), kFrameHeaderBytes);
    // Header invariants: version byte, kind = variant index, reserved zero.
    EXPECT_EQ(buf[8], kFrameVersion);
    EXPECT_EQ(buf[9], is_ndt(ev) ? 0 : 1);
    EXPECT_EQ(buf[10], 0);
    EXPECT_EQ(buf[11], 0);
    FrameView frame;
    std::size_t consumed = 0;
    ASSERT_EQ(parse_frame(buf.data(), buf.size(), &frame, &consumed),
              FrameError::kNone);
    EXPECT_EQ(consumed, buf.size());
    util::Result<IngestEvent> back = decode_event(frame);
    ASSERT_TRUE(back.ok()) << back.error();
    decoded.push_back(std::move(back.value()));
  }
  // fingerprint hashes every field of every record: equality here is the
  // bit-exactness proof WAL replay relies on.
  EXPECT_EQ(fingerprint(decoded, decoded.size()),
            fingerprint(log, log.size()));
}

TEST(CodecTest, EveryDamageModeGetsATypedError) {
  std::vector<std::uint8_t> buf;
  append_frame(event_log().front(), buf);
  FrameView frame;
  std::size_t consumed = 0;

  // Truncation at every possible split point: always kTruncated, and
  // consumed stays 0 (nothing may be skipped on an incomplete frame).
  for (std::size_t n = 0; n < buf.size(); ++n) {
    consumed = 1;
    EXPECT_EQ(parse_frame(buf.data(), n, &frame, &consumed),
              FrameError::kTruncated)
        << "prefix " << n;
    EXPECT_EQ(consumed, 0u);
  }

  auto corrupt = [&](std::size_t offset, std::uint8_t value) {
    std::vector<std::uint8_t> bad = buf;
    bad[offset] = value;
    return parse_frame(bad.data(), bad.size(), &frame, &consumed);
  };
  // Version and reserved bytes are checked before the CRC so a torn header
  // classifies precisely.
  EXPECT_EQ(corrupt(8, 99), FrameError::kBadVersion);
  EXPECT_EQ(corrupt(10, 1), FrameError::kBadVersion);
  EXPECT_EQ(corrupt(9, 7), FrameError::kBadKind);
  // A flipped payload byte is a checksum mismatch.
  EXPECT_EQ(corrupt(kFrameHeaderBytes, buf[kFrameHeaderBytes] ^ 0x40),
            FrameError::kBadChecksum);
  // A flipped *kind* byte within the known range must also be caught — the
  // CRC covers it, so an NDT record can never decode as a traceroute.
  {
    std::vector<std::uint8_t> bad = buf;
    bad[9] ^= 1;
    EXPECT_EQ(parse_frame(bad.data(), bad.size(), &frame, &consumed),
              FrameError::kBadChecksum);
  }
  // A declared length beyond the cap is rejected before any allocation.
  {
    std::vector<std::uint8_t> bad = buf;
    std::uint32_t huge = kMaxFramePayload + 1;
    std::memcpy(bad.data(), &huge, sizeof(huge));
    EXPECT_EQ(parse_frame(bad.data(), bad.size(), &frame, &consumed),
              FrameError::kOversize);
  }
  // Every error has a printable name.
  for (FrameError e :
       {FrameError::kNone, FrameError::kTruncated, FrameError::kBadVersion,
        FrameError::kBadKind, FrameError::kOversize, FrameError::kBadChecksum,
        FrameError::kBadPayload}) {
    EXPECT_NE(frame_error_name(e), nullptr);
    EXPECT_GT(std::strlen(frame_error_name(e)), 0u);
  }
}

TEST(CodecTest, ValidFrameWithGarbagePayloadFailsDecodeNotParse) {
  // Hand-build a frame whose header and CRC are self-consistent but whose
  // payload is not a serialized record: parse accepts it (the bytes are
  // intact), decode must classify it without over-reading.
  std::vector<std::uint8_t> payload = {0xff, 0xff, 0xff, 0xff};
  std::vector<std::uint8_t> buf(kFrameHeaderBytes);
  std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  std::memcpy(buf.data(), &len, sizeof(len));
  buf[8] = kFrameVersion;
  buf[9] = 0;  // NDT
  buf[10] = buf[11] = 0;
  buf.insert(buf.end(), payload.begin(), payload.end());
  std::uint32_t crc = crc32c(buf.data() + 8, 4 + payload.size());
  std::memcpy(buf.data() + 4, &crc, sizeof(crc));

  FrameView frame;
  std::size_t consumed = 0;
  ASSERT_EQ(parse_frame(buf.data(), buf.size(), &frame, &consumed),
            FrameError::kNone);
  EXPECT_FALSE(decode_event(frame).ok());
}

TEST(WalWriterTest, RotatesSegmentsAndRecoversEverything) {
  TempDir dir;
  const auto& log = event_log();
  ASSERT_GT(log.size(), 4u);

  WalWriter wal;
  WalOptions opts;
  opts.segment_bytes = 512;  // force many rotations
  ASSERT_TRUE(wal.open(dir.path, opts).ok());
  for (const IngestEvent& ev : log) {
    ASSERT_TRUE(wal.append(ev).ok());
  }
  ASSERT_TRUE(wal.sync().ok());
  WalStats st = wal.stats();
  EXPECT_EQ(st.appended, log.size());
  EXPECT_GT(st.segments_created, 1u);
  EXPECT_EQ(st.torn_writes, 0u);
  wal.close();
  EXPECT_FALSE(wal.is_open());

  std::vector<std::string> segs = wal_segments(dir.path);
  EXPECT_EQ(segs.size(), st.segments_created);
  // Every segment holds the magic plus at least one record.
  for (const std::string& s : segs) EXPECT_GT(file_size(s), kWalMagicBytes);

  util::Result<WalRecovery> rec = recover_wal(dir.path);
  ASSERT_TRUE(rec.ok()) << rec.error();
  EXPECT_FALSE(rec.value().truncated_tail);
  EXPECT_EQ(rec.value().segments_scanned, segs.size());
  ASSERT_EQ(rec.value().events.size(), log.size());
  EXPECT_EQ(fingerprint(rec.value().events, log.size()),
            fingerprint(log, log.size()));
}

TEST(WalWriterTest, ReopenNeverTouchesOldSegments) {
  TempDir dir;
  const auto& log = event_log();
  std::size_t half = log.size() / 2;
  ASSERT_GT(half, 0u);

  WalOptions opts;
  opts.segment_bytes = 1024;
  {
    WalWriter first;
    ASSERT_TRUE(first.open(dir.path, opts).ok());
    for (std::size_t i = 0; i < half; ++i) {
      ASSERT_TRUE(first.append(log[i]).ok());
    }
  }
  std::vector<std::string> before = wal_segments(dir.path);
  std::vector<std::uint64_t> sizes_before;
  for (const std::string& s : before) sizes_before.push_back(file_size(s));

  {
    WalWriter second;
    ASSERT_TRUE(second.open(dir.path, opts).ok());
    for (std::size_t i = half; i < log.size(); ++i) {
      ASSERT_TRUE(second.append(log[i]).ok());
    }
  }
  // The first writer's segments are byte-identical in size — the second
  // writer started a strictly newer segment.
  std::vector<std::string> after = wal_segments(dir.path);
  ASSERT_GT(after.size(), before.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(after[i], before[i]);
    EXPECT_EQ(file_size(after[i]), sizes_before[i]);
  }

  util::Result<WalRecovery> rec = recover_wal(dir.path);
  ASSERT_TRUE(rec.ok()) << rec.error();
  ASSERT_EQ(rec.value().events.size(), log.size());
  EXPECT_EQ(fingerprint(rec.value().events, log.size()),
            fingerprint(log, log.size()));
}

TEST(WalRecoveryTest, MissingAndEmptyDirs) {
  TempDir dir;
  EXPECT_FALSE(recover_wal(dir.path + "/nope").ok());
  fs::create_directories(dir.path);
  util::Result<WalRecovery> rec = recover_wal(dir.path);
  ASSERT_TRUE(rec.ok()) << rec.error();
  EXPECT_TRUE(rec.value().events.empty());
  EXPECT_FALSE(rec.value().truncated_tail);
}

TEST(WalRecoveryTest, TornTailIsTruncatedAndRescansClean) {
  TempDir dir;
  const auto& log = event_log();
  WalWriter wal;
  WalOptions opts;
  opts.segment_bytes = 1u << 20;  // keep everything in one segment
  ASSERT_TRUE(wal.open(dir.path, opts).ok());
  for (const IngestEvent& ev : log) ASSERT_TRUE(wal.append(ev).ok());
  wal.close();

  std::vector<std::string> segs = wal_segments(dir.path);
  ASSERT_EQ(segs.size(), 1u);
  // Cut the segment mid-way through its last frame: header survives, so
  // recovery sees a truncated frame, not a checksum error.
  std::uint64_t size = file_size(segs[0]);
  fs::resize_file(segs[0], size - 3);

  util::Result<WalRecovery> rec = recover_wal(dir.path);
  ASSERT_TRUE(rec.ok()) << rec.error();
  ASSERT_EQ(rec.value().events.size(), log.size() - 1);
  EXPECT_TRUE(rec.value().truncated_tail);
  EXPECT_GT(rec.value().torn_bytes, 0u);
  EXPECT_FALSE(rec.value().tail_error.empty());
  EXPECT_EQ(fingerprint(rec.value().events, log.size() - 1),
            fingerprint(log, log.size() - 1));

  // Repair truncated the torn frame in place: a rescan is clean and the
  // repaired log accepts new appends after the surviving prefix.
  util::Result<WalRecovery> again = recover_wal(dir.path);
  ASSERT_TRUE(again.ok()) << again.error();
  EXPECT_FALSE(again.value().truncated_tail);
  EXPECT_EQ(again.value().events.size(), log.size() - 1);

  WalWriter reopened;
  ASSERT_TRUE(reopened.open(dir.path, opts).ok());
  ASSERT_TRUE(reopened.append(log.back()).ok());
  reopened.close();
  util::Result<WalRecovery> full = recover_wal(dir.path);
  ASSERT_TRUE(full.ok()) << full.error();
  ASSERT_EQ(full.value().events.size(), log.size());
}

TEST(WalRecoveryTest, BadMagicDropsTheSegmentAndEverythingAfter) {
  TempDir dir;
  const auto& log = event_log();
  WalWriter wal;
  WalOptions opts;
  opts.segment_bytes = 1024;
  ASSERT_TRUE(wal.open(dir.path, opts).ok());
  for (const IngestEvent& ev : log) ASSERT_TRUE(wal.append(ev).ok());
  wal.close();

  std::vector<std::string> segs = wal_segments(dir.path);
  ASSERT_GE(segs.size(), 3u);
  // Count the records that live strictly before the segment we damage.
  std::size_t damaged = segs.size() / 2;
  util::Result<WalRecovery> clean = recover_wal(dir.path, /*repair=*/false);
  ASSERT_TRUE(clean.ok());
  ASSERT_EQ(clean.value().events.size(), log.size());
  {
    std::fstream f(segs[damaged],
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(0);
    f.write("XXXXXXXX", 8);
  }

  util::Result<WalRecovery> rec = recover_wal(dir.path);
  ASSERT_TRUE(rec.ok()) << rec.error();
  EXPECT_TRUE(rec.value().truncated_tail);
  EXPECT_EQ(rec.value().tail_error, "bad segment magic");
  EXPECT_EQ(rec.value().segments_dropped, segs.size() - damaged);
  EXPECT_LT(rec.value().events.size(), log.size());
  std::size_t n = rec.value().events.size();
  EXPECT_EQ(fingerprint(rec.value().events, n), fingerprint(log, n));
  // Only the undamaged prefix of segments remains on disk.
  EXPECT_EQ(wal_segments(dir.path).size(), damaged);
  util::Result<WalRecovery> again = recover_wal(dir.path);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again.value().truncated_tail);
}

TEST(WalFaultTest, TornWriteKillsTheWriterAndLeavesARecoverablePrefix) {
  TempDir dir;
  const auto& log = event_log();
  ASSERT_GE(log.size(), 4u);

  // Two writers stage the crash deterministically: a clean one persists
  // the first two events, then one with torn-write probability 1 whose
  // very first append tears.
  {
    WalWriter clean;
    WalOptions opts;
    opts.segment_bytes = 1u << 20;
    ASSERT_TRUE(clean.open(dir.path, opts).ok());
    ASSERT_TRUE(clean.append(log[0]).ok());
    ASSERT_TRUE(clean.append(log[1]).ok());
  }
  sim::FaultConfig fcfg;
  fcfg.enabled = true;
  fcfg.wal_torn_write_prob = 1.0;
  sim::FaultInjector always(fcfg, 424242);
  WalWriter doomed;
  WalOptions opts;
  opts.segment_bytes = 1u << 20;
  opts.faults = &always;
  ASSERT_TRUE(doomed.open(dir.path, opts).ok());
  util::Status st = doomed.append(log[2]);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(doomed.failed());
  // The dead process never accepts more work.
  EXPECT_FALSE(doomed.append(log[3]).ok());
  WalStats stats = doomed.stats();
  EXPECT_EQ(stats.torn_writes, 1u);
  EXPECT_EQ(stats.appended, 0u);
  EXPECT_GT(stats.bytes_written, kWalMagicBytes);  // the partial frame
  doomed.close();

  // Recovery: the two clean events survive; the torn frame is cut.
  util::Result<WalRecovery> rec = recover_wal(dir.path);
  ASSERT_TRUE(rec.ok()) << rec.error();
  EXPECT_TRUE(rec.value().truncated_tail);
  ASSERT_EQ(rec.value().events.size(), 2u);
  EXPECT_EQ(fingerprint(rec.value().events, 2), fingerprint(log, 2));
}

TEST(WalFaultTest, InjectedFsyncFailureIsCountedNotFatal) {
  TempDir dir;
  const auto& log = event_log();
  sim::FaultConfig fcfg;
  fcfg.enabled = true;
  fcfg.wal_fsync_fail_prob = 1.0;
  sim::FaultInjector inj(fcfg, 7);

  WalWriter wal;
  WalOptions opts;
  opts.fsync_each_append = true;
  opts.faults = &inj;
  ASSERT_TRUE(wal.open(dir.path, opts).ok());
  std::size_t n = std::min<std::size_t>(log.size(), 8);
  for (std::size_t i = 0; i < n; ++i) {
    // The append itself succeeds: data reached the page cache even though
    // every fsync "failed".
    ASSERT_TRUE(wal.append(log[i]).ok());
  }
  WalStats st = wal.stats();
  EXPECT_EQ(st.appended, n);
  EXPECT_EQ(st.syncs, n);
  EXPECT_EQ(st.fsync_failures, n);
  EXPECT_FALSE(wal.failed());
  wal.close();

  // Same-process recovery still sees everything (the cache is coherent);
  // whether it would survive power loss is exactly what the counter is
  // there to report.
  util::Result<WalRecovery> rec = recover_wal(dir.path);
  ASSERT_TRUE(rec.ok()) << rec.error();
  ASSERT_EQ(rec.value().events.size(), n);
  EXPECT_EQ(fingerprint(rec.value().events, n), fingerprint(log, n));
}

}  // namespace
}  // namespace netcong::serve
