# Empty dependencies file for netcong_util.
# This may be replaced when dependencies are built.
