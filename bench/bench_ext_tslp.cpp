// Extension: TSLP (time-series latency probing), the paper's Section 7
// recommendation for platforms that cannot afford bulk throughput tests.
// From an AT&T vantage point, probe both sides of every GTT interconnection
// (congested in the planted scenario) and, as control, both sides of
// Level3 interconnections (uncongested); report the near/far RTT
// differentials and the resulting congestion verdicts.

#include <cstdio>

#include "common.h"
#include "core/tslp_analysis.h"
#include "measure/tslp.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace netcong;
  bench::print_header("Extension TSLP",
                      "Latency-based congestion localization without "
                      "throughput tests");

  bench::Context ctx(bench::bench_config());
  util::Rng rng(55);

  // The AT&T vantage point.
  std::uint32_t vp = 0;
  for (std::uint32_t v : ctx.world.ark_vps) {
    if (ctx.isp_of.count(ctx.world.topo->host(v).asn) &&
        ctx.isp_of.at(ctx.world.topo->host(v).asn) == "AT&T") {
      vp = v;
    }
  }
  const topo::Host& vp_host = ctx.world.topo->host(vp);
  int vp_offset = ctx.world.topo->city(vp_host.city).utc_offset_hours;
  std::printf("vantage point: %s in %s (AT&T)\n", vp_host.label.c_str(),
              ctx.world.topo->city(vp_host.city).name.c_str());

  util::TextTable table({"link (near -> far)", "neighbor", "near elev ms",
                         "far elev ms", "differential", "TSLP verdict",
                         "truth"});

  auto probe_pair = [&](topo::Asn neighbor, const char* label, int max_links) {
    int done = 0;
    for (topo::LinkId l :
         ctx.world.topo->interdomain_links(vp_host.asn, neighbor)) {
      if (done++ >= max_links) break;
      const topo::Link& link = ctx.world.topo->link(l);
      // Near = the AT&T-side interface, far = the neighbor's side.
      bool a_is_vp = link.as_a == vp_host.asn;
      topo::IpAddr near = ctx.world.topo
                              ->iface(a_is_vp ? link.side_a : link.side_b)
                              .addr;
      topo::IpAddr far = ctx.world.topo
                             ->iface(a_is_vp ? link.side_b : link.side_a)
                             .addr;
      measure::TslpOptions opt;
      opt.days = 5;
      auto series = measure::run_tslp(ctx.world, ctx.fwd, vp, near, far, opt,
                                      rng);
      core::TslpAnalysisOptions aopt;
      aopt.vp_utc_offset_hours = vp_offset;
      auto verdict = core::analyze_tslp(series, aopt);
      bool truth = ctx.world.traffic->congested_at_peak(l);
      table.add_row({util::format("%s -> %s", near.to_string().c_str(),
                                  far.to_string().c_str()),
                     label, util::format("%.1f", verdict.near_elevation_ms),
                     util::format("%.1f", verdict.far_elevation_ms),
                     util::format("%.1f", verdict.differential_ms),
                     verdict.congested ? "CONGESTED" : "clear",
                     truth ? "congested" : "clear"});
    }
  };

  probe_pair(ctx.world.transit_asns.at("GTT"), "GTT", 6);
  probe_pair(3356, "Level3", 6);

  std::printf("%s", table.render().c_str());
  bench::print_footnote(
      "a far-side-only peak RTT elevation localizes the standing queue to "
      "the interdomain link itself — evidence obtainable from low-rate "
      "probes on Ark/BISmark/RIPE-Atlas-class platforms (paper Section 7)");
  return 0;
}
