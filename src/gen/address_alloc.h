#pragma once

// Sequential IPv4 block allocator for the synthetic address plan. Hands out
// aligned CIDR blocks from 1.0.0.0 upward; never reuses space. Each AS gets
// separate pools for client addresses, infrastructure (/30 and /31 link
// subnets, router loopbacks) and hosting, which mirrors how real networks
// carve their allocations.

#include <cstdint>

#include "topo/ip.h"

namespace netcong::gen {

class AddressAllocator {
 public:
  // Allocates the next len-aligned block.
  topo::Prefix alloc_block(std::uint8_t len);

  // Total address space handed out so far.
  std::uint64_t allocated() const { return next_; }

 private:
  std::uint64_t next_ = 1u << 24;  // start at 1.0.0.0
};

// Carves consecutive point-to-point subnets out of a pool.
class P2pCarver {
 public:
  explicit P2pCarver(topo::Prefix pool) : pool_(pool) {}

  struct Subnet {
    topo::IpAddr a;
    topo::IpAddr b;
    topo::Prefix prefix;
  };

  // Next /30 (or /31) pair; returns false when the pool is exhausted.
  bool next(bool use_slash31, Subnet& out);

 private:
  topo::Prefix pool_;
  std::uint32_t offset_ = 0;
};

// Sequential single-address carver (clients, servers, loopbacks).
class HostCarver {
 public:
  explicit HostCarver(topo::Prefix pool) : pool_(pool) {}
  bool next(topo::IpAddr& out);
  topo::Prefix pool() const { return pool_; }

 private:
  topo::Prefix pool_;
  std::uint32_t offset_ = 1;  // skip .0
};

}  // namespace netcong::gen
