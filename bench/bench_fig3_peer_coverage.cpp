// Figure 3 / Section 5.2: the same coverage analysis restricted to *peer*
// interconnections — the links that matter for interdomain congestion
// disputes. Paper: M-Lab covered 2.8-30% of peer ASes (e.g. 12 of
// Comcast's 41), Speedtest 14-86%.

#include <cstdio>

#include "common.h"
#include "gen/paper_data.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace netcong;
  bench::print_header("Figure 3",
                      "Coverage of peer interconnections per Ark VP");

  bench::Context ctx(bench::bench_config());
  auto coverage = bench::run_coverage(ctx, /*snapshot_2017=*/true, 5);

  util::TextTable table({"VP", "Network", "peer AS (bdrmap)", "M-Lab",
                         "Speedtest", "M-Lab %", "ST %", "peer Rtr (bdrmap)",
                         "M-Lab Rtr", "ST Rtr"});
  double mlab_min = 1e9, mlab_max = -1, st_min = 1e9, st_max = -1;
  for (const auto& c : coverage) {
    double m = core::VpCoverage::pct(c.mlab_peers.as_level.size(),
                                     c.discovered_peers.as_level.size());
    double s = core::VpCoverage::pct(c.speedtest_peers.as_level.size(),
                                     c.discovered_peers.as_level.size());
    if (!c.discovered_peers.as_level.empty()) {
      mlab_min = std::min(mlab_min, m);
      mlab_max = std::max(mlab_max, m);
      st_min = std::min(st_min, s);
      st_max = std::max(st_max, s);
    }
    table.add_row({c.vp_label, c.network,
                   std::to_string(c.discovered_peers.as_level.size()),
                   std::to_string(c.mlab_peers.as_level.size()),
                   std::to_string(c.speedtest_peers.as_level.size()),
                   bench::pct(m), bench::pct(s),
                   std::to_string(c.discovered_peers.router_level.size()),
                   std::to_string(c.mlab_peers.router_level.size()),
                   std::to_string(c.speedtest_peers.router_level.size())});
  }
  std::printf("%s", table.render().c_str());

  auto bounds = gen::paper::sec52_peer_bounds();
  std::printf(
      "\nours:  M-Lab peer coverage %.1f%%-%.1f%%, Speedtest %.1f%%-%.1f%%\n",
      mlab_min, mlab_max, st_min, st_max);
  std::printf(
      "paper: M-Lab peer coverage %.1f%%-%.1f%%, Speedtest %.1f%%-%.1f%% "
      "(Comcast: %d/%d via M-Lab, %d via Speedtest)\n",
      bounds.mlab_min_pct, bounds.mlab_max_pct, bounds.speedtest_min_pct,
      bounds.speedtest_max_pct, bounds.comcast_peers_mlab,
      bounds.comcast_peers_total, bounds.comcast_peers_speedtest);
  return 0;
}
