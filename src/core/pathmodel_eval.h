#pragma once

// Ground-truth evaluation harness for the infer/pathmodel classifier
// (paper §6 / ROADMAP item 3): a deterministic suite of two-hop packet
// simulations whose bottleneck placement and limiting factor are known by
// construction, run under each congestion control, scored against the
// classifier's labels, and compared with the §6.2 fixed-threshold baseline.
//
// Scenario classes (per test-CC, with per-instance jitter over access rate,
// RTT, buffers, and competing-flow counts):
//
//   bandwidth   — solo test flow, shallow-buffered access bottleneck: the
//                 healthy case; the flow fills the pipe it is entitled to.
//   sender      — solo test flow with a small sender window (≈0.3×BDP):
//                 low throughput with zero congestion, the paper's warning
//                 case for naive thresholds.
//   interdomain — constrained interdomain link with cross traffic running
//                 since t=0; the test joins an already-standing queue.
//   access      — constrained access link where competing local flows start
//                 alongside the test (subscriber-induced congestion).
//
// Truth for the congested-vs-not comparison: interdomain and access are
// congestion_limited; bandwidth and sender are not.

#include <string>
#include <vector>

#include "infer/pathmodel.h"
#include "sim/packet/access_interdomain.h"

namespace netcong::core {

enum class PathModelScenario {
  kBandwidth,
  kSender,
  kInterdomain,
  kAccess,
  kAll,
};

const char* pathmodel_scenario_name(PathModelScenario s);
bool parse_pathmodel_scenario(const std::string& name, PathModelScenario* out);

struct PathModelCase {
  PathModelScenario scenario = PathModelScenario::kBandwidth;
  sim::packet::CcAlgo cc = sim::packet::CcAlgo::kNewReno;
  infer::FlowLabel truth_label = infer::FlowLabel::kBandwidthLimited;
  infer::BottleneckSite truth_site = infer::BottleneckSite::kNone;

  // Scenario knobs (for reporting / the baseline's expected rate).
  double access_mbps = 0.0;
  double rtt_ms = 0.0;
  int competing_flows = 0;

  // Measured outcome.
  double goodput_mbps = 0.0;
  // The §6.2-style baseline statistic: relative shortfall against the
  // advertised access rate, max(0, 1 - goodput/access).
  double baseline_drop = 0.0;
  infer::PathModelResult result;
};

// Runs `per_class` jittered instances of each requested scenario class
// under `cc`. Deterministic: instance parameters derive from the index, the
// simulator is seedless, and insertion order is fixed.
std::vector<PathModelCase> run_pathmodel_suite(
    sim::packet::CcAlgo cc, PathModelScenario which, int per_class,
    const infer::PathModelConfig& config = {});

struct BinaryScore {
  int tp = 0, fp = 0, fn = 0, tn = 0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

struct PathModelScore {
  // Pathmodel congested-vs-not (predicted congested ⇔ congestion_limited).
  BinaryScore congested;
  // Best fixed threshold on baseline_drop (oracle-picked per suite — the
  // most generous version of the §6.2 baseline).
  double baseline_best_threshold = 0.0;
  double baseline_best_f1 = 0.0;
  // Exact three-way label accuracy.
  double label_accuracy = 0.0;
  // Access-vs-interdomain accuracy over truth-congested cases (a missed
  // congestion call counts as a localization miss).
  int localization_total = 0;
  int localization_correct = 0;
  double localization_accuracy = 0.0;
};

PathModelScore score_pathmodel(const std::vector<PathModelCase>& cases);

}  // namespace netcong::core
