#pragma once

// Droptail FIFO bottleneck: serializes packets at a fixed rate with a finite
// buffer. Departures are delivered via a callback through the event queue.

#include <cstdint>
#include <functional>

#include "sim/packet/event_queue.h"

namespace netcong::sim::packet {

struct Packet {
  int flow = 0;
  std::int64_t seq = 0;       // data sequence number (packet index)
  int size_bytes = 1500;
  double sent_time = 0.0;     // when the source transmitted it
  bool retransmit = false;
};

class DropTailQueue {
 public:
  using DeliverFn = std::function<void(const Packet&)>;

  DropTailQueue(EventQueue& events, double rate_mbps, int buffer_packets,
                DeliverFn deliver);

  // Offers a packet to the queue at the current time. Returns false (drop)
  // if the buffer is full.
  bool enqueue(const Packet& p);

  int backlog_packets() const { return backlog_; }
  // Current queueing delay a newly arriving packet would experience.
  double queue_delay_s() const;
  std::int64_t drops() const { return drops_; }
  std::int64_t delivered() const { return delivered_; }

 private:
  void depart(const Packet& p);

  EventQueue* events_;
  double bytes_per_s_;
  int buffer_packets_;
  DeliverFn deliver_;
  int backlog_ = 0;
  double busy_until_ = 0.0;
  std::int64_t drops_ = 0;
  std::int64_t delivered_ = 0;
};

}  // namespace netcong::sim::packet
