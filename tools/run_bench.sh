#!/usr/bin/env bash
# Runs the full bench suite and aggregates every BENCH_<label>.json into a
# single BENCH_all.json:
#
#   tools/run_bench.sh [BUILD_DIR]        # default: build
#
# NETCONG_BENCH_SCALE (full|small|tiny) controls the world size; this
# script defaults it to `small` so an unconfigured run finishes in minutes
# — export NETCONG_BENCH_SCALE=full for the paper-scale numbers.
# Bench binaries run from $BUILD/bench-out, so the JSON artifacts (and
# BENCH_all.json) land there instead of cluttering the build root.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${1:-build}
export NETCONG_BENCH_SCALE=${NETCONG_BENCH_SCALE:-small}

cmake -B "$BUILD" -S . >/dev/null
cmake --build "$BUILD" -j "$(nproc)" >/dev/null
BUILD_ABS=$(cd "$BUILD" && pwd)

OUT="$BUILD_ABS/bench-out"
mkdir -p "$OUT"

shopt -s nullglob
benches=("$BUILD_ABS"/bench/bench_*)
if [ ${#benches[@]} -eq 0 ]; then
  echo "run_bench.sh: no bench binaries under $BUILD_ABS/bench" >&2
  exit 1
fi

failed=()
for bin in "${benches[@]}"; do
  [ -f "$bin" ] && [ -x "$bin" ] || continue
  name=$(basename "$bin")
  echo "=== $name (scale: $NETCONG_BENCH_SCALE) ==="
  case "$name" in
    bench_micro_*)
      # google-benchmark binaries: short repetitions, no BENCH json.
      (cd "$OUT" && "$bin" --benchmark_min_time=0.05) || failed+=("$name")
      ;;
    *)
      (cd "$OUT" && "$bin") || failed+=("$name")
      ;;
  esac
done

"$BUILD_ABS/tools/bench_aggregate" "$OUT"

if [ ${#failed[@]} -gt 0 ]; then
  echo "run_bench.sh: FAILED: ${failed[*]}" >&2
  exit 1
fi
echo "run_bench.sh: all benches passed; combined report: $OUT/BENCH_all.json"
