#pragma once

// Small string helpers shared across modules.

#include <string>
#include <string_view>
#include <vector>

namespace netcong::util {

// Splits on a single-character delimiter; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char delim);

// Joins with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

std::string to_lower(std::string_view s);
std::string to_upper(std::string_view s);

// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Formats a double with the given precision, trimming trailing zeros.
std::string format_compact(double v, int max_decimals = 2);

// "1234567" -> "1,234,567".
std::string with_thousands(long long v);

}  // namespace netcong::util
