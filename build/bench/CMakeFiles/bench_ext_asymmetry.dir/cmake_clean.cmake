file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_asymmetry.dir/bench_ext_asymmetry.cpp.o"
  "CMakeFiles/bench_ext_asymmetry.dir/bench_ext_asymmetry.cpp.o.d"
  "CMakeFiles/bench_ext_asymmetry.dir/common.cpp.o"
  "CMakeFiles/bench_ext_asymmetry.dir/common.cpp.o.d"
  "bench_ext_asymmetry"
  "bench_ext_asymmetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_asymmetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
