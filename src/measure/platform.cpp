#include "measure/platform.h"

#include <algorithm>
#include <cassert>

#include "topo/geo.h"

namespace netcong::measure {

Platform::Platform(std::string name, const topo::Topology& topo,
                   std::vector<std::uint32_t> servers)
    : name_(std::move(name)),
      topo_(&topo),
      servers_(std::move(servers)),
      rank_cache_(std::make_shared<RankCache>()) {
  assert(!servers_.empty());
}

namespace {
// Servers sorted by distance from the client's city.
std::vector<std::pair<double, std::uint32_t>> ranked(
    const topo::Topology& topo, std::uint32_t client,
    const std::vector<std::uint32_t>& servers) {
  const topo::City& here = topo.city(topo.host(client).city);
  std::vector<std::pair<double, std::uint32_t>> out;
  out.reserve(servers.size());
  for (std::uint32_t s : servers) {
    const topo::City& c = topo.city(topo.host(s).city);
    out.emplace_back(topo::city_distance_km(here, c), s);
  }
  std::sort(out.begin(), out.end());
  return out;
}
}  // namespace

std::shared_ptr<const Platform::Ranking> Platform::ranked_from(
    std::uint32_t client) const {
  const std::uint32_t city = topo_->host(client).city.value;
  std::lock_guard<std::mutex> lock(rank_cache_->mu);
  auto it = rank_cache_->by_city.find(city);
  if (it != rank_cache_->by_city.end()) return it->second;
  auto r = std::make_shared<const Ranking>(ranked(*topo_, client, servers_));
  rank_cache_->by_city.try_emplace(city, r);
  return r;
}

std::uint32_t Platform::select_server(std::uint32_t client,
                                      util::Rng& rng) const {
  std::shared_ptr<const Ranking> rp = ranked_from(client);
  const Ranking& r = *rp;
  // Geo-IP is imprecise: occasionally the client is located wrongly and
  // lands on a distant server (this is how the real atl01 received tests
  // from clients whose paths crossed interconnections in DC and NYC).
  if (rng.chance(0.08)) {
    std::size_t n = std::min<std::size_t>(r.size(), 25);
    return r[static_cast<std::size_t>(
                 rng.uniform_int(0, static_cast<std::int64_t>(n) - 1))]
        .second;
  }
  // Otherwise all servers within 150 km of the nearest are interchangeable;
  // pick one uniformly (spreads load across co-located machines, as the
  // M-Lab scheduler does).
  double cutoff = r.front().first + 150.0;
  std::size_t n = 0;
  while (n < r.size() && r[n].first <= cutoff) ++n;
  return r[static_cast<std::size_t>(
               rng.uniform_int(0, static_cast<std::int64_t>(n) - 1))]
      .second;
}

std::vector<std::uint32_t> Platform::select_servers_region(
    std::uint32_t client, int count, util::Rng& rng) const {
  std::shared_ptr<const Ranking> rp = ranked_from(client);
  std::vector<std::uint32_t> out;
  for (const auto& [d, s] : *rp) {
    if (static_cast<int>(out.size()) >= count) break;
    out.push_back(s);
  }
  (void)rng;
  return out;
}

std::vector<std::uint32_t> Platform::nearest_servers(std::uint32_t client,
                                                     int count) const {
  std::shared_ptr<const Ranking> rp = ranked_from(client);
  std::vector<std::uint32_t> out;
  for (const auto& [d, s] : *rp) {
    if (static_cast<int>(out.size()) >= count) break;
    out.push_back(s);
  }
  return out;
}

}  // namespace netcong::measure
