// Adversarial-campaign detection bench (EXPERIMENTS.md §7): runs the
// standard crowdsourced NDT campaign under sim/adversary scenarios — a
// churn-fraction sweep plus a peering-withdrawal run — and scores the
// infer/anomaly change detector against the scenario ground truth
// (core/anomaly_eval). The no-detection baseline (an empty report) scores
// zero whenever the ground truth is non-empty, so the gate is simply that
// the detector matches at least one true epoch at every churn fraction > 0
// and recovers at least one detectable withdrawn crossing. Emits
// BENCH_adversary.json with per-fraction precision/recall/F1, wall times,
// and peak RSS.
//
//   NETCONG_ADVERSARY_DAYS=<n>  campaign length in days (default 7; the CI
//                               smoke test sets 2)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common.h"
#include "core/anomaly_eval.h"
#include "infer/anomaly.h"
#include "measure/adversary.h"
#include "sim/adversary.h"

namespace {

int days_from_env() {
  const char* env = std::getenv("NETCONG_ADVERSARY_DAYS");
  if (env == nullptr) return 7;
  int n = std::atoi(env);
  return n > 0 ? n : 7;
}

}  // namespace

int main() {
  using namespace netcong;

  const int days = days_from_env();
  const double tests_per_client = 6.0;
  // Mid-campaign epoch: enough bins on both sides for the detector's
  // baseline window and for post-epoch evidence to accumulate.
  const double epoch = days * 12.0;

  gen::GeneratorConfig cfg = bench::bench_config();
  bench::BenchRecorder recorder("adversary");

  bench::print_header("§7", "anomaly detection vs adversarial ground truth");
  std::printf("  %d-day campaign, epoch at hour %.0f, %.0f tests/client\n\n",
              days, epoch, tests_per_client);

  bench::Context ctx(cfg);

  // One honest campaign per scenario seed keeps PathCache warm across the
  // sweep; adversarial keys carry their own salt/view bits so entries never
  // collide between runs.
  auto run_campaign = [&](const sim::AdversaryScenario* adversary,
                          std::uint64_t seed) {
    util::Rng rng(seed);
    gen::WorkloadConfig wl;
    wl.days = days;
    wl.mean_tests_per_client = tests_per_client;
    auto schedule =
        gen::crowdsourced_schedule(ctx.world, ctx.world.clients, wl, rng);
    measure::Platform mlab = ctx.mlab_platform();
    measure::NdtCampaign campaign(ctx.world, ctx.fwd, ctx.model, mlab, {});
    campaign.set_path_cache(&ctx.path_cache);
    if (adversary != nullptr) campaign.set_adversary(adversary);
    return campaign.run(schedule, rng);
  };

  std::printf(
      "  %-14s | %6s %6s | %9s %9s %7s | %8s | %s\n"
      "  ---------------+---------------+-----------------------------+"
      "----------+---------\n",
      "scenario", "pairs", "churn", "precision", "recall", "F1",
      "baseline", "epochs");

  bool detector_wins = true;

  // -- churn-fraction sweep ------------------------------------------------
  const std::vector<double> fractions = {0.0, 0.15, 0.3, 0.6};
  for (double fraction : fractions) {
    sim::AdversaryConfig acfg =
        fraction > 0.0 ? sim::AdversaryConfig::churn(epoch, fraction)
                       : sim::AdversaryConfig{};
    sim::AdversaryScenario scenario(*ctx.world.topo, ctx.bgp, acfg,
                                    cfg.seed ^ 0xad5ull);
    char buf[32];
    std::snprintf(buf, sizeof buf, "churn_%d", int(fraction * 100 + 0.5));
    std::string label = buf;
    measure::CampaignResult result = recorder.time(
        label, [&] { return run_campaign(&scenario, cfg.seed + 7); });

    measure::AdversaryCampaignTruth truth =
        measure::annotate_campaign(scenario, *ctx.world.topo, result);
    core::AnomalyGroundTruth gt = core::ground_truth_of(truth);

    infer::AnomalyReport report;
    recorder.time(label + "_detect", [&] {
      report = infer::detect_anomalies(result, ctx.ip2as);
    });
    core::AnomalyScore score = core::score_anomalies(report, gt);
    core::AnomalyScore baseline = core::score_anomalies({}, gt);

    std::printf(
        "  %-14s | %6zu %6zu | %9.3f %9.3f %7.3f | %8.3f | %zu found, "
        "%zu true\n",
        label.c_str(), truth.pairs_total, truth.pairs_churned,
        score.epoch_precision, score.epoch_recall, score.epoch_f1,
        baseline.epoch_f1, report.epochs.size(), gt.epochs.size());

    recorder.stat(label, "pairs_total", double(truth.pairs_total));
    recorder.stat(label, "pairs_churned", double(truth.pairs_churned));
    recorder.stat(label, "tests", double(result.tests.size()));
    recorder.stat(label, "bins", double(report.bins));
    recorder.stat(label, "alarms", double(report.alarms.size()));
    recorder.stat(label, "epochs_detected", double(report.epochs.size()));
    recorder.stat(label, "epoch_precision", score.epoch_precision);
    recorder.stat(label, "epoch_recall", score.epoch_recall);
    recorder.stat(label, "epoch_f1", score.epoch_f1);
    recorder.stat(label, "baseline_f1", baseline.epoch_f1);

    if (fraction > 0.0 && truth.pairs_churned > 0) {
      // The gate: the detector must beat the zero-scoring no-detection
      // baseline — i.e. match at least one true epoch.
      if (!(score.epoch_f1 > baseline.epoch_f1 && score.epochs_matched > 0)) {
        detector_wins = false;
        std::printf("    ^ GATE FAIL: no epoch matched at fraction %.2f\n",
                    fraction);
      }
    } else if (fraction == 0.0 && !report.epochs.empty()) {
      // Clean campaign: false alarms are reported but do not gate — the
      // CUSUM thresholds trade a small false-positive rate for onset lag.
      std::printf("    ^ note: %zu false epoch(s) on the clean campaign\n",
                  report.epochs.size());
    }
  }

  // -- peering withdrawal --------------------------------------------------
  {
    sim::AdversaryConfig acfg = sim::AdversaryConfig::withdrawal(epoch, 24);
    sim::AdversaryScenario scenario(*ctx.world.topo, ctx.bgp, acfg,
                                    cfg.seed ^ 0xad5ull);
    measure::CampaignResult result = recorder.time(
        "withdraw_24", [&] { return run_campaign(&scenario, cfg.seed + 7); });

    measure::AdversaryCampaignTruth truth =
        measure::annotate_campaign(scenario, *ctx.world.topo, result);
    // Score withdrawn recall against the detectable subset only: a link no
    // pre-epoch probe ever crossed leaves no absence to detect.
    auto detectable = measure::detectable_withdrawn(result, truth);
    core::AnomalyGroundTruth gt = core::ground_truth_of(truth);
    gt.withdrawn = detectable;

    infer::AnomalyReport report;
    recorder.time("withdraw_24_detect", [&] {
      report = infer::detect_anomalies(result, ctx.ip2as);
    });
    core::AnomalyScore score = core::score_anomalies(report, gt);

    std::printf(
        "  %-14s | %6zu %6s | %9.3f %9.3f %7s | %8.3f | %zu/%zu links "
        "detectable\n",
        "withdraw_24", truth.pairs_total, "-", score.withdrawn_precision,
        score.withdrawn_recall, "-", 0.0, detectable.size(),
        truth.withdrawn_addrs.size());

    recorder.stat("withdraw_24", "links_withdrawn",
                  double(truth.withdrawn_links.size()));
    recorder.stat("withdraw_24", "links_detectable", double(detectable.size()));
    recorder.stat("withdraw_24", "withdrawn_matched",
                  double(score.withdrawn_matched));
    recorder.stat("withdraw_24", "withdrawn_precision",
                  score.withdrawn_precision);
    recorder.stat("withdraw_24", "withdrawn_recall", score.withdrawn_recall);
    recorder.stat("withdraw_24", "epoch_recall", score.epoch_recall);

    if (!detectable.empty() && score.withdrawn_matched == 0) {
      detector_wins = false;
      std::printf("    ^ GATE FAIL: no detectable withdrawn link flagged\n");
    }
  }

  recorder.stat("total", "peak_rss_mb", bench::peak_rss_mb());
  recorder.write();

  bench::print_footnote(
      "gate: detector beats the no-detection baseline (>=1 matched epoch) at "
      "every churn fraction > 0, and flags >=1 detectable withdrawn link");
  if (!detector_wins) {
    std::printf("\n  RESULT: GATE FAILED\n");
    return 1;
  }
  std::printf("\n  RESULT: detector beats baseline everywhere\n");
  return 0;
}
