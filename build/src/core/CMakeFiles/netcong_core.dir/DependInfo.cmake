
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adjacency.cpp" "src/core/CMakeFiles/netcong_core.dir/adjacency.cpp.o" "gcc" "src/core/CMakeFiles/netcong_core.dir/adjacency.cpp.o.d"
  "/root/repo/src/core/as_tomography.cpp" "src/core/CMakeFiles/netcong_core.dir/as_tomography.cpp.o" "gcc" "src/core/CMakeFiles/netcong_core.dir/as_tomography.cpp.o.d"
  "/root/repo/src/core/coverage.cpp" "src/core/CMakeFiles/netcong_core.dir/coverage.cpp.o" "gcc" "src/core/CMakeFiles/netcong_core.dir/coverage.cpp.o.d"
  "/root/repo/src/core/diurnal.cpp" "src/core/CMakeFiles/netcong_core.dir/diurnal.cpp.o" "gcc" "src/core/CMakeFiles/netcong_core.dir/diurnal.cpp.o.d"
  "/root/repo/src/core/link_diversity.cpp" "src/core/CMakeFiles/netcong_core.dir/link_diversity.cpp.o" "gcc" "src/core/CMakeFiles/netcong_core.dir/link_diversity.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/netcong_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/netcong_core.dir/report.cpp.o.d"
  "/root/repo/src/core/signatures.cpp" "src/core/CMakeFiles/netcong_core.dir/signatures.cpp.o" "gcc" "src/core/CMakeFiles/netcong_core.dir/signatures.cpp.o.d"
  "/root/repo/src/core/stratify.cpp" "src/core/CMakeFiles/netcong_core.dir/stratify.cpp.o" "gcc" "src/core/CMakeFiles/netcong_core.dir/stratify.cpp.o.d"
  "/root/repo/src/core/threshold.cpp" "src/core/CMakeFiles/netcong_core.dir/threshold.cpp.o" "gcc" "src/core/CMakeFiles/netcong_core.dir/threshold.cpp.o.d"
  "/root/repo/src/core/tomography.cpp" "src/core/CMakeFiles/netcong_core.dir/tomography.cpp.o" "gcc" "src/core/CMakeFiles/netcong_core.dir/tomography.cpp.o.d"
  "/root/repo/src/core/tslp_analysis.cpp" "src/core/CMakeFiles/netcong_core.dir/tslp_analysis.cpp.o" "gcc" "src/core/CMakeFiles/netcong_core.dir/tslp_analysis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/infer/CMakeFiles/netcong_infer.dir/DependInfo.cmake"
  "/root/repo/build/src/measure/CMakeFiles/netcong_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/netcong_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/netcong_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/netcong_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/netcong_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/netcong_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/netcong_route.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
