# Empty dependencies file for bench_ext_tslp.
# This may be replaced when dependencies are built.
