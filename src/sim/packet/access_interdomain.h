#pragma once

// Two-hop scenario for congestion localization ground truth: a test flow
// crosses an interdomain link (transit/peering) and then the client's access
// link. Either hop can be provisioned as the constrained queue, and cross
// traffic can be attached to exactly one hop:
//
//   server ──▶ [interdomain queue] ──▶ [access queue] ──▶ client
//                     ▲                      ▲
//         kCrossInterdomain flows      kLocalAccess flows
//         (exit to other eyeballs)     (other devices in the home / ISP leg)
//
// This is the access-vs-interdomain confound of Genin & Splett that the
// infer/pathmodel localizer has to resolve from the test flow's own RTT
// series (paper §7's "where is the congestion" future work).

#include <memory>
#include <vector>

#include "sim/packet/event_queue.h"
#include "sim/packet/queue.h"
#include "sim/packet/tcp.h"

namespace netcong::sim::packet {

enum class FlowPath {
  kServerToClient,    // both queues (the measured test flow)
  kCrossInterdomain,  // interdomain queue only
  kLocalAccess,       // access queue only
};

struct AiResult {
  std::vector<FlowResult> flows;
  std::int64_t interdomain_drops = 0;
  std::int64_t interdomain_delivered = 0;
  std::int64_t access_drops = 0;
  std::int64_t access_delivered = 0;
};

class AccessInterdomain {
 public:
  struct Params {
    double interdomain_mbps = 1000.0;
    int interdomain_buffer_packets = 2000;
    double access_mbps = 100.0;
    int access_buffer_packets = 400;
    double duration_s = 30.0;
  };

  explicit AccessInterdomain(Params params);

  // Adds a flow on the given path; returns its index.
  int add_flow(const FlowSpec& spec,
               FlowPath path = FlowPath::kServerToClient);

  AiResult run();

 private:
  Params params_;
  EventQueue events_;
  std::unique_ptr<DropTailQueue> interdomain_;
  std::unique_ptr<DropTailQueue> access_;
  std::vector<std::unique_ptr<TcpFlow>> flows_;
  std::vector<FlowSpec> specs_;
  std::vector<FlowPath> paths_;
};

}  // namespace netcong::sim::packet
