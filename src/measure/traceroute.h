#pragma once

// Paris traceroute simulation. A traceroute walks the same router-level
// path a flow with the given key would take (Paris keeps the flow key
// constant, so ECMP decisions are stable across TTLs) and records, per hop,
// the address of the interface the probe *arrived* on — which on an
// interdomain link may be numbered from either AS's space, the central
// difficulty in traceroute-based border inference.
//
// Artifacts modeled: unresponsive hops (stars), probes suppressed near the
// client (home-gateway firewalls), and missing PTR records.
//
// The hop-production loop is a template over a sink so the classic
// vector-of-TraceHop record and the columnar arena-backed corpus
// (measure/corpus.h) are produced by the same code — the random draws are
// shared instruction-for-instruction, which is what keeps the two layouts
// bit-identical.

#include <optional>
#include <string>
#include <vector>

#include "route/forwarding.h"
#include "route/path_cache.h"
#include "sim/adversary.h"
#include "sim/traffic.h"
#include "topo/topology.h"
#include "util/rng.h"

namespace netcong::measure {

struct TraceHop {
  int ttl = 0;
  bool responded = false;
  topo::IpAddr addr;       // valid only if responded
  double rtt_ms = 0.0;
  std::string dns_name;    // PTR record if any
};

struct TracerouteRecord {
  std::uint32_t src_host = 0;
  topo::IpAddr dst;
  double utc_time_hours = 0.0;
  std::vector<TraceHop> hops;
  bool reached_dst = false;
  // Ground truth for validation (not visible to inference code).
  route::RouterPath truth;
};

struct TracerouteOptions {
  double star_prob = 0.03;        // per-hop unresponsiveness
  double client_silent_prob = 0.35;  // destination host does not reply
  bool paris = true;              // keep flow key fixed across TTLs
  // When set, hop RTTs include the time-dependent queueing delay of the
  // links traversed (needed for latency-based congestion probing, e.g.
  // TSLP); when null, RTTs reflect propagation only.
  const sim::TrafficModel* traffic = nullptr;
  // When set and enabled, the adversarial scenario perturbs this trace:
  // the flow key is rewritten (churn/asymmetry), post-epoch lookups
  // resolve through the scenario's route view, and cloaked routers never
  // respond. Null or a disabled scenario leaves the trace byte-identical
  // to the honest run (the per-hop star draw is consumed either way).
  const sim::AdversaryScenario* adversary = nullptr;
};

// The probe flow key a traceroute from src_host toward dst uses. Non-Paris
// mode draws its ports from `rng` (one draw per port), so callers must
// invoke this exactly once per traceroute, before any other draw.
route::FlowKey trace_flow_key(const topo::Topology& topo,
                              std::uint32_t src_host, topo::IpAddr dst,
                              const TracerouteOptions& options,
                              util::Rng& rng);

// Runs one traceroute along the forwarder's path. When a PathCache is
// given, path construction is memoized through it (results are identical;
// Paris traceroutes use a fixed flow key per (src, dst) pair, so repeat
// traces hit the cache).
TracerouteRecord run_traceroute(const topo::Topology& topo,
                                const route::Forwarder& fwd,
                                std::uint32_t src_host, topo::IpAddr dst,
                                double utc_time_hours,
                                const TracerouteOptions& options,
                                util::Rng& rng,
                                const route::PathCache* cache = nullptr);

// Bumps the process-wide traceroute counters exactly as run_traceroute
// does; exposed for alternative sinks (the columnar corpus builder).
void note_traceroute_metrics(std::size_t hops, std::size_t stars,
                             bool reached_dst, bool unreachable);

// Core of the simulation: walks a precomputed (valid) path and feeds each
// produced hop to `sink.hop(ttl, responded, addr, rtt_ms, in_iface)`,
// where in_iface is the replying interface (invalid id when the reply came
// from a management address, a star, or the destination host — exactly the
// cases with no PTR record). Returns whether the destination replied. The
// draw sequence is the contract: any two sinks see identical streams.
template <typename Sink>
bool simulate_trace(const topo::Topology& topo, const route::RouterPath& path,
                    std::uint32_t src_host, topo::IpAddr dst,
                    double utc_time_hours, const TracerouteOptions& options,
                    util::Rng& rng, Sink& sink) {
  double cum_delay = topo.host(src_host).access_delay_ms;
  double cum_queue = 0.0;
  int ttl = 0;
  for (std::size_t i = 0; i < path.hops.size(); ++i) {
    const route::RouterHop& hop = path.hops[i];
    if (i > 0) {
      cum_delay += topo.link(hop.in_link).prop_delay_ms;
      if (options.traffic) {
        double q = options.traffic
                       ->condition(hop.in_link, utc_time_hours, rng)
                       .queue_delay_ms;
        cum_delay += q;
        cum_queue += q;
      }
    }
    ++ttl;
    // The star draw is consumed unconditionally so a cloaked run stays
    // draw-aligned with the honest one; the cloak only forces the outcome.
    bool star = rng.chance(options.star_prob);
    if (!star && options.adversary != nullptr &&
        options.adversary->router_cloaked(hop.router)) {
      star = true;
    }
    if (!star) {
      // Routers reply from the inbound interface; the first hop (no inbound
      // link) replies from its management address.
      topo::IpAddr addr;
      topo::InterfaceId iface;  // invalid unless the reply names a PTR
      if (hop.in_iface.valid()) {
        addr = topo.iface(hop.in_iface).addr;
        iface = hop.in_iface;
      } else {
        addr = topo.router(hop.router).mgmt_addr;
      }
      double rtt = 2.0 * cum_delay * rng.uniform(1.0, 1.08);
      sink.hop(ttl, true, addr, rtt, iface);
    } else {
      sink.hop(ttl, false, topo::IpAddr{}, 0.0, topo::InterfaceId{});
    }
  }

  // The destination itself (client hosts often sit behind NAT/firewalls).
  bool dst_is_host = topo.host_by_addr(dst).has_value();
  bool silent = dst_is_host && rng.chance(options.client_silent_prob);
  if (!silent) {
    double rtt =
        (2.0 * path.one_way_delay_ms + cum_queue) * rng.uniform(1.0, 1.08);
    sink.hop(++ttl, true, dst, rtt, topo::InterfaceId{});
    return true;
  }
  return false;
}

// One latency probe (ping-style) to an arbitrary address: round-trip time
// including the queueing delay of every link crossed (both directions are
// assumed to traverse the same links). Returns a negative value when the
// target is unreachable.
double rtt_probe(const topo::Topology& topo, const route::Forwarder& fwd,
                 const sim::TrafficModel& traffic, std::uint32_t src_host,
                 topo::IpAddr target, double utc_time_hours, util::Rng& rng);

}  // namespace netcong::measure
