file(REMOVE_RECURSE
  "CMakeFiles/crowdsourcing_bias.dir/crowdsourcing_bias.cpp.o"
  "CMakeFiles/crowdsourcing_bias.dir/crowdsourcing_bias.cpp.o.d"
  "crowdsourcing_bias"
  "crowdsourcing_bias.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdsourcing_bias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
