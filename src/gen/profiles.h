#pragma once

// Profiles of the networks that make up the synthetic US interconnection
// ecosystem: access ISPs (calibrated to the paper's Table 1 and Table 3),
// transit carriers (some hosting M-Lab-style servers), and content/CDN
// networks that serve the Alexa-style popular-content targets.

#include <cstdint>
#include <string>
#include <vector>

#include "topo/ids.h"

namespace netcong::gen {

// One access-link service plan and its share of the subscriber base.
struct TierOption {
  double down_mbps;
  double up_mbps;
  double weight;
};

enum class AccessTech { kCable, kDsl, kFiber };

struct AccessIspProfile {
  std::string name;      // "Comcast"
  std::string org_name;  // "Comcast Cable Communications"
  // First ASN is the primary (national) AS; the rest are regional siblings.
  std::vector<topo::Asn> asns;
  std::int64_t subscribers = 0;
  AccessTech tech = AccessTech::kCable;
  // True for networks that are also large transit carriers and do not buy
  // transit themselves (AT&T/Verizon/CenturyLink class).
  bool transit_free = false;
  // Probability that this ISP peers directly with any given M-Lab-hosting
  // transit network. Calibrated against the paper's Figure 1 one-hop
  // fractions: high for the top-5 ISPs, low for Charter/Cox/Frontier, and
  // near zero for Windstream.
  double direct_host_peering = 0.8;
  int n_cities = 8;
  int n_customers = 50;  // stub customer count target (Table 3 CUST borders)
  int n_peers = 15;      // peer count target (Table 3 PEER borders)
  int n_providers = 2;   // transit purchased (0 if transit_free)
  // Probability that an interconnection site gets a burst of parallel links
  // between the same router pair (the Cox phenomenon, paper Section 4.3).
  double parallel_link_propensity = 0.1;
  // Ark vantage point site codes hosted in this network (Table 3).
  std::vector<std::string> vp_sites;
};

struct TransitProfile {
  std::string name;
  std::string org_name;
  topo::Asn asn = 0;
  bool hosts_mlab = false;  // member of the M-Lab hosting set
  int n_cities = 14;
  int n_customers = 300;
};

struct ContentProfile {
  std::string name;
  topo::Asn asn = 0;
  int n_cities = 6;
  double alexa_weight = 1.0;  // share of Alexa-style targets hosted here
};

const std::vector<AccessIspProfile>& default_access_profiles();
const std::vector<TransitProfile>& default_transit_profiles();
const std::vector<ContentProfile>& default_content_profiles();

// Service-plan mix for an access technology.
const std::vector<TierOption>& tier_mix(AccessTech tech);

// Typical one-way last-mile latency for the technology (ms).
double access_delay_ms(AccessTech tech);

}  // namespace netcong::gen
