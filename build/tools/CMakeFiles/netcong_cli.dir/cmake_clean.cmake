file(REMOVE_RECURSE
  "CMakeFiles/netcong_cli.dir/netcong_cli.cpp.o"
  "CMakeFiles/netcong_cli.dir/netcong_cli.cpp.o.d"
  "netcong_cli"
  "netcong_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netcong_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
