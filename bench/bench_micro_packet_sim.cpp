// Microbenchmarks for the packet-level simulator: event throughput and
// full dumbbell scenarios at increasing flow counts.

#include <benchmark/benchmark.h>

#include "sim/packet/dumbbell.h"
#include "sim/packet/event_queue.h"

namespace {

using namespace netcong::sim::packet;

void BM_EventQueueChurn(benchmark::State& state) {
  for (auto _ : state) {
    EventQueue q;
    int count = 0;
    std::function<void()> tick = [&] {
      if (++count < 10000) q.schedule(q.now() + 0.001, tick);
    };
    q.schedule(0.0, tick);
    q.run(1e9);
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          10000);
}
BENCHMARK(BM_EventQueueChurn);

void BM_DumbbellScenario(benchmark::State& state) {
  for (auto _ : state) {
    Dumbbell::Params params;
    params.bottleneck_mbps = 50.0;
    params.duration_s = 10.0;
    Dumbbell d(params);
    for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
      FlowSpec spec;
      spec.base_rtt_s = 0.04;
      d.add_flow(spec);
    }
    benchmark::DoNotOptimize(d.run());
  }
}
BENCHMARK(BM_DumbbellScenario)->Arg(1)->Arg(4)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
