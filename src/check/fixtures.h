#pragma once

// Shared fixtures for the property families: a bounded GeneratorConfig
// domain (worlds stay at or below the tiny preset's scale so one generation
// costs low milliseconds), the standard simulation stack built on top of a
// generated world, and small deterministic workloads/corpora.

#include <memory>
#include <vector>

#include "gen/workload.h"
#include "gen/world.h"
#include "measure/ndt.h"
#include "measure/platform.h"
#include "measure/traceroute.h"
#include "route/bgp.h"
#include "route/forwarding.h"
#include "sim/throughput.h"
#include "util/pbt.h"

namespace netcong::check {

// Random world configurations bounded for speed. Shrinking moves each knob
// toward its simplest value (fewest entities, zero optional fractions), so
// a failing world config minimizes to the smallest world still failing.
util::pbt::Domain<gen::GeneratorConfig> config_domain();

std::string describe_config(const gen::GeneratorConfig& cfg);

// The standard pipeline stack over a generated world: BGP control plane,
// forwarder, throughput model, and the M-Lab platform view.
struct Stack {
  explicit Stack(const gen::GeneratorConfig& cfg);

  gen::World world;
  route::BgpRouting bgp;
  route::Forwarder fwd;
  sim::ThroughputModel model;
  measure::Platform mlab;
};

// Dense schedule over the world's clients: `rounds` closely spaced tests
// per client, exercising every traceroute-daemon outcome (run, busy-skip,
// cache-skip) like the campaign determinism tests do.
std::vector<gen::TestRequest> dense_schedule(const gen::World& world,
                                             int rounds);

// Full-prefix Ark corpus from the given VP index (modulo the VP count).
std::vector<measure::TracerouteRecord> vp_corpus(const Stack& stack,
                                                 std::size_t vp_index,
                                                 std::uint64_t seed);

}  // namespace netcong::check
