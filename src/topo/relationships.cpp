#include "topo/relationships.h"

#include <algorithm>

namespace netcong::topo {

const char* rel_type_name(RelType r) {
  switch (r) {
    case RelType::kNone:
      return "none";
    case RelType::kCustomer:
      return "customer";
    case RelType::kProvider:
      return "provider";
    case RelType::kPeer:
      return "peer";
  }
  return "?";
}

RelType invert(RelType r) {
  switch (r) {
    case RelType::kCustomer:
      return RelType::kProvider;
    case RelType::kProvider:
      return RelType::kCustomer;
    default:
      return r;
  }
}

void RelationshipTable::set(Asn a, Asn b, RelType rel) {
  auto [it, inserted] = edges_.insert_or_assign(key(a, b), rel);
  (void)it;
  auto& vec = adj_[a];
  auto found = std::find_if(vec.begin(), vec.end(),
                            [&](const auto& p) { return p.first == b; });
  if (found == vec.end()) {
    vec.emplace_back(b, rel);
  } else {
    found->second = rel;
  }
  (void)inserted;
}

void RelationshipTable::add_customer(Asn customer, Asn provider) {
  set(customer, provider, RelType::kCustomer);
  set(provider, customer, RelType::kProvider);
}

void RelationshipTable::add_peer(Asn a, Asn b) {
  set(a, b, RelType::kPeer);
  set(b, a, RelType::kPeer);
}

RelType RelationshipTable::between(Asn a, Asn b) const {
  auto it = edges_.find(key(a, b));
  return it == edges_.end() ? RelType::kNone : it->second;
}

const std::vector<std::pair<Asn, RelType>>& RelationshipTable::neighbors(
    Asn a) const {
  auto it = adj_.find(a);
  return it == adj_.end() ? empty_ : it->second;
}

}  // namespace netcong::topo
