// Gtest wrapper for the "gen" property family (generator well-formedness).
// Each registered property becomes one parameterized test case, so a
// failure surfaces with the shrunk counterexample and its NETCONG_PBT_SEED
// repro line in the gtest output.

#include <gtest/gtest.h>

#include "check/properties.h"

namespace netcong::check {
namespace {

std::vector<const Property*> family_properties(const char* family) {
  std::vector<const Property*> out;
  for (const Property& p : all_properties()) {
    if (p.family == family) out.push_back(&p);
  }
  return out;
}

class GenProperty : public ::testing::TestWithParam<const Property*> {};

TEST_P(GenProperty, Holds) {
  util::pbt::Config cfg;
  cfg.iterations = 0;  // the property's bounded default budget
  util::pbt::CheckResult result = run_property(*GetParam(), cfg);
  EXPECT_TRUE(result.ok) << result.report;
}

std::string test_name(const ::testing::TestParamInfo<const Property*>& info) {
  std::string name = info.param->name;
  for (char& c : name) {
    if (c == '.') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Registry, GenProperty,
                         ::testing::ValuesIn(family_properties("gen")),
                         test_name);

TEST(GenFamily, RegistryHasEnoughProperties) {
  EXPECT_GE(family_properties("gen").size(), 4u);
}

}  // namespace
}  // namespace netcong::check
