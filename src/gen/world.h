#pragma once

// World: a generated topology plus everything the experiments need to run
// against it — the traffic model (with congestion ground truth), the server
// fleets of both measurement platforms in both paper snapshots, Ark-style
// vantage points, Alexa-style content targets, and the client population.

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/traffic.h"
#include "topo/topology.h"

namespace netcong::gen {

struct CongestionScenarioEntry {
  // Interdomain links between these two organizations' ASes get this peak
  // utilization (>= 1.0 means truly congested at peak).
  std::string org_a;  // e.g. "GTT Communications"
  std::string org_b;  // e.g. "AT&T Services"
  double peak_util = 1.1;
};

struct GeneratorConfig {
  std::uint64_t seed = 42;

  // Scales stub-customer counts relative to the paper's Table 3 (1.0
  // reproduces the published border counts; smaller keeps tests fast).
  double customer_scale = 1.0;

  // Server fleets (paper Section 5.4 snapshots: M-Lab 261/261,
  // Speedtest 3591 -> 5209).
  int mlab_servers = 261;
  int speedtest_servers_2015 = 3591;
  int speedtest_servers_2017 = 5209;

  int clients_per_access_isp = 1200;
  int alexa_targets = 500;

  // Fraction of peer interconnections established across an IXP fabric.
  double ixp_peer_fraction = 0.15;
  // Fraction of interdomain interfaces with a PTR record.
  double dns_ptr_coverage = 0.85;
  // Fraction of announced blocks whose BGP origin is stale (announced by a
  // sibling), stressing prefix-to-AS-based inference.
  double announce_staleness = 0.02;

  // Background load defaults (fractions of capacity).
  double internal_base_util = 0.10, internal_peak_util = 0.35;
  double customer_base_util = 0.15, customer_peak_util = 0.55;
  double peer_base_util = 0.20, peer_peak_util = 0.80;

  // Deliberately congested interdomain AS pairs. The default scenario
  // mirrors the paper's Figure 5 case study: GTT <-> AT&T congested, while
  // GTT <-> Comcast runs busy but below capacity.
  std::vector<CongestionScenarioEntry> congested;
  // If true (ablation of Assumption 1), a few large-ISP internal backbone
  // links are also driven past capacity.
  bool congest_internal_links = false;

  // Presets.
  static GeneratorConfig full();    // paper-scale (default values above)
  static GeneratorConfig small();   // fast integration-test scale
  static GeneratorConfig tiny();    // unit-test scale
};

struct World {
  std::unique_ptr<topo::Topology> topo;
  std::unique_ptr<sim::TrafficModel> traffic;

  // Ground truth for validation.
  std::vector<topo::LinkId> congested_links;

  // ISP display name -> its AS numbers (primary first).
  std::unordered_map<std::string, std::vector<topo::Asn>> isp_asns;
  // M-Lab host transit name -> ASN.
  std::unordered_map<std::string, topo::Asn> transit_asns;

  // Host-id lists.
  std::vector<std::uint32_t> mlab_servers;            // both snapshots (261)
  std::vector<std::uint32_t> speedtest_servers_2017;  // 5209
  std::vector<std::uint32_t> speedtest_servers_2015;  // prefix subset (3591)
  std::vector<std::uint32_t> ark_vps;                 // label = site code
  // Content endpoints (one per content AS per city); the Alexa resolver in
  // measure/alexa.h maps domains to the nearest of these per vantage point.
  std::vector<std::uint32_t> content_hosts;
  // Alexa-style popular domains and the content AS hosting each.
  std::vector<std::pair<std::string, topo::Asn>> alexa_domains;
  std::vector<std::uint32_t> clients;

  // Primary ASN of an ISP by display name; 0 if unknown.
  topo::Asn primary_asn(const std::string& isp_name) const;
  // Clients of a given ISP (any sibling AS).
  std::vector<std::uint32_t> clients_of(const std::string& isp_name) const;
};

// Generates a full world from the configuration. Deterministic per seed.
World generate_world(const GeneratorConfig& config);

}  // namespace netcong::gen
