#pragma once

// Alexa-style popular-content target resolution (paper Section 5.1): each
// domain resolves, at a given vantage point, to the CDN front-end of the
// hosting content network closest to the VP — modeling the per-VP DNS
// differences of real CDNs ("the resolved IP addresses differ per VP
// because we use the DNS server of the ISP hosting the VP").

#include <vector>

#include "gen/world.h"

namespace netcong::measure {

// Resolves every domain in world.alexa_domains from the VP's perspective.
// Returns host ids (content endpoints); duplicates are removed, mirroring
// the per-VP target lists in the paper.
std::vector<std::uint32_t> resolve_alexa_targets(const gen::World& world,
                                                 std::uint32_t vp);

}  // namespace netcong::measure
