#!/usr/bin/env bash
# Memory-checks the degraded-data paths (fault injection, corpus
# degradation, inference over lossy corpora) under AddressSanitizer in one
# command:
#
#   tools/run_asan.sh [extra cmake args...]
#
# Configures a dedicated build-asan tree with -fsanitize=address and runs
# every test carrying the `asan` CTest label.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=build-asan
cmake -B "$BUILD" -S . -DNETCONG_SANITIZE=address "$@"
cmake --build "$BUILD" -j "$(nproc)"
# asan-labeled tests plus the obs suite (ring-buffer indexing and slab
# pooling are the kind of code ASan exists for), the property families
# (randomized worlds through every layer), the serve suite (queued events
# moved across threads and merged evidence stores — wal_test/net_test ride
# the same label, putting the frame codec, WAL segment I/O, and socket
# listener under memory checking), the bench_scale smoke (the
# arena/columnar corpus), the pathmodel suite (multi-CC packet sims,
# whose per-flow trace buffers and downsampling indices are worth bounds
# checking), and the adversary suite (phantom-router relabeling and
# crossing-series bookkeeping over shifting corpora) — all at reduced
# budgets so the instrumented run stays fast.
NETCONG_PBT_ITERS="${NETCONG_PBT_ITERS:-3}" \
NETCONG_SCALE_TESTS="${NETCONG_SCALE_TESTS:-500}" \
NETCONG_INGEST_EVENTS="${NETCONG_INGEST_EVENTS:-500}" \
NETCONG_PATHMODEL_TESTS="${NETCONG_PATHMODEL_TESTS:-1}" \
NETCONG_ADVERSARY_DAYS="${NETCONG_ADVERSARY_DAYS:-2}" \
  ctest --test-dir "$BUILD" -L 'asan|obs|pbt|bench|serve|pathmodel|adversary' \
  --output-on-failure
