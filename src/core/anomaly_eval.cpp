#include "core/anomaly_eval.h"

#include <algorithm>
#include <cmath>

namespace netcong::core {
namespace {

double safe_div(std::size_t num, std::size_t den) {
  return den == 0 ? 0.0
                  : static_cast<double>(num) / static_cast<double>(den);
}

}  // namespace

AnomalyGroundTruth ground_truth_of(
    const measure::AdversaryCampaignTruth& truth) {
  AnomalyGroundTruth gt;
  // Churn, withdrawal, and asymmetry-with-epoch all flip at epoch_hours; an
  // epoch at 0 precedes every measurement and is not a detectable change.
  bool changes_anything = (truth.churn_fraction > 0.0 &&
                           truth.pairs_churned > 0) ||
                          !truth.withdrawn_links.empty();
  if (changes_anything && truth.epoch_hours > 0.0 &&
      truth.tests_pre_epoch > 0) {
    gt.epochs.push_back(truth.epoch_hours);
  }
  gt.withdrawn = truth.withdrawn_addrs;
  return gt;
}

AnomalyScore score_anomalies(const infer::AnomalyReport& report,
                             const AnomalyGroundTruth& truth,
                             double tolerance_hours) {
  AnomalyScore score;

  // ---- epochs: greedy 1:1 matching in time order ----
  std::vector<double> detected = report.epochs;
  std::vector<double> actual = truth.epochs;
  std::sort(detected.begin(), detected.end());
  std::sort(actual.begin(), actual.end());
  score.epochs_true = actual.size();
  score.epochs_detected = detected.size();
  std::vector<bool> used(detected.size(), false);
  for (double t : actual) {
    std::size_t best = detected.size();
    double best_gap = tolerance_hours;
    for (std::size_t i = 0; i < detected.size(); ++i) {
      if (used[i]) continue;
      double gap = std::fabs(detected[i] - t);
      if (gap <= best_gap) {
        best = i;
        best_gap = gap;
      }
    }
    if (best < detected.size()) {
      used[best] = true;
      ++score.epochs_matched;
    }
  }
  score.epoch_precision = safe_div(score.epochs_matched, score.epochs_detected);
  score.epoch_recall = safe_div(score.epochs_matched, score.epochs_true);
  double pr = score.epoch_precision + score.epoch_recall;
  score.epoch_f1 =
      pr == 0.0 ? 0.0 : 2.0 * score.epoch_precision * score.epoch_recall / pr;

  // ---- withdrawn links: shared-interface identity ----
  // A traceroute that crossed the withdrawn link reports the link's
  // far-side ingress interface as the far hop, but the near hop replies
  // from the *upstream* link's interface — so only one address of the
  // truth pair is ever observable in a corpus. A finding names a truth
  // link when either of its crossing addresses is one of the link's two
  // interface addresses.
  score.withdrawn_true = truth.withdrawn.size();
  score.withdrawn_detected = report.withdrawn.size();
  std::vector<bool> claimed(report.withdrawn.size(), false);
  for (const auto& [a, b] : truth.withdrawn) {
    for (std::size_t i = 0; i < report.withdrawn.size(); ++i) {
      if (claimed[i]) continue;
      const infer::AnomalyFinding& f = report.withdrawn[i];
      bool same = f.near_addr.value == a.value || f.far_addr.value == b.value ||
                  f.near_addr.value == b.value || f.far_addr.value == a.value;
      if (same) {
        claimed[i] = true;
        ++score.withdrawn_matched;
        break;
      }
    }
  }
  score.withdrawn_precision =
      safe_div(score.withdrawn_matched, score.withdrawn_detected);
  score.withdrawn_recall = safe_div(score.withdrawn_matched, score.withdrawn_true);
  return score;
}

}  // namespace netcong::core
