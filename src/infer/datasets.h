#pragma once

// The "public datasets" inference is allowed to consume, mirroring what the
// paper's analyses used: CAIDA-style prefix-to-AS mapping derived from BGP,
// the AS-to-Organization mapping, the IXP prefix list (PeeringDB/PCH), and
// AS relationship inferences (AS-rank). These views are constructed from
// the Topology's *announced* state — never from ground truth — so staleness
// injected by the generator flows through to inference, as in reality.

#include <unordered_map>

#include "topo/topology.h"

namespace netcong::infer {

// prefix2as + IXP prefix list.
class Ip2As {
 public:
  enum class Kind { kUnknown, kAs, kIxp };
  struct Result {
    Kind kind = Kind::kUnknown;
    topo::Asn asn = 0;
  };

  explicit Ip2As(const topo::Topology& topo);
  Ip2As(const std::vector<std::pair<topo::Prefix, topo::Asn>>& announced,
        const std::vector<topo::Prefix>& ixp_prefixes);

  Result lookup(topo::IpAddr addr) const;
  // Convenience: origin ASN or 0.
  topo::Asn origin(topo::IpAddr addr) const;
  bool is_ixp(topo::IpAddr addr) const;

 private:
  topo::PrefixTrie<topo::Asn> trie_;
  topo::PrefixTrie<bool> ixp_;
};

// AS-to-Organization (sibling) mapping.
class OrgMap {
 public:
  explicit OrgMap(const topo::Topology& topo);

  // Opaque org token; 0 for unknown ASNs.
  std::uint32_t org_of(topo::Asn asn) const;
  bool same_org(topo::Asn a, topo::Asn b) const;

 private:
  std::unordered_map<topo::Asn, std::uint32_t> org_;
};

}  // namespace netcong::infer
