# Empty compiler generated dependencies file for bench_sec41_matching.
# This may be replaced when dependencies are built.
