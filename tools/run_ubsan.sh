#!/usr/bin/env bash
# Checks the arithmetic-heavy paths (generator fractions, throughput model,
# inference scoring, property shrinking) under UndefinedBehaviorSanitizer
# in one command:
#
#   tools/run_ubsan.sh [extra cmake args...]
#
# Configures a dedicated build-ubsan tree with -fsanitize=undefined (errors
# are fatal, not just printed) and runs every test carrying the `pbt` CTest
# label plus the core unit suites — the property families feed randomized
# worlds through every layer, which is exactly the input diversity UBSan
# needs to surface overflow and bad-shift bugs.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=build-ubsan
cmake -B "$BUILD" -S . -DNETCONG_SANITIZE=undefined "$@"
cmake --build "$BUILD" -j "$(nproc)"
# The pathmodel label adds the CC simulator + classifier suite: cubic's
# cube-root window math and BBR's gain cycling are precisely the kind of
# floating/integer arithmetic UBSan should watch. The adversary label adds
# the CUSUM/MAD change-detection arithmetic and the key-salt bit twiddling.
NETCONG_PBT_ITERS="${NETCONG_PBT_ITERS:-3}" \
NETCONG_PATHMODEL_TESTS="${NETCONG_PATHMODEL_TESTS:-1}" \
NETCONG_ADVERSARY_DAYS="${NETCONG_ADVERSARY_DAYS:-2}" \
  ctest --test-dir "$BUILD" -L 'pbt|asan|obs|pathmodel|adversary' \
  --output-on-failure
