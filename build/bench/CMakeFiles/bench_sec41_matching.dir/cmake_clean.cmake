file(REMOVE_RECURSE
  "CMakeFiles/bench_sec41_matching.dir/bench_sec41_matching.cpp.o"
  "CMakeFiles/bench_sec41_matching.dir/bench_sec41_matching.cpp.o.d"
  "CMakeFiles/bench_sec41_matching.dir/common.cpp.o"
  "CMakeFiles/bench_sec41_matching.dir/common.cpp.o.d"
  "bench_sec41_matching"
  "bench_sec41_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec41_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
