// The M-Lab interconnection report, regenerated (paper Section 2.2): daily
// peak vs off-peak medians per (transit, access ISP, server metro) cell,
// with persistent-congestion flags — including a dispute-resolution event:
// the Cogent<->Verizon interconnections are upgraded mid-campaign, and the
// report shows the recovery, the way the real reports narrated the 2014
// settlements.

#include <cmath>
#include <cstdio>

#include "common.h"
#include "core/report.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace netcong;
  bench::print_header("M-Lab report",
                      "Interconnection report with a mid-campaign capacity "
                      "upgrade");

  bench::Context ctx(bench::bench_config());

  // Dispute resolved on day 14: every Cogent<->Verizon link is upgraded.
  topo::Asn cogent = 174;
  topo::Asn verizon = ctx.world.primary_asn("Verizon");
  int upgraded = 0;
  for (topo::Asn sib : ctx.world.topo->siblings_of(verizon)) {
    for (topo::LinkId l : ctx.world.topo->interdomain_links(cogent, sib)) {
      sim::LinkLoadProfile p = ctx.world.traffic->profile(l);
      p.upgrade_at_hours = 14 * 24.0;
      p.upgrade_factor = 0.45;
      ctx.world.traffic->set_profile(l, p);
      ++upgraded;
    }
  }
  std::printf("upgraded %d Cogent<->Verizon links effective day 14\n",
              upgraded);

  bench::CampaignData data =
      bench::run_standard_campaign(ctx, 28, 10.0, /*seed=*/12);

  core::ReportOptions opt;
  opt.days = 28;
  auto report = core::build_interconnect_report(data.result.tests, ctx.world,
                                                ctx.isp_of, opt);
  std::printf("report cells with >= %zu tests: %zu; flagged persistent: "
              "%zu\n\n",
              opt.min_tests_per_cell, report.cells.size(),
              report.persistent.size());

  util::TextTable table({"source", "ISP", "metro", "tests", "degraded days",
                         "longest streak", "flag"});
  for (std::size_t i : report.persistent) {
    const auto& c = report.cells[i];
    table.add_row({c.source, c.isp, c.metro, std::to_string(c.tests),
                   std::to_string(c.degraded_days(opt.degraded_fraction)),
                   std::to_string(
                       c.longest_degraded_streak(opt.degraded_fraction)),
                   "PERSISTENT"});
  }
  std::printf("%s", table.render().c_str());

  // The recovery narrative: daily series for the biggest Cogent->Verizon
  // cell.
  const core::ReportCell* recovery = nullptr;
  for (const auto& c : report.cells) {
    if (c.source != "Cogent" || c.isp != "Verizon") continue;
    if (!recovery || c.tests > recovery->tests) recovery = &c;
  }
  if (recovery) {
    std::printf("\nCogent -> Verizon (%s), daily peak/off-peak medians "
                "(upgrade on day 14):\n",
                recovery->metro.c_str());
    util::TextTable daily({"day", "tests", "peak median", "off-peak median",
                           "degraded"});
    for (std::size_t d = 0; d < recovery->daily_tests.size(); d += 2) {
      double peak = recovery->daily_peak_median_mbps[d];
      double off = recovery->daily_offpeak_median_mbps[d];
      bool bad = !std::isnan(peak) && !std::isnan(off) &&
                 peak < opt.degraded_fraction * off;
      daily.add_row({std::to_string(d),
                     std::to_string(recovery->daily_tests[d]),
                     std::isnan(peak) ? "-" : util::format("%.1f", peak),
                     std::isnan(off) ? "-" : util::format("%.1f", off),
                     bad ? "yes" : ""});
    }
    std::printf("%s", daily.render().c_str());
  }
  bench::print_footnote(
      "persistent flags should cover the still-congested pairs "
      "(GTT-AT&T, Tata-TWC) while the upgraded Cogent-Verizon cells recover "
      "mid-window and drop below the persistence streak");
  return 0;
}
