#include "topo/topology.h"

#include <cassert>
#include <stdexcept>

namespace netcong::topo {

const char* as_type_name(AsType t) {
  switch (t) {
    case AsType::kAccess:
      return "access";
    case AsType::kTransit:
      return "transit";
    case AsType::kContent:
      return "content";
    case AsType::kEnterprise:
      return "enterprise";
    case AsType::kIxp:
      return "ixp";
  }
  return "?";
}

CityId Topology::add_city(City city) {
  city.id = CityId(static_cast<std::uint32_t>(cities_.size()));
  cities_.push_back(std::move(city));
  return cities_.back().id;
}

OrgId Topology::add_org(std::string name) {
  Org org;
  org.id = OrgId(static_cast<std::uint32_t>(orgs_.size()));
  org.name = std::move(name);
  orgs_.push_back(std::move(org));
  return orgs_.back().id;
}

void Topology::add_as(AsInfo info) {
  assert(info.asn != kInvalidAsn);
  if (as_index_.count(info.asn)) {
    throw std::invalid_argument("duplicate ASN " + std::to_string(info.asn));
  }
  as_index_[info.asn] = as_list_.size();
  as_list_.push_back(std::move(info));
}

const AsInfo& Topology::as_info(Asn asn) const {
  auto it = as_index_.find(asn);
  if (it == as_index_.end()) {
    throw std::out_of_range("unknown ASN " + std::to_string(asn));
  }
  return as_list_[it->second];
}

std::vector<Asn> Topology::all_asns() const {
  std::vector<Asn> out;
  out.reserve(as_list_.size());
  for (const auto& a : as_list_) out.push_back(a.asn);
  return out;
}

RouterId Topology::add_router(Asn owner, CityId city, RouterRole role,
                              std::string name) {
  Router r;
  r.id = RouterId(static_cast<std::uint32_t>(routers_.size()));
  r.owner = owner;
  r.city = city;
  r.role = role;
  r.name = std::move(name);
  routers_.push_back(std::move(r));
  routers_by_as_[owner].push_back(routers_.back().id);
  return routers_.back().id;
}

void Topology::set_router_mgmt_addr(RouterId id, IpAddr addr) {
  routers_.at(id.index()).mgmt_addr = addr;
}

InterfaceId Topology::add_interface(IpAddr addr, RouterId router,
                                    Asn addr_owner, LinkId link,
                                    std::string dns_name) {
  Interface i;
  i.id = InterfaceId(static_cast<std::uint32_t>(interfaces_.size()));
  i.addr = addr;
  i.router = router;
  i.addr_owner = addr_owner;
  i.link = link;
  i.dns_name = std::move(dns_name);
  interfaces_.push_back(std::move(i));
  routers_[router.index()].interfaces.push_back(interfaces_.back().id);
  iface_by_addr_[addr.value] = interfaces_.back().id;
  return interfaces_.back().id;
}

LinkId Topology::add_link(const LinkSpec& spec) {
  Link l;
  l.id = LinkId(static_cast<std::uint32_t>(links_.size()));
  l.kind = spec.kind;
  l.capacity_mbps = spec.capacity_mbps;
  l.prop_delay_ms = spec.prop_delay_ms;
  l.via_ixp = spec.via_ixp;
  l.as_a = router(spec.router_a).owner;
  l.as_b = router(spec.router_b).owner;
  assert(spec.kind != LinkKind::kInterdomain || l.as_a != l.as_b);
  links_.push_back(l);
  LinkId id = links_.back().id;

  Asn owner_a = spec.addr_owner_a != kInvalidAsn ? spec.addr_owner_a : l.as_a;
  Asn owner_b = spec.addr_owner_b != kInvalidAsn ? spec.addr_owner_b : l.as_b;
  links_[id.index()].side_a =
      add_interface(spec.addr_a, spec.router_a, owner_a, id, spec.dns_a);
  links_[id.index()].side_b =
      add_interface(spec.addr_b, spec.router_b, owner_b, id, spec.dns_b);

  links_by_routers_[router_pair_key(spec.router_a, spec.router_b)].push_back(
      id);
  if (spec.kind == LinkKind::kInterdomain) {
    interdomain_by_pair_[pair_key(l.as_a, l.as_b)].push_back(id);
    interdomain_by_as_[l.as_a].push_back(id);
    interdomain_by_as_[l.as_b].push_back(id);
  }
  return id;
}

std::uint32_t Topology::add_host(Host host) {
  host.id = static_cast<std::uint32_t>(hosts_.size());
  hosts_.push_back(std::move(host));
  host_by_addr_[hosts_.back().addr.value] = hosts_.back().id;
  return hosts_.back().id;
}

void Topology::announce_prefix(const Prefix& p, Asn origin) {
  announced_.insert(p, origin);
  announced_list_.emplace_back(p, origin);
}

void Topology::own_prefix(const Prefix& p, Asn owner) {
  owned_.insert(p, owner);
}

void Topology::add_ixp_prefix(const Prefix& p) {
  ixp_.insert(p, true);
  ixp_list_.push_back(p);
}

std::optional<InterfaceId> Topology::interface_by_addr(IpAddr addr) const {
  auto it = iface_by_addr_.find(addr.value);
  if (it == iface_by_addr_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::uint32_t> Topology::host_by_addr(IpAddr addr) const {
  auto it = host_by_addr_.find(addr.value);
  if (it == host_by_addr_.end()) return std::nullopt;
  return it->second;
}

const std::vector<RouterId>& Topology::routers_of(Asn asn) const {
  auto it = routers_by_as_.find(asn);
  return it == routers_by_as_.end() ? empty_routers_ : it->second;
}

std::vector<RouterId> Topology::routers_of(Asn asn, CityId city) const {
  std::vector<RouterId> out;
  for (RouterId id : routers_of(asn)) {
    if (router(id).city == city) out.push_back(id);
  }
  return out;
}

std::vector<LinkId> Topology::interdomain_links(Asn a, Asn b) const {
  auto it = interdomain_by_pair_.find(pair_key(a, b));
  return it == interdomain_by_pair_.end() ? std::vector<LinkId>{} : it->second;
}

const std::vector<LinkId>& Topology::interdomain_links_of(Asn asn) const {
  auto it = interdomain_by_as_.find(asn);
  return it == interdomain_by_as_.end() ? empty_links_ : it->second;
}

std::vector<std::uint32_t> Topology::hosts_of(Asn asn) const {
  std::vector<std::uint32_t> out;
  for (const auto& h : hosts_) {
    if (h.asn == asn) out.push_back(h.id);
  }
  return out;
}

std::vector<std::uint32_t> Topology::hosts_of_kind(HostKind kind) const {
  std::vector<std::uint32_t> out;
  for (const auto& h : hosts_) {
    if (h.kind == kind) out.push_back(h.id);
  }
  return out;
}

InterfaceId Topology::other_side(LinkId link_id, InterfaceId side) const {
  const Link& l = link(link_id);
  return l.side_a == side ? l.side_b : l.side_a;
}

RouterId Topology::remote_router(LinkId link_id, RouterId local) const {
  const Link& l = link(link_id);
  RouterId ra = iface(l.side_a).router;
  return ra == local ? iface(l.side_b).router : ra;
}

const std::vector<LinkId>& Topology::links_between(RouterId a,
                                                   RouterId b) const {
  auto it = links_by_routers_.find(router_pair_key(a, b));
  return it == links_by_routers_.end() ? empty_links_ : it->second;
}

std::optional<Asn> Topology::announced_origin(IpAddr addr) const {
  return announced_.lookup(addr);
}

std::optional<Asn> Topology::true_owner(IpAddr addr) const {
  return owned_.lookup(addr);
}

bool Topology::is_ixp_addr(IpAddr addr) const {
  return ixp_.lookup(addr).value_or(false);
}

bool Topology::same_org(Asn a, Asn b) const {
  if (a == b) return true;
  if (!has_as(a) || !has_as(b)) return false;
  return as_info(a).org == as_info(b).org;
}

std::vector<Asn> Topology::siblings_of(Asn asn) const {
  std::vector<Asn> out;
  if (!has_as(asn)) return out;
  OrgId org = as_info(asn).org;
  for (const auto& a : as_list_) {
    if (a.org == org) out.push_back(a.asn);
  }
  return out;
}

std::size_t Topology::interdomain_link_count() const {
  std::size_t n = 0;
  for (const auto& l : links_) {
    if (l.kind == LinkKind::kInterdomain) ++n;
  }
  return n;
}

}  // namespace netcong::topo
