#include "infer/anomaly.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace netcong::infer {
namespace {

constexpr double kNoValue = -1.0;

double median_of(std::vector<double> v) {
  if (v.empty()) return kNoValue;
  std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + mid, v.end());
  double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  double lo = *std::max_element(v.begin(), v.begin() + mid);
  return 0.5 * (lo + hi);
}

// Median absolute deviation, scaled to estimate sigma under normality.
double mad_scale(const std::vector<double>& residuals) {
  std::vector<double> abs;
  abs.reserve(residuals.size());
  for (double r : residuals) {
    if (r != kNoValue) abs.push_back(std::fabs(r));
  }
  double mad = median_of(std::move(abs));
  return std::max(mad * 1.4826, 1e-3);
}

struct CrossingKey {
  std::uint32_t near_addr = 0;
  std::uint32_t far_addr = 0;
  bool operator<(const CrossingKey& o) const {
    return near_addr != o.near_addr ? near_addr < o.near_addr
                                    : far_addr < o.far_addr;
  }
};

}  // namespace

const char* anomaly_kind_name(AnomalyKind kind) {
  switch (kind) {
    case AnomalyKind::kRttShift:
      return "rtt_shift";
    case AnomalyKind::kCrossingShift:
      return "crossing_shift";
    case AnomalyKind::kNewCrossing:
      return "new_crossing";
    case AnomalyKind::kWithdrawnCrossing:
      return "withdrawn_crossing";
  }
  return "unknown";
}

AnomalyReport detect_anomalies(const measure::CampaignResult& result,
                               const Ip2As& ip2as,
                               const AnomalyConfig& config) {
  AnomalyReport report;
  const double bin_hours = std::max(config.bin_hours, 1e-6);
  auto bin_of = [bin_hours](double t) {
    return static_cast<std::size_t>(std::max(0.0, std::floor(t / bin_hours)));
  };

  // ---- bin count from the full campaign span ----
  std::size_t bins = 0;
  for (const measure::NdtRecord& t : result.tests) {
    bins = std::max(bins, bin_of(t.utc_time_hours) + 1);
  }
  for (const measure::TracerouteRecord& tr : result.traceroutes) {
    bins = std::max(bins, bin_of(tr.utc_time_hours) + 1);
  }
  report.bins = bins;

  // ---- series 1: per-bin flow RTT from completed tests ----
  std::vector<std::vector<double>> rtt_bins(bins);
  for (const measure::NdtRecord& t : result.tests) {
    if (!t.completed() || !t.has_webstats) {
      ++report.tests_skipped;
      continue;
    }
    ++report.tests_used;
    rtt_bins[bin_of(t.utc_time_hours)].push_back(t.flow_rtt_ms);
  }

  // ---- series 2: per-bin inter-AS crossing counts ----
  // A crossing is a pair of consecutively-responding hops (adjacent TTLs,
  // no star between them) whose origin ASNs differ and are both known.
  std::map<CrossingKey, std::vector<std::size_t>> crossing_bins;
  std::vector<std::size_t> crossing_total(bins, 0);
  std::map<CrossingKey, std::pair<topo::Asn, topo::Asn>> crossing_asns;
  for (const measure::TracerouteRecord& tr : result.traceroutes) {
    std::size_t b = bin_of(tr.utc_time_hours);
    const measure::TraceHop* prev = nullptr;
    std::size_t found = 0;
    for (const measure::TraceHop& h : tr.hops) {
      if (!h.responded) {
        prev = nullptr;
        continue;
      }
      if (prev != nullptr && h.ttl == prev->ttl + 1) {
        topo::Asn a = ip2as.origin(prev->addr);
        topo::Asn c = ip2as.origin(h.addr);
        if (a != 0 && c != 0 && a != c) {
          CrossingKey key{prev->addr.value, h.addr.value};
          auto [it, fresh] =
              crossing_bins.try_emplace(key, std::vector<std::size_t>(bins, 0));
          ++it->second[b];
          ++crossing_total[b];
          if (fresh) crossing_asns[key] = {a, c};
          ++found;
        }
      }
      prev = &h;
    }
    if (found > 0) {
      ++report.traces_used;
    } else {
      ++report.traces_skipped;
    }
  }

  if (bins < 2) {
    report.insufficient = true;
    return report;
  }
  const std::size_t warmup =
      std::min(static_cast<std::size_t>(std::max(config.warmup_bins, 0)),
               bins - 1);

  // ---- RTT shift: diurnal-corrected median, MAD-scaled, two-sided CUSUM ---
  {
    std::vector<double> bin_median(bins, kNoValue);
    for (std::size_t b = 0; b < bins; ++b) {
      if (rtt_bins[b].size() >= config.min_samples_per_bin) {
        bin_median[b] = median_of(rtt_bins[b]);
      }
    }
    // Hour-of-day phase baseline from the first two days only, so a
    // persistent post-epoch shift cannot contaminate its own reference.
    std::size_t bins_per_day = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::lround(24.0 / bin_hours)));
    std::size_t baseline_bins =
        std::min(bins, std::max(2 * bins_per_day, warmup + 1));
    std::vector<std::vector<double>> phase_vals(bins_per_day);
    for (std::size_t b = 0; b < baseline_bins; ++b) {
      if (bin_median[b] != kNoValue) {
        phase_vals[b % bins_per_day].push_back(bin_median[b]);
      }
    }
    std::vector<double> phase_median(bins_per_day, kNoValue);
    for (std::size_t p = 0; p < bins_per_day; ++p) {
      phase_median[p] = median_of(phase_vals[p]);
    }
    std::vector<double> residual(bins, kNoValue);
    for (std::size_t b = 0; b < bins; ++b) {
      double base = phase_median[b % bins_per_day];
      if (bin_median[b] != kNoValue && base != kNoValue) {
        residual[b] = bin_median[b] - base;
      }
    }
    // Robust scale, also from the baseline window (fall back to the whole
    // series when the window is too sparse).
    std::vector<double> base_resid(residual.begin(),
                                   residual.begin() + baseline_bins);
    std::size_t base_vals = 0;
    for (double r : base_resid) base_vals += r != kNoValue;
    // Floor at a quarter millisecond: shifts below that are measurement
    // noise, not reroutes.
    double scale =
        std::max(mad_scale(base_vals >= 3 ? base_resid : residual), 0.25);
    double s_hi = 0.0;
    double s_lo = 0.0;
    for (std::size_t b = 0; b < bins; ++b) {
      if (residual[b] == kNoValue) continue;
      double z = residual[b] / scale;
      s_hi = std::max(0.0, s_hi + z - config.cusum_k);
      s_lo = std::max(0.0, s_lo - z - config.cusum_k);
      if (b >= warmup && std::max(s_hi, s_lo) > config.cusum_h) {
        AnomalyFinding f;
        f.kind = AnomalyKind::kRttShift;
        f.onset_hours = static_cast<double>(b) * bin_hours;
        f.score = std::max(s_hi, s_lo);
        report.alarms.push_back(f);
        break;  // first onset only; later shifts fold into the same epoch
      }
    }
  }

  // ---- crossing-level detection ----
  for (const auto& [key, counts] : crossing_bins) {
    auto [near_asn, far_asn] = crossing_asns[key];
    auto share = [&](std::size_t b) {
      return crossing_total[b] == 0
                 ? 0.0
                 : static_cast<double>(counts[b]) /
                       static_cast<double>(crossing_total[b]);
    };
    // First and last bins with any mass.
    std::size_t first = bins;
    std::size_t last = 0;
    for (std::size_t b = 0; b < bins; ++b) {
      if (counts[b] > 0) {
        if (first == bins) first = b;
        last = b;
      }
    }
    if (first == bins) continue;

    // New crossing: first appearance after warmup with real share, while
    // earlier bins carried enough traffic to have seen it.
    if (first >= warmup && first > 0 && share(first) >= config.min_share) {
      bool earlier_mass = false;
      for (std::size_t b = 0; b < first; ++b) {
        if (crossing_total[b] >= config.min_samples_per_bin) {
          earlier_mass = true;
          break;
        }
      }
      if (earlier_mass) {
        AnomalyFinding f;
        f.kind = AnomalyKind::kNewCrossing;
        f.onset_hours = static_cast<double>(first) * bin_hours;
        f.score = share(first);
        f.near_addr = topo::IpAddr(key.near_addr);
        f.far_addr = topo::IpAddr(key.far_addr);
        f.near_asn = near_asn;
        f.far_asn = far_asn;
        report.alarms.push_back(f);
      }
    }

    // Withdrawn crossing: established presence, then zero mass for every
    // remaining bin while total crossings kept flowing. Two ways in: a
    // share peak (small corpora, where one crossing is a visible slice of
    // the whole), or an expected-miss test that stays meaningful at scale —
    // with a historical rate of r observations per active bin, a silent run
    // of m bins has r*m expected observations, so r*m past the threshold
    // makes the silence evidence of withdrawal rather than sampling.
    if (last + 1 < bins) {
      double peak = 0.0;
      std::size_t total_count = 0;
      for (std::size_t b = 0; b <= last; ++b) {
        peak = std::max(peak, share(b));
        total_count += counts[b];
      }
      double rate = static_cast<double>(total_count) /
                    static_cast<double>(last - first + 1);
      double silence = static_cast<double>(bins - 1 - last);
      bool later_mass = false;
      for (std::size_t b = last + 1; b < bins; ++b) {
        if (crossing_total[b] >= config.min_samples_per_bin) {
          later_mass = true;
          break;
        }
      }
      if ((peak >= config.min_share ||
           rate * silence >= config.withdrawn_min_expected) &&
          later_mass) {
        AnomalyFinding f;
        f.kind = AnomalyKind::kWithdrawnCrossing;
        f.onset_hours = static_cast<double>(last + 1) * bin_hours;
        f.score = peak;
        f.near_addr = topo::IpAddr(key.near_addr);
        f.far_addr = topo::IpAddr(key.far_addr);
        f.near_asn = near_asn;
        f.far_asn = far_asn;
        report.withdrawn.push_back(f);
        report.alarms.push_back(f);
      }
    }

    // Share shift: CUSUM against the warmup-bin baseline, for crossings
    // that persist across the campaign (skip those already flagged above).
    if (first < warmup && last + 1 == bins) {
      double base_sum = 0.0;
      std::size_t base_n = 0;
      for (std::size_t b = 0; b < warmup; ++b) {
        if (crossing_total[b] >= config.min_samples_per_bin) {
          base_sum += share(b);
          ++base_n;
        }
      }
      if (base_n == 0) continue;
      double base = base_sum / static_cast<double>(base_n);
      double scale = std::max(0.5 * base, 0.01);
      double s_hi = 0.0;
      double s_lo = 0.0;
      for (std::size_t b = 0; b < bins; ++b) {
        if (crossing_total[b] < config.min_samples_per_bin) continue;
        double z = (share(b) - base) / scale;
        s_hi = std::max(0.0, s_hi + z - config.cusum_k);
        s_lo = std::max(0.0, s_lo - z - config.cusum_k);
        if (b >= warmup && std::max(s_hi, s_lo) > config.cusum_h) {
          AnomalyFinding f;
          f.kind = AnomalyKind::kCrossingShift;
          f.onset_hours = static_cast<double>(b) * bin_hours;
          f.score = std::max(s_hi, s_lo);
          f.near_addr = topo::IpAddr(key.near_addr);
          f.far_addr = topo::IpAddr(key.far_addr);
          f.near_asn = near_asn;
          f.far_asn = far_asn;
          report.alarms.push_back(f);
          break;
        }
      }
    }
  }

  // ---- cluster alarm onsets into epoch candidates ----
  std::vector<double> onsets;
  onsets.reserve(report.alarms.size());
  for (const AnomalyFinding& f : report.alarms) onsets.push_back(f.onset_hours);
  std::sort(onsets.begin(), onsets.end());
  for (double t : onsets) {
    if (report.epochs.empty() ||
        t - report.epochs.back() > config.epoch_cluster_hours) {
      report.epochs.push_back(t);
    }
  }
  return report;
}

}  // namespace netcong::infer
