#pragma once

// Strong index types for topology entities. Each wraps a 32-bit index into
// the owning container in Topology; distinct types prevent accidentally
// indexing routers with interface ids and the like.

#include <cstdint>
#include <functional>
#include <limits>

namespace netcong::topo {

template <typename Tag>
struct Id {
  std::uint32_t value = kInvalid;

  static constexpr std::uint32_t kInvalid =
      std::numeric_limits<std::uint32_t>::max();

  constexpr Id() = default;
  constexpr explicit Id(std::uint32_t v) : value(v) {}

  constexpr bool valid() const { return value != kInvalid; }
  constexpr std::size_t index() const { return value; }

  friend constexpr bool operator==(Id a, Id b) { return a.value == b.value; }
  friend constexpr bool operator!=(Id a, Id b) { return a.value != b.value; }
  friend constexpr bool operator<(Id a, Id b) { return a.value < b.value; }
};

struct RouterTag {};
struct InterfaceTag {};
struct LinkTag {};
struct CityTag {};
struct OrgTag {};

using RouterId = Id<RouterTag>;
using InterfaceId = Id<InterfaceTag>;
using LinkId = Id<LinkTag>;
using CityId = Id<CityTag>;
using OrgId = Id<OrgTag>;

// AS numbers are real-world-style values (e.g. 7922), not indices.
using Asn = std::uint32_t;
inline constexpr Asn kInvalidAsn = 0;

}  // namespace netcong::topo

namespace std {
template <typename Tag>
struct hash<netcong::topo::Id<Tag>> {
  size_t operator()(netcong::topo::Id<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};
}  // namespace std
