#include "topo/dns.h"

#include <cctype>

#include "util/strings.h"

namespace netcong::topo {

std::string peer_tag_from_org(const std::string& org_name) {
  std::string tag;
  for (char c : org_name) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      tag.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    } else {
      if (!tag.empty() && tag.back() != '-') tag.push_back('-');
    }
  }
  while (!tag.empty() && tag.back() == '-') tag.pop_back();
  if (tag.size() > 11) tag.resize(11);
  return tag;
}

std::string make_interdomain_dns_name(const std::string& peer_org_name,
                                      const std::string& router_name,
                                      const std::string& city_name,
                                      int pop_index,
                                      const std::string& owner_domain) {
  std::string city = city_name;
  // Strip spaces from multi-word city names ("San Jose" -> "SanJose").
  std::string compact;
  for (char c : city) {
    if (!std::isspace(static_cast<unsigned char>(c))) compact.push_back(c);
  }
  return util::format("%s.%s.%s%d.%s", peer_tag_from_org(peer_org_name).c_str(),
                      router_name.c_str(), compact.c_str(), pop_index,
                      owner_domain.c_str());
}

std::optional<DnsNameParts> parse_interdomain_dns_name(
    const std::string& name) {
  auto parts = util::split(name, '.');
  // PEER-TAG . router . CityN . owner . tld  (owner domain may be 2 labels)
  if (parts.size() < 5) return std::nullopt;
  DnsNameParts out;
  out.peer_tag = parts[0];
  out.router_name = parts[1];
  out.city_tag = parts[2];
  std::vector<std::string> domain(parts.begin() + 3, parts.end());
  out.domain = util::join(domain, ".");
  if (out.peer_tag.empty() || out.router_name.empty() || out.city_tag.empty())
    return std::nullopt;
  // The city tag must end in a digit (PoP index) to follow the convention.
  if (!std::isdigit(static_cast<unsigned char>(out.city_tag.back())))
    return std::nullopt;
  return out;
}

}  // namespace netcong::topo
