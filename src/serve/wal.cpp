#include "serve/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

namespace netcong::serve {

namespace fs = std::filesystem;

namespace {

std::string segment_name(std::uint64_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%08llu.seg",
                static_cast<unsigned long long>(index));
  return buf;
}

// Extracts the numeric index from a "wal-XXXXXXXX.seg" basename; returns
// false for anything else in the directory.
bool parse_segment_index(const std::string& name, std::uint64_t* index) {
  if (name.size() != 16 || name.rfind("wal-", 0) != 0 ||
      name.substr(12) != ".seg") {
    return false;
  }
  std::uint64_t v = 0;
  for (std::size_t i = 4; i < 12; ++i) {
    char c = name[i];
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *index = v;
  return true;
}

// Full write with EINTR/short-write handling.
bool write_all(int fd, const std::uint8_t* data, std::size_t n) {
  while (n > 0) {
    ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace

WalWriter::~WalWriter() { close(); }

util::Status WalWriter::open(const std::string& dir, WalOptions options) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) return util::error_status("wal already open");
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return util::error_status("wal dir '" + dir + "': " + ec.message());
  }
  dir_ = dir;
  options_ = options;
  failed_ = false;
  // Never reopen an existing segment for append: recovery owns old tails,
  // the writer owns only segments it created.
  std::uint64_t next = 0;
  for (const std::string& path : wal_segments(dir)) {
    std::uint64_t idx = 0;
    if (parse_segment_index(fs::path(path).filename().string(), &idx)) {
      next = std::max(next, idx + 1);
    }
  }
  segment_index_ = next;
  return rotate_locked();
}

util::Status WalWriter::rotate_locked() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    ++segment_index_;
  }
  std::string path = dir_ + "/" + segment_name(segment_index_);
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return util::error_status("wal open '" + path +
                              "': " + std::strerror(errno));
  }
  if (!write_all(fd, reinterpret_cast<const std::uint8_t*>(kWalMagic),
                 kWalMagicBytes)) {
    ::close(fd);
    return util::error_status("wal magic write failed: " +
                              std::string(std::strerror(errno)));
  }
  fd_ = fd;
  segment_size_ = kWalMagicBytes;
  segment_records_ = 0;
  ++stats_.segments_created;
  stats_.bytes_written += kWalMagicBytes;
  return util::ok_status();
}

util::Status WalWriter::append(const IngestEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (failed_) return util::error_status("wal writer failed (torn write)");
  if (fd_ < 0) return util::error_status("wal not open");

  std::vector<std::uint8_t> frame;
  append_frame(event, frame);

  if (segment_records_ > 0 &&
      segment_size_ + frame.size() > options_.segment_bytes) {
    util::Status st = rotate_locked();
    if (!st.ok()) return st;
  }

  const sim::FaultInjector* f = options_.faults;
  double torn_prob = f ? f->config().wal_torn_write_prob : 0.0;
  if (f && frame.size() > 1 &&
      f->fires(sim::FaultSite::kWalTornWrite, stats_.appended, torn_prob)) {
    // Simulated crash mid-append: a strict prefix of the frame reaches the
    // disk and this process never runs again. The partial length comes
    // from the same (seed, site, item) stream as the decision, after
    // re-taking the decision draw, so it is deterministic too.
    util::Rng rng = f->stream(sim::FaultSite::kWalTornWrite, stats_.appended);
    (void)rng.chance(torn_prob);
    std::size_t partial = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(frame.size()) - 1));
    write_all(fd_, frame.data(), partial);
    segment_size_ += partial;
    stats_.bytes_written += partial;
    ++stats_.torn_writes;
    failed_ = true;
    return util::error_status("wal torn write (simulated crash)");
  }

  if (!write_all(fd_, frame.data(), frame.size())) {
    failed_ = true;
    return util::error_status("wal write failed: " +
                              std::string(std::strerror(errno)));
  }
  segment_size_ += frame.size();
  stats_.bytes_written += frame.size();
  ++segment_records_;
  ++stats_.appended;

  if (options_.fsync_each_append) return sync_locked();
  return util::ok_status();
}

util::Status WalWriter::sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return util::error_status("wal not open");
  return sync_locked();
}

util::Status WalWriter::sync_locked() {
  ++stats_.syncs;
  const sim::FaultInjector* f = options_.faults;
  if (f && f->fires(sim::FaultSite::kWalFsyncFail, stats_.syncs,
                    f->config().wal_fsync_fail_prob)) {
    // Injected fsync failure: the append survives only in the page cache.
    // Counted, not fatal — the writer keeps running, and whether the data
    // survives a crash is the recovery property's business.
    ++stats_.fsync_failures;
    return util::ok_status();
  }
  if (::fsync(fd_) != 0) {
    ++stats_.fsync_failures;
    return util::error_status("fsync failed: " +
                              std::string(std::strerror(errno)));
  }
  return util::ok_status();
}

void WalWriter::close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    if (!failed_) ::fsync(fd_);
    ::close(fd_);
    fd_ = -1;
  }
}

bool WalWriter::is_open() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fd_ >= 0;
}

bool WalWriter::failed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failed_;
}

WalStats WalWriter::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<std::string> wal_segments(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    std::uint64_t idx = 0;
    if (parse_segment_index(entry.path().filename().string(), &idx)) {
      out.push_back(entry.path().string());
    }
  }
  // Fixed-width zero-padded indices: lexicographic order is numeric order.
  std::sort(out.begin(), out.end());
  return out;
}

util::Result<WalRecovery> recover_wal(const std::string& dir, bool repair) {
  using R = util::Result<WalRecovery>;
  std::error_code ec;
  if (!fs::exists(dir, ec)) {
    return R::failure("wal dir '" + dir + "' does not exist");
  }
  if (!fs::is_directory(dir, ec)) {
    return R::failure("wal dir '" + dir + "' is not a directory");
  }

  WalRecovery rec;
  std::vector<std::string> segments = wal_segments(dir);
  std::size_t stop_segment = segments.size();  // first segment to drop
  std::size_t truncate_at = 0;                 // keep [0, truncate_at) of it
  bool truncate_in_place = false;

  for (std::size_t s = 0; s < segments.size(); ++s) {
    const std::string& path = segments[s];
    std::vector<std::uint8_t> data;
    {
      std::ifstream in(path, std::ios::binary);
      if (!in) return R::failure("cannot read wal segment '" + path + "'");
      in.seekg(0, std::ios::end);
      std::streamoff size = in.tellg();
      in.seekg(0, std::ios::beg);
      data.resize(static_cast<std::size_t>(size));
      if (size > 0 &&
          !in.read(reinterpret_cast<char*>(data.data()), size)) {
        return R::failure("short read on wal segment '" + path + "'");
      }
    }
    ++rec.segments_scanned;
    rec.bytes_scanned += data.size();

    if (data.size() < kWalMagicBytes ||
        std::memcmp(data.data(), kWalMagic, kWalMagicBytes) != 0) {
      // A bad magic means nothing in this segment can be trusted; the
      // valid prefix ends at the previous segment boundary.
      rec.truncated_tail = true;
      rec.tail_error = "bad segment magic";
      rec.torn_bytes += data.size();
      stop_segment = s;
      break;
    }

    std::size_t off = kWalMagicBytes;
    bool bad = false;
    while (off < data.size()) {
      FrameView frame;
      std::size_t consumed = 0;
      FrameError err =
          parse_frame(data.data() + off, data.size() - off, &frame, &consumed);
      if (err == FrameError::kNone) {
        util::Result<IngestEvent> ev = decode_event(frame);
        if (!ev.ok()) {
          err = FrameError::kBadPayload;
          rec.tail_error = ev.error();
        } else {
          rec.events.push_back(std::move(ev.value()));
          off += consumed;
          continue;
        }
      }
      // First invalid byte: the valid prefix ends here. Everything after
      // it — the rest of this segment and all later segments — is cut.
      rec.truncated_tail = true;
      if (rec.tail_error.empty()) rec.tail_error = frame_error_name(err);
      rec.torn_bytes += data.size() - off;
      stop_segment = s;
      truncate_at = off;
      truncate_in_place = true;
      bad = true;
      break;
    }
    if (bad) break;
  }

  if (repair && rec.truncated_tail) {
    if (truncate_in_place) {
      fs::resize_file(segments[stop_segment], truncate_at, ec);
      if (ec) {
        return R::failure("wal repair: cannot truncate '" +
                          segments[stop_segment] + "': " + ec.message());
      }
      for (std::size_t s = stop_segment + 1; s < segments.size(); ++s) {
        fs::remove(segments[s], ec);
        ++rec.segments_dropped;
      }
    } else {
      // Bad magic: the whole segment and everything after it goes.
      for (std::size_t s = stop_segment; s < segments.size(); ++s) {
        fs::remove(segments[s], ec);
        ++rec.segments_dropped;
      }
    }
  }

  return R::success(std::move(rec));
}

}  // namespace netcong::serve
