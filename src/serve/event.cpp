#include "serve/event.h"

#include <algorithm>

#include "measure/fingerprint.h"

namespace netcong::serve {

namespace {

double event_time(const IngestEvent& ev) {
  if (const auto* t = std::get_if<measure::NdtRecord>(&ev)) {
    return t->utc_time_hours;
  }
  return std::get<measure::TracerouteRecord>(ev).utc_time_hours;
}

// Interleaves the two per-kind streams into arrival order. stable_sort with
// a time-then-kind key keeps each stream's internal order and puts the NDT
// result ahead of the traceroute it triggered (equal timestamps).
std::vector<IngestEvent> merge_streams(std::vector<IngestEvent> log) {
  std::stable_sort(log.begin(), log.end(),
                   [](const IngestEvent& a, const IngestEvent& b) {
                     double ta = event_time(a), tb = event_time(b);
                     if (ta != tb) return ta < tb;
                     return a.index() < b.index();
                   });
  return log;
}

}  // namespace

std::vector<IngestEvent> event_log_from(
    const measure::CampaignResult& result) {
  std::vector<IngestEvent> log;
  log.reserve(result.tests.size() + result.traceroutes.size());
  for (const auto& t : result.tests) log.emplace_back(t);
  for (const auto& tr : result.traceroutes) log.emplace_back(tr);
  return merge_streams(std::move(log));
}

std::vector<IngestEvent> event_log_from(
    const measure::ColumnarCampaignResult& result) {
  std::vector<IngestEvent> log;
  log.reserve(result.tests.size() + result.traceroutes.size());
  for (std::size_t i = 0; i < result.tests.size(); ++i) {
    log.emplace_back(result.tests.materialize(i, result.paths));
  }
  for (std::size_t i = 0; i < result.traceroutes.size(); ++i) {
    log.emplace_back(
        result.traceroutes.materialize(i, *result.topo, result.paths));
  }
  return merge_streams(std::move(log));
}

std::uint64_t fingerprint(const std::vector<IngestEvent>& log,
                          std::size_t prefix) {
  if (prefix > log.size()) prefix = log.size();
  measure::Fingerprint fp;
  fp.mix(static_cast<std::uint64_t>(prefix));
  for (std::size_t i = 0; i < prefix; ++i) {
    const IngestEvent& ev = log[i];
    fp.mix(static_cast<std::uint64_t>(ev.index()));
    if (const auto* t = std::get_if<measure::NdtRecord>(&ev)) {
      measure::mix_record(fp, *t);
    } else {
      measure::mix_record(fp, std::get<measure::TracerouteRecord>(ev));
    }
  }
  return fp.value();
}

}  // namespace netcong::serve
