#include "util/table.h"

#include <algorithm>

#include "util/strings.h"

namespace netcong::util {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  aligns_.resize(headers_.size(), Align::kRight);
  if (!aligns_.empty()) aligns_[0] = Align::kLeft;
}

void TextTable::set_align(std::size_t col, Align align) {
  if (col < aligns_.size()) aligns_[col] = align;
}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::add_row_mixed(const std::vector<std::string>& text_cells,
                              const std::vector<double>& numeric_cells) {
  std::vector<std::string> cells = text_cells;
  for (double v : numeric_cells) cells.push_back(format_compact(v));
  add_row(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto pad = [&](const std::string& s, std::size_t c) {
    std::string out;
    std::size_t fill = widths[c] > s.size() ? widths[c] - s.size() : 0;
    if (aligns_[c] == Align::kRight) out.append(fill, ' ');
    out += s;
    if (aligns_[c] == Align::kLeft) out.append(fill, ' ');
    return out;
  };

  std::string out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) out += "  ";
    out += pad(headers_[c], c);
  }
  out += '\n';
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c > 0 ? 2 : 0);
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += "  ";
      out += pad(row[c], c);
    }
    out += '\n';
  }
  return out;
}

}  // namespace netcong::util
