#include "sim/packet/tcp.h"

#include <algorithm>
#include <cmath>

namespace netcong::sim::packet {

TcpFlow::TcpFlow(int id, EventQueue& events, Params params,
                 std::function<bool(const Packet&)> transmit)
    : id_(id),
      events_(&events),
      params_(params),
      transmit_(std::move(transmit)),
      cwnd_(params.initial_cwnd) {}

void TcpFlow::start(double at_time) {
  events_->schedule(at_time, [this] {
    running_ = true;
    try_send();
    schedule_rto();
  });
}

void TcpFlow::try_send() {
  if (!running_) return;
  auto in_flight = [&] { return next_seq_ - (cum_acked_ + 1); };
  while (static_cast<double>(in_flight()) < cwnd_ &&
         cwnd_ <= params_.max_cwnd) {
    send_packet(next_seq_, /*retransmit=*/false);
    ++next_seq_;
  }
}

void TcpFlow::send_packet(std::int64_t seq, bool retransmit) {
  Packet p;
  p.flow = id_;
  p.seq = seq;
  p.size_bytes = params_.mss_bytes;
  p.sent_time = events_->now();
  p.retransmit = retransmit;
  ++stats_.packets_sent;
  if (retransmit) {
    ++stats_.retransmits;
    sent_at_.erase(seq);  // Karn: never sample RTT off a retransmit
  } else {
    sent_at_[seq] = p.sent_time;
  }
  // A drop at the bottleneck is silent; loss is discovered via dupacks/RTO.
  transmit_(p);
}

void TcpFlow::on_packet_delivered(const Packet& p) {
  // Downstream propagation + ACK return takes the remaining base RTT
  // (the sender-to-bottleneck leg is treated as instantaneous; base_rtt_s
  // covers the full loop minus bottleneck queueing).
  double deliver_at = events_->now() + params_.base_rtt_s;
  std::int64_t seq = p.seq;
  double sent_time = p.sent_time;
  bool was_retx = p.retransmit;
  events_->schedule(deliver_at, [this, seq, sent_time, was_retx] {
    on_ack(seq, sent_time, was_retx);
  });
}

void TcpFlow::update_rtt(double sample_s) {
  if (srtt_s_ == 0.0) {
    srtt_s_ = sample_s;
    rttvar_s_ = sample_s / 2.0;
  } else {
    rttvar_s_ = 0.75 * rttvar_s_ + 0.25 * std::fabs(srtt_s_ - sample_s);
    srtt_s_ = 0.875 * srtt_s_ + 0.125 * sample_s;
  }
  rto_s_ = std::clamp(srtt_s_ + 4.0 * rttvar_s_, 0.2, 60.0);
}

void TcpFlow::on_ack(std::int64_t seq, double sent_time, bool was_retransmit) {
  if (!running_) return;

  // RTT sample (Karn's rule).
  if (!was_retransmit) {
    auto it = sent_at_.find(seq);
    if (it != sent_at_.end() && it->second == sent_time) {
      double sample = events_->now() - sent_time;
      update_rtt(sample);
      if (params_.record_rtt) {
        stats_.rtt_samples_ms.push_back(sample * 1000.0);
      }
      sent_at_.erase(it);
    }
  }

  if (seq == cum_acked_ + 1) {
    // In-order arrival advances the cumulative ack.
    cum_acked_ = seq;
    ++stats_.packets_acked;
    stats_.ack_trace.emplace_back(events_->now(), cum_acked_);
    dupacks_ = 0;
    if (in_recovery_ && cum_acked_ >= recovery_end_) in_recovery_ = false;

    if (cwnd_ < ssthresh_) {
      cwnd_ += 1.0;  // slow start
    } else {
      cwnd_ += 1.0 / cwnd_;  // congestion avoidance
    }
    rto_epoch_++;  // fresh data acked: restart the timer
    schedule_rto();
    try_send();
  } else if (seq > cum_acked_ + 1) {
    // A gap: the receiver would emit a duplicate ACK for cum_acked_.
    ++dupacks_;
    if (dupacks_ == 3 && !in_recovery_) {
      // Fast retransmit + (simplified) fast recovery.
      in_recovery_ = true;
      recovery_end_ = next_seq_ - 1;
      ssthresh_ = std::max(2.0, cwnd_ / 2.0);
      cwnd_ = ssthresh_;
      ++stats_.congestion_signals;
      send_packet(cum_acked_ + 1, /*retransmit=*/true);
      rto_epoch_++;
      schedule_rto();
    }
  }
  // seq <= cum_acked_: stale (already covered by a retransmit); ignore.
}

void TcpFlow::schedule_rto() {
  std::uint64_t epoch = rto_epoch_;
  events_->schedule(events_->now() + rto_s_,
                    [this, epoch] { on_rto(epoch); });
}

void TcpFlow::on_rto(std::uint64_t epoch) {
  if (!running_ || epoch != rto_epoch_) return;  // stale timer
  if (cum_acked_ + 1 >= next_seq_) {
    // Nothing outstanding; keep an idle timer alive.
    rto_epoch_++;
    schedule_rto();
    return;
  }
  ++stats_.timeouts;
  ++stats_.congestion_signals;
  ssthresh_ = std::max(2.0, cwnd_ / 2.0);
  cwnd_ = 1.0;
  dupacks_ = 0;
  in_recovery_ = false;
  // Go-back-N from the hole.
  next_seq_ = cum_acked_ + 1;
  send_packet(next_seq_, /*retransmit=*/true);
  ++next_seq_;
  rto_s_ = std::min(60.0, rto_s_ * 2.0);  // backoff
  rto_epoch_++;
  schedule_rto();
}

}  // namespace netcong::sim::packet
