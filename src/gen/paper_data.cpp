#include "gen/paper_data.h"

namespace netcong::gen::paper {

const std::vector<ProviderRow>& table1_providers() {
  static const std::vector<ProviderRow> rows = {
      {"Comcast", 23329000},      {"AT&T", 15778000},
      {"Time Warner Cable", 13313000}, {"Verizon", 9228000},
      {"CenturyLink", 6048000},   {"Charter", 5572000},
      {"Cox", 4300000},           {"Cablevision", 2809000},
      {"Frontier", 2444000},      {"Suddenlink", 1467000},
      {"Windstream", 1095100},    {"Mediacom", 1085000},
  };
  return rows;
}

const std::vector<AdjacencyRow>& fig1_adjacency() {
  static const std::vector<AdjacencyRow> rows = {
      {"Comcast", 0.96, 117000}, {"AT&T", 0.91, 89000},
      {"TWC", 0.75, 56000},      {"Verizon", 0.86, 59000},
      {"CenturyLink", 0.82, 13000}, {"Charter", 0.37, 1000},
      {"Cox", 0.39, 39000},      {"Frontier", 0.47, 6000},
      {"Windstream", 0.06, 4000},
  };
  return rows;
}

MatchingStats sec41_matching() { return MatchingStats{}; }

const std::vector<BdrmapRow>& table3_bdrmap() {
  static const std::vector<BdrmapRow> rows = {
      {"Comcast", "bed-us", 1333, 2896, 1115, 1738, 3, 37, 41, 541},
      {"Comcast", "mry-us", 1336, 2874, 1118, 1740, 3, 43, 41, 478},
      {"Comcast", "atl2-us", 1327, 1785, 1107, 1318, 3, 20, 41, 139},
      {"Comcast", "wbu2-us", 1050, 1485, 897, 1129, 4, 23, 48, 131},
      {"Comcast", "bos5-us", 1279, 1768, 1070, 1293, 3, 16, 40, 159},
      {"Verizon", "mnz-us", 1423, 2187, 1304, 1988, 12, 32, 21, 49},
      {"TWC", "ith-us", 720, 968, 588, 662, 3, 28, 28, 83},
      {"TWC", "lex-us", 676, 935, 547, 613, 3, 29, 27, 83},
      {"TWC", "san4-us", 660, 865, 535, 599, 3, 26, 28, 65},
      {"Cox", "msy-us", 482, 623, 363, 410, 4, 13, 21, 27},
      {"Cox", "san2-us", 488, 639, 370, 424, 4, 15, 21, 29},
      {"CenturyLink", "aza-us", 1729, 2439, 1572, 2186, 3, 7, 42, 99},
      {"Sonic", "wvi-us", 96, 106, 6, 6, 4, 5, 10, 10},
      {"RCN", "bed3-us", 87, 101, 35, 38, 1, 5, 36, 41},
      {"Frontier", "igx-us", 56, 73, 29, 30, 3, 6, 17, 29},
      {"AT&T", "san6-us", 2283, 3336, 2123, 2872, 12, 127, 40, 132},
  };
  return rows;
}

const std::vector<CoverageRow>& sec52_coverage() {
  static const std::vector<CoverageRow> rows = {
      {"Comcast", 0.9, 5.6},  {"Verizon", 0.8, 4.0},
      {"TWC", 1.3, 6.7},      {"Cox", 1.2, 11.5},
      {"AT&T", 0.4, 2.3},     {"CenturyLink", 0.7, 5.7},
      {"Frontier", 9.0, 0.0},  // 9% was the M-Lab max; Speedtest n/a in text
      {"Sonic", 0.0, 28.0},    // 28% was the Speedtest max
  };
  return rows;
}

PeerCoverageBounds sec52_peer_bounds() { return PeerCoverageBounds{}; }

AlexaOverlap sec53_alexa() { return AlexaOverlap{}; }

Snapshots sec54_snapshots() { return Snapshots{}; }

DiurnalCase fig5_case() { return DiurnalCase{}; }

const std::vector<Table2Row>& table2_links() {
  static const std::vector<Table2Row> rows = {
      {"Comcast (AS7922)", 2, "1759,8"},
      {"Comcast (AS7725)", 1, "1650"},
      {"Comcast (AS22909)", 1, "1130"},
      {"AT&T (AS7018)", 14,
       "2395,820,770,216,137,25,21,19,19,17,17,8,2,1"},
      {"Verizon (AS701)", 8, "548,62,54,42,20,2,1,1"},
      {"Verizon (AS6167)", 2, "3,3"},
      {"Cox (AS22773)", 39, "total 817, max 378"},
      {"Frontier (AS5650)", 1, "107"},
      {"CenturyLink (AS209)", 4, "383,39,22,1"},
  };
  return rows;
}

}  // namespace netcong::gen::paper
