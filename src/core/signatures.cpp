#include "core/signatures.h"

#include <algorithm>

#include "stats/descriptive.h"

namespace netcong::core {

const char* congestion_type_name(CongestionType t) {
  switch (t) {
    case CongestionType::kSelfInduced:
      return "self-induced";
    case CongestionType::kPreExisting:
      return "pre-existing";
    case CongestionType::kIndeterminate:
      return "indeterminate";
  }
  return "?";
}

SignatureFeatures extract_features(const std::vector<double>& rtt_samples_ms,
                                   std::size_t early_window) {
  SignatureFeatures f;
  if (rtt_samples_ms.size() < early_window || rtt_samples_ms.empty()) {
    return f;
  }
  f.min_rtt_ms = stats::min(rtt_samples_ms);
  std::vector<double> early(rtt_samples_ms.begin(),
                            rtt_samples_ms.begin() +
                                static_cast<std::ptrdiff_t>(early_window));
  f.early_rtt_ms = stats::median(std::move(early));
  f.p90_rtt_ms = stats::percentile(rtt_samples_ms, 90.0);
  if (f.min_rtt_ms > 0) {
    f.early_elevation = (f.early_rtt_ms - f.min_rtt_ms) / f.min_rtt_ms;
    f.range_ratio = (f.p90_rtt_ms - f.min_rtt_ms) / f.min_rtt_ms;
  }
  return f;
}

CongestionType SignatureClassifier::classify(
    const SignatureFeatures& f) const {
  if (f.min_rtt_ms <= 0.0) return CongestionType::kIndeterminate;
  if (f.early_elevation >= early_elevation_threshold) {
    // Started queued. But if the flow later built far more queue than it
    // found, the early elevation was its own slow-start burst.
    if (f.range_ratio > self_range_margin * (1.0 + f.early_elevation) &&
        f.early_elevation < 2.0 * early_elevation_threshold) {
      return CongestionType::kSelfInduced;
    }
    return CongestionType::kPreExisting;
  }
  return CongestionType::kSelfInduced;
}

}  // namespace netcong::core
