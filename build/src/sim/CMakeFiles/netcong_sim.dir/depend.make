# Empty dependencies file for netcong_sim.
# This may be replaced when dependencies are built.
