#include <gtest/gtest.h>

#include "sim/packet/dumbbell.h"
#include "sim/packet/event_queue.h"
#include "sim/packet/queue.h"
#include "stats/descriptive.h"

namespace netcong::sim::packet {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(2.0, [&] { order.push_back(2); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(3.0, [&] { order.push_back(3); });
  q.run(10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.executed(), 3u);
}

TEST(EventQueue, TiesFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(1.0, [&] { order.push_back(2); });
  q.schedule(1.0, [&] { order.push_back(3); });
  q.run(2.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, RespectsHorizon) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&] { fired++; });
  q.schedule(5.0, [&] { fired++; });
  q.run(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
  q.run(10.0);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, HandlersCanSchedule) {
  EventQueue q;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) q.schedule(q.now() + 1.0, tick);
  };
  q.schedule(0.0, tick);
  q.run(100.0);
  EXPECT_EQ(count, 5);
}

TEST(DropTailQueue, ServesAtLineRate) {
  EventQueue ev;
  std::vector<double> departures;
  // 12 Mbps, 1500B packets -> 1 ms serialization each.
  DropTailQueue q(ev, 12.0, 100,
                  [&](const Packet&) { departures.push_back(ev.now()); });
  for (int i = 0; i < 5; ++i) {
    Packet p;
    p.seq = i;
    ASSERT_TRUE(q.enqueue(p));
  }
  ev.run(1.0);
  ASSERT_EQ(departures.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(departures[i], 0.001 * (i + 1), 1e-9);
  }
}

TEST(DropTailQueue, DropsWhenFull) {
  EventQueue ev;
  int delivered = 0;
  DropTailQueue q(ev, 1.0, 3, [&](const Packet&) { delivered++; });
  int accepted = 0;
  for (int i = 0; i < 10; ++i) {
    Packet p;
    p.seq = i;
    if (q.enqueue(p)) ++accepted;
  }
  EXPECT_EQ(accepted, 3);
  EXPECT_EQ(q.drops(), 7);
  ev.run(60.0);
  EXPECT_EQ(delivered, 3);
}

TEST(Dumbbell, SingleFlowSaturatesBottleneck) {
  Dumbbell::Params params;
  params.bottleneck_mbps = 50.0;
  params.duration_s = 20.0;
  Dumbbell d(params);
  FlowSpec spec;
  spec.base_rtt_s = 0.03;
  d.add_flow(spec);
  auto result = d.run();
  ASSERT_EQ(result.flows.size(), 1u);
  // Steady-state goodput (skip 5s warmup) close to line rate.
  double steady =
      Dumbbell::goodput_over(result.flows[0].stats, 1500, 5.0, 20.0);
  EXPECT_GT(steady, 0.80 * 50.0);
  EXPECT_LE(steady, 50.5);
}

TEST(Dumbbell, CompetingFlowsShareRoughlyFairly) {
  Dumbbell::Params params;
  params.bottleneck_mbps = 60.0;
  params.duration_s = 30.0;
  Dumbbell d(params);
  for (int i = 0; i < 3; ++i) {
    FlowSpec spec;
    spec.base_rtt_s = 0.04;  // equal RTTs -> fair shares
    d.add_flow(spec);
  }
  auto result = d.run();
  std::vector<double> rates;
  for (const auto& f : result.flows) {
    rates.push_back(Dumbbell::goodput_over(f.stats, 1500, 10.0, 30.0));
  }
  double total = stats::sum(rates);
  EXPECT_GT(total, 0.75 * 60.0);
  for (double r : rates) {
    EXPECT_GT(r, 0.4 * total / 3.0);
    EXPECT_LT(r, 2.0 * total / 3.0);
  }
}

TEST(Dumbbell, LossProducesCongestionSignals) {
  Dumbbell::Params params;
  params.bottleneck_mbps = 20.0;
  params.buffer_packets = 60;
  params.duration_s = 20.0;
  Dumbbell d(params);
  FlowSpec a, b;
  a.base_rtt_s = b.base_rtt_s = 0.03;
  d.add_flow(a);
  d.add_flow(b);
  auto result = d.run();
  EXPECT_GT(result.bottleneck_drops, 0);
  int signals = result.flows[0].stats.congestion_signals +
                result.flows[1].stats.congestion_signals;
  EXPECT_GT(signals, 2);
  EXPECT_GT(result.flows[0].stats.retransmits +
                result.flows[1].stats.retransmits,
            0);
}

TEST(Dumbbell, SelfInducedQueueRaisesRttFromFloor) {
  // A single flow on an idle bottleneck starts at the propagation floor and
  // builds the queue itself: min RTT ~ base, max RTT >> base.
  Dumbbell::Params params;
  params.bottleneck_mbps = 20.0;
  params.buffer_packets = 300;
  params.duration_s = 15.0;
  Dumbbell d(params);
  FlowSpec spec;
  spec.base_rtt_s = 0.02;
  d.add_flow(spec);
  auto result = d.run();
  const auto& f = result.flows[0];
  EXPECT_NEAR(f.min_rtt_ms, 20.0, 4.0);
  EXPECT_GT(f.max_rtt_ms, 60.0);  // self-built standing queue
}

TEST(Dumbbell, LateFlowSeesElevatedBaseRtt) {
  // 4 long-running flows congest the link; a flow joining at t=10 sees an
  // already-standing queue: even its *minimum* RTT sits well above the
  // propagation floor.
  Dumbbell::Params params;
  params.bottleneck_mbps = 20.0;
  params.buffer_packets = 250;
  params.duration_s = 25.0;
  Dumbbell d(params);
  for (int i = 0; i < 4; ++i) {
    FlowSpec bg;
    bg.base_rtt_s = 0.02;
    d.add_flow(bg);
  }
  FlowSpec late;
  late.base_rtt_s = 0.02;
  late.start_time_s = 10.0;
  int late_id = d.add_flow(late);
  auto result = d.run();
  const auto& f = result.flows[static_cast<std::size_t>(late_id)];
  ASSERT_GE(f.stats.rtt_samples_ms.size(), 50u);
  // The queue was already standing when the flow began: its early RTT
  // samples sit well above the 20 ms propagation floor. (The lifetime
  // minimum may still touch the floor during synchronized backoff.)
  std::vector<double> early(f.stats.rtt_samples_ms.begin(),
                            f.stats.rtt_samples_ms.begin() + 50);
  EXPECT_GT(stats::median(early), 35.0);
}

TEST(Dumbbell, GoodputOverWindowMonotonic) {
  TcpStats stats;
  stats.ack_trace = {{1.0, 10}, {2.0, 30}, {3.0, 60}};
  double early = Dumbbell::goodput_over(stats, 1500, 0.5, 2.0);
  double late = Dumbbell::goodput_over(stats, 1500, 2.0, 3.0);
  EXPECT_GT(late, early);
  EXPECT_DOUBLE_EQ(Dumbbell::goodput_over(stats, 1500, 2.0, 2.0), 0.0);
}

}  // namespace
}  // namespace netcong::sim::packet
