file(REMOVE_RECURSE
  "CMakeFiles/netcong_infer.dir/alias.cpp.o"
  "CMakeFiles/netcong_infer.dir/alias.cpp.o.d"
  "CMakeFiles/netcong_infer.dir/bdrmap.cpp.o"
  "CMakeFiles/netcong_infer.dir/bdrmap.cpp.o.d"
  "CMakeFiles/netcong_infer.dir/datasets.cpp.o"
  "CMakeFiles/netcong_infer.dir/datasets.cpp.o.d"
  "CMakeFiles/netcong_infer.dir/mapit.cpp.o"
  "CMakeFiles/netcong_infer.dir/mapit.cpp.o.d"
  "libnetcong_infer.a"
  "libnetcong_infer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netcong_infer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
