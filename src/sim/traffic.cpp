#include "sim/traffic.h"

#include <algorithm>
#include <cmath>

namespace netcong::sim {

TrafficModel::TrafficModel(const topo::Topology& topo, Params params)
    : topo_(&topo), params_(params) {}

void TrafficModel::set_profile(topo::LinkId link, LinkLoadProfile p) {
  profiles_[link] = p;
}

const LinkLoadProfile& TrafficModel::profile(topo::LinkId link) const {
  auto it = profiles_.find(link);
  return it == profiles_.end() ? default_profile_ : it->second;
}

double TrafficModel::local_hour_at(topo::LinkId link, double utc_hour) const {
  const topo::Link& l = topo_->link(link);
  const topo::Router& r = topo_->router(topo_->iface(l.side_a).router);
  return local_hour(utc_hour, topo_->city(r.city).utc_offset_hours);
}

double TrafficModel::utilization(topo::LinkId link,
                                 double utc_time_hours) const {
  const LinkLoadProfile& p = profile(link);
  double shape = p.shape.value(local_hour_at(link, utc_time_hours));
  double u = p.base_util + (p.peak_util - p.base_util) * shape;
  if (p.upgrade_at_hours >= 0.0 && utc_time_hours >= p.upgrade_at_hours) {
    u *= p.upgrade_factor;
  }
  return u;
}

LinkCondition TrafficModel::condition(topo::LinkId link, double utc_hour,
                                      util::Rng& rng) const {
  const LinkLoadProfile& p = profile(link);
  LinkCondition c;
  double u = utilization(link, utc_hour);
  if (p.noise_sigma > 0) {
    u *= std::exp(rng.normal(0.0, p.noise_sigma));
  }
  c.utilization = std::max(0.0, u);

  // Queue growth: none below the onset threshold, quadratic ramp up to the
  // full buffer as utilization approaches 1, pinned at the buffer limit
  // beyond saturation (droptail: the queue cannot exceed the buffer).
  double onset = params_.queue_onset_util;
  if (c.utilization > onset) {
    double x = std::min(1.0, (c.utilization - onset) / (1.0 - onset));
    c.queue_delay_ms = params_.buffer_ms * x * x;
  }

  // Loss: negligible until the buffer fills; once offered load exceeds
  // capacity, the queue drops the excess fraction (u-1)/u.
  c.loss_rate = params_.floor_loss;
  if (c.utilization >= 1.0) {
    c.loss_rate += (c.utilization - 1.0) / c.utilization;
  } else if (c.utilization > 0.95) {
    // Tail-drop bursts begin slightly before full saturation.
    c.loss_rate += 0.004 * (c.utilization - 0.95) / 0.05;
  }
  c.loss_rate = std::min(0.5, c.loss_rate);
  return c;
}

bool TrafficModel::congested_at_peak(topo::LinkId link) const {
  return profile(link).peak_util >= 1.0;
}

}  // namespace netcong::sim
