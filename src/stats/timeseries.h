#pragma once

// Hour-of-day binning of timestamped samples — the aggregation at the heart
// of the M-Lab diurnal analysis (paper Fig. 5): per-hour mean, stddev,
// median and sample counts, plus peak/off-peak summaries.

#include <array>
#include <vector>

#include "stats/descriptive.h"

namespace netcong::stats {

struct HourlyBin {
  std::vector<double> samples;
};

// Per-hour summary of one metric.
struct HourlySummary {
  std::array<double, 24> mean{};
  std::array<double, 24> stddev{};
  std::array<double, 24> median{};
  std::array<std::size_t, 24> count{};
};

class HourlySeries {
 public:
  // hour_of_day must be in [0, 24); fractional hours are floored.
  void add(double hour_of_day, double value);

  const std::vector<double>& bin(int hour) const;
  std::size_t total_count() const;

  HourlySummary summarize() const;

  // Mean of per-hour medians over the given inclusive hour range (wraps
  // around midnight if from > to). NaN if no samples in range.
  double median_over_hours(int from, int to) const;
  double mean_over_hours(int from, int to) const;
  std::size_t count_over_hours(int from, int to) const;

 private:
  std::array<HourlyBin, 24> bins_;
};

// Peak/off-peak comparison. Peak hours default to 19-23 local (evening),
// off-peak to 1-5, matching the windows used in interconnection studies.
struct DiurnalComparison {
  double peak_median = 0.0;
  double offpeak_median = 0.0;
  std::size_t peak_count = 0;
  std::size_t offpeak_count = 0;
  // Relative drop from off-peak to peak: (off - peak) / off. Negative means
  // peak is *better* than off-peak. NaN when either window is empty.
  double relative_drop = 0.0;
};

DiurnalComparison compare_peak_offpeak(const HourlySeries& series,
                                       int peak_from = 19, int peak_to = 23,
                                       int offpeak_from = 1, int offpeak_to = 5);

}  // namespace netcong::stats
