// Figure 5 / Section 6: diurnal throughput and sample counts for NDT tests
// from the GTT-hosted Atlanta server toward AT&T clients (congested
// interconnection) and Comcast clients (busy but uncongested). Prints the
// hour-of-day series — mean, stddev, median throughput and sample count —
// that the paper plots, plus the peak/off-peak comparison and statistical
// caveats (variance, sparse off-peak samples).

#include <cmath>
#include <cstdio>

#include "common.h"
#include "core/diurnal.h"
#include "gen/paper_data.h"
#include "stats/hypothesis.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using namespace netcong;

void print_series(const core::DiurnalGroup& g) {
  auto summary = g.throughput.summarize();
  util::TextTable table(
      {"local hour", "samples", "mean Mbps", "stddev", "median"});
  for (int h = 0; h < 24; ++h) {
    auto idx = static_cast<std::size_t>(h);
    table.add_row({std::to_string(h), std::to_string(summary.count[idx]),
                   std::isnan(summary.mean[idx])
                       ? "-"
                       : util::format("%.1f", summary.mean[idx]),
                   std::isnan(summary.stddev[idx])
                       ? "-"
                       : util::format("%.1f", summary.stddev[idx]),
                   std::isnan(summary.median[idx])
                       ? "-"
                       : util::format("%.1f", summary.median[idx])});
  }
  std::printf("%s", table.render().c_str());

  auto cmp = stats::compare_peak_offpeak(g.throughput);
  std::printf(
      "peak (19-23h) median %.1f Mbps over %zu samples; off-peak (1-5h) "
      "median %.1f Mbps over %zu samples; relative drop %.0f%%\n",
      cmp.peak_median, cmp.peak_count, cmp.offpeak_median, cmp.offpeak_count,
      100.0 * cmp.relative_drop);
  if (cmp.peak_count > 1 && cmp.offpeak_count > 1) {
    std::vector<double> peak, off;
    for (int h = 19; h <= 23; ++h) {
      const auto& b = g.throughput.bin(h);
      peak.insert(peak.end(), b.begin(), b.end());
    }
    for (int h = 1; h <= 5; ++h) {
      const auto& b = g.throughput.bin(h);
      off.insert(off.end(), b.begin(), b.end());
    }
    auto test = stats::mann_whitney_u(peak, off);
    std::printf("Mann-Whitney peak vs off-peak: p = %.2g (%s at 0.05)\n",
                test.p_value,
                test.significant_at(0.05) ? "significant" : "not significant");
  }
}

}  // namespace

int main() {
  bench::print_header("Figure 5",
                      "Diurnal throughput: GTT server to AT&T clients "
                      "(congested) vs Comcast clients (uncongested)");

  bench::Context ctx(bench::bench_config());
  bench::CampaignData data =
      bench::run_standard_campaign(ctx, 28, 10.0, /*seed=*/7);

  topo::Asn gtt = ctx.world.transit_asns.at("GTT");
  auto source_of = [&](const measure::NdtRecord& t) {
    return t.server_asn == gtt ? std::string("GTT") : std::string();
  };
  auto isp_of_fn = [&](const measure::NdtRecord& t) {
    auto it = ctx.isp_of.find(t.client_asn);
    return it == ctx.isp_of.end() ? std::string() : it->second;
  };
  auto groups = core::build_diurnal_groups(data.result.tests, ctx.world,
                                           source_of, isp_of_fn);

  for (const char* isp : {"AT&T", "Comcast"}) {
    core::GroupKey key{"GTT", isp};
    auto it = groups.find(key);
    if (it == groups.end()) {
      std::printf("\n(no GTT -> %s tests in this run)\n", isp);
      continue;
    }
    std::printf("\n--- GTT servers -> %s clients (%zu tests) ---\n", isp,
                it->second.tests);
    print_series(it->second);
    bool truth = core::truth_pair_congested(ctx.world, gtt, isp);
    std::printf("ground truth: GTT<->%s interconnection congested at peak: %s\n",
                isp, truth ? "YES" : "no");
  }

  auto paper = gen::paper::fig5_case();
  std::printf(
      "\npaper shape: AT&T off-peak highs above %.0f Mbps collapse below "
      "%.0f Mbps at peak; Comcast drops ~%.0f%% (%.0f%% over dense hours) "
      "yet its link was NOT congested — the threshold ambiguity of "
      "Section 6.2\n",
      paper.att_offpeak_mbps_min, paper.att_peak_mbps_max,
      100 * paper.comcast_drop_fraction,
      100 * paper.comcast_drop_fraction_dense_hours);
  return 0;
}
