#pragma once

// Order-sensitive 64-bit fingerprints of pipeline outputs. One number
// stands in for "these two results are bit-identical", which is how the
// differential-determinism properties (and the refactored campaign
// determinism tests) compare full outputs across worker counts, path-cache
// settings, and instrumentation toggles without field-by-field assertion
// code per record type.
//
// Every field that previously carried an EXPECT_EQ in the scattered
// identity checks is mixed in: doubles by bit pattern (so -0.0 != 0.0 and
// NaN payloads count), strings length-prefixed, vectors size-prefixed.

#include <cstdint>
#include <string_view>
#include <vector>

#include "gen/world.h"
#include "measure/ndt.h"
#include "measure/traceroute.h"

namespace netcong::measure {

// FNV-1a accumulator over typed values.
class Fingerprint {
 public:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ = (h_ ^ ((v >> (8 * i)) & 0xffu)) * 1099511628211ull;
    }
  }
  void mix(double v);
  void mix(bool v) { mix(static_cast<std::uint64_t>(v)); }
  void mix(std::string_view s);

  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 14695981039346656037ull;
};

void mix_record(Fingerprint& fp, const NdtRecord& t);
void mix_record(Fingerprint& fp, const TracerouteRecord& tr);
void mix_record(Fingerprint& fp, const route::RouterPath& p);

std::uint64_t fingerprint(const std::vector<TracerouteRecord>& corpus);
std::uint64_t fingerprint(const CampaignResult& result);

// Observable-only fingerprint of a traceroute corpus: every field a real
// measurer sees (endpoints, times, hops, RTTs, PTR names), skipping the
// ground-truth paths. Two corpora with equal observed fingerprints are
// indistinguishable to inference code — the Misleading-Stars property
// asserts exactly this while truth_fingerprint differs.
std::uint64_t observed_fingerprint(
    const std::vector<TracerouteRecord>& corpus);

// Ground-truth-only fingerprint (the truth paths, in corpus order).
std::uint64_t truth_fingerprint(const std::vector<TracerouteRecord>& corpus);

// Fingerprint of the campaign prefix strictly before cutoff_hours: tests
// by test time, traceroutes by trace time, full records including truth.
// An adversarial campaign whose churn epoch is the cutoff must match the
// un-churned run here bit for bit (prefix equivalence).
std::uint64_t fingerprint_before(const CampaignResult& result,
                                 double cutoff_hours);

// Streams the columnar result through the same byte sequence as the
// CampaignResult overload — run() and run_columnar() on identical inputs
// yield equal fingerprints, without materializing an AoS copy. Requires
// result.topo (PTR names are derived from the topology).
std::uint64_t fingerprint(const ColumnarCampaignResult& result);

// Structural fingerprint of a generated world: every topology entity,
// control-plane view, and host list. Two calls to generate_world with the
// same config must produce the same value (generator determinism).
std::uint64_t fingerprint(const gen::World& world);

}  // namespace netcong::measure
