// WAL durability bench (DESIGN.md §12): how fast can the ingest service
// persist its event stream, and how fast does a crashed daemon come back?
// A synthetic campaign is flattened to the arrival-ordered event log, then
// (a) appended to a fresh WAL without per-record fsync — the service's
// default, where sync() runs only at snapshot/shutdown, (b) appended with
// fsync_each_append for the fully-durable bound, and (c) recovered by
// scanning and decoding every frame back into events. Reports all three
// as events/sec into BENCH_recovery.json.
//
// Recovery speed is a restart-availability number: a daemon that ingests
// at X events/sec but replays its log at X/10 spends ten times its outage
// window catching up after every crash.
//
// Scale selection:
//   NETCONG_BENCH_SCALE=tiny   -> 1k-AS world, 10k tests (CI smoke)
//   NETCONG_BENCH_SCALE=small  -> 10k-AS world, 100k tests
//   default                    -> 10k-AS world, 1M tests
// NETCONG_INGEST_EVENTS=<n> overrides the scheduled test count.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common.h"
#include "gen/workload.h"
#include "serve/event.h"
#include "serve/wal.h"

namespace {

std::vector<netcong::gen::TestRequest> synthetic_schedule(
    const std::vector<std::uint32_t>& clients, std::size_t n) {
  constexpr double kTestsPerHour = 5000.0;
  std::vector<netcong::gen::TestRequest> schedule;
  schedule.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    netcong::gen::TestRequest req;
    req.client = clients[i % clients.size()];
    req.utc_time_hours = static_cast<double>(i) / kTestsPerHour;
    schedule.push_back(req);
  }
  return schedule;
}

}  // namespace

int main() {
  using namespace netcong;
  namespace fs = std::filesystem;

  bench::print_header("BENCH recovery",
                      "WAL durability: append and crash-recovery rates");

  double customer_scale = 1.76;
  std::size_t tests = 1'000'000;
  const char* preset = std::getenv("NETCONG_BENCH_SCALE");
  if (preset && std::strcmp(preset, "tiny") == 0) {
    customer_scale = 0.17;
    tests = 10'000;
  } else if (preset && std::strcmp(preset, "small") == 0) {
    tests = 100'000;
  }
  if (const char* n = std::getenv("NETCONG_INGEST_EVENTS")) {
    unsigned long long parsed = std::strtoull(n, nullptr, 10);
    if (parsed > 0) tests = static_cast<std::size_t>(parsed);
  }

  gen::GeneratorConfig cfg = gen::GeneratorConfig::full();
  cfg.seed = 20150501;
  cfg.customer_scale = customer_scale;
  cfg.clients_per_access_isp = 400;

  bench::BenchRecorder rec("recovery");

  bench::Stopwatch sw_world;
  bench::Context ctx(cfg);
  rec.record("world_build", sw_world.elapsed_ms());

  measure::Platform mlab = ctx.mlab_platform();
  auto schedule = synthetic_schedule(ctx.world.clients, tests);
  measure::NdtCampaign campaign(ctx.world, ctx.fwd, ctx.model, mlab,
                                measure::CampaignConfig{});
  campaign.set_path_cache(&ctx.path_cache);
  util::Rng rng(7);
  bench::Stopwatch sw_log;
  std::vector<serve::IngestEvent> log =
      serve::event_log_from(campaign.run_columnar(schedule, rng));
  rec.record("event_log_build", sw_log.elapsed_ms());
  rec.stat("event_log_build", "events", static_cast<double>(log.size()));

  const std::string dir =
      (fs::temp_directory_path() /
       ("netcong-bench-recovery-" + std::to_string(::getpid())))
          .string();
  fs::remove_all(dir);

  // (a) Append without per-record fsync — the service's hot path.
  serve::WalOptions opts;
  opts.segment_bytes = 16u << 20;
  {
    serve::WalWriter wal;
    if (!wal.open(dir, opts).ok()) {
      std::fprintf(stderr, "cannot open wal dir %s\n", dir.c_str());
      return 1;
    }
    bench::Stopwatch sw;
    for (const serve::IngestEvent& ev : log) (void)wal.append(ev);
    (void)wal.sync();
    const double append_ms = sw.elapsed_ms();
    serve::WalStats st = wal.stats();
    wal.close();
    const double append_eps =
        1000.0 * static_cast<double>(st.appended) / append_ms;
    rec.record("append", append_ms);
    rec.stat("append", "events", static_cast<double>(st.appended));
    rec.stat("append", "segments", static_cast<double>(st.segments_created));
    rec.stat("append", "bytes_written",
             static_cast<double>(st.bytes_written));
    rec.stat("append", "wal_append_events_per_sec", append_eps);
    std::printf("append (sync at end): %.1f ms  %.0f events/sec  "
                "%llu bytes in %llu segments\n",
                append_ms, append_eps,
                static_cast<unsigned long long>(st.bytes_written),
                static_cast<unsigned long long>(st.segments_created));
  }

  // (b) Fully durable: fsync after every append, on a bounded slice — the
  // per-record fsync floor is what matters, not minutes of runtime.
  {
    const std::size_t durable_n = std::min<std::size_t>(log.size(), 2000);
    const std::string durable_dir = dir + "-fsync";
    fs::remove_all(durable_dir);
    serve::WalOptions dopts = opts;
    dopts.fsync_each_append = true;
    serve::WalWriter wal;
    if (!wal.open(durable_dir, dopts).ok()) {
      std::fprintf(stderr, "cannot open wal dir %s\n", durable_dir.c_str());
      return 1;
    }
    bench::Stopwatch sw;
    for (std::size_t i = 0; i < durable_n; ++i) (void)wal.append(log[i]);
    const double fsync_ms = sw.elapsed_ms();
    wal.close();
    fs::remove_all(durable_dir);
    const double fsync_eps =
        1000.0 * static_cast<double>(durable_n) / fsync_ms;
    rec.record("append_fsync", fsync_ms);
    rec.stat("append_fsync", "events", static_cast<double>(durable_n));
    rec.stat("append_fsync", "wal_append_fsync_events_per_sec", fsync_eps);
    std::printf("append (fsync each): %.1f ms  %.0f events/sec  "
                "(%zu events)\n",
                fsync_ms, fsync_eps, durable_n);
  }

  // (c) Crash recovery: scan + checksum + decode the whole log.
  {
    bench::Stopwatch sw;
    util::Result<serve::WalRecovery> recov =
        serve::recover_wal(dir, /*repair=*/false);
    const double recover_ms = sw.elapsed_ms();
    if (!recov.ok()) {
      std::fprintf(stderr, "recovery failed: %s\n", recov.error().c_str());
      return 1;
    }
    const double recover_eps =
        1000.0 * static_cast<double>(recov.value().events.size()) /
        recover_ms;
    rec.record("recover", recover_ms);
    rec.stat("recover", "events",
             static_cast<double>(recov.value().events.size()));
    rec.stat("recover", "bytes_scanned",
             static_cast<double>(recov.value().bytes_scanned));
    rec.stat("recover", "recovery_events_per_sec", recover_eps);
    rec.stat("recover", "peak_rss_mb", bench::peak_rss_mb());
    std::printf("recover: %.1f ms  %.0f events/sec  (%zu events, "
                "%llu bytes)\n",
                recover_ms, recover_eps, recov.value().events.size(),
                static_cast<unsigned long long>(
                    recov.value().bytes_scanned));
    if (recov.value().events.size() != log.size()) {
      std::fprintf(stderr, "recovery lost events: %zu != %zu\n",
                   recov.value().events.size(), log.size());
      return 1;
    }
  }
  fs::remove_all(dir);

  bench::print_footnote(
      "append = frame encode + write to page cache (sync once at the end); "
      "append_fsync = fsync per record, the fully-durable floor; recover = "
      "scan + CRC + decode, the restart catch-up rate.");

  rec.write();
  return 0;
}
