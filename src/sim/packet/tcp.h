#pragma once

// A compact TCP sender with pluggable congestion control (see cc.h):
// sequencing, fast retransmit on three duplicate ACKs, retransmission
// timeouts with Jacobson/Karels RTO estimation, and optional pacing for
// model-based strategies. Sequence numbers are packet-granularity. The
// receiver path is cumulative-ACK with in-order delivery guaranteed by the
// FIFO bottleneck, so duplicate-ACK loss detection is exact.

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/packet/cc.h"
#include "sim/packet/event_queue.h"
#include "sim/packet/queue.h"

namespace netcong::sim::packet {

struct TcpStats {
  std::int64_t packets_sent = 0;
  std::int64_t packets_acked = 0;
  std::int64_t retransmits = 0;
  int congestion_signals = 0;  // loss events (dupack cuts + timeouts)
  int timeouts = 0;
  // RTT samples and their ack times (parallel vectors); both honor the
  // Params::max_trace_samples downsampling policy.
  std::vector<double> rtt_samples_ms;
  std::vector<double> rtt_sample_times_s;
  // (time, acked-sequence) pairs for goodput-over-time analysis.
  std::vector<std::pair<double, std::int64_t>> ack_trace;
};

// Goodput over [from_s, to_s] computed from the ACK trace, in Mbps.
double goodput_over_mbps(const TcpStats& stats, int mss_bytes, double from_s,
                         double to_s);

// Order-sensitive FNV-1a fingerprint over the TcpStats counters, RTT samples,
// and ack trace — one number stands in for "these two runs are bit-identical"
// in the determinism properties and the CC regression tests.
// (rtt_sample_times_s is excluded: the field postdates the pinned NewReno
// fingerprints, which must keep matching the pre-refactor sender.)
std::uint64_t stats_fingerprint(const TcpStats& stats);

// Scenario-level description of one flow: TcpFlow knobs plus start/stop
// times. Shared by Dumbbell and AccessInterdomain.
struct FlowSpec {
  double start_time_s = 0.0;
  double stop_time_s = 1e9;
  double base_rtt_s = 0.04;
  int mss_bytes = 1500;
  CcAlgo cc = CcAlgo::kNewReno;
  double max_cwnd = 10000.0;
  std::size_t max_trace_samples = 32768;  // 0 = unbounded traces
};

struct FlowResult {
  TcpStats stats;
  // Goodput measured between the flow's start and stop.
  double goodput_mbps = 0.0;
  double mean_rtt_ms = 0.0;
  double min_rtt_ms = 0.0;
  double max_rtt_ms = 0.0;
};

class TcpFlow {
 public:
  struct Params {
    int mss_bytes = 1500;
    double base_rtt_s = 0.04;  // two-way propagation excluding queueing
    double initial_cwnd = 10.0;
    double max_cwnd = 10000.0;  // sender/application window cap, packets
    bool record_rtt = true;
    CcAlgo cc = CcAlgo::kNewReno;
    // Bound on each recorded vector (rtt samples, ack trace). When a vector
    // reaches the cap, every other retained element is dropped and the
    // recording stride doubles — deterministic, monotone in time, and never
    // more than max_trace_samples entries. 0 disables the cap (the
    // pre-refactor unbounded behavior).
    std::size_t max_trace_samples = 32768;
  };

  // `transmit` hands a packet to the network (typically the bottleneck
  // queue); the flow schedules its own ACK-return events internally.
  TcpFlow(int id, EventQueue& events, Params params,
          std::function<bool(const Packet&)> transmit);

  void start(double at_time);
  void stop() { running_ = false; }

  // Called by the scenario when a data packet finishes crossing the
  // bottleneck; the flow schedules the downstream propagation + ACK return.
  void on_packet_delivered(const Packet& p);

  const TcpStats& stats() const { return stats_; }
  double cwnd() const { return cc_->cwnd(); }
  const CongestionControl& congestion_control() const { return *cc_; }
  std::int64_t highest_acked() const { return cum_acked_; }
  int id() const { return id_; }

 private:
  struct SentRecord {
    double sent_time = 0.0;
    std::int64_t delivered_at_send = 0;
  };

  void try_send();
  void send_packet(std::int64_t seq, bool retransmit);
  void on_ack(std::int64_t cum_seq, double sent_time, bool was_retransmit);
  void schedule_rto();
  void on_rto(std::uint64_t epoch);
  void update_rtt(double sample_s);
  void record_rtt_sample(double now_s, double sample_s);
  void record_ack_point(double now_s, std::int64_t cum_seq);

  int id_;
  EventQueue* events_;
  Params params_;
  std::function<bool(const Packet&)> transmit_;

  bool running_ = false;
  std::unique_ptr<CongestionControl> cc_;
  std::int64_t next_seq_ = 0;    // next new sequence to send
  std::int64_t cum_acked_ = -1;  // highest cumulative ack received
  int dupacks_ = 0;
  bool in_recovery_ = false;
  std::int64_t recovery_end_ = -1;

  // Pacing state (used only when the CC reports a positive pacing rate).
  double next_send_time_s_ = 0.0;
  bool send_timer_pending_ = false;

  // RTO state.
  double srtt_s_ = 0.0;
  double rttvar_s_ = 0.0;
  double rto_s_ = 1.0;
  std::uint64_t rto_epoch_ = 0;  // cancels stale timers

  // Send times + delivered-counter snapshots of in-flight packets, for RTT
  // sampling (Karn's rule: no samples from retransmitted sequences) and the
  // BBR delivery-rate estimator.
  std::unordered_map<std::int64_t, SentRecord> sent_at_;

  // Downsampling strides (grow by doubling when a vector hits the cap).
  std::uint64_t rtt_seen_ = 0, rtt_stride_ = 1;
  std::uint64_t ack_seen_ = 0, ack_stride_ = 1;

  TcpStats stats_;
};

}  // namespace netcong::sim::packet
