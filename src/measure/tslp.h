#pragma once

// TSLP — time-series latency probing (Luckie et al., reference [25] in the
// paper). The paper's closing recommendation: platforms not provisioned for
// bulk throughput tests (Ark, BISmark, RIPE Atlas) "could support
// lower-impact techniques such as TSLP to provide additional insight into
// the presence and location of congestion."
//
// Method: from a vantage point, probe the *near-side* and *far-side*
// interface addresses of an interdomain link repeatedly across the day. A
// standing peak-hour queue at the link elevates the far-side RTT (the
// reply crosses the loaded queue) while the near-side RTT stays flat; the
// differential localizes congestion to that link without any throughput
// measurement.

#include <vector>

#include "gen/world.h"
#include "measure/traceroute.h"
#include "route/forwarding.h"

namespace netcong::measure {

struct TslpSample {
  double utc_time_hours = 0.0;
  double near_rtt_ms = -1.0;  // negative = probe unanswered/unreachable
  double far_rtt_ms = -1.0;
};

struct TslpSeries {
  topo::IpAddr near_addr;
  topo::IpAddr far_addr;
  std::vector<TslpSample> samples;
};

struct TslpOptions {
  int days = 7;
  double interval_minutes = 15.0;
  // Per-probe loss (unanswered ICMP).
  double probe_loss = 0.02;
};

// Runs a TSLP campaign from `vp` against the two sides of a candidate
// interdomain link (addresses typically come from bdrmap/MAP-IT crossings).
TslpSeries run_tslp(const gen::World& world, const route::Forwarder& fwd,
                    std::uint32_t vp, topo::IpAddr near_addr,
                    topo::IpAddr far_addr, const TslpOptions& options,
                    util::Rng& rng);

}  // namespace netcong::measure
