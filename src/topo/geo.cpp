#include "topo/geo.h"

#include <cmath>

namespace netcong::topo {

namespace {
constexpr double kEarthRadiusKm = 6371.0;
constexpr double kPi = 3.14159265358979323846;
double radians(double deg) { return deg * kPi / 180.0; }
}  // namespace

double haversine_km(double lat1, double lon1, double lat2, double lon2) {
  double dlat = radians(lat2 - lat1);
  double dlon = radians(lon2 - lon1);
  double a = std::sin(dlat / 2) * std::sin(dlat / 2) +
             std::cos(radians(lat1)) * std::cos(radians(lat2)) *
                 std::sin(dlon / 2) * std::sin(dlon / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(a)));
}

double city_distance_km(const City& a, const City& b) {
  return haversine_km(a.lat, a.lon, b.lat, b.lon);
}

double propagation_delay_ms(double distance_km) {
  // Fiber paths are not geodesics; apply a 1.3x circuitousness factor.
  constexpr double kFiberKmPerMs = 200.0;
  constexpr double kCircuitousness = 1.3;
  constexpr double kPerLinkOverheadMs = 0.1;
  return distance_km * kCircuitousness / kFiberKmPerMs + kPerLinkOverheadMs;
}

}  // namespace netcong::topo
