#pragma once

// Scores the anomaly detector (infer/anomaly.h) against adversary-scenario
// ground truth (measure/adversary.h): epoch precision/recall with a time
// tolerance, and withdrawn-link precision/recall by interface address.
// Feeds bench_adversary and the adversary test matrix.

#include <cstddef>
#include <utility>
#include <vector>

#include "infer/anomaly.h"
#include "measure/adversary.h"

namespace netcong::core {

// What the detector should have found.
struct AnomalyGroundTruth {
  std::vector<double> epochs;  // true change epochs, hours
  // Withdrawn links by their (side_a, side_b) interface addresses.
  std::vector<std::pair<topo::IpAddr, topo::IpAddr>> withdrawn;
};

AnomalyGroundTruth ground_truth_of(
    const measure::AdversaryCampaignTruth& truth);

struct AnomalyScore {
  // Epoch matching (greedy, within tolerance).
  std::size_t epochs_true = 0;
  std::size_t epochs_detected = 0;
  std::size_t epochs_matched = 0;
  double epoch_precision = 0.0;
  double epoch_recall = 0.0;
  double epoch_f1 = 0.0;
  // Withdrawn-crossing matching (unordered address-pair identity).
  std::size_t withdrawn_true = 0;
  std::size_t withdrawn_detected = 0;
  std::size_t withdrawn_matched = 0;
  double withdrawn_precision = 0.0;
  double withdrawn_recall = 0.0;
};

// Scores a report against ground truth. A detected epoch matches a true
// epoch when |detected - true| <= tolerance_hours; each true epoch matches
// at most one detection (greedy in time order). A withdrawn finding
// matches a true link when its {near, far} addresses equal the link's
// interface-address pair in either order.
AnomalyScore score_anomalies(const infer::AnomalyReport& report,
                             const AnomalyGroundTruth& truth,
                             double tolerance_hours = 24.0);

}  // namespace netcong::core
