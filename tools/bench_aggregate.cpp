// Collects every BENCH_<label>.json in a directory into one BENCH_all.json
// so a campaign of bench runs ships as a single artifact:
//
//   bench_aggregate [DIR]          # default: current directory
//
// Output shape: {"generated_by": ..., "benches": {"<label>": <raw json>}}.
// The per-bench payloads are embedded verbatim (they are already JSON), so
// the aggregator needs no JSON parser — it only validates non-emptiness.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

namespace fs = std::filesystem;

namespace {

bool read_file(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return in.good() || in.eof();
}

// "BENCH_campaign.json" -> "campaign"; empty when the name doesn't match.
std::string label_of(const std::string& filename) {
  const std::string prefix = "BENCH_";
  const std::string suffix = ".json";
  if (filename.size() <= prefix.size() + suffix.size()) return "";
  if (filename.rfind(prefix, 0) != 0) return "";
  if (filename.compare(filename.size() - suffix.size(), suffix.size(),
                       suffix) != 0) {
    return "";
  }
  return filename.substr(prefix.size(),
                         filename.size() - prefix.size() - suffix.size());
}

// Strips trailing whitespace so embedded payloads don't carry stray
// newlines into the combined document.
std::string trimmed(std::string s) {
  while (!s.empty() && (s.back() == '\n' || s.back() == '\r' ||
                        s.back() == ' ' || s.back() == '\t')) {
    s.pop_back();
  }
  return s;
}

// Top-level "peak_rss_mb" of a bench payload (every BenchRecorder emits
// one), or a negative value when absent. A targeted string scan keeps the
// aggregator parser-free.
double peak_rss_of(const std::string& body) {
  const std::string key = "\"peak_rss_mb\":";
  std::size_t pos = body.rfind(key);
  if (pos == std::string::npos) return -1.0;
  return std::strtod(body.c_str() + pos + key.size(), nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  fs::path dir = argc > 1 ? fs::path(argv[1]) : fs::current_path();
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    std::fprintf(stderr, "bench_aggregate: %s is not a directory\n",
                 dir.string().c_str());
    return 1;
  }

  // std::map for a deterministic (sorted) label order in the output.
  std::map<std::string, std::string> benches;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    std::string label = label_of(entry.path().filename().string());
    if (label.empty() || label == "all") continue;
    std::string body;
    if (!read_file(entry.path(), &body) || trimmed(body).empty()) {
      std::fprintf(stderr, "bench_aggregate: skipping unreadable/empty %s\n",
                   entry.path().string().c_str());
      continue;
    }
    benches[label] = trimmed(body);
  }
  if (ec) {
    std::fprintf(stderr, "bench_aggregate: cannot scan %s: %s\n",
                 dir.string().c_str(), ec.message().c_str());
    return 1;
  }
  if (benches.empty()) {
    std::fprintf(stderr, "bench_aggregate: no BENCH_*.json in %s\n",
                 dir.string().c_str());
    return 1;
  }

  fs::path out_path = dir / "BENCH_all.json";
  std::FILE* f = std::fopen(out_path.string().c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "bench_aggregate: cannot open %s\n",
                 out_path.string().c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"generated_by\": \"bench_aggregate\",\n");
  std::fprintf(f, "  \"bench_count\": %zu,\n", benches.size());
  std::fprintf(f, "  \"benches\": {\n");
  std::size_t i = 0;
  for (const auto& [label, body] : benches) {
    // Indent the embedded document so the combined file stays readable.
    std::string indented;
    indented.reserve(body.size());
    for (char c : body) {
      indented.push_back(c);
      if (c == '\n') indented += "    ";
    }
    std::fprintf(f, "    \"%s\": %s%s\n", label.c_str(), indented.c_str(),
                 ++i < benches.size() ? "," : "");
  }
  std::fprintf(f, "  },\n");
  // Memory summary across all benches: each run's peak RSS side by side,
  // so a perf trajectory tracks footprint next to wall time.
  std::fprintf(f, "  \"peak_rss_mb\": {\n");
  i = 0;
  for (const auto& [label, body] : benches) {
    double rss = peak_rss_of(body);
    if (rss >= 0.0) {
      std::fprintf(f, "    \"%s\": %.3f%s\n", label.c_str(), rss,
                   ++i < benches.size() ? "," : "");
    } else {
      std::fprintf(f, "    \"%s\": null%s\n", label.c_str(),
                   ++i < benches.size() ? "," : "");
    }
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu benches)\n", out_path.string().c_str(),
              benches.size());
  for (const auto& [label, body] : benches) {
    double rss = peak_rss_of(body);
    if (rss >= 0.0) std::printf("  %-20s peak rss %8.1f MiB\n", label.c_str(), rss);
  }
  return 0;
}
