#pragma once

// A shared, thread-safe, read-mostly memo of Forwarder::path results.
//
// Router-level path construction is expensive — a BGP walk plus
// hot-potato/ECMP scoring over every candidate interconnection link at each
// AS hop — and the measurement workloads recompute identical paths over and
// over: every repeat NDT test between a client/server pair, and every Paris
// traceroute toward a recently tested client (Paris fixes the flow key, so
// the key is a constant per (server, client) pair). PathCache memoizes the
// exact result keyed on (src_host, dst, ECMP-relevant flow fields).
//
// Correctness and determinism: the cached value is a pure function of the
// key — a miss computes Forwarder::path with the caller's own arguments —
// so a cached lookup is bit-identical to the uncached call, concurrent
// double-computation under races is harmless, and campaigns produce the
// same output with or without the cache attached.
//
// Storage: each shard is an open-addressing util::FlatMap whose values are
// shared_ptr<const RouterPath>. Callers on the hot path take the shared
// pointer (path_shared) and never copy the three per-path vectors; the
// by-value path() remains for call sites where a copy is fine. Eviction
// under a capacity bound removes the entry in the lowest probe slot of the
// shard's canonical robin-hood layout — a deterministic policy: since the
// layout is a pure function of the resident key set, the victim is a pure
// function of the insert/evict history, so capacity-limited serial runs
// reproduce their hit rates exactly (std::unordered_map::begin() depended
// on allocation addresses). Outstanding shared_ptrs keep evicted paths
// alive, so eviction never invalidates a caller.
//
// ECMP bucketing: the path depends on the ephemeral port only through the
// flow hash, so callers drawing ports from the full ~28k-wide ephemeral
// range would essentially never hit. NdtCampaign instead draws one of a
// small set of representative "ECMP bucket" ports (ecmp_key below); per
// (src, dst) pair the cache then holds at most one path per bucket while
// preserving the per-pair ECMP path diversity the paper's Section 4.3
// analysis depends on.

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "route/forwarding.h"
#include "route/path.h"
#include "util/flat_map.h"

namespace netcong::route {

class PathCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    double hit_rate() const {
      std::uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
    }
  };

  // First ephemeral destination port used for ECMP bucket keys.
  static constexpr std::uint16_t kEphemeralPortBase = 32768;

  // Packed cache key. Public so corpus builders can deduplicate paths by
  // the same identity the cache uses (see measure::PathPool).
  struct Key {
    std::uint64_t a = 0;  // (src_host << 32) | dst
    std::uint64_t b = 0;  // (key.src << 32) | key.dst
    std::uint64_t c = 0;  // (src_port << 32) | (dst_port << 16) | proto
    friend bool operator==(const Key&, const Key&) = default;
    // Ordering for the flat map's canonical-layout tie-break.
    friend bool operator<(const Key& x, const Key& y) {
      if (x.a != y.a) return x.a < y.a;
      if (x.b != y.b) return x.b < y.b;
      return x.c < y.c;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };
  static Key make_key(std::uint32_t src_host, topo::IpAddr dst,
                      const FlowKey& key);

  // max_entries == 0 means unbounded; otherwise inserts that push a shard
  // past its share of the budget evict the lowest-slot resident entry.
  // Eviction cannot change results (a re-miss recomputes the identical
  // pure-function value), only the hit rate — so campaigns stay
  // bit-identical under any capacity.
  explicit PathCache(const Forwarder& fwd, std::size_t num_shards = 64,
                     std::size_t max_entries = 0);

  // The TCP flow key representing ECMP bucket `bucket` of an (src, dst)
  // address pair: a real flow's key with the ephemeral destination port
  // pinned to the bucket's representative port.
  static FlowKey ecmp_key(topo::IpAddr src, topo::IpAddr dst,
                          std::uint16_t src_port, int bucket);

  // Memoized Forwarder::path(src_host, dst, key); bit-identical to the
  // uncached call for any key. Safe to call concurrently.
  RouterPath path(std::uint32_t src_host, topo::IpAddr dst,
                  const FlowKey& key) const;

  // Copy-free variant: the returned pointer stays valid after eviction or
  // clear() (shared ownership). Never null.
  std::shared_ptr<const RouterPath> path_shared(std::uint32_t src_host,
                                                topo::IpAddr dst,
                                                const FlowKey& key) const;

  Stats stats() const;

  // Number of distinct paths currently cached.
  std::size_t size() const;

  // Drops all entries and resets the hit/miss counters.
  void clear();

 private:
  struct Shard {
    mutable std::shared_mutex mu;
    util::FlatMap<Key, std::shared_ptr<const RouterPath>, KeyHash> map;
  };

  Shard& shard_for(const Key& k) const;

  const Forwarder* fwd_;
  // unique_ptr because shared_mutex is neither movable nor copyable.
  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t max_per_shard_ = 0;  // 0 = unbounded
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  mutable std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace netcong::route
