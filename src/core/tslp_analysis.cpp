#include "core/tslp_analysis.h"

#include <cmath>

#include "sim/diurnal.h"

namespace netcong::core {

TslpVerdict analyze_tslp(const measure::TslpSeries& series,
                         const TslpAnalysisOptions& options) {
  stats::HourlySeries near_series, far_series;
  for (const auto& s : series.samples) {
    double local = sim::local_hour(std::fmod(s.utc_time_hours, 24.0),
                                   options.vp_utc_offset_hours);
    if (s.near_rtt_ms >= 0) near_series.add(local, s.near_rtt_ms);
    if (s.far_rtt_ms >= 0) far_series.add(local, s.far_rtt_ms);
  }

  auto elevation = [&](const stats::HourlySeries& hs) {
    double peak = hs.median_over_hours(options.peak_from, options.peak_to);
    double off =
        hs.median_over_hours(options.offpeak_from, options.offpeak_to);
    if (std::isnan(peak) || std::isnan(off)) return 0.0;
    return peak - off;
  };

  TslpVerdict v;
  v.near_samples = near_series.total_count();
  v.far_samples = far_series.total_count();
  v.near_elevation_ms = elevation(near_series);
  v.far_elevation_ms = elevation(far_series);
  v.differential_ms = v.far_elevation_ms - v.near_elevation_ms;
  v.congested = v.near_samples > 0 && v.far_samples > 0 &&
                v.differential_ms >= options.differential_threshold_ms;
  return v;
}

}  // namespace netcong::core
