// Pathmodel-vs-threshold comparison (paper §6, EXPERIMENTS.md §6.3): runs
// the ground-truth scenario suite (core/pathmodel_eval) under each
// congestion control, scores the eva-style path-model classifier on
// congested-vs-not against the oracle-picked fixed-threshold baseline, and
// reports three-way label accuracy plus access-vs-interdomain localization
// accuracy per CC. Emits BENCH_pathmodel.json with scores, wall times, and
// peak RSS.
//
//   NETCONG_PATHMODEL_TESTS=<n>  instances per scenario class (default 6;
//                                the CI smoke test sets 2)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common.h"
#include "core/pathmodel_eval.h"

namespace {

int per_class_from_env() {
  const char* env = std::getenv("NETCONG_PATHMODEL_TESTS");
  if (env == nullptr) return 6;
  int n = std::atoi(env);
  return n > 0 ? n : 6;
}

}  // namespace

int main() {
  using namespace netcong;
  namespace sp = sim::packet;

  int per_class = per_class_from_env();
  bench::BenchRecorder recorder("pathmodel");

  bench::print_header("§6.3", "path-model classifier vs fixed threshold");
  std::printf("  %d instances per scenario class, 4 classes, 3 CCs\n\n",
              per_class);
  std::printf(
      "  %-6s | %9s %9s %7s | %12s | %9s | %12s\n"
      "  -------+-------------------------------+--------------+-----------+-------------\n",
      "cc", "precision", "recall", "F1", "threshold F1", "label acc",
      "localization");

  bool pathmodel_wins_everywhere = true;
  for (sp::CcAlgo cc :
       {sp::CcAlgo::kNewReno, sp::CcAlgo::kCubic, sp::CcAlgo::kBbr}) {
    const char* name = sp::cc_algo_name(cc);
    std::vector<core::PathModelCase> cases;
    recorder.time(std::string("suite_") + name, [&] {
      cases = core::run_pathmodel_suite(cc, core::PathModelScenario::kAll,
                                        per_class);
    });
    core::PathModelScore score = core::score_pathmodel(cases);
    std::printf(
        "  %-6s | %9.3f %9.3f %7.3f | %12.3f | %9.3f | %3d/%-3d %.3f\n",
        name, score.congested.precision, score.congested.recall,
        score.congested.f1, score.baseline_best_f1, score.label_accuracy,
        score.localization_correct, score.localization_total,
        score.localization_accuracy);
    if (score.congested.f1 <= score.baseline_best_f1) {
      pathmodel_wins_everywhere = false;
    }

    std::string prefix = std::string("score_") + name;
    recorder.stat(prefix, "cases", static_cast<double>(cases.size()));
    recorder.stat(prefix, "precision", score.congested.precision);
    recorder.stat(prefix, "recall", score.congested.recall);
    recorder.stat(prefix, "f1", score.congested.f1);
    recorder.stat(prefix, "baseline_best_f1", score.baseline_best_f1);
    recorder.stat(prefix, "baseline_best_threshold",
                  score.baseline_best_threshold);
    recorder.stat(prefix, "label_accuracy", score.label_accuracy);
    recorder.stat(prefix, "localization_accuracy",
                  score.localization_accuracy);
    recorder.stat(prefix, "localization_total",
                  static_cast<double>(score.localization_total));
  }

  bench::print_footnote(
      "truth by construction: interdomain/access classes are congestion-"
      "limited, bandwidth/sender are not; the threshold baseline gets its "
      "best-F1 cut picked after the fact and still loses on sender-limited "
      "confounds (the paper's §6 warning).");
  std::printf("\n  pathmodel beats threshold baseline on every CC: %s\n",
              pathmodel_wins_everywhere ? "yes" : "NO");

  recorder.stat("resources", "peak_rss_mb", bench::peak_rss_mb());
  recorder.write();
  return pathmodel_wins_everywhere ? 0 : 1;
}
