#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "gen/workload.h"
#include "helpers.h"
#include "measure/alexa.h"
#include "measure/ark.h"
#include "measure/matching.h"
#include "measure/ndt.h"
#include "measure/platform.h"
#include "measure/traceroute.h"
#include "route/bgp.h"
#include "route/forwarding.h"
#include "sim/throughput.h"
#include "topo/geo.h"

namespace netcong::measure {
namespace {

using gen::World;

struct Stack {
  explicit Stack(const World& w)
      : world(w),
        bgp(*w.topo),
        fwd(*w.topo, bgp),
        model(*w.topo, *w.traffic) {}
  const World& world;
  route::BgpRouting bgp;
  route::Forwarder fwd;
  sim::ThroughputModel model;
};

Stack& tiny_stack() {
  static Stack s(test::tiny_world());
  return s;
}

TEST(Platform, SelectsNearbyServerMostOfTheTime) {
  Stack& s = tiny_stack();
  Platform mlab("mlab", *s.world.topo, s.world.mlab_servers);
  util::Rng rng(1);
  int near = 0, total = 0;
  for (std::size_t i = 0; i < s.world.clients.size(); ++i) {
    std::uint32_t c = s.world.clients[i];
    std::uint32_t srv = mlab.select_server(c, rng);
    const topo::City& cc = s.world.topo->city(s.world.topo->host(c).city);
    double chosen = topo::city_distance_km(
        cc, s.world.topo->city(s.world.topo->host(srv).city));
    bool is_near = true;
    for (std::uint32_t other : mlab.servers()) {
      double d = topo::city_distance_km(
          cc, s.world.topo->city(s.world.topo->host(other).city));
      if (chosen > d + 150.0 + 1e-6) is_near = false;
    }
    near += is_near ? 1 : 0;
    ++total;
  }
  // Selection is proximity-based, modulo the modeled ~8% geo-IP misses.
  EXPECT_GT(static_cast<double>(near) / total, 0.80);
  EXPECT_LT(near, total);  // some misses do occur
}

TEST(Platform, RegionalSelectionReturnsDistinctServers) {
  Stack& s = tiny_stack();
  Platform mlab("mlab", *s.world.topo, s.world.mlab_servers);
  util::Rng rng(2);
  auto servers = mlab.select_servers_region(s.world.clients[0], 5, rng);
  EXPECT_EQ(servers.size(), 5u);
  std::set<std::uint32_t> uniq(servers.begin(), servers.end());
  EXPECT_EQ(uniq.size(), servers.size());
}

TEST(Traceroute, HopsFollowTruthPath) {
  Stack& s = tiny_stack();
  util::Rng rng(3);
  TracerouteOptions opt;
  opt.star_prob = 0.0;
  opt.client_silent_prob = 0.0;
  std::uint32_t server = s.world.mlab_servers[0];
  std::uint32_t client = s.world.clients[0];
  auto tr = run_traceroute(*s.world.topo, s.fwd, server,
                           s.world.topo->host(client).addr, 12.0, opt, rng);
  ASSERT_TRUE(tr.truth.valid);
  // One hop per router plus the destination.
  ASSERT_EQ(tr.hops.size(), tr.truth.hops.size() + 1);
  for (std::size_t i = 1; i < tr.truth.hops.size(); ++i) {
    ASSERT_TRUE(tr.hops[i].responded);
    const topo::Interface& inif =
        s.world.topo->iface(tr.truth.hops[i].in_iface);
    EXPECT_EQ(tr.hops[i].addr, inif.addr);
  }
  EXPECT_TRUE(tr.reached_dst);
  EXPECT_EQ(tr.hops.back().addr, s.world.topo->host(client).addr);
  // RTTs are nondecreasing-ish along the path (allow small noise).
  EXPECT_GT(tr.hops.back().rtt_ms, tr.hops.front().rtt_ms);
}

TEST(Traceroute, StarsAppearAtConfiguredRate) {
  Stack& s = tiny_stack();
  util::Rng rng(4);
  TracerouteOptions opt;
  opt.star_prob = 0.3;
  opt.client_silent_prob = 0.0;
  int responded = 0, total = 0;
  for (int i = 0; i < 40; ++i) {
    std::uint32_t server = s.world.mlab_servers[static_cast<std::size_t>(i) %
                                                s.world.mlab_servers.size()];
    std::uint32_t client = s.world.clients[static_cast<std::size_t>(i) %
                                           s.world.clients.size()];
    auto tr = run_traceroute(*s.world.topo, s.fwd, server,
                             s.world.topo->host(client).addr, 12.0, opt, rng);
    for (std::size_t h = 0; h + 1 < tr.hops.size(); ++h) {
      ++total;
      responded += tr.hops[h].responded ? 1 : 0;
    }
  }
  double rate = 1.0 - static_cast<double>(responded) / total;
  EXPECT_NEAR(rate, 0.3, 0.08);
}

TEST(Traceroute, ParisStableAcrossRuns) {
  Stack& s = tiny_stack();
  util::Rng rng(5);
  TracerouteOptions opt;
  opt.star_prob = 0.0;
  opt.client_silent_prob = 0.0;
  std::uint32_t server = s.world.mlab_servers[1 % s.world.mlab_servers.size()];
  std::uint32_t client = s.world.clients[3 % s.world.clients.size()];
  auto t1 = run_traceroute(*s.world.topo, s.fwd, server,
                           s.world.topo->host(client).addr, 12.0, opt, rng);
  auto t2 = run_traceroute(*s.world.topo, s.fwd, server,
                           s.world.topo->host(client).addr, 13.0, opt, rng);
  ASSERT_EQ(t1.hops.size(), t2.hops.size());
  for (std::size_t i = 0; i < t1.hops.size(); ++i) {
    EXPECT_EQ(t1.hops[i].addr, t2.hops[i].addr);
  }
}

TEST(Ndt, RecordsPlausibleMetrics) {
  Stack& s = tiny_stack();
  Platform mlab("mlab", *s.world.topo, s.world.mlab_servers);
  CampaignConfig cfg;
  NdtCampaign campaign(s.world, s.fwd, s.model, mlab, cfg);
  util::Rng rng(6);
  std::uint32_t client = s.world.clients[0];
  std::uint32_t server = mlab.select_server(client, rng);
  auto rec = campaign.run_single(client, server, 12.0, 1, rng);
  ASSERT_TRUE(rec.truth_path.valid);
  EXPECT_GT(rec.download_mbps, 0.0);
  EXPECT_LE(rec.download_mbps,
            s.world.topo->host(client).tier.down_mbps * 1.5);
  EXPECT_GT(rec.upload_mbps, 0.0);
  EXPECT_LE(rec.upload_mbps, s.world.topo->host(client).tier.up_mbps + 1e-9);
  EXPECT_GT(rec.flow_rtt_ms, 0.0);
  EXPECT_EQ(rec.client_asn, s.world.topo->host(client).asn);
}

TEST(Ndt, CampaignBusyTracerSkipsTraceroutes) {
  Stack& s = tiny_stack();
  Platform mlab("mlab", *s.world.topo, s.world.mlab_servers);
  CampaignConfig cfg;
  cfg.traceroute_min_s = 300.0;  // slow tracer: overlaps guaranteed
  cfg.traceroute_max_s = 600.0;
  NdtCampaign campaign(s.world, s.fwd, s.model, mlab, cfg);

  // Dense schedule: all clients test within one hour.
  std::vector<gen::TestRequest> schedule;
  for (std::size_t i = 0; i < s.world.clients.size(); ++i) {
    schedule.push_back(
        {s.world.clients[i], 12.0 + static_cast<double>(i) * 0.002});
  }
  util::Rng rng(7);
  auto result = campaign.run(schedule, rng);
  EXPECT_EQ(result.tests.size(), schedule.size());
  EXPECT_GT(result.traceroutes_skipped_busy, 0u);
  EXPECT_EQ(result.traceroutes.size() + result.traceroutes_skipped_busy +
                result.traceroutes_skipped_cached + result.traceroutes_failed,
            result.tests.size());
}

TEST(Ndt, TracerouteCacheSuppressesRepeats) {
  Stack& s = tiny_stack();
  Platform mlab("mlab", *s.world.topo, s.world.mlab_servers);
  CampaignConfig cfg;
  cfg.traceroute_failure_prob = 0.0;
  cfg.traceroute_min_s = 1.0;
  cfg.traceroute_max_s = 2.0;
  NdtCampaign campaign(s.world, s.fwd, s.model, mlab, cfg);
  // The same client tests six times within the 10-minute cache window;
  // server selection is stochastic, but repeats landing on a server that
  // already traced this client must be cache-suppressed.
  std::vector<gen::TestRequest> schedule;
  for (int i = 0; i < 6; ++i) {
    schedule.push_back({s.world.clients[0], 10.0 + 0.02 * i});
  }
  util::Rng rng(71);
  auto result = campaign.run(schedule, rng);
  EXPECT_EQ(result.tests.size(), 6u);
  EXPECT_EQ(result.traceroutes.size() + result.traceroutes_skipped_cached +
                result.traceroutes_skipped_busy,
            6u);
  EXPECT_LT(result.traceroutes.size(), 6u);
  EXPECT_GT(result.traceroutes_skipped_cached, 0u);
}

TEST(Ndt, BattleModeMultipliesTests) {
  Stack& s = tiny_stack();
  Platform mlab("mlab", *s.world.topo, s.world.mlab_servers);
  CampaignConfig cfg;
  cfg.servers_per_request = 3;
  NdtCampaign campaign(s.world, s.fwd, s.model, mlab, cfg);
  std::vector<gen::TestRequest> schedule = {{s.world.clients[0], 10.0}};
  util::Rng rng(8);
  auto result = campaign.run(schedule, rng);
  EXPECT_EQ(result.tests.size(), 3u);
  std::set<std::uint32_t> servers;
  for (const auto& t : result.tests) servers.insert(t.server);
  EXPECT_EQ(servers.size(), 3u);
}

TEST(Matching, WindowSemantics) {
  const World& w = test::tiny_world();
  NdtRecord test;
  test.client = w.clients[0];
  test.utc_time_hours = 10.0;

  TracerouteRecord before, just_after, late;
  before.dst = w.topo->host(test.client).addr;
  before.utc_time_hours = 9.95;  // 3 min before
  just_after = before;
  just_after.utc_time_hours = 10.05;  // 3 min after
  late = before;
  late.utc_time_hours = 10.5;  // 30 min after

  // Keep the inputs alive: matches point into these vectors.
  std::vector<NdtRecord> tests = {test};
  std::vector<TracerouteRecord> before_late = {before, late};
  std::vector<TracerouteRecord> all_three = {before, just_after, late};

  MatchOptions strict;  // after-only, 10 min
  MatchStats stats;
  auto m1 = match_tests(tests, before_late, *w.topo, strict, &stats);
  EXPECT_EQ(m1[0].traceroute, nullptr);
  EXPECT_EQ(stats.matched, 0u);

  auto m2 = match_tests(tests, all_three, *w.topo, strict);
  ASSERT_NE(m2[0].traceroute, nullptr);
  EXPECT_DOUBLE_EQ(m2[0].traceroute->utc_time_hours, 10.05);

  MatchOptions relaxed;
  relaxed.allow_before = true;
  auto m3 = match_tests(tests, before_late, *w.topo, relaxed);
  ASSERT_NE(m3[0].traceroute, nullptr);
  EXPECT_DOUBLE_EQ(m3[0].traceroute->utc_time_hours, 9.95);
}

TEST(Matching, MatchesByClientAddress) {
  const World& w = test::tiny_world();
  NdtRecord t1, t2;
  t1.client = w.clients[0];
  t2.client = w.clients[1];
  t1.utc_time_hours = t2.utc_time_hours = 5.0;
  TracerouteRecord tr;
  tr.dst = w.topo->host(t1.client).addr;
  tr.utc_time_hours = 5.01;
  auto m = match_tests({t1, t2}, {tr}, *w.topo, MatchOptions{});
  EXPECT_NE(m[0].traceroute, nullptr);
  EXPECT_EQ(m[1].traceroute, nullptr);
}

TEST(Ark, FullPrefixCampaignCoversAnnouncements) {
  Stack& s = tiny_stack();
  util::Rng rng(9);
  ArkCampaignOptions opt;
  auto corpus = ark_full_prefix_campaign(s.world, s.fwd, s.world.ark_vps[0],
                                         opt, rng);
  EXPECT_EQ(corpus.size(), s.world.topo->announced_prefixes().size());
  std::size_t valid = 0;
  for (const auto& tr : corpus) {
    if (tr.truth.valid) ++valid;
  }
  EXPECT_GT(static_cast<double>(valid) / corpus.size(), 0.95);
}

TEST(Alexa, ResolvesNearestFrontEnd) {
  const World& w = test::tiny_world();
  for (std::uint32_t vp : w.ark_vps) {
    auto targets = resolve_alexa_targets(w, vp);
    ASSERT_FALSE(targets.empty());
    const topo::City& here = w.topo->city(w.topo->host(vp).city);
    for (std::uint32_t t : targets) {
      const topo::Host& chosen = w.topo->host(t);
      EXPECT_EQ(chosen.kind, topo::HostKind::kContent);
      // Nearest-ness: no other front-end of the same content AS is closer.
      double d_chosen =
          topo::city_distance_km(here, w.topo->city(chosen.city));
      for (std::uint32_t other : w.content_hosts) {
        if (w.topo->host(other).asn != chosen.asn) continue;
        double d =
            topo::city_distance_km(here, w.topo->city(w.topo->host(other).city));
        EXPECT_LE(d_chosen, d + 1e-6);
      }
    }
  }
}

}  // namespace
}  // namespace netcong::measure
