#include <vector>

#include "check/fixtures.h"
#include "check/properties.h"
#include "measure/degrade.h"
#include "measure/fingerprint.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "route/path_cache.h"
#include "sim/faults.h"
#include "util/strings.h"

// Differential determinism: one harness runs the same campaign across
// worker counts {1, 2, hardware}, with the path cache attached and not,
// and with instrumentation enabled and not, then diffs full output
// fingerprints. This replaces the scattered per-feature identity checks —
// any new feature that breaks the "output is a pure function of (world,
// schedule, seed)" contract fails here, for a random world rather than the
// one blessed fixture.

namespace netcong::check {
namespace {

using gen::GeneratorConfig;
using util::format;

struct MatrixCell {
  const char* label;
  int threads;
  bool cache;
  bool instrumented;
};

constexpr MatrixCell kMatrix[] = {
    {"serial", 1, false, false},
    {"2 threads", 2, false, false},
    {"hardware threads", 0, false, false},
    {"serial+cache", 1, true, false},
    {"hardware+cache", 0, true, false},
    {"hardware+obs", 0, false, true},
};

std::string run_matrix(const Stack& s,
                       const std::vector<gen::TestRequest>& schedule,
                       std::uint64_t rng_seed,
                       const sim::FaultInjector* faults,
                       measure::CampaignResult* serial_out = nullptr) {
  route::PathCache cache(s.fwd);
  bool have_baseline = false;
  std::uint64_t baseline = 0;
  const char* baseline_label = "";
  for (const MatrixCell& cell : kMatrix) {
    measure::CampaignConfig ccfg;
    ccfg.threads = cell.threads;
    measure::NdtCampaign campaign(s.world, s.fwd, s.model, s.mlab, ccfg);
    if (cell.cache) campaign.set_path_cache(&cache);
    if (faults) campaign.set_faults(faults);

    bool metrics_were = obs::MetricsRegistry::global().enabled();
    bool traces_were = obs::TraceRecorder::global().enabled();
    if (cell.instrumented) {
      obs::MetricsRegistry::global().set_enabled(true);
      obs::TraceRecorder::global().set_enabled(true);
    }
    util::Rng rng(rng_seed);
    measure::CampaignResult result = campaign.run(schedule, rng);
    if (cell.instrumented) {
      obs::MetricsRegistry::global().set_enabled(metrics_were);
      obs::TraceRecorder::global().set_enabled(traces_were);
    }

    std::uint64_t fp = measure::fingerprint(result);
    if (!have_baseline) {
      have_baseline = true;
      baseline = fp;
      baseline_label = cell.label;
      if (serial_out) *serial_out = std::move(result);
    } else if (fp != baseline) {
      return format("campaign output differs: '%s' vs '%s' "
                    "(fingerprints %016llx vs %016llx)",
                    cell.label, baseline_label,
                    static_cast<unsigned long long>(fp),
                    static_cast<unsigned long long>(baseline));
    }
  }
  return "";
}

std::string check_campaign_matrix(const GeneratorConfig& cfg) {
  Stack s(cfg);
  auto schedule = dense_schedule(s.world, 2);
  return run_matrix(s, schedule, cfg.seed, nullptr);
}

std::string check_campaign_matrix_faulted(const GeneratorConfig& cfg) {
  Stack s(cfg);
  auto schedule = dense_schedule(s.world, 2);
  util::Rng rng(cfg.seed ^ 0x5e7e12ull);
  double severity = rng.uniform(0.05, 0.5);
  sim::FaultInjector faults(sim::FaultConfig::scaled(severity),
                            cfg.seed ^ 0xfa117ull);

  measure::CampaignResult serial;
  std::string err = run_matrix(s, schedule, cfg.seed, &faults, &serial);
  if (!err.empty()) return err;
  if (!serial.quality.consistent()) {
    return format("severity %.3f: data-quality accounting inconsistent",
                  severity);
  }
  if (serial.quality.tests_attempted != schedule.size()) {
    return format("severity %.3f: %zu tests attempted for a %zu-test "
                  "schedule",
                  severity, serial.quality.tests_attempted, schedule.size());
  }
  return "";
}

std::string check_world_regen(const GeneratorConfig& cfg) {
  std::uint64_t a = measure::fingerprint(gen::generate_world(cfg));
  std::uint64_t b = measure::fingerprint(gen::generate_world(cfg));
  if (a != b) {
    return format("same config generated different worlds "
                  "(%016llx vs %016llx)",
                  static_cast<unsigned long long>(a),
                  static_cast<unsigned long long>(b));
  }
  GeneratorConfig reseeded = cfg;
  reseeded.seed = cfg.seed + 1;
  std::uint64_t c = measure::fingerprint(gen::generate_world(reseeded));
  if (c == a) {
    return "seed change left the world fingerprint unchanged";
  }
  return "";
}

std::string check_degrade_deterministic(const GeneratorConfig& cfg) {
  Stack s(cfg);
  auto corpus = vp_corpus(s, 0, cfg.seed ^ 0xdecadeull);
  if (corpus.empty()) return "";
  std::uint64_t original = measure::fingerprint(corpus);

  util::Rng rng(cfg.seed ^ 0x1055ull);
  measure::DegradeOptions opts;
  opts.trace_loss = rng.uniform(0.0, 0.5);
  opts.hop_loss = rng.uniform(0.0, 0.5);
  sim::FaultConfig fc;
  fc.enabled = true;
  sim::FaultInjector faults(fc, cfg.seed ^ 0xde6ull);

  measure::DegradeStats stats_a, stats_b;
  auto degraded_a = measure::degrade_corpus(corpus, faults, opts, &stats_a);
  auto degraded_b = measure::degrade_corpus(corpus, faults, opts, &stats_b);
  if (measure::fingerprint(degraded_a) != measure::fingerprint(degraded_b)) {
    return format("degrading the same corpus twice (loss %.3f/%.3f) gave "
                  "different outputs",
                  opts.trace_loss, opts.hop_loss);
  }
  if (!stats_a.accounted() || !stats_b.accounted()) {
    return "degrade stats not accounted (in != out + dropped)";
  }
  if (stats_a.traces_dropped != stats_b.traces_dropped ||
      stats_a.hops_blanked != stats_b.hops_blanked) {
    return "degrade stats differ across identical runs";
  }

  // A disabled injector is the identity on the corpus.
  sim::FaultConfig off;  // enabled defaults to false
  sim::FaultInjector inert(off, cfg.seed ^ 0xde6ull);
  measure::DegradeStats stats_off;
  auto untouched = measure::degrade_corpus(corpus, inert, opts, &stats_off);
  if (measure::fingerprint(untouched) != original) {
    return "a disabled injector modified the corpus";
  }
  if (stats_off.traces_dropped != 0 || stats_off.hops_blanked != 0) {
    return "a disabled injector reported drops";
  }
  return "";
}

Property world_property(const char* name, const char* summary, int iters,
                        std::string (*fn)(const GeneratorConfig&)) {
  Property p;
  p.name = name;
  p.family = "diff";
  p.summary = summary;
  p.default_iterations = iters;
  std::string pname = p.name;
  p.run = [pname, fn](util::pbt::Config cfg) {
    return util::pbt::check<GeneratorConfig>(pname, config_domain(), fn, cfg);
  };
  return p;
}

}  // namespace

void register_diff_properties(std::vector<Property>& out) {
  out.push_back(world_property(
      "diff.campaign_matrix",
      "campaign bit-identical across threads x cache x instrumentation", 4,
      check_campaign_matrix));
  out.push_back(world_property(
      "diff.campaign_matrix_faulted",
      "the determinism matrix holds under injected faults, fully accounted",
      4, check_campaign_matrix_faulted));
  out.push_back(world_property(
      "diff.world_regen_identical",
      "same config -> identical world fingerprint; new seed -> different", 5,
      check_world_regen));
  out.push_back(world_property(
      "diff.degrade_deterministic",
      "corpus degradation is a pure function of (corpus, seed, loss)", 5,
      check_degrade_deterministic));
}

}  // namespace netcong::check
