#pragma once

// Shared RFC 8259 JSON string/number formatting. Every JSON exporter in the
// tree (obs metrics/trace, io exports, netcong_check reports) must go
// through these helpers so arbitrary bytes — control characters, quotes,
// non-ASCII, even invalid UTF-8 — always yield a parseable document.

#include <optional>
#include <string>
#include <string_view>

namespace netcong::util {

// Escapes `s` for inclusion inside a JSON string literal (no surrounding
// quotes). Output is pure ASCII: control characters and every non-ASCII
// codepoint become \uXXXX escapes (astral codepoints as surrogate pairs);
// bytes that do not form valid UTF-8 are replaced with U+FFFD.
std::string json_escape(std::string_view s);

// json_escape with surrounding double quotes — a complete JSON string.
std::string json_quote(std::string_view s);

// Round-trip-safe JSON number: finite values via %.17g, non-finite values
// (inf/nan, which JSON cannot represent) become 0.
std::string json_number(double v);

// Inverse of json_escape for tests and report readers: decodes the escape
// sequences of a JSON string body (no surrounding quotes) back to UTF-8.
// Returns nullopt on malformed escapes or raw control characters.
std::optional<std::string> json_unescape(std::string_view s);

}  // namespace netcong::util
