#include "core/stratify.h"

#include <algorithm>
#include <cmath>

#include "sim/diurnal.h"

namespace netcong::core {

double StratifiedAnalysis::drop_spread(std::size_t min_samples) const {
  double lo = 1e18, hi = -1e18;
  for (const auto& s : strata) {
    if (s.comparison.peak_count < min_samples ||
        s.comparison.offpeak_count < min_samples)
      continue;
    if (std::isnan(s.comparison.relative_drop)) continue;
    lo = std::min(lo, s.comparison.relative_drop);
    hi = std::max(hi, s.comparison.relative_drop);
  }
  return hi < lo ? 0.0 : hi - lo;
}

StratifiedAnalysis stratify_by_link(
    const std::vector<measure::MatchedTest>& matched, topo::Asn server_asn,
    topo::Asn client_asn, const gen::World& world,
    const infer::MapItResult& mapit, const infer::Ip2As& ip2as,
    const infer::OrgMap& orgs) {
  StratifiedAnalysis out;
  out.server_asn = server_asn;
  out.client_asn = client_asn;
  std::uint32_t server_org = orgs.org_of(server_asn);
  std::uint32_t client_org = orgs.org_of(client_asn);

  std::map<std::uint64_t, LinkStratum> strata;
  for (const auto& m : matched) {
    if (!m.traceroute) continue;
    if (m.test->client_asn != client_asn) continue;
    if (orgs.org_of(m.test->server_asn) != server_org) continue;

    // Identify the crossing link from server org into client org.
    topo::IpAddr prev;
    topo::Asn prev_op = 0;
    bool have_prev = false;
    bool found = false;
    topo::IpAddr near, far;
    for (const auto& hop : m.traceroute->hops) {
      if (!hop.responded) {
        have_prev = false;
        continue;
      }
      topo::Asn op = mapit.op(hop.addr);
      if (op == 0) op = ip2as.origin(hop.addr);
      if (have_prev && prev_op != 0 && op != 0 &&
          orgs.org_of(prev_op) == server_org &&
          orgs.org_of(op) == client_org && server_org != client_org) {
        near = prev;
        far = hop.addr;
        found = true;
        break;
      }
      if (op != 0) {
        prev = hop.addr;
        prev_op = op;
        have_prev = true;
      }
    }
    if (!found) continue;

    int offset = world.topo->city(world.topo->host(m.test->client).city)
                     .utc_offset_hours;
    double local =
        sim::local_hour(std::fmod(m.test->utc_time_hours, 24.0), offset);
    std::uint64_t key =
        (static_cast<std::uint64_t>(near.value) << 32) | far.value;
    LinkStratum& s = strata[key];
    s.near_addr = near;
    s.far_addr = far;
    s.throughput.add(local, m.test->download_mbps);
    s.tests++;
    out.aggregate.add(local, m.test->download_mbps);
  }

  for (auto& [key, s] : strata) {
    s.comparison = stats::compare_peak_offpeak(s.throughput);
    out.strata.push_back(std::move(s));
  }
  std::sort(out.strata.begin(), out.strata.end(),
            [](const LinkStratum& a, const LinkStratum& b) {
              return a.tests > b.tests;
            });
  out.aggregate_comparison = stats::compare_peak_offpeak(out.aggregate);
  return out;
}

}  // namespace netcong::core
