# Empty compiler generated dependencies file for netcong_measure.
# This may be replaced when dependencies are built.
