#include "sim/packet/cc.h"

#include <algorithm>
#include <cmath>

namespace netcong::sim::packet {

const char* cc_algo_name(CcAlgo algo) {
  switch (algo) {
    case CcAlgo::kNewReno:
      return "reno";
    case CcAlgo::kCubic:
      return "cubic";
    case CcAlgo::kBbr:
      return "bbr";
  }
  return "?";
}

bool parse_cc_algo(std::string_view name, CcAlgo* out) {
  if (name == "reno" || name == "newreno") {
    *out = CcAlgo::kNewReno;
    return true;
  }
  if (name == "cubic") {
    *out = CcAlgo::kCubic;
    return true;
  }
  if (name == "bbr") {
    *out = CcAlgo::kBbr;
    return true;
  }
  return false;
}

std::unique_ptr<CongestionControl> make_congestion_control(CcAlgo algo,
                                                           double initial_cwnd,
                                                           double max_cwnd) {
  switch (algo) {
    case CcAlgo::kNewReno:
      return std::make_unique<NewRenoCc>(initial_cwnd, max_cwnd);
    case CcAlgo::kCubic:
      return std::make_unique<CubicCc>(initial_cwnd, max_cwnd);
    case CcAlgo::kBbr:
      return std::make_unique<BbrCc>(initial_cwnd, max_cwnd);
  }
  return nullptr;
}

// --- NewReno ---------------------------------------------------------------
// The float operations below replicate the historical inline TcpFlow logic
// exactly (same expressions, same order) — the cc_test fingerprint pin
// depends on it. The max_cwnd clamp is new but is the identity whenever the
// window stays below the cap, which holds on every pinned scenario.

void NewRenoCc::on_ack(const CcAck&) {
  if (cwnd_ < ssthresh_) {
    cwnd_ += 1.0;  // slow start
  } else {
    cwnd_ += 1.0 / cwnd_;  // congestion avoidance
  }
  if (cwnd_ > max_cwnd_) cwnd_ = max_cwnd_;
}

void NewRenoCc::on_dupack_loss(double) {
  ssthresh_ = std::max(2.0, cwnd_ / 2.0);
  cwnd_ = ssthresh_;
}

void NewRenoCc::on_timeout(double) {
  ssthresh_ = std::max(2.0, cwnd_ / 2.0);
  cwnd_ = 1.0;
}

// --- Cubic -----------------------------------------------------------------

namespace {
constexpr double kCubicBeta = 0.7;
constexpr double kCubicC = 0.4;
}  // namespace

void CubicCc::on_ack(const CcAck& ack) {
  if (cwnd_ < ssthresh_) {
    cwnd_ += 1.0;  // slow start (hystart omitted: deterministic exit on loss)
  } else {
    if (epoch_start_s_ < 0.0) {
      epoch_start_s_ = ack.now_s;
      if (cwnd_ < w_max_) {
        k_ = std::cbrt((w_max_ - cwnd_) / kCubicC);
        origin_ = w_max_;
      } else {
        k_ = 0.0;
        origin_ = cwnd_;
      }
    }
    double t = ack.now_s - epoch_start_s_;
    double dt = t - k_;
    double target = origin_ + kCubicC * dt * dt * dt;
    if (target > cwnd_) {
      cwnd_ += (target - cwnd_) / cwnd_;
    } else {
      cwnd_ += 0.01 / cwnd_;  // plateau: creep until the cubic curve passes
    }
  }
  if (cwnd_ > max_cwnd_) cwnd_ = max_cwnd_;
}

void CubicCc::on_loss(double new_cwnd) {
  // Fast convergence: a loss below the previous W_max means a competitor
  // took bandwidth — remember a slightly smaller peak so shares converge.
  if (cwnd_ < w_max_) {
    w_max_ = cwnd_ * (2.0 - kCubicBeta) / 2.0;
  } else {
    w_max_ = cwnd_;
  }
  ssthresh_ = std::max(2.0, cwnd_ * kCubicBeta);
  cwnd_ = new_cwnd;
  epoch_start_s_ = -1.0;
}

void CubicCc::on_dupack_loss(double) {
  double cut = std::max(2.0, cwnd_ * kCubicBeta);
  on_loss(cut);
}

void CubicCc::on_timeout(double) { on_loss(1.0); }

// --- BBR -------------------------------------------------------------------

namespace {
constexpr double kStartupGain = 2.885;  // 2/ln(2)
constexpr double kDrainGain = 1.0 / kStartupGain;
constexpr double kBbrCwndGain = 2.0;
constexpr double kMinCwnd = 4.0;
constexpr int kBtlBwWindowRounds = 10;
constexpr double kRtPropWindowS = 10.0;
// PROBE_BW pacing-gain cycle; the probe (1.25) and drain (0.75) phases
// bracket six cruise phases, each lasting ~one RTprop.
constexpr double kCycleGains[] = {1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
constexpr std::size_t kCycleLen = sizeof(kCycleGains) / sizeof(kCycleGains[0]);
}  // namespace

double BbrCc::btlbw_pps() const {
  double best = 0.0;
  for (const auto& [round, rate] : btlbw_window_) best = std::max(best, rate);
  return best;
}

double BbrCc::rtprop_s() const {
  double best = 0.0;
  for (const auto& [t, rtt] : rtprop_window_) {
    if (best == 0.0 || rtt < best) best = rtt;
  }
  return best;
}

double BbrCc::cwnd() const {
  double bdp = bdp_packets();
  if (bdp <= 0.0) {
    return std::min(initial_cwnd_, max_cwnd_);
  }
  double gain = phase_ == Phase::kProbeBw ? kBbrCwndGain : kStartupGain;
  return std::min(std::max(kMinCwnd, gain * bdp), max_cwnd_);
}

double BbrCc::pacing_rate_pps() const {
  double bw = btlbw_pps();
  if (bw <= 0.0) return 0.0;  // no model yet: initial window burst
  double gain = kStartupGain;
  switch (phase_) {
    case Phase::kStartup:
      gain = kStartupGain;
      break;
    case Phase::kDrain:
      gain = kDrainGain;
      break;
    case Phase::kProbeBw:
      gain = kCycleGains[cycle_index_];
      break;
  }
  return gain * bw;
}

const char* BbrCc::phase() const {
  switch (phase_) {
    case Phase::kStartup:
      return "STARTUP";
    case Phase::kDrain:
      return "DRAIN";
    case Phase::kProbeBw:
      return "PROBE_BW";
  }
  return "?";
}

void BbrCc::advance_round(const CcAck& ack) {
  if (ack.delivered < round_end_delivered_) return;
  ++round_count_;
  // Packets currently in flight are acked by the end of the next round.
  round_end_delivered_ =
      ack.delivered + static_cast<std::int64_t>(ack.in_flight) + 1;
}

void BbrCc::check_full_pipe() {
  // Once per round: if the bandwidth estimate stopped growing >= 25% for
  // three consecutive rounds, the pipe is full.
  if (round_count_ == last_full_pipe_round_) return;
  last_full_pipe_round_ = round_count_;
  double bw = btlbw_pps();
  if (bw > full_bw_ * 1.25) {
    full_bw_ = bw;
    full_bw_rounds_ = 0;
    return;
  }
  ++full_bw_rounds_;
  if (full_bw_rounds_ >= 3) phase_ = Phase::kDrain;
}

void BbrCc::on_ack(const CcAck& ack) {
  advance_round(ack);

  // RTprop: windowed min over valid samples.
  if (ack.rtt_s > 0.0) {
    rtprop_window_.emplace_back(ack.now_s, ack.rtt_s);
    while (!rtprop_window_.empty() &&
           rtprop_window_.front().first < ack.now_s - kRtPropWindowS) {
      rtprop_window_.pop_front();
    }
  }

  // BtlBw: windowed max over delivery-rate samples. The sample is the
  // delivered delta since the acked packet was sent, over its flight time.
  if (ack.delivered_at_send >= 0 && ack.now_s > ack.sent_time_s) {
    double rate = static_cast<double>(ack.delivered - ack.delivered_at_send) /
                  (ack.now_s - ack.sent_time_s);
    if (rate > 0.0) {
      btlbw_window_.emplace_back(round_count_, rate);
      while (!btlbw_window_.empty() &&
             btlbw_window_.front().first <
                 round_count_ - kBtlBwWindowRounds) {
        btlbw_window_.pop_front();
      }
    }
  }

  switch (phase_) {
    case Phase::kStartup:
      check_full_pipe();
      if (phase_ == Phase::kDrain && bdp_packets() > 0.0 &&
          ack.in_flight <= bdp_packets()) {
        // Degenerate: nothing queued to drain.
        phase_ = Phase::kProbeBw;
        cycle_index_ = 0;
        cycle_start_s_ = ack.now_s;
      }
      break;
    case Phase::kDrain:
      if (bdp_packets() > 0.0 && ack.in_flight <= bdp_packets()) {
        phase_ = Phase::kProbeBw;
        cycle_index_ = 0;
        cycle_start_s_ = ack.now_s;
      }
      break;
    case Phase::kProbeBw: {
      double rtprop = rtprop_s();
      if (rtprop > 0.0 && ack.now_s - cycle_start_s_ >= rtprop) {
        cycle_index_ = (cycle_index_ + 1) % kCycleLen;
        cycle_start_s_ = ack.now_s;
      }
      break;
    }
  }
}

void BbrCc::on_dupack_loss(double) {
  if (phase_ == Phase::kStartup) phase_ = Phase::kDrain;
}

void BbrCc::on_timeout(double) {
  // Keep the bandwidth/RTT model across RTOs (as Linux BBR does): the
  // go-back-N resend is paced off the existing BtlBw estimate, which is
  // what keeps a SACK-less sender from re-entering the STARTUP overshoot
  // and losing another burst. Loss in STARTUP still means the pipe is full.
  if (phase_ == Phase::kStartup) phase_ = Phase::kDrain;
}

}  // namespace netcong::sim::packet
