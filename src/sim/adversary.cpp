#include "sim/adversary.h"

#include <algorithm>

namespace netcong::sim {

namespace {

// Fork-stream family base for adversary sites: disjoint from the campaign
// phase families (below 8 << 40, measure/ndt.cpp) and the fault-site family
// (1 << 48, sim/faults.cpp).
constexpr std::uint64_t kSiteFamily = 2ull << 48;

// Key-salt layout (applied to FlowKey port fields): churn and asymmetry
// salts stay below the view bit, and every post-epoch-view lookup sets the
// view bit, so a rewritten key can never collide with a base-view key and
// (key -> path) stays a pure function campaign-wide. All legitimate flow
// keys (NDT server port 3001, ECMP bucket ports 32768+, traceroute ports
// 33434..33534) have the view bit clear in src_port.
constexpr std::uint16_t kSaltMax = 0x0fff;
constexpr std::uint16_t kViewBit = 0x4000;

std::uint64_t pair_id(std::uint32_t src_host, topo::IpAddr dst) {
  return (static_cast<std::uint64_t>(src_host) << 32) | dst.value;
}

}  // namespace

const char* adversary_site_name(AdversarySite site) {
  switch (site) {
    case AdversarySite::kChurnPair: return "churn-pair";
    case AdversarySite::kChurnSalt: return "churn-salt";
    case AdversarySite::kAsymPair: return "asym-pair";
    case AdversarySite::kAsymSalt: return "asym-salt";
    case AdversarySite::kWithdrawPick: return "withdraw-pick";
    case AdversarySite::kStarCloak: return "star-cloak";
  }
  return "?";
}

AdversaryConfig AdversaryConfig::churn(double epoch_hours, double fraction) {
  AdversaryConfig cfg;
  cfg.enabled = true;
  cfg.epoch_hours = epoch_hours;
  cfg.churn_fraction = std::clamp(fraction, 0.0, 1.0);
  return cfg;
}

AdversaryConfig AdversaryConfig::withdrawal(double epoch_hours, int links) {
  AdversaryConfig cfg;
  cfg.enabled = true;
  cfg.epoch_hours = epoch_hours;
  cfg.withdraw_links = std::max(links, 0);
  return cfg;
}

AdversaryConfig AdversaryConfig::asymmetric(double fraction) {
  AdversaryConfig cfg;
  cfg.enabled = true;
  cfg.asym_fraction = std::clamp(fraction, 0.0, 1.0);
  return cfg;
}

AdversaryConfig AdversaryConfig::misleading_stars(double fraction) {
  AdversaryConfig cfg;
  cfg.enabled = true;
  cfg.star_fraction = std::clamp(fraction, 0.0, 1.0);
  return cfg;
}

AdversaryScenario::AdversaryScenario(const topo::Topology& topo,
                                     const route::BgpRouting& bgp,
                                     AdversaryConfig config,
                                     std::uint64_t seed)
    : config_(config), root_(seed) {
  if (!config_.enabled) return;

  if (config_.withdraw_links > 0) {
    // Candidate set: every interdomain link, ordered by id so the pick is
    // independent of topology container iteration order. Links whose AS
    // pair keeps at least one other interdomain link are preferred — the
    // withdrawal then re-routes traffic instead of blackholing it.
    std::vector<topo::LinkId> preferred;
    std::vector<topo::LinkId> rest;
    for (const topo::Link& l : topo.links()) {
      if (l.kind != topo::LinkKind::kInterdomain) continue;
      if (topo.interdomain_links(l.as_a, l.as_b).size() >= 2) {
        preferred.push_back(l.id);
      } else {
        rest.push_back(l.id);
      }
    }
    util::Rng pick = stream(AdversarySite::kWithdrawPick, 0);
    pick.shuffle(preferred);
    pick.shuffle(rest);
    preferred.insert(preferred.end(), rest.begin(), rest.end());
    std::size_t n = std::min(preferred.size(),
                             static_cast<std::size_t>(config_.withdraw_links));
    withdrawn_.assign(preferred.begin(), preferred.begin() + n);
    std::sort(withdrawn_.begin(), withdrawn_.end());
    if (!withdrawn_.empty()) {
      post_fwd_ = std::make_unique<route::Forwarder>(topo, bgp);
      post_fwd_->set_withdrawn_links(withdrawn_);
      post_cache_ = std::make_unique<route::PathCache>(*post_fwd_);
    }
  }

  if (config_.star_fraction > 0.0) {
    cloaked_.resize(topo.routers().size(), 0);
    for (const topo::Router& r : topo.routers()) {
      if (stream(AdversarySite::kStarCloak, r.id.value)
              .chance(config_.star_fraction)) {
        cloaked_[r.id.index()] = 1;
        ++cloaked_count_;
      }
    }
  }
}

util::Rng AdversaryScenario::stream(AdversarySite site,
                                    std::uint64_t item) const {
  return root_.fork(kSiteFamily + static_cast<std::uint64_t>(site))
      .fork(item);
}

bool AdversaryScenario::pair_churned(std::uint32_t src_host,
                                     topo::IpAddr dst) const {
  if (!config_.enabled || config_.churn_fraction <= 0.0) return false;
  return stream(AdversarySite::kChurnPair, pair_id(src_host, dst))
      .chance(config_.churn_fraction);
}

bool AdversaryScenario::pair_asymmetric(std::uint32_t src_host,
                                        topo::IpAddr dst) const {
  if (!config_.enabled || config_.asym_fraction <= 0.0) return false;
  return stream(AdversarySite::kAsymPair, pair_id(src_host, dst))
      .chance(config_.asym_fraction);
}

bool AdversaryScenario::router_cloaked(topo::RouterId router) const {
  if (cloaked_.empty() || !router.valid()) return false;
  std::size_t i = router.index();
  return i < cloaked_.size() && cloaked_[i] != 0;
}

bool AdversaryScenario::rewrite_key(std::uint32_t src_host, topo::IpAddr dst,
                                    double utc_time_hours, bool is_trace,
                                    route::FlowKey& key) const {
  if (!config_.enabled) return false;
  const std::uint64_t pair = pair_id(src_host, dst);
  if (config_.churn_fraction > 0.0 &&
      utc_time_hours >= config_.epoch_hours && pair_churned(src_host, dst)) {
    // A hot-potato shift: the per-pair salt moves every flow-hash decision
    // (ECMP tie-breaks, parallel-link picks, interconnection jitter) to an
    // independent draw, so the pair's router path changes at the epoch
    // while the topology stays fixed.
    std::uint16_t salt = static_cast<std::uint16_t>(
        stream(AdversarySite::kChurnSalt, pair).uniform_int(1, kSaltMax));
    key.src_port ^= salt;
  }
  if (is_trace && config_.asym_fraction > 0.0 &&
      pair_asymmetric(src_host, dst)) {
    // The probe path diverges from the data path: same endpoints, different
    // hash draws — what a traceroute "of" an asymmetric flow really sees.
    std::uint16_t salt = static_cast<std::uint16_t>(
        stream(AdversarySite::kAsymSalt, pair).uniform_int(1, kSaltMax));
    key.dst_port ^= salt;
  }
  bool post = post_view_active(utc_time_hours);
  if (post) key.src_port |= kViewBit;
  return post;
}

bool AdversaryScenario::rewrite_test_key(std::uint32_t src_host,
                                         topo::IpAddr dst,
                                         double utc_time_hours,
                                         route::FlowKey& key) const {
  return rewrite_key(src_host, dst, utc_time_hours, false, key);
}

bool AdversaryScenario::rewrite_trace_key(std::uint32_t src_host,
                                          topo::IpAddr dst,
                                          double utc_time_hours,
                                          route::FlowKey& key) const {
  return rewrite_key(src_host, dst, utc_time_hours, true, key);
}

}  // namespace netcong::sim
