#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <mutex>

#include "util/strings.h"

namespace netcong::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

// Guards the sink pointer and serializes emission, so a line is always
// delivered (and written) whole.
std::mutex& log_mutex() {
  static std::mutex mu;
  return mu;
}

LogSink& sink_slot() {
  static LogSink sink;  // empty = default stderr sink
  return sink;
}

bool parse_level(const char* text, LogLevel* out) {
  if (text == nullptr || *text == '\0') return false;
  std::string s;
  for (const char* p = text; *p != '\0'; ++p) {
    s.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(*p))));
  }
  if (s == "debug" || s == "0") *out = LogLevel::kDebug;
  else if (s == "info" || s == "1") *out = LogLevel::kInfo;
  else if (s == "warn" || s == "warning" || s == "2") *out = LogLevel::kWarn;
  else if (s == "error" || s == "3") *out = LogLevel::kError;
  else return false;
  return true;
}

void load_env_level_once() {
  static std::once_flag once;
  std::call_once(once, [] { reload_log_level_from_env(); });
}

// [2026-08-06T12:34:56.789Z] — UTC wall clock with millisecond resolution.
std::string timestamp() {
  auto now = std::chrono::system_clock::now();
  std::time_t secs = std::chrono::system_clock::to_time_t(now);
  auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                now.time_since_epoch())
                .count() %
            1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  return format("%04d-%02d-%02dT%02d:%02d:%02d.%03dZ", tm.tm_year + 1900,
                tm.tm_mon + 1, tm.tm_mday, tm.tm_hour, tm.tm_min, tm.tm_sec,
                static_cast<int>(ms));
}
}  // namespace

void set_log_level(LogLevel level) {
  load_env_level_once();  // so a later env reload cannot undo this call
  g_level.store(level);
}

LogLevel log_level() {
  load_env_level_once();
  return g_level.load();
}

void reload_log_level_from_env() {
  LogLevel level;
  if (parse_level(std::getenv("NETCONG_LOG_LEVEL"), &level)) {
    g_level.store(level);
  }
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

void set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lk(log_mutex());
  sink_slot() = std::move(sink);
}

void write_log_line_to_stderr(const std::string& line) {
  // One write call per line: stderr is unbuffered, so a single fwrite is
  // what keeps concurrent processes/threads from interleaving mid-line.
  std::string with_newline = line + "\n";
  std::fwrite(with_newline.data(), 1, with_newline.size(), stderr);
}

void log_line(LogLevel level, const std::string& message) {
  load_env_level_once();
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::string line = "[" + timestamp() + "] [" +
                     std::string(log_level_name(level)) + "] " + message;
  std::lock_guard<std::mutex> lk(log_mutex());
  LogSink& sink = sink_slot();
  if (sink) {
    sink(level, line);
  } else {
    write_log_line_to_stderr(line);
  }
}

}  // namespace netcong::util
