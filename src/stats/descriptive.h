#pragma once

// Descriptive statistics over samples of doubles. All functions tolerate
// empty input by returning NaN (documented per function) so callers can
// propagate "no data" through aggregation pipelines, mirroring how sparse
// off-peak crowdsourced samples behave in the paper's Section 6.

#include <cstddef>
#include <vector>

namespace netcong::stats {

// NaN if empty.
double mean(const std::vector<double>& xs);

// Population standard deviation; NaN if empty, 0 for a single sample.
double stddev(const std::vector<double>& xs);

// NaN if empty. Interpolating median.
double median(std::vector<double> xs);

// Interpolating percentile, p in [0,100]. NaN if empty.
double percentile(std::vector<double> xs, double p);

double min(const std::vector<double>& xs);  // NaN if empty
double max(const std::vector<double>& xs);  // NaN if empty
double sum(const std::vector<double>& xs);  // 0 if empty

// Coefficient of variation (stddev/mean); NaN if empty or mean == 0.
double coeff_variation(const std::vector<double>& xs);

// Running summary accumulating count/mean/variance via Welford's algorithm.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const;    // NaN if empty
  double variance() const;  // population variance; NaN if empty
  double stddev() const;
  double min() const;  // NaN if empty
  double max() const;  // NaN if empty

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace netcong::stats
