file(REMOVE_RECURSE
  "CMakeFiles/bench_mlab_report.dir/bench_mlab_report.cpp.o"
  "CMakeFiles/bench_mlab_report.dir/bench_mlab_report.cpp.o.d"
  "CMakeFiles/bench_mlab_report.dir/common.cpp.o"
  "CMakeFiles/bench_mlab_report.dir/common.cpp.o.d"
  "bench_mlab_report"
  "bench_mlab_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mlab_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
