// Unit tests for the pbt library itself (seed derivation, shrinking to
// exact boundaries, repro mode, environment overrides), plus the
// acceptance test for the whole harness: an intentionally planted
// generator-config bug must be caught, shrunk to within 2x of the minimal
// failing config, and reproduce bit-identically from its printed seed.

#include <cstdlib>

#include <gtest/gtest.h>

#include "check/fixtures.h"
#include "util/pbt.h"
#include "util/strings.h"

namespace pbt = netcong::util::pbt;

namespace {

// RAII save/restore so env-override tests cannot leak into each other or
// into a developer's NETCONG_PBT_SEED repro session.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (saved_) {
      ::setenv(name_, saved_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

pbt::Config no_env_config() {
  pbt::Config cfg;
  cfg.env_override = false;  // isolate from any ambient repro variables
  return cfg;
}

TEST(PbtSeeds, CaseSeedIsDeterministicAndSpreads) {
  EXPECT_EQ(pbt::case_seed(42, 0), pbt::case_seed(42, 0));
  EXPECT_NE(pbt::case_seed(42, 0), pbt::case_seed(42, 1));
  EXPECT_NE(pbt::case_seed(42, 0), pbt::case_seed(43, 0));
  // The finalizer should decorrelate the raw base from case 0.
  EXPECT_NE(pbt::case_seed(42, 0), 42u);
}

TEST(PbtCheck, PassingPropertyRunsFullBudget) {
  auto result = pbt::check<std::int64_t>(
      "always_ok", pbt::int_range(0, 100),
      [](const std::int64_t&) { return std::string(); }, no_env_config());
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.iterations_run, 100);
  EXPECT_TRUE(result.report.empty());
}

TEST(PbtShrink, IntRangeShrinksToExactBoundary) {
  // Fails for v >= 500: greedy shrinking must land exactly on 500, not
  // merely somewhere in the failing region.
  std::int64_t minimal = -1;
  auto result = pbt::check<std::int64_t>(
      "ge_500", pbt::int_range(0, 1000),
      [](const std::int64_t& v) {
        return v >= 500 ? "v >= 500" : std::string();
      },
      no_env_config(), &minimal);
  ASSERT_FALSE(result.ok);
  EXPECT_EQ(minimal, 500);
  EXPECT_EQ(result.counterexample, "500");
  EXPECT_GT(result.shrink_steps, 0);
  EXPECT_NE(result.report.find("NETCONG_PBT_SEED=0x"), std::string::npos);
}

TEST(PbtShrink, VectorShrinksLengthAndElements) {
  // Fails for size >= 3: dropping elements must stop at exactly 3, and
  // element-wise shrinking must take every survivor to the range minimum.
  std::vector<std::int64_t> minimal;
  auto result = pbt::check<std::vector<std::int64_t>>(
      "len_ge_3", pbt::vector_of(pbt::int_range(0, 50), 0, 10),
      [](const std::vector<std::int64_t>& v) {
        return v.size() >= 3 ? "size >= 3" : std::string();
      },
      no_env_config(), &minimal);
  ASSERT_FALSE(result.ok);
  ASSERT_EQ(minimal.size(), 3u);
  for (std::int64_t v : minimal) EXPECT_EQ(v, 0);
  EXPECT_EQ(result.counterexample, "[0, 0, 0]");
}

TEST(PbtRepro, ReproSeedRunsExactlyTheFailingCase) {
  auto property = [](const std::int64_t& v) {
    return v >= 500 ? "v >= 500" : std::string();
  };
  auto first = pbt::check<std::int64_t>("ge_500", pbt::int_range(0, 1000),
                                        property, no_env_config());
  ASSERT_FALSE(first.ok);

  pbt::Config repro = no_env_config();
  repro.repro_seed = first.failing_seed;
  auto second = pbt::check<std::int64_t>("ge_500", pbt::int_range(0, 1000),
                                         property, repro);
  ASSERT_FALSE(second.ok);
  EXPECT_EQ(second.iterations_run, 1);  // repro mode runs one case only
  EXPECT_EQ(second.failing_seed, first.failing_seed);
  EXPECT_EQ(second.counterexample, first.counterexample);
  EXPECT_EQ(second.failure, first.failure);
}

TEST(PbtRepro, EnvSeedOverrideReproducesIdentically) {
  auto property = [](const std::int64_t& v) {
    return v >= 500 ? "v >= 500" : std::string();
  };
  auto first = pbt::check<std::int64_t>("ge_500", pbt::int_range(0, 1000),
                                        property, no_env_config());
  ASSERT_FALSE(first.ok);

  // The report prints NETCONG_PBT_SEED=0x...; setting that variable must
  // re-run exactly that case through the default env-reading config.
  std::string hex = netcong::util::format(
      "0x%016llx", static_cast<unsigned long long>(first.failing_seed));
  ScopedEnv seed_env("NETCONG_PBT_SEED", hex.c_str());
  ASSERT_TRUE(pbt::env_repro_seed().has_value());
  EXPECT_EQ(*pbt::env_repro_seed(), first.failing_seed);

  auto second = pbt::check<std::int64_t>("ge_500", pbt::int_range(0, 1000),
                                         property, pbt::Config{});
  ASSERT_FALSE(second.ok);
  EXPECT_EQ(second.iterations_run, 1);
  EXPECT_EQ(second.failing_seed, first.failing_seed);
  EXPECT_EQ(second.counterexample, first.counterexample);
}

TEST(PbtRepro, EnvItersOverrideControlsBudget) {
  ScopedEnv iters_env("NETCONG_PBT_ITERS", "7");
  ASSERT_TRUE(pbt::env_iterations().has_value());
  auto result = pbt::check<std::int64_t>(
      "always_ok", pbt::int_range(0, 100),
      [](const std::int64_t&) { return std::string(); }, pbt::Config{});
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.iterations_run, 7);
}

TEST(PbtRepro, MalformedEnvValuesAreIgnored) {
  ScopedEnv seed_env("NETCONG_PBT_SEED", "not-a-seed");
  ScopedEnv iters_env("NETCONG_PBT_ITERS", "-3");
  EXPECT_FALSE(pbt::env_repro_seed().has_value());
  EXPECT_FALSE(pbt::env_iterations().has_value());
}

// ---- acceptance test: planted generator bug ----
//
// Simulates a bug that only bites when two generator knobs combine:
// clients_per_access_isp >= 7 AND ixp_peer_fraction > 0.1. The harness must
// (a) catch it over random configs, (b) shrink every unrelated knob to its
// simplest value and the two culprit knobs to within 2x of the true
// boundary (clients <= 14, ixp <= 0.2), and (c) reproduce the identical
// counterexample from the failing seed alone.

std::string planted_bug(const netcong::gen::GeneratorConfig& cfg) {
  if (cfg.clients_per_access_isp >= 7 && cfg.ixp_peer_fraction > 0.1) {
    return "planted bug: many clients with IXP peering enabled";
  }
  return std::string();
}

TEST(PbtAcceptance, PlantedGeneratorBugIsCaughtAndShrunkNearMinimal) {
  auto domain = netcong::check::config_domain();
  netcong::gen::GeneratorConfig minimal;
  auto result = pbt::check<netcong::gen::GeneratorConfig>(
      "planted_generator_bug", domain, {planted_bug}, no_env_config(),
      &minimal);
  ASSERT_FALSE(result.ok) << "harness failed to catch the planted bug";

  // Culprit knobs within 2x of the minimal failing boundary.
  EXPECT_GE(minimal.clients_per_access_isp, 7);
  EXPECT_LE(minimal.clients_per_access_isp, 14);
  EXPECT_GT(minimal.ixp_peer_fraction, 0.1);
  EXPECT_LE(minimal.ixp_peer_fraction, 0.2);

  // Every knob the bug does not depend on shrinks all the way down.
  EXPECT_EQ(minimal.seed, 1u);
  EXPECT_EQ(minimal.mlab_servers, 2);
  EXPECT_EQ(minimal.alexa_targets, 2);
  EXPECT_EQ(minimal.speedtest_servers_2015, 2);
  EXPECT_EQ(minimal.speedtest_servers_2017, 2);
  EXPECT_FALSE(minimal.congest_internal_links);
  EXPECT_NEAR(minimal.customer_scale, 0.004, 1e-9);
  EXPECT_NEAR(minimal.announce_staleness, 0.0, 1e-9);

  // The report carries the one-line repro.
  EXPECT_NE(result.report.find("NETCONG_PBT_SEED=0x"), std::string::npos);
  EXPECT_NE(result.report.find(netcong::check::describe_config(minimal)),
            std::string::npos);
}

TEST(PbtAcceptance, PlantedBugReproducesDeterministicallyFromSeed) {
  auto domain = netcong::check::config_domain();
  auto first = pbt::check<netcong::gen::GeneratorConfig>(
      "planted_generator_bug", domain, {planted_bug}, no_env_config());
  ASSERT_FALSE(first.ok);

  // Same seed, fresh run (as a developer pasting the repro line would do):
  // identical counterexample, identical shrink trajectory.
  for (int attempt = 0; attempt < 2; ++attempt) {
    pbt::Config repro = no_env_config();
    repro.repro_seed = first.failing_seed;
    auto again = pbt::check<netcong::gen::GeneratorConfig>(
        "planted_generator_bug", domain, {planted_bug}, repro);
    ASSERT_FALSE(again.ok);
    EXPECT_EQ(again.iterations_run, 1);
    EXPECT_EQ(again.failing_seed, first.failing_seed);
    EXPECT_EQ(again.counterexample, first.counterexample);
    EXPECT_EQ(again.shrink_steps, first.shrink_steps);
  }
}

}  // namespace
