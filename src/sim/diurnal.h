#pragma once

// Diurnal traffic shapes. Internet traffic follows a strong time-of-day
// cycle: a trough in the early morning and a peak in the evening. The shape
// here is piecewise-cosine between a configurable trough hour and peak hour,
// which reproduces both the slow daytime ramp and the sharp evening peak.

namespace netcong::sim {

struct DiurnalShape {
  double trough_hour = 4.0;  // local time of minimum load
  double peak_hour = 21.0;   // local time of maximum load

  // Returns the load fraction in [0, 1]: 0 at the trough, 1 at the peak.
  double value(double local_hour) const;
};

// Local hour in [0, 24) for a given UTC hour-of-day and city offset.
double local_hour(double utc_hour, int utc_offset_hours);

// Crowdsourced *test volume* also has a diurnal cycle (users launch tests
// manually). This is the paper's "time of day bias" (Section 6.1): many more
// tests in the evening than at 4am. Returns a relative rate multiplier with
// mean roughly 1 over the day.
double test_volume_multiplier(double local_hour);

}  // namespace netcong::sim
