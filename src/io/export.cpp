#include "io/export.h"

#include <cstdio>
#include <filesystem>
#include <system_error>

#include "util/strings.h"

namespace netcong::io {

namespace {
std::string f2(double v) { return util::format("%.3f", v); }
}  // namespace

util::CsvWriter export_ndt_tests(const gen::World& world,
                                 const std::vector<measure::NdtRecord>& tests,
                                 bool include_truth) {
  std::vector<std::string> headers = {
      "test_id",        "utc_time_hours", "client_addr",  "client_asn",
      "server_label",   "server_asn",     "download_mbps", "upload_mbps",
      "flow_rtt_ms",    "retrans_rate",   "congestion_signals",
      "status",         "truncated",      "has_webstats"};
  if (include_truth) {
    headers.push_back("truth_access_limited");
    headers.push_back("truth_bottleneck_link");
    headers.push_back("truth_as_hops");
  }
  util::CsvWriter csv(headers);
  for (const auto& t : tests) {
    const topo::Host& c = world.topo->host(t.client);
    const topo::Host& s = world.topo->host(t.server);
    std::vector<std::string> row = {
        std::to_string(t.test_id),
        f2(t.utc_time_hours),
        c.addr.to_string(),
        std::to_string(t.client_asn),
        s.label,
        std::to_string(t.server_asn),
        f2(t.download_mbps),
        f2(t.upload_mbps),
        f2(t.flow_rtt_ms),
        f2(t.retrans_rate),
        std::to_string(t.congestion_signals),
        measure::ndt_status_name(t.status),
        t.truncated ? "1" : "0",
        t.has_webstats ? "1" : "0"};
    if (include_truth) {
      row.push_back(t.truth_access_limited ? "1" : "0");
      row.push_back(t.truth_bottleneck.valid()
                        ? std::to_string(t.truth_bottleneck.value)
                        : "");
      row.push_back(std::to_string(t.truth_path.as_hop_count()));
    }
    csv.add_row(row);
  }
  return csv;
}

util::CsvWriter export_traceroute_hops(
    const std::vector<measure::TracerouteRecord>& traceroutes) {
  util::CsvWriter csv({"trace_id", "src_host", "dst_addr", "utc_time_hours",
                       "ttl", "addr", "rtt_ms", "dns_name"});
  std::size_t trace_id = 0;
  for (const auto& tr : traceroutes) {
    ++trace_id;
    for (const auto& hop : tr.hops) {
      if (!hop.responded) {
        csv.add_row({std::to_string(trace_id), std::to_string(tr.src_host),
                     tr.dst.to_string(), f2(tr.utc_time_hours),
                     std::to_string(hop.ttl), "*", "", ""});
        continue;
      }
      csv.add_row({std::to_string(trace_id), std::to_string(tr.src_host),
                   tr.dst.to_string(), f2(tr.utc_time_hours),
                   std::to_string(hop.ttl), hop.addr.to_string(),
                   f2(hop.rtt_ms), hop.dns_name});
    }
  }
  return csv;
}

util::CsvWriter export_matches(
    const std::vector<measure::MatchedTest>& matched) {
  util::CsvWriter csv({"test_id", "matched", "traceroute_delta_minutes"});
  for (const auto& m : matched) {
    if (!m.test) continue;
    if (m.traceroute) {
      double delta_min =
          (m.traceroute->utc_time_hours - m.test->utc_time_hours) * 60.0;
      csv.add_row({std::to_string(m.test->test_id), "1", f2(delta_min)});
    } else {
      csv.add_row({std::to_string(m.test->test_id), "0", ""});
    }
  }
  return csv;
}

util::CsvWriter export_interdomain_links(const gen::World& world,
                                         bool include_truth) {
  std::vector<std::string> headers = {"link_id", "addr_a", "addr_b", "asn_a",
                                      "asn_b",   "city",   "capacity_mbps",
                                      "via_ixp"};
  if (include_truth) {
    headers.push_back("truth_peak_util");
    headers.push_back("truth_congested");
  }
  util::CsvWriter csv(headers);
  for (const auto& l : world.topo->links()) {
    if (l.kind != topo::LinkKind::kInterdomain) continue;
    const topo::Interface& ia = world.topo->iface(l.side_a);
    const topo::Interface& ib = world.topo->iface(l.side_b);
    const topo::City& city =
        world.topo->city(world.topo->router(ia.router).city);
    std::vector<std::string> row = {
        std::to_string(l.id.value), ia.addr.to_string(), ib.addr.to_string(),
        std::to_string(l.as_a),     std::to_string(l.as_b),
        city.name,                  f2(l.capacity_mbps),
        l.via_ixp ? "1" : "0"};
    if (include_truth) {
      row.push_back(f2(world.traffic->profile(l.id).peak_util));
      row.push_back(world.traffic->congested_at_peak(l.id) ? "1" : "0");
    }
    csv.add_row(row);
  }
  return csv;
}

util::CsvWriter export_data_quality(const sim::DataQuality& quality) {
  util::CsvWriter csv({"metric", "value"});
  for (const auto& [metric, value] : quality.rows()) {
    csv.add_row({metric, std::to_string(value)});
  }
  csv.add_row({"consistent", quality.consistent() ? "1" : "0"});
  return csv;
}

util::Status export_campaign(
    const gen::World& world, const std::vector<measure::NdtRecord>& tests,
    const std::vector<measure::TracerouteRecord>& traceroutes,
    const std::vector<measure::MatchedTest>& matched,
    const std::string& directory, bool include_truth,
    const sim::DataQuality* quality) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return util::error_status("cannot create " + directory + ": " +
                              ec.message());
  }
  std::string failed;
  auto write = [&](const util::CsvWriter& csv, const std::string& name) {
    std::string path = directory + "/" + name;
    if (!csv.write_file(path)) {
      if (!failed.empty()) failed += ", ";
      failed += path;
    }
  };
  write(export_ndt_tests(world, tests, include_truth), "ndt_tests.csv");
  write(export_traceroute_hops(traceroutes), "traceroute_hops.csv");
  write(export_matches(matched), "matches.csv");
  write(export_interdomain_links(world, include_truth),
        "interdomain_links.csv");
  if (quality) write(export_data_quality(*quality), "data_quality.csv");
  if (!failed.empty()) {
    return util::error_status("failed writing: " + failed);
  }
  return util::ok_status();
}

util::Status export_observability(const obs::MetricsSnapshot& snapshot,
                                  const std::string& trace_json,
                                  const std::string& directory) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return util::error_status("cannot create " + directory + ": " +
                              ec.message());
  }
  std::string failed;
  auto write = [&](const std::string& body, const std::string& name) {
    std::string path = directory + "/" + name;
    std::FILE* f = std::fopen(path.c_str(), "wb");
    bool ok = f != nullptr;
    if (f) {
      ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
      ok = (std::fclose(f) == 0) && ok;
    }
    if (!ok) {
      if (!failed.empty()) failed += ", ";
      failed += path;
    }
  };
  write(snapshot.to_json() + "\n", "metrics.json");
  if (!trace_json.empty()) write(trace_json + "\n", "trace.json");
  if (!failed.empty()) {
    return util::error_status("failed writing: " + failed);
  }
  return util::ok_status();
}

}  // namespace netcong::io
