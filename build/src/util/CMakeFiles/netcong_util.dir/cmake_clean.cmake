file(REMOVE_RECURSE
  "CMakeFiles/netcong_util.dir/csv.cpp.o"
  "CMakeFiles/netcong_util.dir/csv.cpp.o.d"
  "CMakeFiles/netcong_util.dir/logging.cpp.o"
  "CMakeFiles/netcong_util.dir/logging.cpp.o.d"
  "CMakeFiles/netcong_util.dir/rng.cpp.o"
  "CMakeFiles/netcong_util.dir/rng.cpp.o.d"
  "CMakeFiles/netcong_util.dir/strings.cpp.o"
  "CMakeFiles/netcong_util.dir/strings.cpp.o.d"
  "CMakeFiles/netcong_util.dir/table.cpp.o"
  "CMakeFiles/netcong_util.dir/table.cpp.o.d"
  "libnetcong_util.a"
  "libnetcong_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netcong_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
