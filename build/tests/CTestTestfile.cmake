# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/ip_test[1]_include.cmake")
include("/root/repo/build/tests/topo_test[1]_include.cmake")
include("/root/repo/build/tests/bgp_test[1]_include.cmake")
include("/root/repo/build/tests/forwarding_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/packet_sim_test[1]_include.cmake")
include("/root/repo/build/tests/gen_test[1]_include.cmake")
include("/root/repo/build/tests/measure_test[1]_include.cmake")
include("/root/repo/build/tests/infer_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/core_analyses_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/probe_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
