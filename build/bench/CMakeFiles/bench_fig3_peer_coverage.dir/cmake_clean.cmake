file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_peer_coverage.dir/bench_fig3_peer_coverage.cpp.o"
  "CMakeFiles/bench_fig3_peer_coverage.dir/bench_fig3_peer_coverage.cpp.o.d"
  "CMakeFiles/bench_fig3_peer_coverage.dir/common.cpp.o"
  "CMakeFiles/bench_fig3_peer_coverage.dir/common.cpp.o.d"
  "bench_fig3_peer_coverage"
  "bench_fig3_peer_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_peer_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
