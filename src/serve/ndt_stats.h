#pragma once

// Incremental NDT-stream statistics: the service-side evidence store for
// throughput test events, sibling of infer::MapItEvidence for traceroutes.
//
// Deliberately integer-only. Per-shard stores are merged at snapshot time,
// and a float accumulator's value depends on summation grouping — one shard
// vs four would change the low bits and break the "snapshot is bit-identical
// for any shard count" contract. Counts (status buckets, fixed-bin
// throughput histograms, data-quality flags) are commutative and
// associative, so the merged store is a pure function of the event set.

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "measure/ndt.h"

namespace netcong::measure {
class Fingerprint;
}

namespace netcong::serve {

class NdtStreamStats {
 public:
  // Upper bounds (Mbps) of the download-throughput bins; an implicit +inf
  // bin follows. Chosen to straddle the paper's service-tier range.
  static const std::vector<double>& download_bounds();

  NdtStreamStats();

  void add(const measure::NdtRecord& test);
  void merge(const NdtStreamStats& other);

  std::uint64_t tests() const { return tests_; }
  std::uint64_t by_status(measure::NdtStatus status) const {
    return by_status_[static_cast<std::size_t>(status)];
  }
  std::uint64_t truncated() const { return truncated_; }
  std::uint64_t missing_webstats() const { return missing_webstats_; }
  // download_bounds().size() + 1 entries (the last is the +inf bin). Only
  // completed tests land in the histogram.
  const std::vector<std::uint64_t>& download_bins() const {
    return download_bins_;
  }

  void mix_into(measure::Fingerprint& fp) const;

 private:
  std::uint64_t tests_ = 0;
  std::array<std::uint64_t, 4> by_status_{};  // indexed by NdtStatus
  std::uint64_t truncated_ = 0;
  std::uint64_t missing_webstats_ = 0;
  std::vector<std::uint64_t> download_bins_;
};

}  // namespace netcong::serve
