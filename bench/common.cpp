#include "common.h"

#include <sys/resource.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.h"
#include "util/strings.h"
#include "measure/alexa.h"
#include "measure/ark.h"

namespace netcong::bench {

gen::GeneratorConfig bench_config() {
  const char* scale = std::getenv("NETCONG_BENCH_SCALE");
  gen::GeneratorConfig cfg;
  if (scale && std::strcmp(scale, "small") == 0) {
    cfg = gen::GeneratorConfig::small();
  } else if (scale && std::strcmp(scale, "tiny") == 0) {
    cfg = gen::GeneratorConfig::tiny();
  } else {
    cfg = gen::GeneratorConfig::full();
  }
  cfg.seed = 20150501;  // May 2015, the paper's primary measurement window
  return cfg;
}

Context::Context(const gen::GeneratorConfig& cfg)
    : world(gen::generate_world(cfg)),
      bgp(*world.topo),
      fwd(*world.topo, bgp),
      path_cache(fwd),
      model(*world.topo, *world.traffic),
      ip2as(*world.topo),
      orgs(*world.topo) {
  for (const auto& [name, asns] : world.isp_asns) {
    for (topo::Asn a : asns) isp_of[a] = name;
  }
}

measure::Platform Context::mlab_platform() const {
  return measure::Platform("M-Lab", *world.topo, world.mlab_servers);
}

measure::Platform Context::speedtest_platform(bool snapshot_2017) const {
  return measure::Platform("Speedtest", *world.topo,
                           snapshot_2017 ? world.speedtest_servers_2017
                                         : world.speedtest_servers_2015);
}

CampaignData run_standard_campaign(Context& ctx, int days,
                                   double tests_per_client,
                                   std::uint64_t seed) {
  util::Rng rng(seed);
  gen::WorkloadConfig wl;
  wl.days = days;
  wl.mean_tests_per_client = tests_per_client;
  auto schedule =
      gen::crowdsourced_schedule(ctx.world, ctx.world.clients, wl, rng);

  measure::CampaignConfig cc;
  measure::Platform mlab = ctx.mlab_platform();
  measure::NdtCampaign campaign(ctx.world, ctx.fwd, ctx.model, mlab, cc);
  campaign.set_path_cache(&ctx.path_cache);

  CampaignData data;
  data.result = campaign.run(schedule, rng);
  measure::MatchOptions mo;
  data.matched = measure::match_tests(data.result.tests,
                                      data.result.traceroutes, *ctx.world.topo,
                                      mo, &data.match_stats);
  data.mapit = infer::run_mapit(data.result.traceroutes, ctx.ip2as, ctx.orgs);
  return data;
}

std::vector<core::VpCoverage> run_coverage(Context& ctx, bool snapshot_2017,
                                           std::uint64_t seed) {
  util::Rng rng(seed);
  infer::AliasResolver aliases(*ctx.world.topo, 0.88, 42);
  const auto& st_servers = snapshot_2017 ? ctx.world.speedtest_servers_2017
                                         : ctx.world.speedtest_servers_2015;
  std::vector<core::VpCoverage> out;
  for (std::uint32_t vp : ctx.world.ark_vps) {
    const topo::Host& host = ctx.world.topo->host(vp);
    measure::ArkCampaignOptions opt;
    auto full =
        measure::ark_full_prefix_campaign(ctx.world, ctx.fwd, vp, opt, rng);
    auto bdr = infer::run_bdrmap(full, host.asn, ctx.ip2as, ctx.orgs,
                                 ctx.world.topo->relationships(), aliases);
    auto to_mlab = measure::ark_targeted_campaign(
        ctx.world, ctx.fwd, vp, ctx.world.mlab_servers, opt, rng);
    auto to_st = measure::ark_targeted_campaign(ctx.world, ctx.fwd, vp,
                                                st_servers, opt, rng);
    auto alexa_targets = measure::resolve_alexa_targets(ctx.world, vp);
    auto to_alexa = measure::ark_targeted_campaign(ctx.world, ctx.fwd, vp,
                                                   alexa_targets, opt, rng);
    std::string network = "?";
    auto it = ctx.isp_of.find(host.asn);
    if (it != ctx.isp_of.end()) network = it->second;
    out.push_back(core::analyze_coverage(host.label, network, bdr, to_mlab,
                                         to_st, to_alexa, ctx.ip2as, ctx.orgs,
                                         aliases));
  }
  return out;
}

void print_header(const std::string& artifact, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", artifact.c_str(), title.c_str());
  std::printf("Reproduction of: Sundaresan et al., \"Challenges in Inferring\n");
  std::printf("Internet Congestion Using Throughput Measurements\", IMC 2017\n");
  std::printf("================================================================\n");
}

void print_footnote(const std::string& text) {
  std::printf("note: %s\n", text.c_str());
}

std::string pct(double value, int decimals) {
  return util::format("%.*f%%", decimals, value);
}

double peak_rss_mb() {
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<double>(ru.ru_maxrss) / 1024.0;
}

BenchRecorder::Entry& BenchRecorder::entry(const std::string& name) {
  for (Entry& e : entries_) {
    if (e.name == name) return e;
  }
  entries_.push_back(Entry{name, 0.0, {}});
  return entries_.back();
}

void BenchRecorder::record(const std::string& name, double wall_ms) {
  entry(name).wall_ms = wall_ms;
}

void BenchRecorder::stat(const std::string& name, const std::string& key,
                         double value) {
  entry(name).stats.emplace_back(key, value);
}

void BenchRecorder::write() const {
  std::string path = "BENCH_" + label_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "BenchRecorder: cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"label\": \"%s\",\n  \"entries\": [\n",
               label_.c_str());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    std::fprintf(f, "    {\"name\": \"%s\", \"wall_ms\": %.3f",
                 e.name.c_str(), e.wall_ms);
    for (const auto& [key, value] : e.stats) {
      std::fprintf(f, ", \"%s\": %.6g", key.c_str(), value);
    }
    std::fprintf(f, "}%s\n", i + 1 < entries_.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"peak_rss_mb\": %.3f", peak_rss_mb());
  // When the bench ran with metrics on, ship the snapshot alongside the
  // timings so run_bench.sh's aggregate has the counters in one file.
  if (obs::MetricsRegistry::global().enabled()) {
    std::string metrics = obs::MetricsRegistry::global().snapshot().to_json();
    std::fprintf(f, ",\n  \"metrics\": %s", metrics.c_str());
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("bench timings written to %s\n", path.c_str());
}

}  // namespace netcong::bench
