// Section 4.1: NDT <-> Paris traceroute matching. The M-Lab traceroute
// daemon was single-threaded, so concurrent tests got no traceroute; the
// analysis then matches each NDT test to the first traceroute toward the
// same client within a 10-minute window. Paper: 71% matched (after-only
// window, May 2015), 87% (either side), 76% (March 2017).

#include <cstdio>

#include "common.h"
#include "gen/paper_data.h"
#include "measure/matching.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace netcong;
  bench::print_header("Section 4.1",
                      "NDT <-> Paris traceroute matching fractions");

  bench::Context ctx(bench::bench_config());

  // May 2015 was the "Battle for the Net" surge: a large share of tests
  // came from a wrapper that ran back-to-back tests against several
  // regional servers. The single-threaded traceroute daemon only serves the
  // first of each burst, so later tests have no traceroute *after* them —
  // but do have one shortly *before* (the first test's), which is exactly
  // why the paper's relaxed window recovers 87% where the strict
  // after-window finds 71%.
  util::Rng rng(8);
  gen::WorkloadConfig wl;
  wl.days = 28;
  wl.mean_tests_per_client = 8.0;
  auto schedule =
      gen::crowdsourced_schedule(ctx.world, ctx.world.clients, wl, rng);
  std::vector<gen::TestRequest> plain, battle;
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    (i % 2 ? battle : plain).push_back(schedule[i]);
  }

  measure::Platform mlab = ctx.mlab_platform();
  measure::CampaignConfig plain_cc;
  plain_cc.traceroute_failure_prob = 0.12;
  plain_cc.traceroute_cache_minutes = 20.0;
  measure::NdtCampaign plain_campaign(ctx.world, ctx.fwd, ctx.model, mlab,
                                      plain_cc);
  plain_campaign.set_path_cache(&ctx.path_cache);
  auto plain_result = plain_campaign.run(plain, rng);

  measure::CampaignConfig battle_cc;
  battle_cc.servers_per_request = 3;
  battle_cc.traceroute_failure_prob = 0.12;
  battle_cc.traceroute_cache_minutes = 20.0;
  measure::NdtCampaign battle_campaign(ctx.world, ctx.fwd, ctx.model, mlab,
                                       battle_cc);
  battle_campaign.set_path_cache(&ctx.path_cache);
  auto battle_result = battle_campaign.run(battle, rng);

  measure::CampaignResult merged;
  merged.tests = plain_result.tests;
  merged.tests.insert(merged.tests.end(), battle_result.tests.begin(),
                      battle_result.tests.end());
  merged.traceroutes = plain_result.traceroutes;
  merged.traceroutes.insert(merged.traceroutes.end(),
                            battle_result.traceroutes.begin(),
                            battle_result.traceroutes.end());
  merged.traceroutes_skipped_busy = plain_result.traceroutes_skipped_busy +
                                    battle_result.traceroutes_skipped_busy;
  const measure::CampaignResult& result = merged;

  measure::MatchOptions after_only;
  measure::MatchStats s_after;
  measure::match_tests(result.tests, result.traceroutes, *ctx.world.topo,
                       after_only, &s_after);

  measure::MatchOptions either;
  either.allow_before = true;
  measure::MatchStats s_either;
  measure::match_tests(result.tests, result.traceroutes, *ctx.world.topo,
                       either, &s_either);

  measure::MatchOptions wide;
  wide.window_minutes = 60.0;
  measure::MatchStats s_wide;
  measure::match_tests(result.tests, result.traceroutes, *ctx.world.topo,
                       wide, &s_wide);

  auto paper = gen::paper::sec41_matching();

  std::printf("campaign: %zu tests (half via 3-server battle bursts), %zu "
              "traceroutes, %zu skipped (tracer busy)\n\n",
              result.tests.size(), result.traceroutes.size(),
              result.traceroutes_skipped_busy);

  util::TextTable table({"matching window", "matched", "fraction", "paper"});
  table.add_row({"10 min after test",
                 util::format("%zu/%zu", s_after.matched, s_after.total_tests),
                 bench::pct(100.0 * s_after.fraction()),
                 bench::pct(100.0 * paper.may2015_after_window)});
  table.add_row({"10 min either side",
                 util::format("%zu/%zu", s_either.matched, s_either.total_tests),
                 bench::pct(100.0 * s_either.fraction()),
                 bench::pct(100.0 * paper.may2015_either_side)});
  table.add_row({"60 min after test",
                 util::format("%zu/%zu", s_wide.matched, s_wide.total_tests),
                 bench::pct(100.0 * s_wide.fraction()), "-"});
  std::printf("%s", table.render().c_str());
  std::printf("\npaper scale: %s of %s May-2015 tests matched\n",
              util::with_thousands(paper.may2015_matched).c_str(),
              util::with_thousands(paper.may2015_total_tests).c_str());
  bench::print_footnote(
      "shape target: strictly below 100%, with the relaxed window adding "
      "roughly 10-20 points, as in the paper (71% -> 87%)");
  return 0;
}
