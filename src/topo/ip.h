#pragma once

// IPv4 addresses, CIDR prefixes, and a binary trie supporting longest-prefix
// match — the substrate for prefix-to-AS mapping (CAIDA prefix2as style) and
// IXP prefix lists used by MAP-IT and bdrmap.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace netcong::topo {

struct IpAddr {
  std::uint32_t value = 0;

  constexpr IpAddr() = default;
  constexpr explicit IpAddr(std::uint32_t v) : value(v) {}
  constexpr IpAddr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                   std::uint8_t d)
      : value((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
              (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  std::string to_string() const;
  static std::optional<IpAddr> parse(const std::string& s);

  friend constexpr bool operator==(IpAddr a, IpAddr b) {
    return a.value == b.value;
  }
  friend constexpr bool operator!=(IpAddr a, IpAddr b) {
    return a.value != b.value;
  }
  friend constexpr bool operator<(IpAddr a, IpAddr b) {
    return a.value < b.value;
  }
};

struct Prefix {
  IpAddr network;   // host bits zeroed
  std::uint8_t len = 0;  // 0..32

  constexpr Prefix() = default;
  Prefix(IpAddr addr, std::uint8_t l);

  bool contains(IpAddr a) const;
  bool contains(const Prefix& other) const;  // other is equal or more specific
  std::uint32_t size() const;  // number of addresses (2^(32-len)); 0 for /0

  // First usable host-style address offset (we use .0-based offsets freely).
  IpAddr nth(std::uint32_t offset) const;

  std::string to_string() const;
  static std::optional<Prefix> parse(const std::string& s);

  friend bool operator==(const Prefix& a, const Prefix& b) {
    return a.network == b.network && a.len == b.len;
  }
  friend bool operator<(const Prefix& a, const Prefix& b) {
    if (a.network != b.network) return a.network < b.network;
    return a.len < b.len;
  }
};

// Binary trie mapping prefixes to a value; lookup returns the value of the
// longest matching prefix. Used for prefix->origin-AS and IXP membership.
template <typename V>
class PrefixTrie {
 public:
  // Later inserts for the same exact prefix overwrite earlier ones.
  void insert(const Prefix& p, V value) {
    std::size_t node = 0;
    if (nodes_.empty()) nodes_.emplace_back();
    for (std::uint8_t depth = 0; depth < p.len; ++depth) {
      int bit = (p.network.value >> (31 - depth)) & 1;
      std::size_t child = bit ? nodes_[node].right : nodes_[node].left;
      if (child == 0) {
        // Note: emplace_back may reallocate, so re-index after it.
        nodes_.emplace_back();
        child = nodes_.size() - 1;
        if (bit) {
          nodes_[node].right = child;
        } else {
          nodes_[node].left = child;
        }
      }
      node = child;
    }
    nodes_[node].value = std::move(value);
    nodes_[node].has_value = true;
    ++size_;
  }

  // Longest-prefix match; nullopt if no covering prefix exists.
  std::optional<V> lookup(IpAddr a) const {
    if (nodes_.empty()) return std::nullopt;
    std::optional<V> best;
    std::size_t node = 0;
    if (nodes_[0].has_value) best = nodes_[0].value;
    for (int depth = 0; depth < 32; ++depth) {
      int bit = (a.value >> (31 - depth)) & 1;
      std::size_t child = bit ? nodes_[node].right : nodes_[node].left;
      if (child == 0) break;
      node = child;
      if (nodes_[node].has_value) best = nodes_[node].value;
    }
    return best;
  }

  // Exact-prefix lookup (no LPM walk past p.len).
  std::optional<V> lookup_exact(const Prefix& p) const {
    if (nodes_.empty()) return std::nullopt;
    std::size_t node = 0;
    for (std::uint8_t depth = 0; depth < p.len; ++depth) {
      int bit = (p.network.value >> (31 - depth)) & 1;
      std::size_t child = bit ? nodes_[node].right : nodes_[node].left;
      if (child == 0) return std::nullopt;
      node = child;
    }
    if (!nodes_[node].has_value) return std::nullopt;
    return nodes_[node].value;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  struct Node {
    std::size_t left = 0;   // 0 = none (slot 0 is the root, never a child)
    std::size_t right = 0;
    bool has_value = false;
    V value{};
  };
  std::vector<Node> nodes_;
  std::size_t size_ = 0;
};

}  // namespace netcong::topo
