// Edge cases for corpus degradation, NDT<->traceroute matching, and the
// diurnal analysis: empty corpora, total (100%) loss, and single-sample
// hour bins must produce well-defined, accounted results — zeros and flags,
// not NaN, crashes, or silently dropped rows.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/diurnal.h"
#include "helpers.h"
#include "infer/bdrmap.h"
#include "infer/datasets.h"
#include "infer/mapit.h"
#include "measure/degrade.h"
#include "measure/matching.h"
#include "sim/faults.h"
#include "stats/timeseries.h"

namespace netcong::measure {
namespace {

sim::FaultInjector enabled_injector(std::uint64_t seed) {
  sim::FaultConfig config;
  config.enabled = true;
  return sim::FaultInjector(config, seed);
}

TracerouteRecord make_trace(std::uint32_t src, std::uint32_t dst_addr,
                            double utc_hours, int hops) {
  TracerouteRecord tr;
  tr.src_host = src;
  tr.dst = topo::IpAddr(dst_addr);
  tr.utc_time_hours = utc_hours;
  for (int ttl = 1; ttl <= hops; ++ttl) {
    TraceHop hop;
    hop.ttl = ttl;
    hop.responded = true;
    hop.addr = topo::IpAddr(0x0a000000u + static_cast<std::uint32_t>(ttl));
    hop.rtt_ms = ttl * 1.5;
    hop.dns_name = "hop";
    tr.hops.push_back(hop);
  }
  return tr;
}

TEST(DegradeEdge, EmptyCorpusIsGracefulAndAccounted) {
  sim::FaultInjector faults = enabled_injector(7);
  DegradeOptions options;
  options.trace_loss = 0.5;
  options.hop_loss = 0.5;
  DegradeStats stats;
  auto out = degrade_corpus({}, faults, options, &stats);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(stats.traces_in, 0u);
  EXPECT_EQ(stats.traces_out, 0u);
  EXPECT_EQ(stats.traces_dropped, 0u);
  EXPECT_EQ(stats.hops_in, 0u);
  EXPECT_EQ(stats.hops_blanked, 0u);
  EXPECT_TRUE(stats.accounted());
}

TEST(DegradeEdge, TotalTraceLossDropsEverythingAccounted) {
  std::vector<TracerouteRecord> corpus;
  for (int i = 0; i < 10; ++i) {
    corpus.push_back(make_trace(1, 0xc0a80000u + static_cast<std::uint32_t>(i),
                                10.0 + i, 4));
  }
  sim::FaultInjector faults = enabled_injector(7);
  DegradeOptions options;
  options.trace_loss = 1.0;
  DegradeStats stats;
  auto out = degrade_corpus(corpus, faults, options, &stats);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(stats.traces_in, 10u);
  EXPECT_EQ(stats.traces_dropped, 10u);
  EXPECT_EQ(stats.traces_out, 0u);
  EXPECT_TRUE(stats.accounted());
}

TEST(DegradeEdge, TotalHopLossBlanksEveryHopButKeepsTraces) {
  std::vector<TracerouteRecord> corpus;
  for (int i = 0; i < 5; ++i) {
    corpus.push_back(make_trace(1, 0xc0a80000u + static_cast<std::uint32_t>(i),
                                10.0 + i, 3 + i));
  }
  sim::FaultInjector faults = enabled_injector(7);
  DegradeOptions options;
  options.hop_loss = 1.0;
  DegradeStats stats;
  auto out = degrade_corpus(corpus, faults, options, &stats);
  ASSERT_EQ(out.size(), corpus.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    // Trace structure survives: same dst, same hop count, every hop a star.
    EXPECT_EQ(out[i].dst, corpus[i].dst);
    ASSERT_EQ(out[i].hops.size(), corpus[i].hops.size());
    for (const TraceHop& hop : out[i].hops) {
      EXPECT_FALSE(hop.responded);
    }
  }
  EXPECT_EQ(stats.hops_blanked, stats.hops_in);
  EXPECT_GT(stats.hops_in, 0u);
  EXPECT_TRUE(stats.accounted());
}

TEST(MatchingEdge, EmptyInputsYieldZeroStatsWithoutNan) {
  const gen::World& world = test::tiny_world();
  MatchStats stats;
  auto matched = match_tests({}, {}, *world.topo, {}, &stats);
  EXPECT_TRUE(matched.empty());
  EXPECT_EQ(stats.total_tests, 0u);
  EXPECT_EQ(stats.eligible, 0u);
  EXPECT_EQ(stats.matched, 0u);
  EXPECT_EQ(stats.fraction(), 0.0);   // not NaN: 0/0 is defined as 0
  EXPECT_EQ(stats.coverage(), 0.0);
  EXPECT_TRUE(stats.accounted());
}

TEST(MatchingEdge, TestsWithNoTraceroutesAllUnmatched) {
  const gen::World& world = test::tiny_world();
  ASSERT_FALSE(world.clients.empty());
  std::vector<NdtRecord> tests;
  for (int i = 0; i < 4; ++i) {
    NdtRecord t;
    t.test_id = static_cast<std::uint64_t>(i);
    t.client = world.clients[0];
    t.utc_time_hours = 10.0 + i;
    t.download_mbps = 50.0;
    t.status = NdtStatus::kCompleted;
    tests.push_back(t);
  }
  // One record of each incomplete status: classified, not silently lost.
  tests[1].status = NdtStatus::kAborted;
  tests[2].status = NdtStatus::kUnserved;
  tests[3].status = NdtStatus::kFailed;

  MatchStats stats;
  auto matched = match_tests(tests, {}, *world.topo, {}, &stats);
  ASSERT_EQ(matched.size(), tests.size());
  EXPECT_EQ(matched[0].outcome, MatchedTest::Outcome::kUnmatched);
  EXPECT_EQ(matched[0].traceroute, nullptr);
  for (std::size_t i = 1; i < matched.size(); ++i) {
    EXPECT_EQ(matched[i].outcome, MatchedTest::Outcome::kExcludedIncomplete);
  }
  EXPECT_EQ(stats.total_tests, 4u);
  EXPECT_EQ(stats.eligible, 1u);
  EXPECT_EQ(stats.matched, 0u);
  EXPECT_EQ(stats.excluded_aborted, 1u);
  EXPECT_EQ(stats.excluded_unserved, 1u);
  EXPECT_EQ(stats.excluded_failed, 1u);
  EXPECT_EQ(stats.fraction(), 0.0);
  EXPECT_TRUE(stats.accounted());
}

TEST(MatchingEdge, TotallyDegradedCorpusMatchesNothingGracefully) {
  // The 100%-loss pipeline: a corpus degraded to nothing behaves exactly
  // like the no-traceroutes case downstream.
  const gen::World& world = test::tiny_world();
  std::vector<TracerouteRecord> corpus = {make_trace(1, 0xc0a80001u, 10.0, 4)};
  sim::FaultInjector faults = enabled_injector(3);
  DegradeOptions options;
  options.trace_loss = 1.0;
  auto degraded = degrade_corpus(corpus, faults, options);
  ASSERT_TRUE(degraded.empty());

  NdtRecord t;
  t.client = world.clients.empty() ? 0 : world.clients[0];
  t.utc_time_hours = 10.0;
  t.download_mbps = 25.0;
  MatchStats stats;
  auto matched = match_tests({t}, degraded, *world.topo, {}, &stats);
  ASSERT_EQ(matched.size(), 1u);
  EXPECT_EQ(matched[0].outcome, MatchedTest::Outcome::kUnmatched);
  EXPECT_EQ(stats.matched, 0u);
  EXPECT_TRUE(stats.accounted());
}

TEST(DiurnalEdge, SingleSampleBinsAreFlaggedNotCalled) {
  const gen::World& world = test::tiny_world();
  ASSERT_FALSE(world.clients.empty());
  NdtRecord t;
  t.client = world.clients[0];
  t.utc_time_hours = 20.0;
  t.download_mbps = 42.0;
  t.status = NdtStatus::kCompleted;

  core::DiurnalBuildStats build_stats;
  auto groups = core::build_diurnal_groups(
      {t}, world, [](const NdtRecord&) { return "src"; },
      [](const NdtRecord&) { return "isp"; }, &build_stats);
  EXPECT_EQ(build_stats.total, 1u);
  EXPECT_EQ(build_stats.used, 1u);
  EXPECT_TRUE(build_stats.accounted());
  ASSERT_EQ(groups.size(), 1u);
  const core::DiurnalGroup& g = groups.begin()->second;
  EXPECT_EQ(g.tests, 1u);

  // 23 empty bins plus the single-sample bin are all under a 2-sample floor.
  EXPECT_EQ(core::low_sample_hours(g, 2).size(), 24u);
  EXPECT_EQ(core::low_sample_hours(g, 1).size(), 23u);

  // The single sample summarizes to itself, with every other bin empty.
  auto summary = g.throughput.summarize();
  std::size_t total = 0;
  for (int h = 0; h < 24; ++h) {
    std::size_t count = summary.count[static_cast<std::size_t>(h)];
    total += count;
    if (count == 1) {
      EXPECT_EQ(summary.median[static_cast<std::size_t>(h)], 42.0);
    }
  }
  EXPECT_EQ(total, 1u);

  // Inference must flag the group as too sparse, never call it congested.
  auto calls = core::infer_congestion(groups, 0.1);
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_TRUE(calls[0].insufficient_samples);
  EXPECT_FALSE(calls[0].congested);
}

TEST(DiurnalEdge, EmptyWindowComparisonIsNanAndFlagged) {
  // One sample that lands outside the off-peak window: the comparison has
  // an empty side, relative_drop is NaN, and inference treats NaN as
  // insufficient rather than propagating it into a verdict.
  stats::HourlySeries series;
  series.add(20.5, 10.0);  // inside the default 19-23 peak window
  auto cmp = stats::compare_peak_offpeak(series);
  EXPECT_EQ(cmp.peak_count, 1u);
  EXPECT_EQ(cmp.offpeak_count, 0u);
  EXPECT_TRUE(std::isnan(cmp.relative_drop));

  core::DiurnalGroup g;
  g.source = "src";
  g.isp = "isp";
  g.throughput = series;
  g.tests = 1;
  std::map<core::GroupKey, core::DiurnalGroup> groups;
  groups[core::GroupKey{g.source, g.isp}] = g;
  auto calls = core::infer_congestion(groups, 0.1, 1);
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_TRUE(calls[0].insufficient_samples);
  EXPECT_FALSE(calls[0].congested);
}

TEST(InferEdge, StarsOnlyCorpusIsUnusableNotFatal) {
  // Every trace responds at hop 1 and then goes dark: no consecutive
  // responded pair ever forms, so MAP-IT gets zero adjacency evidence and
  // bdrmap zero borders — accounted, not crashed.
  const gen::World& world = test::tiny_world();
  infer::Ip2As ip2as(*world.topo);
  infer::OrgMap orgs(*world.topo);
  ASSERT_FALSE(world.ark_vps.empty());
  std::uint32_t vp = world.ark_vps[0];
  topo::Asn vp_as = world.topo->host(vp).asn;

  std::vector<TracerouteRecord> corpus;
  for (std::uint32_t i = 0; i < 8; ++i) {
    TracerouteRecord tr = make_trace(vp, 0x14000001u + i, 10.0, 1);
    for (int ttl = 2; ttl <= 6; ++ttl) {
      TraceHop star;
      star.ttl = ttl;
      tr.hops.push_back(star);
    }
    corpus.push_back(tr);
  }

  auto mapit = infer::run_mapit(corpus, ip2as, orgs);
  EXPECT_TRUE(mapit.crossings.empty());
  EXPECT_TRUE(mapit.coverage.accounted());
  EXPECT_EQ(mapit.coverage.traces_total, corpus.size());
  EXPECT_EQ(mapit.coverage.traces_used, 0u);

  infer::AliasResolver aliases(*world.topo, 1.0, 42);
  auto bdr = infer::run_bdrmap(corpus, vp_as, ip2as, orgs,
                               world.topo->relationships(), aliases);
  EXPECT_EQ(bdr.counts().as_total, 0);
  EXPECT_TRUE(bdr.mapit.crossings.empty());
}

}  // namespace
}  // namespace netcong::measure
