#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/adjacency.h"
#include "core/signatures.h"
#include "core/threshold.h"
#include "core/tomography.h"
#include "helpers.h"
#include "sim/packet/dumbbell.h"
#include "util/rng.h"

namespace netcong::core {
namespace {

topo::LinkId L(std::uint32_t v) { return topo::LinkId(v); }

TEST(Tomography, ExoneratesLinksOnGoodPaths) {
  std::vector<PathObservation> obs = {
      {{L(1), L(2)}, false},
      {{L(2), L(3)}, true},
  };
  auto r = greedy_binary_tomography(obs);
  ASSERT_EQ(r.bad_links.size(), 1u);
  EXPECT_EQ(r.bad_links[0], L(3));
  EXPECT_TRUE(r.consistent);
}

TEST(Tomography, MinimalCoverAcrossSharedLink) {
  // Two bad paths share link 5: one bad link explains both.
  std::vector<PathObservation> obs = {
      {{L(1), L(5)}, true},
      {{L(2), L(5)}, true},
      {{L(1)}, false},
      {{L(2)}, false},
  };
  auto r = greedy_binary_tomography(obs);
  ASSERT_EQ(r.bad_links.size(), 1u);
  EXPECT_EQ(r.bad_links[0], L(5));
}

TEST(Tomography, InconsistentObservations) {
  // The bad path's only link is exonerated by a good path.
  std::vector<PathObservation> obs = {
      {{L(1)}, false},
      {{L(1)}, true},
  };
  auto r = greedy_binary_tomography(obs);
  EXPECT_FALSE(r.consistent);
  EXPECT_EQ(r.uncovered_bad_paths, 1u);
  EXPECT_TRUE(r.bad_links.empty());
}

TEST(Tomography, ExactBeatsGreedyOnAdversarialInstance) {
  // Hitting-set trap: link 9 hits four bad paths (greedy grabs it first and
  // then still needs 7 and 8), but {7, 8} alone hits all six paths.
  std::vector<PathObservation> obs = {
      {{L(7), L(9)}, true}, {{L(7), L(9)}, true},
      {{L(8), L(9)}, true}, {{L(8), L(9)}, true},
      {{L(7)}, true},       {{L(8)}, true},
  };
  auto greedy = greedy_binary_tomography(obs);
  EXPECT_EQ(greedy.bad_links.size(), 3u);
  auto exact = exact_binary_tomography(obs);
  ASSERT_EQ(exact.bad_links.size(), 2u);
  EXPECT_EQ(exact.bad_links[0], L(7));
  EXPECT_EQ(exact.bad_links[1], L(8));
}

TEST(Tomography, EmptyInput) {
  auto r = greedy_binary_tomography({});
  EXPECT_TRUE(r.bad_links.empty());
  EXPECT_TRUE(r.consistent);
}

// Property: planted bad links are recovered when each bad path contains
// exactly one planted link and good paths exonerate the rest.
class TomographyProperty : public ::testing::TestWithParam<int> {};

TEST_P(TomographyProperty, RecoversPlantedLinks) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int n_links = 40;
  std::set<std::uint32_t> planted;
  while (planted.size() < 4) {
    planted.insert(static_cast<std::uint32_t>(rng.uniform_int(0, n_links - 1)));
  }
  std::vector<PathObservation> obs;
  for (int p = 0; p < 300; ++p) {
    PathObservation o;
    int len = static_cast<int>(rng.uniform_int(3, 8));
    bool bad = false;
    for (int i = 0; i < len; ++i) {
      std::uint32_t link =
          static_cast<std::uint32_t>(rng.uniform_int(0, n_links - 1));
      o.links.push_back(L(link));
      if (planted.count(link)) bad = true;
    }
    o.bad = bad;
    obs.push_back(std::move(o));
  }
  auto r = greedy_binary_tomography(obs);
  // Soundness: no inferred link may lie on any good path.
  std::set<std::uint32_t> good_links;
  for (const auto& o : obs) {
    if (!o.bad) {
      for (auto l : o.links) good_links.insert(l.value);
    }
  }
  for (auto l : r.bad_links) {
    EXPECT_FALSE(good_links.count(l.value));
  }
  // Completeness on identifiable instances: every bad path is explained.
  EXPECT_TRUE(r.consistent);
  std::set<std::uint32_t> inferred;
  for (auto l : r.bad_links) inferred.insert(l.value);
  for (const auto& o : obs) {
    if (!o.bad) continue;
    bool covered = false;
    for (auto l : o.links) covered |= inferred.count(l.value) > 0;
    EXPECT_TRUE(covered);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TomographyProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(TomographyScore, PrecisionRecall) {
  auto s = score_tomography({L(1), L(2), L(3)}, {L(2), L(3), L(4)});
  EXPECT_EQ(s.true_positives, 2u);
  EXPECT_NEAR(s.precision(), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(s.recall(), 2.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(score_tomography({}, {}).precision(), 1.0);
}

TEST(Threshold, RocEndpoints) {
  std::vector<LabeledDrop> drops = {
      {0.8, true, 100}, {0.7, true, 100}, {0.2, false, 100}, {0.1, false, 100}};
  auto roc = roc_sweep(drops, 10);
  // Threshold 0: everything positive.
  EXPECT_DOUBLE_EQ(roc.front().tpr, 1.0);
  EXPECT_DOUBLE_EQ(roc.front().fpr, 1.0);
  // Threshold 1: nothing positive.
  EXPECT_DOUBLE_EQ(roc.back().tpr, 0.0);
  EXPECT_DOUBLE_EQ(roc.back().fpr, 0.0);
  auto best = best_threshold(roc);
  EXPECT_DOUBLE_EQ(best.tpr, 1.0);
  EXPECT_DOUBLE_EQ(best.fpr, 0.0);
  EXPECT_GE(best.threshold, 0.2);
  EXPECT_LE(best.threshold, 0.7);
}

TEST(Threshold, OverlappingDistributionsHaveNegativeSeparation) {
  std::vector<LabeledDrop> drops = {
      {0.5, true, 50}, {0.25, true, 50}, {0.3, false, 50}, {0.1, false, 50}};
  auto d = drop_distributions(drops);
  EXPECT_LT(d.separation, 0.0);
  EXPECT_GT(d.congested_median, d.uncongested_median);
}

TEST(Signatures, FeatureExtraction) {
  // Flat elevated RTT: early == min offset.
  std::vector<double> rtts(200, 80.0);
  rtts[150] = 85.0;
  auto f = extract_features(rtts, 50);
  EXPECT_DOUBLE_EQ(f.min_rtt_ms, 80.0);
  EXPECT_NEAR(f.early_elevation, 0.0, 1e-9);
  auto short_f = extract_features({1, 2, 3}, 50);
  EXPECT_DOUBLE_EQ(short_f.min_rtt_ms, 0.0);
}

TEST(Signatures, ClassifiesPacketSimRegimes) {
  SignatureClassifier clf;

  // Self-induced: lone flow fills a deep buffer.
  sim::packet::Dumbbell::Params p1;
  p1.bottleneck_mbps = 20.0;
  p1.buffer_packets = 300;
  p1.duration_s = 15.0;
  sim::packet::Dumbbell d1(p1);
  sim::packet::FlowSpec f1;
  f1.base_rtt_s = 0.02;
  d1.add_flow(f1);
  auto r1 = d1.run();
  auto feat1 = extract_features(r1.flows[0].stats.rtt_samples_ms);
  EXPECT_EQ(clf.classify(feat1), CongestionType::kSelfInduced);

  // Pre-existing: late flow joins a congested bottleneck.
  sim::packet::Dumbbell::Params p2;
  p2.bottleneck_mbps = 20.0;
  p2.buffer_packets = 250;
  p2.duration_s = 25.0;
  sim::packet::Dumbbell d2(p2);
  for (int i = 0; i < 4; ++i) {
    sim::packet::FlowSpec bg;
    bg.base_rtt_s = 0.02;
    d2.add_flow(bg);
  }
  sim::packet::FlowSpec late;
  late.base_rtt_s = 0.02;
  late.start_time_s = 10.0;
  int id = d2.add_flow(late);
  auto r2 = d2.run();
  auto feat2 =
      extract_features(r2.flows[static_cast<std::size_t>(id)].stats.rtt_samples_ms);
  EXPECT_EQ(clf.classify(feat2), CongestionType::kPreExisting);
}

TEST(Signatures, IndeterminateOnEmpty) {
  SignatureClassifier clf;
  EXPECT_EQ(clf.classify(SignatureFeatures{}),
            CongestionType::kIndeterminate);
}

}  // namespace
}  // namespace netcong::core
