file(REMOVE_RECURSE
  "CMakeFiles/bench_sec62_threshold.dir/bench_sec62_threshold.cpp.o"
  "CMakeFiles/bench_sec62_threshold.dir/bench_sec62_threshold.cpp.o.d"
  "CMakeFiles/bench_sec62_threshold.dir/common.cpp.o"
  "CMakeFiles/bench_sec62_threshold.dir/common.cpp.o.d"
  "bench_sec62_threshold"
  "bench_sec62_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec62_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
