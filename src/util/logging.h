#pragma once

// Leveled, thread-safe logging. Benches and examples keep their tabular
// output on stdout; diagnostics go through here so they can be filtered.
//
// Each message is formatted into one complete line —
//   [2026-08-06T12:34:56.789Z] [WARN] message
// — and handed to the active sink under a single mutex, so concurrent
// loggers never interleave characters within a line. The default sink
// writes the line to stderr with one fwrite; obs::hook_logging() installs
// a sink that additionally counts lines per level in the metrics registry.
//
// The threshold starts from the NETCONG_LOG_LEVEL environment variable
// (debug|info|warn|error, or 0-3), read once before the first line is
// emitted; set_log_level() overrides it at any time.

#include <functional>
#include <sstream>
#include <string>

namespace netcong::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Global threshold; messages below it are dropped. Default: kInfo, or the
// NETCONG_LOG_LEVEL environment variable when set.
void set_log_level(LogLevel level);
LogLevel log_level();

// Re-reads NETCONG_LOG_LEVEL and applies it (no-op when unset or invalid).
// Called automatically once before the first emitted line; exposed so tests
// and long-lived tools can re-apply a changed environment.
void reload_log_level_from_env();

const char* log_level_name(LogLevel level);

// Receives fully formatted lines (no trailing newline), already filtered by
// the threshold, serialized by the logging mutex.
using LogSink = std::function<void(LogLevel level, const std::string& line)>;

// Replaces the sink; an empty function restores the default stderr sink.
void set_log_sink(LogSink sink);

// The default sink's writer: one line, one fwrite to stderr (appends the
// newline). Custom sinks that still want terminal output call this.
void write_log_line_to_stderr(const std::string& line);

// Emits one formatted line through the sink if `level` passes the
// threshold. Safe to call from any thread.
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, stream_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace netcong::util

#define NETCONG_LOG(level) ::netcong::util::detail::LogMessage(level)
#define NETCONG_DEBUG NETCONG_LOG(::netcong::util::LogLevel::kDebug)
#define NETCONG_INFO NETCONG_LOG(::netcong::util::LogLevel::kInfo)
#define NETCONG_WARN NETCONG_LOG(::netcong::util::LogLevel::kWarn)
#define NETCONG_ERROR NETCONG_LOG(::netcong::util::LogLevel::kError)
