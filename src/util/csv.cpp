#include "util/csv.h"

#include <fstream>

namespace netcong::util {

namespace {
std::string escape(const std::string& field) {
  bool needs_quotes = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += '"';
  return out;
}
}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  rows_.push_back(cells);
  rows_.back().resize(headers_.size());
}

std::string CsvWriter::render() const {
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += escape(row[i]);
    }
    out.push_back('\n');
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out;
}

bool CsvWriter::write_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << render();
  return static_cast<bool>(f);
}

std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;  // distinguishes "" from an absent last field
  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };
  for (std::size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;  // doubled quote -> literal quote
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);  // commas and newlines are literal here
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        field_started = true;
        break;
      case ',':
        end_field();
        field_started = true;  // a comma implies a following field
        break;
      case '\r':
        if (i + 1 < text.size() && text[i + 1] == '\n') ++i;
        end_row();
        break;
      case '\n':
        end_row();
        break;
      default:
        field.push_back(c);
        field_started = true;
    }
  }
  // Final row without a trailing newline.
  if (field_started || !field.empty() || !row.empty()) end_row();
  return rows;
}

}  // namespace netcong::util
