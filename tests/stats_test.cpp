#include <gtest/gtest.h>

#include <cmath>

#include "stats/bootstrap.h"
#include "stats/descriptive.h"
#include "stats/hypothesis.h"
#include "stats/timeseries.h"
#include "util/rng.h"

namespace netcong::stats {
namespace {

TEST(Descriptive, MeanMedian) {
  std::vector<double> xs = {1, 2, 3, 4, 10};
  EXPECT_DOUBLE_EQ(mean(xs), 4.0);
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
}

TEST(Descriptive, MedianInterpolates) {
  EXPECT_DOUBLE_EQ(median({1, 2, 3, 4}), 2.5);
}

TEST(Descriptive, EmptyIsNaN) {
  EXPECT_TRUE(std::isnan(mean({})));
  EXPECT_TRUE(std::isnan(median({})));
  EXPECT_TRUE(std::isnan(stddev({})));
  EXPECT_TRUE(std::isnan(percentile({}, 50)));
}

TEST(Descriptive, Percentiles) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(i);
  EXPECT_NEAR(percentile(xs, 0), 1.0, 1e-9);
  EXPECT_NEAR(percentile(xs, 100), 100.0, 1e-9);
  EXPECT_NEAR(percentile(xs, 50), 50.5, 1e-9);
  EXPECT_NEAR(percentile(xs, 90), 90.1, 0.2);
}

TEST(Descriptive, StddevKnown) {
  // Population stddev of {2,4,4,4,5,5,7,9} is 2.
  EXPECT_DOUBLE_EQ(stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.0);
}

TEST(Descriptive, CoeffVariation) {
  EXPECT_NEAR(coeff_variation({10, 10, 10}), 0.0, 1e-12);
  EXPECT_TRUE(std::isnan(coeff_variation({})));
}

TEST(RunningStats, MatchesBatch) {
  util::Rng rng(11);
  std::vector<double> xs;
  RunningStats rs;
  for (int i = 0; i < 500; ++i) {
    double x = rng.normal(5.0, 2.0);
    xs.push_back(x);
    rs.add(x);
  }
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(rs.stddev(), stddev(xs), 1e-9);
  EXPECT_DOUBLE_EQ(rs.min(), min(xs));
  EXPECT_DOUBLE_EQ(rs.max(), max(xs));
}

TEST(RunningStats, MergeEqualsCombined) {
  util::Rng rng(12);
  RunningStats a, b, all;
  for (int i = 0; i < 300; ++i) {
    double x = rng.lognormal(0, 1);
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 3.0);
}

TEST(HourlySeries, BinsByFlooredHour) {
  HourlySeries s;
  s.add(13.7, 10.0);
  s.add(13.1, 20.0);
  s.add(14.0, 30.0);
  EXPECT_EQ(s.bin(13).size(), 2u);
  EXPECT_EQ(s.bin(14).size(), 1u);
  EXPECT_EQ(s.total_count(), 3u);
}

TEST(HourlySeries, SummaryCounts) {
  HourlySeries s;
  for (int h = 0; h < 24; ++h) s.add(h, h * 1.0);
  auto sum = s.summarize();
  for (int h = 0; h < 24; ++h) {
    EXPECT_EQ(sum.count[static_cast<std::size_t>(h)], 1u);
    EXPECT_DOUBLE_EQ(sum.median[static_cast<std::size_t>(h)], h * 1.0);
  }
}

TEST(HourlySeries, WrapAroundMidnight) {
  HourlySeries s;
  s.add(23.5, 1.0);
  s.add(0.5, 3.0);
  EXPECT_EQ(s.count_over_hours(23, 1), 2u);
  EXPECT_DOUBLE_EQ(s.median_over_hours(23, 1), 2.0);
}

TEST(DiurnalComparison, DetectsDrop) {
  HourlySeries s;
  // Off-peak (1-5): 100 Mbps; peak (19-23): 40 Mbps.
  for (int h = 1; h <= 5; ++h) {
    for (int i = 0; i < 30; ++i) s.add(h, 100.0);
  }
  for (int h = 19; h <= 23; ++h) {
    for (int i = 0; i < 30; ++i) s.add(h, 40.0);
  }
  auto c = compare_peak_offpeak(s);
  EXPECT_NEAR(c.relative_drop, 0.6, 1e-9);
  EXPECT_EQ(c.peak_count, 150u);
  EXPECT_EQ(c.offpeak_count, 150u);
}

TEST(DiurnalComparison, EmptyWindowIsNaN) {
  HourlySeries s;
  s.add(20, 10.0);
  auto c = compare_peak_offpeak(s);
  EXPECT_TRUE(std::isnan(c.relative_drop));
}

TEST(Bootstrap, CoversTrueMedian) {
  util::Rng rng(21);
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(rng.normal(50, 5));
  auto ci = bootstrap_median_ci(xs, rng, 500);
  EXPECT_LT(ci.lo, ci.point);
  EXPECT_GT(ci.hi, ci.point);
  EXPECT_LT(ci.lo, 51.5);
  EXPECT_GT(ci.hi, 48.5);
}

TEST(Bootstrap, SmallSampleWideInterval) {
  util::Rng rng(22);
  std::vector<double> small_sample = {10, 60, 20, 90, 45};
  std::vector<double> big;
  for (int i = 0; i < 500; ++i) big.push_back(rng.uniform(10, 90));
  auto ci_small = bootstrap_median_ci(small_sample, rng, 400);
  auto ci_big = bootstrap_median_ci(big, rng, 400);
  EXPECT_GT(ci_small.hi - ci_small.lo, ci_big.hi - ci_big.lo);
}

TEST(Bootstrap, EmptyInput) {
  util::Rng rng(23);
  auto ci = bootstrap_mean_ci({}, rng, 10);
  EXPECT_TRUE(std::isnan(ci.point));
}

TEST(MannWhitney, DetectsShift) {
  util::Rng rng(31);
  std::vector<double> a, b;
  for (int i = 0; i < 80; ++i) {
    a.push_back(rng.normal(50, 10));
    b.push_back(rng.normal(35, 10));
  }
  auto r = mann_whitney_u(a, b);
  EXPECT_TRUE(r.significant_at(0.01));
}

TEST(MannWhitney, SameDistributionUsuallyNotSignificant) {
  util::Rng rng(32);
  int significant = 0;
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<double> a, b;
    for (int i = 0; i < 50; ++i) {
      a.push_back(rng.normal(50, 10));
      b.push_back(rng.normal(50, 10));
    }
    if (mann_whitney_u(a, b).significant_at(0.05)) ++significant;
  }
  // ~5% false positive rate; allow generous slack.
  EXPECT_LE(significant, 8);
}

TEST(MannWhitney, AllTied) {
  std::vector<double> a(10, 5.0), b(12, 5.0);
  auto r = mann_whitney_u(a, b);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(WelchT, DetectsShift) {
  util::Rng rng(33);
  std::vector<double> a, b;
  for (int i = 0; i < 60; ++i) {
    a.push_back(rng.normal(10, 2));
    b.push_back(rng.normal(12, 6));
  }
  EXPECT_TRUE(welch_t(a, b).significant_at(0.05));
}

TEST(CliffsDelta, Extremes) {
  std::vector<double> lo = {1, 2, 3};
  std::vector<double> hi = {10, 11, 12};
  EXPECT_DOUBLE_EQ(cliffs_delta(hi, lo), 1.0);
  EXPECT_DOUBLE_EQ(cliffs_delta(lo, hi), -1.0);
  EXPECT_DOUBLE_EQ(cliffs_delta(lo, lo), 0.0);
}

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0), 0.5, 1e-9);
  EXPECT_NEAR(normal_cdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(normal_cdf(-1.96), 0.025, 1e-3);
}

}  // namespace
}  // namespace netcong::stats
