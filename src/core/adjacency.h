#pragma once

// AS-hop adjacency analysis (paper Figure 1 / Section 4.2): for matched
// NDT tests, walk the paired traceroute through the MAP-IT operating-AS
// assignment, collapse sibling ASes by organization, and count the AS hops
// between the server's org and the client's org. Assumption 2 of simplified
// AS-level tomography holds only for the one-hop fraction.

#include <map>
#include <string>
#include <vector>

#include "infer/datasets.h"
#include "infer/mapit.h"
#include "measure/matching.h"

namespace netcong::core {

struct AdjacencyStats {
  std::string isp;
  std::size_t matched_tests = 0;   // tests with a usable traceroute
  std::size_t one_hop = 0;
  std::size_t two_hops = 0;
  std::size_t more_hops = 0;
  std::size_t unresolved = 0;      // traceroute could not be interpreted

  double one_hop_fraction() const {
    std::size_t n = one_hop + two_hops + more_hops;
    return n == 0 ? 0.0 : static_cast<double>(one_hop) / n;
  }
};

// AS-hop count between server org and client org along one traceroute:
// the number of org transitions in the operating-AS sequence. Returns -1
// when the traceroute cannot be interpreted (unresolved hops at a
// boundary, wrong endpoints).
int as_hops_on_traceroute(const measure::TracerouteRecord& trace,
                          topo::Asn server_asn, topo::Asn client_asn,
                          const infer::MapItResult& mapit,
                          const infer::Ip2As& ip2as, const infer::OrgMap& orgs);

// Aggregates matched tests per client ISP. `isp_of` maps a client ASN to a
// display name (empty = skip the test).
std::vector<AdjacencyStats> analyze_adjacency(
    const std::vector<measure::MatchedTest>& matched,
    const infer::MapItResult& mapit, const infer::Ip2As& ip2as,
    const infer::OrgMap& orgs,
    const std::map<topo::Asn, std::string>& isp_of);

}  // namespace netcong::core
