#include <gtest/gtest.h>

#include "helpers.h"
#include "route/bgp.h"
#include "route/forwarding.h"
#include "sim/diurnal.h"
#include "sim/throughput.h"
#include "sim/traffic.h"

namespace netcong::sim {
namespace {

using test::HandTopo;
using topo::AsType;
using topo::HostKind;
using topo::RelType;

TEST(Diurnal, ShapeExtremes) {
  DiurnalShape s;  // trough 4, peak 21
  EXPECT_NEAR(s.value(4.0), 0.0, 1e-9);
  EXPECT_NEAR(s.value(21.0), 1.0, 1e-9);
  EXPECT_GT(s.value(19.0), s.value(10.0));
}

TEST(Diurnal, ShapeBoundedAndContinuous) {
  DiurnalShape s;
  double prev = s.value(0.0);
  for (double h = 0.05; h <= 24.0; h += 0.05) {
    double v = s.value(h);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
    EXPECT_LT(std::fabs(v - prev), 0.05);  // no jumps
    prev = v;
  }
}

TEST(Diurnal, LocalHourWraps) {
  EXPECT_DOUBLE_EQ(local_hour(3.0, -5), 22.0);
  EXPECT_DOUBLE_EQ(local_hour(23.0, 2), 1.0);
  EXPECT_DOUBLE_EQ(local_hour(12.0, 0), 12.0);
}

TEST(Diurnal, TestVolumeEveningHeavy) {
  EXPECT_GT(test_volume_multiplier(20.5), 3.0 * test_volume_multiplier(4.0));
  // Rough normalization: daily mean near 1.
  double sum = 0;
  for (int h = 0; h < 24; ++h) sum += test_volume_multiplier(h + 0.5);
  EXPECT_NEAR(sum / 24.0, 1.0, 0.25);
}

class TrafficFixture : public ::testing::Test {
 protected:
  TrafficFixture() {
    h.add_as(100, "T", AsType::kTransit, {0});
    h.add_as(200, "A", AsType::kAccess, {0});
    links = h.connect(200, 100, RelType::kCustomer, {0});
  }
  HandTopo h;
  std::vector<topo::LinkId> links;
};

TEST_F(TrafficFixture, UtilizationFollowsShape) {
  TrafficModel tm(h.topo());
  LinkLoadProfile p;
  p.base_util = 0.2;
  p.peak_util = 0.9;
  tm.set_profile(links[0], p);
  // The link is in NYC (UTC-5): local 21:00 = UTC 26 -> 2:00 UTC next day.
  double peak_utc = 26.0 - 24.0 + p.shape.peak_hour - 21.0;  // = 2.0
  double u_peak = tm.utilization(links[0], 2.0);
  double u_trough = tm.utilization(links[0], 9.0);  // local 4:00
  EXPECT_NEAR(u_peak, 0.9, 1e-6);
  EXPECT_NEAR(u_trough, 0.2, 1e-6);
  (void)peak_utc;
}

TEST_F(TrafficFixture, CongestedFlagReflectsPeak) {
  TrafficModel tm(h.topo());
  LinkLoadProfile p;
  p.peak_util = 1.1;
  tm.set_profile(links[0], p);
  EXPECT_TRUE(tm.congested_at_peak(links[0]));
  p.peak_util = 0.9;
  tm.set_profile(links[0], p);
  EXPECT_FALSE(tm.congested_at_peak(links[0]));
}

TEST_F(TrafficFixture, ConditionQueueAndLossGrowWithUtilization) {
  TrafficModel tm(h.topo());
  util::Rng rng(1);
  LinkLoadProfile p;
  p.noise_sigma = 0.0;
  p.base_util = 0.3;
  p.peak_util = 1.15;
  tm.set_profile(links[0], p);
  // local 4:00 (trough) vs local 21:00 (peak); link city NYC = UTC-5.
  LinkCondition at_trough = tm.condition(links[0], 9.0, rng);
  LinkCondition at_peak = tm.condition(links[0], 2.0, rng);
  EXPECT_LT(at_trough.queue_delay_ms, at_peak.queue_delay_ms);
  EXPECT_LT(at_trough.loss_rate, at_peak.loss_rate);
  EXPECT_GT(at_peak.loss_rate, 0.05);  // over capacity -> real loss
  EXPECT_GT(at_peak.queue_delay_ms, 10.0);
}

TEST(TcpResponse, InverseWithRttAndLoss) {
  double base = tcp_response_mbps(1448, 20, 1e-4);
  EXPECT_LT(tcp_response_mbps(1448, 80, 1e-4), base);
  EXPECT_LT(tcp_response_mbps(1448, 20, 1e-2), base);
  // Paper Section 2: longer latency -> lower throughput, all else equal.
  EXPECT_NEAR(tcp_response_mbps(1448, 40, 1e-4) /
                  tcp_response_mbps(1448, 20, 1e-4),
              0.5, 0.05);
}

class ThroughputFixture : public ::testing::Test {
 protected:
  ThroughputFixture() {
    h.add_as(100, "T", AsType::kTransit, {0, 1});
    h.add_as(200, "A", AsType::kAccess, {0, 1});
    links = h.connect(200, 100, RelType::kCustomer, {0});
    server = h.add_host(100, 1, HostKind::kTestServer);
    client = h.add_host(200, 0, HostKind::kClient);
    h.topo().mutable_host(client).tier = topo::ServiceTier{50, 10};
    h.topo().mutable_host(client).home_quality = 1.0;
  }

  sim::ThroughputEstimate run(TrafficModel& tm, double utc_hour,
                              std::uint64_t seed = 1) {
    route::BgpRouting bgp(h.topo());
    route::Forwarder fwd(h.topo(), bgp);
    route::FlowKey k{h.topo().host(server).addr, h.topo().host(client).addr,
                     3001, 40000, 6};
    auto path = fwd.path(server, h.topo().host(client).addr, k);
    ThroughputModel::Params params;
    params.measurement_noise_sigma = 0.0;
    ThroughputModel model(h.topo(), tm, params);
    util::Rng rng(seed);
    return model.estimate(path, h.topo().host(client), h.topo().host(server),
                          utc_hour, rng);
  }

  HandTopo h;
  std::vector<topo::LinkId> links;
  std::uint32_t server = 0, client = 0;
};

TEST_F(ThroughputFixture, AccessLimitedWhenNetworkIdle) {
  TrafficModel tm(h.topo());
  LinkLoadProfile quiet;
  quiet.base_util = 0.1;
  quiet.peak_util = 0.3;
  quiet.noise_sigma = 0.0;
  tm.set_default_profile(quiet);
  auto est = run(tm, 9.0);
  ASSERT_TRUE(est.valid);
  EXPECT_TRUE(est.access_limited);
  // Close to the 50 Mbps tier (slow-start ramp penalty shaves a bit).
  EXPECT_GT(est.goodput_mbps, 38.0);
  EXPECT_LE(est.goodput_mbps, 51.0);
}

TEST_F(ThroughputFixture, CongestedInterdomainLinkCollapsesThroughput) {
  TrafficModel tm(h.topo());
  LinkLoadProfile quiet;
  quiet.base_util = 0.1;
  quiet.peak_util = 0.3;
  quiet.noise_sigma = 0.0;
  tm.set_default_profile(quiet);
  LinkLoadProfile hot;
  hot.base_util = 0.3;
  hot.peak_util = 1.15;
  hot.noise_sigma = 0.0;
  tm.set_profile(links[0], hot);

  auto offpeak = run(tm, 9.0);  // local 4:00 at the NYC link
  auto peak = run(tm, 2.0);     // local 21:00
  ASSERT_TRUE(offpeak.valid && peak.valid);
  EXPECT_GT(offpeak.goodput_mbps, 5.0 * peak.goodput_mbps);
  EXPECT_LT(peak.goodput_mbps, 5.0);
  EXPECT_FALSE(peak.access_limited);
  EXPECT_EQ(peak.bottleneck, links[0]);
  // Queueing at the hot link inflates the flow RTT.
  EXPECT_GT(peak.flow_rtt_ms, offpeak.flow_rtt_ms + 20.0);
  EXPECT_GT(peak.retrans_rate, offpeak.retrans_rate);
  EXPECT_GT(peak.congestion_signals, 0);
}

TEST_F(ThroughputFixture, HomeQualityCapsThroughput) {
  TrafficModel tm(h.topo());
  LinkLoadProfile quiet;
  quiet.base_util = 0.05;
  quiet.peak_util = 0.2;
  quiet.noise_sigma = 0.0;
  tm.set_default_profile(quiet);
  h.topo().mutable_host(client).home_quality = 0.4;
  auto est = run(tm, 9.0);
  EXPECT_LT(est.goodput_mbps, 0.5 * 50.0);
  h.topo().mutable_host(client).home_quality = 1.0;
}

TEST_F(ThroughputFixture, InvalidPathRejected) {
  TrafficModel tm(h.topo());
  ThroughputModel model(h.topo(), tm);
  route::RouterPath bad;
  util::Rng rng(1);
  auto est = model.estimate(bad, h.topo().host(client),
                            h.topo().host(server), 0.0, rng);
  EXPECT_FALSE(est.valid);
}

}  // namespace
}  // namespace netcong::sim
