// Gtest wrapper for the "pathmodel" property family: the multi-CC packet
// simulator must be a pure function of its flow specs (re-runs and
// background-flow insertion orders reproduce bit-identical stats
// fingerprints), and the infer/pathmodel label must survive joint scaling
// of bottleneck bandwidth and flow demand — the metamorphic form of the
// paper's §6 argument against fixed throughput thresholds.

#include <gtest/gtest.h>

#include "check/properties.h"

namespace netcong::check {
namespace {

std::vector<const Property*> family_properties(const char* family) {
  std::vector<const Property*> out;
  for (const Property& p : all_properties()) {
    if (p.family == family) out.push_back(&p);
  }
  return out;
}

class PathModelProperty : public ::testing::TestWithParam<const Property*> {};

TEST_P(PathModelProperty, Holds) {
  util::pbt::Config cfg;
  cfg.iterations = 0;  // the property's bounded default budget
  util::pbt::CheckResult result = run_property(*GetParam(), cfg);
  EXPECT_TRUE(result.ok) << result.report;
}

std::string test_name(const ::testing::TestParamInfo<const Property*>& info) {
  std::string name = info.param->name;
  for (char& c : name) {
    if (c == '.') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Registry, PathModelProperty,
                         ::testing::ValuesIn(family_properties("pathmodel")),
                         test_name);

TEST(PathModelFamily, RegistryHasEnoughProperties) {
  EXPECT_GE(family_properties("pathmodel").size(), 2u);
}

}  // namespace
}  // namespace netcong::check
