#include "infer/datasets.h"

namespace netcong::infer {

Ip2As::Ip2As(const topo::Topology& topo)
    : Ip2As(topo.announced_prefixes(), topo.ixp_prefixes()) {}

Ip2As::Ip2As(const std::vector<std::pair<topo::Prefix, topo::Asn>>& announced,
             const std::vector<topo::Prefix>& ixp_prefixes) {
  for (const auto& [prefix, origin] : announced) {
    trie_.insert(prefix, origin);
  }
  for (const auto& p : ixp_prefixes) {
    ixp_.insert(p, true);
  }
}

Ip2As::Result Ip2As::lookup(topo::IpAddr addr) const {
  if (ixp_.lookup(addr).value_or(false)) {
    return Result{Kind::kIxp, 0};
  }
  if (auto asn = trie_.lookup(addr)) {
    return Result{Kind::kAs, *asn};
  }
  return Result{};
}

topo::Asn Ip2As::origin(topo::IpAddr addr) const {
  Result r = lookup(addr);
  return r.kind == Kind::kAs ? r.asn : 0;
}

bool Ip2As::is_ixp(topo::IpAddr addr) const {
  return lookup(addr).kind == Kind::kIxp;
}

OrgMap::OrgMap(const topo::Topology& topo) {
  for (topo::Asn asn : topo.all_asns()) {
    // Org tokens are OrgId values + 1, keeping 0 for "unknown".
    org_[asn] = topo.as_info(asn).org.value + 1;
  }
}

std::uint32_t OrgMap::org_of(topo::Asn asn) const {
  auto it = org_.find(asn);
  return it == org_.end() ? 0 : it->second;
}

bool OrgMap::same_org(topo::Asn a, topo::Asn b) const {
  if (a == b) return true;
  std::uint32_t oa = org_of(a);
  std::uint32_t ob = org_of(b);
  return oa != 0 && oa == ob;
}

}  // namespace netcong::infer
