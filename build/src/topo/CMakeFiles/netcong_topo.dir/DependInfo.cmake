
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/dns.cpp" "src/topo/CMakeFiles/netcong_topo.dir/dns.cpp.o" "gcc" "src/topo/CMakeFiles/netcong_topo.dir/dns.cpp.o.d"
  "/root/repo/src/topo/geo.cpp" "src/topo/CMakeFiles/netcong_topo.dir/geo.cpp.o" "gcc" "src/topo/CMakeFiles/netcong_topo.dir/geo.cpp.o.d"
  "/root/repo/src/topo/ip.cpp" "src/topo/CMakeFiles/netcong_topo.dir/ip.cpp.o" "gcc" "src/topo/CMakeFiles/netcong_topo.dir/ip.cpp.o.d"
  "/root/repo/src/topo/relationships.cpp" "src/topo/CMakeFiles/netcong_topo.dir/relationships.cpp.o" "gcc" "src/topo/CMakeFiles/netcong_topo.dir/relationships.cpp.o.d"
  "/root/repo/src/topo/topology.cpp" "src/topo/CMakeFiles/netcong_topo.dir/topology.cpp.o" "gcc" "src/topo/CMakeFiles/netcong_topo.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/netcong_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
