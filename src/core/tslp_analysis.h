#pragma once

// Analysis of TSLP latency series (paper Section 7 recommendation): decide
// from the near/far RTT differential whether an interdomain link develops a
// peak-hour standing queue — congestion evidence that needs no throughput
// test and no crowdsourcing.

#include "measure/tslp.h"
#include "stats/timeseries.h"

namespace netcong::core {

struct TslpVerdict {
  // Per-side peak-hour RTT elevation over that side's own off-peak baseline
  // (medians, ms).
  double near_elevation_ms = 0.0;
  double far_elevation_ms = 0.0;
  // The localizing signal: far-side elevation minus near-side elevation.
  double differential_ms = 0.0;
  bool congested = false;
  std::size_t near_samples = 0;
  std::size_t far_samples = 0;
};

struct TslpAnalysisOptions {
  // Differential (ms) above which the link is called congested; real TSLP
  // deployments used values in the 5-20 ms range depending on the buffer.
  double differential_threshold_ms = 15.0;
  int peak_from = 19, peak_to = 23;      // local hours at the VP
  int offpeak_from = 1, offpeak_to = 5;
  int vp_utc_offset_hours = 0;
};

TslpVerdict analyze_tslp(const measure::TslpSeries& series,
                         const TslpAnalysisOptions& options);

}  // namespace netcong::core
