# Empty dependencies file for bench_mlab_report.
# This may be replaced when dependencies are built.
