# Empty compiler generated dependencies file for crowdsourcing_bias.
# This may be replaced when dependencies are built.
