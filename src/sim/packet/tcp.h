#pragma once

// A compact TCP NewReno sender: slow start, congestion avoidance, fast
// retransmit on three duplicate ACKs, and retransmission timeouts with
// Jacobson/Karels RTO estimation. Sequence numbers are packet-granularity.
// The receiver path is cumulative-ACK with in-order delivery guaranteed by
// the FIFO bottleneck, so duplicate-ACK loss detection is exact.

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/packet/event_queue.h"
#include "sim/packet/queue.h"

namespace netcong::sim::packet {

struct TcpStats {
  std::int64_t packets_sent = 0;
  std::int64_t packets_acked = 0;
  std::int64_t retransmits = 0;
  int congestion_signals = 0;  // multiplicative window reductions
  int timeouts = 0;
  std::vector<double> rtt_samples_ms;
  // (time, acked-sequence) pairs for goodput-over-time analysis.
  std::vector<std::pair<double, std::int64_t>> ack_trace;
};

class TcpFlow {
 public:
  struct Params {
    int mss_bytes = 1500;
    double base_rtt_s = 0.04;  // two-way propagation excluding queueing
    double initial_cwnd = 10.0;
    double max_cwnd = 10000.0;
    bool record_rtt = true;
  };

  // `transmit` hands a packet to the network (typically the bottleneck
  // queue); the flow schedules its own ACK-return events internally.
  TcpFlow(int id, EventQueue& events, Params params,
          std::function<bool(const Packet&)> transmit);

  void start(double at_time);
  void stop() { running_ = false; }

  // Called by the scenario when a data packet finishes crossing the
  // bottleneck; the flow schedules the downstream propagation + ACK return.
  void on_packet_delivered(const Packet& p);

  const TcpStats& stats() const { return stats_; }
  double cwnd() const { return cwnd_; }
  std::int64_t highest_acked() const { return cum_acked_; }
  int id() const { return id_; }

 private:
  void try_send();
  void send_packet(std::int64_t seq, bool retransmit);
  void on_ack(std::int64_t cum_seq, double sent_time, bool was_retransmit);
  void schedule_rto();
  void on_rto(std::uint64_t epoch);
  void update_rtt(double sample_s);

  int id_;
  EventQueue* events_;
  Params params_;
  std::function<bool(const Packet&)> transmit_;

  bool running_ = false;
  double cwnd_;
  double ssthresh_ = 1e9;
  std::int64_t next_seq_ = 0;   // next new sequence to send
  std::int64_t cum_acked_ = -1;  // highest cumulative ack received
  int dupacks_ = 0;
  bool in_recovery_ = false;
  std::int64_t recovery_end_ = -1;

  // RTO state.
  double srtt_s_ = 0.0;
  double rttvar_s_ = 0.0;
  double rto_s_ = 1.0;
  std::uint64_t rto_epoch_ = 0;  // cancels stale timers

  // Send times of in-flight packets for RTT sampling (Karn's rule: no
  // samples from retransmitted sequences).
  std::unordered_map<std::int64_t, double> sent_at_;

  TcpStats stats_;
};

}  // namespace netcong::sim::packet
