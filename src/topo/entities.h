#pragma once

// Plain data records for topology entities. The Topology container in
// topology.h owns vectors of these; strong ids (ids.h) index into them.

#include <string>
#include <vector>

#include "topo/ids.h"
#include "topo/ip.h"

namespace netcong::topo {

// Business role of an AS; drives the generator and relationship inference.
enum class AsType {
  kAccess,    // residential broadband (Comcast-like)
  kTransit,   // transit/backbone carrier (Level3-like); may host test servers
  kContent,   // content/CDN network (Alexa-target hosting)
  kEnterprise,
  kIxp,       // route-server/IXP fabric AS
};

const char* as_type_name(AsType t);

struct City {
  CityId id;
  std::string name;        // "Atlanta"
  std::string code;        // "atl"
  double lat = 0.0;
  double lon = 0.0;
  int utc_offset_hours = 0;  // local-time offset, for diurnal modeling
  double population_weight = 1.0;  // relative client density
};

struct Org {
  OrgId id;
  std::string name;  // "Comcast Cable Communications"
};

struct AsInfo {
  Asn asn = kInvalidAsn;
  std::string name;  // "Comcast-7922"
  OrgId org;
  AsType type = AsType::kEnterprise;
  std::vector<CityId> cities;  // points of presence
};

enum class RouterRole {
  kBackbone,  // intra-AS core
  kBorder,    // terminates interdomain links
  kAccess,    // client aggregation
  kHosting,   // server attachment
};

struct Router {
  RouterId id;
  Asn owner = kInvalidAsn;
  CityId city;
  RouterRole role = RouterRole::kBackbone;
  std::string name;  // "edge5.Dallas3" style token used by DNS synthesis
  std::vector<InterfaceId> interfaces;
  // Address the router answers with when the inbound interface has no
  // link-assigned address (e.g. the first hop past a host).
  IpAddr mgmt_addr;
};

struct Interface {
  InterfaceId id;
  IpAddr addr;
  RouterId router;
  // AS out of whose address space this interface is numbered. On interdomain
  // links this may be the neighbor's AS — the central difficulty in
  // traceroute-based border inference (paper Section 4.2).
  Asn addr_owner = kInvalidAsn;
  LinkId link;
  std::string dns_name;  // empty if no PTR record
};

enum class LinkKind {
  kInternal,     // both routers in the same AS
  kInterdomain,  // border link between two ASes
};

struct Link {
  LinkId id;
  InterfaceId side_a;
  InterfaceId side_b;
  LinkKind kind = LinkKind::kInternal;
  Asn as_a = kInvalidAsn;  // owner of side_a's router
  Asn as_b = kInvalidAsn;  // owner of side_b's router
  double capacity_mbps = 10000.0;
  double prop_delay_ms = 1.0;
  // True if this interdomain link crosses an IXP fabric (addresses from the
  // IXP prefix rather than either AS).
  bool via_ixp = false;
};

enum class HostKind {
  kClient,      // crowdsourcing end user
  kTestServer,  // M-Lab/Speedtest-style target
  kVantage,     // Ark-style vantage point
  kContent,     // popular-content (Alexa-target) endpoint
};

// Service tier of a client's access link.
struct ServiceTier {
  double down_mbps = 25.0;
  double up_mbps = 5.0;
};

struct Host {
  std::uint32_t id = 0;  // index into Topology::hosts()
  HostKind kind = HostKind::kClient;
  IpAddr addr;
  Asn asn = kInvalidAsn;
  CityId city;
  RouterId attachment;  // access/hosting router the host hangs off
  ServiceTier tier;     // meaningful for clients
  // Multiplier <= 1 applied to achievable throughput by the home network
  // (Wi-Fi quality, cross traffic); 1.0 for servers.
  double home_quality = 1.0;
  // One-way last-mile delay (DSL/cable/DOCSIS latency); small for servers.
  double access_delay_ms = 5.0;
  std::string label;  // e.g. "mlab.atl01", "speedtest.dfw03", "ark.bed-us"
};

}  // namespace netcong::topo
