#include "sim/throughput.h"

#include <algorithm>
#include <cmath>

namespace netcong::sim {

double tcp_response_mbps(double mss_bytes, double rtt_ms, double loss_rate) {
  // Padhye et al. full model, simplified: the square-root term dominates for
  // the loss rates we produce; include the RTO term's first-order effect so
  // heavy loss collapses throughput sharply.
  double p = std::clamp(loss_rate, 1e-9, 0.5);
  double rtt_s = std::max(rtt_ms, 0.1) / 1000.0;
  double rto_s = std::max(0.2, 4.0 * rtt_s);
  double denom = rtt_s * std::sqrt(2.0 * p / 3.0) +
                 rto_s * std::min(1.0, 3.0 * std::sqrt(3.0 * p / 8.0)) * p *
                     (1.0 + 32.0 * p * p);
  double bytes_per_s = mss_bytes / denom;
  return bytes_per_s * 8.0 / 1e6;
}

ThroughputModel::ThroughputModel(const topo::Topology& topo,
                                 const TrafficModel& traffic, Params params)
    : topo_(&topo), traffic_(&traffic), params_(params) {}

ThroughputEstimate ThroughputModel::estimate(const route::RouterPath& path,
                                             const topo::Host& client,
                                             const topo::Host& server,
                                             double utc_hour,
                                             util::Rng& rng) const {
  ThroughputEstimate e;
  if (!path.valid) return e;

  double base_rtt_ms = 2.0 * path.one_way_delay_ms;
  double queue_ms = 0.0;
  double max_loss = 0.0;
  double min_share_mbps = params_.server_cap_mbps;
  topo::LinkId bottleneck;
  topo::LinkId loss_link;  // the link contributing the path's worst loss

  for (topo::LinkId link : path.links) {
    LinkCondition c = traffic_->condition(link, utc_hour, rng);
    queue_ms += c.queue_delay_ms;
    if (c.loss_rate > max_loss) {
      max_loss = c.loss_rate;
      loss_link = link;
    }
    double cap = topo_->link(link).capacity_mbps;
    // Residual capacity left by background traffic.
    double residual = std::max(0.0, cap * (1.0 - c.utilization));
    // Max-min fair share against the estimated number of competing flows;
    // binding when the link is saturated.
    double n_bg =
        c.utilization * cap / traffic_->params().mean_bg_flow_mbps;
    double fair = cap / (n_bg + 1.0);
    double share = std::max(residual, fair);
    if (share < min_share_mbps) {
      min_share_mbps = share;
      bottleneck = link;
    }
  }

  e.flow_rtt_ms = base_rtt_ms + queue_ms;
  e.loss_rate = std::min(0.5, max_loss);

  // TCP response-function cap from path RTT and loss.
  double tcp_cap =
      tcp_response_mbps(params_.mss_bytes, e.flow_rtt_ms, e.loss_rate);

  // Client-side constraints.
  double access_cap = client.tier.down_mbps * client.home_quality;

  double rate = std::min({min_share_mbps, tcp_cap, access_cap});
  e.access_limited = access_cap <= std::min(min_share_mbps, tcp_cap);
  if (!e.access_limited) {
    if (min_share_mbps <= tcp_cap) {
      e.bottleneck = bottleneck;
    } else if (max_loss > 10.0 * traffic_->params().floor_loss) {
      // The TCP response function binds, driven by loss at this link.
      e.bottleneck = loss_link;
    }
  }

  // Short-test effects: slow start eats part of a 10s transfer; noisier on
  // high-RTT paths. Approximate goodput penalty ~ a few RTTs of ramp.
  double ramp_penalty =
      std::min(0.25, 12.0 * e.flow_rtt_ms / 1000.0 / params_.test_duration_s);
  rate *= (1.0 - ramp_penalty);

  // Measurement noise.
  rate *= std::exp(rng.normal(0.0, params_.measurement_noise_sigma));

  e.goodput_mbps = std::max(0.05, rate);
  e.retrans_rate = std::min(1.0, e.loss_rate * (1.0 + rng.uniform(0.0, 0.5)));

  // Each loss event in steady state halves the window: approximate the count
  // of congestion signals over the test from the loss event rate.
  double segments =
      e.goodput_mbps * 1e6 / 8.0 * params_.test_duration_s / params_.mss_bytes;
  e.congestion_signals =
      static_cast<int>(std::min(500.0, segments * e.loss_rate));
  e.valid = true;
  (void)server;
  return e;
}

}  // namespace netcong::sim
