#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <latch>

namespace netcong::util {

namespace {

thread_local bool tls_on_worker = false;

std::string describe(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const std::exception& ex) {
    return ex.what();
  } catch (...) {
    return "unknown exception";
  }
}

// Rethrows a single captured exception unchanged; aggregates several into a
// ParallelError so no worker's failure is lost.
[[noreturn]] void rethrow_all(std::vector<std::exception_ptr>& errors) {
  if (errors.size() == 1) std::rethrow_exception(errors.front());
  std::vector<std::string> messages;
  messages.reserve(errors.size());
  for (const auto& e : errors) messages.push_back(describe(e));
  throw ParallelError(std::move(messages));
}

}  // namespace

ParallelError::ParallelError(std::vector<std::string> messages)
    : std::runtime_error("parallel_for: " + std::to_string(messages.size()) +
                         " iterations failed; first: " +
                         (messages.empty() ? std::string("?")
                                           : messages.front())),
      messages_(std::move(messages)) {}

int default_thread_count() {
  if (const char* env = std::getenv("NETCONG_THREADS")) {
    int n = std::atoi(env);
    if (n >= 1) return n;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads) {
  ensure_workers(threads > 0 ? threads : default_thread_count());
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  task_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

int ThreadPool::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<int>(workers_.size());
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_cv_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] { return in_flight_ == 0; });
}

void ThreadPool::ensure_workers(int threads) {
  std::lock_guard<std::mutex> lk(mu_);
  while (static_cast<int>(workers_.size()) < threads) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

bool ThreadPool::on_worker_thread() { return tls_on_worker; }

void ThreadPool::worker_loop() {
  tls_on_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      task_cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lk(mu_);
      --in_flight_;
      if (in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

void parallel_for(std::size_t n, int threads,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  int want = threads > 0 ? threads : default_thread_count();
  std::size_t workers =
      std::min(static_cast<std::size_t>(std::max(want, 1)), n);
  if (workers <= 1 || ThreadPool::on_worker_thread()) {
    std::vector<std::exception_ptr> errors;
    for (std::size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        errors.push_back(std::current_exception());
      }
    }
    if (!errors.empty()) rethrow_all(errors);
    return;
  }

  ThreadPool& pool = ThreadPool::shared();
  pool.ensure_workers(static_cast<int>(workers));

  std::atomic<std::size_t> next{0};
  const std::size_t grain = std::max<std::size_t>(1, n / (workers * 8));
  std::latch done(static_cast<std::ptrdiff_t>(workers));
  std::mutex err_mu;
  std::vector<std::exception_ptr> errors;

  auto body = [&] {
    for (;;) {
      std::size_t begin = next.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= n) break;
      std::size_t end = std::min(n, begin + grain);
      // Per-iteration capture: a throwing iteration is recorded but never
      // cancels the rest of its chunk or any other worker's range.
      for (std::size_t i = begin; i < end; ++i) {
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lk(err_mu);
          errors.push_back(std::current_exception());
        }
      }
    }
    done.count_down();
  };

  // The calling thread works too: workers - 1 pool tasks plus this one.
  for (std::size_t w = 0; w + 1 < workers; ++w) pool.submit(body);
  body();
  done.wait();
  if (!errors.empty()) rethrow_all(errors);
}

}  // namespace netcong::util
