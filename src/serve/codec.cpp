#include "serve/codec.h"

#include <array>
#include <cstring>
#include <string>

namespace netcong::serve {

namespace {

// -- little-endian primitives ------------------------------------------

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

std::uint32_t load_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

// Cursor over a payload. Every read checks the remaining byte count and
// latches failure; callers check ok() once at the end (reads after a
// failure return zeros and never touch memory).
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t n) : p_(data), left_(n) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return left_; }

  std::uint8_t u8() {
    if (!take(1)) return 0;
    return p_[-1];
  }

  std::uint16_t u16() {
    if (!take(2)) return 0;
    return static_cast<std::uint16_t>(p_[-2] |
                                      (static_cast<std::uint16_t>(p_[-1]) << 8));
  }

  std::uint32_t u32() {
    if (!take(4)) return 0;
    return load_u32(p_ - 4);
  }

  std::uint64_t u64() {
    if (!take(8)) return 0;
    return static_cast<std::uint64_t>(load_u32(p_ - 8)) |
           (static_cast<std::uint64_t>(load_u32(p_ - 4)) << 32);
  }

  double f64() {
    std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  // Element count for a vector whose elements need >= min_elem_bytes each;
  // a count the remaining bytes cannot possibly hold is corruption, caught
  // here rather than in a giant reserve().
  std::uint32_t count(std::size_t min_elem_bytes) {
    std::uint32_t n = u32();
    if (ok_ && min_elem_bytes > 0 && n > left_ / min_elem_bytes) {
      ok_ = false;
      return 0;
    }
    return n;
  }

  std::string str() {
    std::uint32_t n = count(1);
    if (!ok_ || n == 0) return {};
    std::string s(reinterpret_cast<const char*>(p_), n);
    take(n);
    return s;
  }

 private:
  bool take(std::size_t n) {
    if (!ok_ || n > left_) {
      ok_ = false;
      return false;
    }
    p_ += n;
    left_ -= n;
    return true;
  }

  const std::uint8_t* p_;
  std::size_t left_;
  bool ok_ = true;
};

// -- RouterPath --------------------------------------------------------

void put_path(std::vector<std::uint8_t>& out, const route::RouterPath& p) {
  put_u8(out, p.valid ? 1 : 0);
  put_u32(out, static_cast<std::uint32_t>(p.as_path.size()));
  for (topo::Asn as : p.as_path) put_u32(out, as);
  put_u32(out, static_cast<std::uint32_t>(p.hops.size()));
  for (const route::RouterHop& h : p.hops) {
    put_u32(out, h.router.value);
    put_u32(out, h.in_iface.value);
    put_u32(out, h.in_link.value);
  }
  put_u32(out, static_cast<std::uint32_t>(p.links.size()));
  for (topo::LinkId l : p.links) put_u32(out, l.value);
  put_f64(out, p.one_way_delay_ms);
}

route::RouterPath read_path(Reader& r) {
  route::RouterPath p;
  p.valid = r.u8() != 0;
  std::uint32_t n_as = r.count(4);
  p.as_path.reserve(n_as);
  for (std::uint32_t i = 0; i < n_as && r.ok(); ++i) p.as_path.push_back(r.u32());
  std::uint32_t n_hops = r.count(12);
  p.hops.reserve(n_hops);
  for (std::uint32_t i = 0; i < n_hops && r.ok(); ++i) {
    route::RouterHop h;
    h.router = topo::RouterId{r.u32()};
    h.in_iface = topo::InterfaceId{r.u32()};
    h.in_link = topo::LinkId{r.u32()};
    p.hops.push_back(h);
  }
  std::uint32_t n_links = r.count(4);
  p.links.reserve(n_links);
  for (std::uint32_t i = 0; i < n_links && r.ok(); ++i) {
    p.links.push_back(topo::LinkId{r.u32()});
  }
  p.one_way_delay_ms = r.f64();
  return p;
}

// -- records -----------------------------------------------------------

void put_ndt(std::vector<std::uint8_t>& out, const measure::NdtRecord& t) {
  put_u64(out, t.test_id);
  put_u32(out, t.client);
  put_u32(out, t.server);
  put_f64(out, t.utc_time_hours);
  put_f64(out, t.download_mbps);
  put_f64(out, t.upload_mbps);
  put_f64(out, t.flow_rtt_ms);
  put_f64(out, t.retrans_rate);
  put_u32(out, static_cast<std::uint32_t>(t.congestion_signals));
  put_u32(out, t.client_asn);
  put_u32(out, t.server_asn);
  put_u8(out, static_cast<std::uint8_t>(t.status));
  put_u8(out, t.truncated ? 1 : 0);
  put_u8(out, t.has_webstats ? 1 : 0);
  put_path(out, t.truth_path);
  put_u32(out, t.truth_bottleneck.value);
  put_u8(out, t.truth_access_limited ? 1 : 0);
}

util::Result<IngestEvent> read_ndt(Reader& r) {
  measure::NdtRecord t;
  t.test_id = r.u64();
  t.client = r.u32();
  t.server = r.u32();
  t.utc_time_hours = r.f64();
  t.download_mbps = r.f64();
  t.upload_mbps = r.f64();
  t.flow_rtt_ms = r.f64();
  t.retrans_rate = r.f64();
  t.congestion_signals = static_cast<int>(r.u32());
  t.client_asn = r.u32();
  t.server_asn = r.u32();
  std::uint8_t status = r.u8();
  if (status > static_cast<std::uint8_t>(measure::NdtStatus::kFailed)) {
    return util::Result<IngestEvent>::failure("ndt status out of range");
  }
  t.status = static_cast<measure::NdtStatus>(status);
  t.truncated = r.u8() != 0;
  t.has_webstats = r.u8() != 0;
  t.truth_path = read_path(r);
  t.truth_bottleneck = topo::LinkId{r.u32()};
  t.truth_access_limited = r.u8() != 0;
  if (!r.ok() || r.remaining() != 0) {
    return util::Result<IngestEvent>::failure("ndt payload malformed");
  }
  return util::Result<IngestEvent>::success(IngestEvent{std::move(t)});
}

void put_trace(std::vector<std::uint8_t>& out,
               const measure::TracerouteRecord& t) {
  put_u32(out, t.src_host);
  put_u32(out, t.dst.value);
  put_f64(out, t.utc_time_hours);
  put_u32(out, static_cast<std::uint32_t>(t.hops.size()));
  for (const measure::TraceHop& h : t.hops) {
    put_u32(out, static_cast<std::uint32_t>(h.ttl));
    put_u8(out, h.responded ? 1 : 0);
    put_u32(out, h.addr.value);
    put_f64(out, h.rtt_ms);
    put_string(out, h.dns_name);
  }
  put_u8(out, t.reached_dst ? 1 : 0);
  put_path(out, t.truth);
}

util::Result<IngestEvent> read_trace(Reader& r) {
  measure::TracerouteRecord t;
  t.src_host = r.u32();
  t.dst = topo::IpAddr{r.u32()};
  t.utc_time_hours = r.f64();
  std::uint32_t n_hops = r.count(21);  // fixed hop fields + dns length
  t.hops.reserve(n_hops);
  for (std::uint32_t i = 0; i < n_hops && r.ok(); ++i) {
    measure::TraceHop h;
    h.ttl = static_cast<int>(r.u32());
    h.responded = r.u8() != 0;
    h.addr = topo::IpAddr{r.u32()};
    h.rtt_ms = r.f64();
    h.dns_name = r.str();
    t.hops.push_back(std::move(h));
  }
  t.reached_dst = r.u8() != 0;
  t.truth = read_path(r);
  if (!r.ok() || r.remaining() != 0) {
    return util::Result<IngestEvent>::failure("traceroute payload malformed");
  }
  return util::Result<IngestEvent>::success(IngestEvent{std::move(t)});
}

}  // namespace

std::uint32_t crc32c(const std::uint8_t* data, std::size_t n) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0x82F63B78u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

const char* frame_error_name(FrameError err) {
  switch (err) {
    case FrameError::kNone: return "ok";
    case FrameError::kTruncated: return "truncated";
    case FrameError::kBadVersion: return "bad-version";
    case FrameError::kBadKind: return "bad-kind";
    case FrameError::kOversize: return "oversize";
    case FrameError::kBadChecksum: return "bad-checksum";
    case FrameError::kBadPayload: return "bad-payload";
  }
  return "unknown";
}

FrameError parse_frame(const std::uint8_t* buf, std::size_t n, FrameView* out,
                       std::size_t* consumed) {
  *consumed = 0;
  if (n < kFrameHeaderBytes) return FrameError::kTruncated;
  std::uint32_t len = load_u32(buf);
  std::uint32_t crc = load_u32(buf + 4);
  std::uint8_t version = buf[8];
  std::uint8_t kind = buf[9];
  std::uint16_t reserved =
      static_cast<std::uint16_t>(buf[10] | (buf[11] << 8));
  // Header sanity comes first: a corrupt header must not be believed about
  // how many payload bytes to wait for.
  if (version != kFrameVersion || reserved != 0) return FrameError::kBadVersion;
  if (kind > 1) return FrameError::kBadKind;
  if (len > kMaxFramePayload) return FrameError::kOversize;
  if (n < kFrameHeaderBytes + len) return FrameError::kTruncated;
  const std::uint8_t* payload = buf + kFrameHeaderBytes;
  if (crc32c(buf + 8, 4 + len) != crc) return FrameError::kBadChecksum;
  out->kind = kind;
  out->payload = payload;
  out->payload_len = len;
  *consumed = kFrameHeaderBytes + len;
  return FrameError::kNone;
}

void append_frame(const IngestEvent& event, std::vector<std::uint8_t>& out) {
  std::size_t header_at = out.size();
  out.resize(out.size() + kFrameHeaderBytes);
  std::size_t payload_at = out.size();
  std::uint8_t kind;
  if (const auto* ndt = std::get_if<measure::NdtRecord>(&event)) {
    kind = 0;
    put_ndt(out, *ndt);
  } else {
    kind = 1;
    put_trace(out, std::get<measure::TracerouteRecord>(event));
  }
  std::uint32_t len = static_cast<std::uint32_t>(out.size() - payload_at);
  std::vector<std::uint8_t> header;
  header.reserve(kFrameHeaderBytes);
  put_u32(header, len);
  put_u32(header, 0);  // CRC patched below, once the covered bytes exist
  put_u8(header, kFrameVersion);
  put_u8(header, kind);
  put_u16(header, 0);
  std::memcpy(out.data() + header_at, header.data(), kFrameHeaderBytes);
  std::uint32_t crc = crc32c(out.data() + header_at + 8, 4 + len);
  std::vector<std::uint8_t> crc_bytes;
  put_u32(crc_bytes, crc);
  std::memcpy(out.data() + header_at + 4, crc_bytes.data(), 4);
}

util::Result<IngestEvent> decode_event(const FrameView& frame) {
  Reader r(frame.payload, frame.payload_len);
  if (frame.kind == 0) return read_ndt(r);
  if (frame.kind == 1) return read_trace(r);
  return util::Result<IngestEvent>::failure("unknown event kind");
}

}  // namespace netcong::serve
