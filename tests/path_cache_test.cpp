#include <gtest/gtest.h>

#include <atomic>

#include "helpers.h"
#include "route/bgp.h"
#include "route/forwarding.h"
#include "route/path_cache.h"
#include "util/parallel.h"

namespace netcong::route {
namespace {

using gen::World;

struct Stack {
  explicit Stack(const World& w) : world(w), bgp(*w.topo), fwd(*w.topo, bgp) {}
  const World& world;
  BgpRouting bgp;
  Forwarder fwd;
};

Stack& stack() {
  static Stack s(test::tiny_world());
  return s;
}

void expect_same_path(const RouterPath& a, const RouterPath& b) {
  ASSERT_EQ(a.valid, b.valid);
  EXPECT_EQ(a.as_path, b.as_path);
  ASSERT_EQ(a.links.size(), b.links.size());
  for (std::size_t i = 0; i < a.links.size(); ++i) {
    EXPECT_EQ(a.links[i], b.links[i]);
  }
  ASSERT_EQ(a.hops.size(), b.hops.size());
  for (std::size_t i = 0; i < a.hops.size(); ++i) {
    EXPECT_EQ(a.hops[i].router, b.hops[i].router);
    EXPECT_EQ(a.hops[i].in_iface, b.hops[i].in_iface);
  }
  EXPECT_DOUBLE_EQ(a.one_way_delay_ms, b.one_way_delay_ms);
}

TEST(PathCache, EcmpKeyPinsBucketPort) {
  const topo::IpAddr src{0x01020304}, dst{0x05060708};
  for (int b = 0; b < 8; ++b) {
    FlowKey key = PathCache::ecmp_key(src, dst, 3001, b);
    EXPECT_EQ(key.src, src);
    EXPECT_EQ(key.dst, dst);
    EXPECT_EQ(key.src_port, 3001);
    EXPECT_EQ(key.dst_port, PathCache::kEphemeralPortBase + b);
    EXPECT_EQ(key.proto, 6);
  }
}

TEST(PathCache, BitIdenticalToUncachedForwarder) {
  Stack& s = stack();
  PathCache cache(s.fwd);
  // Every (server, client, ECMP bucket) combination: the cached result must
  // equal the uncached Forwarder::path for the same key, on first lookup
  // (miss -> compute) and on repeat lookup (hit -> stored copy).
  for (std::uint32_t server : s.world.mlab_servers) {
    for (std::size_t c = 0; c < 3 && c < s.world.clients.size(); ++c) {
      std::uint32_t client = s.world.clients[c];
      topo::IpAddr dst = s.world.topo->host(client).addr;
      for (int bucket = 0; bucket < 4; ++bucket) {
        FlowKey key = PathCache::ecmp_key(s.world.topo->host(server).addr,
                                          dst, 3001, bucket);
        RouterPath direct = s.fwd.path(server, dst, key);
        RouterPath first = cache.path(server, dst, key);
        RouterPath second = cache.path(server, dst, key);
        expect_same_path(direct, first);
        expect_same_path(direct, second);
      }
    }
  }
}

TEST(PathCache, DistinctBucketsAreDistinctEntries) {
  Stack& s = stack();
  PathCache cache(s.fwd);
  std::uint32_t server = s.world.mlab_servers[0];
  std::uint32_t client = s.world.clients[0];
  topo::IpAddr dst = s.world.topo->host(client).addr;
  const int buckets = 8;
  for (int b = 0; b < buckets; ++b) {
    cache.path(server, dst,
               PathCache::ecmp_key(s.world.topo->host(server).addr, dst,
                                   3001, b));
  }
  PathCache::Stats st = cache.stats();
  EXPECT_EQ(st.misses, static_cast<std::uint64_t>(buckets));
  EXPECT_EQ(st.hits, 0u);
  EXPECT_EQ(cache.size(), static_cast<std::size_t>(buckets));
  // Re-walking every bucket is all hits.
  for (int b = 0; b < buckets; ++b) {
    cache.path(server, dst,
               PathCache::ecmp_key(s.world.topo->host(server).addr, dst,
                                   3001, b));
  }
  st = cache.stats();
  EXPECT_EQ(st.hits, static_cast<std::uint64_t>(buckets));
  EXPECT_EQ(st.misses, static_cast<std::uint64_t>(buckets));
  EXPECT_DOUBLE_EQ(st.hit_rate(), 0.5);
}

TEST(PathCache, CachesParisTracerouteKeys) {
  Stack& s = stack();
  PathCache cache(s.fwd);
  std::uint32_t server = s.world.mlab_servers[0];
  std::uint32_t client = s.world.clients[1];
  topo::IpAddr dst = s.world.topo->host(client).addr;
  // The fixed Paris probe key (see measure::run_traceroute).
  FlowKey key;
  key.src = s.world.topo->host(server).addr;
  key.dst = dst;
  key.proto = 17;
  key.src_port = 33434;
  key.dst_port = 33435;
  RouterPath direct = s.fwd.path(server, dst, key);
  expect_same_path(direct, cache.path(server, dst, key));
  expect_same_path(direct, cache.path(server, dst, key));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(PathCache, ClearResetsEntriesAndCounters) {
  Stack& s = stack();
  PathCache cache(s.fwd);
  std::uint32_t server = s.world.mlab_servers[0];
  topo::IpAddr dst = s.world.topo->host(s.world.clients[0]).addr;
  FlowKey key = PathCache::ecmp_key(s.world.topo->host(server).addr, dst,
                                    3001, 0);
  cache.path(server, dst, key);
  cache.path(server, dst, key);
  EXPECT_GT(cache.size(), 0u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(PathCache, ConcurrentLookupsStayExact) {
  Stack& s = stack();
  PathCache cache(s.fwd);
  const std::size_t lookups = 512;
  std::atomic<int> mismatches{0};
  util::parallel_for(lookups, 8, [&](std::size_t i) {
    // Fold the index into 64 distinct flows so each one is looked up ~8
    // times and the hit counter provably advances under contention.
    std::size_t flow = i % 64;
    std::uint32_t server =
        s.world.mlab_servers[flow % s.world.mlab_servers.size()];
    std::uint32_t client = s.world.clients[flow % s.world.clients.size()];
    topo::IpAddr dst = s.world.topo->host(client).addr;
    FlowKey key = PathCache::ecmp_key(s.world.topo->host(server).addr, dst,
                                      3001, static_cast<int>(flow % 4));
    RouterPath cached = cache.path(server, dst, key);
    RouterPath direct = s.fwd.path(server, dst, key);
    if (cached.valid != direct.valid || cached.links != direct.links) {
      mismatches.fetch_add(1);
    }
  });
  EXPECT_EQ(mismatches.load(), 0);
  PathCache::Stats st = cache.stats();
  EXPECT_EQ(st.hits + st.misses, lookups);
  EXPECT_GT(st.hits, 0u);
}

}  // namespace
}  // namespace netcong::route
