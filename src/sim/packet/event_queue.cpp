#include "sim/packet/event_queue.h"

#include <cassert>
#include <utility>

namespace netcong::sim::packet {

void EventQueue::schedule(double time, Handler handler) {
  assert(time >= now_);
  heap_.push(Event{time, next_seq_++, std::move(handler)});
}

void EventQueue::run(double until) {
  while (!heap_.empty() && heap_.top().time <= until) {
    // Copy out before pop: the handler may schedule new events.
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = ev.time;
    ++executed_;
    ev.handler();
  }
  if (now_ < until) now_ = until;
}

}  // namespace netcong::sim::packet
